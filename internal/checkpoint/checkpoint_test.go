package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sample builds a nontrivial snapshot exercising every section: options
// text, counters, a multi-state frontier, several shards (one empty),
// and audit fingerprints.
func sample(audit bool) *Snapshot {
	s := &Snapshot{
		OptionsFP:   0x1234567890abcdef,
		Options:     "cfg={NMutators:1} workers=any reduce=false",
		Depth:       7,
		States:      1234,
		Transitions: 5678,
		Ample:       42,
		Deadlocks:   1,
		Audit:       audit,
		Degraded:    false,
		Checkpoints: 3,
		Frontier: [][]byte{
			{0x01, 0x02, 0x03},
			{0xff},
			{0x00, 0x00, 0x10, 0x20, 0x30, 0x40},
		},
		Shards: []Shard{
			{
				Hashes:  []uint64{1, 99, 500},
				Parents: []uint64{0, 1, 1},
				EIdxs:   []int32{-1, 0, 3},
			},
			{}, // an empty shard must round-trip too
			{
				Hashes:  []uint64{7},
				Parents: []uint64{1},
				EIdxs:   []int32{2},
			},
		},
	}
	if audit {
		s.Shards[0].FPs = [][]byte{{0xaa}, {0xbb, 0xcc}, {}}
		s.Shards[1].FPs = [][]byte{}
		s.Shards[2].FPs = [][]byte{{0xdd, 0xee, 0xff}}
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, audit := range []bool{false, true} {
		t.Run(fmt.Sprintf("audit=%v", audit), func(t *testing.T) {
			want := sample(audit)
			path := filepath.Join(t.TempDir(), "run.ckpt")
			n, err := Save(path, want)
			if err != nil {
				t.Fatal(err)
			}
			if fi, err := os.Stat(path); err != nil || fi.Size() != n {
				t.Fatalf("Save reported %d bytes, file has %v (%v)", n, fi, err)
			}
			got, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			// Marshal equality is the right comparison: Load builds
			// empty (not nil) slices, which DeepEqual distinguishes.
			if !bytes.Equal(want.Marshal(), got.Marshal()) {
				t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
			}
		})
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a := sample(true).Marshal()
	b := sample(true).Marshal()
	if string(a) != string(b) {
		t.Fatal("Marshal is not deterministic")
	}
}

// TestBitFlipEverySectionDetected is the core corruption guarantee: flip
// a bit in every byte of every section payload of a valid checkpoint and
// assert the load fails with an error naming the damaged section (or,
// for the trailer, the whole-file hash). Corruption is always detected —
// never a garbage verdict.
func TestBitFlipEverySectionDetected(t *testing.T) {
	data := sample(true).Marshal()
	secs, err := Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	wantSections := []string{"header", "meta", "frontier", "shard-0", "shard-1", "shard-2", "trailer"}
	var gotNames []string
	for _, s := range secs {
		gotNames = append(gotNames, s.Name)
	}
	if !reflect.DeepEqual(gotNames, wantSections) {
		t.Fatalf("sections = %v, want %v", gotNames, wantSections)
	}
	for _, sec := range secs {
		for i := 0; i < sec.Len; i++ {
			mut := append([]byte(nil), data...)
			mut[sec.Off+i] ^= 0x40
			_, err := Unmarshal(mut)
			if err == nil {
				t.Fatalf("flip in section %q byte %d: load succeeded on corrupt data", sec.Name, i)
			}
			if sec.Name == "trailer" {
				// The trailer payload is the whole-file hash itself; its
				// own CRC catches the flip first, naming the section.
				if !strings.Contains(err.Error(), "trailer") {
					t.Fatalf("flip in trailer byte %d: error %q does not mention trailer", i, err)
				}
				continue
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("%q", sec.Name)) {
				t.Fatalf("flip in section %q byte %d: error %q does not name the section", sec.Name, i, err)
			}
		}
	}
}

// TestFramingFlipDetected: flips outside any payload (magic, section
// names, length fields, CRC fields) must also fail the load — the
// per-section CRCs or the whole-file trailer hash catch them.
func TestFramingFlipDetected(t *testing.T) {
	data := sample(false).Marshal()
	secs, err := Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	inPayload := make([]bool, len(data))
	for _, s := range secs {
		for i := s.Off; i < s.Off+s.Len; i++ {
			inPayload[i] = true
		}
	}
	for i := range data {
		if inPayload[i] {
			continue
		}
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Unmarshal(mut); err == nil {
			t.Fatalf("flip in framing byte %d: load succeeded on corrupt data", i)
		}
	}
}

// TestTruncationDetected: every proper prefix of a valid checkpoint must
// fail to load.
func TestTruncationDetected(t *testing.T) {
	data := sample(true).Marshal()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes: load succeeded", cut, len(data))
		}
	}
	// And appended garbage must be rejected too.
	if _, err := Unmarshal(append(append([]byte(nil), data...), 0x00)); err == nil {
		t.Fatal("trailing garbage: load succeeded")
	}
}

// TestStaleTempFileIgnored models a concurrent/killed writer: a stale,
// torn <path>.tmp must never be loaded, and the next Save must replace
// it and land a valid checkpoint at the real path.
func TestStaleTempFileIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	// A previous writer died mid-write, leaving a torn temp file.
	torn := sample(false).Marshal()[:20]
	if err := os.WriteFile(path+".tmp", torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// The real path does not exist yet: Load must fail cleanly, not
	// pick up the temp file.
	if _, err := Load(path); err == nil {
		t.Fatal("Load succeeded with only a stale temp file present")
	}

	// A fresh Save must succeed despite the stale temp file and leave a
	// loadable checkpoint.
	want := sample(false)
	if _, err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Marshal(), got.Marshal()) {
		t.Fatal("round trip through Save over a stale temp file mismatched")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after successful Save: %v", err)
	}
}

// TestSaveOverwritesAtomically: overwriting an existing checkpoint with
// a new snapshot yields the new one; interrupting between Saves never
// exposes a mixed file (simulated by checking the temp-then-rename
// protocol leaves the old file intact until rename).
func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	old := sample(false)
	if _, err := Save(path, old); err != nil {
		t.Fatal(err)
	}
	newer := sample(false)
	newer.Depth = 99
	newer.States = 999999
	if _, err := Save(path, newer); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth != 99 || got.States != 999999 {
		t.Fatalf("loaded old snapshot after overwrite: %+v", got)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Unmarshal([]byte("not a checkpoint at all")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	// Bump the version field and re-frame the header section so only the
	// version check can object.
	s := sample(false)
	data := s.Marshal()
	secs, _ := Scan(data)
	hdr := secs[0]
	mut := append([]byte(nil), data...)
	mut[hdr.Off] = 2 // version u32 little-endian low byte
	// Fix the header CRC so the version check itself is reached; easiest
	// is to rebuild the file from sections.
	rebuilt := append([]byte(nil), mut[:hdr.Off-9-len("header")]...) // magic
	rebuilt = appendSection(rebuilt, "header", mut[hdr.Off:hdr.Off+hdr.Len])
	for _, sec := range secs[1:] {
		rebuilt = appendSection(rebuilt, sec.Name, data[sec.Off:sec.Off+sec.Len])
	}
	_, err := Unmarshal(rebuilt)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err = %v", err)
	}
}
