package checkpoint

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// TestSaveFaultMatrix is the exhaustive hostile-disk matrix for the
// checkpoint save path: every fault kind at every I/O operation of a
// save over an existing good checkpoint. The invariant is the
// durability contract of the whole repo: a faulted save either fails
// loudly and leaves the previous checkpoint byte-intact, or claims
// success — in which case a clean reload must produce the new
// snapshot, the previous snapshot, or a loud error naming the damage.
// It must NEVER load a third, silently-wrong snapshot (the torn-rename
// kind exists precisely to try).
func TestSaveFaultMatrix(t *testing.T) {
	prev, next := sample(false), sample(true)
	prevBytes, nextBytes := prev.Marshal(), next.Marshal()
	if bytes.Equal(prevBytes, nextBytes) {
		t.Fatal("matrix needs two distinguishable snapshots")
	}

	// Count the I/O operations of one clean save.
	probe := storage.NewFaultFS(nil)
	if _, err := SaveFS(probe, filepath.Join(t.TempDir(), "probe.ckpt"), next); err != nil {
		t.Fatal(err)
	}
	nops := probe.Ops()
	if nops < 5 { // create, write, sync, close, rename at minimum
		t.Fatalf("probe counted only %d ops", nops)
	}

	for _, kind := range storage.Kinds {
		for op := 0; op < nops; op++ {
			t.Run(fmt.Sprintf("%s@%d", kind, op), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				if _, err := Save(path, prev); err != nil {
					t.Fatal(err)
				}
				ffs := storage.NewFaultFS(nil)
				ffs.FailAt(op, kind)
				_, serr := SaveFS(ffs, path, next)

				// Recovery is always through a fresh, clean filesystem
				// — the moral equivalent of a process restart.
				loaded, lerr := Load(path)
				if serr != nil {
					// Loud failure: the previous checkpoint must have
					// survived byte-identical.
					if lerr != nil {
						t.Fatalf("failed save damaged the prior checkpoint: %v (save error: %v)", lerr, serr)
					}
					if !bytes.Equal(loaded.Marshal(), prevBytes) {
						t.Fatalf("failed save left neither old nor new contents (save error: %v)", serr)
					}
					return
				}
				// Claimed success. Either version may be on disk, or the
				// reader must detect the tear — silence plus garbage is
				// the one forbidden outcome.
				if lerr != nil {
					if fmt.Sprint(lerr) == "" {
						t.Fatal("load failed without naming the damage")
					}
					return
				}
				got := loaded.Marshal()
				if !bytes.Equal(got, nextBytes) && !bytes.Equal(got, prevBytes) {
					t.Fatalf("silent corruption: loaded snapshot matches neither version")
				}
			})
		}
	}
}

// TestLoadFaultMatrix: every fault kind at every read-side operation.
// A faulted load either errors or returns exactly the saved snapshot.
func TestLoadFaultMatrix(t *testing.T) {
	snap := sample(true)
	want := snap.Marshal()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := Save(path, snap); err != nil {
		t.Fatal(err)
	}

	probe := storage.NewFaultFS(nil)
	if _, err := LoadFS(probe, path); err != nil {
		t.Fatal(err)
	}
	nops := probe.Ops()

	for _, kind := range storage.Kinds {
		for op := 0; op < nops; op++ {
			t.Run(fmt.Sprintf("%s@%d", kind, op), func(t *testing.T) {
				ffs := storage.NewFaultFS(nil)
				ffs.FailAt(op, kind)
				got, err := LoadFS(ffs, path)
				if err != nil {
					return // loud is fine
				}
				if !bytes.Equal(got.Marshal(), want) {
					t.Fatal("faulted load returned a wrong snapshot without an error")
				}
			})
		}
	}
}

// TestSectionFraming: the exported framing used by the spill files
// round-trips and detects corruption, and SectionOverhead accounts for
// every framing byte.
func TestSectionFraming(t *testing.T) {
	payload := []byte("spilled frontier entry")
	frame := AppendSection(nil, "s", payload)
	if len(frame) != len(payload)+SectionOverhead("s") {
		t.Fatalf("frame length %d, overhead says %d", len(frame), len(payload)+SectionOverhead("s"))
	}
	name, got, next, err := ReadSection(frame, 0)
	if err != nil || name != "s" || !bytes.Equal(got, payload) || next != len(frame) {
		t.Fatalf("round trip: name=%q err=%v next=%d", name, err, next)
	}
	frame[len(frame)-6] ^= 0x40 // flip a payload bit
	if _, _, _, err := ReadSection(frame, 0); err == nil {
		t.Fatal("corrupted frame read silently")
	}
}
