// Package checkpoint defines the durable snapshot format for the model
// checker's layer-synchronous BFS (package explore). A checkpoint is
// written at a layer boundary — the only point where the parallel
// explorer's state is a consistent cut: the frontier of depth d+1 is
// fully built, the visited set contains exactly the states of depths
// 0..d+1, and all counters are settled behind the layer barrier.
//
// # Format
//
// A checkpoint file is a magic header followed by named sections, each
// independently CRC-32-checksummed, closed by a trailer section holding
// a 64-bit hash of every preceding byte:
//
//	magic "GCMCCKP1"
//	section := nameLen u8 | name | payloadLen u64le | payload | crc32(payload) u32le
//	sections: "header", "meta", "frontier", "shard-0".."shard-N", "trailer"
//
// Per-section checksums make corruption reports name the damaged
// section; the whole-file trailer hash additionally covers the framing
// bytes (names, lengths) that no section checksum protects. Loading
// verifies both: a checkpoint either loads exactly or fails with an
// error naming what is damaged — a tampered file can never yield a
// garbage verdict silently.
//
// # Atomicity
//
// Save writes to <path>.tmp and renames over <path>, so a crash or kill
// mid-write leaves either the previous complete checkpoint or a stale
// .tmp file that is never loaded and is overwritten by the next Save.
//
// Frontier states are serialized with the model's canonical state codec
// (gcmodel.EncodeState); this package treats them as opaque bytes so the
// format — and its corruption-injection tests — need no model.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/storage"
)

// Version is the current format version, checked on load.
const Version = 1

var magic = [8]byte{'G', 'C', 'M', 'C', 'C', 'K', 'P', '1'}

// Snapshot is one consistent cut of an exploration at a layer boundary.
type Snapshot struct {
	// OptionsFP fingerprints the model configuration and every
	// verdict-relevant exploration option. Resuming validates it: a
	// checkpoint taken under different options (a reduced run resumed
	// unreduced, a different invariant battery, a different shard
	// layout) is refused.
	OptionsFP uint64
	// Options is the human-readable rendering of the fingerprinted
	// options, embedded so a refused resume can say what differed.
	Options string
	// Depth is the BFS depth of the frontier: every frontier state is
	// at this depth, and resuming continues by expanding it.
	Depth int
	// States, Transitions, Ample and Deadlocks are the exploration
	// counters at the cut.
	States, Transitions, Ample, Deadlocks int64
	// Audit records whether the visited set retains full fingerprints
	// (explore's audit mode); Degraded records that a memory-budget
	// watchdog dropped them mid-run.
	Audit    bool
	Degraded bool
	// Checkpoints counts snapshots written so far in this run,
	// including this one.
	Checkpoints int
	// Frontier holds the serialized frontier states in canonical order
	// (sorted by fingerprint hash).
	Frontier [][]byte
	// Shards holds the visited set, one entry per lock stripe, in shard
	// order. Entries within a shard are sorted by hash.
	Shards []Shard
}

// Shard is the serialized form of one visited-set stripe: parallel
// arrays of state-fingerprint hashes, parent hashes, and event indices
// (the trace-replay table), plus full fingerprints in audit mode.
type Shard struct {
	Hashes  []uint64
	Parents []uint64
	EIdxs   []int32
	// FPs carries the canonical fingerprint per entry in audit mode,
	// nil otherwise.
	FPs [][]byte
}

// Section describes one framed section of a checkpoint file, for
// inspection and fault-injection tests.
type Section struct {
	Name string
	// Off and Len delimit the section payload within the file.
	Off, Len int
}

// --- Marshalling ---

// appendSection frames one section onto dst.
func appendSection(dst []byte, name string, payload []byte) []byte {
	dst = append(dst, byte(len(name)))
	dst = append(dst, name...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return dst
}

// AppendSection frames one named, CRC-32-checksummed section onto dst
// using the checkpoint file encoding. The explorer's disk-spill files
// reuse this framing so spilled visited-set records and frontier
// entries get the same corruption detection as checkpoints.
func AppendSection(dst []byte, name string, payload []byte) []byte {
	return appendSection(dst, name, payload)
}

// SectionOverhead returns the framing bytes AppendSection adds around
// a payload for the given section name: readers that random-access a
// frame need its full on-disk length, not just the payload's.
func SectionOverhead(name string) int {
	return 1 + len(name) + 8 + 4
}

// ReadSection parses the section frame starting at off in data,
// verifying its checksum, and returns the section name, its payload,
// and the offset of the next frame.
func ReadSection(data []byte, off int) (name string, payload []byte, next int, err error) {
	r := &reader{data: data, off: off}
	name, payload, _, err = r.section()
	return name, payload, r.off, err
}

// Marshal encodes the snapshot into the checkpoint file format.
func (s *Snapshot) Marshal() []byte {
	out := append([]byte(nil), magic[:]...)

	var hdr []byte
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint64(hdr, s.OptionsFP)
	hdr = binary.AppendUvarint(hdr, uint64(len(s.Options)))
	hdr = append(hdr, s.Options...)
	out = appendSection(out, "header", hdr)

	var meta []byte
	meta = binary.AppendUvarint(meta, uint64(s.Depth))
	meta = binary.AppendVarint(meta, s.States)
	meta = binary.AppendVarint(meta, s.Transitions)
	meta = binary.AppendVarint(meta, s.Ample)
	meta = binary.AppendVarint(meta, s.Deadlocks)
	var flags byte
	if s.Audit {
		flags |= 1
	}
	if s.Degraded {
		flags |= 2
	}
	meta = append(meta, flags)
	meta = binary.AppendUvarint(meta, uint64(s.Checkpoints))
	meta = binary.AppendUvarint(meta, uint64(len(s.Shards)))
	meta = binary.AppendUvarint(meta, uint64(len(s.Frontier)))
	out = appendSection(out, "meta", meta)

	var fr []byte
	for _, st := range s.Frontier {
		fr = binary.AppendUvarint(fr, uint64(len(st)))
		fr = append(fr, st...)
	}
	out = appendSection(out, "frontier", fr)

	for i, sh := range s.Shards {
		var p []byte
		p = binary.AppendUvarint(p, uint64(len(sh.Hashes)))
		for j := range sh.Hashes {
			p = binary.LittleEndian.AppendUint64(p, sh.Hashes[j])
			p = binary.LittleEndian.AppendUint64(p, sh.Parents[j])
			p = binary.AppendVarint(p, int64(sh.EIdxs[j]))
			if s.Audit {
				p = binary.AppendUvarint(p, uint64(len(sh.FPs[j])))
				p = append(p, sh.FPs[j]...)
			}
		}
		out = appendSection(out, fmt.Sprintf("shard-%d", i), p)
	}

	var tr []byte
	tr = binary.LittleEndian.AppendUint64(tr, hash64(out))
	out = appendSection(out, "trailer", tr)
	return out
}

// hash64 is the FNV-1a whole-file hash (the same function the checker
// uses for state fingerprints, re-implemented here so the format stands
// alone).
func hash64(b []byte) uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Save atomically writes the snapshot to path (via path+".tmp" and
// rename) and returns the number of bytes written.
func Save(path string, s *Snapshot) (int64, error) {
	return SaveFS(storage.OSFS{}, path, s)
}

// SaveFS is Save with the I/O routed through an explicit filesystem,
// the seam the fault-injection matrix drives.
func SaveFS(fsys storage.FS, path string, s *Snapshot) (int64, error) {
	data := s.Marshal()
	tmp := path + storage.TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return int64(len(data)), nil
}

// --- Unmarshalling ---

// reader walks the framed sections of a checkpoint image.
type reader struct {
	data []byte
	off  int
}

// section reads the next section frame, verifying its checksum.
func (r *reader) section() (name string, payload []byte, payOff int, err error) {
	if r.off >= len(r.data) {
		return "", nil, 0, fmt.Errorf("checkpoint: truncated: expected a section at offset %d", r.off)
	}
	nameLen := int(r.data[r.off])
	p := r.off + 1
	if p+nameLen > len(r.data) {
		return "", nil, 0, fmt.Errorf("checkpoint: truncated section name at offset %d", r.off)
	}
	name = string(r.data[p : p+nameLen])
	p += nameLen
	if p+8 > len(r.data) {
		return "", nil, 0, fmt.Errorf("checkpoint: section %q: truncated length", name)
	}
	plen := binary.LittleEndian.Uint64(r.data[p:])
	p += 8
	if plen > uint64(len(r.data)-p) {
		return "", nil, 0, fmt.Errorf("checkpoint: section %q: truncated payload (%d bytes claimed, %d available)", name, plen, len(r.data)-p)
	}
	payOff = p
	payload = r.data[p : p+int(plen)]
	p += int(plen)
	if p+4 > len(r.data) {
		return "", nil, 0, fmt.Errorf("checkpoint: section %q: truncated checksum", name)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(r.data[p:]); got != want {
		return "", nil, 0, fmt.Errorf("checkpoint: section %q: checksum mismatch (corrupt)", name)
	}
	r.off = p + 4
	return name, payload, payOff, nil
}

// Scan parses the section framing of a checkpoint image without
// interpreting payloads, verifying per-section checksums as it goes. It
// backs the corruption-injection tests and external inspection.
func Scan(data []byte) ([]Section, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic (not a checkpoint file)")
	}
	r := &reader{data: data, off: len(magic)}
	var out []Section
	for r.off < len(data) {
		name, payload, off, err := r.section()
		if err != nil {
			return nil, err
		}
		out = append(out, Section{Name: name, Off: off, Len: len(payload)})
		if name == "trailer" {
			if r.off != len(data) {
				return nil, fmt.Errorf("checkpoint: %d trailing bytes after trailer", len(data)-r.off)
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("checkpoint: truncated: no trailer section")
}

// Unmarshal decodes a checkpoint image, verifying every section
// checksum and the whole-file trailer hash.
func Unmarshal(data []byte) (*Snapshot, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic (not a checkpoint file)")
	}
	r := &reader{data: data, off: len(magic)}
	s := &Snapshot{}

	// header
	name, payload, _, err := r.section()
	if err != nil {
		return nil, err
	}
	if name != "header" {
		return nil, fmt.Errorf("checkpoint: section %q where \"header\" expected", name)
	}
	d := &secDecoder{name: "header", buf: payload}
	if v := d.u32(); d.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: section \"header\": format version %d (this build reads %d)", v, Version)
	}
	s.OptionsFP = d.u64()
	s.Options = string(d.bytes())
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("checkpoint: section \"header\": %d bytes left over", len(d.buf))
	}

	// meta
	name, payload, _, err = r.section()
	if err != nil {
		return nil, err
	}
	if name != "meta" {
		return nil, fmt.Errorf("checkpoint: section %q where \"meta\" expected", name)
	}
	d = &secDecoder{name: "meta", buf: payload}
	s.Depth = int(d.uvarint())
	s.States = d.varint()
	s.Transitions = d.varint()
	s.Ample = d.varint()
	s.Deadlocks = d.varint()
	flags := d.byte()
	s.Audit = flags&1 != 0
	s.Degraded = flags&2 != 0
	s.Checkpoints = int(d.uvarint())
	nshards := d.uvarint()
	nfrontier := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if s.States < 0 || s.Transitions < 0 || s.Ample < 0 || s.Deadlocks < 0 {
		return nil, fmt.Errorf("checkpoint: section \"meta\": negative counter")
	}
	if nshards > 1<<20 || nfrontier > 1<<40 {
		return nil, fmt.Errorf("checkpoint: section \"meta\": absurd shard/frontier count (%d/%d)", nshards, nfrontier)
	}

	// frontier
	name, payload, _, err = r.section()
	if err != nil {
		return nil, err
	}
	if name != "frontier" {
		return nil, fmt.Errorf("checkpoint: section %q where \"frontier\" expected", name)
	}
	d = &secDecoder{name: "frontier", buf: payload}
	s.Frontier = make([][]byte, 0, nfrontier)
	for i := uint64(0); i < nfrontier; i++ {
		s.Frontier = append(s.Frontier, d.bytes())
		if d.err != nil {
			return nil, fmt.Errorf("checkpoint: section \"frontier\": state %d: %w", i, d.err)
		}
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("checkpoint: section \"frontier\": %d bytes left over", len(d.buf))
	}

	// shards
	s.Shards = make([]Shard, nshards)
	for i := uint64(0); i < nshards; i++ {
		want := fmt.Sprintf("shard-%d", i)
		name, payload, _, err = r.section()
		if err != nil {
			return nil, err
		}
		if name != want {
			return nil, fmt.Errorf("checkpoint: section %q where %q expected", name, want)
		}
		d = &secDecoder{name: want, buf: payload}
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.buf)) {
			return nil, fmt.Errorf("checkpoint: section %q: %d entries exceed payload", want, n)
		}
		sh := &s.Shards[i]
		sh.Hashes = make([]uint64, 0, n)
		sh.Parents = make([]uint64, 0, n)
		sh.EIdxs = make([]int32, 0, n)
		if s.Audit {
			sh.FPs = make([][]byte, 0, n)
		}
		for j := uint64(0); j < n; j++ {
			sh.Hashes = append(sh.Hashes, d.u64())
			sh.Parents = append(sh.Parents, d.u64())
			sh.EIdxs = append(sh.EIdxs, int32(d.varint()))
			if s.Audit {
				sh.FPs = append(sh.FPs, d.bytes())
			}
			if d.err != nil {
				return nil, fmt.Errorf("checkpoint: section %q: entry %d: %w", want, j, d.err)
			}
		}
		if len(d.buf) != 0 {
			return nil, fmt.Errorf("checkpoint: section %q: %d bytes left over", want, len(d.buf))
		}
	}

	// trailer: whole-file hash over every byte before the trailer frame.
	trailerStart := r.off
	name, payload, _, err = r.section()
	if err != nil {
		return nil, err
	}
	if name != "trailer" {
		return nil, fmt.Errorf("checkpoint: section %q where \"trailer\" expected", name)
	}
	if len(payload) != 8 {
		return nil, fmt.Errorf("checkpoint: section \"trailer\": %d-byte payload (want 8)", len(payload))
	}
	if got, want := hash64(data[:trailerStart]), binary.LittleEndian.Uint64(payload); got != want {
		return nil, fmt.Errorf("checkpoint: whole-file hash mismatch (framing corrupt)")
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after trailer", len(data)-r.off)
	}
	return s, nil
}

// Load reads and verifies the checkpoint at path.
func Load(path string) (*Snapshot, error) {
	return LoadFS(storage.OSFS{}, path)
}

// LoadFS is Load through an explicit filesystem.
func LoadFS(fsys storage.FS, path string) (*Snapshot, error) {
	data, err := storage.ReadFile(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Unmarshal(data)
}

// secDecoder reads varint-packed fields from one section payload,
// latching the first error with the section name attached.
type secDecoder struct {
	name string
	buf  []byte
	err  error
}

func (d *secDecoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: section %q: %s", d.name, msg)
	}
}

func (d *secDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *secDecoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *secDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *secDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.buf)
	if k <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.buf = d.buf[k:]
	return v
}

func (d *secDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Varint(d.buf)
	if k <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[k:]
	return v
}

func (d *secDecoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail(fmt.Sprintf("byte string of %d exceeds %d-byte payload", n, len(d.buf)))
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}
