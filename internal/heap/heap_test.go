package heap

import (
	"testing"
	"testing/quick"
)

func build(t *testing.T, n int, objs map[Ref][]Ref) Heap {
	t.Helper()
	h := New(n)
	for r, fs := range objs {
		h.AllocAt(r, len(fs), false)
		for i, f := range fs {
			h.Store(r, Field(i), f)
		}
	}
	return h
}

func TestAllocFreeValid(t *testing.T) {
	h := New(3)
	if h.Valid(0) || h.Valid(NilRef) || h.Valid(99) {
		t.Fatal("empty heap claims valid refs")
	}
	h.AllocAt(1, 2, true)
	if !h.Valid(1) {
		t.Fatal("allocated ref invalid")
	}
	if got := h.Load(1, 0); got != NilRef {
		t.Fatalf("fresh field = %d, want NilRef", got)
	}
	if !h.Obj(1).Flag {
		t.Fatal("flag not set at allocation")
	}
	h.Free(1)
	if h.Valid(1) {
		t.Fatal("freed ref still valid")
	}
	if got := len(h.FreeRefs()); got != 3 {
		t.Fatalf("free refs = %d, want 3", got)
	}
}

func TestReachableFollowsEdges(t *testing.T) {
	h := build(t, 5, map[Ref][]Ref{
		0: {1},
		1: {2},
		2: {NilRef},
		3: {4},
		4: {NilRef},
	})
	got := h.Reachable(SetOf(0))
	if want := SetOf(0, 1, 2); got != want {
		t.Fatalf("reachable = %v, want %v", got, want)
	}
	// 3,4 unreachable from 0.
	if got.Has(3) || got.Has(4) {
		t.Fatal("unreachable refs included")
	}
}

func TestReachableHandlesCycles(t *testing.T) {
	h := build(t, 3, map[Ref][]Ref{
		0: {1},
		1: {2},
		2: {0},
	})
	if got := h.Reachable(SetOf(0)); got != SetOf(0, 1, 2) {
		t.Fatalf("cycle reachability = %v", got)
	}
}

func TestReachableIgnoresDanglingRoots(t *testing.T) {
	h := build(t, 3, map[Ref][]Ref{0: {NilRef}})
	if got := h.Reachable(SetOf(0, 2)); got != SetOf(0) {
		t.Fatalf("reachable = %v, want {0}", got)
	}
}

func TestReachableViaStopsAtBarrierNodes(t *testing.T) {
	// 0 → 1 → 2 where via(1) is false: traversal includes 1 but must not
	// continue through it.
	h := build(t, 3, map[Ref][]Ref{
		0: {1},
		1: {2},
		2: {NilRef},
	})
	got := h.ReachableVia(SetOf(0), func(r Ref) bool { return r != 1 })
	if want := SetOf(0, 1); got != want {
		t.Fatalf("via-reachable = %v, want %v", got, want)
	}
	// A start node failing via is still traversed out of.
	got = h.ReachableVia(SetOf(1), func(r Ref) bool { return false })
	if want := SetOf(1, 2); got != want {
		t.Fatalf("start-node traversal = %v, want %v", got, want)
	}
}

func TestReachableViaModelsGreyProtection(t *testing.T) {
	// Grey G(0) → white 1 → white 2: both whites are grey-protected.
	// Black 3 → white 2 as well; the chain from 0 protects 2.
	h := build(t, 4, map[Ref][]Ref{
		0: {1},
		1: {2},
		2: {NilRef},
		3: {2},
	})
	white := func(r Ref) bool { return r == 1 || r == 2 }
	protected := h.ReachableVia(SetOf(0), white)
	if !protected.Has(2) || !protected.Has(1) {
		t.Fatalf("grey protection = %v", protected)
	}
	// Deleting the edge 1→2 breaks protection.
	h.Store(1, 0, NilRef)
	protected = h.ReachableVia(SetOf(0), white)
	if protected.Has(2) {
		t.Fatal("2 still protected after deleting the white chain")
	}
}

func TestMarkedDependsOnSense(t *testing.T) {
	h := build(t, 1, map[Ref][]Ref{0: {}})
	if !h.Marked(0, false) {
		t.Fatal("flag=false should be marked when f_M=false")
	}
	if h.Marked(0, true) {
		t.Fatal("flag=false should be unmarked when f_M=true")
	}
	h.SetFlag(0, true)
	if !h.Marked(0, true) {
		t.Fatal("flag=true should be marked when f_M=true")
	}
}

func TestPointersTo(t *testing.T) {
	h := build(t, 4, map[Ref][]Ref{
		0: {2, 2},
		1: {2},
		2: {NilRef, NilRef},
	})
	es := h.PointersTo(2)
	if len(es) != 3 {
		t.Fatalf("edges to 2: %v", es)
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := build(t, 2, map[Ref][]Ref{0: {1}, 1: {NilRef}})
	c := h.Clone()
	c.Store(0, 0, NilRef)
	c.SetFlag(1, true)
	c.Free(1)
	if h.Load(0, 0) != 1 || h.Obj(1).Flag || !h.Valid(1) {
		t.Fatal("clone shares structure with original")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := build(t, 2, map[Ref][]Ref{0: {1}, 1: {NilRef}})
	b := a.Clone()
	if string(a.AppendFingerprint(nil)) != string(b.AppendFingerprint(nil)) {
		t.Fatal("identical heaps fingerprint differently")
	}
	b.SetFlag(0, true)
	if string(a.AppendFingerprint(nil)) == string(b.AppendFingerprint(nil)) {
		t.Fatal("flag change not visible in fingerprint")
	}
	c := a.Clone()
	c.Store(0, 0, NilRef)
	if string(a.AppendFingerprint(nil)) == string(c.AppendFingerprint(nil)) {
		t.Fatal("field change not visible in fingerprint")
	}
	d := a.Clone()
	d.Free(1)
	if string(a.AppendFingerprint(nil)) == string(d.AppendFingerprint(nil)) {
		t.Fatal("free not visible in fingerprint")
	}
}

// Property: reachability is monotone in the root set.
func TestReachableMonotoneQuick(t *testing.T) {
	f := func(edges []uint8, roots1, roots2 uint8) bool {
		const n = 6
		h := New(n)
		for i := 0; i < n; i++ {
			h.AllocAt(Ref(i), 1, false)
		}
		for i, e := range edges {
			h.Store(Ref(i%n), 0, Ref(int(e)%n))
		}
		r1 := RefSet(roots1 % 63)
		r2 := r1.Union(RefSet(roots2 % 63))
		return h.Reachable(r1).SubsetOf(h.Reachable(r2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Reachable is a fixpoint — re-running from the result set adds
// nothing.
func TestReachableFixpointQuick(t *testing.T) {
	f := func(edges []uint8, roots uint8) bool {
		const n = 6
		h := New(n)
		for i := 0; i < n; i++ {
			h.AllocAt(Ref(i), 2, false)
		}
		for i, e := range edges {
			h.Store(Ref(i%n), Field(i%2), Ref(int(e)%n))
		}
		r := h.Reachable(RefSet(roots % 63))
		return h.Reachable(r) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReachableVia with an always-true predicate equals Reachable.
func TestReachableViaTotalQuick(t *testing.T) {
	f := func(edges []uint8, roots uint8) bool {
		const n = 5
		h := New(n)
		for i := 0; i < n; i++ {
			h.AllocAt(Ref(i), 1, false)
		}
		for i, e := range edges {
			h.Store(Ref(i%n), 0, Ref(int(e)%n))
		}
		rs := RefSet(roots % 31)
		return h.ReachableVia(rs, func(Ref) bool { return true }) == h.Reachable(rs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
