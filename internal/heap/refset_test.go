package heap

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRefSetBasics(t *testing.T) {
	var s RefSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero value is not the empty set")
	}
	s = s.Add(3).Add(0).Add(3)
	if s.Len() != 2 || !s.Has(3) || !s.Has(0) || s.Has(1) {
		t.Fatalf("set = %v", s)
	}
	s = s.Remove(3)
	if s.Has(3) || s.Len() != 1 {
		t.Fatalf("after remove: %v", s)
	}
	if s.Any() != 0 {
		t.Fatalf("Any = %d", s.Any())
	}
	if RefSet(0).Any() != NilRef {
		t.Fatal("Any of empty set should be NilRef")
	}
}

func TestRefSetNilAndNegative(t *testing.T) {
	var s RefSet
	s = s.Add(NilRef)
	if !s.Empty() {
		t.Fatal("adding NilRef changed the set")
	}
	s = s.Add(-2) // poison ref from an ablated model
	if !s.Empty() {
		t.Fatal("adding a negative ref changed the set")
	}
	if s.Has(NilRef) || s.Has(-2) {
		t.Fatal("Has on invalid refs")
	}
	s = s.Remove(NilRef)
	if !s.Empty() {
		t.Fatal("Remove(NilRef) changed the set")
	}
}

func TestRefSetAlgebra(t *testing.T) {
	a := SetOf(0, 1, 2)
	b := SetOf(2, 3)
	if got := a.Union(b); got != SetOf(0, 1, 2, 3) {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b); got != SetOf(2) {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Minus(b); got != SetOf(0, 1) {
		t.Fatalf("minus = %v", got)
	}
	if !SetOf(1).SubsetOf(a) || a.SubsetOf(b) {
		t.Fatal("subset relations wrong")
	}
}

func TestRefSetEachAscending(t *testing.T) {
	s := SetOf(5, 1, 9)
	var got []Ref
	s.Each(func(r Ref) { got = append(got, r) })
	if !reflect.DeepEqual(got, []Ref{1, 5, 9}) {
		t.Fatalf("Each order = %v", got)
	}
	if !reflect.DeepEqual(s.Refs(), got) {
		t.Fatal("Refs disagrees with Each")
	}
}

func TestRefSetString(t *testing.T) {
	if got := SetOf(0, 2).String(); got != "{0 2}" {
		t.Fatalf("String = %q", got)
	}
	if got := RefSet(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: Add then Remove restores the original set when the element
// was absent.
func TestRefSetAddRemoveQuick(t *testing.T) {
	f := func(bits uint64, e uint8) bool {
		s := RefSet(bits)
		r := Ref(e % 64)
		if s.Has(r) {
			return s.Add(r) == s
		}
		return s.Add(r).Remove(r) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Len equals the number of elements Each visits.
func TestRefSetLenQuick(t *testing.T) {
	f := func(bits uint64) bool {
		s := RefSet(bits)
		n := 0
		s.Each(func(Ref) { n++ })
		return n == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan over a finite universe.
func TestRefSetDeMorganQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		u := ^RefSet(0)
		x, y := RefSet(a), RefSet(b)
		return u.Minus(x.Union(y)) == u.Minus(x).Intersect(u.Minus(y)) &&
			u.Minus(x.Intersect(y)) == u.Minus(x).Union(u.Minus(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
