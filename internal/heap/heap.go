// Package heap implements the abstract heap of the paper's model (§3.1):
// a fixed universe of references ℛ, a partial map from references to
// objects, and the reachability machinery underlying the tricolor
// abstraction (§2.1). An object is a garbage-collection mark flag plus a
// total map from fields to references-or-NULL; non-reference payloads are
// abstracted away, exactly as in the paper.
//
// The mark flag's interpretation is contingent on the shared sense flag
// f_M (Lamport's trick, paper §2): an object is "marked" when its flag
// equals f_M, so the collector flips f_M instead of resetting flags on
// retained objects from one cycle to the next.
package heap

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Ref is a heap reference: an index into the reference universe, or
// NilRef for NULL.
type Ref int

// NilRef is the NULL reference.
const NilRef Ref = -1

// Field indexes an object's reference fields.
type Field int

// Object is a heap object: a mark flag and reference fields.
type Object struct {
	// Flag is the raw mark bit; it means "marked" iff it equals the
	// current mark sense f_M.
	Flag bool
	// Fields maps each field to a Ref or NilRef.
	Fields []Ref
}

// Clone deep-copies the object.
func (o *Object) Clone() *Object {
	return &Object{Flag: o.Flag, Fields: append([]Ref(nil), o.Fields...)}
}

// Heap is a partial map from the reference universe {0..len(Objs)-1} to
// objects. A nil entry means the reference is unallocated (free); the
// domain of the heap tracks free references, as in the paper.
type Heap struct {
	Objs []*Object
}

// New creates a heap over a universe of n references, all free.
func New(n int) Heap {
	return Heap{Objs: make([]*Object, n)}
}

// Clone deep-copies the heap.
func (h Heap) Clone() Heap {
	n := Heap{Objs: make([]*Object, len(h.Objs))}
	for i, o := range h.Objs {
		if o != nil {
			n.Objs[i] = o.Clone()
		}
	}
	return n
}

// Size reports the size of the reference universe.
func (h Heap) Size() int { return len(h.Objs) }

// Valid reports whether r denotes an allocated object ("there is an
// object at r"): the valid_ref predicate of the headline theorem.
func (h Heap) Valid(r Ref) bool {
	return r >= 0 && int(r) < len(h.Objs) && h.Objs[r] != nil
}

// Obj returns the object at r, panicking if r is not Valid.
func (h Heap) Obj(r Ref) *Object {
	if !h.Valid(r) {
		panic(fmt.Sprintf("heap: no object at ref %d", r))
	}
	return h.Objs[r]
}

// FreeRefs returns the unallocated references.
func (h Heap) FreeRefs() []Ref {
	var out []Ref
	for i, o := range h.Objs {
		if o == nil {
			out = append(out, Ref(i))
		}
	}
	return out
}

// AllocAt installs a fresh object at the free reference r with nfields
// NULL fields and the given raw flag value.
func (h Heap) AllocAt(r Ref, nfields int, flag bool) {
	if h.Valid(r) {
		panic(fmt.Sprintf("heap: alloc at live ref %d", r))
	}
	fs := make([]Ref, nfields)
	for i := range fs {
		fs[i] = NilRef
	}
	h.Objs[r] = &Object{Flag: flag, Fields: fs}
}

// Free removes the object at r from the heap.
func (h Heap) Free(r Ref) {
	if !h.Valid(r) {
		panic(fmt.Sprintf("heap: free of dead ref %d", r))
	}
	h.Objs[r] = nil
}

// Load returns the reference stored in field f of the object at r.
func (h Heap) Load(r Ref, f Field) Ref { return h.Obj(r).Fields[f] }

// Store writes dst into field f of the object at r.
func (h Heap) Store(r Ref, f Field, dst Ref) { h.Obj(r).Fields[f] = dst }

// Marked reports whether the object at r is marked under mark sense fM.
func (h Heap) Marked(r Ref, fM bool) bool { return h.Obj(r).Flag == fM }

// SetFlag sets the raw flag of the object at r.
func (h Heap) SetFlag(r Ref, flag bool) { h.Obj(r).Flag = flag }

// Reachable computes the set of valid references reachable from the roots
// through heap objects. A path always goes via the heap (§3.2); pending
// TSO writes are accounted for by the caller treating buffered references
// as extra roots. Roots that are invalid (dangling) are not included.
func (h Heap) Reachable(roots RefSet) RefSet {
	var seen RefSet
	stack := make([]Ref, 0, 8)
	roots.Each(func(r Ref) {
		if h.Valid(r) && !seen.Has(r) {
			seen = seen.Add(r)
			stack = append(stack, r)
		}
	})
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range h.Objs[r].Fields {
			if c != NilRef && h.Valid(c) && !seen.Has(c) {
				seen = seen.Add(c)
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// ReachableVia computes the references reachable from `from` via paths
// whose intermediate nodes all satisfy via. Traversal always continues
// out of the (valid) start references themselves; beyond them it
// continues out of a node only when via(node) holds. It implements the
// Grey →*w White chains of the weak tricolor invariant: to ask whether a
// white object w is grey-protected, call with the grey set as `from` and
// via = "is white".
func (h Heap) ReachableVia(from RefSet, via func(Ref) bool) RefSet {
	var seen RefSet
	stack := make([]Ref, 0, 8)
	from.Each(func(r Ref) {
		if h.Valid(r) && !seen.Has(r) {
			seen = seen.Add(r)
			stack = append(stack, r)
		}
	})
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !from.Has(r) && !via(r) {
			continue // do not traverse out of interior nodes that fail via
		}
		for _, c := range h.Objs[r].Fields {
			if c != NilRef && h.Valid(c) && !seen.Has(c) {
				seen = seen.Add(c)
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// Refs returns the set of all valid references.
func (h Heap) Refs() RefSet {
	var s RefSet
	for i, o := range h.Objs {
		if o != nil {
			s = s.Add(Ref(i))
		}
	}
	return s
}

// PointersTo returns the set of (src, field) edges whose target is dst.
func (h Heap) PointersTo(dst Ref) []Edge {
	var out []Edge
	for i, o := range h.Objs {
		if o == nil {
			continue
		}
		for f, c := range o.Fields {
			if c == dst {
				out = append(out, Edge{Src: Ref(i), Field: Field(f)})
			}
		}
	}
	return out
}

// Edge identifies a reference field of an object.
type Edge struct {
	Src   Ref
	Field Field
}

// DecodeFingerprint decodes a heap encoded by AppendFingerprint over a
// universe of n references with nfields fields per object, returning the
// heap and the remaining bytes. Malformed input is an error, never a
// panic: checkpoint loading must reject corruption gracefully.
func DecodeFingerprint(data []byte, n, nfields int) (Heap, []byte, error) {
	h := New(n)
	for i := 0; i < n; i++ {
		if len(data) == 0 {
			return Heap{}, nil, fmt.Errorf("heap: truncated at object %d", i)
		}
		tag := data[0]
		data = data[1:]
		switch tag {
		case 0:
			continue // free reference
		case 1, 2:
			o := &Object{Flag: tag == 2, Fields: make([]Ref, nfields)}
			for f := 0; f < nfields; f++ {
				v, k := binary.Varint(data)
				if k <= 0 {
					return Heap{}, nil, fmt.Errorf("heap: truncated field %d of object %d", f, i)
				}
				data = data[k:]
				if v != int64(NilRef) && (v < 0 || v >= int64(n)) {
					return Heap{}, nil, fmt.Errorf("heap: field %d of object %d holds ref %d outside universe %d", f, i, v, n)
				}
				o.Fields[f] = Ref(v)
			}
			h.Objs[i] = o
		default:
			return Heap{}, nil, fmt.Errorf("heap: bad object tag %d at ref %d", tag, i)
		}
	}
	return h, data, nil
}

// AppendFingerprint appends a canonical encoding of the heap.
func (h Heap) AppendFingerprint(dst []byte) []byte {
	for _, o := range h.Objs {
		if o == nil {
			dst = append(dst, 0)
			continue
		}
		if o.Flag {
			dst = append(dst, 2)
		} else {
			dst = append(dst, 1)
		}
		for _, f := range o.Fields {
			dst = binary.AppendVarint(dst, int64(f))
		}
	}
	return dst
}

// String renders the heap for traces, e.g. "{0*:[1 -] 1:[- -]}" where *
// marks a set flag.
func (h Heap) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, o := range h.Objs {
		if o == nil {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		if o.Flag {
			b.WriteByte('*')
		}
		b.WriteString(":[")
		for j, f := range o.Fields {
			if j > 0 {
				b.WriteByte(' ')
			}
			if f == NilRef {
				b.WriteByte('-')
			} else {
				fmt.Fprintf(&b, "%d", f)
			}
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}
