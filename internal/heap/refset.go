package heap

import (
	"fmt"
	"math/bits"
	"strings"
)

// RefSet is a set of references over a universe of at most MaxUniverse
// references, represented as a bitmask. The zero value is the empty set.
// RefSet is a value type: Add and friends return a new set.
type RefSet uint64

// MaxUniverse is the largest reference universe RefSet supports.
const MaxUniverse = 64

// SetOf builds a set from the given references.
func SetOf(rs ...Ref) RefSet {
	var s RefSet
	for _, r := range rs {
		s = s.Add(r)
	}
	return s
}

// Add returns s ∪ {r}. Adding NilRef (or any negative value, such as the
// poison references that arise only in deliberately ablated models) is a
// no-op.
func (s RefSet) Add(r Ref) RefSet {
	if r < 0 {
		return s
	}
	if r >= MaxUniverse {
		panic(fmt.Sprintf("heap: ref %d outside RefSet universe", r))
	}
	return s | 1<<uint(r)
}

// Remove returns s ∖ {r}.
func (s RefSet) Remove(r Ref) RefSet {
	if r == NilRef || r < 0 || r >= MaxUniverse {
		return s
	}
	return s &^ (1 << uint(r))
}

// Has reports whether r ∈ s.
func (s RefSet) Has(r Ref) bool {
	if r == NilRef || r < 0 || r >= MaxUniverse {
		return false
	}
	return s&(1<<uint(r)) != 0
}

// Union returns s ∪ t.
func (s RefSet) Union(t RefSet) RefSet { return s | t }

// Intersect returns s ∩ t.
func (s RefSet) Intersect(t RefSet) RefSet { return s & t }

// Minus returns s ∖ t.
func (s RefSet) Minus(t RefSet) RefSet { return s &^ t }

// Empty reports whether the set is empty.
func (s RefSet) Empty() bool { return s == 0 }

// Len reports the cardinality of the set.
func (s RefSet) Len() int { return bits.OnesCount64(uint64(s)) }

// SubsetOf reports whether s ⊆ t.
func (s RefSet) SubsetOf(t RefSet) bool { return s&^t == 0 }

// Each calls f on every member in ascending order.
func (s RefSet) Each(f func(Ref)) {
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		f(Ref(i))
		v &^= 1 << uint(i)
	}
}

// Refs returns the members in ascending order.
func (s RefSet) Refs() []Ref {
	out := make([]Ref, 0, s.Len())
	s.Each(func(r Ref) { out = append(out, r) })
	return out
}

// Any returns an arbitrary member, or NilRef if empty.
func (s RefSet) Any() Ref {
	if s == 0 {
		return NilRef
	}
	return Ref(bits.TrailingZeros64(uint64(s)))
}

// String renders the set, e.g. "{0 2 5}".
func (s RefSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Each(func(r Ref) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", r)
	})
	b.WriteByte('}')
	return b.String()
}
