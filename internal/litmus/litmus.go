// Package litmus provides the published x86-TSO litmus tests (Sewell et
// al., CACM 2010) used to validate the TSO substrate of this
// reproduction (experiments E8 and E13): the store-buffering behaviours
// that distinguish TSO from sequential consistency, the behaviours TSO
// forbids, and the effect of MFENCE and locked instructions.
//
// Each test is a small multi-threaded program over package tso, a
// predicate on final outcomes, and the expected verdicts under TSO and
// under the SC oracle.
package litmus

import (
	"repro/internal/tso"
)

// Test is a litmus test: a program, a distinguished outcome predicate,
// and whether that outcome is observable under each memory model.
type Test struct {
	// Name is the conventional litmus name, e.g. "SB" for store
	// buffering.
	Name string
	// Description explains what behaviour the test witnesses.
	Description string
	// Prog is the thread program.
	Prog tso.Program
	// Witness identifies the outcome of interest.
	Witness func(tso.Outcome) bool
	// TSO and SC state whether the witness outcome is observable under
	// each model.
	TSO, SC bool
}

// Verdict is the result of running one test under one model.
type Verdict struct {
	Test      Test
	Model     tso.Model
	Observed  bool
	Expected  bool
	Outcomes  int
	Witnesses int
}

// OK reports whether the observation matches the expectation.
func (v Verdict) OK() bool { return v.Observed == v.Expected }

// Run explores the test exhaustively under the model and reports whether
// the witness outcome is observable.
func Run(t Test, model tso.Model) Verdict {
	outs := tso.Explore(t.Prog, model)
	v := Verdict{Test: t, Model: model, Outcomes: len(outs)}
	for _, o := range outs {
		if t.Witness(o) {
			v.Witnesses++
		}
	}
	v.Observed = v.Witnesses > 0
	if model == tso.TSO {
		v.Expected = t.TSO
	} else {
		v.Expected = t.SC
	}
	return v
}

// RunAll runs every test under both models.
func RunAll(tests []Test) []Verdict {
	var out []Verdict
	for _, t := range tests {
		out = append(out, Run(t, tso.TSO), Run(t, tso.SC))
	}
	return out
}

// Addresses x and y; registers r0 and r1.
const (
	x = tso.Addr(0)
	y = tso.Addr(1)
	z = tso.Addr(2)

	r0 = tso.Reg(0)
	r1 = tso.Reg(1)
)

// All returns the full catalogue.
func All() []Test {
	return []Test{
		SB(), SBFence(), SBCas(), SBOneFence(),
		MP(), MPFence(),
		LB(), R(), RCas(), TwoPlusTwoW(),
		CoWR(), CoWRFence(),
		IRIW(),
		WRC(),
		CASExclusion(),
		FetchAddSerial(),
		N4b(), N5(), N6(),
	}
}

// SB is the canonical store-buffering test: both threads can read 0,
// which is forbidden under SC — the defining observable difference of
// TSO (paper §2.4).
func SB() Test {
	return Test{
		Name:        "SB",
		Description: "store buffering: both loads may see 0 under TSO, never under SC",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.Ld{Dst: r0, Addr: y}},
				{tso.St{Addr: y, Val: 1}, tso.Ld{Dst: r0, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == 0 && o.Regs[1][0] == 0 },
		TSO:     true, SC: false,
	}
}

// SBFence is SB with MFENCE between the store and the load in each
// thread; the relaxed outcome disappears. This is the fence discipline
// the collector's handshakes rely on (§2.4).
func SBFence() Test {
	return Test{
		Name:        "SB+mfence",
		Description: "store buffering fenced: MFENCE restores the SC outcome set",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.MFence{}, tso.Ld{Dst: r0, Addr: y}},
				{tso.St{Addr: y, Val: 1}, tso.MFence{}, tso.Ld{Dst: r0, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == 0 && o.Regs[1][0] == 0 },
		TSO:     false, SC: false,
	}
}

// SBCas replaces the stores with locked CAS instructions, which flush the
// buffer; the relaxed outcome disappears, as with the collector's marking
// CAS (Figure 5).
func SBCas() Test {
	return Test{
		Name:        "SB+cas",
		Description: "store buffering via locked CMPXCHG: locked writes are immediately visible",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.CAS{Dst: r1, Addr: x, Old: 0, New: 1}, tso.Ld{Dst: r0, Addr: y}},
				{tso.CAS{Dst: r1, Addr: y, Old: 0, New: 1}, tso.Ld{Dst: r0, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == 0 && o.Regs[1][0] == 0 },
		TSO:     false, SC: false,
	}
}

// MP is message passing: because TSO buffers drain in FIFO order, the
// stale outcome r0=1 ∧ r1=0 is forbidden under TSO as well as SC.
func MP() Test {
	return Test{
		Name:        "MP",
		Description: "message passing: FIFO buffers forbid observing the flag without the data",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.St{Addr: y, Val: 1}},
				{tso.Ld{Dst: r0, Addr: y}, tso.Ld{Dst: r1, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[1][0] == 1 && o.Regs[1][1] == 0 },
		TSO:     false, SC: false,
	}
}

// MPFence is MP with fences, trivially forbidden too; included to pin the
// fence implementation.
func MPFence() Test {
	return Test{
		Name:        "MP+mfence",
		Description: "fenced message passing remains forbidden",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.MFence{}, tso.St{Addr: y, Val: 1}},
				{tso.Ld{Dst: r0, Addr: y}, tso.Ld{Dst: r1, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[1][0] == 1 && o.Regs[1][1] == 0 },
		TSO:     false, SC: false,
	}
}

// LB is load buffering: forbidden under TSO (loads are not reordered
// with later stores).
func LB() Test {
	return Test{
		Name:        "LB",
		Description: "load buffering: r0=1 ∧ r1=1 requires load-store reordering, forbidden on TSO",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.Ld{Dst: r0, Addr: x}, tso.St{Addr: y, Val: 1}},
				{tso.Ld{Dst: r0, Addr: y}, tso.St{Addr: x, Val: 1}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == 1 && o.Regs[1][0] == 1 },
		TSO:     false, SC: false,
	}
}

// CoWR checks store-buffer forwarding: a thread always sees its own
// latest store even before it commits, while another thread can still
// see the old value.
func CoWR() Test {
	return Test{
		Name:        "CoWR",
		Description: "own stores are forwarded from the buffer; others may lag",
		Prog: tso.Program{
			NumAddrs: 1, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.Ld{Dst: r0, Addr: x}, tso.Ld{Dst: r1, Addr: x}},
			},
		},
		// The writing thread must never read anything but 1.
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] != 1 || o.Regs[0][1] != 1 },
		TSO:     false, SC: false,
	}
}

// CoWRFence checks that a second thread CAN observe the pre-store value
// while the store sits in the buffer (the "stale read" the collector's
// control variables exhibit, Figure 3).
func CoWRFence() Test {
	return Test{
		Name:        "CoWR+stale",
		Description: "another thread reads the stale value while the store is buffered",
		Prog: tso.Program{
			NumAddrs: 1, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.Ld{Dst: r0, Addr: x}},
				{tso.Ld{Dst: r0, Addr: x}},
			},
		},
		// Thread 0 sees 1 (forwarding) while thread 1 still sees 0.
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == 1 && o.Regs[1][0] == 0 },
		TSO:     true, SC: true, // observable under SC too, by running thread 1 first
	}
}

// IRIW: independent readers of independent writers. TSO is multi-copy
// atomic (a single shared memory), so the two readers cannot disagree on
// the order of the writes.
func IRIW() Test {
	return Test{
		Name:        "IRIW",
		Description: "independent readers see independent writes in a single order (multi-copy atomicity)",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}},
				{tso.St{Addr: y, Val: 1}},
				{tso.Ld{Dst: r0, Addr: x}, tso.MFence{}, tso.Ld{Dst: r1, Addr: y}},
				{tso.Ld{Dst: r0, Addr: y}, tso.MFence{}, tso.Ld{Dst: r1, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool {
			return o.Regs[2][0] == 1 && o.Regs[2][1] == 0 &&
				o.Regs[3][0] == 1 && o.Regs[3][1] == 0
		},
		TSO: false, SC: false,
	}
}

// WRC: write-to-read causality through a middleman thread; forbidden on
// TSO.
func WRC() Test {
	return Test{
		Name:        "WRC",
		Description: "write-read causality: the chain x=1 → y=1 cannot be observed inverted",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}},
				{tso.Ld{Dst: r0, Addr: x}, tso.MFence{}, tso.St{Addr: y, Val: 1}},
				{tso.Ld{Dst: r0, Addr: y}, tso.MFence{}, tso.Ld{Dst: r1, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool {
			return o.Regs[1][0] == 1 && o.Regs[2][0] == 1 && o.Regs[2][1] == 0
		},
		TSO: false, SC: false,
	}
}

// CASExclusion: two threads race a CAS on the same location; exactly one
// wins — the mark-race argument of Figure 5.
func CASExclusion() Test {
	return Test{
		Name:        "CAS-exclusion",
		Description: "racing locked CMPXCHGs admit exactly one winner",
		Prog: tso.Program{
			NumAddrs: 1, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.CAS{Dst: r0, Addr: x, Old: 0, New: 1}},
				{tso.CAS{Dst: r0, Addr: x, Old: 0, New: 1}},
			},
		},
		// Violation: both win or both lose.
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == o.Regs[1][0] },
		TSO:     false, SC: false,
	}
}

// FetchAddSerial: two locked fetch-and-adds serialize; the final value is
// always 2 and the observed old values are {0, 1}.
func FetchAddSerial() Test {
	return Test{
		Name:        "XADD-serial",
		Description: "locked fetch-and-add serializes",
		Prog: tso.Program{
			NumAddrs: 1, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.XchgAdd{Dst: r0, Addr: x, Inc: 1}},
				{tso.XchgAdd{Dst: r0, Addr: x, Inc: 1}},
			},
		},
		// Violation: lost update.
		Witness: func(o tso.Outcome) bool {
			return o.Mem[0] != 2 || o.Regs[0][0]+o.Regs[1][0] != 1
		},
		TSO: false, SC: false,
	}
}

// R is the "R" shape: writer thread 0 stores x then y; thread 1 stores
// y then reads x. The outcome (final y from thread 0's store overwritten
// — i.e. mem y = 2 — together with r0 = 0) is observable under TSO
// because thread 1's load may run before either buffered store commits,
// but is forbidden under SC. A second TSO/SC separator besides SB.
func R() Test {
	return Test{
		Name:        "R",
		Description: "store-store vs store-load: the early read is TSO-observable, SC-forbidden",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.St{Addr: y, Val: 1}},
				{tso.St{Addr: y, Val: 2}, tso.Ld{Dst: r0, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Mem[y] == 2 && o.Regs[1][0] == 0 },
		TSO:     true, SC: false,
	}
}

// TwoPlusTwoW is 2+2W: both threads write both locations in opposite
// orders. The fully-exchanged final memory (x = 1 ∧ y = 1) would need a
// cyclic commit order and is forbidden even under TSO (FIFO buffers).
func TwoPlusTwoW() Test {
	return Test{
		Name:        "2+2W",
		Description: "double write exchange: FIFO buffers forbid the cyclic final memory",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.St{Addr: y, Val: 2}},
				{tso.St{Addr: y, Val: 1}, tso.St{Addr: x, Val: 2}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Mem[x] == 1 && o.Mem[y] == 1 },
		TSO:     false, SC: false,
	}
}

// N4b is Sewell et al.'s example n4b: each thread loads a location and
// then stores to it. Observing the other thread's store in one's load
// (r0 = 2 in thread 0 and r0 = 1 in thread 1) would need each load to
// follow the other thread's program-later store — a cycle, forbidden on
// TSO (loads are not reordered with earlier loads, stores not with
// earlier stores) and under SC.
func N4b() Test {
	return Test{
		Name:        "n4b",
		Description: "load-then-store pair: the crossed reads would need a cycle",
		Prog: tso.Program{
			NumAddrs: 1, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.Ld{Dst: r0, Addr: x}, tso.St{Addr: x, Val: 1}},
				{tso.Ld{Dst: r0, Addr: x}, tso.St{Addr: x, Val: 2}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == 2 && o.Regs[1][0] == 1 },
		TSO:     false, SC: false,
	}
}

// N5 is Sewell et al.'s example n5: each thread stores to the same
// location and then loads it back. Store forwarding makes each thread
// read its own store (or a later overwrite), so observing only the
// *other* thread's value on both sides would need the two commits to
// each precede the other — forbidden on TSO and under SC.
func N5() Test {
	return Test{
		Name:        "n5",
		Description: "store-then-load pair to one location: forwarding forbids the crossed reads",
		Prog: tso.Program{
			NumAddrs: 1, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.Ld{Dst: r0, Addr: x}},
				{tso.St{Addr: x, Val: 2}, tso.Ld{Dst: r0, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == 2 && o.Regs[1][0] == 1 },
		TSO:     false, SC: false,
	}
}

// N6 is Sewell et al.'s example n6 (the x86-CC vs x86-TSO separator):
// thread 0 stores x, reads x back (forwarded from its own buffer), and
// reads y; with thread 0's store still buffered, thread 1 can commit
// y = 2 then x = 2, after which thread 0's x = 1 commits last. Thread 0
// then saw its own x = 1 and the old y = 0 with final memory x = 1 —
// observable under TSO via forwarding, forbidden under SC.
func N6() Test {
	return Test{
		Name:        "n6",
		Description: "forwarding makes a buffered store visible early: TSO-observable, SC-forbidden",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.Ld{Dst: r0, Addr: x}, tso.Ld{Dst: r1, Addr: y}},
				{tso.St{Addr: y, Val: 2}, tso.St{Addr: x, Val: 2}},
			},
		},
		Witness: func(o tso.Outcome) bool {
			return o.Regs[0][0] == 1 && o.Regs[0][1] == 0 && o.Mem[x] == 1
		},
		TSO: true, SC: false,
	}
}

// RCas is the R shape with thread 1's store replaced by a locked CAS:
// the locked instruction drains and writes memory atomically, so if the
// CAS succeeds (y was still 0), thread 0's buffered y = 1 must commit
// after it, making final y = 1; and once thread 0's stores have
// committed the CAS fails. The R witness (final y from the CAS with
// r0 = 0) becomes unobservable even under TSO — the contrast with R,
// where the plain store leaves it observable.
func RCas() Test {
	return Test{
		Name:        "R+cas",
		Description: "R with a locked CMPXCHG: the locked write closes the TSO window",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 2,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.St{Addr: y, Val: 1}},
				{tso.CAS{Dst: r1, Addr: y, Old: 0, New: 2}, tso.Ld{Dst: r0, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Mem[y] == 2 && o.Regs[1][0] == 0 },
		TSO:     false, SC: false,
	}
}

// SBOneFence is SB with the fence on one thread only: the relaxed
// outcome survives through the unfenced thread's buffer. Pins that a
// single fence is not enough — both sides of the handshake must fence
// (§2.4's fence discipline).
func SBOneFence() Test {
	return Test{
		Name:        "SB+mfence-one-side",
		Description: "fencing only one thread leaves store buffering observable",
		Prog: tso.Program{
			NumAddrs: 2, NumRegs: 1,
			Threads: [][]tso.Instr{
				{tso.St{Addr: x, Val: 1}, tso.MFence{}, tso.Ld{Dst: r0, Addr: y}},
				{tso.St{Addr: y, Val: 1}, tso.Ld{Dst: r0, Addr: x}},
			},
		},
		Witness: func(o tso.Outcome) bool { return o.Regs[0][0] == 0 && o.Regs[1][0] == 0 },
		TSO:     true, SC: false,
	}
}
