package litmus

import (
	"testing"

	"repro/internal/tso"
)

// TestCatalogue runs every litmus test exhaustively under both TSO and
// the SC oracle and checks the verdicts against the published x86-TSO
// expectations (experiment E8).
func TestCatalogue(t *testing.T) {
	for _, v := range RunAll(All()) {
		model := "TSO"
		if v.Model == tso.SC {
			model = "SC"
		}
		t.Run(v.Test.Name+"/"+model, func(t *testing.T) {
			if !v.OK() {
				t.Fatalf("%s under %s: witness observed=%v want %v (%d/%d outcomes)",
					v.Test.Name, model, v.Observed, v.Expected, v.Witnesses, v.Outcomes)
			}
		})
	}
}

// TestSBSeparatesModels pins experiment E13: the store-buffering witness
// is the observable difference between TSO and SC.
func TestSBSeparatesModels(t *testing.T) {
	sb := SB()
	tsoV := Run(sb, tso.TSO)
	scV := Run(sb, tso.SC)
	if !tsoV.Observed {
		t.Fatal("SB relaxed outcome must be observable under TSO")
	}
	if scV.Observed {
		t.Fatal("SB relaxed outcome must be forbidden under SC")
	}
	// TSO admits strictly more behaviours.
	if tsoV.Outcomes <= scV.Outcomes {
		t.Fatalf("TSO outcomes (%d) should strictly exceed SC outcomes (%d)",
			tsoV.Outcomes, scV.Outcomes)
	}
}

// TestFenceRestoresSC: adding MFENCE to SB recovers exactly the SC
// outcome set — the basis of the collector's handshake fence discipline.
func TestFenceRestoresSC(t *testing.T) {
	fenced := tso.Explore(SBFence().Prog, tso.TSO)
	sc := tso.Explore(SB().Prog, tso.SC)
	if len(fenced) != len(sc) {
		t.Fatalf("SB+mfence under TSO has %d outcomes, SB under SC has %d",
			len(fenced), len(sc))
	}
	for k := range sc {
		if _, ok := fenced[k]; !ok {
			t.Fatalf("SC outcome %s missing from fenced TSO run", k)
		}
	}
}

// TestTSOIncludesSC: every SC outcome of every test is also a TSO outcome
// (TSO only weakens SC).
func TestTSOIncludesSC(t *testing.T) {
	for _, lt := range All() {
		tsoOuts := tso.Explore(lt.Prog, tso.TSO)
		for k := range tso.Explore(lt.Prog, tso.SC) {
			if _, ok := tsoOuts[k]; !ok {
				t.Fatalf("%s: SC outcome %s not reachable under TSO", lt.Name, k)
			}
		}
	}
}
