package invariant

import (
	"strings"
	"testing"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/heap"
)

// scenario builds a model and hands back a mutable copy of its initial
// state for crafting specific global situations.
func scenario(t *testing.T) (*gcmodel.Model, cimp.System[*gcmodel.Local]) {
	t.Helper()
	m, err := gcmodel.Build(gcmodel.Config{
		NMutators: 2,
		NRefs:     4,
		NFields:   2,
		MaxBuf:    2,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1, heap.NilRef},
			1: {2, heap.NilRef},
			2: {heap.NilRef, heap.NilRef},
			3: {heap.NilRef, heap.NilRef},
		},
		InitRoots: []heap.RefSet{heap.SetOf(0), heap.SetOf(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Initial().CloneShallow()
	// Deep-copy the data states we will mutate.
	for i := range st.Procs {
		st.Procs[i] = cimp.Config[*gcmodel.Local]{
			Stack: st.Procs[i].Stack,
			Data:  st.Procs[i].Data.Clone(),
		}
	}
	return m, st
}

func view(m *gcmodel.Model, st cimp.System[*gcmodel.Local]) *View {
	return NewView(gcmodel.Global{Model: m, State: st})
}

func sysOf(st cimp.System[*gcmodel.Local]) *gcmodel.SysLocal {
	return st.Procs[len(st.Procs)-1].Data.Sys
}

func mutOf(st cimp.System[*gcmodel.Local], i int) *gcmodel.MutLocal {
	return st.Procs[i+1].Data.Mut
}

func gcOf(st cimp.System[*gcmodel.Local]) *gcmodel.GCLocal {
	return st.Procs[0].Data.GC
}

// TestInitialStateSatisfiesAll (E16 part 1): the initial state satisfies
// the full invariant battery — the invariants are satisfiable and the
// model is not vacuous.
func TestInitialStateSatisfiesAll(t *testing.T) {
	m, st := scenario(t)
	v := view(m, st)
	for _, c := range All() {
		if err := c.Pred(v); err != nil {
			t.Fatalf("%s fails on the initial state: %v", c.Name, err)
		}
	}
}

// TestMidMarkingStateSatisfiesAll (E16 part 2): a hand-crafted state in
// the middle of marking — flipped sense, greys on several work-lists, a
// pending insertion — satisfies the battery, so the invariants are
// satisfiable in their interesting regime, not just initially.
func TestMidMarkingStateSatisfiesAll(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true // marking sense flipped
	sys.FA = true
	sys.Phase = gcmodel.PhMark
	sys.Tag = gcmodel.TagRoots
	// Objects 0 and 1 marked; 1 grey (collector work-list), 0 black.
	sys.Heap.SetFlag(0, true)
	sys.Heap.SetFlag(1, true)
	gcOf(st).W = heap.SetOf(1)
	gcOf(st).FM = true
	gcOf(st).FA = true
	gcOf(st).Phase = gcmodel.PhMark
	// Mutator 0 completed its root scan; mutator 1 mid-scan with a grey
	// of its own.
	mutOf(st, 0).HP = gcmodel.HpIdleMarkSweep
	mutOf(st, 0).RootsDone = true
	mutOf(st, 1).HP = gcmodel.HpIdleMarkSweep
	sys.Heap.SetFlag(3, true)
	mutOf(st, 1).WM = heap.SetOf(3)
	// Mutator 0 has a pending (marked) insertion 2 ← marked object 1.
	sys.Heap.SetFlag(2, true)
	mutOf(st, 0).WM = heap.SetOf(2)
	sys.Bufs[1] = []gcmodel.WAct{{Loc: gcmodel.Loc{Kind: gcmodel.LField, R: 0, F: 1}, Val: gcmodel.RefVal(2)}}

	v := view(m, st)
	for _, c := range All() {
		if err := c.Pred(v); err != nil {
			t.Fatalf("%s fails on the mid-marking state: %v", c.Name, err)
		}
	}
	// Sanity: the view classified colors as intended.
	if !v.Black.Has(0) || !v.Grey.Has(1) || !v.White.Empty() == false && v.White.Has(1) {
		t.Fatalf("colors: black=%v grey=%v white=%v", v.Black, v.Grey, v.White)
	}
}

func TestValidRefsDetectsDanglingRoot(t *testing.T) {
	m, st := scenario(t)
	sysOf(st).Heap.Free(3) // mutator 1 still roots 3
	if err := ValidRefs.Pred(view(m, st)); err == nil {
		t.Fatal("dangling root not detected")
	}
}

func TestValidRefsCountsBufferedInsertionsAsRoots(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	// Mutator 0's buffer holds an insertion of 3; drop 3 from all roots
	// and free it: the pending write is the only witness.
	sys.Bufs[1] = []gcmodel.WAct{{Loc: gcmodel.Loc{Kind: gcmodel.LField, R: 0, F: 1}, Val: gcmodel.RefVal(3)}}
	mutOf(st, 1).Roots = 0
	sys.Heap.Free(3)
	err := ValidRefs.Pred(view(m, st))
	if err == nil {
		t.Fatal("freed pending-insertion target not detected")
	}
	if !strings.Contains(err.Error(), "{3}") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStrongTricolorDetectsBlackToWhite(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	sys.Heap.SetFlag(0, true) // 0 black (marked, no work-list)
	// 0.0 → 1, and 1 is white under f_M=true.
	if err := StrongTricolor.Pred(view(m, st)); err == nil {
		t.Fatal("black→white edge not detected")
	}
	// Making 1 grey (on a work-list) repairs it.
	gcOf(st).W = heap.SetOf(1)
	sys.Heap.SetFlag(1, true)
	if err := StrongTricolor.Pred(view(m, st)); err != nil {
		t.Fatalf("grey target still flagged: %v", err)
	}
}

func TestWeakTricolorAcceptsGreyProtectedWhite(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	// 3 black, pointing at white 2; 1 grey with a white chain 1→2.
	sys.Heap.SetFlag(3, true)
	sys.Heap.Store(3, 0, 2)
	sys.Heap.SetFlag(1, true)
	gcOf(st).W = heap.SetOf(1)
	if err := WeakTricolor.Pred(view(m, st)); err != nil {
		t.Fatalf("grey-protected white rejected: %v", err)
	}
	// Strong tricolor rightly complains about the same state.
	if err := StrongTricolor.Pred(view(m, st)); err == nil {
		t.Fatal("strong tricolor should reject black→white even when grey-protected")
	}
	// Severing the chain (1.0 ← nil) breaks protection.
	sys.Heap.Store(1, 0, heap.NilRef)
	if err := WeakTricolor.Pred(view(m, st)); err == nil {
		t.Fatal("unprotected white not detected")
	}
}

func TestValidWDetectsOverlapAndUnmarkedGreys(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true

	// Unmarked grey on the collector's work-list.
	gcOf(st).W = heap.SetOf(2) // 2 has flag=false → unmarked under f_M=true
	if err := ValidW.Pred(view(m, st)); err == nil {
		t.Fatal("unmarked grey not detected")
	}
	sys.Heap.SetFlag(2, true)
	if err := ValidW.Pred(view(m, st)); err != nil {
		t.Fatalf("marked grey rejected: %v", err)
	}

	// Overlapping work-lists violate disjointness.
	mutOf(st, 0).WM = heap.SetOf(2)
	if err := ValidW.Pred(view(m, st)); err == nil {
		t.Fatal("overlapping work-lists not detected")
	}
	mutOf(st, 0).WM = 0

	// A pending mark write that does not use f_M.
	sys.Bufs[1] = []gcmodel.WAct{{Loc: gcmodel.Loc{Kind: gcmodel.LMark, R: 1}, Val: gcmodel.BoolVal(false)}}
	if err := ValidW.Pred(view(m, st)); err == nil {
		t.Fatal("wrong-sense pending mark not detected")
	}
}

func TestValidWToleratesInFlightCAS(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	// Mutator 0 (PID 1) holds the TSO lock mid-CAS with an uncommitted
	// mark and ghost_honorary_grey set: exempt from the marked-on-heap
	// obligation.
	sys.Lock = 1
	mutOf(st, 0).GHG = 2
	sys.Bufs[1] = []gcmodel.WAct{{Loc: gcmodel.Loc{Kind: gcmodel.LMark, R: 2}, Val: gcmodel.BoolVal(true)}}
	if err := ValidW.Pred(view(m, st)); err != nil {
		t.Fatalf("in-flight CAS rejected: %v", err)
	}
	// Once the lock is dropped the obligation applies.
	sys.Lock = -1
	sys.Bufs[1] = nil
	if err := ValidW.Pred(view(m, st)); err == nil {
		t.Fatal("post-CAS unmarked ghost grey not detected")
	}
}

func TestMarkedDeletionsUsesBufferChain(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	mutOf(st, 0).HP = gcmodel.HpIdleMarkSweep
	// Heap: 0.0 = 1 (1 unmarked). Two pending writes to 0.0 by mutator
	// 0: first overwrites 1 (unmarked — deletion violation), second
	// overwrites the first write's value.
	sys.Bufs[1] = []gcmodel.WAct{
		{Loc: gcmodel.Loc{Kind: gcmodel.LField, R: 0, F: 0}, Val: gcmodel.RefVal(heap.NilRef)},
	}
	if err := MutatorPhase.Pred(view(m, st)); err == nil {
		t.Fatal("unmarked deletion not detected")
	}
	// Marking the victim repairs it.
	sys.Heap.SetFlag(1, true)
	gcOf(st).W = heap.SetOf(1)
	if err := MutatorPhase.Pred(view(m, st)); err != nil {
		t.Fatalf("marked deletion rejected: %v", err)
	}
	// Chained writes: the second write's victim is the first write's
	// value (2, unmarked) — not the committed field.
	sys.Bufs[1] = []gcmodel.WAct{
		{Loc: gcmodel.Loc{Kind: gcmodel.LField, R: 0, F: 0}, Val: gcmodel.RefVal(2)},
		{Loc: gcmodel.Loc{Kind: gcmodel.LField, R: 0, F: 0}, Val: gcmodel.RefVal(heap.NilRef)},
	}
	if err := MutatorPhase.Pred(view(m, st)); err == nil {
		t.Fatal("chained-buffer deletion of unmarked 2 not detected")
	}
}

func TestMarkedInsertionsPerPhase(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	// A pending white insertion by mutator 0.
	sys.Bufs[1] = []gcmodel.WAct{
		{Loc: gcmodel.Loc{Kind: gcmodel.LField, R: 0, F: 1}, Val: gcmodel.RefVal(2)},
	}
	// In hp_Idle and hp_IdleInit phases the insertion obligation does
	// not apply (barriers may be off).
	mutOf(st, 0).HP = gcmodel.HpIdle
	if err := MutatorPhase.Pred(view(m, st)); err != nil {
		t.Fatalf("hp_Idle: %v", err)
	}
	// From hp_InitMark on it does.
	mutOf(st, 0).HP = gcmodel.HpInitMark
	if err := MutatorPhase.Pred(view(m, st)); err == nil {
		t.Fatal("white insertion not detected in hp_InitMark")
	}
}

func TestReachableSnapshotAfterRootsDone(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	mu := mutOf(st, 0)
	mu.HP = gcmodel.HpIdleMarkSweep
	mu.RootsDone = true
	// Mutator 0 roots {0}; 0 marked-black but its child 1 is white and
	// unprotected → snapshot violation.
	sys.Heap.SetFlag(0, true)
	if err := MutatorPhase.Pred(view(m, st)); err == nil {
		t.Fatal("unprotected reachable white not detected after root scan")
	}
	// Grey-protecting the chain fixes it: 1 grey, 2 white-reachable.
	sys.Heap.SetFlag(1, true)
	gcOf(st).W = heap.SetOf(1)
	if err := MutatorPhase.Pred(view(m, st)); err != nil {
		t.Fatalf("grey-protected snapshot rejected: %v", err)
	}
}

func TestSweepSafetyRequiresNoGreys(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	gcOf(st).Phase = gcmodel.PhSweep
	// All reachable objects black.
	for _, r := range []heap.Ref{0, 1, 2, 3} {
		sys.Heap.SetFlag(r, true)
	}
	if err := SweepSafety.Pred(view(m, st)); err != nil {
		t.Fatalf("clean sweep state rejected: %v", err)
	}
	gcOf(st).W = heap.SetOf(2)
	if err := SweepSafety.Pred(view(m, st)); err == nil {
		t.Fatal("grey during sweep not detected")
	}
}

func TestTSOControlLimitsPendingControlWrites(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	// Two phase writes pending at the collector are allowed.
	sys.Bufs[0] = []gcmodel.WAct{
		{Loc: gcmodel.Loc{Kind: gcmodel.LPhase}, Val: gcmodel.PhaseVal(gcmodel.PhSweep)},
		{Loc: gcmodel.Loc{Kind: gcmodel.LPhase}, Val: gcmodel.PhaseVal(gcmodel.PhIdle)},
	}
	if err := TSOControl.Pred(view(m, st)); err != nil {
		t.Fatalf("two pending phase writes rejected: %v", err)
	}
	// Three are not.
	sys.Bufs[0] = append(sys.Bufs[0], gcmodel.WAct{Loc: gcmodel.Loc{Kind: gcmodel.LPhase}})
	if err := TSOControl.Pred(view(m, st)); err == nil {
		t.Fatal("three pending phase writes accepted")
	}
	// A mutator must never have pending control writes.
	sys.Bufs[0] = nil
	sys.Bufs[1] = []gcmodel.WAct{{Loc: gcmodel.Loc{Kind: gcmodel.LFM}, Val: 1}}
	if err := TSOControl.Pred(view(m, st)); err == nil {
		t.Fatal("mutator control write accepted")
	}
}

func TestGreyProtectedComputation(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	// Grey 0 → white 1 → white 2; 3 white and unreachable from greys.
	sys.Heap.SetFlag(0, true)
	gcOf(st).W = heap.SetOf(0)
	v := view(m, st)
	for _, r := range []heap.Ref{0, 1, 2} {
		if !v.GreyProtected.Has(r) {
			t.Fatalf("%d not grey-protected (set=%v)", r, v.GreyProtected)
		}
	}
	if v.GreyProtected.Has(3) {
		t.Fatal("3 spuriously protected")
	}
}

func TestMutExtraRootsIncludesDeletionBarrierTarget(t *testing.T) {
	m, st := scenario(t)
	mu := mutOf(st, 0)
	mu.InMark = true
	mu.InMarkDel = true
	mu.MRef = 2
	v := view(m, st)
	if !v.MutRoots(0).Has(2) {
		t.Fatal("in-flight deletion-barrier target not treated as root")
	}
	mu.InMarkDel = false
	v = view(m, st)
	if v.MutRoots(0).Has(2) {
		t.Fatal("non-deletion mark target treated as root")
	}
}

func TestSysPhaseIdleHandshake(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.Tag = gcmodel.TagIdle
	// f_A = f_M = false, heap all-black (flags false): fine.
	if err := SysPhase.Pred(view(m, st)); err != nil {
		t.Fatalf("initial idle handshake state rejected: %v", err)
	}
	// A grey during the idle handshake violates hp_Idle.
	gcOf(st).W = heap.SetOf(0)
	if err := SysPhase.Pred(view(m, st)); err == nil {
		t.Fatal("grey during idle handshake accepted")
	}
	gcOf(st).W = 0
	// f_A = f_M but a white object: violation.
	sys.Heap.SetFlag(2, true) // flag=true ≠ f_M=false → white
	if err := SysPhase.Pred(view(m, st)); err == nil {
		t.Fatal("white object with f_A = f_M accepted during idle handshake")
	}
	// After the flip (f_M=true as the collector sees it): heap must be
	// all white; object 2 (flag=true) is now marked → violation.
	gcOf(st).FM = true
	sys.FM = true
	if err := SysPhase.Pred(view(m, st)); err == nil {
		t.Fatal("marked object with f_A ≠ f_M accepted during idle handshake")
	}
}

func TestSysPhaseIdleInitNoBlacks(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.Tag = gcmodel.TagIdleInit
	sys.FM = true // flipped: heap all white now
	if err := SysPhase.Pred(view(m, st)); err != nil {
		t.Fatalf("white heap rejected: %v", err)
	}
	sys.Heap.SetFlag(1, true) // marked, not on any work-list → black
	if err := SysPhase.Pred(view(m, st)); err == nil {
		t.Fatal("black object during idle-init handshake accepted")
	}
	// Grey is fine: put it on a work-list.
	gcOf(st).W = heap.SetOf(1)
	if err := SysPhase.Pred(view(m, st)); err != nil {
		t.Fatalf("grey during idle-init rejected: %v", err)
	}
}

func TestSysPhaseInitMarkBeforeFACommit(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.Tag = gcmodel.TagInitMark
	sys.FM = true
	gcOf(st).FM = true
	// The f_A ← f_M write is still in the collector's buffer.
	sys.Bufs[0] = []gcmodel.WAct{{Loc: gcmodel.Loc{Kind: gcmodel.LFA}, Val: gcmodel.BoolVal(true)}}
	if err := SysPhase.Pred(view(m, st)); err != nil {
		t.Fatalf("clean pre-commit state rejected: %v", err)
	}
	sys.Heap.SetFlag(0, true) // a black before f_A commits: violation
	if err := SysPhase.Pred(view(m, st)); err == nil {
		t.Fatal("black before f_A commit accepted")
	}
	// Once committed (f_A = f_M in memory), blacks are allowed.
	sys.Bufs[0] = nil
	sys.FA = true
	if err := SysPhase.Pred(view(m, st)); err != nil {
		t.Fatalf("black after f_A commit rejected: %v", err)
	}
}

func TestGCWEmptyRequiresPendingWitness(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	sys.FM = true
	sys.Tag = gcmodel.TagWork
	// Move the collector to the work-handshake wait label so the
	// invariant applies: easiest is to check the predicate's guard by
	// leaving the program counter alone (not at wait_all) — then the
	// invariant is vacuous.
	mu := mutOf(st, 0)
	sys.Heap.SetFlag(2, true)
	mu.WM = heap.SetOf(2)
	sys.Pending[0] = false
	sys.Pending[1] = false
	if err := GCWEmpty.Pred(view(m, st)); err != nil {
		t.Fatalf("invariant applied outside the wait window: %v", err)
	}
}

func TestViewFMUsesCollectorPerspective(t *testing.T) {
	m, st := scenario(t)
	sys := sysOf(st)
	// Memory f_M false, but the collector has a pending flip: the color
	// interpretation must follow the collector's (authoritative) view.
	sys.Bufs[0] = []gcmodel.WAct{{Loc: gcmodel.Loc{Kind: gcmodel.LFM}, Val: gcmodel.BoolVal(true)}}
	v := view(m, st)
	if !v.FM {
		t.Fatal("view ignored the collector's buffered f_M write")
	}
	// All objects (flag=false) are white under the new sense.
	if v.White.Len() != 4 || !v.Marked.Empty() {
		t.Fatalf("colors under pending flip: white=%v marked=%v", v.White, v.Marked)
	}
}
