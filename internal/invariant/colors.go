// Package invariant implements the paper's safety invariants (§2.1, §3.2)
// as executable predicates over global model states, for use by the
// explicit-state model checker (package explore) and the simulator. The
// names follow the paper: valid_refs_inv, the strong and weak tricolor
// invariants, reachable_snapshot_inv, marked_insertions,
// marked_deletions, valid_W_inv, sys_phase_inv, mutator_phase_inv, and
// gc_W_empty_mut_inv.
//
// Color interpretation (§3.2): an object is white if it is not marked on
// the heap (its flag differs from f_M), grey if it is on a work-list or
// is some process's ghost_honorary_grey, and black if it is marked on the
// heap and not grey. White and grey overlap during the marking CAS; black
// is disjoint from both. f_M is taken from the collector's viewpoint
// (its own newest buffered write, else memory), the collector being
// f_M's sole writer.
package invariant

import (
	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/heap"
)

// View is a precomputed color/root decomposition of a global state; all
// predicates are stated against it.
type View struct {
	G   gcmodel.Global
	Sys *gcmodel.SysLocal
	FM  bool // f_M from the collector's viewpoint

	// Grey is the set of grey references: every work-list (collector,
	// system, and per-mutator) plus every process's ghost_honorary_grey.
	Grey heap.RefSet
	// Marked is the set of references whose heap flag equals FM.
	Marked heap.RefSet
	// White is the set of valid references not Marked.
	White heap.RefSet
	// Black is Marked minus Grey.
	Black heap.RefSet
	// GreyProtected is Grey plus every white reference reachable from a
	// grey reference via a chain of white references (Grey →*w White).
	GreyProtected heap.RefSet
}

// NewView decomposes a global state.
func NewView(g gcmodel.Global) *View {
	v := &View{G: g, Sys: g.Sys(), FM: g.GCViewFM()}

	grey := g.GC().W.Union(v.Sys.W)
	grey = grey.Add(g.GC().GHG)
	for m := 0; m < g.NMut(); m++ {
		mu := g.Mut(m)
		grey = grey.Union(mu.WM).Add(mu.GHG)
	}
	v.Grey = grey

	for i, o := range v.Sys.Heap.Objs {
		if o == nil {
			continue
		}
		r := heap.Ref(i)
		if o.Flag == v.FM {
			v.Marked = v.Marked.Add(r)
		} else {
			v.White = v.White.Add(r)
		}
	}
	v.Black = v.Marked.Minus(v.Grey)
	v.GreyProtected = v.Sys.Heap.ReachableVia(v.Grey, func(r heap.Ref) bool {
		return v.White.Has(r) || v.Grey.Has(r)
	}).Union(v.Grey)
	return v
}

// MutExtraRoots returns the references mutator m can expose beyond its
// declared roots (§3.2): the values of field writes pending in its TSO
// store buffer, its ghost_honorary_grey, and — while its deletion barrier
// is marking — the reference being marked.
func (v *View) MutExtraRoots(m int) heap.RefSet {
	var s heap.RefSet
	mu := v.G.Mut(m)
	s = s.Add(mu.GHG)
	if mu.InMarkDel {
		s = s.Add(mu.MRef)
	}
	for _, w := range v.G.Buf(gcmodel.MutPID(m)) {
		if w.Loc.Kind == gcmodel.LField {
			s = s.Add(w.Val.Ref())
		}
	}
	return s
}

// MutRoots returns mutator m's full root set for the safety argument:
// declared roots plus extra roots.
func (v *View) MutRoots(m int) heap.RefSet {
	return v.G.Mut(m).Roots.Union(v.MutExtraRoots(m))
}

// GlobalRoots returns the union of every mutator's full root set.
func (v *View) GlobalRoots() heap.RefSet {
	var s heap.RefSet
	for m := 0; m < v.G.NMut(); m++ {
		s = s.Union(v.MutRoots(m))
	}
	return s
}

// ReachableFrom computes heap reachability from a root set, including
// dangling roots themselves (a dangling root is a safety violation that
// Reachable alone would mask, so collect them separately).
func (v *View) ReachableFrom(roots heap.RefSet) (reach heap.RefSet, dangling heap.RefSet) {
	roots.Each(func(r heap.Ref) {
		if !v.Sys.Heap.Valid(r) {
			dangling = dangling.Add(r)
		}
	})
	return v.Sys.Heap.Reachable(roots), dangling
}

// worklists returns every work-list in the system, labeled.
func (v *View) worklists() []labeledSet {
	out := []labeledSet{
		{"GC.W", v.G.GC().W},
		{"Sys.W", v.Sys.W},
	}
	for m := 0; m < v.G.NMut(); m++ {
		out = append(out, labeledSet{mutName(m) + ".WM", v.G.Mut(m).WM})
	}
	return out
}

type labeledSet struct {
	name string
	set  heap.RefSet
}

func mutName(m int) string { return "mut" + string(rune('0'+m)) }

// atGC reports whether the collector is at the given label.
func (v *View) atGC(label string) bool {
	return cimp.At(v.G.GCConfig(), label)
}
