package invariant

import (
	"fmt"

	"repro/internal/gcmodel"
	"repro/internal/heap"
)

// Check is a named invariant over global states.
type Check struct {
	Name string
	Pred func(*View) error
}

// ValidRefs is the headline safety property:
//
//	□ (∀r. reachable r → valid_ref r)
//
// — there is always an object at every reference reachable from a mutator
// root, where roots include pending TSO insertions and in-flight
// deletion-barrier targets (§3.2).
var ValidRefs = Check{Name: "valid_refs_inv", Pred: func(v *View) error {
	roots := v.GlobalRoots()
	_, dangling := v.ReachableFrom(roots)
	if !dangling.Empty() {
		return fmt.Errorf("reachable references %v have no object (roots %v, heap %v)",
			dangling, roots, v.Sys.Heap)
	}
	return nil
}}

// StrongTricolor: there are no pointers from black objects to white
// objects (§2.1). It applies to the heap: committed fields only (pending
// writes are covered by marked_insertions).
var StrongTricolor = Check{Name: "strong_tricolor_inv", Pred: func(v *View) error {
	var err error
	v.Black.Each(func(b heap.Ref) {
		for f, c := range v.Sys.Heap.Obj(b).Fields {
			if c != heap.NilRef && v.White.Has(c) && !v.Grey.Has(c) {
				err = fmt.Errorf("black %d.%d → white %d", b, f, c)
			}
		}
	})
	return err
}}

// WeakTricolor: every white object pointed to by a black object is
// grey-protected — reachable from a grey object via a chain of zero or
// more white objects (§2.1, Figure 1). Implied by StrongTricolor; checked
// independently because the mutators' roots are treated as black once
// scanned.
var WeakTricolor = Check{Name: "weak_tricolor_inv", Pred: func(v *View) error {
	var err error
	v.Black.Each(func(b heap.Ref) {
		for f, c := range v.Sys.Heap.Obj(b).Fields {
			if c != heap.NilRef && v.White.Has(c) && !v.GreyProtected.Has(c) {
				err = fmt.Errorf("black %d.%d → white %d not grey-protected", b, f, c)
			}
		}
	})
	return err
}}

// markedInsertions: every reference being written into an object by a
// write pending in m's TSO store buffer is marked (§3.2).
func markedInsertions(v *View, m int) error {
	for _, w := range v.G.Buf(gcmodel.MutPID(m)) {
		if w.Loc.Kind != gcmodel.LField {
			continue
		}
		r := w.Val.Ref()
		if r == heap.NilRef {
			continue
		}
		if !v.Marked.Has(r) && !v.Grey.Has(r) {
			return fmt.Errorf("mutator %d pending insertion %v←%d targets unmarked %d", m, w.Loc, r, r)
		}
	}
	return nil
}

// markedDeletions: every reference that will be overwritten by a write
// pending in m's TSO store buffer is marked (§3.2). The overwritten
// reference for a pending write is the newest earlier pending write to
// the same location in the same buffer, else the committed field value.
func markedDeletions(v *View, m int) error {
	buf := v.G.Buf(gcmodel.MutPID(m))
	for i, w := range buf {
		if w.Loc.Kind != gcmodel.LField {
			continue
		}
		victim := heap.NilRef
		found := false
		for j := i - 1; j >= 0; j-- {
			if buf[j].Loc == w.Loc {
				victim = buf[j].Val.Ref()
				found = true
				break
			}
		}
		if !found {
			if !v.Sys.Heap.Valid(w.Loc.R) {
				continue // freed object: only in ablated models
			}
			victim = v.Sys.Heap.Load(w.Loc.R, w.Loc.F)
		}
		if victim == heap.NilRef {
			continue
		}
		if !v.Marked.Has(victim) && !v.Grey.Has(victim) {
			return fmt.Errorf("mutator %d pending write %v deletes unmarked %d", m, w, victim)
		}
	}
	return nil
}

// ValidW is valid_W_inv (§3.2): work-lists are pairwise disjoint; if a
// reference is on some process's work-list or is its
// ghost_honorary_grey and that process does not hold the TSO lock, the
// object is marked on the heap; and any pending mark writes use f_M.
var ValidW = Check{Name: "valid_W_inv", Pred: func(v *View) error {
	wls := v.worklists()
	for i := range wls {
		for j := i + 1; j < len(wls); j++ {
			if inter := wls[i].set.Intersect(wls[j].set); !inter.Empty() {
				return fmt.Errorf("work-lists %s and %s intersect at %v",
					wls[i].name, wls[j].name, inter)
			}
		}
	}

	// Per-process marked-on-heap obligation.
	procs := []struct {
		name  string
		pid   int
		owned heap.RefSet
	}{
		{"GC", int(gcmodel.GCPID), v.G.GC().W.Add(v.G.GC().GHG)},
	}
	for m := 0; m < v.G.NMut(); m++ {
		procs = append(procs, struct {
			name  string
			pid   int
			owned heap.RefSet
		}{mutName(m), int(gcmodel.MutPID(m)), v.G.Mut(m).WM.Add(v.G.Mut(m).GHG)})
	}
	for _, pr := range procs {
		if int(v.Sys.Lock) == pr.pid {
			continue // a mark may be in flight inside the CAS
		}
		var err error
		pr.owned.Each(func(r heap.Ref) {
			if !v.Sys.Heap.Valid(r) {
				err = fmt.Errorf("%s owns grey %d with no object", pr.name, r)
			} else if !v.Marked.Has(r) {
				err = fmt.Errorf("%s owns grey %d not marked on heap", pr.name, r)
			}
		})
		if err != nil {
			return err
		}
	}
	// The system work-list: transferred greys, no owner, never under a
	// lock of their own.
	var err error
	v.Sys.W.Each(func(r heap.Ref) {
		if !v.Sys.Heap.Valid(r) || !v.Marked.Has(r) {
			err = fmt.Errorf("Sys.W grey %d not marked on heap", r)
		}
	})
	if err != nil {
		return err
	}
	// Pending mark writes use f_M.
	for p, buf := range v.Sys.Bufs {
		for _, w := range buf {
			if w.Loc.Kind == gcmodel.LMark && w.Val.Bool() != v.FM {
				return fmt.Errorf("pid %d pending mark %v does not use f_M=%v", p, w, v.FM)
			}
		}
	}
	return nil
}}

// reachableSnapshot: everything reachable from mutator m's roots is black
// or grey-protected (§3.2); established as m completes the root-marking
// handshake and maintained until the cycle ends.
func reachableSnapshot(v *View, m int) error {
	reach, dangling := v.ReachableFrom(v.MutRoots(m))
	if !dangling.Empty() {
		return fmt.Errorf("mutator %d roots dangle at %v", m, dangling)
	}
	var err error
	reach.Each(func(r heap.Ref) {
		if !v.Black.Has(r) && !v.GreyProtected.Has(r) {
			err = fmt.Errorf("mutator %d reaches %d: neither black nor grey-protected (roots=%v black=%v grey=%v)",
				m, r, v.MutRoots(m), v.Black, v.Grey)
		}
	})
	return err
}

// MutatorPhase is mutator_phase_inv (§3.2): per-mutator assertions keyed
// by the mutator's ghost handshake phase.
var MutatorPhase = Check{Name: "mutator_phase_inv", Pred: func(v *View) error {
	for m := 0; m < v.G.NMut(); m++ {
		mu := v.G.Mut(m)
		switch mu.HP {
		case gcmodel.HpIdleInit:
			// There are no black references (allocation is still white;
			// the heap was whitened by the f_M flip).
			if !v.Black.Empty() {
				return fmt.Errorf("mutator %d in %v but black = %v", m, mu.HP, v.Black)
			}
		case gcmodel.HpInitMark:
			if err := markedInsertions(v, m); err != nil {
				return err
			}
		case gcmodel.HpIdleMarkSweep:
			if err := markedInsertions(v, m); err != nil {
				return err
			}
			if err := markedDeletions(v, m); err != nil {
				return err
			}
			if mu.RootsDone {
				if err := reachableSnapshot(v, m); err != nil {
					return err
				}
			}
		}
	}
	return nil
}}

// SysPhase is sys_phase_inv (§3.2): assertions keyed by the handshake
// round the collector has most recently initiated.
var SysPhase = Check{Name: "sys_phase_inv", Pred: func(v *View) error {
	switch v.Sys.Tag {
	case gcmodel.TagIdle:
		// hp_Idle: if f_A = f_M the heap is black, else white; no greys.
		if !v.Grey.Empty() {
			return fmt.Errorf("greys %v during idle handshake", v.Grey)
		}
		if v.G.GCViewFA() == v.FM {
			if !v.White.Empty() {
				return fmt.Errorf("white %v during idle handshake with f_A = f_M", v.White)
			}
		} else if !v.Marked.Empty() {
			return fmt.Errorf("marked %v during idle handshake with f_A ≠ f_M", v.Marked)
		}
	case gcmodel.TagIdleInit:
		// hp_IdleInit: there are no black references.
		if !v.Black.Empty() {
			return fmt.Errorf("black %v during idle-init handshake", v.Black)
		}
	case gcmodel.TagInitMark:
		// hp_InitMark: until the write to f_A is committed there are no
		// black references (mutators allocate white until then).
		if v.Sys.FA != v.G.GCViewFA() {
			// f_A write still pending.
			if !v.Black.Empty() {
				return fmt.Errorf("black %v before f_A commit", v.Black)
			}
		}
		if v.Sys.FA != v.FM && !v.Black.Empty() {
			return fmt.Errorf("black %v while committed f_A ≠ f_M", v.Black)
		}
	}
	return nil
}}

// GCWEmpty is gc_W_empty_mut_inv (§3.2): while the collector waits on a
// get-roots or get-work handshake with an empty collector and system
// work-list, any mutator that has already completed the round and holds
// grey references implies some mutator with grey references has yet to
// complete the round. This is what makes the mark-loop termination test
// sound.
var GCWEmpty = Check{Name: "gc_W_empty_mut_inv", Pred: func(v *View) error {
	if v.Sys.Tag != gcmodel.TagRoots && v.Sys.Tag != gcmodel.TagWork {
		return nil
	}
	if !(v.atGC("gc_hs_roots_wait_all") || v.atGC("gc_hs_work_wait_all")) {
		return nil
	}
	if !v.G.GC().W.Empty() || !v.Sys.W.Empty() {
		return nil
	}
	for m := 0; m < v.G.NMut(); m++ {
		mu := v.G.Mut(m)
		if v.Sys.Pending[m] || mu.WM.Empty() {
			continue
		}
		// m completed the round yet holds greys: someone still pending
		// must hold greys (they will report them).
		ok := false
		for m2 := 0; m2 < v.G.NMut(); m2++ {
			if v.Sys.Pending[m2] && !v.G.Mut(m2).WM.Union(greyGhost(v, m2)).Empty() {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("mutator %d completed round with WM=%v but no pending mutator holds greys",
				m, mu.WM)
		}
	}
	return nil
}}

func greyGhost(v *View, m int) heap.RefSet {
	return heap.SetOf(v.G.Mut(m).GHG)
}

// SweepSafety: while the collector's ghost phase is Sweep, tracing has
// terminated: there are no grey references and everything reachable is
// black (§3.2, "Termination of Marking"). White objects are garbage.
var SweepSafety = Check{Name: "sweep_inv", Pred: func(v *View) error {
	if v.G.GC().Phase != gcmodel.PhSweep {
		return nil
	}
	if !v.Grey.Empty() {
		return fmt.Errorf("greys %v during sweep", v.Grey)
	}
	roots := v.GlobalRoots()
	reach, dangling := v.ReachableFrom(roots)
	if !dangling.Empty() {
		return fmt.Errorf("dangling roots %v during sweep", dangling)
	}
	var err error
	reach.Each(func(r heap.Ref) {
		if !v.Black.Has(r) {
			err = fmt.Errorf("reachable %d not black during sweep", r)
		}
	})
	return err
}}

// TSOControl captures the paper's coarse TSO invariants on the control
// variables (§3.2): only the collector writes f_A, f_M, and phase; at
// most one write to each of f_A and f_M is pending (the collector fences
// at the next handshake); and at most two phase writes are pending
// (Mark→Sweep and Sweep→Idle are unsynchronized).
var TSOControl = Check{Name: "tso_control_inv", Pred: func(v *View) error {
	for p, buf := range v.Sys.Bufs {
		nFA, nFM, nPhase := 0, 0, 0
		for _, w := range buf {
			switch w.Loc.Kind {
			case gcmodel.LFA:
				nFA++
			case gcmodel.LFM:
				nFM++
			case gcmodel.LPhase:
				nPhase++
			}
		}
		if p != int(gcmodel.GCPID) && nFA+nFM+nPhase > 0 {
			return fmt.Errorf("pid %d has pending control writes", p)
		}
		if nFA > 1 || nFM > 1 || nPhase > 2 {
			return fmt.Errorf("collector buffer holds %d f_A, %d f_M, %d phase writes", nFA, nFM, nPhase)
		}
	}
	return nil
}}

// All returns the full battery of invariants, strongest (and cheapest to
// violate detectably) first.
func All() []Check {
	return []Check{
		ValidRefs,
		ValidW,
		StrongTricolor,
		WeakTricolor,
		MutatorPhase,
		SysPhase,
		GCWEmpty,
		SweepSafety,
		TSOControl,
	}
}

// Safety returns just the headline property, for ablation hunts where the
// auxiliary invariants are expected to fail first.
func Safety() []Check { return []Check{ValidRefs} }

// Failure is a named invariant failure, used by the simulator (package
// sched) where no counterexample trace is retained.
type Failure struct {
	Name string
	Err  error
	Step int
}

func (f *Failure) Error() string {
	return fmt.Sprintf("%s violated at step %d: %v", f.Name, f.Step, f.Err)
}
