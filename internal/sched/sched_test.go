package sched

import (
	"context"
	"testing"

	"repro/internal/gcmodel"
	"repro/internal/heap"
	"repro/internal/invariant"
)

func model(t *testing.T, mutate func(*gcmodel.Config)) *gcmodel.Model {
	t.Helper()
	cfg := gcmodel.Config{
		NMutators: 1,
		NRefs:     3,
		NFields:   1,
		MaxBuf:    2,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0)},
		AllowNilStore: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := gcmodel.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWalkCompletesCyclesWithoutViolation(t *testing.T) {
	m := model(t, nil)
	res := Walk(m, invariant.All(), Options{Seed: 1, Steps: 30_000})
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	if res.Steps != 30_000 {
		t.Fatalf("steps = %d", res.Steps)
	}
	if res.Cycles == 0 {
		t.Fatal("no collector cycles completed in 30k steps")
	}
}

func TestWalkIsDeterministicPerSeed(t *testing.T) {
	m := model(t, nil)
	a := Walk(m, nil, Options{Seed: 7, Steps: 5_000})
	b := Walk(m, nil, Options{Seed: 7, Steps: 5_000})
	if a.Cycles != b.Cycles || a.Steps != b.Steps {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestWalkFindsAblationViolation(t *testing.T) {
	m := model(t, func(c *gcmodel.Config) {
		c.AllocWhite = true
	})
	// Allocating white during marking is refuted quickly by random
	// walking across several seeds.
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		res := Walk(m, invariant.All(), Options{Seed: seed, Steps: 50_000})
		if res.Violation != nil {
			found = true
			t.Logf("seed %d found %s at step %d", seed, res.Violation.Name, res.Violation.Step)
		}
	}
	if !found {
		t.Fatal("no violation found by random walks on the alloc-white ablation")
	}
}

func TestWalkCheckEveryReducesChecks(t *testing.T) {
	m := model(t, nil)
	// Sparse checking still completes and still catches nothing on the
	// safe model.
	res := Walk(m, invariant.All(), Options{Seed: 3, Steps: 10_000, CheckEvery: 64})
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
}

func TestWalkInterrupted(t *testing.T) {
	m := model(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Walk(m, invariant.All(), Options{Seed: 1, Steps: 30_000, Context: ctx})
	if !res.Interrupted {
		t.Fatal("cancelled walk not marked interrupted")
	}
	if res.Steps >= 30_000 {
		t.Fatalf("cancelled walk ran all %d steps", res.Steps)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	// A nil context never interrupts.
	res = Walk(m, nil, Options{Seed: 1, Steps: 1_000})
	if res.Interrupted || res.Steps != 1_000 {
		t.Fatalf("nil-context walk: interrupted=%v steps=%d", res.Interrupted, res.Steps)
	}
}

func TestWalkBiasKeepsSystemLive(t *testing.T) {
	m := model(t, nil)
	res := Walk(m, invariant.All(), Options{Seed: 5, Steps: 20_000, Bias: 3})
	if res.Violation != nil {
		t.Fatalf("violation under mutator bias: %v", res.Violation)
	}
	if res.Cycles == 0 {
		t.Fatal("collector starved under mutator bias")
	}
}
