// Package sched provides randomized schedulers for long simulation runs
// of the GC model: where package explore exhausts small state spaces,
// sched drives deep random walks through larger configurations, checking
// the invariants at every step. This trades completeness for depth and
// scale, like stress testing on hardware.
package sched

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/invariant"
)

// Options configures a random walk.
type Options struct {
	// Seed makes the walk reproducible.
	Seed int64
	// Steps bounds the walk length.
	Steps int
	// CheckEvery checks invariants every k-th step (1 = every step).
	CheckEvery int
	// Bias weights scheduling toward mutator transitions; 0 is uniform
	// over enabled transitions, k > 0 duplicates each mutator-initiated
	// transition k extra times in the lottery. The collector makes
	// progress regardless because mutators spend most transitions
	// blocked on handshakes at cycle boundaries.
	Bias int
	// Context, when non-nil, interrupts the walk between steps. An
	// interrupted walk reports the steps taken so far with
	// Result.Interrupted set; a violation found before the interruption
	// is still reported.
	Context context.Context
}

// Result summarizes a walk.
type Result struct {
	Steps       int
	Cycles      int // collector cycles completed (observed phase Idle→non-Idle edges)
	Violation   *invariant.Failure
	Interrupted bool // the walk was cut short by Options.Context
}

// Walk performs a seeded random walk over the model's transition system.
func Walk(m *gcmodel.Model, checks []invariant.Check, opt Options) Result {
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.Steps == 0 {
		opt.Steps = 10_000
	}
	if opt.CheckEvery == 0 {
		opt.CheckEvery = 1
	}

	st := m.Initial()
	res := Result{}
	lastPhase := gcmodel.PhIdle

	type cand struct {
		next cimp.System[*gcmodel.Local]
		ev   cimp.Event
	}
	for i := 0; i < opt.Steps; i++ {
		if opt.Context != nil && i%256 == 0 {
			select {
			case <-opt.Context.Done():
				res.Interrupted = true
				return res
			default:
			}
		}
		var cands []cand
		m.Successors(st, func(n cimp.System[*gcmodel.Local], ev cimp.Event) {
			w := 1
			if opt.Bias > 0 && ev.Proc != gcmodel.GCPID && ev.Proc != m.SysPID() {
				w += opt.Bias
			}
			for k := 0; k < w; k++ {
				cands = append(cands, cand{n, ev})
			}
		})
		if len(cands) == 0 {
			res.Violation = &invariant.Failure{
				Name: "deadlock",
				Err:  fmt.Errorf("no enabled transition at step %d", i),
			}
			return res
		}
		c := cands[rng.Intn(len(cands))]
		st = c.next
		res.Steps++

		g := gcmodel.Global{Model: m, State: st}
		ph := g.Sys().Phase
		if lastPhase != gcmodel.PhIdle && ph == gcmodel.PhIdle {
			res.Cycles++
		}
		lastPhase = ph

		if res.Steps%opt.CheckEvery == 0 {
			v := invariant.NewView(g)
			for _, chk := range checks {
				if err := chk.Pred(v); err != nil {
					res.Violation = &invariant.Failure{Name: chk.Name, Err: err, Step: res.Steps}
					return res
				}
			}
		}
	}
	return res
}
