package core

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range map[string]ModelConfig{
		"tiny":        TinyConfig(),
		"alloc":       AllocConfig(),
		"two-mutator": TwoMutatorConfig(),
		"chain":       ChainConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
}

func TestVerifyRejectsInvalidConfig(t *testing.T) {
	if _, err := Verify(ModelConfig{}, VerifyOptions{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestVerifyBoundedRunHoldsOnSafeModel(t *testing.T) {
	res, err := Verify(TinyConfig(), VerifyOptions{MaxStates: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoViolation() {
		t.Fatalf("violation:\n%s", res.RenderViolation())
	}
	if res.Complete {
		t.Fatal("30k-state cap should not exhaust the tiny config")
	}
	// A capped run must never claim the property holds: Holds demands a
	// complete exploration.
	if res.Holds() {
		t.Fatal("Holds() true on an incomplete (capped) run")
	}
	if res.Status() != "no-violation" {
		t.Fatalf("Status() = %q on a clean capped run, want no-violation", res.Status())
	}
	if res.RenderViolation() != "" {
		t.Fatal("RenderViolation non-empty without violation")
	}
}

func TestVerifyFindsAblationViolationWithTrace(t *testing.T) {
	cfg := TinyConfig()
	cfg.NoDeletionBarrier = true
	res, err := Verify(cfg, VerifyOptions{Trace: true, HeadlineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds() {
		t.Fatal("ablated model verified")
	}
	rendered := res.RenderViolation()
	if !strings.Contains(rendered, "valid_refs_inv") || !strings.Contains(rendered, "counterexample") {
		t.Fatalf("violation rendering incomplete:\n%s", rendered)
	}
}

// livenessTestConfig is TinyConfig shrunk (stores only, budget 1) so
// the sequential liveness graph build stays in test time.
func livenessTestConfig() ModelConfig {
	cfg := TinyConfig()
	cfg.OpBudget = 1
	cfg.MaxBuf = 1
	cfg.DisableLoad = true
	cfg.DisableDiscard = true
	return cfg
}

func TestVerifyLivenessCleanModel(t *testing.T) {
	res, err := Verify(livenessTestConfig(), VerifyOptions{Liveness: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Liveness == nil {
		t.Fatal("liveness result missing")
	}
	if !res.Holds() {
		t.Fatalf("clean model violated: %+v", res.Liveness.Violations())
	}
	// The liveness pass re-explores the same unreduced relation the
	// safety checker just walked: the graphs must agree exactly.
	if res.Liveness.States != res.States ||
		res.Liveness.Transitions != res.Transitions ||
		res.Liveness.Depth != res.Depth {
		t.Fatalf("liveness graph (%d states, %d transitions, depth %d) disagrees with safety exploration (%d, %d, %d)",
			res.Liveness.States, res.Liveness.Transitions, res.Liveness.Depth,
			res.States, res.Transitions, res.Depth)
	}
}

func TestVerifyLivenessAblatedModel(t *testing.T) {
	cfg := livenessTestConfig()
	cfg.MuteHandshake = true
	res, err := Verify(cfg, VerifyOptions{Liveness: true, LivenessProps: []string{"hs-ack-m0"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected safety violation:\n%s", res.RenderViolation())
	}
	if res.Holds() {
		t.Fatal("muted-handshake model should violate hs-ack-m0")
	}
	vs := res.Liveness.Violations()
	if len(vs) != 1 || vs[0].Name != "hs-ack-m0" || vs[0].Counterexample == nil {
		t.Fatalf("expected a single hs-ack-m0 counterexample, got %+v", vs)
	}
}

func TestVerifyLivenessRejectsUnknownProperty(t *testing.T) {
	_, err := Verify(livenessTestConfig(), VerifyOptions{Liveness: true, LivenessProps: []string{"bogus"}})
	if err == nil || !strings.Contains(err.Error(), "unknown property") {
		t.Fatalf("expected unknown-property error, got %v", err)
	}
}

func TestSimulateRunsToCompletion(t *testing.T) {
	cfg := AllocConfig()
	cfg.OpBudget = 0 // walks need no bounded-context reduction
	res, err := Simulate(cfg, SimulateOptions{Seed: 1, Steps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles completed")
	}
}

func TestNewRuntimeRoundTrip(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Slots: 8, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	a := m.Alloc()
	if a == -1 {
		t.Fatal("alloc failed")
	}
	m.Park()
	rt.Collect()
	m.Unpark()
	if !rt.Arena().Allocated(m.Root(a)) {
		t.Fatal("rooted object collected")
	}
}
