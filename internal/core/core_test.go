package core

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range map[string]ModelConfig{
		"tiny":        TinyConfig(),
		"alloc":       AllocConfig(),
		"two-mutator": TwoMutatorConfig(),
		"chain":       ChainConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
}

func TestVerifyRejectsInvalidConfig(t *testing.T) {
	if _, err := Verify(ModelConfig{}, VerifyOptions{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestVerifyBoundedRunHoldsOnSafeModel(t *testing.T) {
	res, err := Verify(TinyConfig(), VerifyOptions{MaxStates: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds() {
		t.Fatalf("violation:\n%s", res.RenderViolation())
	}
	if res.Complete {
		t.Fatal("30k-state cap should not exhaust the tiny config")
	}
	if res.RenderViolation() != "" {
		t.Fatal("RenderViolation non-empty without violation")
	}
}

func TestVerifyFindsAblationViolationWithTrace(t *testing.T) {
	cfg := TinyConfig()
	cfg.NoDeletionBarrier = true
	res, err := Verify(cfg, VerifyOptions{Trace: true, HeadlineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds() {
		t.Fatal("ablated model verified")
	}
	rendered := res.RenderViolation()
	if !strings.Contains(rendered, "valid_refs_inv") || !strings.Contains(rendered, "counterexample") {
		t.Fatalf("violation rendering incomplete:\n%s", rendered)
	}
}

func TestSimulateRunsToCompletion(t *testing.T) {
	cfg := AllocConfig()
	cfg.OpBudget = 0 // walks need no bounded-context reduction
	res, err := Simulate(cfg, SimulateOptions{Seed: 1, Steps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles completed")
	}
}

func TestNewRuntimeRoundTrip(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Slots: 8, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	a := m.Alloc()
	if a == -1 {
		t.Fatal("alloc failed")
	}
	m.Park()
	rt.Collect()
	m.Unpark()
	if !rt.Arena().Allocated(m.Root(a)) {
		t.Fatal("rooted object collected")
	}
}
