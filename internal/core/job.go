// Job layer: package core is no longer just "call Verify" — a
// verification run is described by a serializable JobSpec (preset +
// ablations + options), identified by a stable fingerprint, and executed
// by RunJob, which wires checkpointing, resume, progress and
// cancellation in one place. The long-running daemon (internal/server,
// cmd/gcmcd) schedules JobSpecs on a worker pool and caches their
// verdicts by fingerprint; the CLIs build the same specs from flags, so
// a run submitted remotely is byte-for-byte the run gcmc performs
// locally.

package core

import (
	"context"
	"fmt"

	"repro/internal/storage"
)

// JobState names a verification job's position in the service
// lifecycle: queued → running → done/failed, with interrupted (the
// daemon stopped or crashed mid-run; a checkpoint marks the cut),
// resuming (re-enqueued from that checkpoint after a restart) and
// cancelled (a client asked for the job to stop) branching off.
type JobState string

const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobInterrupted JobState = "interrupted"
	JobResuming    JobState = "resuming"
	JobDone        JobState = "done"
	JobFailed      JobState = "failed"
	JobCancelled   JobState = "cancelled"
)

// Terminal reports whether the state is final: the job will never run
// again and its verdict (or error) is settled.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobOptions is the serializable subset of VerifyOptions a job may
// carry: everything verdict-relevant, nothing process-local (contexts,
// callbacks and file paths are wired by the executor, not the
// submitter).
type JobOptions struct {
	MaxStates       int      `json:"max_states,omitempty"`
	MaxDepth        int      `json:"max_depth,omitempty"`
	HeadlineOnly    bool     `json:"headline_only,omitempty"`
	Audit           bool     `json:"audit,omitempty"`
	Reduce          bool     `json:"reduce,omitempty"`
	Symmetry        bool     `json:"symmetry,omitempty"`
	Liveness        bool     `json:"liveness,omitempty"`
	LivenessProps   []string `json:"liveness_props,omitempty"`
	ValidateEffects bool     `json:"validate_effects,omitempty"`
	// Workers and Shards tune the checker without affecting the verdict
	// (both verdict-neutral; Workers is even excluded from the resume
	// fingerprint).
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
	// CheckpointEvery is the number of BFS layers between snapshots when
	// the executor configures a checkpoint path (0 = checker default).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// MemBudgetMiB is the per-job soft heap budget in MiB (0 = none).
	MemBudgetMiB int `json:"mem_budget_mib,omitempty"`
	// Spill arms the disk-spill degradation rung: the executor provides a
	// per-job spill directory and a budget-pressed run completes
	// exhaustively from disk instead of stopping at the 100% rung.
	// Representation-only; excluded from the fingerprint.
	Spill bool `json:"spill,omitempty"`
}

// JobSpec describes one verification job completely: a named preset,
// the ablation switches overlaid on it, and the bounded-run options.
// Two specs with equal fingerprints request the same verdict.
type JobSpec struct {
	Preset    string     `json:"preset"`
	Ablations Ablations  `json:"ablations,omitempty"`
	Options   JobOptions `json:"options,omitempty"`
}

// Build resolves the spec into a concrete configuration and verify
// options. Trace recording is always on: service verdicts must carry
// counterexamples.
func (s JobSpec) Build() (ModelConfig, VerifyOptions, error) {
	cfg, err := PresetConfig(s.Preset)
	if err != nil {
		return ModelConfig{}, VerifyOptions{}, err
	}
	s.Ablations.Apply(&cfg)
	o := s.Options
	opt := VerifyOptions{
		MaxStates:       o.MaxStates,
		MaxDepth:        o.MaxDepth,
		Trace:           true,
		HeadlineOnly:    o.HeadlineOnly,
		Audit:           o.Audit,
		Reduce:          o.Reduce,
		Symmetry:        o.Symmetry,
		Liveness:        o.Liveness,
		LivenessProps:   o.LivenessProps,
		ValidateEffects: o.ValidateEffects,
		Workers:         o.Workers,
		Shards:          o.Shards,
		CheckpointEvery: o.CheckpointEvery,
		MemBudget:       int64(o.MemBudgetMiB) << 20,
	}
	if len(o.LivenessProps) > 0 {
		opt.Liveness = true
	}
	return cfg, opt, nil
}

// Fingerprint identifies the verdict the spec requests: the checkpoint
// layer's options fingerprint over the built configuration, extended
// with the liveness-pass selections. The summary string is the
// human-readable rendering (embedded in cache entries so a hit can say
// what it matched).
func (s JobSpec) Fingerprint() (uint64, string, error) {
	cfg, opt, err := s.Build()
	if err != nil {
		return 0, "", err
	}
	return Fingerprint(cfg, opt)
}

// JobRun wires a JobSpec execution into its environment: where to
// checkpoint, whether to resume, how to report progress, and the
// cancellation context. All fields are optional.
type JobRun struct {
	// CheckpointPath enables layer-barrier snapshots to this file.
	CheckpointPath string
	// Resume restores the run from CheckpointPath when that file exists
	// (a missing file starts fresh — the crash happened before the first
	// snapshot). If the checkpoint is refused (damaged, or from a
	// different build's options), the run restarts from scratch rather
	// than failing: the service must make progress after any crash.
	Resume bool
	// Progress receives periodic checker reports; ProgressEvery tunes
	// the cadence in newly visited states (0 = checker default).
	Progress      func(Progress)
	ProgressEvery int
	// Context requests graceful interruption at layer boundaries.
	Context context.Context
	// SpillDir is the directory for the disk-spill rung when the spec
	// asks for it (JobOptions.Spill); empty leaves the rung unarmed.
	SpillDir string
	// FS routes the run's disk I/O (checkpoint, spill) through a
	// pluggable filesystem; nil means the real one. Fault injection for
	// the chaos tests plugs in here.
	FS storage.FS
}

// RunJob executes a job spec. The returned bool reports whether the run
// actually resumed from a checkpoint (false when Resume was set but no
// usable checkpoint existed).
func RunJob(spec JobSpec, run JobRun) (VerifyResult, bool, error) {
	cfg, opt, err := spec.Build()
	if err != nil {
		return VerifyResult{}, false, err
	}
	opt.Context = run.Context
	opt.Progress = run.Progress
	opt.ProgressEvery = run.ProgressEvery
	opt.CheckpointPath = run.CheckpointPath
	opt.FS = run.FS
	if spec.Options.Spill && run.SpillDir != "" {
		opt.SpillDir = run.SpillDir
	}
	fsys := storage.OrOS(run.FS)
	resumed := false
	if run.Resume && run.CheckpointPath != "" {
		if _, serr := fsys.Stat(run.CheckpointPath); serr == nil {
			opt.Resume = run.CheckpointPath
			resumed = true
		}
	}
	res, err := Verify(cfg, opt)
	if err != nil && resumed {
		// A refused or corrupt checkpoint must not wedge the job: retry
		// from the initial state (the fingerprint made a mismatch
		// impossible for a same-spec resume, so this is corruption or a
		// format bump — either way a fresh run is the correct recovery).
		// The damaged file is quarantined under a .poisoned suffix, not
		// deleted: the evidence of what went wrong on disk outlives the
		// recovery.
		if rerr := fsys.Rename(run.CheckpointPath, run.CheckpointPath+".poisoned"); rerr != nil {
			// Removal beats leaving a poisoned file where the next resume
			// will trip over it again.
			fsys.Remove(run.CheckpointPath)
		}
		opt.Resume = ""
		res, err = Verify(cfg, opt)
		resumed = false
	}
	if err != nil {
		return res, resumed, fmt.Errorf("core: job %s: %w", spec.Preset, err)
	}
	return res, resumed, nil
}
