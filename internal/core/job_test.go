package core

import (
	"encoding/json"
	"sort"
	"testing"
)

// TestPresetRegistry checks the shared preset registry the CLIs and
// the service both resolve names through.
func TestPresetRegistry(t *testing.T) {
	names := PresetNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("PresetNames not sorted: %v", names)
	}
	if len(names) == 0 {
		t.Fatal("no presets registered")
	}
	for _, n := range names {
		if _, err := PresetConfig(n); err != nil {
			t.Errorf("PresetConfig(%q): %v", n, err)
		}
	}
	if _, err := PresetConfig("no-such-preset"); err == nil {
		t.Error("PresetConfig accepted an unknown name")
	}
}

// TestAblationsApply checks the overlay maps onto the model config and
// that the label round-trips through JSON.
func TestAblationsApply(t *testing.T) {
	abl := Ablations{NoDeletionBarrier: true, InsertionBarrierGated: true, SCMemory: true}
	cfg, err := PresetConfig("tiny")
	if err != nil {
		t.Fatal(err)
	}
	abl.Apply(&cfg)
	if !cfg.NoDeletionBarrier || !cfg.InsertionBarrierOnlyBeforeRootsDone || !cfg.SCMemory {
		t.Errorf("Apply did not set the config switches: %+v", cfg)
	}
	if got := abl.String(); got != "no-deletion-barrier,insertion-barrier-gated,sc" {
		t.Errorf("String() = %q", got)
	}
	if got := (Ablations{}).String(); got != "" {
		t.Errorf("clean String() = %q, want empty", got)
	}

	b, err := json.Marshal(abl)
	if err != nil {
		t.Fatal(err)
	}
	var back Ablations
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != abl {
		t.Errorf("JSON round-trip changed ablations: %+v != %+v", back, abl)
	}
}

// TestJobSpecFingerprint checks the cache-key properties the service
// depends on: stability, sensitivity to everything verdict-relevant,
// and insensitivity to scheduling knobs.
func TestJobSpecFingerprint(t *testing.T) {
	base := JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 20}}
	fp1, sum1, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, sum2, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 || sum1 != sum2 {
		t.Errorf("fingerprint not stable: %x/%x", fp1, fp2)
	}

	differ := func(name string, spec JobSpec) {
		fp, _, err := spec.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fp1 {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
	same := func(name string, spec JobSpec) {
		fp, _, err := spec.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp != fp1 {
			t.Errorf("%s: fingerprint changed (%x != %x) — must be verdict-neutral", name, fp, fp1)
		}
	}

	differ("preset", JobSpec{Preset: "alloc", Options: base.Options})
	differ("ablation", JobSpec{Preset: "tiny", Ablations: Ablations{NoDeletionBarrier: true}, Options: base.Options})
	differ("max-depth", JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 21}})
	differ("headline", JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 20, HeadlineOnly: true}})
	differ("liveness", JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 20, Liveness: true}})
	differ("liveness-props", JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 20, LivenessProps: []string{"gc-sweep"}}})

	same("workers", JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 20, Workers: 4}})
	same("checkpoint-every", JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 20, CheckpointEvery: 2}})
	same("mem-budget", JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 20, MemBudgetMiB: 256}})
}

// TestJobStateTerminal pins the lifecycle partition.
func TestJobStateTerminal(t *testing.T) {
	terminal := []JobState{JobDone, JobFailed, JobCancelled}
	live := []JobState{JobQueued, JobRunning, JobInterrupted, JobResuming}
	for _, s := range terminal {
		if !s.Terminal() {
			t.Errorf("%s should be terminal", s)
		}
	}
	for _, s := range live {
		if s.Terminal() {
			t.Errorf("%s should not be terminal", s)
		}
	}
}

// TestRunJobFreshAndBounded runs a spec through RunJob without any
// checkpointing and checks the verdict plumbing.
func TestRunJobFreshAndBounded(t *testing.T) {
	res, resumed, err := RunJob(JobSpec{Preset: "tiny", Options: JobOptions{MaxDepth: 12}}, JobRun{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Error("resumed without a checkpoint path")
	}
	if res.States == 0 || res.Depth != 12 {
		t.Errorf("unexpected result: states=%d depth=%d", res.States, res.Depth)
	}
	if res.Status() != "no-violation" {
		t.Errorf("Status() = %q", res.Status())
	}
}
