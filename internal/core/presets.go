package core

import (
	"fmt"
	"sort"
	"strings"
)

// presetBuilders maps preset names to their configuration constructors.
// The registry is the single source of truth for every CLI and for the
// verification service: gcmc, gclint, gcsim, gcmcd and the corpus
// enumerator all resolve presets here, so a preset added once is
// submittable, lintable and cacheable everywhere.
var presetBuilders = map[string]func() ModelConfig{
	"tiny":              TinyConfig,
	"alloc":             AllocConfig,
	"two-mutator":       TwoMutatorConfig,
	"two-mutator-loads": TwoMutatorLoadsConfig,
	"two-sym":           SymmetricConfig,
	"chain":             ChainConfig,
}

// PresetNames lists the shipped presets in a stable (sorted) order.
func PresetNames() []string {
	names := make([]string, 0, len(presetBuilders))
	for n := range presetBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PresetConfig resolves a preset name to a fresh configuration.
func PresetConfig(name string) (ModelConfig, error) {
	b, ok := presetBuilders[name]
	if !ok {
		return ModelConfig{}, fmt.Errorf("core: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
	}
	return b(), nil
}

// Ablations is the serializable set of model ablation switches a
// verification job may apply on top of a preset: the E11/E12/E19
// mechanism removals, the memory-model swap, and the liveness
// ablations. It exists so a job specification (package server, gcmc
// -remote) can name a configuration without shipping the whole
// ModelConfig, and so every CLI applies flags through one code path.
type Ablations struct {
	NoDeletionBarrier     bool `json:"no_deletion_barrier,omitempty"`
	NoInsertionBarrier    bool `json:"no_insertion_barrier,omitempty"`
	InsertionBarrierGated bool `json:"insertion_barrier_gated,omitempty"`
	SCMemory              bool `json:"sc_memory,omitempty"`
	AllocWhite            bool `json:"alloc_white,omitempty"`
	UnlockedMark          bool `json:"unlocked_mark,omitempty"`
	NoHSFence             bool `json:"no_hs_fence,omitempty"`
	ElideHS1              bool `json:"elide_hs1,omitempty"`
	ElideHS2              bool `json:"elide_hs2,omitempty"`
	ElideHS3              bool `json:"elide_hs3,omitempty"`
	ElideHS4              bool `json:"elide_hs4,omitempty"`
	MuteHandshake         bool `json:"mute_handshake,omitempty"`
	NoDequeue             bool `json:"no_dequeue,omitempty"`
}

// Apply overlays the ablation switches onto cfg.
func (a Ablations) Apply(cfg *ModelConfig) {
	cfg.NoDeletionBarrier = a.NoDeletionBarrier
	cfg.NoInsertionBarrier = a.NoInsertionBarrier
	cfg.InsertionBarrierOnlyBeforeRootsDone = a.InsertionBarrierGated
	cfg.SCMemory = a.SCMemory
	cfg.AllocWhite = a.AllocWhite
	cfg.UnlockedMark = a.UnlockedMark
	cfg.NoHSFence = a.NoHSFence
	cfg.ElideHS1 = a.ElideHS1
	cfg.ElideHS2 = a.ElideHS2
	cfg.ElideHS3 = a.ElideHS3
	cfg.ElideHS4 = a.ElideHS4
	cfg.MuteHandshake = a.MuteHandshake
	cfg.NoDequeue = a.NoDequeue
}

// String renders the active switches as a stable comma-joined label
// ("" for a clean configuration) — the corpus matrix and verdict
// records use it as the human-readable cell name.
func (a Ablations) String() string {
	var on []string
	add := func(set bool, name string) {
		if set {
			on = append(on, name)
		}
	}
	add(a.NoDeletionBarrier, "no-deletion-barrier")
	add(a.NoInsertionBarrier, "no-insertion-barrier")
	add(a.InsertionBarrierGated, "insertion-barrier-gated")
	add(a.SCMemory, "sc")
	add(a.AllocWhite, "alloc-white")
	add(a.UnlockedMark, "unlocked-mark")
	add(a.NoHSFence, "no-hs-fence")
	add(a.ElideHS1, "elide-hs1")
	add(a.ElideHS2, "elide-hs2")
	add(a.ElideHS3, "elide-hs3")
	add(a.ElideHS4, "elide-hs4")
	add(a.MuteHandshake, "mute-handshake")
	add(a.NoDequeue, "no-dequeue")
	return strings.Join(on, ",")
}
