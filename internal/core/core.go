// Package core is the library façade for the reproduction of "Relaxing
// Safely: Verified On-the-fly Garbage Collection for x86-TSO" (Gammie,
// Hosking, Engelhardt; PLDI 2015). It ties together:
//
//   - the formal model of the collector over CIMP and x86-TSO
//     (packages cimp, tso, heap, gcmodel),
//   - the safety invariants of the paper's proof (package invariant),
//   - the explicit-state model checker and randomized simulator that
//     re-establish the headline theorem on bounded configurations
//     (packages explore, sched),
//   - and the executable collector kernel with real goroutine mutators
//     (package gcrt).
//
// The headline property, checked at every reachable state:
//
//	GC ∥ M1 ∥ … ∥ Mn ∥ Sys ⊨ □(∀r. reachable r → valid_ref r)
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/explore"
	"repro/internal/gcmodel"
	"repro/internal/gcrt"
	"repro/internal/heap"
	"repro/internal/invariant"
	"repro/internal/liveness"
	"repro/internal/sched"
)

// ModelConfig re-exports the model configuration.
type ModelConfig = gcmodel.Config

// VerifyOptions bounds a verification run.
type VerifyOptions struct {
	// MaxStates caps the exploration (0 = unbounded).
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unbounded).
	MaxDepth int
	// Trace records counterexample traces.
	Trace bool
	// HeadlineOnly checks just valid_refs_inv instead of the full
	// battery.
	HeadlineOnly bool
	// Progress, if non-nil, receives periodic (states, depth) updates.
	Progress func(states, depth int)
	// Workers is the number of checker worker goroutines per BFS layer
	// (0 = GOMAXPROCS). Verdicts do not depend on the worker count.
	Workers int
	// Shards is the number of lock-striped visited-set shards (0 =
	// checker default).
	Shards int
	// Audit retains the full canonical fingerprint of every visited
	// state alongside its 64-bit hash and counts hash collisions
	// (VerifyResult.HashCollisions). It costs string-fingerprint memory
	// and exists to validate the default compact-hash mode.
	Audit bool
	// Reduce enables the TSO-aware partial-order reduction (skip
	// commuting interleavings of safe buffer-local steps); see
	// explore.Options.Reduce. Verdicts are preserved; the BFS
	// shortest-counterexample guarantee is not.
	Reduce bool
	// Symmetry collapses states that differ only by a
	// standing-class-preserving permutation of the mutators; see
	// explore.Options.Symmetry. No-op for single-mutator models.
	Symmetry bool
	// Liveness additionally runs the fair-cycle liveness checker
	// (package liveness) after the safety exploration: every progress
	// property is checked for weakly fair violating cycles, with lasso
	// counterexamples in VerifyResult.Liveness. The liveness pass always
	// re-explores the full, unreduced relation, regardless of
	// Reduce/Symmetry (see DESIGN.md "Liveness architecture"), and is
	// skipped when the safety pass already found a violation.
	Liveness bool
	// LivenessProps selects a subset of the progress properties by name
	// (nil = all; see liveness.All).
	LivenessProps []string
	// ValidateEffects cross-checks the static analysis layer against the
	// exploration (see package analysis): every taken transition is
	// checked against the declared effect footprint, and the derived POR
	// safe classification is diffed against the handwritten one at every
	// visited state. Any disagreement is reported as a violation
	// ("event-check" / "state-check"). VerifyResult.Effects carries the
	// validation counters.
	ValidateEffects bool
}

// VerifyResult reports a verification run.
type VerifyResult struct {
	// Result is the raw exploration outcome.
	explore.Result
	// Model is the built model (for rendering traces).
	Model *gcmodel.Model
	// Liveness is the fair-cycle checker's outcome, nil unless
	// VerifyOptions.Liveness was set (and the safety pass was clean).
	Liveness *liveness.Result
	// Effects is the effect validator used by the run, nil unless
	// VerifyOptions.ValidateEffects was set. Its Stats method reports
	// how many transitions and states were validated.
	Effects *analysis.Validator
}

// Holds reports whether every checked invariant held on every explored
// state and, if the liveness pass ran, every progress property held.
func (r VerifyResult) Holds() bool {
	return r.Violation == nil && (r.Liveness == nil || r.Liveness.Holds())
}

// RenderViolation formats the counterexample, or "" if none.
func (r VerifyResult) RenderViolation() string {
	if r.Violation == nil {
		return ""
	}
	return r.Violation.Render(r.Model)
}

// Verify model-checks a configuration against the paper's invariants.
func Verify(cfg ModelConfig, opt VerifyOptions) (VerifyResult, error) {
	m, err := gcmodel.Build(cfg)
	if err != nil {
		return VerifyResult{}, fmt.Errorf("core: %w", err)
	}
	checks := invariant.All()
	if opt.HeadlineOnly {
		checks = invariant.Safety()
	}
	eopt := explore.Options{
		MaxStates: opt.MaxStates,
		MaxDepth:  opt.MaxDepth,
		Trace:     opt.Trace,
		Progress:  opt.Progress,
		Workers:   opt.Workers,
		Shards:    opt.Shards,
		HashOnly:  !opt.Audit,
		Reduce:    opt.Reduce,
		Symmetry:  opt.Symmetry,
	}
	var val *analysis.Validator
	if opt.ValidateEffects {
		val, err = analysis.NewValidator(m)
		if err != nil {
			return VerifyResult{}, fmt.Errorf("core: %w", err)
		}
		eopt.EventCheck = val.CheckEvent
		eopt.StateCheck = val.CheckPOR
	}
	res := explore.Run(m, checks, eopt)
	vr := VerifyResult{Result: res, Model: m, Effects: val}
	if opt.Liveness && res.Violation == nil {
		var props []liveness.Property
		if opt.LivenessProps != nil {
			props, err = liveness.ByName(m, opt.LivenessProps)
			if err != nil {
				return vr, fmt.Errorf("core: %w", err)
			}
		}
		lres, err := liveness.Check(m, liveness.Options{
			MaxStates:  opt.MaxStates,
			MaxDepth:   opt.MaxDepth,
			Progress:   opt.Progress,
			Properties: props,
		})
		if err != nil {
			return vr, fmt.Errorf("core: %w", err)
		}
		vr.Liveness = &lres
	}
	return vr, nil
}

// SimulateOptions configures a randomized deep run.
type SimulateOptions struct {
	Seed       int64
	Steps      int
	CheckEvery int
}

// Simulate performs a seeded random walk with invariant monitors — depth
// and scale where Verify gives exhaustiveness.
func Simulate(cfg ModelConfig, opt SimulateOptions) (sched.Result, error) {
	m, err := gcmodel.Build(cfg)
	if err != nil {
		return sched.Result{}, fmt.Errorf("core: %w", err)
	}
	return sched.Walk(m, invariant.All(), sched.Options{
		Seed:       opt.Seed,
		Steps:      opt.Steps,
		CheckEvery: opt.CheckEvery,
	}), nil
}

// RuntimeOptions re-exports the collector kernel options.
type RuntimeOptions = gcrt.Options

// NewRuntime creates the executable collector kernel.
func NewRuntime(opt RuntimeOptions) *gcrt.Runtime { return gcrt.New(opt) }

// TinyConfig is the smallest interesting verification instance: one
// mutator over two objects (h → x, only h rooted), with stores, loads
// and discards, a store-buffer bound of 2, and a per-cycle budget of two
// heap operations.
func TinyConfig() ModelConfig {
	return ModelConfig{
		NMutators: 1,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    2,
		OpBudget:  2,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0)},
		AllowNilStore: true,
		DisableAlloc:  true,
	}
}

// AllocConfig adds allocation over a three-reference universe.
func AllocConfig() ModelConfig {
	cfg := TinyConfig()
	cfg.NRefs = 3
	cfg.DisableAlloc = false
	return cfg
}

// TwoMutatorConfig exercises ragged handshakes: two mutators share the
// heap; budgets and buffers are kept minimal so exhaustive runs stay
// tractable.
func TwoMutatorConfig() ModelConfig {
	return ModelConfig{
		NMutators: 2,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0), heap.SetOf(1)},
		AllowNilStore: true,
		DisableAlloc:  true,
		DisableLoad:   true,
	}
}

// SymmetricConfig makes TwoMutatorConfig's mutators fully
// interchangeable — identical programs and identical initial roots — so
// that mutator-symmetry canonicalization (VerifyOptions.Symmetry) can
// fold permuted states. Discards and fences are disabled to keep the
// exhaustive runs tractable; the state space still folds by nearly 2x
// under symmetry (EXPERIMENTS.md E17).
func SymmetricConfig() ModelConfig {
	cfg := TwoMutatorConfig()
	cfg.InitRoots = []heap.RefSet{heap.SetOf(0), heap.SetOf(0)}
	cfg.DisableDiscard = true
	cfg.DisableMFence = true
	return cfg
}

// TwoMutatorLoadsConfig is TwoMutatorConfig with heap loads enabled:
// the workload needed by the §2 insertion-barrier hiding scenario (a
// mutator loads a white reference and stores it behind the wavefront).
func TwoMutatorLoadsConfig() ModelConfig {
	cfg := TwoMutatorConfig()
	cfg.DisableLoad = false
	return cfg
}

// ChainConfig roots a two-link chain h → x → y, the Figure 1 shape: grey
// protection along white chains is what the deletion barrier preserves.
func ChainConfig() ModelConfig {
	return ModelConfig{
		NMutators: 1,
		NRefs:     3,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  2,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {2},
			2: {heap.NilRef},
		},
		InitRoots:      []heap.RefSet{heap.SetOf(0)},
		AllowNilStore:  true,
		DisableAlloc:   true,
		DisableDiscard: true,
	}
}
