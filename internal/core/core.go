// Package core is the library façade for the reproduction of "Relaxing
// Safely: Verified On-the-fly Garbage Collection for x86-TSO" (Gammie,
// Hosking, Engelhardt; PLDI 2015). It ties together:
//
//   - the formal model of the collector over CIMP and x86-TSO
//     (packages cimp, tso, heap, gcmodel),
//   - the safety invariants of the paper's proof (package invariant),
//   - the explicit-state model checker and randomized simulator that
//     re-establish the headline theorem on bounded configurations
//     (packages explore, sched),
//   - and the executable collector kernel with real goroutine mutators
//     (package gcrt).
//
// The headline property, checked at every reachable state:
//
//	GC ∥ M1 ∥ … ∥ Mn ∥ Sys ⊨ □(∀r. reachable r → valid_ref r)
package core

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/checkpoint"
	"repro/internal/cimp"
	"repro/internal/explore"
	"repro/internal/gcmodel"
	"repro/internal/gcrt"
	"repro/internal/heap"
	"repro/internal/invariant"
	"repro/internal/liveness"
	"repro/internal/sched"
	"repro/internal/storage"
)

// ModelConfig re-exports the model configuration.
type ModelConfig = gcmodel.Config

// Progress re-exports the checker's progress report.
type Progress = explore.Progress

// VerifyOptions bounds a verification run.
type VerifyOptions struct {
	// MaxStates caps the exploration (0 = unbounded).
	MaxStates int
	// MaxDepth caps the BFS depth (0 = unbounded).
	MaxDepth int
	// Trace records counterexample traces.
	Trace bool
	// HeadlineOnly checks just valid_refs_inv instead of the full
	// battery.
	HeadlineOnly bool
	// Progress, if non-nil, receives periodic updates.
	Progress func(Progress)
	// ProgressEvery is the number of newly visited states between
	// Progress reports (0 = checker default, 8192). Verdict-neutral.
	ProgressEvery int
	// Workers is the number of checker worker goroutines per BFS layer
	// (0 = GOMAXPROCS). Verdicts do not depend on the worker count.
	Workers int
	// Shards is the number of lock-striped visited-set shards (0 =
	// checker default).
	Shards int
	// Audit retains the full canonical fingerprint of every visited
	// state alongside its 64-bit hash and counts hash collisions
	// (VerifyResult.HashCollisions). It costs string-fingerprint memory
	// and exists to validate the default compact-hash mode.
	Audit bool
	// Reduce enables the TSO-aware partial-order reduction (skip
	// commuting interleavings of safe buffer-local steps); see
	// explore.Options.Reduce. Verdicts are preserved; the BFS
	// shortest-counterexample guarantee is not.
	Reduce bool
	// Symmetry collapses states that differ only by a
	// standing-class-preserving permutation of the mutators; see
	// explore.Options.Symmetry. No-op for single-mutator models.
	Symmetry bool
	// Liveness additionally runs the fair-cycle liveness checker
	// (package liveness) after the safety exploration: every progress
	// property is checked for weakly fair violating cycles, with lasso
	// counterexamples in VerifyResult.Liveness. The liveness pass always
	// re-explores the full, unreduced relation, regardless of
	// Reduce/Symmetry (see DESIGN.md "Liveness architecture"), and is
	// skipped when the safety pass already found a violation.
	Liveness bool
	// LivenessProps selects a subset of the progress properties by name
	// (nil = all; see liveness.All).
	LivenessProps []string
	// ValidateEffects cross-checks the static analysis layer against the
	// exploration (see package analysis): every taken transition is
	// checked against the declared effect footprint, and the derived POR
	// safe classification is diffed against the handwritten one at every
	// visited state. Any disagreement is reported as a violation
	// ("event-check" / "state-check"). VerifyResult.Effects carries the
	// validation counters.
	ValidateEffects bool
	// Context, if non-nil, requests graceful interruption: the checker
	// observes cancellation at BFS layer boundaries, writes a final
	// checkpoint when one is configured, and reports the run incomplete
	// (Stopped == explore.StopInterrupted). See explore.Options.Context.
	Context context.Context
	// CheckpointPath enables periodic snapshots of the search state to
	// this file (atomic temp-file-and-rename writes); empty disables.
	CheckpointPath string
	// CheckpointEvery is the number of BFS layers between snapshots
	// (0 = checker default).
	CheckpointEvery int
	// Resume, if non-empty, restores the search from the checkpoint file
	// at this path instead of starting at the initial state. The
	// checkpoint's options must match this run's (Verify returns an
	// error otherwise), and the resumed run reaches the same counts and
	// verdict as an uninterrupted one.
	Resume string
	// MemBudget, if positive, is a soft heap budget in bytes: as the
	// checker's live heap approaches it, the run degrades in steps
	// (emergency checkpoint, then dropping audit fingerprints, then a
	// clean incomplete stop) instead of dying to the OOM killer. See
	// explore.Options.MemBudget.
	MemBudget int64
	// SpillDir, if non-empty, arms the disk-spill degradation rung: when
	// the memory ladder would otherwise drop audit data or stop the run,
	// cold visited-set shards and frontier layers spill to CRC-framed
	// files under this directory and the run completes exhaustively
	// instead. Representation-only — excluded from the options
	// fingerprint. See explore.Options.SpillDir.
	SpillDir string
	// FS, when non-nil, routes all of the run's disk I/O (checkpoints
	// and spill files) through this filesystem; nil means the real one.
	// A fault-injecting FS (storage.FaultFS) plugs in here.
	FS storage.FS
}

// VerifyResult reports a verification run.
type VerifyResult struct {
	// Result is the raw exploration outcome.
	explore.Result
	// Model is the built model (for rendering traces).
	Model *gcmodel.Model
	// Liveness is the fair-cycle checker's outcome, nil unless
	// VerifyOptions.Liveness was set (and the safety pass was clean).
	Liveness *liveness.Result
	// Effects is the effect validator used by the run, nil unless
	// VerifyOptions.ValidateEffects was set. Its Stats method reports
	// how many transitions and states were validated.
	Effects *analysis.Validator
}

// Holds reports whether the checked properties are established on the
// bounded configuration: every invariant held on every state of a
// COMPLETE exploration (and, if the liveness pass ran, every progress
// property held on a complete graph). An incomplete run — capped,
// interrupted, memory-budgeted, or poisoned by a panic — never
// establishes the property; use NoViolation for the weaker "nothing
// failed in what was explored".
func (r VerifyResult) Holds() bool {
	return r.Violation == nil && r.Complete &&
		(r.Liveness == nil || (r.Liveness.Holds() && r.Liveness.Complete))
}

// NoViolation reports that no invariant or progress violation was found
// in whatever portion of the state space was explored. For incomplete
// runs this is evidence, not proof.
func (r VerifyResult) NoViolation() bool {
	return r.Violation == nil && (r.Liveness == nil || r.Liveness.Holds())
}

// Status names the verdict category: "verified" (complete and clean),
// "no-violation" (clean but incomplete), "violation", or
// "liveness-violation".
func (r VerifyResult) Status() string {
	switch {
	case r.Violation != nil:
		return "violation"
	case r.Liveness != nil && !r.Liveness.Holds():
		return "liveness-violation"
	case r.Holds():
		return "verified"
	default:
		return "no-violation"
	}
}

// RenderViolation formats the counterexample, or "" if none.
func (r VerifyResult) RenderViolation() string {
	if r.Violation == nil {
		return ""
	}
	return r.Violation.Render(r.Model)
}

// battery selects the invariant set a run checks.
func battery(opt VerifyOptions) []invariant.Check {
	if opt.HeadlineOnly {
		return invariant.Safety()
	}
	return invariant.All()
}

// exploreOptions maps the public VerifyOptions onto the checker's
// options. Verify and Fingerprint share it so the fingerprint computed
// without running is exactly the one the checkpoint layer embeds and
// validates on resume.
func exploreOptions(opt VerifyOptions) explore.Options {
	return explore.Options{
		MaxStates:     opt.MaxStates,
		MaxDepth:      opt.MaxDepth,
		Trace:         opt.Trace,
		Progress:      opt.Progress,
		ProgressEvery: opt.ProgressEvery,
		Workers:       opt.Workers,
		Shards:        opt.Shards,
		HashOnly:      !opt.Audit,
		Reduce:        opt.Reduce,
		Symmetry:      opt.Symmetry,
		Context:       opt.Context,
		Checkpoint: explore.CheckpointOptions{
			Path:        opt.CheckpointPath,
			EveryLayers: opt.CheckpointEvery,
		},
		MemBudget: opt.MemBudget,
		SpillDir:  opt.SpillDir,
		FS:        opt.FS,
	}
}

// Fingerprint computes the verdict-relevant options fingerprint of a
// configuration + options pair without exploring anything: the exact
// fingerprint the checkpoint layer validates on resume (model config,
// invariant battery, every option that changes which states are visited
// or what is checked; worker count excluded), extended with the
// liveness-pass selections the safety checker does not see. The verdict
// cache (package server) keys completed verdicts by it, so a repeated
// submission is recognized before any state is expanded.
func Fingerprint(cfg ModelConfig, opt VerifyOptions) (uint64, string, error) {
	m, err := gcmodel.Build(cfg)
	if err != nil {
		return 0, "", fmt.Errorf("core: %w", err)
	}
	eopt := exploreOptions(opt)
	if opt.ValidateEffects {
		// Only non-nil-ness enters the summary; the stubs stand in for
		// the validator hooks Verify installs.
		eopt.EventCheck = func(_, _ cimp.System[*gcmodel.Local], _ cimp.Event) error { return nil }
		eopt.StateCheck = func(cimp.System[*gcmodel.Local]) error { return nil }
	}
	_, summary := explore.OptionsFingerprint(m, battery(opt), eopt)
	summary = fmt.Sprintf("%s liveness=%v liveProps=%v", summary, opt.Liveness, opt.LivenessProps)
	return gcmodel.Hash64([]byte(summary)), summary, nil
}

// Verify model-checks a configuration against the paper's invariants.
func Verify(cfg ModelConfig, opt VerifyOptions) (VerifyResult, error) {
	m, err := gcmodel.Build(cfg)
	if err != nil {
		return VerifyResult{}, fmt.Errorf("core: %w", err)
	}
	checks := battery(opt)
	eopt := exploreOptions(opt)
	if opt.Resume != "" {
		snap, err := checkpoint.LoadFS(storage.OrOS(opt.FS), opt.Resume)
		if err != nil {
			return VerifyResult{}, fmt.Errorf("core: %w", err)
		}
		eopt.Resume = snap
	}
	var val *analysis.Validator
	if opt.ValidateEffects {
		val, err = analysis.NewValidator(m)
		if err != nil {
			return VerifyResult{}, fmt.Errorf("core: %w", err)
		}
		eopt.EventCheck = val.CheckEvent
		eopt.StateCheck = val.CheckPOR
	}
	res := explore.Run(m, checks, eopt)
	vr := VerifyResult{Result: res, Model: m, Effects: val}
	if res.Stopped == explore.StopResume {
		return vr, fmt.Errorf("core: %w", res.Err)
	}
	// The liveness pass runs only when the safety pass ended on its own
	// terms: an interruption, memory stop, or worker panic means the user
	// (or the machine) wants the run over, not a second exploration.
	switch res.Stopped {
	case explore.StopInterrupted, explore.StopMemBudget, explore.StopPanic, explore.StopSpill:
		return vr, nil
	}
	if opt.Liveness && res.Violation == nil {
		var props []liveness.Property
		if opt.LivenessProps != nil {
			props, err = liveness.ByName(m, opt.LivenessProps)
			if err != nil {
				return vr, fmt.Errorf("core: %w", err)
			}
		}
		lres, err := liveness.Check(m, liveness.Options{
			MaxStates:  opt.MaxStates,
			MaxDepth:   opt.MaxDepth,
			Progress:   opt.Progress,
			Properties: props,
			Context:    opt.Context,
		})
		if err != nil {
			return vr, fmt.Errorf("core: %w", err)
		}
		vr.Liveness = &lres
	}
	return vr, nil
}

// SimulateOptions configures a randomized deep run.
type SimulateOptions struct {
	Seed       int64
	Steps      int
	CheckEvery int
	// Context, when non-nil, interrupts the walk between steps
	// (Result.Interrupted).
	Context context.Context
}

// Simulate performs a seeded random walk with invariant monitors — depth
// and scale where Verify gives exhaustiveness.
func Simulate(cfg ModelConfig, opt SimulateOptions) (sched.Result, error) {
	m, err := gcmodel.Build(cfg)
	if err != nil {
		return sched.Result{}, fmt.Errorf("core: %w", err)
	}
	return sched.Walk(m, invariant.All(), sched.Options{
		Seed:       opt.Seed,
		Steps:      opt.Steps,
		CheckEvery: opt.CheckEvery,
		Context:    opt.Context,
	}), nil
}

// RuntimeOptions re-exports the collector kernel options.
type RuntimeOptions = gcrt.Options

// NewRuntime creates the executable collector kernel.
func NewRuntime(opt RuntimeOptions) *gcrt.Runtime { return gcrt.New(opt) }

// TinyConfig is the smallest interesting verification instance: one
// mutator over two objects (h → x, only h rooted), with stores, loads
// and discards, a store-buffer bound of 2, and a per-cycle budget of two
// heap operations.
func TinyConfig() ModelConfig {
	return ModelConfig{
		NMutators: 1,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    2,
		OpBudget:  2,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0)},
		AllowNilStore: true,
		DisableAlloc:  true,
	}
}

// AllocConfig adds allocation over a three-reference universe.
func AllocConfig() ModelConfig {
	cfg := TinyConfig()
	cfg.NRefs = 3
	cfg.DisableAlloc = false
	return cfg
}

// TwoMutatorConfig exercises ragged handshakes: two mutators share the
// heap; budgets and buffers are kept minimal so exhaustive runs stay
// tractable.
func TwoMutatorConfig() ModelConfig {
	return ModelConfig{
		NMutators: 2,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0), heap.SetOf(1)},
		AllowNilStore: true,
		DisableAlloc:  true,
		DisableLoad:   true,
	}
}

// SymmetricConfig makes TwoMutatorConfig's mutators fully
// interchangeable — identical programs and identical initial roots — so
// that mutator-symmetry canonicalization (VerifyOptions.Symmetry) can
// fold permuted states. Discards and fences are disabled to keep the
// exhaustive runs tractable; the state space still folds by nearly 2x
// under symmetry (EXPERIMENTS.md E17).
func SymmetricConfig() ModelConfig {
	cfg := TwoMutatorConfig()
	cfg.InitRoots = []heap.RefSet{heap.SetOf(0), heap.SetOf(0)}
	cfg.DisableDiscard = true
	cfg.DisableMFence = true
	return cfg
}

// TwoMutatorLoadsConfig is TwoMutatorConfig with heap loads enabled:
// the workload needed by the §2 insertion-barrier hiding scenario (a
// mutator loads a white reference and stores it behind the wavefront).
func TwoMutatorLoadsConfig() ModelConfig {
	cfg := TwoMutatorConfig()
	cfg.DisableLoad = false
	return cfg
}

// ChainConfig roots a two-link chain h → x → y, the Figure 1 shape: grey
// protection along white chains is what the deletion barrier preserves.
func ChainConfig() ModelConfig {
	return ModelConfig{
		NMutators: 1,
		NRefs:     3,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  2,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {2},
			2: {heap.NilRef},
		},
		InitRoots:      []heap.RefSet{heap.SetOf(0)},
		AllowNilStore:  true,
		DisableAlloc:   true,
		DisableDiscard: true,
	}
}
