package tso

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file provides a tiny assembly-like thread language and an
// exhaustive explorer over the TSO machine, used by package litmus to
// validate the memory substrate against the published x86-TSO litmus
// tests (experiment E8/E13).

// Reg is a thread-local register index.
type Reg int

// Instr is one instruction of a litmus thread program.
type Instr interface{ isInstr() }

// Ld loads the value at Addr into Dst.
type Ld struct {
	Dst  Reg
	Addr Addr
}

// St stores the immediate Val to Addr (via the store buffer).
type St struct {
	Addr Addr
	Val  Word
}

// MFence blocks until the thread's store buffer has drained.
type MFence struct{}

// CAS is a locked compare-and-swap: if memory at Addr equals Old it is set
// to New. Dst receives 1 on success, 0 on failure. The store buffer is
// flushed either way.
type CAS struct {
	Dst      Reg
	Addr     Addr
	Old, New Word
}

// XchgAdd is a locked fetch-and-add; Dst receives the previous value.
type XchgAdd struct {
	Dst  Reg
	Addr Addr
	Inc  Word
}

func (Ld) isInstr()      {}
func (St) isInstr()      {}
func (MFence) isInstr()  {}
func (CAS) isInstr()     {}
func (XchgAdd) isInstr() {}

// Program is a set of litmus threads with an initial memory image.
type Program struct {
	// Threads holds each thread's instruction sequence.
	Threads [][]Instr
	// NumAddrs sizes the memory (addresses 0..NumAddrs-1, initially 0).
	NumAddrs int
	// NumRegs is the per-thread register file size.
	NumRegs int
	// InitMem optionally overrides initial memory contents.
	InitMem map[Addr]Word
}

// Outcome is a terminal valuation of all registers and memory.
type Outcome struct {
	Regs [][]Word
	Mem  []Word
}

// Key renders the outcome canonically, e.g. "r0:0=1 r1:0=0 | mem=[1 1]".
func (o Outcome) Key() string {
	s := ""
	for t, regs := range o.Regs {
		for r, v := range regs {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%d:r%d=%d", t, r, v)
		}
	}
	return s + fmt.Sprintf(" | mem=%v", o.Mem)
}

type progState struct {
	pc   []int
	regs [][]Word
	m    *Machine
}

func (ps *progState) clone() *progState {
	n := &progState{
		pc:   append([]int(nil), ps.pc...),
		regs: make([][]Word, len(ps.regs)),
		m:    ps.m.Clone(),
	}
	for i, r := range ps.regs {
		n.regs[i] = append([]Word(nil), r...)
	}
	return n
}

func (ps *progState) fingerprint() string {
	var b []byte
	for _, p := range ps.pc {
		b = binary.AppendUvarint(b, uint64(p))
	}
	for _, regs := range ps.regs {
		for _, v := range regs {
			b = binary.AppendVarint(b, int64(v))
		}
	}
	b = ps.m.AppendFingerprint(b)
	return string(b)
}

// Model selects the memory semantics for exploration.
type Model int

const (
	// TSO uses the full store-buffer machine.
	TSO Model = iota
	// SC commits every store immediately (sequential consistency): the
	// oracle the paper contrasts against (§2.4).
	SC
)

// ExploreOptions configures ExploreX.
type ExploreOptions struct {
	// Reduce enables a partial-order reduction: at states where some
	// thread's next instruction is a provably commuting "safe" step
	// (see safeThread), only that single transition is pursued,
	// skipping its interleavings against unrelated steps. The terminal
	// outcome set is preserved exactly; the reduced run visits a subset
	// of the full run's states. Package diffcheck differentially
	// validates the equivalence on every litmus test and on generated
	// random programs.
	Reduce bool
}

// ExploreResult carries the terminal outcome set plus exploration
// statistics.
type ExploreResult struct {
	// Outcomes is the set of terminal outcomes, keyed canonically.
	Outcomes map[string]Outcome
	// States is the number of distinct states visited.
	States int
	// AmpleStates counts the states expanded by a single safe step.
	AmpleStates int
}

// Explore exhaustively enumerates all interleavings (and, under TSO, all
// buffer-commit schedules) of the program and returns the set of terminal
// outcomes keyed canonically.
func Explore(p Program, model Model) map[string]Outcome {
	return ExploreX(p, model, ExploreOptions{}).Outcomes
}

// instrWrites reports whether executing in could write addr.
func instrWrites(in Instr, a Addr) bool {
	switch in := in.(type) {
	case St:
		return in.Addr == a
	case CAS:
		return in.Addr == a
	case XchgAdd:
		return in.Addr == a
	}
	return false
}

// instrAccesses reports whether executing in could read or write addr.
func instrAccesses(in Instr, a Addr) bool {
	if instrWrites(in, a) {
		return true
	}
	ld, ok := in.(Ld)
	return ok && ld.Addr == a
}

// othersCanTouch reports whether any thread other than t could still
// affect (pred = instrWrites) or observe-or-affect (pred =
// instrAccesses) address a: a matching remaining instruction, or an
// already-buffered store to a awaiting commit.
func othersCanTouch(p Program, ps *progState, t int, a Addr, pred func(Instr, Addr) bool) bool {
	for u := range p.Threads {
		if u == t {
			continue
		}
		for _, w := range ps.m.Bufs[u] {
			if w.Addr == a {
				return true
			}
		}
		for i := ps.pc[u]; i < len(p.Threads[u]); i++ {
			if pred(p.Threads[u][i], a) {
				return true
			}
		}
	}
	return false
}

// safeThread returns the first thread whose next instruction is a safe
// step — enabled, invisible to (or provably non-interfering with) every
// other thread, and commuting with all their enabled transitions — or
// -1. Safe cases:
//
//   - St under TSO: the store only appends to the thread's own FIFO
//     buffer, which no other thread reads; the only other operation on
//     the buffer is the thread's own commit, which pops the opposite
//     end. Under SC the store writes memory directly and is safe only
//     when no other thread has any remaining access to the address.
//   - Ld when no other thread can still write the address (neither a
//     remaining instruction nor an already-buffered store): the
//     observed value is then determined by the thread's own buffer
//     and memory, both invariant under every other enabled transition
//     (own commits are shadowed by store forwarding). The litmus
//     machine never carries the TSO lock across states (locked
//     instructions are coarse single transitions), so an enabled load
//     stays enabled in every skipped interleaving.
//   - MFence with an empty buffer: a pure program-counter advance that
//     only the thread itself could re-disable.
//
// Locked instructions (CAS, XchgAdd) are never safe: they drain the
// buffer and access memory atomically.
//
// Safety is decided by the thread's position only, so the choice is a
// deterministic function of the state. Litmus programs are loop-free,
// so safe chains terminate and reduction cannot ignore a thread
// forever.
func safeThread(p Program, ps *progState, model Model) int {
	for t := range p.Threads {
		if ps.pc[t] >= len(p.Threads[t]) {
			continue
		}
		tid := ThreadID(t)
		switch in := p.Threads[t][ps.pc[t]].(type) {
		case St:
			if model == TSO {
				return t
			}
			if !ps.m.Blocked(tid) && !othersCanTouch(p, ps, t, in.Addr, instrAccesses) {
				return t
			}
		case Ld:
			if !ps.m.Blocked(tid) && !othersCanTouch(p, ps, t, in.Addr, instrWrites) {
				return t
			}
		case MFence:
			if ps.m.FenceReady(tid) {
				return t
			}
		}
	}
	return -1
}

// ExploreX is Explore with options and statistics.
func ExploreX(p Program, model Model, opt ExploreOptions) ExploreResult {
	init := &progState{
		pc:   make([]int, len(p.Threads)),
		regs: make([][]Word, len(p.Threads)),
		m:    New(len(p.Threads), p.NumAddrs),
	}
	for i := range init.regs {
		init.regs[i] = make([]Word, p.NumRegs)
	}
	for a, v := range p.InitMem {
		init.m.Mem[a] = v
	}

	outcomes := make(map[string]Outcome)
	seen := map[string]struct{}{init.fingerprint(): {}}
	stack := []*progState{init}
	ampleStates := 0

	for len(stack) > 0 {
		ps := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		progressed := false
		visit := func(ns *progState) {
			fp := ns.fingerprint()
			if _, ok := seen[fp]; ok {
				return
			}
			seen[fp] = struct{}{}
			stack = append(stack, ns)
		}

		if opt.Reduce {
			if t := safeThread(p, ps, model); t >= 0 {
				ns, ok := stepInstr(ps, ThreadID(t), p.Threads[t][ps.pc[t]], model)
				if !ok {
					panic("tso: safe step refused (safeThread out of sync with stepInstr)")
				}
				ampleStates++
				visit(ns)
				continue // a safe step exists, so ps is not terminal
			}
		}

		for t := range p.Threads {
			tid := ThreadID(t)
			// Internal commit transition (TSO only).
			if model == TSO && ps.m.CanCommit(tid) {
				progressed = true
				ns := ps.clone()
				ns.m.Commit(tid)
				visit(ns)
			}
			if ps.pc[t] >= len(p.Threads[t]) {
				continue
			}
			in := p.Threads[t][ps.pc[t]]
			if ns, ok := stepInstr(ps, tid, in, model); ok {
				progressed = true
				visit(ns)
			}
		}

		if !progressed {
			done := true
			for t := range p.Threads {
				if ps.pc[t] < len(p.Threads[t]) {
					done = false
					break
				}
			}
			if !done {
				panic("tso: litmus program deadlocked")
			}
			o := Outcome{Regs: ps.regs, Mem: ps.m.Mem}
			outcomes[o.Key()] = o
		}
	}
	return ExploreResult{Outcomes: outcomes, States: len(seen), AmpleStates: ampleStates}
}

func stepInstr(ps *progState, t ThreadID, in Instr, model Model) (*progState, bool) {
	switch in := in.(type) {
	case Ld:
		if ps.m.Blocked(t) {
			return nil, false
		}
		ns := ps.clone()
		ns.regs[t][in.Dst] = ns.m.Read(t, in.Addr)
		ns.pc[t]++
		return ns, true
	case St:
		ns := ps.clone()
		if model == SC {
			if ns.m.Blocked(t) {
				return nil, false
			}
			ns.m.Mem[in.Addr] = in.Val
		} else {
			ns.m.Buffer(t, in.Addr, in.Val)
		}
		ns.pc[t]++
		return ns, true
	case MFence:
		if !ps.m.FenceReady(t) {
			return nil, false
		}
		ns := ps.clone()
		ns.pc[t]++
		return ns, true
	case CAS:
		if !ps.m.CanLock(t) || ps.m.Blocked(t) {
			return nil, false
		}
		ns := ps.clone()
		ok := ns.m.CAS(t, in.Addr, in.Old, in.New)
		if ok {
			ns.regs[t][in.Dst] = 1
		} else {
			ns.regs[t][in.Dst] = 0
		}
		ns.pc[t]++
		return ns, true
	case XchgAdd:
		if !ps.m.CanLock(t) || ps.m.Blocked(t) {
			return nil, false
		}
		ns := ps.clone()
		ns.m.DrainAll(t)
		old := ns.m.Mem[in.Addr]
		ns.m.Mem[in.Addr] = old + in.Inc
		ns.regs[t][in.Dst] = old
		ns.pc[t]++
		return ns, true
	default:
		panic(fmt.Sprintf("tso: unknown instruction %T", in))
	}
}

// OutcomeKeys returns the sorted keys of an outcome set, for stable
// reporting.
func OutcomeKeys(m map[string]Outcome) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
