package tso

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file provides a tiny assembly-like thread language and an
// exhaustive explorer over the TSO machine, used by package litmus to
// validate the memory substrate against the published x86-TSO litmus
// tests (experiment E8/E13).

// Reg is a thread-local register index.
type Reg int

// Instr is one instruction of a litmus thread program.
type Instr interface{ isInstr() }

// Ld loads the value at Addr into Dst.
type Ld struct {
	Dst  Reg
	Addr Addr
}

// St stores the immediate Val to Addr (via the store buffer).
type St struct {
	Addr Addr
	Val  Word
}

// MFence blocks until the thread's store buffer has drained.
type MFence struct{}

// CAS is a locked compare-and-swap: if memory at Addr equals Old it is set
// to New. Dst receives 1 on success, 0 on failure. The store buffer is
// flushed either way.
type CAS struct {
	Dst      Reg
	Addr     Addr
	Old, New Word
}

// XchgAdd is a locked fetch-and-add; Dst receives the previous value.
type XchgAdd struct {
	Dst  Reg
	Addr Addr
	Inc  Word
}

func (Ld) isInstr()      {}
func (St) isInstr()      {}
func (MFence) isInstr()  {}
func (CAS) isInstr()     {}
func (XchgAdd) isInstr() {}

// Program is a set of litmus threads with an initial memory image.
type Program struct {
	// Threads holds each thread's instruction sequence.
	Threads [][]Instr
	// NumAddrs sizes the memory (addresses 0..NumAddrs-1, initially 0).
	NumAddrs int
	// NumRegs is the per-thread register file size.
	NumRegs int
	// InitMem optionally overrides initial memory contents.
	InitMem map[Addr]Word
}

// Outcome is a terminal valuation of all registers and memory.
type Outcome struct {
	Regs [][]Word
	Mem  []Word
}

// Key renders the outcome canonically, e.g. "r0:0=1 r1:0=0 | mem=[1 1]".
func (o Outcome) Key() string {
	s := ""
	for t, regs := range o.Regs {
		for r, v := range regs {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%d:r%d=%d", t, r, v)
		}
	}
	return s + fmt.Sprintf(" | mem=%v", o.Mem)
}

type progState struct {
	pc   []int
	regs [][]Word
	m    *Machine
}

func (ps *progState) clone() *progState {
	n := &progState{
		pc:   append([]int(nil), ps.pc...),
		regs: make([][]Word, len(ps.regs)),
		m:    ps.m.Clone(),
	}
	for i, r := range ps.regs {
		n.regs[i] = append([]Word(nil), r...)
	}
	return n
}

func (ps *progState) fingerprint() string {
	var b []byte
	for _, p := range ps.pc {
		b = binary.AppendUvarint(b, uint64(p))
	}
	for _, regs := range ps.regs {
		for _, v := range regs {
			b = binary.AppendVarint(b, int64(v))
		}
	}
	b = ps.m.AppendFingerprint(b)
	return string(b)
}

// Model selects the memory semantics for exploration.
type Model int

const (
	// TSO uses the full store-buffer machine.
	TSO Model = iota
	// SC commits every store immediately (sequential consistency): the
	// oracle the paper contrasts against (§2.4).
	SC
)

// Explore exhaustively enumerates all interleavings (and, under TSO, all
// buffer-commit schedules) of the program and returns the set of terminal
// outcomes keyed canonically.
func Explore(p Program, model Model) map[string]Outcome {
	init := &progState{
		pc:   make([]int, len(p.Threads)),
		regs: make([][]Word, len(p.Threads)),
		m:    New(len(p.Threads), p.NumAddrs),
	}
	for i := range init.regs {
		init.regs[i] = make([]Word, p.NumRegs)
	}
	for a, v := range p.InitMem {
		init.m.Mem[a] = v
	}

	outcomes := make(map[string]Outcome)
	seen := map[string]struct{}{init.fingerprint(): {}}
	stack := []*progState{init}

	for len(stack) > 0 {
		ps := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		progressed := false
		visit := func(ns *progState) {
			fp := ns.fingerprint()
			if _, ok := seen[fp]; ok {
				return
			}
			seen[fp] = struct{}{}
			stack = append(stack, ns)
		}

		for t := range p.Threads {
			tid := ThreadID(t)
			// Internal commit transition (TSO only).
			if model == TSO && ps.m.CanCommit(tid) {
				progressed = true
				ns := ps.clone()
				ns.m.Commit(tid)
				visit(ns)
			}
			if ps.pc[t] >= len(p.Threads[t]) {
				continue
			}
			in := p.Threads[t][ps.pc[t]]
			if ns, ok := stepInstr(ps, tid, in, model); ok {
				progressed = true
				visit(ns)
			}
		}

		if !progressed {
			done := true
			for t := range p.Threads {
				if ps.pc[t] < len(p.Threads[t]) {
					done = false
					break
				}
			}
			if !done {
				panic("tso: litmus program deadlocked")
			}
			o := Outcome{Regs: ps.regs, Mem: ps.m.Mem}
			outcomes[o.Key()] = o
		}
	}
	return outcomes
}

func stepInstr(ps *progState, t ThreadID, in Instr, model Model) (*progState, bool) {
	switch in := in.(type) {
	case Ld:
		if ps.m.Blocked(t) {
			return nil, false
		}
		ns := ps.clone()
		ns.regs[t][in.Dst] = ns.m.Read(t, in.Addr)
		ns.pc[t]++
		return ns, true
	case St:
		ns := ps.clone()
		if model == SC {
			if ns.m.Blocked(t) {
				return nil, false
			}
			ns.m.Mem[in.Addr] = in.Val
		} else {
			ns.m.Buffer(t, in.Addr, in.Val)
		}
		ns.pc[t]++
		return ns, true
	case MFence:
		if !ps.m.FenceReady(t) {
			return nil, false
		}
		ns := ps.clone()
		ns.pc[t]++
		return ns, true
	case CAS:
		if !ps.m.CanLock(t) || ps.m.Blocked(t) {
			return nil, false
		}
		ns := ps.clone()
		ok := ns.m.CAS(t, in.Addr, in.Old, in.New)
		if ok {
			ns.regs[t][in.Dst] = 1
		} else {
			ns.regs[t][in.Dst] = 0
		}
		ns.pc[t]++
		return ns, true
	case XchgAdd:
		if !ps.m.CanLock(t) || ps.m.Blocked(t) {
			return nil, false
		}
		ns := ps.clone()
		ns.m.DrainAll(t)
		old := ns.m.Mem[in.Addr]
		ns.m.Mem[in.Addr] = old + in.Inc
		ns.regs[t][in.Dst] = old
		ns.pc[t]++
		return ns, true
	default:
		panic(fmt.Sprintf("tso: unknown instruction %T", in))
	}
}

// OutcomeKeys returns the sorted keys of an outcome set, for stable
// reporting.
func OutcomeKeys(m map[string]Outcome) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
