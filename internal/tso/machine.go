// Package tso implements the x86-TSO abstract memory machine of Sewell,
// Sarkar, Owens, Zappa Nardelli and Myreen (CACM 2010), which the paper
// adopts as its memory model (§2.4 and Figure 9).
//
// The machine postulates a FIFO store buffer private to each hardware
// thread. Stores are buffered and committed to shared memory
// asynchronously; loads first consult the issuing thread's own buffer
// (newest matching entry wins) and fall through to shared memory. A global
// TSO lock serializes locked instructions (x86 locked CMPXCHG): while a
// thread holds the lock, no other thread may read from memory or commit
// buffered stores. MFENCE blocks until the issuing thread's buffer has
// drained; releasing the lock likewise requires an empty buffer, so locked
// instructions publish their updates before completing.
//
// The machine here is a value type with explicit enabledness predicates so
// that explicit-state explorers (package litmus, package explore) can
// enumerate its non-determinism — the single internal transition is the
// commit of the oldest buffered store of any unblocked thread.
package tso

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// ThreadID identifies a hardware thread.
type ThreadID int

// NoThread is the absence of a thread (e.g. no lock owner).
const NoThread ThreadID = -1

// Addr is a memory location.
type Addr int

// Word is a memory value.
type Word int64

// Write is a pending store in a store buffer.
type Write struct {
	Addr Addr
	Val  Word
}

// Machine is an x86-TSO memory system state for a fixed number of threads
// and addresses.
type Machine struct {
	// Mem is the shared memory, indexed by Addr.
	Mem []Word
	// Bufs holds each thread's FIFO store buffer, oldest first.
	Bufs [][]Write
	// LockOwner is the thread holding the TSO lock, or NoThread.
	LockOwner ThreadID
}

// New creates a machine with nthreads empty store buffers and naddrs
// zeroed memory locations.
func New(nthreads, naddrs int) *Machine {
	m := &Machine{
		Mem:       make([]Word, naddrs),
		Bufs:      make([][]Write, nthreads),
		LockOwner: NoThread,
	}
	return m
}

// Clone deep-copies the machine.
func (m *Machine) Clone() *Machine {
	n := &Machine{
		Mem:       append([]Word(nil), m.Mem...),
		Bufs:      make([][]Write, len(m.Bufs)),
		LockOwner: m.LockOwner,
	}
	for i, b := range m.Bufs {
		if len(b) > 0 {
			n.Bufs[i] = append([]Write(nil), b...)
		}
	}
	return n
}

// Blocked reports whether thread t is prevented from reading memory or
// committing buffered stores because another thread holds the TSO lock.
func (m *Machine) Blocked(t ThreadID) bool {
	return m.LockOwner != NoThread && m.LockOwner != t
}

// Read returns the value thread t observes at addr: the newest entry for
// addr in t's own store buffer if any, else shared memory. Read is only
// permitted when t is not Blocked.
func (m *Machine) Read(t ThreadID, addr Addr) Word {
	if m.Blocked(t) {
		panic(fmt.Sprintf("tso: thread %d read at %d while blocked", t, addr))
	}
	buf := m.Bufs[t]
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i].Addr == addr {
			return buf[i].Val
		}
	}
	return m.Mem[addr]
}

// Buffer appends a store to t's store buffer. Buffering is always enabled:
// the TSO lock does not prevent other threads from issuing stores, only
// from committing them.
func (m *Machine) Buffer(t ThreadID, addr Addr, v Word) {
	m.Bufs[t] = append(m.Bufs[t], Write{Addr: addr, Val: v})
}

// CanCommit reports whether thread t has a committable store: a non-empty
// buffer and t not Blocked.
func (m *Machine) CanCommit(t ThreadID) bool {
	return len(m.Bufs[t]) > 0 && !m.Blocked(t)
}

// Commit writes t's oldest buffered store to shared memory.
func (m *Machine) Commit(t ThreadID) {
	if !m.CanCommit(t) {
		panic(fmt.Sprintf("tso: thread %d cannot commit", t))
	}
	w := m.Bufs[t][0]
	rest := m.Bufs[t][1:]
	if len(rest) == 0 {
		m.Bufs[t] = nil
	} else {
		m.Bufs[t] = append([]Write(nil), rest...)
	}
	m.Mem[w.Addr] = w.Val
}

// FenceReady reports whether an MFENCE issued by t may complete: its store
// buffer must be empty. A pending fence is modeled by the thread being
// unable to proceed until FenceReady holds.
func (m *Machine) FenceReady(t ThreadID) bool { return len(m.Bufs[t]) == 0 }

// CanLock reports whether t may acquire the TSO lock.
func (m *Machine) CanLock(t ThreadID) bool { return m.LockOwner == NoThread }

// Lock acquires the TSO lock for t.
func (m *Machine) Lock(t ThreadID) {
	if !m.CanLock(t) {
		panic(fmt.Sprintf("tso: thread %d lock while owned by %d", t, m.LockOwner))
	}
	m.LockOwner = t
}

// CanUnlock reports whether t may release the TSO lock: t must own it and
// t's store buffer must be empty, so a locked instruction's stores are
// globally visible before it completes.
func (m *Machine) CanUnlock(t ThreadID) bool {
	return m.LockOwner == t && len(m.Bufs[t]) == 0
}

// Unlock releases the TSO lock.
func (m *Machine) Unlock(t ThreadID) {
	if !m.CanUnlock(t) {
		panic(fmt.Sprintf("tso: thread %d cannot unlock (owner %d, buf %d)",
			t, m.LockOwner, len(m.Bufs[t])))
	}
	m.LockOwner = NoThread
}

// DrainAll commits every buffered store of t; only legal when t is not
// Blocked. It is a convenience for atomic (coarse-grained) operations.
func (m *Machine) DrainAll(t ThreadID) {
	for len(m.Bufs[t]) > 0 {
		m.Commit(t)
	}
}

// CAS performs an atomic locked compare-and-swap as a single coarse step:
// it requires the lock to be free, drains t's buffer, compares memory at
// addr with old, and if equal stores new directly. It returns whether the
// swap happened. This is the macro form used by the litmus harness; the GC
// model in package gcmodel instead spells out the fine-grained
// lock/read/write/drain/unlock sequence of paper Figure 5.
func (m *Machine) CAS(t ThreadID, addr Addr, old, new Word) bool {
	if !m.CanLock(t) {
		panic("tso: CAS while lock held")
	}
	m.DrainAll(t)
	if m.Mem[addr] != old {
		return false
	}
	m.Mem[addr] = new
	return true
}

// AppendFingerprint appends a canonical encoding of the machine state.
func (m *Machine) AppendFingerprint(dst []byte) []byte {
	dst = binary.AppendVarint(dst, int64(m.LockOwner))
	for _, w := range m.Mem {
		dst = binary.AppendVarint(dst, int64(w))
	}
	for _, buf := range m.Bufs {
		dst = binary.AppendUvarint(dst, uint64(len(buf)))
		for _, w := range buf {
			dst = binary.AppendVarint(dst, int64(w.Addr))
			dst = binary.AppendVarint(dst, int64(w.Val))
		}
	}
	return dst
}

// String renders the machine state for traces.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mem=%v", m.Mem)
	for t, buf := range m.Bufs {
		if len(buf) > 0 {
			fmt.Fprintf(&b, " buf[%d]=%v", t, buf)
		}
	}
	if m.LockOwner != NoThread {
		fmt.Fprintf(&b, " lock=%d", m.LockOwner)
	}
	return b.String()
}
