package tso

import (
	"testing"
	"testing/quick"
)

func TestReadForwardsFromOwnBuffer(t *testing.T) {
	m := New(2, 2)
	m.Buffer(0, 0, 7)
	if got := m.Read(0, 0); got != 7 {
		t.Fatalf("own read = %d, want 7 (buffer forwarding)", got)
	}
	if got := m.Read(1, 0); got != 0 {
		t.Fatalf("other read = %d, want 0 (store not committed)", got)
	}
}

func TestReadSeesNewestBufferedWrite(t *testing.T) {
	m := New(1, 1)
	m.Buffer(0, 0, 1)
	m.Buffer(0, 0, 2)
	m.Buffer(0, 0, 3)
	if got := m.Read(0, 0); got != 3 {
		t.Fatalf("read = %d, want newest buffered value 3", got)
	}
}

func TestCommitIsFIFO(t *testing.T) {
	m := New(1, 2)
	m.Buffer(0, 0, 1)
	m.Buffer(0, 1, 2)
	m.Commit(0)
	if m.Mem[0] != 1 || m.Mem[1] != 0 {
		t.Fatalf("after first commit mem = %v", m.Mem)
	}
	m.Commit(0)
	if m.Mem[1] != 2 {
		t.Fatalf("after second commit mem = %v", m.Mem)
	}
	if m.CanCommit(0) {
		t.Fatal("empty buffer reports committable")
	}
}

func TestLockBlocksOtherThreads(t *testing.T) {
	m := New(2, 1)
	m.Buffer(1, 0, 9)
	m.Lock(0)
	if !m.Blocked(1) {
		t.Fatal("thread 1 should be blocked while 0 holds the lock")
	}
	if m.Blocked(0) {
		t.Fatal("lock owner should not be blocked")
	}
	if m.CanCommit(1) {
		t.Fatal("blocked thread must not commit")
	}
	if m.CanLock(1) {
		t.Fatal("lock must be exclusive")
	}
	// Owner with empty buffer can unlock.
	if !m.CanUnlock(0) {
		t.Fatal("owner with empty buffer should be able to unlock")
	}
	m.Unlock(0)
	if !m.CanCommit(1) {
		t.Fatal("after unlock thread 1 can commit again")
	}
}

func TestUnlockRequiresEmptyBuffer(t *testing.T) {
	m := New(1, 1)
	m.Lock(0)
	m.Buffer(0, 0, 5)
	if m.CanUnlock(0) {
		t.Fatal("unlock with pending stores must be refused (locked ops publish before completing)")
	}
	m.Commit(0) // owner can drain
	if !m.CanUnlock(0) {
		t.Fatal("unlock should be possible once drained")
	}
}

func TestFenceReadyOnlyWhenDrained(t *testing.T) {
	m := New(1, 1)
	if !m.FenceReady(0) {
		t.Fatal("fence with empty buffer must complete")
	}
	m.Buffer(0, 0, 1)
	if m.FenceReady(0) {
		t.Fatal("fence with pending stores must wait")
	}
}

func TestCASFlushesAndSwaps(t *testing.T) {
	m := New(1, 2)
	m.Buffer(0, 1, 42) // unrelated pending store
	if !m.CAS(0, 0, 0, 1) {
		t.Fatal("CAS should succeed")
	}
	if m.Mem[0] != 1 {
		t.Fatalf("mem[0] = %d after CAS", m.Mem[0])
	}
	if m.Mem[1] != 42 {
		t.Fatal("CAS must flush the store buffer first")
	}
	if m.CAS(0, 0, 0, 2) {
		t.Fatal("CAS with stale expected value should fail")
	}
	if m.Mem[0] != 1 {
		t.Fatal("failed CAS must not write")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2, 2)
	m.Buffer(0, 0, 1)
	m.Lock(1)
	n := m.Clone()
	n.Mem[1] = 99
	n.Bufs[0][0].Val = 50
	n.LockOwner = NoThread
	if m.Mem[1] != 0 || m.Bufs[0][0].Val != 1 || m.LockOwner != 1 {
		t.Fatal("clone shares state with original")
	}
}

func TestFingerprintDistinguishesBufferOrder(t *testing.T) {
	a := New(1, 2)
	a.Buffer(0, 0, 1)
	a.Buffer(0, 1, 2)
	b := New(1, 2)
	b.Buffer(0, 1, 2)
	b.Buffer(0, 0, 1)
	if string(a.AppendFingerprint(nil)) == string(b.AppendFingerprint(nil)) {
		t.Fatal("fingerprint must distinguish FIFO order")
	}
}

// Property: a thread always reads its own most recent store, regardless
// of commit activity (TSO's per-thread program-order guarantee).
func TestOwnStoreVisibleQuick(t *testing.T) {
	f := func(vals []uint8, commits uint8) bool {
		if len(vals) == 0 {
			return true
		}
		m := New(1, 1)
		for _, v := range vals {
			m.Buffer(0, 0, Word(v))
		}
		for i := 0; i < int(commits)%len(vals); i++ {
			m.Commit(0)
		}
		return m.Read(0, 0) == Word(vals[len(vals)-1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after draining everything, memory equals the last write per
// address in program order.
func TestDrainAllConvergesQuick(t *testing.T) {
	f := func(writes []struct {
		A uint8
		V uint8
	}) bool {
		const n = 4
		m := New(1, n)
		want := make([]Word, n)
		for _, w := range writes {
			a := Addr(w.A % n)
			m.Buffer(0, a, Word(w.V))
			want[a] = Word(w.V)
		}
		m.DrainAll(0)
		for i := range want {
			if m.Mem[i] != want[i] {
				return false
			}
		}
		return len(m.Bufs[0]) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExploreTerminatesOnStraightLineCode(t *testing.T) {
	p := Program{
		NumAddrs: 1, NumRegs: 1,
		Threads: [][]Instr{
			{St{Addr: 0, Val: 1}, Ld{Dst: 0, Addr: 0}},
		},
	}
	outs := Explore(p, TSO)
	if len(outs) != 1 {
		t.Fatalf("single-thread program must have one outcome, got %v", OutcomeKeys(outs))
	}
	for _, o := range outs {
		if o.Regs[0][0] != 1 {
			t.Fatalf("own store not observed: %v", o.Key())
		}
	}
}

func TestExploreSCNoBuffering(t *testing.T) {
	// Under SC a store is immediately visible to everyone.
	p := Program{
		NumAddrs: 1, NumRegs: 1,
		Threads: [][]Instr{
			{St{Addr: 0, Val: 1}},
			{Ld{Dst: 0, Addr: 0}},
		},
	}
	outs := Explore(p, SC)
	// Outcomes: load before store (0) or after (1); never a buffered
	// intermediate.
	if len(outs) != 2 {
		t.Fatalf("outcomes = %v", OutcomeKeys(outs))
	}
}

func TestInitMemRespected(t *testing.T) {
	p := Program{
		NumAddrs: 1, NumRegs: 1,
		InitMem: map[Addr]Word{0: 7},
		Threads: [][]Instr{{Ld{Dst: 0, Addr: 0}}},
	}
	for _, model := range []Model{TSO, SC} {
		for _, o := range Explore(p, model) {
			if o.Regs[0][0] != 7 {
				t.Fatalf("init mem ignored: %v", o.Key())
			}
		}
	}
}
