package storage

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Kind names one injectable fault.
type Kind string

const (
	// EIO fails the operation with an I/O error.
	EIO Kind = "eio"
	// ENOSPC fails the operation with a disk-full error.
	ENOSPC Kind = "enospc"
	// ShortWrite persists a prefix of the data, then fails the write.
	ShortWrite Kind = "short-write"
	// TornRename REPORTS SUCCESS but installs a truncated copy of the
	// source at the destination — the silent fault that only a
	// checksumming reader can catch.
	TornRename Kind = "torn-rename"
	// FsyncFail fails the Sync call; the data may or may not be durable.
	FsyncFail Kind = "fsync-fail"
	// Crash applies a torn prefix of any in-flight write, then freezes
	// the filesystem: every later operation fails with ErrCrashed.
	// Recovery means reopening the directory with a fresh FS, exactly
	// like a process restart.
	Crash Kind = "crash"
)

// Kinds lists every injectable fault, in matrix order.
var Kinds = []Kind{EIO, ENOSPC, ShortWrite, TornRename, FsyncFail, Crash}

// ErrCrashed is the terminal error a crashed FaultFS returns for every
// operation after the crash point.
var ErrCrashed = errors.New("storage: simulated crash")

// FaultError is the loud, named error every injected fault surfaces
// as (except TornRename, whose whole point is silence).
type FaultError struct {
	Kind  Kind
	Op    string // operation name: "write", "sync", "rename", ...
	Path  string
	Index int // zero-based operation index in the FaultFS op trace
	Under error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("storage fault: %s at op %d (%s %s): %v", e.Kind, e.Index, e.Op, e.Path, e.Under)
}

func (e *FaultError) Unwrap() error { return e.Under }

// IsTransient reports whether err looks like a storage failure a retry
// may clear: injected or real EIO/ENOSPC, short writes, and failed
// fsyncs. Crashes are not transient — the process is gone.
func IsTransient(err error) bool {
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe.Kind != Crash
	}
	return errors.Is(err, syscall.EIO) || errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, io.ErrShortWrite)
}

// Op is one entry of the FaultFS operation trace.
type Op struct {
	Index    int
	Name     string
	Path     string
	Injected Kind // "" when the op ran clean
}

// Fault is one scheduled injection, the unit the shrinker minimizes.
type Fault struct {
	// Op selects a zero-based operation index; -1 selects by Path.
	Op int
	// Path selects the next operation whose path contains this
	// substring (after skipping Skip earlier matches). Fires once.
	Path string
	// Skip is the number of matching operations to let pass first.
	Skip int
	Kind Kind
}

func (f Fault) String() string {
	if f.Op >= 0 {
		return fmt.Sprintf("%s@%d", f.Kind, f.Op)
	}
	if f.Skip > 0 {
		return fmt.Sprintf("%s@%s+%d", f.Kind, f.Path, f.Skip)
	}
	return fmt.Sprintf("%s@%s", f.Kind, f.Path)
}

type pathFault struct {
	substr string // gcrt:guard by(FaultFS.mu)
	kind   Kind   // gcrt:guard by(FaultFS.mu)
	skip   int    // gcrt:guard by(FaultFS.mu)
	spent  bool   // gcrt:guard by(FaultFS.mu)
}

// FaultFS wraps an inner FS and injects scheduled or seeded-random
// faults at operation boundaries, recording an op trace so a failing
// schedule can be reported and shrunk.
type FaultFS struct {
	inner FS // gcrt:guard immutable

	mu      sync.Mutex   // gcrt:guard atomic
	crashFn func()       // gcrt:guard by(mu)
	n       int          // gcrt:guard by(mu)
	trace   []Op         // gcrt:guard by(mu)
	byIndex map[int]Kind // gcrt:guard by(mu)
	byPath  []*pathFault // gcrt:guard by(mu)
	rng     *rand.Rand   // gcrt:guard by(mu)
	rate    float64      // gcrt:guard by(mu)
	kinds   []Kind       // gcrt:guard by(mu)
	crashed bool         // gcrt:guard by(mu)
}

// NewFaultFS wraps inner (nil = the real filesystem) with no faults
// scheduled; a bare FaultFS is a pure op recorder.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: OrOS(inner), byIndex: make(map[int]Kind)}
}

// FailAt schedules kind at the given zero-based operation index.
func (f *FaultFS) FailAt(op int, kind Kind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.byIndex[op] = kind
}

// FailPath schedules kind at the next operation whose path contains
// substr, after letting skip earlier matches pass. Fires once.
func (f *FaultFS) FailPath(substr string, kind Kind, skip int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.byPath = append(f.byPath, &pathFault{substr: substr, kind: kind, skip: skip})
}

// Apply installs a whole fault schedule.
func (f *FaultFS) Apply(sched []Fault) {
	for _, ft := range sched {
		if ft.Op >= 0 {
			f.FailAt(ft.Op, ft.Kind)
		} else {
			f.FailPath(ft.Path, ft.Kind, ft.Skip)
		}
	}
}

// Seed enables seeded-random injection: each operation faults with the
// given probability, drawing uniformly from kinds (defaults to the
// transient kinds — no torn renames or crashes unless asked for).
func (f *FaultFS) Seed(seed int64, rate float64, kinds ...Kind) {
	if len(kinds) == 0 {
		kinds = []Kind{EIO, ENOSPC, ShortWrite, FsyncFail}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
	f.rate = rate
	f.kinds = kinds
}

// OnCrash registers a hook run when a Crash fault fires, after the
// torn write is applied and the FS is frozen. gcmcd points this at
// os.Exit to turn an injected crash into a real process death.
func (f *FaultFS) OnCrash(fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashFn = fn
}

// Crashed reports whether a Crash fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns the number of operations recorded so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Trace returns a copy of the operation trace.
func (f *FaultFS) Trace() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Op, len(f.trace))
	copy(out, f.trace)
	return out
}

// FormatTrace renders an op trace one line per operation, marking the
// injected faults — the artifact CI uploads when a chaos run fails.
func FormatTrace(ops []Op) string {
	var b strings.Builder
	for _, op := range ops {
		fmt.Fprintf(&b, "%4d %-8s %s", op.Index, op.Name, op.Path)
		if op.Injected != "" {
			fmt.Fprintf(&b, "   <- %s", op.Injected)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// begin records one operation and decides its injection. It returns
// the op index, the kind needing caller-side handling (ShortWrite or
// Crash on writes, TornRename on rename), and a pre-built error for
// kinds that simply fail the op. A crashed FS fails everything.
func (f *FaultFS) begin(opName, path string) (int, Kind, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return -1, "", &FaultError{Kind: Crash, Op: opName, Path: path, Index: -1, Under: ErrCrashed}
	}
	idx := f.n
	f.n++
	kind := f.byIndex[idx]
	if kind == "" {
		for _, pf := range f.byPath {
			if pf.spent || !strings.Contains(path, pf.substr) {
				continue
			}
			if pf.skip > 0 {
				pf.skip--
				continue
			}
			pf.spent = true
			kind = pf.kind
			break
		}
	}
	if kind == "" && f.rng != nil && f.rng.Float64() < f.rate {
		kind = f.kinds[f.rng.Intn(len(f.kinds))]
	}
	f.trace = append(f.trace, Op{Index: idx, Name: opName, Path: path, Injected: kind})
	if kind == Crash {
		f.crashed = true
	}
	f.mu.Unlock()

	switch kind {
	case "":
		return idx, "", nil
	case Crash:
		return idx, Crash, nil
	case ShortWrite:
		if opName == "write" || opName == "writeat" {
			return idx, ShortWrite, nil
		}
		return idx, "", &FaultError{Kind: ShortWrite, Op: opName, Path: path, Index: idx, Under: io.ErrShortWrite}
	case TornRename:
		if opName == "rename" {
			return idx, TornRename, nil
		}
		return idx, "", &FaultError{Kind: TornRename, Op: opName, Path: path, Index: idx, Under: syscall.EIO}
	case ENOSPC:
		return idx, "", &FaultError{Kind: ENOSPC, Op: opName, Path: path, Index: idx, Under: syscall.ENOSPC}
	case FsyncFail:
		return idx, "", &FaultError{Kind: FsyncFail, Op: opName, Path: path, Index: idx, Under: syscall.EIO}
	default: // EIO and anything unrecognized
		return idx, "", &FaultError{Kind: EIO, Op: opName, Path: path, Index: idx, Under: syscall.EIO}
	}
}

// crashNow runs the crash hook (outside the lock: it may os.Exit) and
// builds the crash error for the op that tripped it.
func (f *FaultFS) crashNow(idx int, opName, path string) error {
	f.mu.Lock()
	fn := f.crashFn
	f.mu.Unlock()
	if fn != nil {
		fn()
	}
	return &FaultError{Kind: Crash, Op: opName, Path: path, Index: idx, Under: ErrCrashed}
}

func (f *FaultFS) Open(name string) (File, error) {
	idx, kind, err := f.begin("open", name)
	if err != nil {
		return nil, err
	}
	if kind == Crash {
		return nil, f.crashNow(idx, "open", name)
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: inner, path: name}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	idx, kind, err := f.begin("create", name)
	if err != nil {
		return nil, err
	}
	if kind == Crash {
		return nil, f.crashNow(idx, "create", name)
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: inner, path: name}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	idx, kind, err := f.begin("rename", oldpath)
	if err != nil {
		return err
	}
	switch kind {
	case Crash:
		return f.crashNow(idx, "rename", oldpath)
	case TornRename:
		return f.tearRename(oldpath, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

// tearRename models a non-atomic replace interrupted halfway: the
// destination ends up a truncated copy of the source, the source is
// gone, and the caller is told everything went fine.
func (f *FaultFS) tearRename(oldpath, newpath string) error {
	data, err := ReadFile(f.inner, oldpath)
	if err != nil {
		return nil // nothing to tear; stay silent like the fault demands
	}
	dst, err := f.inner.Create(newpath)
	if err != nil {
		return nil
	}
	dst.Write(data[:len(data)/2])
	dst.Close()
	f.inner.Remove(oldpath)
	return nil
}

func (f *FaultFS) Remove(name string) error {
	idx, kind, err := f.begin("remove", name)
	if err != nil {
		return err
	}
	if kind == Crash {
		return f.crashNow(idx, "remove", name)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(path string) error {
	idx, kind, err := f.begin("mkdirall", path)
	if err != nil {
		return err
	}
	if kind == Crash {
		return f.crashNow(idx, "mkdirall", path)
	}
	return f.inner.MkdirAll(path)
}

func (f *FaultFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	idx, kind, err := f.begin("readdir", name)
	if err != nil {
		return nil, err
	}
	if kind == Crash {
		return nil, f.crashNow(idx, "readdir", name)
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (iofs.FileInfo, error) {
	idx, kind, err := f.begin("stat", name)
	if err != nil {
		return nil, err
	}
	if kind == Crash {
		return nil, f.crashNow(idx, "stat", name)
	}
	return f.inner.Stat(name)
}

// faultFile wraps an inner File so per-call reads, writes, and syncs
// hit the same injection machinery as directory-level operations.
type faultFile struct {
	fs   *FaultFS // gcrt:guard immutable
	f    File     // gcrt:guard immutable
	path string   // gcrt:guard immutable
}

func (w *faultFile) Read(p []byte) (int, error) {
	idx, kind, err := w.fs.begin("read", w.path)
	if err != nil {
		return 0, err
	}
	if kind == Crash {
		return 0, w.fs.crashNow(idx, "read", w.path)
	}
	return w.f.Read(p)
}

func (w *faultFile) ReadAt(p []byte, off int64) (int, error) {
	idx, kind, err := w.fs.begin("readat", w.path)
	if err != nil {
		return 0, err
	}
	if kind == Crash {
		return 0, w.fs.crashNow(idx, "readat", w.path)
	}
	return w.f.ReadAt(p, off)
}

func (w *faultFile) Write(p []byte) (int, error) {
	idx, kind, err := w.fs.begin("write", w.path)
	if err != nil {
		return 0, err
	}
	switch kind {
	case ShortWrite:
		n, _ := w.f.Write(p[:len(p)/2])
		return n, &FaultError{Kind: ShortWrite, Op: "write", Path: w.path, Index: idx, Under: io.ErrShortWrite}
	case Crash:
		w.f.Write(p[:len(p)/2])
		return 0, w.fs.crashNow(idx, "write", w.path)
	}
	return w.f.Write(p)
}

func (w *faultFile) WriteAt(p []byte, off int64) (int, error) {
	idx, kind, err := w.fs.begin("writeat", w.path)
	if err != nil {
		return 0, err
	}
	switch kind {
	case ShortWrite:
		n, _ := w.f.WriteAt(p[:len(p)/2], off)
		return n, &FaultError{Kind: ShortWrite, Op: "writeat", Path: w.path, Index: idx, Under: io.ErrShortWrite}
	case Crash:
		w.f.WriteAt(p[:len(p)/2], off)
		return 0, w.fs.crashNow(idx, "writeat", w.path)
	}
	return w.f.WriteAt(p, off)
}

func (w *faultFile) Sync() error {
	idx, kind, err := w.fs.begin("sync", w.path)
	if err != nil {
		return err
	}
	if kind == Crash {
		return w.fs.crashNow(idx, "sync", w.path)
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error {
	idx, kind, err := w.fs.begin("close", w.path)
	if err != nil {
		w.f.Close() // never leak the descriptor
		return err
	}
	if kind == Crash {
		w.f.Close()
		return w.fs.crashNow(idx, "close", w.path)
	}
	return w.f.Close()
}

func (w *faultFile) Name() string { return w.path }

// Shrink greedily minimizes a failing fault schedule: it drops each
// fault in turn and keeps the removal whenever fails still reports
// true, converging on a locally minimal schedule. fails must be a
// deterministic replay (fresh FaultFS + Apply per call).
func Shrink(sched []Fault, fails func([]Fault) bool) []Fault {
	out := append([]Fault(nil), sched...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(out); i++ {
			trial := append(append([]Fault(nil), out[:i]...), out[i+1:]...)
			if fails(trial) {
				out = trial
				changed = true
				break
			}
		}
	}
	return out
}

// FromSpec builds a FaultFS over inner from a command-line spec: a
// comma-separated list of clauses
//
//	<kind>@<op-index>        fault at a specific operation index
//	<kind>@<path-substr>     fault at the next op matching the path
//	<kind>@<path-substr>+<k> ... after skipping k matches
//	seed=<n>                 enable seeded-random injection
//	rate=<p>                 ... with this per-op probability
//	kinds=<k1>|<k2>          ... drawing from these kinds
//
// where <kind> is one of eio, enospc, short-write, torn-rename,
// fsync-fail, crash.
func FromSpec(inner FS, spec string) (*FaultFS, error) {
	f := NewFaultFS(inner)
	var seed int64
	rate := -1.0
	var randKinds []Kind
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("storage: bad seed %q: %w", v, err)
			}
			seed = n
			if rate < 0 {
				rate = 0.01
			}
			continue
		}
		if v, ok := strings.CutPrefix(clause, "rate="); ok {
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("storage: bad rate %q: %w", v, err)
			}
			rate = p
			continue
		}
		if v, ok := strings.CutPrefix(clause, "kinds="); ok {
			for _, k := range strings.Split(v, "|") {
				kk, err := parseKind(k)
				if err != nil {
					return nil, err
				}
				randKinds = append(randKinds, kk)
			}
			continue
		}
		kindStr, target, ok := strings.Cut(clause, "@")
		if !ok {
			return nil, fmt.Errorf("storage: bad fault clause %q (want kind@target)", clause)
		}
		kind, err := parseKind(kindStr)
		if err != nil {
			return nil, err
		}
		if op, err := strconv.Atoi(target); err == nil {
			f.FailAt(op, kind)
			continue
		}
		substr, skip := target, 0
		if s, k, ok := strings.Cut(target, "+"); ok {
			if n, err := strconv.Atoi(k); err == nil {
				substr, skip = s, n
			}
		}
		f.FailPath(substr, kind, skip)
	}
	if rate >= 0 {
		f.Seed(seed, rate, randKinds...)
	}
	return f, nil
}

func parseKind(s string) (Kind, error) {
	k := Kind(strings.TrimSpace(s))
	for _, known := range Kinds {
		if k == known {
			return k, nil
		}
	}
	return "", fmt.Errorf("storage: unknown fault kind %q (want one of %v)", s, Kinds)
}
