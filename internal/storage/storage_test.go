package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestOSFSRoundTrip: the passthrough FS behaves like the os package
// for the whole interface surface.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OSFS{}
	if err := fsys.MkdirAll(filepath.Join(dir, "a/b")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a/b/x.bin")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fsys, path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if _, err := fsys.Stat(path); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(filepath.Join(dir, "a/b"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fsys.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFileAtomic: success replaces the destination and leaves no
// staging file; a failed write leaves the previous contents intact.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.json")
	if err := WriteFileAtomic(OSFS{}, path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(OSFS{}, path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "two" {
		t.Fatalf("contents = %q", got)
	}
	if _, err := os.Stat(path + TmpSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("staging file left behind: %v", err)
	}

	ffs := NewFaultFS(OSFS{})
	ffs.FailPath("v.json", EIO, 0) // first op touching the path: Create of the tmp
	if err := WriteFileAtomic(ffs, path, []byte("three")); err == nil {
		t.Fatal("faulted write reported success")
	}
	if got, _ := os.ReadFile(path); string(got) != "two" {
		t.Fatalf("failed atomic write damaged the destination: %q", got)
	}
}

// TestFaultKinds walks each kind through its defining behavior.
func TestFaultKinds(t *testing.T) {
	t.Run("eio", func(t *testing.T) {
		ffs := NewFaultFS(OSFS{})
		ffs.FailAt(0, EIO)
		_, err := ffs.Create(filepath.Join(t.TempDir(), "x"))
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Kind != EIO || !errors.Is(err, syscall.EIO) {
			t.Fatalf("err = %v", err)
		}
		if !IsTransient(err) {
			t.Fatal("EIO not transient")
		}
	})
	t.Run("enospc", func(t *testing.T) {
		ffs := NewFaultFS(OSFS{})
		ffs.FailAt(1, ENOSPC) // op 0 = create, op 1 = write
		f, err := ffs.Create(filepath.Join(t.TempDir(), "x"))
		if err != nil {
			t.Fatal(err)
		}
		_, err = f.Write([]byte("data"))
		if !errors.Is(err, syscall.ENOSPC) || !IsTransient(err) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("short-write", func(t *testing.T) {
		dir := t.TempDir()
		ffs := NewFaultFS(OSFS{})
		ffs.FailAt(1, ShortWrite)
		f, _ := ffs.Create(filepath.Join(dir, "x"))
		n, err := f.Write([]byte("12345678"))
		if n != 4 || !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("n=%d err=%v", n, err)
		}
		f.Close()
		if got, _ := os.ReadFile(filepath.Join(dir, "x")); string(got) != "1234" {
			t.Fatalf("persisted %q, want the torn prefix", got)
		}
	})
	t.Run("torn-rename-is-silent", func(t *testing.T) {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, "src"), []byte("12345678"), 0o644)
		ffs := NewFaultFS(OSFS{})
		ffs.FailPath("src", TornRename, 0)
		if err := ffs.Rename(filepath.Join(dir, "src"), filepath.Join(dir, "dst")); err != nil {
			t.Fatalf("torn rename must report success, got %v", err)
		}
		if got, _ := os.ReadFile(filepath.Join(dir, "dst")); string(got) != "1234" {
			t.Fatalf("dst = %q, want the torn prefix", got)
		}
		if _, err := os.Stat(filepath.Join(dir, "src")); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("source survived the torn rename")
		}
	})
	t.Run("fsync-fail", func(t *testing.T) {
		ffs := NewFaultFS(OSFS{})
		ffs.FailAt(2, FsyncFail) // create, write, sync
		f, _ := ffs.Create(filepath.Join(t.TempDir(), "x"))
		f.Write([]byte("d"))
		err := f.Sync()
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Kind != FsyncFail || !IsTransient(err) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("crash-freezes-everything", func(t *testing.T) {
		dir := t.TempDir()
		hooked := false
		ffs := NewFaultFS(OSFS{})
		ffs.OnCrash(func() { hooked = true })
		ffs.FailAt(1, Crash)
		f, _ := ffs.Create(filepath.Join(dir, "x"))
		_, err := f.Write([]byte("12345678"))
		if !errors.Is(err, ErrCrashed) || !hooked || !ffs.Crashed() {
			t.Fatalf("err=%v hooked=%v crashed=%v", err, hooked, ffs.Crashed())
		}
		if IsTransient(err) {
			t.Fatal("crash must not be transient")
		}
		// The torn prefix was applied before the freeze.
		f2, _ := os.ReadFile(filepath.Join(dir, "x"))
		if string(f2) != "1234" {
			t.Fatalf("crash write persisted %q", f2)
		}
		// Every later op fails, on any path.
		if _, err := ffs.Stat(dir); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash stat = %v", err)
		}
		if _, err := ffs.Create(filepath.Join(dir, "y")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash create = %v", err)
		}
	})
}

// TestFaultTraceAndDeterminism: the op trace records every operation
// with its injection, and the same seed replays the same faults.
func TestFaultTraceAndDeterminism(t *testing.T) {
	run := func(seed int64) []Op {
		dir := t.TempDir()
		ffs := NewFaultFS(OSFS{})
		ffs.Seed(seed, 0.5)
		for i := 0; i < 20; i++ {
			WriteFileAtomic(ffs, filepath.Join(dir, "f.json"), []byte("payload"))
		}
		return ffs.Trace()
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths %d vs %d", len(a), len(b))
	}
	injected := 0
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Injected != b[i].Injected {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Injected != "" {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("rate 0.5 injected nothing")
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Injected != c[i].Injected {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
	if out := FormatTrace(a); !strings.Contains(out, "create") {
		t.Fatalf("FormatTrace output unrecognizable:\n%s", out)
	}
}

// TestShrink: the greedy minimizer strips faults that do not
// contribute to the failure.
func TestShrink(t *testing.T) {
	sched := []Fault{
		{Op: 0, Kind: EIO},
		{Op: -1, Path: "irrelevant", Kind: ENOSPC},
		{Op: 7, Kind: FsyncFail},
	}
	// "Fails" iff op 7 is faulted — the other two are noise.
	fails := func(s []Fault) bool {
		for _, f := range s {
			if f.Op == 7 {
				return true
			}
		}
		return false
	}
	min := Shrink(sched, fails)
	if len(min) != 1 || min[0].Op != 7 {
		t.Fatalf("shrunk to %v", min)
	}
}

// TestFromSpec: the CLI grammar covers index, path, skip, and seeded
// clauses, and rejects unknown kinds.
func TestFromSpec(t *testing.T) {
	ffs, err := FromSpec(OSFS{}, "eio@3, crash@run.ckpt+2, seed=9, rate=0.25")
	if err != nil {
		t.Fatal(err)
	}
	ffs.mu.Lock()
	if ffs.byIndex[3] != EIO {
		t.Fatalf("byIndex = %v", ffs.byIndex)
	}
	if len(ffs.byPath) != 1 || ffs.byPath[0].substr != "run.ckpt" || ffs.byPath[0].skip != 2 || ffs.byPath[0].kind != Crash {
		t.Fatalf("byPath = %+v", ffs.byPath[0])
	}
	if ffs.rng == nil || ffs.rate != 0.25 {
		t.Fatalf("seeded mode not armed: rate=%v", ffs.rate)
	}
	ffs.mu.Unlock()

	if _, err := FromSpec(nil, "nuke@3"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := FromSpec(nil, "eio"); err == nil {
		t.Fatal("clause without target accepted")
	}
}

// TestFailPathSkip: the +k selector lets k matches pass, then fires
// exactly once.
func TestFailPathSkip(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	ffs.FailPath("hot", EIO, 2)
	path := filepath.Join(dir, "hot.bin")
	var errs []error
	for i := 0; i < 5; i++ {
		_, err := ffs.Stat(path)
		errs = append(errs, err)
	}
	for i, err := range errs {
		faulted := errors.Is(err, syscall.EIO)
		if want := i == 2; faulted != want {
			t.Fatalf("op %d: faulted=%v want %v (%v)", i, faulted, want, err)
		}
	}
}
