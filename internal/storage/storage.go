// Package storage is the filesystem seam under every durable artifact
// in the checker: checkpoint saves, the daemon's job records and
// verdict cache, and the explorer's disk-spill files. All of them do
// their I/O through the FS interface so a single fault-injecting
// implementation (FaultFS) can hurt every durability path the same way
// an adversarial disk would — EIO, ENOSPC, short writes, torn renames,
// failed fsyncs, and crashes at arbitrary operation boundaries.
//
// OSFS is the passthrough used in production; OrOS upgrades a nil FS
// to it so callers can thread an optional FS without nil checks.
package storage

import (
	"fmt"
	"io"
	"io/fs"
	"os"
)

// File is the handle the FS hands out. os.File satisfies it; FaultFS
// wraps it to count and corrupt individual reads, writes, and syncs.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer

	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem abstraction every durability path goes through.
// It is deliberately small: exactly the operations the checkpoint
// writer, the verdict cache, the job store, and the spill path need.
type FS interface {
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// Rename atomically replaces newpath with oldpath (the commit point
	// of every atomic-write protocol in the repo).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
}

// OSFS is the production FS: a passthrough to the operating system.
type OSFS struct{}

func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }
func (OSFS) MkdirAll(path string) error           { return os.MkdirAll(path, 0o755) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return os.ReadDir(name)
}
func (OSFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// OrOS returns fsys, or the real filesystem when fsys is nil. Every
// consumer with an optional FS field goes through this once.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OSFS{}
	}
	return fsys
}

// ReadFile reads a whole file through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// TmpSuffix is the suffix every atomic-write protocol in the repo uses
// for its staging file. A file carrying it is by construction either
// in-flight or abandoned by a crash; the daemon's startup sweep
// quarantines any it finds.
const TmpSuffix = ".tmp"

// WriteFileAtomic writes data to path with the repo's atomic-write
// protocol: stage at path+TmpSuffix, write, fsync, close, rename over
// the destination. Any failure removes the staging file and leaves the
// previous contents of path intact (a torn rename is the one fault
// this cannot defend against at the FS layer — readers must checksum).
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp := path + TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("storage: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("storage: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("storage: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("storage: rename %s: %w", path, err)
	}
	return nil
}
