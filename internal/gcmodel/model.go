package gcmodel

import (
	"fmt"

	"repro/internal/cimp"
	"repro/internal/heap"
)

// Config describes a bounded model instance: the numbers of mutators,
// references and fields, the initial heap, and the ablation switches used
// by the necessity experiments (E11/E12).
type Config struct {
	// NMutators is the number of mutator processes (PIDs 1..NMutators).
	NMutators int
	// NRefs is the size of the reference universe (max 64).
	NRefs int
	// NFields is the number of reference fields per object.
	NFields int
	// MaxBuf bounds each TSO store buffer (0 = unbounded). A bound keeps
	// the reachable state space finite when mutators can issue stores in
	// a loop without an intervening fence; writes block when the buffer
	// is full. The paper's model leaves buffers unbounded, which is
	// sound for its deductive proof but not for explicit-state search.
	MaxBuf int
	// AllowNilStore lets Store write NULL (pure deletion); the paper's
	// mutators store only roots, but deletions through overwriting are
	// the deletion barrier's raison d'être, and NULL stores exercise it
	// directly.
	AllowNilStore bool

	// InitObjects maps initially allocated references to their field
	// values (padded/truncated to NFields). Initial flags are false,
	// which, with the initial f_M = false, makes the initial heap black
	// as required by the hp_Idle invariant.
	InitObjects map[heap.Ref][]heap.Ref
	// InitRoots holds each mutator's initial root set. Entries beyond
	// len(InitRoots) start with no roots.
	InitRoots []heap.RefSet

	// Ablations (experiments E11/E12).
	NoDeletionBarrier  bool // omit the deletion (snapshot) barrier
	NoInsertionBarrier bool // omit the insertion (incremental-update) barrier
	// InsertionBarrierOnlyBeforeRootsDone implements the paper's §4
	// observation: the insertion barrier can be removed across the mark
	// loop in exchange for an extra branch in the store barrier. The
	// mutator skips the insertion mark once it has completed its own
	// root-marking handshake (thread-local knowledge, so the branch
	// needs no synchronization). Experiment E12b checks this variant.
	InsertionBarrierOnlyBeforeRootsDone bool
	// SCMemory commits every store immediately instead of buffering it:
	// the sequential-consistency oracle at model level, used to compare
	// state spaces and to demonstrate which invariant subtleties are
	// TSO-specific (E13).
	SCMemory   bool
	AllocWhite bool // allocate with the unmarked sense during all phases
	// Liveness ablations (package liveness): each removes one
	// progress-critical transition without touching safety, so the
	// fair-cycle detector has a real, fair violation to find.
	// MuteHandshake drops the mutators' handshake alternative entirely:
	// handshakes are still signaled but never polled or acknowledged.
	// NoDequeue drops the system's internal dequeue transition: stores
	// enter the buffers but are never committed to memory.
	MuteHandshake bool
	NoDequeue     bool
	// UnlockedMark drops the TSO lock around the mark operation's CAS
	// (Figure 5): the flag is re-read, compared and stored without the
	// locked-instruction prefix, so two processes can both win and the
	// buffered mark store can be overtaken. The static mark-cas rule of
	// package analysis flags this variant without exploration.
	UnlockedMark bool
	// NoHSFence drops the four handshake memory fences (the collector's
	// mfence_init/mfence_done around signaling, Figure 4, and the
	// mutators' mfence_accept/mfence_finish around handshake work): a
	// handshake can then complete while control/barrier stores are
	// still buffered. The static handshake-fence rule flags it.
	NoHSFence bool
	ElideHS1  bool // skip handshake round 1 (idle noop)
	ElideHS2  bool // skip handshake round 2 (after f_M flip)
	ElideHS3  bool // skip handshake round 3 (after phase ← Init)
	ElideHS4  bool // skip handshake round 4 (after phase ← Mark)

	// State-space controls.
	//
	// OpBudget bounds the number of heap operations (Load, Store, Alloc,
	// Discard) each mutator may perform per collector cycle; the budget
	// refills when the mutator completes the start-of-cycle handshake.
	// 0 means unbounded. A bound makes exhaustive exploration
	// tractable — a bounded-context reduction in the style of
	// context-bounded analysis: all interleavings of the budgeted
	// operations are still explored.
	OpBudget       int
	NondetPickSrc  bool // non-deterministic src pick in the mark loop
	DisableLoad    bool
	DisableStore   bool
	DisableAlloc   bool
	DisableDiscard bool
	DisableMFence  bool // drop the mutators' spontaneous MFENCE alternative
}

// Validate checks the configuration bounds.
func (c *Config) Validate() error {
	if c.NMutators < 1 {
		return fmt.Errorf("gcmodel: need at least one mutator, got %d", c.NMutators)
	}
	if c.NRefs < 1 || c.NRefs > heap.MaxUniverse {
		return fmt.Errorf("gcmodel: NRefs must be in 1..%d, got %d", heap.MaxUniverse, c.NRefs)
	}
	if c.NFields < 0 {
		return fmt.Errorf("gcmodel: NFields must be non-negative, got %d", c.NFields)
	}
	for r, fs := range c.InitObjects {
		if int(r) < 0 || int(r) >= c.NRefs {
			return fmt.Errorf("gcmodel: initial object %d outside universe", r)
		}
		for _, f := range fs {
			if f != heap.NilRef && (int(f) < 0 || int(f) >= c.NRefs) {
				return fmt.Errorf("gcmodel: initial field value %d outside universe", f)
			}
		}
	}
	for m, rs := range c.InitRoots {
		bad := false
		rs.Each(func(r heap.Ref) {
			if int(r) >= c.NRefs {
				bad = true
			}
			if _, ok := c.InitObjects[r]; !ok {
				bad = true
			}
		})
		if bad {
			return fmt.Errorf("gcmodel: mutator %d initial roots %v not all allocated", m, rs)
		}
	}
	return nil
}

// SysState is the checker-facing state type: the full parallel
// composition's configuration.
type SysState = cimp.System[*Local]

// SysEvent is a system transition event.
type SysEvent = cimp.Event

// Model is a built model instance: the process programs, the command
// index for fingerprinting, and the initial system state.
type Model struct {
	Cfg   Config
	Index *cimp.Index[*Local]
	init  cimp.System[*Local]

	// Mutator-symmetry support (symmetry.go): the command-ID block base
	// of each mutator program and the uniform block size, or mutBlock 0
	// when canonicalization is unavailable.
	mutBase  []int
	mutBlock int
}

// NProcs is the total process count: collector + mutators + system.
func (m *Model) NProcs() int { return m.Cfg.NMutators + 2 }

// SysPID is the system process's PID.
func (m *Model) SysPID() cimp.PID { return cimp.PID(m.Cfg.NMutators + 1) }

// GCPID is the collector's PID.
const GCPID cimp.PID = 0

// MutPID returns the PID of mutator ordinal m (0-based).
func MutPID(m int) cimp.PID { return cimp.PID(m + 1) }

// Build assembles a model from the configuration.
func Build(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nproc := cfg.NMutators + 2

	h := heap.New(cfg.NRefs)
	for r, fs := range cfg.InitObjects {
		h.AllocAt(r, cfg.NFields, false)
		for i := 0; i < cfg.NFields && i < len(fs); i++ {
			h.Store(r, heap.Field(i), fs[i])
		}
	}

	sysLocal := &SysLocal{
		Heap:    h,
		FA:      false,
		FM:      false,
		Phase:   PhIdle,
		Bufs:    make([][]WAct, nproc),
		Lock:    -1,
		HSType:  HSNoop,
		Tag:     TagNone,
		Pending: make([]bool, cfg.NMutators),
	}

	gcLocal := &GCLocal{
		MRef: heap.NilRef, Src: heap.NilRef, TmpRef: heap.NilRef,
		SwRef: heap.NilRef, GHG: heap.NilRef,
	}

	gcProg := cfg.GCProgram()
	sysProg := cfg.SysProgram()
	progs := []cimp.Com[*Local]{gcProg}

	procs := make([]cimp.Config[*Local], 0, nproc)
	gcData := &Local{Self: GCPID, GC: gcLocal}
	procs = append(procs, cimp.Config[*Local]{
		Stack: cimp.Norm([]cimp.Com[*Local]{gcProg}, gcData), Data: gcData})

	for i := 0; i < cfg.NMutators; i++ {
		var roots heap.RefSet
		if i < len(cfg.InitRoots) {
			roots = cfg.InitRoots[i]
		}
		ml := &MutLocal{
			Roots: roots,
			MRef:  heap.NilRef, SSrc: heap.NilRef, SDst: heap.NilRef,
			TmpRef: heap.NilRef, GHG: heap.NilRef,
			HP:      HpIdle,
			OpsLeft: cfg.OpBudget,
		}
		prog := cfg.MutProgram(i)
		progs = append(progs, prog)
		data := &Local{Self: MutPID(i), Mut: ml}
		procs = append(procs, cimp.Config[*Local]{
			Stack: cimp.Norm([]cimp.Com[*Local]{prog}, data), Data: data})
	}

	progs = append(progs, sysProg)
	sysData := &Local{Self: cimp.PID(nproc - 1), Sys: sysLocal}
	procs = append(procs, cimp.Config[*Local]{
		Stack: cimp.Norm([]cimp.Com[*Local]{sysProg}, sysData), Data: sysData})

	m := &Model{
		Cfg:   cfg,
		Index: cimp.NewIndex(progs...),
		init:  cimp.System[*Local]{Procs: procs},
	}
	m.setupSymmetry(progs[1:1+cfg.NMutators], sysProg)
	return m, nil
}

// Initial returns the initial system state.
func (m *Model) Initial() cimp.System[*Local] { return m.init }

// Successors enumerates the system transitions from st.
func (m *Model) Successors(st cimp.System[*Local], yield func(cimp.System[*Local], cimp.Event)) {
	st.Successors(yield)
}

// Fingerprint canonically encodes a system state as a string. The
// checker's hot path uses AppendFingerprint/Hash64 (fingerprint.go)
// instead to avoid one string allocation per enumerated successor.
func (m *Model) Fingerprint(st cimp.System[*Local]) string {
	return string(m.AppendFingerprint(nil, st))
}

// Global is a read-only view of a system state used by the invariant
// predicates (package invariant) and by trace rendering.
type Global struct {
	Model *Model
	State cimp.System[*Local]
}

// Sys returns the system process's data state.
func (g Global) Sys() *SysLocal { return g.State.Procs[len(g.State.Procs)-1].Data.Sys }

// GC returns the collector's data state.
func (g Global) GC() *GCLocal { return g.State.Procs[0].Data.GC }

// NMut is the number of mutators.
func (g Global) NMut() int { return g.Model.Cfg.NMutators }

// Mut returns mutator m's (0-based) data state.
func (g Global) Mut(m int) *MutLocal { return g.State.Procs[m+1].Data.Mut }

// GCConfig returns the collector's full process configuration.
func (g Global) GCConfig() cimp.Config[*Local] { return g.State.Procs[0] }

// MutConfig returns mutator m's full process configuration.
func (g Global) MutConfig(m int) cimp.Config[*Local] { return g.State.Procs[m+1] }

// Buf returns the TSO store buffer of PID p.
func (g Global) Buf(p cimp.PID) []WAct { return g.Sys().Bufs[p] }

// MemFM is the shared-memory value of f_M.
func (g Global) MemFM() bool { return g.Sys().FM }

// GCViewFM is f_M as the collector sees it: its newest buffered write if
// any, else memory. The collector is the sole writer of f_M, so this is
// the authoritative ("freshest") value.
func (g Global) GCViewFM() bool {
	return sysRead(g.Sys(), GCPID, Loc{Kind: LFM}).Bool()
}

// GCViewFA is f_A from the collector's perspective (sole writer).
func (g Global) GCViewFA() bool {
	return sysRead(g.Sys(), GCPID, Loc{Kind: LFA}).Bool()
}

// GCViewPhase is phase from the collector's perspective (sole writer).
func (g Global) GCViewPhase() Phase {
	return sysRead(g.Sys(), GCPID, Loc{Kind: LPhase}).Phase()
}
