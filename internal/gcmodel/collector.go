package gcmodel

import (
	"repro/internal/cimp"
	"repro/internal/heap"
)

// This file builds the collector process of paper Figure 2 (with the mark
// loop of Figure 10): a non-terminating control loop, each iteration of
// which performs one mark-sweep cycle, communicating with the mutators
// through rounds of soft handshakes and with shared memory through the
// TSO system process.

// hsRound builds one round of soft handshakes on the collector's side
// (Figure 4): set the handshake type, store-fence, signal each mutator in
// turn, wait for all to complete (collecting the transferred work-lists
// into the collector's W), and load-fence.
//
// The mutators are signaled in a fixed order; the paper allows an
// arbitrary order, but the order of signaling is immaterial because
// mutators accept asynchronously (the handshakes remain ragged).
func (c *Config) hsRound(pfx string, tag RoundTag, ty HSType) cimp.Com[*Local] {
	steps := []cimp.Com[*Local]{
		req(pfx+"_start",
			func(*Local) Req { return Req{Kind: RHsStart, HS: ty, Tag: tag} }, nil),
	}
	if !c.NoHSFence {
		steps = append(steps, mfence(pfx+"_mfence_init"))
	}
	steps = append(steps,
		det(pfx+"_sig_first", func(l *Local) { l.GC.MutIdx = 0 }),
		&cimp.While[*Local]{L: pfx + "_sig_loop",
			C: func(l *Local) bool { return l.GC.MutIdx < c.NMutators },
			Body: seqs(
				req(pfx+"_signal",
					func(l *Local) Req { return Req{Kind: RHsSignal, Mut: l.GC.MutIdx} }, nil),
				det(pfx+"_sig_next", func(l *Local) { l.GC.MutIdx++ }),
			)},
		req(pfx+"_wait_all",
			func(*Local) Req { return Req{Kind: RHsWaitAll} },
			func(l *Local, r Resp) { l.GC.W = l.GC.W.Union(r.W) }),
	)
	if !c.NoHSFence {
		steps = append(steps, mfence(pfx+"_mfence_done"))
	}
	return seqs(steps...)
}

// GCProgram builds the collector process.
func (c *Config) GCProgram() cimp.Com[*Local] {
	markLoop := &cimp.While[*Local]{L: "gc_mark_outer",
		C: func(l *Local) bool { return !l.GC.W.Empty() },
		Body: seqs(
			&cimp.While[*Local]{L: "gc_mark_inner",
				C: func(l *Local) bool { return !l.GC.W.Empty() },
				Body: seqs(
					// src ← r. r ∈ W (line 27). Non-deterministic choice
					// of source; optionally reduced to lowest-first, which
					// is sound because marking is commutative and all
					// interleavings with other processes are still
					// explored.
					c.pickSrc(),
					det("gc_fld_first", func(l *Local) { l.GC.FldIdx = 0 }),
					&cimp.While[*Local]{L: "gc_fld_loop",
						C: func(l *Local) bool { return l.GC.FldIdx < c.NFields },
						Body: seqs(
							readTo("gc_load_fld",
								func(l *Local) Loc {
									return Loc{Kind: LField, R: l.GC.Src, F: heap.Field(l.GC.FldIdx)}
								},
								func(l *Local, v Val) { l.GC.TmpRef = v.Ref() }),
							markCom("gc_mark", false, c.UnlockedMark,
								func(l *Local) heap.Ref { return l.GC.TmpRef }),
							det("gc_fld_next", func(l *Local) { l.GC.FldIdx++ }),
						)},
					// Blacken src (line 30).
					det("gc_blacken", func(l *Local) {
						l.GC.W = l.GC.W.Remove(l.GC.Src)
						l.GC.Src = heap.NilRef
						l.GC.TmpRef = heap.NilRef
						l.GC.FldIdx = 0
					}),
				)},
			// Poll the mutators for their work-lists (lines 31–34).
			c.hsRound("gc_hs_work", TagWork, HSGetWork),
		)}

	sweep := seqs(
		writeVal("gc_write_phase_sweep",
			func(*Local) Loc { return Loc{Kind: LPhase} },
			func(*Local) Val { return PhaseVal(PhSweep) },
			func(l *Local) { l.GC.Phase = PhSweep }),
		// refs ← heap (line 38).
		req("gc_refs_snapshot",
			func(*Local) Req { return Req{Kind: RRefsSnapshot} },
			func(l *Local, r Resp) { l.GC.Sweep = r.W }),
		&cimp.While[*Local]{L: "gc_sweep_loop",
			C: func(l *Local) bool { return !l.GC.Sweep.Empty() },
			Body: seqs(
				det("gc_sweep_pick", func(l *Local) { l.GC.SwRef = l.GC.Sweep.Any() }),
				readTo("gc_load_sweep_flag",
					func(l *Local) Loc { return Loc{Kind: LMark, R: l.GC.SwRef} },
					func(l *Local, v Val) { l.GC.SwFlag = v.Bool() }),
				// if flag(ref) ≠ f_M: the object is white; free it
				// (lines 41–44).
				cimp.If1("gc_sweep_white",
					func(l *Local) bool { return l.GC.SwFlag != l.GC.FM },
					req("gc_free",
						func(l *Local) Req { return Req{Kind: RFree, Loc: Loc{Kind: LMark, R: l.GC.SwRef}} },
						nil)),
				det("gc_sweep_next", func(l *Local) {
					l.GC.Sweep = l.GC.Sweep.Remove(l.GC.SwRef)
					l.GC.SwRef = heap.NilRef
					l.GC.SwFlag = false
				}),
			)},
	)

	steps := []cimp.Com[*Local]{}
	// Round 1 (lines 3–4): ensure all mutators know the collector is
	// idle.
	if !c.ElideHS1 {
		steps = append(steps, c.hsRound("gc_hs_idle", TagIdle, HSNoop))
	} else {
		steps = append(steps, det("gc_hs_idle_elided", func(l *Local) {}))
	}
	steps = append(steps,
		// Flip the sense of the marks (line 5); heap becomes white.
		det("gc_flip_fM", func(l *Local) { l.GC.FM = !l.GC.FM }),
		writeVal("gc_write_fM",
			func(*Local) Loc { return Loc{Kind: LFM} },
			func(l *Local) Val { return BoolVal(l.GC.FM) }, nil),
	)
	// Round 2 (lines 6–7).
	if !c.ElideHS2 {
		steps = append(steps, c.hsRound("gc_hs_flip", TagIdleInit, HSNoop))
	}
	steps = append(steps,
		// phase ← Init (line 8); write barriers become enabled.
		writeVal("gc_write_phase_init",
			func(*Local) Loc { return Loc{Kind: LPhase} },
			func(*Local) Val { return PhaseVal(PhInit) },
			func(l *Local) { l.GC.Phase = PhInit }),
	)
	// Round 3 (lines 9–10).
	if !c.ElideHS3 {
		steps = append(steps, c.hsRound("gc_hs_init", TagInitMark, HSNoop))
	}
	steps = append(steps,
		// phase ← Mark; f_A ← f_M (lines 11–12); allocate black from
		// here (after the handshake).
		writeVal("gc_write_phase_mark",
			func(*Local) Loc { return Loc{Kind: LPhase} },
			func(*Local) Val { return PhaseVal(PhMark) },
			func(l *Local) { l.GC.Phase = PhMark }),
		writeVal("gc_write_fA",
			func(*Local) Loc { return Loc{Kind: LFA} },
			func(l *Local) Val { return BoolVal(l.GC.FM) },
			func(l *Local) { l.GC.FA = l.GC.FM }),
	)
	// Round 4 (lines 13–14).
	if !c.ElideHS4 {
		steps = append(steps, c.hsRound("gc_hs_mark", TagMark, HSNoop))
	}
	steps = append(steps,
		// Round 5 (lines 15–20): mutators mark their roots and transfer
		// them; the wait-all collects them into W.
		c.hsRound("gc_hs_roots", TagRoots, HSGetRoots),
		// Lines 24–34 / Figure 10.
		markLoop,
		// Lines 35–45.
		sweep,
		// phase ← Idle (line 46).
		writeVal("gc_write_phase_idle",
			func(*Local) Loc { return Loc{Kind: LPhase} },
			func(*Local) Val { return PhaseVal(PhIdle) },
			func(l *Local) { l.GC.Phase = PhIdle }),
	)

	return &cimp.Loop[*Local]{Body: seqs(steps...)}
}

func (c *Config) pickSrc() cimp.Com[*Local] {
	if c.NondetPickSrc {
		return pick("gc_pick_src",
			func(l *Local) heap.RefSet { return l.GC.W },
			func(l *Local, r heap.Ref) { l.GC.Src = r })
	}
	return det("gc_pick_src", func(l *Local) { l.GC.Src = l.GC.W.Any() })
}
