package gcmodel

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cimp"
	"repro/internal/heap"
)

// serializeConfigs are the shapes the codec must round-trip: the basic
// single-mutator model, a two-mutator model (wider Pending/Bufs arrays),
// and an allocating model (heaps with free references).
func serializeConfigs() map[string]Config {
	two := Config{
		NMutators: 2,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0), heap.SetOf(1)},
		AllowNilStore: true,
		DisableAlloc:  true,
		DisableLoad:   true,
	}
	alloc := testConfig()
	alloc.NRefs = 3
	alloc.DisableAlloc = false
	return map[string]Config{
		"tiny":        testConfig(),
		"two-mutator": two,
		"alloc":       alloc,
	}
}

// TestStateCodecRoundTrip: along a random walk, every state must decode
// from its own canonical encoding back to a state with the identical
// encoding, and the decode must consume exactly the encoded bytes.
func TestStateCodecRoundTrip(t *testing.T) {
	for name, cfg := range serializeConfigs() {
		t.Run(name, func(t *testing.T) {
			m := build(t, cfg)
			check := func(st cimp.System[*Local]) {
				enc := m.EncodeState(nil, st)
				// Trailing sentinel proves DecodeState stops at the
				// state boundary.
				dec, rest, err := m.DecodeState(append(append([]byte(nil), enc...), 0xAA))
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if len(rest) != 1 || rest[0] != 0xAA {
					t.Fatalf("decode consumed wrong length: %d trailing bytes", len(rest))
				}
				re := m.EncodeState(nil, dec)
				if !bytes.Equal(enc, re) {
					t.Fatalf("re-encoding differs:\n  in:  %x\n  out: %x", enc, re)
				}
			}
			check(m.Initial())
			rng := rand.New(rand.NewSource(7))
			st := m.Initial()
			for i := 0; i < 400; i++ {
				type cand struct{ next cimp.System[*Local] }
				var cands []cand
				m.Successors(st, func(n cimp.System[*Local], ev cimp.Event) {
					cands = append(cands, cand{n})
				})
				if len(cands) == 0 {
					t.Fatalf("deadlock at step %d", i)
				}
				st = cands[rng.Intn(len(cands))].next
				check(st)
			}
		})
	}
}

// TestStateCodecDecodedStatesStep: a decoded state must be usable, not
// just printable — its successor set must match the original state's
// successor set fingerprint for fingerprint.
func TestStateCodecDecodedStatesStep(t *testing.T) {
	m := build(t, testConfig())
	st := m.Initial()
	// Walk a few steps in, then compare successor enumerations.
	for i := 0; i < 5; i++ {
		var first cimp.System[*Local]
		taken := false
		m.Successors(st, func(n cimp.System[*Local], ev cimp.Event) {
			if !taken {
				first, taken = n, true
			}
		})
		if !taken {
			t.Fatal("deadlock")
		}
		st = first
	}
	enc := m.EncodeState(nil, st)
	dec, _, err := m.DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}
	var want, got []string
	m.Successors(st, func(n cimp.System[*Local], ev cimp.Event) {
		want = append(want, m.Fingerprint(n))
	})
	m.Successors(dec, func(n cimp.System[*Local], ev cimp.Event) {
		got = append(got, m.Fingerprint(n))
	})
	if len(want) != len(got) {
		t.Fatalf("successor counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("successor %d differs", i)
		}
	}
}

// TestStateCodecRejectsCorruption: truncations and bit flips of a valid
// encoding must produce errors (or decode to a state whose re-encoding
// differs, which the resume path catches by hash), never panic.
func TestStateCodecRejectsCorruption(t *testing.T) {
	m := build(t, testConfig())
	enc := m.EncodeState(nil, m.Initial())
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := m.DecodeState(enc[:cut]); err == nil {
			// A prefix that still decodes must not round-trip to the
			// full encoding.
			dec, rest, _ := m.DecodeState(enc[:cut])
			if len(rest) == 0 && bytes.Equal(m.EncodeState(nil, dec), enc) {
				t.Fatalf("truncation at %d decoded to the original state", cut)
			}
		}
	}
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x41
		dec, rest, err := m.DecodeState(mut)
		if err != nil {
			continue // detected structurally
		}
		// Not structurally detected: the re-encoding must differ from
		// the original, so a hash check catches it.
		if len(rest) == 0 && bytes.Equal(m.EncodeState(nil, dec), enc) {
			t.Fatalf("bit flip at %d decoded back to the original state", i)
		}
	}
}
