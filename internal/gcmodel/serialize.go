package gcmodel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cimp"
	"repro/internal/heap"
)

// This file makes the canonical fingerprint encoding a full state codec.
// AppendFingerprint (fingerprint.go, state.go) already writes every field
// of every process — frame stacks as command-index identities, local data
// field by field — so the encoding is invertible given the model: the
// command index resolves stack identities back to program nodes and the
// configuration fixes the universe, field count, and process count. The
// checkpoint layer (package checkpoint, wired by package explore) uses
// this to serialize BFS frontier states and rebuild them on resume.
//
// The decoder never panics on malformed input: checkpoints are untrusted
// bytes, and corruption must surface as a section-named load error, not
// a crash. Resumed states are additionally re-encoded and hash-checked
// by the caller, so a decode that succeeds on tampered input but yields
// the wrong state cannot survive.

// EncodeState appends the serialized form of st to dst. The encoding is
// exactly the canonical fingerprint (AppendFingerprint); the alias
// exists to make call sites that persist states self-documenting.
func (m *Model) EncodeState(dst []byte, st cimp.System[*Local]) []byte {
	return m.AppendFingerprint(dst, st)
}

// DecodeState decodes one system state encoded by EncodeState (equally:
// by AppendFingerprint), returning the state and the remaining bytes.
func (m *Model) DecodeState(data []byte) (cimp.System[*Local], []byte, error) {
	nproc := m.NProcs()
	st := cimp.System[*Local]{Procs: make([]cimp.Config[*Local], nproc)}
	var err error
	for p := 0; p < nproc; p++ {
		var stack []cimp.Com[*Local]
		stack, data, err = m.Index.DecodeStack(data)
		if err != nil {
			return cimp.System[*Local]{}, nil, fmt.Errorf("gcmodel: proc %d: %w", p, err)
		}
		var l *Local
		l, data, err = m.decodeLocal(data, cimp.PID(p))
		if err != nil {
			return cimp.System[*Local]{}, nil, fmt.Errorf("gcmodel: proc %d: %w", p, err)
		}
		st.Procs[p] = cimp.Config[*Local]{Stack: stack, Data: l}
	}
	return st, data, nil
}

// decodeLocal decodes one process's data state. The role tag must match
// the process position: the collector is PID 0, the system is the last
// PID, mutators are in between (model.go).
func (m *Model) decodeLocal(data []byte, self cimp.PID) (*Local, []byte, error) {
	d := decoder{buf: data}
	if len(d.buf) == 0 {
		return nil, nil, fmt.Errorf("truncated at role tag")
	}
	tag := d.buf[0]
	d.buf = d.buf[1:]

	want := byte('M')
	switch {
	case self == GCPID:
		want = 'G'
	case self == m.SysPID():
		want = 'S'
	}
	if tag != want {
		return nil, nil, fmt.Errorf("role tag %q where %q expected", tag, want)
	}

	l := &Local{Self: self}
	switch tag {
	case 'M':
		mu := &MutLocal{}
		mu.Roots = heap.RefSet(d.uvarint())
		mu.WM = heap.RefSet(d.uvarint())
		mu.MRef = heap.Ref(d.varint())
		bs := d.bools(6)
		if d.err == nil {
			mu.MFM, mu.MFlag, mu.Winner, mu.InMark, mu.InMarkDel, mu.RootsDone =
				bs[0], bs[1], bs[2], bs[3], bs[4], bs[5]
		}
		mu.MPhase = Phase(d.varint())
		mu.SSrc = heap.Ref(d.varint())
		mu.SFld = heap.Field(d.varint())
		mu.SDst = heap.Ref(d.varint())
		mu.TmpRef = heap.Ref(d.varint())
		mu.PendRoots = heap.RefSet(d.uvarint())
		mu.OpsLeft = int(d.varint())
		hb := d.bools(1)
		if d.err == nil {
			mu.HSP = hb[0]
		}
		mu.HSTy = HSType(d.varint())
		mu.HSTag = RoundTag(d.varint())
		mu.GHG = heap.Ref(d.varint())
		mu.HP = HandshakePhase(d.varint())
		l.Mut = mu
	case 'G':
		g := &GCLocal{}
		g.W = heap.RefSet(d.uvarint())
		bs := d.bools(7)
		if d.err == nil {
			g.FM, g.FA, g.MFM, g.MFlag, g.Winner, g.SwFlag, g.InMark =
				bs[0], bs[1], bs[2], bs[3], bs[4], bs[5], bs[6]
		}
		g.Phase = Phase(d.varint())
		g.MRef = heap.Ref(d.varint())
		g.MPhase = Phase(d.varint())
		g.Src = heap.Ref(d.varint())
		g.FldIdx = int(d.varint())
		g.TmpRef = heap.Ref(d.varint())
		g.Sweep = heap.RefSet(d.uvarint())
		g.SwRef = heap.Ref(d.varint())
		g.MutIdx = int(d.varint())
		g.GHG = heap.Ref(d.varint())
		l.GC = g
	case 'S':
		s := &SysLocal{}
		var err error
		s.Heap, d.buf, err = heap.DecodeFingerprint(d.buf, m.Cfg.NRefs, m.Cfg.NFields)
		if err != nil {
			return nil, nil, err
		}
		bs := d.bools(2)
		if d.err == nil {
			s.FA, s.FM = bs[0], bs[1]
		}
		s.Phase = Phase(d.varint())
		s.Lock = cimp.PID(d.varint())
		nproc := m.NProcs()
		s.Bufs = make([][]WAct, nproc)
		for p := 0; p < nproc && d.err == nil; p++ {
			n := d.uvarint()
			if n > 1<<16 {
				d.fail(fmt.Errorf("store buffer %d claims %d entries", p, n))
				break
			}
			for i := uint64(0); i < n; i++ {
				w := WAct{
					Loc: Loc{
						Kind: LocKind(d.varint()),
						R:    heap.Ref(d.varint()),
						F:    heap.Field(d.varint()),
					},
					Val: Val(d.varint()),
				}
				s.Bufs[p] = append(s.Bufs[p], w)
			}
		}
		s.HSType = HSType(d.varint())
		s.Tag = RoundTag(d.varint())
		pb := d.bools(m.Cfg.NMutators)
		if d.err == nil {
			s.Pending = append([]bool(nil), pb...)
		}
		s.W = heap.RefSet(d.uvarint())
		l.Sys = s
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return l, d.buf, nil
}

// decoder reads varint-packed fields, latching the first error so call
// sites can decode a whole record before checking.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.buf)
	if k <= 0 {
		d.fail(fmt.Errorf("truncated uvarint"))
		return 0
	}
	d.buf = d.buf[k:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Varint(d.buf)
	if k <= 0 {
		d.fail(fmt.Errorf("truncated varint"))
		return 0
	}
	d.buf = d.buf[k:]
	return v
}

// bools unpacks n booleans packed by appendBools (8 per byte).
func (d *decoder) bools(n int) []bool {
	if d.err != nil {
		return make([]bool, n)
	}
	nb := (n + 7) / 8
	if len(d.buf) < nb {
		d.fail(fmt.Errorf("truncated bool block (%d of %d bytes)", len(d.buf), nb))
		return make([]bool, n)
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = d.buf[i/8]&(1<<uint(i%8)) != 0
	}
	d.buf = d.buf[nb:]
	return out
}
