package gcmodel

import (
	"repro/internal/cimp"
)

// This file is the model's side of the TSO-aware partial-order reduction
// (ample-set style, package explore wires it behind Options.Reduce). The
// oracle AmpleChoice inspects a state and, when some process's only
// enabled action is a "safe" interaction with the memory system — one
// that is invisible to every other process and commutes with all of
// their enabled transitions — nominates that single transition as the
// ample set. The checker then pursues only it, skipping the
// interleavings of unrelated steps against it.
//
// A request is safe when it satisfies all of the classic ample-set
// conditions with respect to the x86-TSO semantics of sys.go:
//
//   - it is the process's unique enabled action (singleton Heads, and
//     Request.Ret in this model always yields exactly one state);
//   - it is currently enabled and cannot be disabled by other
//     processes' transitions;
//   - it neither observes nor modifies state that any other process's
//     enabled transition observes or modifies, so it commutes with all
//     of them.
//
// The safe kinds, and why they qualify under TSO:
//
//   - RWrite to a heap location (LField or LMark): the store is only
//     appended to the requester's own FIFO buffer. No other process
//     reads another's buffer; the only other operation on this buffer
//     is the system's dequeue of its *oldest* entry, which commutes
//     with appending at the tail. Control-variable writes (f_A, f_M,
//     phase) are excluded: the tso_control invariant and the GC-view
//     color abstraction read buffered control writes, so their enqueue
//     order against other processes' steps is observable. Under the
//     SCMemory oracle writes commit immediately and nothing is safe.
//   - RRead whose value cannot depend on the interleaving: any read
//     while the requester holds the TSO lock (memory commits, SC
//     writes, allocation, free and snapshots by every other process
//     are disabled by the notBlocked guard, and the requester's own
//     commits are shadowed by store forwarding); and the collector's
//     reads of f_A, f_M and phase, of which it is the sole writer (a
//     control variable's value is the collector's newest write,
//     buffered or committed — invariant under drains and untouched by
//     mutators). Reads change no shared state at all, so they commute
//     with every enabled transition of every other process. Note that
//     store forwarding alone does NOT make a read safe: in a skipped
//     interleaving the requester's matching buffer entries can drain
//     and another process can then overwrite the location, changing
//     the value the read returns.
//   - RMFence with an empty buffer: a pure control advance. Only the
//     requester could refill its own buffer, and it is standing at the
//     fence.
//   - RUnlock (owner, empty buffer): resets the lock to free. Every
//     transition of another process that is enabled while the lock is
//     held neither reads nor writes the lock word (blocked memory
//     operations are disabled, not conditional), so the release
//     commutes with all of them; it can only enable transitions, never
//     disable them.
//
// Safe chains always terminate: every safe step deterministically
// advances its process's control stack toward a non-safe head (each
// loop body in the collector's and mutators' programs contains
// rendezvous that are never safe — handshake signals and polls, lock
// acquisition, unforwarded heap loads), so the reduction has no
// "ignoring" problem: within finitely many ample steps the checker is
// back to full expansion. Reduced exploration therefore visits a
// subset of the full reachable state space (no spurious violations);
// verdict equality against full exploration is validated continuously
// by the differential harness in package diffcheck.

// Ample is the partial-order-reduction oracle's verdict on one state:
// when OK, the transition relation restricted to process Proc firing
// the request labeled Label is a sound ample set, and the checker may
// ignore every other transition of the state.
type Ample struct {
	Proc  cimp.PID
	Label string
	OK    bool
}

// Matches reports whether a transition event is the ample transition.
func (a Ample) Matches(ev cimp.Event) bool {
	return a.OK && !ev.Tau() && ev.Proc == a.Proc && ev.Label == a.Label
}

// AmpleChoice nominates an ample transition for st, or OK=false when no
// process has a safe singleton action and the state needs full
// expansion. It is a pure function of the state — deterministic across
// workers and re-runs — and reads st without modifying it.
func (m *Model) AmpleChoice(st cimp.System[*Local]) Ample {
	sys := st.Procs[len(st.Procs)-1].Data.Sys
	// Scan the collector and the mutators in PID order; the system
	// process itself always has multiple heads (its reactive Choose).
	for p := 0; p < len(st.Procs)-1; p++ {
		cfg := st.Procs[p]
		heads := cimp.Heads(cfg.Stack, cfg.Data)
		if len(heads) != 1 {
			continue // non-deterministic choice pending: not reducible
		}
		r, ok := heads[0].Act.(*cimp.Request[*Local])
		if !ok {
			continue // multi-successor LocalOp or terminated process
		}
		req, ok := r.Act(cfg.Data).(Req)
		if !ok {
			continue
		}
		if m.safeRequest(sys, req) {
			return Ample{Proc: cimp.PID(p), Label: r.Label(), OK: true}
		}
	}
	return Ample{}
}

// SafeRequest exposes the handwritten safe classification for
// cross-checking: package analysis re-derives the same classification
// from the declared-effects table and diffs the two at every reachable
// state (the por-safe-class rule), so a drift between this function and
// the documented commutation argument is caught dynamically.
func (m *Model) SafeRequest(s *SysLocal, r Req) bool { return m.safeRequest(s, r) }

// safeRequest classifies a request as safe (invisible, enabled, and
// undisablable) in the system state s. See the file comment for the
// soundness argument per kind.
func (m *Model) safeRequest(s *SysLocal, r Req) bool {
	p := r.P
	switch r.Kind {
	case RWrite:
		if m.Cfg.SCMemory {
			return false // SC commits immediately: visible
		}
		if r.Loc.Kind != LField && r.Loc.Kind != LMark {
			return false // buffered control writes are observable
		}
		// Enabled iff the bounded buffer has room; other processes can
		// only drain it, never fill it.
		return m.Cfg.MaxBuf == 0 || len(s.Bufs[p]) < m.Cfg.MaxBuf
	case RRead:
		if !notBlocked(s, p) {
			return false // disabled: another process holds the lock
		}
		if s.Lock == p {
			return true // lock-shielded: memory is frozen for others
		}
		if p == GCPID && (r.Loc.Kind == LFA || r.Loc.Kind == LFM || r.Loc.Kind == LPhase) {
			return true // single-writer control variable
		}
		return false
	case RMFence:
		return len(s.Bufs[p]) == 0
	case RUnlock:
		return s.Lock == p && len(s.Bufs[p]) == 0
	}
	return false
}
