package gcmodel

import (
	"sync"

	"repro/internal/cimp"
)

// This file is the model checker's hot-path interface to the model: an
// allocation-free fingerprint encoder, the fingerprint-to-hash fast path
// that backs the checker's compact visited sets, and the concurrency
// contract of the transition relation.

// AppendFingerprint appends the canonical encoding of st to dst and
// returns the extended buffer. It is the allocation-free form of
// Fingerprint: callers that fingerprint many states should reuse one
// scratch buffer (dst[:0]) instead of materializing a string per state.
func (m *Model) AppendFingerprint(dst []byte, st cimp.System[*Local]) []byte {
	for _, p := range st.Procs {
		dst = m.Index.AppendStack(dst, p.Stack)
		dst = p.Data.AppendFingerprint(dst)
	}
	return dst
}

// fpBufPool recycles fingerprint scratch buffers across FingerprintHash
// callers; the checker's workers additionally hold one buffer each for
// the duration of a BFS layer.
var fpBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// FingerprintHash is the fingerprint-to-hash fast path: it encodes st
// into a pooled scratch buffer and returns the 64-bit FNV-1a hash of the
// canonical encoding, allocating nothing in steady state. Two states
// with equal fingerprints always hash equal; the converse holds up to
// 64-bit collisions (see package explore's audit mode for the soundness
// argument). Safe for concurrent use.
func (m *Model) FingerprintHash(st cimp.System[*Local]) uint64 {
	bp := fpBufPool.Get().(*[]byte)
	b := m.AppendFingerprint((*bp)[:0], st)
	h := Hash64(b)
	*bp = b
	fpBufPool.Put(bp)
	return h
}

// Hash64 is the 64-bit FNV-1a hash of b, the hash used for compact state
// fingerprints.
func Hash64(b []byte) uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// SuccessorsConcurrent is Successors for concurrent callers. The
// transition relation is persistent: every LocalOp/Request/Response
// handler clones the process-local state before mutating it (see
// program.go and Local.Clone), and System.Successors copies the process
// table, so enumeration only reads st and the states it shares structure
// with. Distinct goroutines may therefore enumerate successors of
// distinct — even structurally shared — states simultaneously. This
// entry point exists to make that contract explicit and race-tested; it
// must not acquire locks or touch model-level scratch state.
func (m *Model) SuccessorsConcurrent(st cimp.System[*Local], yield func(cimp.System[*Local], cimp.Event)) {
	st.Successors(yield)
}
