package gcmodel

import (
	"bytes"
	"testing"

	"repro/internal/cimp"
	"repro/internal/heap"
)

func symTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := Build(Config{
		NMutators: 2,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0), heap.SetOf(0)},
		AllowNilStore: true,
		DisableAlloc:  true,
		DisableLoad:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.SymmetryActive() {
		t.Fatal("two structurally identical mutators should activate symmetry")
	}
	return m
}

// mutatedInit builds a copy of the initial state in which mutator
// ordinal mut has extended roots (the distinguishing mark) and the
// collector's handshake signal cursor is gcMutIdx.
func mutatedInit(m *Model, mut, gcMutIdx int) cimp.System[*Local] {
	st := m.Initial().CloneShallow()
	g := st.Procs[0].Data.Clone()
	g.GC.MutIdx = gcMutIdx
	st.Procs[0].Data = g
	l := st.Procs[MutPID(mut)].Data.Clone()
	l.Mut.Roots = heap.SetOf(0, 1)
	st.Procs[MutPID(mut)].Data = l
	return st
}

// TestCanonicalFingerprintFoldsMutatorSwap: two states that differ only
// by swapping the mutators' local data must canonicalize identically
// when both mutators are in the same standing class (signal cursor past
// both), while the plain fingerprint tells them apart.
func TestCanonicalFingerprintFoldsMutatorSwap(t *testing.T) {
	m := symTestModel(t)
	a := mutatedInit(m, 0, 2)
	b := mutatedInit(m, 1, 2)

	if ca, cb := m.AppendCanonicalFingerprint(nil, a), m.AppendCanonicalFingerprint(nil, b); !bytes.Equal(ca, cb) {
		t.Error("canonical fingerprints differ across a pure mutator swap")
	}
	if fa, fb := m.AppendFingerprint(nil, a), m.AppendFingerprint(nil, b); bytes.Equal(fa, fb) {
		t.Error("plain fingerprints should distinguish the swapped states (else the test is vacuous)")
	}
}

// TestCanonicalFingerprintRespectsStandingClasses: when the collector's
// signal cursor sits at mutator 0, the two mutators are in different
// standing classes (next-to-signal vs not-yet-reached), so the swap
// must NOT fold — identifying them would conflate states with
// genuinely different handshake futures.
func TestCanonicalFingerprintRespectsStandingClasses(t *testing.T) {
	m := symTestModel(t)
	a := mutatedInit(m, 0, 0)
	b := mutatedInit(m, 1, 0)
	if ca, cb := m.AppendCanonicalFingerprint(nil, a), m.AppendCanonicalFingerprint(nil, b); bytes.Equal(ca, cb) {
		t.Error("canonical fingerprints folded mutators in different standing classes")
	}
}

// TestCanonicalFingerprintKeepsDistinctStatesApart: canonicalization
// must stay injective up to permutation — states that are not related
// by any mutator permutation keep distinct fingerprints.
func TestCanonicalFingerprintKeepsDistinctStatesApart(t *testing.T) {
	m := symTestModel(t)
	a := mutatedInit(m, 0, 2)
	init := m.Initial().CloneShallow()
	g := init.Procs[0].Data.Clone()
	g.GC.MutIdx = 2
	init.Procs[0].Data = g
	if ca, ci := m.AppendCanonicalFingerprint(nil, a), m.AppendCanonicalFingerprint(nil, init); bytes.Equal(ca, ci) {
		t.Error("canonical fingerprint conflated permutation-inequivalent states")
	}
}

// TestSymmetryInactiveSingleMutator: with one mutator there is nothing
// to permute; the canonical fingerprint must degrade to the plain one.
func TestSymmetryInactiveSingleMutator(t *testing.T) {
	cfg := Config{
		NMutators: 1,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0)},
		AllowNilStore: true,
		DisableAlloc:  true,
	}
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.SymmetryActive() {
		t.Fatal("single-mutator model should not activate symmetry")
	}
	st := m.Initial()
	if !bytes.Equal(m.AppendCanonicalFingerprint(nil, st), m.AppendFingerprint(nil, st)) {
		t.Error("inactive symmetry should yield the plain fingerprint")
	}
}
