// Package gcmodel implements the paper's formal model of the on-the-fly
// mark-sweep garbage collector: the collector process (Figures 2 and 10),
// the mark operation (Figure 5), mutator processes (Figure 6), the soft
// handshake machinery (Figures 3 and 4), and the x86-TSO system process
// (Figure 9), all expressed as CIMP programs (package cimp) composed in
// parallel:
//
//	GC ∥ M1 ∥ … ∥ Mn ∥ Sys
//
// Process identifiers: PID 0 is the collector, PIDs 1..n are the mutators,
// and PID n+1 is the system. The system encapsulates the TSO store
// buffers, the shared memory (heap, mark flags, and the control variables
// fA, fM, phase — all subject to TSO), the TSO lock, allocation, and the
// handshake mailboxes. Work-lists and handshake state are not subject to
// TSO, following the paper (§3.1).
package gcmodel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cimp"
	"repro/internal/heap"
)

// Phase is the collector's control state, stored in shared memory and
// therefore subject to TSO.
type Phase int

const (
	PhIdle Phase = iota
	PhInit
	PhMark
	PhSweep
)

func (p Phase) String() string {
	switch p {
	case PhIdle:
		return "Idle"
	case PhInit:
		return "Init"
	case PhMark:
		return "Mark"
	case PhSweep:
		return "Sweep"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// HSType is the handshake type: what work the mutators perform on the
// collector's behalf when they accept the handshake (§2.2, §3.1).
type HSType int

const (
	// HSNoop asks for a bare acknowledgement.
	HSNoop HSType = iota
	// HSGetRoots asks each mutator to mark its roots into its private
	// work-list and transfer the list to the system.
	HSGetRoots
	// HSGetWork asks each mutator to transfer its private work-list
	// (greys accumulated by write barriers) to the system.
	HSGetWork
)

func (t HSType) String() string {
	switch t {
	case HSNoop:
		return "noop"
	case HSGetRoots:
		return "get-roots"
	case HSGetWork:
		return "get-work"
	}
	return fmt.Sprintf("HSType(%d)", int(t))
}

// HandshakePhase is the ghost per-mutator handshake phase of Figure 3
// (bottom row), advanced each time the mutator completes a handshake.
// The paper's sys_phase_inv and mutator_phase_inv are stated over it.
type HandshakePhase int

const (
	// HpIdle: the mutator has completed the start-of-cycle noop
	// handshake (or the system is in its initial state).
	HpIdle HandshakePhase = iota
	// HpIdleInit: completed the handshake following the f_M flip.
	HpIdleInit
	// HpInitMark: completed the handshake following phase ← Init.
	HpInitMark
	// HpIdleMarkSweep: completed the handshake following phase ← Mark
	// and f_A ← f_M; covers root marking, the mark loop, and sweep.
	HpIdleMarkSweep
)

func (p HandshakePhase) String() string {
	switch p {
	case HpIdle:
		return "hp_Idle"
	case HpIdleInit:
		return "hp_IdleInit"
	case HpInitMark:
		return "hp_InitMark"
	case HpIdleMarkSweep:
		return "hp_IdleMarkSweep"
	}
	return fmt.Sprintf("HandshakePhase(%d)", int(p))
}

// RoundTag is the ghost identity of a handshake round within a collector
// cycle, used to advance the mutators' HandshakePhase and by the
// invariants to know which round is in flight.
type RoundTag int

const (
	TagNone     RoundTag = iota // no handshake initiated yet
	TagIdle                     // round 1: noop at start of cycle
	TagIdleInit                 // round 2: noop after f_M flip
	TagInitMark                 // round 3: noop after phase ← Init
	TagMark                     // round 4: noop after phase ← Mark, f_A ← f_M
	TagRoots                    // round 5: get-roots
	TagWork                     // rounds 6+: get-work (mark loop termination)
)

func (t RoundTag) String() string {
	switch t {
	case TagNone:
		return "none"
	case TagIdle:
		return "idle"
	case TagIdleInit:
		return "idle-init"
	case TagInitMark:
		return "init-mark"
	case TagMark:
		return "mark"
	case TagRoots:
		return "roots"
	case TagWork:
		return "work"
	}
	return fmt.Sprintf("RoundTag(%d)", int(t))
}

// LocKind classifies shared memory locations subject to TSO.
type LocKind int

const (
	LFA LocKind = iota
	LFM
	LPhase
	LMark  // the mark flag of object R
	LField // field F of object R
)

// Loc is a shared memory location.
type Loc struct {
	Kind LocKind
	R    heap.Ref
	F    heap.Field
}

func (l Loc) String() string {
	switch l.Kind {
	case LFA:
		return "fA"
	case LFM:
		return "fM"
	case LPhase:
		return "phase"
	case LMark:
		return fmt.Sprintf("flag(%d)", l.R)
	case LField:
		return fmt.Sprintf("%d.%d", l.R, l.F)
	}
	return "?loc"
}

// Val is a shared-memory value: a bool, Phase, or Ref encoded as an
// integer according to the location's kind.
type Val int64

// BoolVal encodes a boolean value.
func BoolVal(b bool) Val {
	if b {
		return 1
	}
	return 0
}

// PhaseVal encodes a Phase value.
func PhaseVal(p Phase) Val { return Val(p) }

// RefVal encodes a reference (NilRef is -1).
func RefVal(r heap.Ref) Val { return Val(r) }

// Bool decodes a boolean value.
func (v Val) Bool() bool { return v != 0 }

// Phase decodes a Phase value.
func (v Val) Phase() Phase { return Phase(v) }

// Ref decodes a reference value.
func (v Val) Ref() heap.Ref { return heap.Ref(v) }

// WAct is a pending write action in a TSO store buffer (Figure 9's
// write actions).
type WAct struct {
	Loc Loc
	Val Val
}

func (w WAct) String() string { return fmt.Sprintf("%v←%d", w.Loc, int64(w.Val)) }

// MutLocal is a mutator's private data state: its roots and work-list,
// the registers of the in-flight operation, and ghost state.
type MutLocal struct {
	Roots heap.RefSet // local variables holding references (stack+registers)
	WM    heap.RefSet // private grey work-list W_m

	// Registers of the mark operation (Figure 5).
	MRef   heap.Ref // ref — the reference being marked
	MFM    bool     // loaded f_M
	MFlag  bool     // loaded flag(ref)
	MPhase Phase    // loaded phase
	Winner bool     // whether this thread won the CAS

	// Registers of the Store operation (Figure 6).
	SSrc   heap.Ref   // src object
	SFld   heap.Field // field being written
	SDst   heap.Ref   // new value
	TmpRef heap.Ref   // old value of src.fld, loaded for the deletion barrier

	// Register for iterating roots during the get-roots handshake.
	PendRoots heap.RefSet

	// Registers of the handshake poll (Figure 4).
	HSP   bool     // loaded pending bit
	HSTy  HSType   // loaded handshake type
	HSTag RoundTag // loaded ghost round tag

	// OpsLeft is the remaining per-cycle heap-operation budget
	// (Config.OpBudget); 0 disables further operations until the budget
	// refills at the start-of-cycle handshake. Unused (stays 0) when the
	// budget is unbounded.
	OpsLeft int

	// Ghost state.
	GHG       heap.Ref       // ghost_honorary_grey (Figure 5 lines 9/14), NilRef if none
	InMark    bool           // inside the mark operation
	InMarkDel bool           // the in-flight mark is a deletion barrier (its MRef is a root, §3.2)
	HP        HandshakePhase // handshake phase (Figure 3)
	RootsDone bool           // completed the get-roots handshake this cycle
}

// GCLocal is the collector's private data state.
type GCLocal struct {
	W heap.RefSet // the collector's work-list

	// Local copies of the control state the collector last wrote; these
	// shadow its own buffered writes and are used only by ghost logic.
	FM, FA bool
	Phase  Phase

	// Registers of the mark operation (shared shape with MutLocal).
	MRef   heap.Ref
	MFM    bool
	MFlag  bool
	MPhase Phase
	Winner bool

	// Mark-loop registers (Figures 2 and 10).
	Src    heap.Ref    // current grey source object
	FldIdx int         // field iteration index
	TmpRef heap.Ref    // field value loaded from Src
	Sweep  heap.RefSet // references remaining to sweep
	SwRef  heap.Ref    // current sweep candidate
	SwFlag bool        // its loaded flag

	// Handshake registers.
	MutIdx int // next mutator to signal in the current round

	// Ghost state.
	GHG    heap.Ref
	InMark bool
}

// SysLocal is the system process's data state: shared memory, TSO buffers
// and lock, the handshake mailboxes, and the global work-list.
type SysLocal struct {
	Heap  heap.Heap
	FA    bool
	FM    bool
	Phase Phase

	// Bufs are the TSO store buffers, indexed by PID (the system's own
	// entry is unused: the system never issues TSO writes).
	Bufs [][]WAct
	// Lock is the TSO lock owner, or -1.
	Lock cimp.PID

	// Handshake state (not subject to TSO, §3.1).
	HSType  HSType
	Tag     RoundTag
	Pending []bool // per-mutator handshake-pending bits

	// W is the system-held work-list into which mutators transfer their
	// private lists and from which the collector loads.
	W heap.RefSet
}

// Local is the shared CIMP local-state type: exactly one of Mut, GC, Sys
// is populated, according to the process's role (the Isabelle development
// likewise uses a single local-state record for all processes).
type Local struct {
	Self cimp.PID
	Mut  *MutLocal
	GC   *GCLocal
	Sys  *SysLocal
}

// Clone deep-copies the populated role state.
func (l *Local) Clone() *Local {
	n := &Local{Self: l.Self}
	switch {
	case l.Mut != nil:
		m := *l.Mut
		n.Mut = &m
	case l.GC != nil:
		g := *l.GC
		n.GC = &g
	case l.Sys != nil:
		s := *l.Sys
		s.Heap = l.Sys.Heap.Clone()
		s.Bufs = make([][]WAct, len(l.Sys.Bufs))
		for i, b := range l.Sys.Bufs {
			if len(b) > 0 {
				s.Bufs[i] = append([]WAct(nil), b...)
			}
		}
		s.Pending = append([]bool(nil), l.Sys.Pending...)
		n.Sys = &s
	}
	return n
}

// --- Accessors shared between the collector's and mutators' mark code ---

func (l *Local) worklist() heap.RefSet {
	if l.Mut != nil {
		return l.Mut.WM
	}
	return l.GC.W
}

func (l *Local) setWorklist(w heap.RefSet) {
	if l.Mut != nil {
		l.Mut.WM = w
	} else {
		l.GC.W = w
	}
}

func (l *Local) mRef() heap.Ref {
	if l.Mut != nil {
		return l.Mut.MRef
	}
	return l.GC.MRef
}

func (l *Local) setMRef(r heap.Ref) {
	if l.Mut != nil {
		l.Mut.MRef = r
	} else {
		l.GC.MRef = r
	}
}

func (l *Local) mFM() bool {
	if l.Mut != nil {
		return l.Mut.MFM
	}
	return l.GC.MFM
}

func (l *Local) setMFM(b bool) {
	if l.Mut != nil {
		l.Mut.MFM = b
	} else {
		l.GC.MFM = b
	}
}

func (l *Local) mFlag() bool {
	if l.Mut != nil {
		return l.Mut.MFlag
	}
	return l.GC.MFlag
}

func (l *Local) setMFlag(b bool) {
	if l.Mut != nil {
		l.Mut.MFlag = b
	} else {
		l.GC.MFlag = b
	}
}

func (l *Local) mPhase() Phase {
	if l.Mut != nil {
		return l.Mut.MPhase
	}
	return l.GC.MPhase
}

func (l *Local) setMPhase(p Phase) {
	if l.Mut != nil {
		l.Mut.MPhase = p
	} else {
		l.GC.MPhase = p
	}
}

func (l *Local) winner() bool {
	if l.Mut != nil {
		return l.Mut.Winner
	}
	return l.GC.Winner
}

func (l *Local) setWinner(b bool) {
	if l.Mut != nil {
		l.Mut.Winner = b
	} else {
		l.GC.Winner = b
	}
}

func (l *Local) setGHG(r heap.Ref) {
	if l.Mut != nil {
		l.Mut.GHG = r
	} else {
		l.GC.GHG = r
	}
}

// resetMarkRegs clears every scratch register of the mark operation so
// completed marks leave no dead-register residue to distinguish
// otherwise-identical states.
func (l *Local) resetMarkRegs() {
	l.setMRef(heap.NilRef)
	l.setMFM(false)
	l.setMFlag(false)
	l.setMPhase(PhIdle)
	l.setWinner(false)
	l.setInMark(false, false)
}

func (l *Local) setInMark(in, del bool) {
	if l.Mut != nil {
		l.Mut.InMark = in
		l.Mut.InMarkDel = in && del
	} else {
		l.GC.InMark = in
	}
}

// --- Fingerprinting ---

// AppendFingerprint appends a canonical encoding of the local data state.
func (l *Local) AppendFingerprint(dst []byte) []byte {
	switch {
	case l.Mut != nil:
		m := l.Mut
		dst = append(dst, 'M')
		dst = binary.AppendUvarint(dst, uint64(m.Roots))
		dst = binary.AppendUvarint(dst, uint64(m.WM))
		dst = binary.AppendVarint(dst, int64(m.MRef))
		dst = appendBools(dst, m.MFM, m.MFlag, m.Winner, m.InMark, m.InMarkDel, m.RootsDone)
		dst = binary.AppendVarint(dst, int64(m.MPhase))
		dst = binary.AppendVarint(dst, int64(m.SSrc))
		dst = binary.AppendVarint(dst, int64(m.SFld))
		dst = binary.AppendVarint(dst, int64(m.SDst))
		dst = binary.AppendVarint(dst, int64(m.TmpRef))
		dst = binary.AppendUvarint(dst, uint64(m.PendRoots))
		dst = binary.AppendVarint(dst, int64(m.OpsLeft))
		dst = appendBools(dst, m.HSP)
		dst = binary.AppendVarint(dst, int64(m.HSTy))
		dst = binary.AppendVarint(dst, int64(m.HSTag))
		dst = binary.AppendVarint(dst, int64(m.GHG))
		dst = binary.AppendVarint(dst, int64(m.HP))
	case l.GC != nil:
		g := l.GC
		dst = append(dst, 'G')
		dst = binary.AppendUvarint(dst, uint64(g.W))
		dst = appendBools(dst, g.FM, g.FA, g.MFM, g.MFlag, g.Winner, g.SwFlag, g.InMark)
		dst = binary.AppendVarint(dst, int64(g.Phase))
		dst = binary.AppendVarint(dst, int64(g.MRef))
		dst = binary.AppendVarint(dst, int64(g.MPhase))
		dst = binary.AppendVarint(dst, int64(g.Src))
		dst = binary.AppendVarint(dst, int64(g.FldIdx))
		dst = binary.AppendVarint(dst, int64(g.TmpRef))
		dst = binary.AppendUvarint(dst, uint64(g.Sweep))
		dst = binary.AppendVarint(dst, int64(g.SwRef))
		dst = binary.AppendVarint(dst, int64(g.MutIdx))
		dst = binary.AppendVarint(dst, int64(g.GHG))
	case l.Sys != nil:
		s := l.Sys
		dst = append(dst, 'S')
		dst = s.Heap.AppendFingerprint(dst)
		dst = appendBools(dst, s.FA, s.FM)
		dst = binary.AppendVarint(dst, int64(s.Phase))
		dst = binary.AppendVarint(dst, int64(s.Lock))
		for _, buf := range s.Bufs {
			dst = binary.AppendUvarint(dst, uint64(len(buf)))
			for _, w := range buf {
				dst = binary.AppendVarint(dst, int64(w.Loc.Kind))
				dst = binary.AppendVarint(dst, int64(w.Loc.R))
				dst = binary.AppendVarint(dst, int64(w.Loc.F))
				dst = binary.AppendVarint(dst, int64(w.Val))
			}
		}
		dst = binary.AppendVarint(dst, int64(s.HSType))
		dst = binary.AppendVarint(dst, int64(s.Tag))
		dst = appendBools(dst, s.Pending...)
		dst = binary.AppendUvarint(dst, uint64(s.W))
	}
	return dst
}

func appendBools(dst []byte, bs ...bool) []byte {
	var acc byte
	for i, b := range bs {
		if b {
			acc |= 1 << uint(i%8)
		}
		if i%8 == 7 {
			dst = append(dst, acc)
			acc = 0
		}
	}
	if len(bs)%8 != 0 {
		dst = append(dst, acc)
	}
	return dst
}
