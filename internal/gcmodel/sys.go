package gcmodel

import (
	"repro/internal/cimp"
)

// This file builds the system process: the adaptation of Sewell et al.'s
// x86-TSO machine to CIMP shown in paper Figure 9, extended with the
// paper's treatment of allocation (an atomic global action), free, and the
// straightforward handshake mailboxes of §3.1. The system is a reactive
// loop: a non-deterministic choice over RESPONSE commands plus one
// internal LOCALOP that commits the oldest pending write of any unblocked
// process.

// sysRead implements the TSO load: the newest write to loc pending in p's
// own store buffer, else shared memory. Reads of locations belonging to
// freed objects yield poison (-2); they can occur only in ablated
// (deliberately unsafe) models, after the safety invariant has already
// been violated.
func sysRead(s *SysLocal, p cimp.PID, loc Loc) Val {
	buf := s.Bufs[p]
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i].Loc == loc {
			return buf[i].Val
		}
	}
	switch loc.Kind {
	case LFA:
		return BoolVal(s.FA)
	case LFM:
		return BoolVal(s.FM)
	case LPhase:
		return PhaseVal(s.Phase)
	case LMark:
		if !s.Heap.Valid(loc.R) {
			return -2
		}
		return BoolVal(s.Heap.Obj(loc.R).Flag)
	case LField:
		if !s.Heap.Valid(loc.R) {
			return -2
		}
		return RefVal(s.Heap.Load(loc.R, loc.F))
	}
	panic("gcmodel: bad location")
}

// doWrite is do-write-action: apply a dequeued store to shared memory.
// Writes to freed objects are dropped (possible only in ablated models).
func doWrite(s *SysLocal, w WAct) {
	switch w.Loc.Kind {
	case LFA:
		s.FA = w.Val.Bool()
	case LFM:
		s.FM = w.Val.Bool()
	case LPhase:
		s.Phase = w.Val.Phase()
	case LMark:
		if s.Heap.Valid(w.Loc.R) {
			s.Heap.SetFlag(w.Loc.R, w.Val.Bool())
		}
	case LField:
		if s.Heap.Valid(w.Loc.R) {
			s.Heap.Store(w.Loc.R, w.Loc.F, w.Val.Ref())
		}
	}
}

// notBlocked is the Figure 9 guard: p may read memory or commit stores
// only if no other process holds the TSO lock.
func notBlocked(s *SysLocal, p cimp.PID) bool {
	return s.Lock == -1 || s.Lock == p
}

// resp builds a system RESPONSE handling one request kind.
func resp(label string, kind ReqKind, f func(s *Local, req Req) []cimp.Reply[*Local]) cimp.Com[*Local] {
	return &cimp.Response[*Local]{L: label, F: func(s *Local, alpha cimp.Msg) []cimp.Reply[*Local] {
		req, ok := alpha.(Req)
		if !ok || req.Kind != kind {
			return nil
		}
		return f(s, req)
	}}
}

// one is a singleton reply whose state was produced by mutating a clone.
func one(s *Local, beta Resp) []cimp.Reply[*Local] {
	return []cimp.Reply[*Local]{{S: s, Msg: beta}}
}

// SysProgram builds the system process for a model configuration.
func (c *Config) SysProgram() cimp.Com[*Local] {
	alts := []cimp.Com[*Local]{
		resp("sys-read", RRead, func(l *Local, req Req) []cimp.Reply[*Local] {
			if !notBlocked(l.Sys, req.P) {
				return nil
			}
			// Reads do not change the system state; reply in place.
			return one(l, Resp{Val: sysRead(l.Sys, req.P, req.Loc)})
		}),

		resp("sys-write", RWrite, func(l *Local, req Req) []cimp.Reply[*Local] {
			if c.SCMemory {
				// Sequential-consistency oracle: commit immediately.
				if !notBlocked(l.Sys, req.P) {
					return nil
				}
				n := l.Clone()
				doWrite(n.Sys, WAct{Loc: req.Loc, Val: req.Val})
				return one(n, Resp{})
			}
			if c.MaxBuf > 0 && len(l.Sys.Bufs[req.P]) >= c.MaxBuf {
				return nil // buffer full under the configured bound
			}
			n := l.Clone()
			n.Sys.Bufs[req.P] = append(append([]WAct(nil), n.Sys.Bufs[req.P]...),
				WAct{Loc: req.Loc, Val: req.Val})
			return one(n, Resp{})
		}),

		resp("sys-mfence", RMFence, func(l *Local, req Req) []cimp.Reply[*Local] {
			if len(l.Sys.Bufs[req.P]) != 0 {
				return nil
			}
			return one(l, Resp{})
		}),

		resp("sys-lock", RLock, func(l *Local, req Req) []cimp.Reply[*Local] {
			if l.Sys.Lock != -1 {
				return nil
			}
			n := l.Clone()
			n.Sys.Lock = req.P
			return one(n, Resp{})
		}),

		resp("sys-unlock", RUnlock, func(l *Local, req Req) []cimp.Reply[*Local] {
			if l.Sys.Lock != req.P || len(l.Sys.Bufs[req.P]) != 0 {
				return nil
			}
			n := l.Clone()
			n.Sys.Lock = -1
			return one(n, Resp{})
		}),

		resp("sys-alloc", RAlloc, func(l *Local, req Req) []cimp.Reply[*Local] {
			if !notBlocked(l.Sys, req.P) || req.Mut <= 0 {
				return nil // blocked, or the requester's op budget is spent
			}
			var out []cimp.Reply[*Local]
			for _, r := range l.Sys.Heap.FreeRefs() {
				n := l.Clone()
				flag := n.Sys.FA
				if c.AllocWhite {
					// Ablation E11: allocate with the unmarked sense.
					flag = !n.Sys.FM
				}
				n.Sys.Heap.AllocAt(r, c.NFields, flag)
				out = append(out, cimp.Reply[*Local]{S: n, Msg: Resp{Ref: r}})
			}
			return out
		}),

		resp("sys-free", RFree, func(l *Local, req Req) []cimp.Reply[*Local] {
			if !notBlocked(l.Sys, req.P) || !l.Sys.Heap.Valid(req.Loc.R) {
				return nil
			}
			n := l.Clone()
			n.Sys.Heap.Free(req.Loc.R)
			return one(n, Resp{})
		}),

		resp("sys-refs", RRefsSnapshot, func(l *Local, req Req) []cimp.Reply[*Local] {
			if !notBlocked(l.Sys, req.P) {
				return nil
			}
			return one(l, Resp{W: l.Sys.Heap.Refs()})
		}),

		resp("sys-hs-start", RHsStart, func(l *Local, req Req) []cimp.Reply[*Local] {
			n := l.Clone()
			n.Sys.HSType = req.HS
			n.Sys.Tag = req.Tag
			return one(n, Resp{})
		}),

		resp("sys-hs-signal", RHsSignal, func(l *Local, req Req) []cimp.Reply[*Local] {
			n := l.Clone()
			n.Sys.Pending[req.Mut] = true
			return one(n, Resp{})
		}),

		resp("sys-hs-poll", RHsPoll, func(l *Local, req Req) []cimp.Reply[*Local] {
			m := int(req.P) - 1
			return one(l, Resp{Pending: l.Sys.Pending[m], HS: l.Sys.HSType, Tag: l.Sys.Tag})
		}),

		resp("sys-hs-done", RHsDone, func(l *Local, req Req) []cimp.Reply[*Local] {
			m := int(req.P) - 1
			if !l.Sys.Pending[m] {
				return nil
			}
			n := l.Clone()
			n.Sys.Pending[m] = false
			n.Sys.W = n.Sys.W.Union(req.WM)
			return one(n, Resp{})
		}),

		resp("sys-hs-wait-all", RHsWaitAll, func(l *Local, req Req) []cimp.Reply[*Local] {
			for _, p := range l.Sys.Pending {
				if p {
					return nil
				}
			}
			n := l.Clone()
			w := n.Sys.W
			n.Sys.W = 0
			return one(n, Resp{W: w})
		}),
	}
	if !c.NoDequeue {
		// The single internal transition of Figure 9: commit the oldest
		// pending write of any unblocked process.
		alts = append(alts, &cimp.LocalOp[*Local]{L: "sys-dequeue-write-buffer", F: func(l *Local) []*Local {
			var out []*Local
			for p := range l.Sys.Bufs {
				pid := cimp.PID(p)
				if len(l.Sys.Bufs[p]) == 0 || !notBlocked(l.Sys, pid) {
					continue
				}
				n := l.Clone()
				w := n.Sys.Bufs[p][0]
				rest := n.Sys.Bufs[p][1:]
				if len(rest) == 0 {
					n.Sys.Bufs[p] = nil
				} else {
					n.Sys.Bufs[p] = append([]WAct(nil), rest...)
				}
				doWrite(n.Sys, w)
				out = append(out, n)
			}
			return out
		}})
	}
	return &cimp.Loop[*Local]{Body: &cimp.Choose[*Local]{Alts: alts}}
}
