package gcmodel

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cimp"
	"repro/internal/heap"
)

func testConfig() Config {
	return Config{
		NMutators: 1,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    2,
		OpBudget:  1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0)},
		AllowNilStore: true,
		DisableAlloc:  true,
	}
}

func build(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// walk performs a seeded random walk and feeds every event to visit.
func walk(t *testing.T, m *Model, seed int64, steps int, visit func(cimp.Event, Global)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st := m.Initial()
	for i := 0; i < steps; i++ {
		type cand struct {
			next cimp.System[*Local]
			ev   cimp.Event
		}
		var cands []cand
		m.Successors(st, func(n cimp.System[*Local], ev cimp.Event) {
			cands = append(cands, cand{n, ev})
		})
		if len(cands) == 0 {
			t.Fatalf("deadlock at step %d", i)
		}
		c := cands[rng.Intn(len(cands))]
		st = c.next
		visit(c.ev, Global{Model: m, State: st})
	}
}

// TestFig3TagSequence (E3): the handshake rounds initiated by the
// collector follow the Figure 3 cycle structure: idle, idle-init,
// init-mark, mark, roots, then one or more work rounds, then idle again.
func TestFig3TagSequence(t *testing.T) {
	m := build(t, testConfig())
	var tags []RoundTag
	walk(t, m, 42, 30_000, func(ev cimp.Event, g Global) {
		if strings.HasSuffix(ev.Label, "_start") && strings.Contains(ev.Label, "_hs_") {
			tags = append(tags, g.Sys().Tag)
		}
	})
	if len(tags) < 8 {
		t.Fatalf("walk too short: %d handshakes", len(tags))
	}
	// Check cycle structure.
	i := 0
	cycles := 0
	for i < len(tags) {
		want := []RoundTag{TagIdle, TagIdleInit, TagInitMark, TagMark, TagRoots}
		for _, w := range want {
			if i >= len(tags) {
				return // truncated final cycle is fine
			}
			if tags[i] != w {
				t.Fatalf("cycle %d: handshake %d is %v, want %v (tags=%v)", cycles, i, tags[i], w, tags)
			}
			i++
		}
		for i < len(tags) && tags[i] == TagWork {
			i++
		}
		cycles++
	}
	if cycles < 1 {
		t.Fatal("no complete cycle observed")
	}
}

// TestFig3PhaseWrites (E2/E3): the collector's phase writes follow
// Idle → Init → Mark → Sweep → Idle, and f_M flips exactly once per
// cycle, before Init.
func TestFig3PhaseWrites(t *testing.T) {
	m := build(t, testConfig())
	var writes []string
	walk(t, m, 7, 30_000, func(ev cimp.Event, g Global) {
		switch ev.Label {
		case "gc_write_phase_init":
			writes = append(writes, "Init")
		case "gc_write_phase_mark":
			writes = append(writes, "Mark")
		case "gc_write_phase_sweep":
			writes = append(writes, "Sweep")
		case "gc_write_phase_idle":
			writes = append(writes, "Idle")
		case "gc_write_fM":
			writes = append(writes, "flip")
		}
	})
	if len(writes) < 5 {
		t.Fatalf("walk too short: %v", writes)
	}
	want := []string{"flip", "Init", "Mark", "Sweep", "Idle"}
	for i, w := range writes {
		if w != want[i%5] {
			t.Fatalf("write %d = %s, want %s (writes=%v)", i, w, want[i%5], writes)
		}
	}
}

// TestFig4HandshakeAnatomy (E4): within one round, the collector's
// events are ordered start, fence, signals, wait-all, fence; and the
// mutator's are poll, accept-fence, work, finish-fence, done.
func TestFig4HandshakeAnatomy(t *testing.T) {
	m := build(t, testConfig())
	var events []string
	walk(t, m, 99, 10_000, func(ev cimp.Event, g Global) {
		events = append(events, ev.Label)
	})

	// Examine the first roots round.
	start := -1
	for i, e := range events {
		if e == "gc_hs_roots_start" {
			start = i
			break
		}
	}
	if start == -1 {
		t.Fatal("no roots handshake in walk")
	}
	// Collect this round's collector-side and mutator-side milestones.
	var gcSide, mutSide []string
	for _, e := range events[start:] {
		if e == "gc_mark_outer" || strings.HasPrefix(e, "gc_pick_src") || e == "gc_write_phase_sweep" {
			break
		}
		if strings.HasPrefix(e, "gc_hs_roots_") {
			gcSide = append(gcSide, strings.TrimPrefix(e, "gc_hs_roots_"))
		}
		if e == "mut0_hs_poll" || strings.HasPrefix(e, "mut0_hs_mfence") || e == "mut0_hs_done" {
			mutSide = append(mutSide, strings.TrimPrefix(e, "mut0_hs_"))
		}
	}
	wantGC := []string{"start", "mfence_init", "signal", "wait_all", "mfence_done"}
	if !reflect.DeepEqual(gcSide, wantGC) {
		t.Fatalf("collector side = %v, want %v", gcSide, wantGC)
	}
	// The mutator may poll (and see no pending bit) any number of times
	// before the signal and after completing; the accept sequence itself
	// must appear contiguously: poll, accept fence, (root marking),
	// finish fence, done.
	wantMut := []string{"poll", "mfence_accept", "mfence_finish", "done"}
	found := false
	for i := 0; i+len(wantMut) <= len(mutSide); i++ {
		if reflect.DeepEqual(mutSide[i:i+len(wantMut)], wantMut) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("accept sequence %v not found in mutator side %v", wantMut, mutSide)
	}
}

// TestHandshakePhaseGhost: the mutator's ghost handshake phase follows
// Figure 3's bottom row as rounds complete.
func TestHandshakePhaseGhost(t *testing.T) {
	m := build(t, testConfig())
	var seen []HandshakePhase
	last := HandshakePhase(-1)
	walk(t, m, 5, 30_000, func(ev cimp.Event, g Global) {
		hp := g.Mut(0).HP
		if hp != last {
			seen = append(seen, hp)
			last = hp
		}
	})
	if len(seen) < 4 {
		t.Fatalf("phases observed: %v", seen)
	}
	want := []HandshakePhase{HpIdle, HpIdleInit, HpInitMark, HpIdleMarkSweep}
	for i, p := range seen {
		if p != want[i%4] {
			t.Fatalf("phase %d = %v, want %v (seen=%v)", i, p, want[i%4], seen)
		}
	}
}

// TestMarkLoopTermination (E9): whenever the collector writes
// phase ← Sweep, no grey references exist anywhere in the system.
func TestMarkLoopTermination(t *testing.T) {
	m := build(t, testConfig())
	checked := 0
	walk(t, m, 11, 40_000, func(ev cimp.Event, g Global) {
		if ev.Label != "gc_write_phase_sweep" {
			return
		}
		checked++
		grey := g.GC().W.Union(g.Sys().W)
		for i := 0; i < g.NMut(); i++ {
			grey = grey.Union(g.Mut(i).WM).Add(g.Mut(i).GHG)
		}
		if !grey.Empty() {
			t.Fatalf("greys %v at sweep entry", grey)
		}
	})
	if checked == 0 {
		t.Fatal("no sweep transitions observed")
	}
}

// TestValRoundTrip covers the shared-memory value encoding.
func TestValRoundTrip(t *testing.T) {
	if !BoolVal(true).Bool() || BoolVal(false).Bool() {
		t.Fatal("bool round trip")
	}
	for _, p := range []Phase{PhIdle, PhInit, PhMark, PhSweep} {
		if PhaseVal(p).Phase() != p {
			t.Fatalf("phase %v round trip", p)
		}
	}
	for _, r := range []heap.Ref{heap.NilRef, 0, 5, 63} {
		if RefVal(r).Ref() != r {
			t.Fatalf("ref %v round trip", r)
		}
	}
}

func TestLocalCloneIsDeep(t *testing.T) {
	cfg := testConfig()
	m := build(t, cfg)
	sys := m.Initial().Procs[m.Cfg.NMutators+1].Data
	c := sys.Clone()
	c.Sys.Heap.Free(0)
	c.Sys.Pending[0] = true
	c.Sys.Bufs[0] = append(c.Sys.Bufs[0], WAct{Loc: Loc{Kind: LFM}, Val: 1})
	if !sys.Sys.Heap.Valid(0) || sys.Sys.Pending[0] || len(sys.Sys.Bufs[0]) != 0 {
		t.Fatal("SysLocal clone shares state")
	}

	mut := m.Initial().Procs[1].Data
	cm := mut.Clone()
	cm.Mut.Roots = cm.Mut.Roots.Add(1)
	if mut.Mut.Roots.Has(1) {
		t.Fatal("MutLocal clone shares state")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	m := build(t, testConfig())
	st := m.Initial()
	base := m.Fingerprint(st)

	st2 := st.CloneShallow()
	st2.Procs[1] = cimp.Config[*Local]{Stack: st.Procs[1].Stack, Data: st.Procs[1].Data.Clone()}
	st2.Procs[1].Data.Mut.Roots = st2.Procs[1].Data.Mut.Roots.Add(1)
	if m.Fingerprint(st2) == base {
		t.Fatal("root change invisible to fingerprint")
	}

	st3 := st.CloneShallow()
	sysIdx := len(st.Procs) - 1
	st3.Procs[sysIdx] = cimp.Config[*Local]{Stack: st.Procs[sysIdx].Stack, Data: st.Procs[sysIdx].Data.Clone()}
	st3.Procs[sysIdx].Data.Sys.FM = true
	if m.Fingerprint(st3) == base {
		t.Fatal("f_M change invisible to fingerprint")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{NMutators: 0, NRefs: 1},
		{NMutators: 1, NRefs: 0},
		{NMutators: 1, NRefs: 65},
		{NMutators: 1, NRefs: 2, InitObjects: map[heap.Ref][]heap.Ref{5: nil}},
		{NMutators: 1, NRefs: 2, InitRoots: []heap.RefSet{heap.SetOf(1)}}, // root not allocated
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d validated", i)
		}
	}
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHpAfterMapping(t *testing.T) {
	cases := map[RoundTag]HandshakePhase{
		TagIdle:     HpIdle,
		TagIdleInit: HpIdleInit,
		TagInitMark: HpInitMark,
		TagMark:     HpIdleMarkSweep,
		TagRoots:    HpIdleMarkSweep,
		TagWork:     HpIdleMarkSweep,
	}
	for tag, want := range cases {
		if got := hpAfter(tag, HpIdle); got != want {
			t.Fatalf("hpAfter(%v) = %v, want %v", tag, got, want)
		}
	}
	if got := hpAfter(TagNone, HpInitMark); got != HpInitMark {
		t.Fatalf("hpAfter(TagNone) should preserve, got %v", got)
	}
}

// TestSysReadForwardsFromBuffer: the system's TSO load semantics (paper
// Figure 9) — the newest buffered write wins, else memory.
func TestSysReadForwardsFromBuffer(t *testing.T) {
	m := build(t, testConfig())
	sys := m.Initial().Procs[m.Cfg.NMutators+1].Data.Sys

	loc := Loc{Kind: LFM}
	if got := sysRead(sys, 1, loc); got.Bool() {
		t.Fatal("initial f_M should read false")
	}
	sys.Bufs[1] = append(sys.Bufs[1], WAct{Loc: loc, Val: BoolVal(true)})
	if got := sysRead(sys, 1, loc); !got.Bool() {
		t.Fatal("own buffered write not forwarded")
	}
	if got := sysRead(sys, 0, loc); got.Bool() {
		t.Fatal("another process sees the uncommitted write")
	}
	sys.Bufs[1] = append(sys.Bufs[1], WAct{Loc: loc, Val: BoolVal(false)})
	if got := sysRead(sys, 1, loc); got.Bool() {
		t.Fatal("newest buffered write must win")
	}
}

// TestDoWriteAppliesAllLocations covers do-write-action.
func TestDoWriteAppliesAllLocations(t *testing.T) {
	m := build(t, testConfig())
	sys := m.Initial().Procs[m.Cfg.NMutators+1].Data.Sys

	doWrite(sys, WAct{Loc: Loc{Kind: LFA}, Val: BoolVal(true)})
	doWrite(sys, WAct{Loc: Loc{Kind: LFM}, Val: BoolVal(true)})
	doWrite(sys, WAct{Loc: Loc{Kind: LPhase}, Val: PhaseVal(PhMark)})
	doWrite(sys, WAct{Loc: Loc{Kind: LMark, R: 0}, Val: BoolVal(true)})
	doWrite(sys, WAct{Loc: Loc{Kind: LField, R: 0, F: 0}, Val: RefVal(heap.NilRef)})
	if !sys.FA || !sys.FM || sys.Phase != PhMark {
		t.Fatal("control writes not applied")
	}
	if !sys.Heap.Obj(0).Flag || sys.Heap.Load(0, 0) != heap.NilRef {
		t.Fatal("heap writes not applied")
	}
	// Writes to freed objects are dropped, not applied.
	sys.Heap.Free(1)
	doWrite(sys, WAct{Loc: Loc{Kind: LMark, R: 1}, Val: BoolVal(true)})
	doWrite(sys, WAct{Loc: Loc{Kind: LField, R: 1, F: 0}, Val: RefVal(0)})
	if sys.Heap.Valid(1) {
		t.Fatal("write resurrected a freed object")
	}
}
