package gcmodel

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/cimp"
)

// This file implements mutator-symmetry canonicalization (package explore
// wires it behind Options.Symmetry). The mutator programs are structurally
// identical — MutProgram(i) differs only in its label prefix — so states
// that differ only by a permutation of mutator identities have identical
// futures up to the same permutation, and the checker needs to explore
// only one representative per orbit.
//
// Canonicalization happens at the fingerprint level: instead of encoding
// processes in PID order, AppendCanonicalFingerprint encodes each
// mutator's complete footprint in the state (its control stack rebased to
// mutator 0's command-ID block, its local data, its store buffer, its
// handshake-pending bit, and whether it holds the TSO lock) as a
// self-contained segment, sorts the segments lexicographically, and
// splices them between the collector's block and the residual system
// block. Two states receive the same canonical fingerprint exactly when
// some mutator permutation maps one to the other, provided the
// permutation also respects the standing classes below.
//
// Not every permutation is an automorphism of the transition relation:
// the collector's handshake loop signals mutators in a fixed index order
// (hsRound's signal targets GC.MutIdx literally). The canonical form
// therefore tags each segment with a standing-class byte so that sorting
// can only identify mutators whose relationship to the in-flight
// handshake round is the same:
//
//   - the handshake-pending bit (a signaled mutator is not
//     interchangeable with an unsignaled one);
//   - the three-way comparison of the mutator's index with the
//     collector's signal cursor GC.MutIdx — already signaled this round
//     (<), next to be signaled (==, always a singleton class), or not
//     yet reached (>);
//   - TSO lock ownership (the lock word stores a literal PID; the
//     owner's identity travels with its segment and the residual system
//     block records only "a mutator holds it").
//
// The fixed signal order still distinguishes *which* not-yet-signaled
// mutator will be reached first, so orbit equivalence under these
// classes is a heuristic strengthening of exact bisimulation rather
// than a consequence of it; the differential harness in package
// diffcheck validates verdict equality against full exploration for
// every shipped configuration, which is the soundness evidence this
// repo relies on. Symmetry is off by default.
//
// The frontier always holds concrete states — canonicalization applies
// only to visited-set keys — so counterexample traces remain concrete
// runs of the unreduced transition relation.

// setupSymmetry records the command-ID block layout of the mutator
// programs, enabling canonical fingerprints. Mutator i's program nodes
// occupy the contiguous ID range [mutBase[i], mutBase[i]+mutBlock): the
// index walks program roots in build order and programs share no nodes.
// Called by Build; symmetry stays disabled (mutBlock == 0) for
// single-mutator models or if the blocks are not uniform.
func (m *Model) setupSymmetry(mutProgs []cimp.Com[*Local], sysProg cimp.Com[*Local]) {
	n := len(mutProgs)
	if n < 2 {
		return
	}
	bases := make([]int, n+1)
	for i, p := range mutProgs {
		bases[i] = m.Index.ID(p)
	}
	bases[n] = m.Index.ID(sysProg)
	size := bases[1] - bases[0]
	for i := 1; i < n; i++ {
		if bases[i+1]-bases[i] != size {
			return
		}
	}
	m.mutBase = bases[:n]
	m.mutBlock = size
}

// SymmetryActive reports whether canonical fingerprints actually fold
// mutator permutations for this model (at least two mutators with
// uniform program blocks). When false, AppendCanonicalFingerprint
// degenerates to AppendFingerprint.
func (m *Model) SymmetryActive() bool { return m.mutBlock > 0 }

// mutClass is the standing class of mutator ordinal i: the properties a
// permutation must preserve for the canonical form to identify two
// mutators. See the file comment.
func mutClass(s *SysLocal, gcMutIdx, i int) byte {
	var c byte
	if s.Pending[i] {
		c |= 1
	}
	switch {
	case i == gcMutIdx:
		c |= 2
	case i > gcMutIdx:
		c |= 4
	}
	if s.Lock == MutPID(i) {
		c |= 8
	}
	return c
}

// appendRebasedStack encodes mutator ord's control stack with every
// command ID translated into mutator 0's block, so that structurally
// corresponding control points encode identically across mutators.
func (m *Model) appendRebasedStack(dst []byte, ord int, stack []cimp.Com[*Local]) []byte {
	delta := m.mutBase[ord] - m.mutBase[0]
	dst = binary.AppendUvarint(dst, uint64(len(stack)))
	for _, c := range stack {
		dst = binary.AppendUvarint(dst, uint64(m.Index.ID(c)-delta))
	}
	return dst
}

// appendWActs encodes one store buffer (same layout as the system
// block of Local.AppendFingerprint).
func appendWActs(dst []byte, buf []WAct) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(buf)))
	for _, w := range buf {
		dst = binary.AppendVarint(dst, int64(w.Loc.Kind))
		dst = binary.AppendVarint(dst, int64(w.Loc.R))
		dst = binary.AppendVarint(dst, int64(w.Loc.F))
		dst = binary.AppendVarint(dst, int64(w.Val))
	}
	return dst
}

// AppendCanonicalFingerprint appends an encoding of st that is invariant
// under standing-class-preserving permutations of the mutators, and
// injective on states up to exactly those permutations. Layout:
// collector stack + data, then the sorted mutator segments (each
// length-prefixed: class byte, rebased stack, data, own store buffer),
// then the system process's stack and a residual system block with the
// mutator buffers, pending bits, and lock-holder identity removed
// (they travel inside the segments).
func (m *Model) AppendCanonicalFingerprint(dst []byte, st cimp.System[*Local]) []byte {
	if m.mutBlock == 0 {
		return m.AppendFingerprint(dst, st)
	}
	n := m.Cfg.NMutators
	sysIdx := len(st.Procs) - 1
	sys := st.Procs[sysIdx].Data.Sys
	gcMutIdx := st.Procs[0].Data.GC.MutIdx

	dst = m.Index.AppendStack(dst, st.Procs[0].Stack)
	dst = st.Procs[0].Data.AppendFingerprint(dst)

	segs := make([][]byte, n)
	for i := 0; i < n; i++ {
		pid := MutPID(i)
		seg := []byte{mutClass(sys, gcMutIdx, i)}
		seg = m.appendRebasedStack(seg, i, st.Procs[pid].Stack)
		seg = st.Procs[pid].Data.AppendFingerprint(seg)
		seg = appendWActs(seg, sys.Bufs[pid])
		segs[i] = seg
	}
	sort.Slice(segs, func(a, b int) bool { return bytes.Compare(segs[a], segs[b]) < 0 })
	for _, seg := range segs {
		dst = binary.AppendUvarint(dst, uint64(len(seg)))
		dst = append(dst, seg...)
	}

	dst = m.Index.AppendStack(dst, st.Procs[sysIdx].Stack)
	dst = append(dst, 'S')
	dst = sys.Heap.AppendFingerprint(dst)
	dst = appendBools(dst, sys.FA, sys.FM)
	dst = binary.AppendVarint(dst, int64(sys.Phase))
	lock := int64(sys.Lock)
	if sys.Lock >= 1 && int(sys.Lock) <= n {
		lock = -2 // held by a mutator; which one is in its segment's class
	}
	dst = binary.AppendVarint(dst, lock)
	dst = appendWActs(dst, sys.Bufs[GCPID])
	dst = appendWActs(dst, sys.Bufs[sysIdx])
	dst = binary.AppendVarint(dst, int64(sys.HSType))
	dst = binary.AppendVarint(dst, int64(sys.Tag))
	dst = binary.AppendUvarint(dst, uint64(sys.W))
	return dst
}
