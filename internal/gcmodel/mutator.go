package gcmodel

import (
	"fmt"

	"repro/internal/cimp"
	"repro/internal/heap"
)

// This file builds the mutator processes: a maximally non-deterministic
// choice among the operations of paper Figure 6 (Load, Store with both
// write barriers, Alloc, Discard), an MFENCE, and the mutator's side of
// the soft handshakes (§3.1, Figure 4). Every client of the collector is
// expected to be a refinement of this process — i.e. to respect the heap
// access protocol and nothing more.

// hpAfter maps a completed handshake round to the mutator's new ghost
// handshake phase (Figure 3, bottom row).
func hpAfter(tag RoundTag, cur HandshakePhase) HandshakePhase {
	switch tag {
	case TagIdle:
		return HpIdle
	case TagIdleInit:
		return HpIdleInit
	case TagInitMark:
		return HpInitMark
	case TagMark, TagRoots, TagWork:
		return HpIdleMarkSweep
	}
	return cur
}

// MutProgram builds the mutator process with ordinal m (PID m+1).
func (c *Config) MutProgram(m int) cimp.Com[*Local] {
	pfx := fmt.Sprintf("mut%d", m)

	// hasBudget gates heap operations under Config.OpBudget.
	hasBudget := func(l *Local) bool { return c.OpBudget == 0 || l.Mut.OpsLeft > 0 }
	spend := func(l *Local) {
		if c.OpBudget > 0 {
			l.Mut.OpsLeft--
		}
	}

	// Load (Figure 6): roots ← roots ∪ {src.fld}.
	load := seqs(
		&cimp.LocalOp[*Local]{L: pfx + "_load_pick", F: func(l *Local) []*Local {
			if !hasBudget(l) {
				return nil
			}
			var out []*Local
			l.Mut.Roots.Each(func(src heap.Ref) {
				for f := 0; f < c.NFields; f++ {
					n := l.Clone()
					spend(n)
					n.Mut.SSrc, n.Mut.SFld = src, heap.Field(f)
					out = append(out, n)
				}
			})
			return out
		}},
		readTo(pfx+"_load",
			func(l *Local) Loc { return Loc{Kind: LField, R: l.Mut.SSrc, F: l.Mut.SFld} },
			func(l *Local, v Val) { l.Mut.TmpRef = v.Ref() }),
		det(pfx+"_load_add", func(l *Local) {
			l.Mut.Roots = l.Mut.Roots.Add(l.Mut.TmpRef)
			l.Mut.TmpRef = heap.NilRef
			l.Mut.SSrc = heap.NilRef
			l.Mut.SFld = 0
		}),
	)

	// Store (Figure 6): deletion barrier on the overwritten reference,
	// insertion barrier on the stored reference, then the (buffered)
	// heap update. The deletion barrier does not add the overwritten
	// reference to the mutator's roots, but ghost state records that it
	// is protected for the duration of its mark.
	storeSteps := []cimp.Com[*Local]{
		&cimp.LocalOp[*Local]{L: pfx + "_store_pick", F: func(l *Local) []*Local {
			if !hasBudget(l) {
				return nil
			}
			var out []*Local
			targets := l.Mut.Roots
			l.Mut.Roots.Each(func(src heap.Ref) {
				for f := 0; f < c.NFields; f++ {
					targets.Each(func(dst heap.Ref) {
						n := l.Clone()
						spend(n)
						n.Mut.SSrc, n.Mut.SFld, n.Mut.SDst = src, heap.Field(f), dst
						out = append(out, n)
					})
					if c.AllowNilStore {
						n := l.Clone()
						spend(n)
						n.Mut.SSrc, n.Mut.SFld, n.Mut.SDst = src, heap.Field(f), heap.NilRef
						out = append(out, n)
					}
				}
			})
			return out
		}},
		// Load the overwritten reference for the deletion barrier.
		readTo(pfx+"_store_load_old",
			func(l *Local) Loc { return Loc{Kind: LField, R: l.Mut.SSrc, F: l.Mut.SFld} },
			func(l *Local, v Val) { l.Mut.TmpRef = v.Ref() }),
	}
	if !c.NoDeletionBarrier {
		storeSteps = append(storeSteps,
			markCom(pfx+"_delbar", true, c.UnlockedMark, func(l *Local) heap.Ref { return l.Mut.TmpRef }))
	}
	if !c.NoInsertionBarrier {
		ins := markCom(pfx+"_insbar", false, c.UnlockedMark, func(l *Local) heap.Ref { return l.Mut.SDst })
		if c.InsertionBarrierOnlyBeforeRootsDone {
			// §4 observation: one extra thread-local branch removes the
			// insertion barrier across the mark loop.
			ins = cimp.If1(pfx+"_insbar_gate",
				func(l *Local) bool { return !l.Mut.RootsDone }, ins)
		}
		storeSteps = append(storeSteps, ins)
	}
	storeSteps = append(storeSteps,
		writeVal(pfx+"_store_write",
			func(l *Local) Loc { return Loc{Kind: LField, R: l.Mut.SSrc, F: l.Mut.SFld} },
			func(l *Local) Val { return RefVal(l.Mut.SDst) },
			func(l *Local) {
				l.Mut.SSrc, l.Mut.SDst, l.Mut.TmpRef = heap.NilRef, heap.NilRef, heap.NilRef
				l.Mut.SFld = 0
			}),
	)
	store := seqs(storeSteps...)

	// Alloc (Figure 6): an atomic global action at the system. The
	// budget rides in the request: the system refuses an exhausted
	// requester (requests cannot be disabled sender-side).
	alloc := req(pfx+"_alloc",
		func(l *Local) Req { return Req{Kind: RAlloc, Mut: opsLeftOrUnbounded(c, l)} },
		func(l *Local, r Resp) {
			spend(l)
			l.Mut.Roots = l.Mut.Roots.Add(r.Ref)
		})

	// Discard (Figure 6): drop an arbitrary root.
	discard := &cimp.LocalOp[*Local]{L: pfx + "_discard", F: func(l *Local) []*Local {
		if !hasBudget(l) {
			return nil
		}
		var out []*Local
		l.Mut.Roots.Each(func(r heap.Ref) {
			n := l.Clone()
			spend(n)
			n.Mut.Roots = n.Mut.Roots.Remove(r)
			out = append(out, n)
		})
		return out
	}}

	// The mutator's side of a soft handshake (Figure 4): poll the
	// pending bit; if set, load-fence, perform the requested work,
	// store-fence, and signal completion (transferring the private
	// work-list for get-roots and get-work handshakes).
	rootsWork := seqs(
		det(pfx+"_hs_roots_first", func(l *Local) { l.Mut.PendRoots = l.Mut.Roots }),
		&cimp.While[*Local]{L: pfx + "_hs_roots_loop",
			C: func(l *Local) bool { return !l.Mut.PendRoots.Empty() },
			Body: seqs(
				det(pfx+"_hs_root_pick", func(l *Local) {
					l.Mut.TmpRef = l.Mut.PendRoots.Any()
					l.Mut.PendRoots = l.Mut.PendRoots.Remove(l.Mut.TmpRef)
				}),
				markCom(pfx+"_rootmark", false, c.UnlockedMark, func(l *Local) heap.Ref { return l.Mut.TmpRef }),
			)},
	)
	hsDone := req(pfx+"_hs_done",
		func(l *Local) Req {
			r := Req{Kind: RHsDone}
			if l.Mut.HSTy != HSNoop {
				r.WM = l.Mut.WM
			}
			return r
		},
		func(l *Local, _ Resp) {
			if l.Mut.HSTy != HSNoop {
				l.Mut.WM = 0
			}
			l.Mut.HP = hpAfter(l.Mut.HSTag, l.Mut.HP)
			switch l.Mut.HSTag {
			case TagIdle, TagIdleInit, TagInitMark, TagMark:
				// Completing any initialization round starts a
				// new cycle from this mutator's perspective:
				// clear the snapshot ghost and refill the
				// operation budget. Refilling at every
				// initialization round (rather than only the
				// first) keeps the ghost state correct when
				// rounds are elided (E12) — the budget then
				// bounds operations per round rather than per
				// cycle, which is still finite.
				l.Mut.RootsDone = false
				l.Mut.OpsLeft = c.OpBudget
			case TagRoots:
				l.Mut.RootsDone = true
			}
			l.Mut.HSP = false
			l.Mut.HSTy, l.Mut.HSTag = HSNoop, TagNone
			l.Mut.TmpRef = heap.NilRef // root-marking iteration residue
		})

	// The accepted-handshake body; Config.NoHSFence (an ablation the
	// static handshake-fence rule exists to flag) drops both fences.
	var accept []cimp.Com[*Local]
	if !c.NoHSFence {
		accept = append(accept, mfence(pfx+"_hs_mfence_accept"))
	}
	accept = append(accept,
		cimp.If1(pfx+"_hs_is_roots",
			func(l *Local) bool { return l.Mut.HSTy == HSGetRoots },
			rootsWork))
	if !c.NoHSFence {
		accept = append(accept, mfence(pfx+"_hs_mfence_finish"))
	}
	accept = append(accept, hsDone)

	handshake := seqs(
		req(pfx+"_hs_poll",
			func(*Local) Req { return Req{Kind: RHsPoll} },
			func(l *Local, r Resp) {
				if !r.Pending {
					// Not pending: leave no register residue so idle
					// polling is a pure self-loop.
					l.Mut.HSP, l.Mut.HSTy, l.Mut.HSTag = false, HSNoop, TagNone
					return
				}
				l.Mut.HSP, l.Mut.HSTy, l.Mut.HSTag = r.Pending, r.HS, r.Tag
			}),
		cimp.If1(pfx+"_hs_pending",
			func(l *Local) bool { return l.Mut.HSP },
			seqs(accept...)),
	)

	var alts []cimp.Com[*Local]
	if !c.MuteHandshake {
		alts = append(alts, handshake)
	}
	if !c.DisableLoad {
		alts = append(alts, load)
	}
	if !c.DisableStore {
		alts = append(alts, store)
	}
	if !c.DisableAlloc {
		alts = append(alts, alloc)
	}
	if !c.DisableDiscard {
		alts = append(alts, discard)
	}
	if !c.DisableMFence {
		alts = append(alts, mfence(pfx+"_mfence"))
	}

	return &cimp.Loop[*Local]{Body: &cimp.Choose[*Local]{Alts: alts}}
}

// opsLeftOrUnbounded returns the requester's remaining budget, or a
// positive sentinel when budgets are off.
func opsLeftOrUnbounded(c *Config, l *Local) int {
	if c.OpBudget == 0 {
		return 1
	}
	return l.Mut.OpsLeft
}
