package gcmodel

import (
	"repro/internal/cimp"
	"repro/internal/heap"
)

// markCom builds the mark operation of paper Figure 5 as a CIMP program,
// shared verbatim by the collector (mark loop), the mutators' write
// barriers, and the mutators' root-marking handshake handler:
//
//	mark(ref, w):
//	    expected ← not f_M
//	    if flag(ref) = expected
//	        if phase ≠ Idle
//	            atomic // CAS (TSO lock ... unlock)
//	                if flag(ref) = expected // we win
//	                    winner ← true
//	                    flag(ref) ← f_M
//	                    // ghost_honorary_grey ← ref
//	                else winner ← false
//	    if winner
//	        w ← w ∪ {ref}
//	        // ghost_honorary_grey ← null
//
// f_M, flag(ref) and phase are loaded through the TSO machinery; the CAS
// is spelled out as lock / re-load / compare / buffered store / unlock,
// where unlock is enabled only once the store buffer has drained, so the
// mark is globally visible when the locked instruction completes. The
// store writes the f_M value loaded at the top of the operation (it is a
// register operand of the CMPXCHG).
//
// pfx uniquely labels this call site. target fetches the reference to
// mark from the caller's registers; a NULL target skips the operation.
// del records (as ghost state) that this mark is a deletion barrier,
// whose target the safety argument treats as a root for the duration of
// the operation (§3.2). unlocked is the Config.UnlockedMark ablation:
// the re-load / compare / store sequence runs without the TSO lock, so
// it is no longer atomic and the mark store drains at the system's
// leisure instead of before the locked instruction completes.
func markCom(pfx string, del, unlocked bool, target func(*Local) heap.Ref) cimp.Com[*Local] {
	expected := func(l *Local) bool { return !l.mFM() }

	casWin := writeVal(pfx+"_cas_store",
		func(l *Local) Loc { return Loc{Kind: LMark, R: l.mRef()} },
		func(l *Local) Val { return BoolVal(l.mFM()) },
		func(l *Local) {
			l.setWinner(true)
			l.setGHG(l.mRef()) // ghost_honorary_grey ← ref
		})

	casSteps := []cimp.Com[*Local]{
		readTo(pfx+"_cas_load",
			func(l *Local) Loc { return Loc{Kind: LMark, R: l.mRef()} },
			func(l *Local, v Val) { l.setMFlag(v.Bool()) }),
		cimp.If2(pfx+"_cas_cmp",
			func(l *Local) bool { return l.mFlag() == expected(l) },
			casWin,
			det(pfx+"_cas_fail", func(l *Local) { l.setWinner(false) })),
	}
	if !unlocked {
		casSteps = append([]cimp.Com[*Local]{
			req(pfx+"_lock", func(*Local) Req { return Req{Kind: RLock} }, nil)},
			append(casSteps,
				req(pfx+"_unlock", func(*Local) Req { return Req{Kind: RUnlock} }, nil))...)
	}
	cas := seqs(casSteps...)

	body := seqs(
		readTo(pfx+"_load_fM",
			func(*Local) Loc { return Loc{Kind: LFM} },
			func(l *Local, v Val) { l.setMFM(v.Bool()) }),
		readTo(pfx+"_load_flag",
			func(l *Local) Loc { return Loc{Kind: LMark, R: l.mRef()} },
			func(l *Local, v Val) { l.setMFlag(v.Bool()) }),
		cimp.If1(pfx+"_flag_chk",
			func(l *Local) bool { return l.mFlag() == expected(l) },
			seqs(
				readTo(pfx+"_load_phase",
					func(*Local) Loc { return Loc{Kind: LPhase} },
					func(l *Local, v Val) { l.setMPhase(v.Phase()) }),
				cimp.If1(pfx+"_phase_chk",
					func(l *Local) bool { return l.mPhase() != PhIdle },
					cas))),
		cimp.If1(pfx+"_win_chk",
			func(l *Local) bool { return l.winner() },
			det(pfx+"_add_w", func(l *Local) {
				l.setWorklist(l.worklist().Add(l.mRef()))
				l.setGHG(heap.NilRef) // ghost_honorary_grey ← null
			})),
		det(pfx+"_end", func(l *Local) { l.resetMarkRegs() }),
	)

	return seqs(
		det(pfx+"_begin", func(l *Local) {
			l.setMRef(target(l))
			l.setWinner(false)
			l.setInMark(true, del)
		}),
		cimp.If2(pfx+"_null_chk",
			func(l *Local) bool { return l.mRef() != heap.NilRef },
			body,
			det(pfx+"_skip", func(l *Local) { l.resetMarkRegs() })),
	)
}
