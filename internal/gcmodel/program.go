package gcmodel

import (
	"repro/internal/cimp"
	"repro/internal/heap"
)

// Helpers for building collector and mutator programs. Every interaction
// with shared state is a CIMP Request answered by the system process;
// local register updates are deterministic LocalOps.

// seqs folds commands into nested Seq nodes with S fixed to *Local
// (explicit instantiation: Go cannot infer S from concrete command types).
func seqs(cs ...cimp.Com[*Local]) cimp.Com[*Local] { return cimp.Seqs[*Local](cs...) }

// clone adapts Local.Clone to the cimp.Det helper.
func clone(l *Local) *Local { return l.Clone() }

// det builds a deterministic local step that mutates a cloned state.
func det(label string, f func(*Local)) cimp.Com[*Local] {
	return cimp.Det(label, clone, func(l *Local) *Local {
		f(l)
		return l
	})
}

// req builds a Request whose α is derived from the local state and whose
// response updates a cloned local state.
func req(label string, act func(*Local) Req, ret func(*Local, Resp)) cimp.Com[*Local] {
	return &cimp.Request[*Local]{
		L: label,
		Act: func(l *Local) cimp.Msg {
			r := act(l)
			r.P = l.Self
			return r
		},
		Ret: func(l *Local, beta cimp.Msg) []*Local {
			n := l.Clone()
			if ret != nil {
				ret(n, beta.(Resp))
			}
			return []*Local{n}
		},
	}
}

// readTo builds a TSO load of a location into a register.
func readTo(label string, loc func(*Local) Loc, set func(*Local, Val)) cimp.Com[*Local] {
	return req(label,
		func(l *Local) Req { return Req{Kind: RRead, Loc: loc(l)} },
		func(l *Local, r Resp) { set(l, r.Val) })
}

// writeVal builds a TSO (buffered) store of a register-derived value.
func writeVal(label string, loc func(*Local) Loc, val func(*Local) Val, then func(*Local)) cimp.Com[*Local] {
	return req(label,
		func(l *Local) Req { return Req{Kind: RWrite, Loc: loc(l), Val: val(l)} },
		func(l *Local, _ Resp) {
			if then != nil {
				then(l)
			}
		})
}

// mfence builds an MFENCE (completes when the requester's buffer is
// empty).
func mfence(label string) cimp.Com[*Local] {
	return req(label, func(*Local) Req { return Req{Kind: RMFence} }, nil)
}

// pick builds a non-deterministic local step with one successor per
// element of a register-held reference set.
func pick(label string, from func(*Local) heap.RefSet, set func(*Local, heap.Ref)) cimp.Com[*Local] {
	return &cimp.LocalOp[*Local]{L: label, F: func(l *Local) []*Local {
		var out []*Local
		from(l).Each(func(r heap.Ref) {
			n := l.Clone()
			set(n, r)
			out = append(out, n)
		})
		return out
	}}
}
