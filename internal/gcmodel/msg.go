package gcmodel

import (
	"fmt"

	"repro/internal/cimp"
	"repro/internal/heap"
)

// ReqKind classifies requests to the system process.
type ReqKind int

const (
	// RRead loads Loc through the TSO machinery (own buffer, then
	// memory); enabled only while the requester is not blocked by the
	// TSO lock.
	RRead ReqKind = iota
	// RWrite buffers a store; always enabled.
	RWrite
	// RMFence completes only when the requester's buffer is empty.
	RMFence
	// RLock acquires the TSO lock (locked-instruction prefix).
	RLock
	// RUnlock releases the TSO lock; requires an empty buffer.
	RUnlock
	// RAlloc atomically allocates an object at an arbitrary free
	// reference with flag f_A, per the paper's coarse allocation
	// abstraction (§3.1), and returns the reference.
	RAlloc
	// RFree atomically removes an object from the heap (sweep line 44).
	RFree
	// RRefsSnapshot returns the current heap domain (sweep line 38).
	RRefsSnapshot
	// RHsStart sets the handshake type and ghost round tag (collector).
	RHsStart
	// RHsSignal sets the pending bit for one mutator (collector).
	RHsSignal
	// RHsPoll reads the requesting mutator's pending bit and the
	// handshake type/tag.
	RHsPoll
	// RHsDone clears the mutator's pending bit and merges its private
	// work-list into the system work-list.
	RHsDone
	// RHsWaitAll completes only when every pending bit is clear, and
	// returns (and clears) the system work-list.
	RHsWaitAll

	// NumReqKinds is the number of request kinds. The exhaustiveness
	// test in package analysis checks that every kind below it has a
	// String case and a declared-effects entry, so a new kind added
	// without updating either fails fast.
	NumReqKinds = int(RHsWaitAll) + 1
)

func (k ReqKind) String() string {
	switch k {
	case RRead:
		return "read"
	case RWrite:
		return "write"
	case RMFence:
		return "mfence"
	case RLock:
		return "lock"
	case RUnlock:
		return "unlock"
	case RAlloc:
		return "alloc"
	case RFree:
		return "free"
	case RRefsSnapshot:
		return "refs"
	case RHsStart:
		return "hs-start"
	case RHsSignal:
		return "hs-signal"
	case RHsPoll:
		return "hs-poll"
	case RHsDone:
		return "hs-done"
	case RHsWaitAll:
		return "hs-wait-all"
	}
	return fmt.Sprintf("ReqKind(%d)", int(k))
}

// Req is a request message α sent to the system.
type Req struct {
	P    cimp.PID // requesting process
	Kind ReqKind
	Loc  Loc         // for RRead/RWrite
	Val  Val         // for RWrite
	Mut  int         // mutator ordinal, for RHsSignal
	HS   HSType      // for RHsStart
	Tag  RoundTag    // for RHsStart
	WM   heap.RefSet // for RHsDone: the transferred private work-list
}

func (r Req) String() string {
	switch r.Kind {
	case RRead:
		return fmt.Sprintf("p%d read %v", r.P, r.Loc)
	case RWrite:
		return fmt.Sprintf("p%d write %v←%d", r.P, r.Loc, int64(r.Val))
	case RHsStart:
		return fmt.Sprintf("p%d hs-start %v/%v", r.P, r.HS, r.Tag)
	case RHsSignal:
		return fmt.Sprintf("p%d hs-signal m%d", r.P, r.Mut)
	case RHsDone:
		return fmt.Sprintf("p%d hs-done WM=%v", r.P, r.WM)
	default:
		return fmt.Sprintf("p%d %v", r.P, r.Kind)
	}
}

// Resp is a response message β returned by the system.
type Resp struct {
	Val     Val         // for RRead
	Ref     heap.Ref    // for RAlloc
	W       heap.RefSet // for RHsWaitAll and RRefsSnapshot
	Pending bool        // for RHsPoll
	HS      HSType      // for RHsPoll
	Tag     RoundTag    // for RHsPoll
}

func (r Resp) String() string {
	return fmt.Sprintf("resp{val=%d ref=%d W=%v}", int64(r.Val), r.Ref, r.W)
}
