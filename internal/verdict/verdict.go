// Package verdict is the one machine-readable schema for every verdict
// this repository emits. gcmc -json, gclint -json, the gcmcd service
// (job records, the verdict cache, /v1/verdicts) and gcmc -remote all
// marshal these types, so a verdict produced anywhere round-trips
// everywhere: a cached service verdict prints exactly like a local run,
// and a golden-file test pins the wire format.
//
// Records carry a schema tag ("gcmc.verdict/v1") and the identity of
// the build that produced them (internal/buildinfo), so a cache filled
// by one build is auditable by the next. The non-deterministic fields —
// wall-clock timings, checkpoint counts, build identity, cache
// provenance — are isolated behind Canonical(), which zeroes them: two
// runs of the same configuration are byte-identical in canonical form
// even when one was interrupted, checkpointed and resumed.
package verdict

import (
	"encoding/json"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/explore"
)

// Schema is the wire-format tag embedded in every Record.
const Schema = "gcmc.verdict/v1"

// Record is the machine-readable outcome of one verification run.
type Record struct {
	Schema string `json:"schema"`
	// Build identifies the binary that produced the verdict (omitted in
	// canonical form).
	Build string `json:"build,omitempty"`
	// Preset and Ablations name the configuration; Fingerprint is the
	// %016x options fingerprint the verdict cache keys by.
	Preset      string `json:"preset,omitempty"`
	Ablations   string `json:"ablations,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Verdict is core.VerifyResult.Status(): verified | no-violation |
	// violation | liveness-violation.
	Verdict     string  `json:"verdict"`
	States      int     `json:"states"`
	Transitions int     `json:"transitions"`
	Depth       int     `json:"depth"`
	Complete    bool    `json:"complete"`
	Stopped     string  `json:"stopped,omitempty"`
	Checkpoints int     `json:"checkpoints,omitempty"`
	Deadlocks   int     `json:"deadlocks"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	// Cached marks a verdict served from the service's cache rather
	// than a fresh exploration.
	Cached bool `json:"cached,omitempty"`

	Violation *Violation `json:"violation,omitempty"`
	Liveness  *Liveness  `json:"liveness,omitempty"`
}

// Violation describes a safety counterexample.
type Violation struct {
	Invariant string `json:"invariant"`
	Depth     int    `json:"depth"`
	TraceLen  int    `json:"trace_len"`
	// Rendered is the human-readable counterexample trace, so remote
	// and cached verdicts still show the full failing run.
	Rendered string `json:"rendered,omitempty"`
}

// Liveness is the fair-cycle pass summary.
type Liveness struct {
	States      int        `json:"states"`
	Transitions int        `json:"transitions"`
	Depth       int        `json:"depth"`
	Complete    bool       `json:"complete"`
	Stopped     string     `json:"stopped,omitempty"`
	ElapsedSec  float64    `json:"elapsed_sec"`
	Holds       bool       `json:"holds"`
	Properties  []Property `json:"properties"`
}

// Property is one progress-property verdict.
type Property struct {
	Name     string `json:"name"`
	Desc     string `json:"desc,omitempty"`
	Holds    bool   `json:"holds"`
	StemLen  int    `json:"stem_len,omitempty"`
	CycleLen int    `json:"cycle_len,omitempty"`
	Rendered string `json:"rendered,omitempty"`
}

// New builds a Record from a finished run. preset and ablations label
// the configuration (ablations may be empty); fp is the options
// fingerprint (0 omits the field).
func New(preset string, ablations core.Ablations, fp uint64, res core.VerifyResult) Record {
	r := Record{
		Schema:      Schema,
		Preset:      preset,
		Ablations:   ablations.String(),
		Verdict:     res.Status(),
		States:      res.States,
		Transitions: res.Transitions,
		Depth:       res.Depth,
		Complete:    res.Complete,
		Stopped:     string(res.Stopped),
		Checkpoints: res.Checkpoints,
		Deadlocks:   res.Deadlocks,
		ElapsedSec:  res.Elapsed.Seconds(),
	}
	if fp != 0 {
		r.Fingerprint = fmt.Sprintf("%016x", fp)
	}
	if res.Violation != nil {
		r.Violation = &Violation{
			Invariant: res.Violation.Invariant,
			Depth:     res.Violation.Depth,
			TraceLen:  len(res.Violation.Trace),
			Rendered:  res.RenderViolation(),
		}
	}
	if lr := res.Liveness; lr != nil {
		l := &Liveness{
			States:      lr.States,
			Transitions: lr.Transitions,
			Depth:       lr.Depth,
			Complete:    lr.Complete,
			Stopped:     string(lr.Stopped),
			ElapsedSec:  lr.Elapsed.Seconds(),
			Holds:       lr.Holds(),
		}
		for _, p := range lr.Properties {
			jp := Property{Name: p.Name, Desc: p.Desc, Holds: p.Holds}
			if c := p.Counterexample; c != nil {
				jp.StemLen, jp.CycleLen = len(c.Stem), len(c.Cycle)
				if res.Model != nil {
					jp.Rendered = c.Render(res.Model)
				}
			}
			l.Properties = append(l.Properties, jp)
		}
		r.Liveness = l
	}
	return r
}

// Canonical returns the record with every non-deterministic field
// zeroed: build identity, wall-clock timings, checkpoint counts and
// cache provenance. Two runs of the same configuration — including one
// that crashed mid-run and resumed from a checkpoint — marshal to
// byte-identical canonical records.
func (r Record) Canonical() Record {
	r.Build = ""
	r.ElapsedSec = 0
	r.Checkpoints = 0
	r.Cached = false
	if r.Liveness != nil {
		l := *r.Liveness
		l.ElapsedSec = 0
		r.Liveness = &l
	}
	return r
}

// Marshal renders the record as indented JSON with a trailing newline
// (the exact bytes every emitter writes).
func (r Record) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("verdict: %w", err)
	}
	return append(b, '\n'), nil
}

// Interrupted reports whether the run (either pass) stopped on a
// cancellation signal — the CLIs map it to exit status 130.
func (r Record) Interrupted() bool {
	return r.Stopped == string(explore.StopInterrupted) ||
		(r.Liveness != nil && r.Liveness.Stopped == string(explore.StopInterrupted))
}

// ExitCode maps the verdict to the shared CLI exit convention:
// 1 for any violation, 130 for an interrupted run, 0 otherwise.
func (r Record) ExitCode() int {
	switch {
	case r.Verdict == "violation" || r.Verdict == "liveness-violation":
		return 1
	case r.Interrupted():
		return 130
	}
	return 0
}

// --- Lint reports (gclint -json) ---

// ModelLint is the machine-readable model lint report.
type ModelLint struct {
	Schema   string        `json:"schema"` // "gclint.model/v1"
	Preset   string        `json:"preset"`
	Clean    bool          `json:"clean"`
	Findings []LintFinding `json:"findings,omitempty"`
	Relaxed  []RelaxedPair `json:"relaxed,omitempty"`
	Fences   []FenceCover  `json:"fence_coverage,omitempty"`
}

// LintSchema and LitmusSchema tag the two lint report shapes.
const (
	LintSchema   = "gclint.model/v1"
	LitmusSchema = "gclint.litmus/v1"
)

type LintFinding struct {
	Rule   string `json:"rule"`
	PID    int    `json:"pid"`
	Label  string `json:"label"`
	Detail string `json:"detail"`
}

type RelaxedPair struct {
	PID   int    `json:"pid"`
	Store string `json:"store"`
	Load  string `json:"load"`
}

type FenceCover struct {
	PID    int    `json:"pid"`
	Label  string `json:"label"`
	Covers int    `json:"covers"`
}

// LitmusLint is the machine-readable litmus robustness report for one
// program.
type LitmusLint struct {
	Schema   string   `json:"schema"`
	Name     string   `json:"name"`
	Robust   bool     `json:"robust"`
	Critical []string `json:"critical,omitempty"`
	// Dynamic is the ground-truth verdict (TSO outcome set == SC
	// outcome set), present when the dynamic cross-check ran.
	Dynamic *bool `json:"dynamic_robust,omitempty"`
}

// GoSrcSchema tags the Go-source lint report (gclint -gosrc -json).
const GoSrcSchema = "gclint.gosrc/v1"

// GoSrcLint is the machine-readable report of gclint -gosrc: the
// checker's and runtime's own Go source swept by every conformance
// pass (fingerprint map order, goroutine recover guards, and the
// gortlint discipline/barrier/publication/hook passes).
type GoSrcLint struct {
	Schema string `json:"schema"`
	// Clean is true iff every pass produced zero findings.
	Clean  bool        `json:"clean"`
	Passes []GoSrcPass `json:"passes"`
}

// GoSrcPass is one analysis pass over one load root.
type GoSrcPass struct {
	Pass     string         `json:"pass"`
	Dir      string         `json:"dir"`
	Clean    bool           `json:"clean"`
	Findings []GoSrcFinding `json:"findings,omitempty"`
}

// GoSrcFinding is one source-level finding. Pos is module-root
// relative (file:line:col) so reports are stable across checkouts.
type GoSrcFinding struct {
	Pos     string `json:"pos"`
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
}

// FromModelReport converts a static model lint into the wire shape.
// The informational relaxed pairs and fence coverage are included only
// when relaxed is set (mirroring gclint -relaxed).
func FromModelReport(preset string, rep *analysis.ModelReport, relaxed bool) ModelLint {
	v := ModelLint{Schema: LintSchema, Preset: preset, Clean: rep.Clean()}
	for _, f := range rep.Findings {
		v.Findings = append(v.Findings, LintFinding{Rule: f.Rule, PID: int(f.PID), Label: f.Label, Detail: f.Detail})
	}
	if relaxed {
		for _, p := range rep.Relaxed {
			v.Relaxed = append(v.Relaxed, RelaxedPair{PID: int(p.PID), Store: p.Store, Load: p.Load})
		}
		for _, c := range rep.FenceCoverage {
			v.Fences = append(v.Fences, FenceCover{PID: int(c.PID), Label: c.Label, Covers: c.Covers})
		}
	}
	return v
}

// FromTSOReport converts a litmus robustness report into the wire
// shape; dynamic is the optional exploration cross-check verdict.
func FromTSOReport(name string, rep analysis.TSOReport, dynamic *bool) LitmusLint {
	j := LitmusLint{Schema: LitmusSchema, Name: name, Robust: rep.Robust, Dynamic: dynamic}
	for _, p := range rep.Critical {
		j.Critical = append(j.Critical, p.String())
	}
	return j
}
