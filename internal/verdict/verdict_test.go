package verdict_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/verdict"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// record runs a spec and returns its canonical verdict record.
func record(t *testing.T, spec core.JobSpec) verdict.Record {
	t.Helper()
	cfg, opt, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := core.Verify(cfg, opt)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	fp, _, err := spec.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	rec := verdict.New(spec.Preset, spec.Ablations, fp, res)
	rec.Build = "test-build" // prove Canonical strips it
	return rec.Canonical()
}

// TestGolden pins the wire format: the canonical JSON of a bounded
// clean run and of a violation run must match the checked-in golden
// files byte for byte. Run with -update to regenerate after a
// deliberate schema change.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		spec core.JobSpec
		exit int
	}{
		{
			name: "no-violation",
			spec: core.JobSpec{Preset: "tiny", Options: core.JobOptions{MaxDepth: 12}},
			exit: 0,
		},
		{
			name: "violation",
			spec: core.JobSpec{
				Preset:    "tiny",
				Ablations: core.Ablations{NoDeletionBarrier: true},
				Options:   core.JobOptions{Workers: 1, MaxDepth: 50},
			},
			exit: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := record(t, tc.spec)
			got, err := rec.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("canonical record drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
			if rec.Build != "" {
				t.Errorf("Canonical kept Build %q", rec.Build)
			}
			if code := rec.ExitCode(); code != tc.exit {
				t.Errorf("ExitCode = %d, want %d", code, tc.exit)
			}
		})
	}
}

// TestCanonicalZeroing checks that every non-deterministic field is
// stripped without mutating the receiver's liveness block.
func TestCanonicalZeroing(t *testing.T) {
	orig := verdict.Record{
		Schema:      verdict.Schema,
		Build:       "b",
		ElapsedSec:  1.5,
		Checkpoints: 3,
		Cached:      true,
		Liveness:    &verdict.Liveness{ElapsedSec: 2.5, Holds: true},
	}
	canon := orig.Canonical()
	if canon.Build != "" || canon.ElapsedSec != 0 || canon.Checkpoints != 0 || canon.Cached {
		t.Errorf("Canonical left non-deterministic fields: %+v", canon)
	}
	if canon.Liveness.ElapsedSec != 0 || !canon.Liveness.Holds {
		t.Errorf("Canonical mishandled liveness: %+v", canon.Liveness)
	}
	if orig.Liveness.ElapsedSec != 2.5 {
		t.Errorf("Canonical mutated the original liveness block")
	}
}

// TestGoSrcLintGolden pins the gclint.gosrc/v1 wire format: a fixed
// report (one clean pass, one pass with a finding) must marshal to the
// checked-in golden file byte for byte.
func TestGoSrcLintGolden(t *testing.T) {
	rep := verdict.GoSrcLint{
		Schema: verdict.GoSrcSchema,
		Clean:  false,
		Passes: []verdict.GoSrcPass{
			{
				Pass:  "gcrt-discipline",
				Dir:   "internal/gcrt",
				Clean: true,
			},
			{
				Pass:  "goroutine-recover-guard",
				Dir:   "internal/server",
				Clean: false,
				Findings: []verdict.GoSrcFinding{
					{
						Pos:     "internal/server/server.go:12:2",
						Func:    "worker",
						Message: "goroutine has no deferred recover guard: a worker panic kills the whole run",
					},
				},
			},
		},
	}
	if rep.Schema != verdict.GoSrcSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, verdict.GoSrcSchema)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "gosrc_lint.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("gosrc lint report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
