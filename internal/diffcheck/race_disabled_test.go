//go:build !race

package diffcheck

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
