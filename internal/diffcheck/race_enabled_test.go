//go:build race

package diffcheck

// raceEnabled reports whether the race detector is compiled in. The
// heavy corpus entries (~200k-state uncapped explorations) multiply
// their wall-clock by the detector's ~10-20x slowdown; the fast entries
// already exercise every reduction mode under -race, so the heavy ones
// skip themselves.
const raceEnabled = true
