package diffcheck

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/tso"
)

// This file generates and minimizes random litmus programs for the
// property-based half of the differential harness. Programs are drawn
// small — 2–3 threads of 1–3 instructions over two addresses — because
// the interesting reduction bugs (a load taken eagerly while another
// thread still holds a buffered store to the same address, a store
// commit racing a fence) all manifest within that envelope, and small
// programs keep 100+ exhaustive double-explorations cheap.

// RandProgram draws a random program from rnd: 2–3 threads, 1–3
// instructions each, two shared addresses, two registers per thread.
// The instruction mix is biased toward the racy store/load core (3:3)
// with occasional fences and CASes (1:1). Generation is a pure function
// of the rand stream, so a failing seed reproduces exactly.
func RandProgram(rnd *rand.Rand) tso.Program {
	p := tso.Program{NumAddrs: 2, NumRegs: 2}
	nthreads := 2 + rnd.Intn(2)
	for t := 0; t < nthreads; t++ {
		n := 1 + rnd.Intn(3)
		th := make([]tso.Instr, 0, n)
		for i := 0; i < n; i++ {
			addr := tso.Addr(rnd.Intn(2))
			reg := tso.Reg(rnd.Intn(2))
			switch k := rnd.Intn(8); {
			case k < 3:
				th = append(th, tso.St{Addr: addr, Val: tso.Word(1 + rnd.Intn(2))})
			case k < 6:
				th = append(th, tso.Ld{Dst: reg, Addr: addr})
			case k < 7:
				th = append(th, tso.MFence{})
			default:
				th = append(th, tso.CAS{Dst: reg, Addr: addr,
					Old: tso.Word(rnd.Intn(2)), New: tso.Word(1 + rnd.Intn(2))})
			}
		}
		p.Threads = append(p.Threads, th)
	}
	return p
}

// Shrink greedily minimizes a failing program: it repeatedly tries
// dropping a whole thread, then a single instruction, keeping any
// removal after which fails still reports true, until no removal
// preserves the failure. Deterministic given a deterministic predicate.
func Shrink(p tso.Program, fails func(tso.Program) bool) tso.Program {
	for changed := true; changed; {
		changed = false
		for t := 0; t < len(p.Threads) && !changed; t++ {
			q := cloneProgram(p)
			q.Threads = append(q.Threads[:t], q.Threads[t+1:]...)
			if len(q.Threads) > 0 && fails(q) {
				p, changed = q, true
			}
		}
		for t := 0; t < len(p.Threads) && !changed; t++ {
			for i := 0; i < len(p.Threads[t]) && !changed; i++ {
				q := cloneProgram(p)
				q.Threads[t] = append(q.Threads[t][:i:i], q.Threads[t][i+1:]...)
				if fails(q) {
					p, changed = q, true
				}
			}
		}
	}
	return p
}

func cloneProgram(p tso.Program) tso.Program {
	q := p
	q.Threads = make([][]tso.Instr, len(p.Threads))
	for i, th := range p.Threads {
		q.Threads[i] = append([]tso.Instr(nil), th...)
	}
	if p.InitMem != nil {
		q.InitMem = make(map[tso.Addr]tso.Word, len(p.InitMem))
		for a, v := range p.InitMem {
			q.InitMem[a] = v
		}
	}
	return q
}

// FormatProgram renders a program one thread per line for failure
// reports, e.g. "T0: [0]=1; r0=[1];".
func FormatProgram(p tso.Program) string {
	var b strings.Builder
	for t, th := range p.Threads {
		fmt.Fprintf(&b, "T%d:", t)
		for _, in := range th {
			fmt.Fprintf(&b, " %s;", instrString(in))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func instrString(in tso.Instr) string {
	switch in := in.(type) {
	case tso.Ld:
		return fmt.Sprintf("r%d=[%d]", in.Dst, in.Addr)
	case tso.St:
		return fmt.Sprintf("[%d]=%d", in.Addr, in.Val)
	case tso.MFence:
		return "mfence"
	case tso.CAS:
		return fmt.Sprintf("r%d=cas([%d],%d,%d)", in.Dst, in.Addr, in.Old, in.New)
	case tso.XchgAdd:
		return fmt.Sprintf("r%d=xadd([%d],%d)", in.Dst, in.Addr, in.Inc)
	}
	return fmt.Sprintf("%#v", in)
}
