package diffcheck

import (
	"math/rand"
	"testing"

	"repro/internal/litmus"
	"repro/internal/tso"
)

func modelName(m tso.Model) string {
	if m == tso.SC {
		return "SC"
	}
	return "TSO"
}

// TestLitmusDifferential runs every published litmus test under both
// memory models with and without partial-order reduction: the
// terminal-outcome sets must be identical, the reduced run must not
// visit more states, and the witness must remain observable exactly
// when the published tables say it is.
func TestLitmusDifferential(t *testing.T) {
	for _, tc := range litmus.All() {
		for _, model := range []tso.Model{tso.TSO, tso.SC} {
			t.Run(tc.Name+"/"+modelName(model), func(t *testing.T) {
				c, err := CompareTSO(tc.Prog, model)
				if err != nil {
					t.Fatalf("differential failure:\n%s%v", FormatProgram(tc.Prog), err)
				}
				expected := tc.TSO
				if model == tso.SC {
					expected = tc.SC
				}
				for _, run := range []struct {
					name string
					res  tso.ExploreResult
				}{{"full", c.Full}, {"reduced", c.Reduced}} {
					observed := false
					for _, o := range run.res.Outcomes {
						if tc.Witness(o) {
							observed = true
							break
						}
					}
					if observed != expected {
						t.Errorf("%s exploration: witness observed=%v, published expectation %v",
							run.name, observed, expected)
					}
				}
				t.Logf("states %d -> %d (ample %d)", c.Full.States, c.Reduced.States, c.Reduced.AmpleStates)
			})
		}
	}
}

// TestLitmusReductionShrinks asserts the reduction is not vacuous: it
// must strictly shrink the visited state space on at least one litmus
// test (in fact it shrinks most of them).
func TestLitmusReductionShrinks(t *testing.T) {
	var full, reduced, shrunk int
	for _, tc := range litmus.All() {
		c, err := CompareTSO(tc.Prog, tso.TSO)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		full += c.Full.States
		reduced += c.Reduced.States
		if c.Reduced.States < c.Full.States {
			shrunk++
		}
	}
	if shrunk == 0 {
		t.Fatalf("reduction shrank no litmus test (full total %d, reduced total %d)", full, reduced)
	}
	t.Logf("reduction shrank %d litmus tests; total states %d -> %d (%.2fx)",
		shrunk, full, reduced, float64(full)/float64(reduced))
}

// TestRandomProgramsDifferential is the property-based half of the
// harness: 120 deterministically seeded random programs, each explored
// in full and reduced under both memory models. A failing program is
// shrunk to a minimal reproducer before reporting, and the seed in the
// failure message reproduces the run exactly.
func TestRandomProgramsDifferential(t *testing.T) {
	const seeds = 120
	for seed := int64(0); seed < seeds; seed++ {
		p := RandProgram(rand.New(rand.NewSource(seed)))
		for _, model := range []tso.Model{tso.TSO, tso.SC} {
			if _, err := CompareTSO(p, model); err != nil {
				fails := func(q tso.Program) bool {
					_, e := CompareTSO(q, model)
					return e != nil
				}
				small := Shrink(p, fails)
				_, serr := CompareTSO(small, model)
				t.Fatalf("seed %d under %s: %v\nprogram:\n%sshrunk reproducer:\n%s%v",
					seed, modelName(model), err, FormatProgram(p), FormatProgram(small), serr)
			}
		}
	}
}

// TestShrinkMinimizes sanity-checks the shrinker itself on a synthetic
// predicate: "has a store to address 0 and a load of address 0 in
// different threads" must shrink to exactly one store and one load.
func TestShrinkMinimizes(t *testing.T) {
	pred := func(p tso.Program) bool {
		st, ld := -1, -1
		for t, th := range p.Threads {
			for _, in := range th {
				switch in := in.(type) {
				case tso.St:
					if in.Addr == 0 {
						st = t
					}
				case tso.Ld:
					if in.Addr == 0 {
						ld = t
					}
				}
			}
		}
		return st >= 0 && ld >= 0 && st != ld
	}
	p := RandProgram(rand.New(rand.NewSource(99)))
	p.Threads = append(p.Threads, []tso.Instr{tso.St{Addr: 0, Val: 1}, tso.MFence{}})
	p.Threads = append(p.Threads, []tso.Instr{tso.Ld{Dst: 0, Addr: 0}, tso.Ld{Dst: 1, Addr: 1}})
	if !pred(p) {
		t.Fatal("setup: predicate should hold on the seeded program")
	}
	small := Shrink(p, pred)
	if !pred(small) {
		t.Fatal("shrink broke the predicate")
	}
	total := 0
	for _, th := range small.Threads {
		total += len(th)
	}
	if len(small.Threads) != 2 || total != 2 {
		t.Fatalf("shrink left a non-minimal program (%d threads, %d instrs):\n%s",
			len(small.Threads), total, FormatProgram(small))
	}
}
