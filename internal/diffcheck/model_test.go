package diffcheck

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/gcmodel"
	"repro/internal/invariant"
)

// corpusEntry is one collector-model configuration of the differential
// corpus, with the reduction modes expected to strictly shrink it.
type corpusEntry struct {
	name string
	cfg  gcmodel.Config
	// strict lists mode names whose reduced run must visit strictly
	// fewer states than the full run (the ISSUE acceptance criterion);
	// modes not listed only need the sound "no more states" bound.
	strict []string
	// heavy marks entries skipped under the race detector, where their
	// ~200k-state explorations would take minutes. The remaining
	// entries still exercise every mode under -race.
	heavy bool
}

// tinySmall is TinyConfig shrunk one notch (budget 1, buffer 1) so that
// four uncapped explorations stay under ~15s total.
func tinySmall() gcmodel.Config {
	cfg := core.TinyConfig()
	cfg.OpBudget = 1
	cfg.MaxBuf = 1
	return cfg
}

func corpus() []corpusEntry {
	tinySC := tinySmall()
	tinySC.SCMemory = true

	symHS := core.SymmetricConfig()
	symHS.DisableStore = true

	tinyDel := tinySmall()
	tinyDel.NoDeletionBarrier = true

	symDel := core.SymmetricConfig()
	symDel.NoDeletionBarrier = true

	return []corpusEntry{
		// Safe single-mutator configuration under TSO: the main
		// partial-order-reduction workload.
		{name: "tiny", cfg: tinySmall(), strict: []string{"reduce", "reduce+symmetry"}, heavy: true},
		// The SC oracle: reduction logic takes the SCMemory paths.
		{name: "tiny-sc", cfg: tinySC, strict: []string{"reduce", "reduce+symmetry"}, heavy: true},
		// Two interchangeable mutators, handshake-only: small enough to
		// run everywhere and the one config where symmetry must fold.
		{name: "sym-handshake", cfg: symHS, strict: []string{"reduce", "symmetry", "reduce+symmetry"}},
		// Ablated (violating) configurations: verdict preservation and
		// counterexample replay on the buggy side of the fence.
		{name: "tiny-no-deletion-barrier", cfg: tinyDel},
		{name: "sym-no-deletion-barrier", cfg: symDel, strict: []string{"reduce", "symmetry", "reduce+symmetry"}},
	}
}

// TestModelCorpusDifferential is the collector-model half of the
// harness: every corpus configuration is explored in full and under
// every reduction mode; verdicts must match, reduced state counts must
// not exceed the full count (strictly smaller where declared), and
// every counterexample must replay through the unreduced relation.
func TestModelCorpusDifferential(t *testing.T) {
	for _, e := range corpus() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			if e.heavy && raceEnabled {
				t.Skip("heavy corpus entry skipped under -race")
			}
			c, err := CompareModel(e.cfg, Modes())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Check(); err != nil {
				t.Fatal(err)
			}
			verdict := "holds"
			if c.Full.Violation != nil {
				verdict = "violates " + c.Full.Violation.Invariant
			}
			t.Logf("full: states=%d depth=%d (%s)", c.Full.States, c.Full.Depth, verdict)
			for _, r := range c.Runs {
				t.Logf("%-16s states=%d (%.2fx) ample=%d", r.Mode.Name, r.Result.States,
					float64(c.Full.States)/float64(r.Result.States), r.Result.AmpleStates)
				for _, want := range e.strict {
					if r.Mode.Name == want && r.Result.States >= c.Full.States {
						t.Errorf("%s: expected strictly fewer states than full (%d), got %d",
							r.Mode.Name, c.Full.States, r.Result.States)
					}
				}
			}
		})
	}
}

// TestCounterexampleReplayUnderReduction pins the replay property on
// its own: a violation found with BOTH reductions active must still be
// a concrete run of the unreduced system ending in a violating state.
// (TestModelCorpusDifferential exercises the same property across the
// corpus; this test keeps a direct, cheap witness of it.)
func TestCounterexampleReplayUnderReduction(t *testing.T) {
	cfg := tinySmall()
	cfg.NoDeletionBarrier = true
	m, err := gcmodel.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checks := invariant.All()
	res := explore.Run(m, checks, explore.Options{
		Trace: true, HashOnly: true, Reduce: true, Symmetry: true,
	})
	if res.Violation == nil {
		t.Fatal("deletion-barrier ablation should violate an invariant")
	}
	if err := VerifyReplay(m, res.Violation, checks); err != nil {
		t.Fatal(err)
	}
	t.Logf("replayed a %d-step counterexample (%s at depth %d) through the unreduced relation",
		len(res.Violation.Trace), res.Violation.Invariant, res.Violation.Depth)
}

// TestVerifyReplayRejectsTamperedTraces makes sure the replay verifier
// has teeth: corrupting a recorded step must make it fail.
func TestVerifyReplayRejectsTamperedTraces(t *testing.T) {
	cfg := tinySmall()
	cfg.NoDeletionBarrier = true
	m, err := gcmodel.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checks := invariant.All()
	res := explore.Run(m, checks, explore.Options{Trace: true, HashOnly: true, Reduce: true})
	if res.Violation == nil || len(res.Violation.Trace) < 2 {
		t.Fatal("need a multi-step counterexample")
	}
	bad := *res.Violation
	bad.Trace = append([]explore.Step(nil), res.Violation.Trace...)
	mid := len(bad.Trace) / 2
	bad.Trace[mid].Ev.Label = "no-such-label"
	if err := VerifyReplay(m, &bad, checks); err == nil {
		t.Fatal("replay accepted a trace with a corrupted event")
	}
	bad = *res.Violation
	bad.Trace = nil
	if err := VerifyReplay(m, &bad, checks); err == nil {
		t.Fatal("replay accepted a violation without a trace")
	}
}
