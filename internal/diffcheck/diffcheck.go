// Package diffcheck is the differential-testing harness that proves the
// model checker's state-space reductions sound in practice. The
// reductions under test are:
//
//   - the TSO-aware partial-order reduction of the litmus explorer
//     (tso.ExploreOptions.Reduce) and of the collector-model checker
//     (explore.Options.Reduce), which at states with a provably
//     commuting "safe" buffer-local step pursue only that step; and
//   - the mutator-symmetry canonicalization of the collector-model
//     checker (explore.Options.Symmetry), which folds visited states
//     that differ only by a standing-class-preserving permutation of
//     the mutators.
//
// Both reductions come with pen-and-paper commutation arguments (see
// gcmodel/reduce.go, gcmodel/symmetry.go, and DESIGN.md), but the
// arguments are subtle — an earlier draft wrongly classified
// store-forwarded reads as safe — so this package re-derives the
// soundness claim empirically on every run of the test suite:
//
//   - every published litmus test and a corpus of randomly generated
//     small TSO programs must produce the identical terminal-outcome
//     set with and without reduction (witness observability included);
//   - a corpus of collector-model configurations, safe and ablated,
//     must produce the identical verdict under every reduction mode;
//   - every counterexample found under reduction must replay step by
//     step through the UNREDUCED transition relation and end in a
//     state that violates the reported invariant; and
//   - reduced runs must never visit more states than full runs.
//
// The harness is a permanent regression suite: any future change to the
// safe-step classification or the canonicalization that breaks
// soundness on the covered configurations fails these tests.
package diffcheck

import (
	"fmt"

	"repro/internal/cimp"
	"repro/internal/explore"
	"repro/internal/gcmodel"
	"repro/internal/invariant"
	"repro/internal/tso"
)

// --- TSO litmus-program differential ------------------------------------

// TSOComparison pairs the full and reduced explorations of one litmus
// program under one memory model.
type TSOComparison struct {
	Full    tso.ExploreResult
	Reduced tso.ExploreResult
}

// CompareTSO explores p twice — exhaustively and under partial-order
// reduction — and checks the soundness obligations: identical
// terminal-outcome sets (so every witness observable in full remains
// observable reduced, and no new witness appears) and no more visited
// states. The explorations themselves are returned so callers can make
// further assertions (e.g. that the reduction actually shrank a
// particular program).
func CompareTSO(p tso.Program, model tso.Model) (TSOComparison, error) {
	c := TSOComparison{
		Full:    tso.ExploreX(p, model, tso.ExploreOptions{}),
		Reduced: tso.ExploreX(p, model, tso.ExploreOptions{Reduce: true}),
	}
	full, reduced := tso.OutcomeKeys(c.Full.Outcomes), tso.OutcomeKeys(c.Reduced.Outcomes)
	if len(full) != len(reduced) {
		return c, fmt.Errorf("outcome sets differ (%d full vs %d reduced):\n  full:    %v\n  reduced: %v",
			len(full), len(reduced), full, reduced)
	}
	for i := range full {
		if full[i] != reduced[i] {
			return c, fmt.Errorf("outcome sets differ at %q vs %q:\n  full:    %v\n  reduced: %v",
				full[i], reduced[i], full, reduced)
		}
	}
	if c.Reduced.States > c.Full.States {
		return c, fmt.Errorf("reduced run visited %d states, more than the full run's %d",
			c.Reduced.States, c.Full.States)
	}
	return c, nil
}

// --- Collector-model differential ---------------------------------------

// Mode names one reduced configuration of the collector-model checker.
type Mode struct {
	Name     string
	Reduce   bool
	Symmetry bool
}

// Modes returns every reduced checker configuration that the harness
// validates against the full exploration.
func Modes() []Mode {
	return []Mode{
		{Name: "reduce", Reduce: true},
		{Name: "symmetry", Symmetry: true},
		{Name: "reduce+symmetry", Reduce: true, Symmetry: true},
	}
}

// ModelRun is one reduced exploration of a configuration.
type ModelRun struct {
	Mode   Mode
	Result explore.Result
}

// ModelComparison holds one full exploration of a configuration plus a
// reduced re-exploration per mode, all over the same built model.
type ModelComparison struct {
	Model  *gcmodel.Model
	Checks []invariant.Check
	Full   explore.Result
	Runs   []ModelRun
}

// CompareModel builds cfg once, explores it in full, and re-explores it
// once per mode. All runs are uncapped (capped runs are not comparable:
// a reduction may defer work past an arbitrary state bound) and record
// counterexample traces. Use Check to validate the results.
func CompareModel(cfg gcmodel.Config, modes []Mode) (*ModelComparison, error) {
	m, err := gcmodel.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("diffcheck: %w", err)
	}
	c := &ModelComparison{Model: m, Checks: invariant.All()}
	c.Full = explore.Run(m, c.Checks, explore.Options{Trace: true, HashOnly: true})
	for _, mode := range modes {
		res := explore.Run(m, c.Checks, explore.Options{
			Trace: true, HashOnly: true,
			Reduce: mode.Reduce, Symmetry: mode.Symmetry,
		})
		c.Runs = append(c.Runs, ModelRun{Mode: mode, Result: res})
	}
	return c, nil
}

// Check validates the soundness obligations of every reduced run
// against the full run: the same verdict (a violation is found iff the
// full exploration finds one), no more visited states, and — wherever a
// violation is reported, including by the full run — a counterexample
// that replays through the unreduced transition relation.
func (c *ModelComparison) Check() error {
	if c.Full.Violation != nil {
		if err := VerifyReplay(c.Model, c.Full.Violation, c.Checks); err != nil {
			return fmt.Errorf("full: %w", err)
		}
	}
	for _, r := range c.Runs {
		if gotViol, wantViol := r.Result.Violation != nil, c.Full.Violation != nil; gotViol != wantViol {
			return fmt.Errorf("%s: verdict differs from full exploration: violation %v vs %v",
				r.Mode.Name, r.Result.Violation, c.Full.Violation)
		}
		if r.Result.States > c.Full.States {
			return fmt.Errorf("%s: visited %d states, more than the full run's %d",
				r.Mode.Name, r.Result.States, c.Full.States)
		}
		if r.Result.Violation != nil {
			if err := VerifyReplay(c.Model, r.Result.Violation, c.Checks); err != nil {
				return fmt.Errorf("%s: %w", r.Mode.Name, err)
			}
		}
	}
	return nil
}

// VerifyReplay walks a counterexample step by step through the model's
// UNREDUCED transition relation: each recorded step must correspond to
// an enabled successor (matched by mover, label, and state
// fingerprint), and the final state must actually violate the reported
// invariant. This is the property that makes reduced counterexamples
// trustworthy — a trace found with interleavings pruned is still a
// concrete run of the original system.
func VerifyReplay(m *gcmodel.Model, v *explore.Violation, checks []invariant.Check) error {
	if v == nil {
		return nil
	}
	if len(v.Trace) == 0 {
		return fmt.Errorf("replay: violation carries no trace (explore.Options.Trace off?)")
	}
	cur := m.Initial()
	for i, step := range v.Trace {
		want := m.Fingerprint(step.State)
		found := false
		m.Successors(cur, func(next cimp.System[*gcmodel.Local], ev cimp.Event) {
			if found || ev.Proc != step.Ev.Proc || ev.Label != step.Ev.Label {
				return
			}
			if m.Fingerprint(next) == want {
				found = true
			}
		})
		if !found {
			return fmt.Errorf("replay: step %d/%d (proc %d %q) has no matching successor in the unreduced relation",
				i+1, len(v.Trace), step.Ev.Proc, step.Ev.Label)
		}
		cur = step.State
	}
	if got := m.Fingerprint(cur); got != m.Fingerprint(v.State) {
		return fmt.Errorf("replay: trace ends at a state other than the recorded violating state")
	}
	view := invariant.NewView(gcmodel.Global{Model: m, State: v.State})
	for _, c := range checks {
		if c.Name == v.Invariant {
			if err := c.Pred(view); err == nil {
				return fmt.Errorf("replay: final state does not violate %s", v.Invariant)
			}
			return nil
		}
	}
	return fmt.Errorf("replay: reported invariant %q is not in the check battery", v.Invariant)
}
