package server

import (
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy bounds how the service retries transient failures:
// MaxAttempts total tries, with a jittered exponential delay between
// them that starts at BaseDelay and is capped at MaxDelay. The zero
// value means "use the caller's defaults" (the engine and the client
// each fill in their own via withDefaults).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, the first included.
	MaxAttempts int
	// BaseDelay is the delay before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
}

// withDefaults fills unset fields.
func (p RetryPolicy) withDefaults(attempts int, base, max time.Duration) RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = attempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = base
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = max
	}
	return p
}

// Backoff returns the delay before attempt n+1, given that attempt n
// (1-based) just failed: exponential in n, capped at MaxDelay, with the
// upper half jittered so a fleet of retriers does not thunder in step.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay || d <= 0 {
			d = p.MaxDelay
			break
		}
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// retryableStatus reports whether an HTTP status is worth retrying:
// timeouts, throttling, and server-side failures. 4xx client errors
// (other than 408/429) are deterministic and retrying them only repeats
// the mistake.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusRequestTimeout, http.StatusTooManyRequests,
		http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}
