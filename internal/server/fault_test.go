package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/verdict"
)

// discardLog is a logger for cache-level tests that do not go through
// an Engine.
func discardLog() *log.Logger { return log.New(io.Discard, "", 0) }

// fakeRecord builds a distinguishable verdict record (states is the
// marker the matrix asserts on).
func fakeRecord(states int) verdict.Record {
	return verdict.Record{
		Schema:  verdict.Schema,
		Preset:  "tiny",
		Verdict: "no-violation",
		States:  states,
		Depth:   7,
	}
}

// TestCacheFaultMatrix walks every fault kind through every operation
// of a cache put that overwrites an existing entry, then reopens the
// directory with a clean filesystem. The durability invariant: the
// reloaded cache serves the old record, the new record, or nothing —
// never a third, silently corrupt image. (openCache logs and skips
// entries that fail the CRC; a skip is a loud miss, not a wrong
// answer.)
func TestCacheFaultMatrix(t *testing.T) {
	const fp = 0xfeedface
	// Probe: count the ops one put performs so the matrix can target
	// each of them by index.
	probeDir := t.TempDir()
	probe := storage.NewFaultFS(nil)
	pc, _, err := openCache(probe, probeDir, discardLog())
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.put(fp, "probe", fakeRecord(100)); err != nil {
		t.Fatal(err)
	}
	base := probe.Ops()
	if err := pc.put(fp, "probe", fakeRecord(200)); err != nil {
		t.Fatal(err)
	}
	putOps := probe.Ops() - base
	if putOps < 4 {
		t.Fatalf("probe counted only %d ops for a put; expected at least create/write/sync/rename", putOps)
	}

	for _, kind := range storage.Kinds {
		for off := 0; off < putOps; off++ {
			t.Run(fmt.Sprintf("%s@put+%d", kind, off), func(t *testing.T) {
				dir := t.TempDir()
				ffs := storage.NewFaultFS(nil)
				c, _, err := openCache(ffs, dir, discardLog())
				if err != nil {
					t.Fatal(err)
				}
				if err := c.put(fp, "old", fakeRecord(100)); err != nil {
					t.Fatal(err)
				}
				ffs.FailAt(ffs.Ops()+off, kind)
				putErr := c.put(fp, "new", fakeRecord(200))
				if putErr != nil && kind == storage.TornRename {
					// A torn rename that surfaced an error fired on a
					// non-rename op — still a loud failure, still fine.
					t.Logf("torn-rename surfaced as: %v", putErr)
				}

				// Recovery: reopen with a clean FS, like a restarted
				// daemon would.
				reopened, _, err := openCache(storage.OrOS(nil), dir, discardLog())
				if err != nil {
					t.Fatalf("reopen after %s at put+%d: %v", kind, off, err)
				}
				rec, ok := reopened.get(fp)
				switch {
				case !ok:
					if putErr == nil && kind != storage.TornRename && kind != storage.Crash {
						t.Errorf("put claimed success but the entry vanished (fault %s at put+%d)", kind, off)
					}
				case rec.States == 100, rec.States == 200:
					// Old or new image — both are settled verdicts.
				default:
					t.Errorf("reloaded cache serves a corrupt record (states=%d) after %s at put+%d",
						rec.States, kind, off)
				}
			})
		}
	}
}

// TestEngineRetryTransient injects a transient EIO into the first
// verdict.json write and requires the engine to retry the job to a
// correct completion: attempts counted, metrics incremented, /healthz
// degraded, verdict identical to a clean run's.
func TestEngineRetryTransient(t *testing.T) {
	ffs := storage.NewFaultFS(nil)
	ffs.FailPath("verdict.json", storage.EIO, 0)
	e, err := New(Options{
		DataDir:         t.TempDir(),
		Workers:         1,
		CorpusPresets:   []string{"tiny"},
		CorpusMaxStates: 2000,
		FS:              ffs,
		Retry:           RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, e)

	info, err := e.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, e, info.ID, core.JobDone)
	if done.Attempts < 1 {
		t.Errorf("job settled with attempts=%d; the injected EIO should have forced a retry", done.Attempts)
	}
	if done.Verdict == nil {
		t.Fatal("no verdict after retry")
	}

	ref, _, err := core.RunJob(quickSpec(), core.JobRun{})
	if err != nil {
		t.Fatal(err)
	}
	if done.Verdict.States != ref.States || done.Verdict.Depth != ref.Depth ||
		done.Verdict.Verdict != ref.Status() {
		t.Errorf("retried verdict differs from clean run: got %s %d@%d, want %s %d@%d",
			done.Verdict.Verdict, done.Verdict.States, done.Verdict.Depth,
			ref.Status(), ref.States, ref.Depth)
	}

	m := e.Metrics()
	if m.JobRetries < 1 {
		t.Errorf("JobRetries = %d, want >= 1", m.JobRetries)
	}
	if m.StorageErrors < 1 {
		t.Errorf("StorageErrors = %d, want >= 1", m.StorageErrors)
	}
	h := e.Healthz()
	if h.Status != "ok" {
		t.Errorf("Healthz.Status = %q; storage trouble must not fail liveness", h.Status)
	}
	if h.Storage != "degraded" || h.StorageError == "" {
		t.Errorf("Healthz after injected EIO: storage=%q error=%q, want degraded with a message",
			h.Storage, h.StorageError)
	}
}

// TestRetryBudgetExhausted pins the other side of the policy: a
// storage fault that never clears fails the job loudly once the
// attempt budget is spent, instead of retrying forever.
func TestRetryBudgetExhausted(t *testing.T) {
	ffs := storage.NewFaultFS(nil)
	// Every verdict write fails: one scheduled path-fault per possible
	// attempt (each fires once).
	for i := 0; i < 8; i++ {
		ffs.FailPath("verdict.json", storage.EIO, 0)
	}
	e, err := New(Options{
		DataDir:         t.TempDir(),
		Workers:         1,
		CorpusPresets:   []string{"tiny"},
		CorpusMaxStates: 2000,
		FS:              ffs,
		Retry:           RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, e)

	info, err := e.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitFor(t, e, info.ID, "failed", func(i JobInfo) bool {
		return i.State == core.JobFailed
	})
	if failed.Error == "" {
		t.Error("failed job carries no error message")
	}
	if failed.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (MaxAttempts 2 = one retry)", failed.Attempts)
	}
}

// TestTmpSweep plants stale atomic-write staging files — the debris a
// crash mid-write leaves — in the cache and a job directory, and
// requires engine startup to quarantine (not delete) every one.
func TestTmpSweep(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	jobDir := filepath.Join(dir, "jobs", "j000001")
	for _, d := range []string{cacheDir, jobDir} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	stale := []string{
		filepath.Join(cacheDir, "0123456789abcdef.json.tmp"),
		filepath.Join(cacheDir, ".verdict.json.tmp424242"), // legacy CreateTemp pattern
		filepath.Join(jobDir, "job.json.tmp"),
	}
	for _, p := range stale {
		if err := os.WriteFile(p, []byte("{\"torn\":"), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	e := newEngine(t, dir)
	defer shutdown(t, e)

	if m := e.Metrics(); m.TmpSwept != int64(len(stale)) {
		t.Errorf("TmpSwept = %d, want %d", m.TmpSwept, len(stale))
	}
	for _, p := range stale {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stale staging file still in place: %s", p)
		}
		q := filepath.Join(filepath.Dir(p), "quarantine", filepath.Base(p))
		if _, err := os.Stat(q); err != nil {
			t.Errorf("stale staging file not quarantined at %s: %v", q, err)
		}
	}
}

// TestFlakyProxyRetry is the flaky-network acceptance test: a proxy in
// front of the engine drops about a third of all requests — some
// rejected before they reach the engine, and, crucially, the very
// first Submit processed and then dropped on the response path. The
// client's retry budget must settle the correct verdict, and the
// fingerprint-coalescing on resubmit must prevent any duplicate
// execution.
func TestFlakyProxyRetry(t *testing.T) {
	e := newEngine(t, t.TempDir())
	defer shutdown(t, e)
	h := e.Handler()

	var n atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		switch {
		case i == 1:
			// Worst case for idempotency: the engine processes the
			// Submit, then the response is lost on the wire.
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			panic(http.ErrAbortHandler)
		case i%3 == 0:
			writeError(w, http.StatusServiceUnavailable, "injected drop")
		default:
			h.ServeHTTP(w, r)
		}
	}))
	defer proxy.Close()

	cli := &Client{
		Base:    proxy.URL,
		Timeout: 5 * time.Second,
		Retry:   RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}
	ctx := context.Background()
	info, err := cli.Submit(ctx, quickSpec(), 0)
	if err != nil {
		t.Fatalf("submit through flaky proxy: %v", err)
	}
	done, err := cli.Wait(ctx, info.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait through flaky proxy: %v", err)
	}
	if done.State != core.JobDone || done.Verdict == nil {
		t.Fatalf("job did not settle: %+v", done)
	}

	// Correctness and no-duplicate-execution, against a clean run.
	ref, _, err := core.RunJob(quickSpec(), core.JobRun{})
	if err != nil {
		t.Fatal(err)
	}
	if done.Verdict.States != ref.States || done.Verdict.Verdict != ref.Status() {
		t.Errorf("verdict through flaky proxy: got %s %d states, want %s %d",
			done.Verdict.Verdict, done.Verdict.States, ref.Status(), ref.States)
	}
	// The retried Submit either coalesces with the in-flight job or —
	// if the first copy already settled — comes back as a cache hit.
	// Both are fine; what must never happen is a second real execution.
	executed := 0
	for _, j := range e.List() {
		if !j.Cached {
			executed++
		}
	}
	if executed != 1 {
		t.Errorf("retried submit left %d non-cached jobs; coalescing should leave exactly 1", executed)
	}
	if m := e.Metrics(); m.StatesExplored != int64(ref.States) {
		t.Errorf("engine explored %d states for a %d-state job — a dropped Submit was re-executed",
			m.StatesExplored, ref.States)
	}
	if n.Load() < 4 {
		t.Errorf("proxy saw only %d requests; the retry path was not exercised", n.Load())
	}
}

// TestClientTimeout pins that a daemon that accepts connections and
// then hangs cannot wedge the client: each attempt is bounded by
// Timeout and the overall call returns within the retry budget.
func TestClientTimeout(t *testing.T) {
	hang := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hang
	}))
	defer srv.Close()
	defer close(hang)

	cli := &Client{
		Base:    srv.URL,
		Timeout: 100 * time.Millisecond,
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}
	start := time.Now()
	_, err := cli.Health(context.Background())
	if err == nil {
		t.Fatal("Health against a hung daemon reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("client took %s to give up on a hung daemon; per-attempt timeout is not biting", elapsed)
	}
}

// TestClientStreamIdle pins the stream watchdog: a progress stream
// that goes silent mid-job is killed after StreamIdleTimeout and the
// result recovered by polling, so gcmc -remote cannot hang on a
// wedged daemon.
func TestClientStreamIdle(t *testing.T) {
	const id = "j000001"
	running := JobInfo{ID: id, State: core.JobRunning}
	terminal := JobInfo{ID: id, State: core.JobDone, Verdict: &verdict.Record{Verdict: "no-violation"}}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/"+id+"/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(running)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done() // one line, then silence
	})
	mux.HandleFunc("GET /v1/jobs/"+id, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, terminal)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cli := &Client{
		Base:              srv.URL,
		Timeout:           2 * time.Second,
		StreamIdleTimeout: 150 * time.Millisecond,
	}
	start := time.Now()
	got, err := cli.Stream(context.Background(), id, nil)
	if err != nil {
		t.Fatalf("Stream did not recover from a silent stream: %v", err)
	}
	if got.State != core.JobDone {
		t.Errorf("Stream settled state %s, want %s", got.State, core.JobDone)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("Stream took %s; the idle watchdog is not biting", elapsed)
	}
}
