package server

import (
	"bytes"
	"container/heap"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/verdict"
)

// quickSpec is a small deterministic workload: depth-capped runs stop
// at a layer boundary, so states/transitions/depth are identical on
// every execution whatever the worker count or interruption history.
func quickSpec() core.JobSpec {
	return core.JobSpec{Preset: "tiny", Options: core.JobOptions{MaxDepth: 16}}
}

// slowSpec is deep enough to interrupt mid-run (~ seconds) while still
// bounded; CheckpointEvery 1 maximizes the crash windows.
func slowSpec() core.JobSpec {
	return core.JobSpec{
		Preset:  "tiny",
		Options: core.JobOptions{MaxDepth: 60, CheckpointEvery: 1},
	}
}

func newEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := New(Options{
		DataDir:         dir,
		Workers:         1,
		CorpusPresets:   []string{"tiny"},
		CorpusMaxStates: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func shutdown(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls the job until cond holds.
func waitFor(t *testing.T, e *Engine, id string, what string, cond func(JobInfo) bool) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := e.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if cond(info) {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	info, _ := e.Get(id)
	t.Fatalf("job %s never reached %s (state %s)", id, what, info.State)
	return JobInfo{}
}

func waitState(t *testing.T, e *Engine, id string, want core.JobState) JobInfo {
	t.Helper()
	return waitFor(t, e, id, string(want), func(i JobInfo) bool {
		if i.State == core.JobFailed && want != core.JobFailed {
			t.Fatalf("job %s failed: %s", id, i.Error)
		}
		return i.State == want
	})
}

// canonBytes marshals a record in canonical form.
func canonBytes(t *testing.T, rec *verdict.Record) []byte {
	t.Helper()
	if rec == nil {
		t.Fatal("nil verdict record")
	}
	b, err := rec.Canonical().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSubmitRunCache is the cache acceptance test: the first
// submission explores, the second submission of the same fingerprint
// is served from the cache with zero new states explored.
func TestSubmitRunCache(t *testing.T) {
	e := newEngine(t, t.TempDir())
	defer shutdown(t, e)

	first, err := e.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission must not be a cache hit")
	}
	done := waitState(t, e, first.ID, core.JobDone)
	if done.Verdict == nil || done.Verdict.Verdict != "no-violation" {
		t.Fatalf("unexpected verdict: %+v", done.Verdict)
	}
	m1 := e.Metrics()
	if m1.StatesExplored == 0 {
		t.Fatal("no states counted for the first run")
	}
	if m1.CacheEntries != 1 || m1.CacheMisses != 1 {
		t.Fatalf("cache counters after first run: %+v", m1)
	}

	second, err := e.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != core.JobDone {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit should mint a new job record")
	}
	if second.Verdict == nil || !second.Verdict.Cached {
		t.Fatal("cached verdict not marked cached")
	}
	m2 := e.Metrics()
	if m2.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", m2.CacheHits)
	}
	if m2.StatesExplored != m1.StatesExplored {
		t.Fatalf("cache hit explored states: %d -> %d", m1.StatesExplored, m2.StatesExplored)
	}
	if got, want := canonBytes(t, second.Verdict), canonBytes(t, done.Verdict); !bytes.Equal(got, want) {
		t.Errorf("cached verdict differs canonically:\n%s\n%s", got, want)
	}
}

// TestShutdownResume interrupts a running job via engine shutdown and
// checks a new engine on the same data directory resumes it to a
// verdict byte-identical (canonically) to an uninterrupted run.
func TestShutdownResume(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, dir)
	info, err := e.Submit(slowSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Let it run past a few checkpoints before pulling the plug.
	waitFor(t, e, info.ID, "mid-run checkpoint", func(i JobInfo) bool {
		return i.State == core.JobRunning && i.HasCheckpoint &&
			i.Progress != nil && i.Progress.Depth >= 8
	})
	shutdown(t, e)
	stopped, _ := e.Get(info.ID)
	if stopped.State != core.JobInterrupted {
		t.Fatalf("state after shutdown = %s, want interrupted", stopped.State)
	}
	if !stopped.HasCheckpoint {
		t.Fatal("no checkpoint survived the shutdown")
	}

	e2 := newEngine(t, dir)
	defer shutdown(t, e2)
	resumed := waitState(t, e2, info.ID, core.JobDone)
	if !resumed.Resumed {
		t.Error("job not marked resumed")
	}

	// Reference: the same spec run uninterrupted.
	res, _, err := core.RunJob(slowSpec(), core.JobRun{})
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := slowSpec().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ref := verdict.New("tiny", core.Ablations{}, fp, res)
	if got, want := canonBytes(t, resumed.Verdict), canonBytes(t, &ref); !bytes.Equal(got, want) {
		t.Errorf("resumed verdict differs from uninterrupted run:\n--- resumed ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// TestCancelRunning cancels an in-flight job and checks it settles as
// cancelled, not interrupted or done.
func TestCancelRunning(t *testing.T) {
	e := newEngine(t, t.TempDir())
	defer shutdown(t, e)
	info, err := e.Submit(core.JobSpec{Preset: "tiny"}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, info.ID, core.JobRunning)
	if _, err := e.Cancel(info.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, e, info.ID, core.JobCancelled)
	// Cancelling a terminal job is a no-op.
	again, err := e.Cancel(info.ID)
	if err != nil || again.State != core.JobCancelled {
		t.Fatalf("second cancel: %v, %s", err, again.State)
	}
}

// TestHTTPAPI drives the full HTTP surface through the thin client
// against an httptest server.
func TestHTTPAPI(t *testing.T) {
	e := newEngine(t, t.TempDir())
	defer shutdown(t, e)
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()
	cli := NewClient(ts.URL)
	ctx := context.Background()

	h, err := cli.Health(ctx)
	if err != nil || h.Status != "ok" || h.Build == "" {
		t.Fatalf("healthz: %+v, %v", h, err)
	}

	info, err := cli.Submit(ctx, quickSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawProgress bool
	final, err := cli.Stream(ctx, info.ID, func(i JobInfo) {
		if i.Progress != nil {
			sawProgress = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != core.JobDone || final.Verdict == nil {
		t.Fatalf("streamed final: %+v", final)
	}
	if !sawProgress {
		t.Error("stream delivered no progress snapshots")
	}

	got, err := cli.Job(ctx, info.ID)
	if err != nil || got.State != core.JobDone {
		t.Fatalf("get: %+v, %v", got, err)
	}
	list, err := cli.Jobs(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("list: %d jobs, %v", len(list), err)
	}

	rec, err := cli.Verdict(ctx, got.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Cached || rec.Verdict != final.Verdict.Verdict {
		t.Fatalf("verdict lookup: %+v", rec)
	}
	if _, err := cli.Verdict(ctx, "00000000deadbeef"); err == nil {
		t.Error("verdict lookup of unknown fingerprint should 404")
	}

	m, err := cli.Metrics(ctx)
	if err != nil || m.CacheEntries != 1 {
		t.Fatalf("metrics: %+v, %v", m, err)
	}
	if _, err := cli.Job(ctx, "j999999"); err == nil {
		t.Error("get of unknown job should 404")
	}
}

// TestCorpus enumerates the (restricted) corpus and runs it through
// the background queue.
func TestCorpus(t *testing.T) {
	e := newEngine(t, t.TempDir())
	defer shutdown(t, e)

	cells, err := e.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	// 1 preset x 6 ablation variants x {tso, sc}.
	if len(cells) != 12 {
		t.Fatalf("corpus size = %d, want 12", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Fingerprint] {
			t.Errorf("duplicate fingerprint %s in corpus", c.Fingerprint)
		}
		seen[c.Fingerprint] = true
		if c.Spec.Options.MaxStates != 2000 {
			t.Errorf("cell %s/%s/%s missing the state cap", c.Preset, c.Ablations, c.Memory)
		}
	}

	n, err := e.EnqueueCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("enqueued %d cells, want 12", n)
	}
	// Corpus jobs sit behind interactive ones: a priority-0 submission
	// must outrank every queued corpus cell.
	jump, err := e.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, jump.ID, core.JobDone)
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		m := e.Metrics()
		if m.JobsByState[string(core.JobDone)] == 13 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cells, err = e.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.State != core.JobDone {
			t.Fatalf("corpus cell %s/%s/%s state %s", c.Preset, c.Ablations, c.Memory, c.State)
		}
		if c.Verdict == "" {
			t.Errorf("corpus cell %s/%s/%s has no verdict", c.Preset, c.Ablations, c.Memory)
		}
	}
}

// TestPersistenceAcrossRestart checks terminal jobs reload with their
// verdicts after a clean restart.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, dir)
	info, err := e.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, e, info.ID, core.JobDone)
	shutdown(t, e)

	e2 := newEngine(t, dir)
	defer shutdown(t, e2)
	back, ok := e2.Get(info.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if back.State != core.JobDone || back.Verdict == nil {
		t.Fatalf("reloaded job: %+v", back)
	}
	if !bytes.Equal(canonBytes(t, back.Verdict), canonBytes(t, done.Verdict)) {
		t.Error("verdict changed across restart")
	}
	// The cache reloads too: a resubmission is a hit, not a re-run.
	hit, err := e2.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error("resubmission after restart missed the reloaded cache")
	}
	if m := e2.Metrics(); m.StatesExplored != 0 {
		t.Errorf("restarted engine explored %d states for a cached verdict", m.StatesExplored)
	}
}

// TestCacheCorruptionSkipped flips bytes in a cache entry and checks
// the poisoned entry is skipped on reload rather than served.
func TestCacheCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, dir)
	info, err := e.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, info.ID, core.JobDone)
	shutdown(t, e)

	// Corrupt the verdict inside the entry (valid JSON, wrong bytes —
	// only the CRC can catch it).
	corruptCacheEntry(t, dir)

	e2 := newEngine(t, dir)
	defer shutdown(t, e2)
	if n := e2.Metrics().CacheEntries; n != 0 {
		t.Fatalf("corrupt cache entry survived the CRC check (%d entries)", n)
	}
	again, err := e2.Submit(quickSpec(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("corrupt entry served as a cache hit")
	}
	waitState(t, e2, again.ID, core.JobDone)
}

// corruptCacheEntry rewrites the verdict bytes inside the single cache
// entry under dir without fixing the CRC — valid JSON, poisoned record.
func corruptCacheEntry(t *testing.T, dir string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "cache", "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one cache entry: %v, %v", files, err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(b, []byte(`no-violation`), []byte(`ok-violation`), 1)
	if bytes.Equal(mangled, b) {
		t.Fatal("corruption did not change the entry")
	}
	if err := os.WriteFile(files[0], mangled, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQueueOrder pins the priority heap: lower priority value first,
// FIFO within a level.
func TestQueueOrder(t *testing.T) {
	var q jobQueue
	push := func(id string, prio, seq int) {
		heap.Push(&q, &job{id: id, priority: prio, pushSeq: seq})
	}
	push("c", 100, 1)
	push("a", 0, 2)
	push("d", 100, 3)
	push("b", 0, 4)
	var order []string
	for q.Len() > 0 {
		order = append(order, heap.Pop(&q).(*job).id)
	}
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}
