package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/verdict"
)

// Client is the thin HTTP client the gcmc -remote mode (and tests)
// speak to a gcmcd daemon with. Every unary request carries a
// per-attempt timeout and is retried under a jittered exponential
// backoff on transport errors and retryable HTTP statuses (408, 429,
// 5xx), so a hung or flaky daemon can neither wedge the caller forever
// nor fail a run a momentary drop would not have. Retrying a Submit is
// safe: the daemon coalesces jobs by options fingerprint, so a resent
// request whose first copy did land attaches to the in-flight job
// instead of starting a duplicate run.
type Client struct {
	// Base is the daemon address, e.g. "http://127.0.0.1:8322".
	Base string
	// HTTP is the underlying client (nil = http.DefaultClient). Leave
	// its Timeout zero: streams are long-lived by design; the client
	// applies Timeout per unary attempt via the request context.
	HTTP *http.Client
	// Timeout bounds each unary request attempt (0 = 30s; negative
	// disables).
	Timeout time.Duration
	// Retry governs unary-request retries (zero value = 4 attempts,
	// 100ms base, 2s cap).
	Retry RetryPolicy
	// StreamIdleTimeout kills a progress stream that goes silent for
	// this long — a wedged daemon mid-stream otherwise blocks Stream
	// forever. The kill is not fatal: Stream falls back to polling.
	// (0 = 2m; negative disables.)
	StreamIdleTimeout time.Duration
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout == 0 {
		return 30 * time.Second
	}
	if c.Timeout < 0 {
		return 0
	}
	return c.Timeout
}

// do issues a request and decodes the JSON response into out,
// converting API error bodies into Go errors. Transport failures and
// retryable statuses are retried with backoff until the budget or the
// caller's context runs out; the request body is re-materialized per
// attempt from the once-marshalled payload.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		payload = b
	}
	pol := c.Retry.withDefaults(4, 100*time.Millisecond, 2*time.Second)
	var lastErr error
	for attempt := 1; ; attempt++ {
		raw, status, err := c.once(ctx, method, path, payload)
		switch {
		case err == nil && status < 400:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(raw, out); err != nil {
				return fmt.Errorf("client: %s %s: parse: %w", method, path, err)
			}
			return nil
		case err == nil:
			var ae apiError
			if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
				lastErr = fmt.Errorf("client: %s %s: %s", method, path, ae.Error)
			} else {
				lastErr = fmt.Errorf("client: %s %s: HTTP %d", method, path, status)
			}
			if !retryableStatus(status) {
				return lastErr
			}
		default:
			lastErr = err
		}
		if attempt >= pol.MaxAttempts {
			return lastErr
		}
		select {
		case <-ctx.Done():
			return lastErr
		case <-time.After(pol.Backoff(attempt)):
		}
	}
}

// once performs a single request attempt under the per-attempt timeout
// and reads the whole response body. A non-nil error is a transport
// failure (always retryable); HTTP-level errors come back as a status.
func (c *Client) once(ctx context.Context, method, path string, payload []byte) ([]byte, int, error) {
	if t := c.timeout(); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	return raw, resp.StatusCode, nil
}

// Submit posts a job spec.
func (c *Client) Submit(ctx context.Context, spec core.JobSpec, priority int) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", SubmitRequest{Spec: spec, Priority: priority}, &info)
	return info, err
}

// Job fetches one job snapshot.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &info)
	return info, err
}

// Jobs lists all jobs.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel stops a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &info)
	return info, err
}

// Wait polls until the job reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Stream follows the job's NDJSON progress stream, invoking fn (which
// may be nil) per snapshot, and returns the terminal snapshot. A
// stream that goes silent past StreamIdleTimeout is killed and the
// result fetched by polling, so a wedged daemon cannot hold the caller
// hostage; the same fallback covers a stream that drops before the job
// settles.
func (c *Client) Stream(ctx context.Context, id string, fn func(JobInfo)) (JobInfo, error) {
	idle := c.StreamIdleTimeout
	if idle == 0 {
		idle = 2 * time.Minute
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var idleTimer *time.Timer
	if idle > 0 {
		idleTimer = time.AfterFunc(idle, cancel)
		defer idleTimer.Stop()
	}
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return JobInfo{}, fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return JobInfo{}, fmt.Errorf("client: stream %s: %w", id, err)
		}
		// Connection refused or idle-killed before the stream opened:
		// poll instead (the daemon may be mid-restart).
		return c.Wait(ctx, id, 0)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		resp.Body.Close()
		return c.Job(ctx, id)
	}
	var last JobInfo
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if idleTimer != nil {
			idleTimer.Reset(idle)
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var info JobInfo
		if err := json.Unmarshal(line, &info); err != nil {
			return last, fmt.Errorf("client: stream %s: parse: %w", id, err)
		}
		last = info
		if fn != nil {
			fn(info)
		}
		if info.State.Terminal() {
			return info, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() != nil {
		return last, ctx.Err()
	}
	// Stream ended without a terminal line (daemon restarting, proxy
	// timeout, idle kill): fall back to polling.
	return c.Wait(ctx, id, 0)
}

// Verdict looks up a cached verdict by fingerprint (hex).
func (c *Client) Verdict(ctx context.Context, fingerprint string) (*verdict.Record, error) {
	var rec verdict.Record
	if err := c.do(ctx, http.MethodGet, "/v1/verdicts?fingerprint="+fingerprint, nil, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Corpus fetches the corpus matrix.
func (c *Client) Corpus(ctx context.Context) ([]CorpusCell, error) {
	var cells []CorpusCell
	err := c.do(ctx, http.MethodGet, "/v1/corpus", nil, &cells)
	return cells, err
}

// EnqueueCorpus asks the daemon to enqueue the corpus matrix.
func (c *Client) EnqueueCorpus(ctx context.Context) (int, error) {
	var out map[string]int
	if err := c.do(ctx, http.MethodPost, "/v1/corpus", nil, &out); err != nil {
		return 0, err
	}
	return out["enqueued"], nil
}

// Health checks daemon liveness.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches the service counters.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}
