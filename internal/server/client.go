package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/verdict"
)

// Client is the thin HTTP client the gcmc -remote mode (and tests)
// speak to a gcmcd daemon with.
type Client struct {
	// Base is the daemon address, e.g. "http://127.0.0.1:8322".
	Base string
	// HTTP is the underlying client (nil = http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out,
// converting API error bodies into Go errors.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("client: %s %s: %s", method, path, ae.Error)
		}
		return fmt.Errorf("client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: %s %s: parse: %w", method, path, err)
	}
	return nil
}

// Submit posts a job spec.
func (c *Client) Submit(ctx context.Context, spec core.JobSpec, priority int) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", SubmitRequest{Spec: spec, Priority: priority}, &info)
	return info, err
}

// Job fetches one job snapshot.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &info)
	return info, err
}

// Jobs lists all jobs.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel stops a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &info)
	return info, err
}

// Wait polls until the job reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Stream follows the job's NDJSON progress stream, invoking fn (which
// may be nil) per snapshot, and returns the terminal snapshot. If the
// stream drops before the job settles, Stream falls back to polling.
func (c *Client) Stream(ctx context.Context, id string, fn func(JobInfo)) (JobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return JobInfo{}, fmt.Errorf("client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobInfo{}, fmt.Errorf("client: stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		resp.Body.Close()
		return c.Job(ctx, id)
	}
	var last JobInfo
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var info JobInfo
		if err := json.Unmarshal(line, &info); err != nil {
			return last, fmt.Errorf("client: stream %s: parse: %w", id, err)
		}
		last = info
		if fn != nil {
			fn(info)
		}
		if info.State.Terminal() {
			return info, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() != nil {
		return last, ctx.Err()
	}
	// Stream ended without a terminal line (daemon restarting, proxy
	// timeout): fall back to polling.
	return c.Wait(ctx, id, 0)
}

// Verdict looks up a cached verdict by fingerprint (hex).
func (c *Client) Verdict(ctx context.Context, fingerprint string) (*verdict.Record, error) {
	var rec verdict.Record
	if err := c.do(ctx, http.MethodGet, "/v1/verdicts?fingerprint="+fingerprint, nil, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Corpus fetches the corpus matrix.
func (c *Client) Corpus(ctx context.Context) ([]CorpusCell, error) {
	var cells []CorpusCell
	err := c.do(ctx, http.MethodGet, "/v1/corpus", nil, &cells)
	return cells, err
}

// EnqueueCorpus asks the daemon to enqueue the corpus matrix.
func (c *Client) EnqueueCorpus(ctx context.Context) (int, error) {
	var out map[string]int
	if err := c.do(ctx, http.MethodPost, "/v1/corpus", nil, &out); err != nil {
		return 0, err
	}
	return out["enqueued"], nil
}

// Health checks daemon liveness.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches the service counters.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}
