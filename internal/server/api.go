package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/verdict"
)

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Spec core.JobSpec `json:"spec"`
	// Priority orders the queue (lower runs sooner; default 0 for
	// interactive jobs, corpus background jobs use 100).
	Priority int `json:"priority,omitempty"`
}

// JobInfo is the API snapshot of one job.
type JobInfo struct {
	ID          string        `json:"id"`
	State       core.JobState `json:"state"`
	Spec        core.JobSpec  `json:"spec"`
	Fingerprint string        `json:"fingerprint"`
	Priority    int           `json:"priority"`
	Corpus      bool          `json:"corpus,omitempty"`
	// Cached marks a job satisfied entirely from the verdict cache.
	Cached bool `json:"cached,omitempty"`
	// Resumed marks a job that restarted from a checkpoint after a
	// daemon crash or shutdown.
	Resumed       bool       `json:"resumed,omitempty"`
	HasCheckpoint bool       `json:"has_checkpoint,omitempty"`
	Submitted     time.Time  `json:"submitted"`
	Started       *time.Time `json:"started,omitempty"`
	Finished      *time.Time `json:"finished,omitempty"`

	Progress *ProgressInfo   `json:"progress,omitempty"`
	Error    string          `json:"error,omitempty"`
	Verdict  *verdict.Record `json:"verdict,omitempty"`
}

// ProgressInfo is the latest checker progress report for a running job.
type ProgressInfo struct {
	States      int     `json:"states"`
	Transitions int     `json:"transitions"`
	Depth       int     `json:"depth"`
	Frontier    int     `json:"frontier"`
	ElapsedSec  float64 `json:"elapsed_sec"`
}

// Metrics is the GET /metrics body.
type Metrics struct {
	Build          string         `json:"build"`
	UptimeSec      float64        `json:"uptime_sec"`
	Workers        int            `json:"workers"`
	QueueDepth     int            `json:"queue_depth"`
	JobsByState    map[string]int `json:"jobs_by_state"`
	CacheHits      int64          `json:"cache_hits"`
	CacheMisses    int64          `json:"cache_misses"`
	CacheEntries   int            `json:"cache_entries"`
	StatesExplored int64          `json:"states_explored"`
	StatesPerSec   float64        `json:"states_per_sec"`
	HeapAllocBytes uint64         `json:"heap_alloc_bytes"`
	Jobs           []JobMetric    `json:"jobs,omitempty"`
}

// JobMetric is the per-job slice of /metrics.
type JobMetric struct {
	ID           string        `json:"id"`
	State        core.JobState `json:"state"`
	States       int           `json:"states"`
	MemBudgetMiB int           `json:"mem_budget_mib,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status string `json:"status"`
	Build  string `json:"build"`
}

// persistedJob is the on-disk job record (jobs/<id>/job.json).
type persistedJob struct {
	ID        string        `json:"id"`
	Spec      core.JobSpec  `json:"spec"`
	State     core.JobState `json:"state"`
	Priority  int           `json:"priority"`
	Corpus    bool          `json:"corpus,omitempty"`
	Cached    bool          `json:"cached,omitempty"`
	Resumed   bool          `json:"resumed,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Started   time.Time     `json:"started,omitempty"`
	Finished  time.Time     `json:"finished,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// jobQueue is a priority heap: lower Priority first, FIFO within a
// priority level (pushSeq tiebreak).
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].pushSeq < q[j].pushSeq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// sortJobs orders API listings newest-first (by id, which is
// monotonic).
func sortJobs(jobs []JobInfo) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID > jobs[j].ID })
}

func sortJobMetrics(jobs []JobMetric) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
}

// writeJSONAtomic marshals v and writes it with the checkpoint
// package's discipline: tmp file, fsync, rename. A job record is never
// half-written, whatever kills the process.
func writeJSONAtomic(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal %s: %w", path, err)
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("server: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("server: rename %s: %w", path, err)
	}
	return nil
}

// readJSON loads a JSON file into v.
func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("server: parse %s: %w", path, err)
	}
	return nil
}
