package server

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/verdict"
)

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Spec core.JobSpec `json:"spec"`
	// Priority orders the queue (lower runs sooner; default 0 for
	// interactive jobs, corpus background jobs use 100).
	Priority int `json:"priority,omitempty"`
}

// JobInfo is the API snapshot of one job.
type JobInfo struct {
	ID          string        `json:"id"`
	State       core.JobState `json:"state"`
	Spec        core.JobSpec  `json:"spec"`
	Fingerprint string        `json:"fingerprint"`
	Priority    int           `json:"priority"`
	Corpus      bool          `json:"corpus,omitempty"`
	// Cached marks a job satisfied entirely from the verdict cache.
	Cached bool `json:"cached,omitempty"`
	// Resumed marks a job that restarted from a checkpoint after a
	// daemon crash or shutdown.
	Resumed       bool `json:"resumed,omitempty"`
	HasCheckpoint bool `json:"has_checkpoint,omitempty"`
	// Attempts counts transient-failure retries: 0 for a job that ran
	// once, n for one re-enqueued n times by the retry policy.
	Attempts  int        `json:"attempts,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	Progress *ProgressInfo   `json:"progress,omitempty"`
	Error    string          `json:"error,omitempty"`
	Verdict  *verdict.Record `json:"verdict,omitempty"`
}

// ProgressInfo is the latest checker progress report for a running job.
type ProgressInfo struct {
	States      int     `json:"states"`
	Transitions int     `json:"transitions"`
	Depth       int     `json:"depth"`
	Frontier    int     `json:"frontier"`
	ElapsedSec  float64 `json:"elapsed_sec"`
}

// Metrics is the GET /metrics body.
type Metrics struct {
	Build          string         `json:"build"`
	UptimeSec      float64        `json:"uptime_sec"`
	Workers        int            `json:"workers"`
	QueueDepth     int            `json:"queue_depth"`
	JobsByState    map[string]int `json:"jobs_by_state"`
	CacheHits      int64          `json:"cache_hits"`
	CacheMisses    int64          `json:"cache_misses"`
	CacheEntries   int            `json:"cache_entries"`
	StatesExplored int64          `json:"states_explored"`
	StatesPerSec   float64        `json:"states_per_sec"`
	HeapAllocBytes uint64         `json:"heap_alloc_bytes"`
	// TmpSwept counts stale staging files quarantined at startup (a
	// crash mid-atomic-write leaves its .tmp behind; the sweep moves
	// them aside so they can never shadow real data).
	TmpSwept int64 `json:"tmp_swept,omitempty"`
	// StorageErrors counts disk I/O failures the engine observed;
	// JobRetries counts transient-failure re-enqueues.
	StorageErrors int64       `json:"storage_errors,omitempty"`
	JobRetries    int64       `json:"job_retries,omitempty"`
	Jobs          []JobMetric `json:"jobs,omitempty"`
}

// JobMetric is the per-job slice of /metrics.
type JobMetric struct {
	ID           string        `json:"id"`
	State        core.JobState `json:"state"`
	States       int           `json:"states"`
	MemBudgetMiB int           `json:"mem_budget_mib,omitempty"`
}

// Health is the GET /healthz body. Status reports process liveness
// ("ok" whenever the daemon can answer); Storage is "ok" or "degraded"
// — degraded means a disk I/O failure was observed within the last
// minute, with StorageError carrying the most recent message.
type Health struct {
	Status       string `json:"status"`
	Build        string `json:"build"`
	Storage      string `json:"storage,omitempty"`
	StorageError string `json:"storage_error,omitempty"`
}

// persistedJob is the on-disk job record (jobs/<id>/job.json).
type persistedJob struct {
	ID        string        `json:"id"`
	Spec      core.JobSpec  `json:"spec"`
	State     core.JobState `json:"state"`
	Priority  int           `json:"priority"`
	Corpus    bool          `json:"corpus,omitempty"`
	Cached    bool          `json:"cached,omitempty"`
	Resumed   bool          `json:"resumed,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Started   time.Time     `json:"started,omitempty"`
	Finished  time.Time     `json:"finished,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// jobQueue is a priority heap: lower Priority first, FIFO within a
// priority level (pushSeq tiebreak).
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].pushSeq < q[j].pushSeq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// sortJobs orders API listings newest-first (by id, which is
// monotonic).
func sortJobs(jobs []JobInfo) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID > jobs[j].ID })
}

func sortJobMetrics(jobs []JobMetric) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
}

// writeJSONAtomic marshals v and writes it with the storage package's
// atomic discipline: staged tmp file, fsync, rename. A job record is
// never half-written, whatever kills the process — and every byte goes
// through the engine's FS, so fault injection covers it.
func writeJSONAtomic(fsys storage.FS, path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal %s: %w", path, err)
	}
	b = append(b, '\n')
	if err := storage.WriteFileAtomic(fsys, path, b); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// readJSON loads a JSON file into v.
func readJSON(fsys storage.FS, path string, v any) error {
	b, err := storage.ReadFile(fsys, path)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("server: parse %s: %w", path, err)
	}
	return nil
}

// sweepTmp quarantines stale atomic-write staging files left in dir by
// a crashed process: anything with the storage.TmpSuffix (and the
// dot-prefixed CreateTemp pattern earlier builds used) is renamed into
// dir/quarantine rather than deleted — the torn bytes stay inspectable
// but can never be mistaken for data. Returns the number quarantined.
func sweepTmp(fsys storage.FS, dir string) (int, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("server: sweep %s: %w", dir, err)
	}
	n := 0
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		stale := strings.HasSuffix(name, storage.TmpSuffix) ||
			(strings.HasPrefix(name, ".") && strings.Contains(name, storage.TmpSuffix))
		if !stale {
			continue
		}
		qdir := filepath.Join(dir, "quarantine")
		if err := fsys.MkdirAll(qdir); err != nil {
			return n, fmt.Errorf("server: sweep %s: %w", dir, err)
		}
		if err := fsys.Rename(filepath.Join(dir, name), filepath.Join(qdir, name)); err != nil {
			return n, fmt.Errorf("server: sweep %s: %w", dir, err)
		}
		n++
	}
	return n, nil
}
