package server

import (
	"fmt"

	"repro/internal/core"
)

// CorpusCell is one cell of the verification corpus: a preset, one
// ablation variant, and a memory model, as the concrete JobSpec the
// engine would run for it. Cells with a matching job also carry that
// job's state (and verdict, once settled).
type CorpusCell struct {
	Preset    string       `json:"preset"`
	Ablations string       `json:"ablations"` // "" = clean configuration
	Memory    string       `json:"memory"`    // "tso" | "sc"
	Spec      core.JobSpec `json:"spec"`

	Fingerprint string        `json:"fingerprint"`
	JobID       string        `json:"job_id,omitempty"`
	State       core.JobState `json:"state,omitempty"`
	Verdict     string        `json:"verdict,omitempty"`
	Cached      bool          `json:"cached,omitempty"`
}

// CorpusPriority orders corpus cells behind every interactive
// submission (which default to priority 0).
const CorpusPriority = 100

// corpusAblations is the ablation axis of the matrix: the clean
// configuration plus the headline barrier/fence deletions the paper's
// proof says are load-bearing.
var corpusAblations = []core.Ablations{
	{},
	{NoDeletionBarrier: true},
	{NoInsertionBarrier: true},
	{AllocWhite: true},
	{UnlockedMark: true},
	{NoHSFence: true},
}

// corpusCellsLocked enumerates (and memoizes) the preset x ablation x
// {TSO, SC} matrix. Callers hold e.mu.
func (e *Engine) corpusCellsLocked() ([]CorpusCell, error) {
	if e.corpusCells != nil {
		return e.corpusCells, nil
	}
	presets := e.opt.CorpusPresets
	if presets == nil {
		presets = core.PresetNames()
	}
	var cells []CorpusCell
	for _, preset := range presets {
		if _, err := core.PresetConfig(preset); err != nil {
			return nil, err
		}
		for _, abl := range corpusAblations {
			for _, mem := range []string{"tso", "sc"} {
				a := abl
				a.SCMemory = mem == "sc"
				spec := core.JobSpec{
					Preset:    preset,
					Ablations: a,
					Options:   core.JobOptions{MaxStates: e.opt.CorpusMaxStates},
				}
				spec = e.normalize(spec)
				fp, _, err := spec.Fingerprint()
				if err != nil {
					return nil, err
				}
				cells = append(cells, CorpusCell{
					Preset:      preset,
					Ablations:   abl.String(),
					Memory:      mem,
					Spec:        spec,
					Fingerprint: fmt.Sprintf("%016x", fp),
				})
			}
		}
	}
	e.corpusCells = cells
	return cells, nil
}

// Corpus returns the matrix with each cell annotated by the most
// recent job (by id) carrying its fingerprint, plus the cached verdict
// when one exists.
func (e *Engine) Corpus() ([]CorpusCell, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cells, err := e.corpusCellsLocked()
	if err != nil {
		return nil, err
	}
	byFP := make(map[string]*job)
	for _, j := range e.jobs {
		key := fmt.Sprintf("%016x", j.fp)
		if prev, ok := byFP[key]; !ok || j.id > prev.id {
			byFP[key] = j
		}
	}
	out := make([]CorpusCell, len(cells))
	for i, c := range cells {
		if j, ok := byFP[c.Fingerprint]; ok {
			c.JobID = j.id
			c.State = j.state
			c.Cached = j.cached
			if j.verdict != nil {
				c.Verdict = j.verdict.Verdict
			}
		} else {
			var fp uint64
			fmt.Sscanf(c.Fingerprint, "%x", &fp)
			if rec, ok := e.cache.get(fp); ok {
				c.Verdict = rec.Verdict
				c.Cached = true
			}
		}
		out[i] = c
	}
	return out, nil
}

// EnqueueCorpus submits every corpus cell as a background job at
// CorpusPriority and reports how many were enqueued fresh (cells
// already cached or in flight coalesce and do not count).
func (e *Engine) EnqueueCorpus() (int, error) {
	e.mu.Lock()
	cells, err := e.corpusCellsLocked()
	e.mu.Unlock()
	if err != nil {
		return 0, err
	}
	fresh := 0
	for _, c := range cells {
		info, err := e.Submit(c.Spec, CorpusPriority, true)
		if err != nil {
			return fresh, err
		}
		if info.State == core.JobQueued {
			fresh++
		}
	}
	return fresh, nil
}
