package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/verdict"
)

// startDaemon launches a gcmcd binary on a fresh port against data and
// returns the command plus the client pointed at it. extra flags are
// appended (e.g. -chaos-storage for the fault-injection tests).
func startDaemon(t *testing.T, bin, data string, extra ...string) (*exec.Cmd, *Client) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data", data, "-checkpoint-every", "1", "-q"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		t.Fatal("daemon printed no address line")
	}
	line := sc.Text()
	const prefix = "gcmcd listening on "
	if !strings.HasPrefix(line, prefix) {
		cmd.Process.Kill()
		t.Fatalf("unexpected first line %q", line)
	}
	go func() { // drain so the daemon never blocks on stdout
		for sc.Scan() {
		}
	}()
	return cmd, NewClient("http://" + strings.TrimPrefix(line, prefix))
}

// pollJob polls over HTTP until cond holds.
func pollJob(t *testing.T, cli *Client, id, what string, cond func(JobInfo) bool) JobInfo {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(120 * time.Second)
	var last JobInfo
	for time.Now().Before(deadline) {
		info, err := cli.Job(ctx, id)
		if err == nil {
			last = info
			if cond(info) {
				return info
			}
			if info.State == core.JobFailed {
				t.Fatalf("job %s failed: %s", id, info.Error)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (last state %s)", id, what, last.State)
	return JobInfo{}
}

// TestCrashRecovery is the durability acceptance test: SIGKILL the
// daemon between layer checkpoints, restart it on the same data
// directory, and require (a) the in-flight job resumes to completion,
// (b) its verdict is byte-identical (canonically) to an uninterrupted
// run's, and (c) a resubmission of the same spec is served from the
// cache with zero new states explored.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	bin := filepath.Join(t.TempDir(), "gcmcd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/gcmcd").CombinedOutput(); err != nil {
		t.Fatalf("building gcmcd: %v\n%s", err, out)
	}
	data := t.TempDir()
	ctx := context.Background()

	// Daemon 1: submit and kill mid-run, after at least one checkpoint.
	d1, cli1 := startDaemon(t, bin, data)
	info, err := cli1.Submit(ctx, slowSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pollJob(t, cli1, info.ID, "mid-run checkpoint", func(i JobInfo) bool {
		return i.State == core.JobRunning && i.HasCheckpoint &&
			i.Progress != nil && i.Progress.Depth >= 8
	})
	if err := d1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d1.Wait()

	// Daemon 2: the job must come back and finish without intervention.
	d2, cli2 := startDaemon(t, bin, data)
	defer func() {
		d2.Process.Signal(syscall.SIGTERM)
		if err := d2.Wait(); err != nil {
			t.Errorf("daemon exited nonzero after SIGTERM: %v", err)
		}
	}()
	done := pollJob(t, cli2, info.ID, "done", func(i JobInfo) bool {
		return i.State == core.JobDone
	})
	if !done.Resumed {
		t.Error("job not marked resumed after the crash")
	}
	if done.Verdict == nil {
		t.Fatal("no verdict after recovery")
	}

	// (b) Byte-identical to an uninterrupted in-process run.
	res, _, err := core.RunJob(slowSpec(), core.JobRun{})
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := slowSpec().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ref := verdict.New("tiny", core.Ablations{}, fp, res)
	if got, want := canonBytes(t, done.Verdict), canonBytes(t, &ref); !bytes.Equal(got, want) {
		t.Errorf("crash-resumed verdict differs from uninterrupted run:\n--- resumed ---\n%s\n--- clean ---\n%s", got, want)
	}

	// (c) Resubmission: cache hit, zero new states.
	m1, err := cli2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := cli2.Submit(ctx, slowSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.State != core.JobDone || hit.Verdict == nil || !hit.Verdict.Cached {
		t.Fatalf("resubmission not a cache hit: %+v", hit)
	}
	m2, err := cli2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m2.StatesExplored != m1.StatesExplored {
		t.Errorf("cache hit explored states: %d -> %d", m1.StatesExplored, m2.StatesExplored)
	}
	if m2.CacheHits < 1 {
		t.Errorf("cache hit not counted: %+v", m2)
	}
}

// TestCrashAtCheckpointSave kills the daemon AT chosen operations
// inside a checkpoint save — the create of the staging file, a
// mid-payload write, and an op deep enough to land in a later save —
// using FaultFS crash-points (the injected crash tears the in-flight
// write and exits 137, like SIGKILL at the worst instant). A clean
// restart on the remains must finish the job with a verdict
// byte-identical (canonically) to an uninterrupted run's.
func TestCrashAtCheckpointSave(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	bin := filepath.Join(t.TempDir(), "gcmcd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/gcmcd").CombinedOutput(); err != nil {
		t.Fatalf("building gcmcd: %v\n%s", err, out)
	}
	ctx := context.Background()

	// The uninterrupted reference, computed once.
	res, _, err := core.RunJob(slowSpec(), core.JobRun{})
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := slowSpec().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ref := verdict.New("tiny", core.Ablations{}, fp, res)
	want := canonBytes(t, &ref)

	// Skips select which run.ckpt.tmp operation dies: 0 is the staging
	// file's create, 3 a mid-payload write of the first save, 13 lands
	// in a later save's write/sync/rename sequence.
	for _, skip := range []int{0, 3, 13} {
		t.Run(fmt.Sprintf("skip=%d", skip), func(t *testing.T) {
			data := t.TempDir()
			spec := fmt.Sprintf("crash@run.ckpt.tmp+%d", skip)
			d1, cli1 := startDaemon(t, bin, data, "-chaos-storage", spec)
			info, submitErr := cli1.Submit(ctx, slowSpec(), 0)
			// The crash can race the Submit response off the wire; the
			// job record itself is persisted before the response is
			// written, so recovery below still finds it.
			if submitErr != nil {
				t.Logf("submit raced the injected crash (job persisted regardless): %v", submitErr)
			}
			err := d1.Wait()
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != 137 {
				t.Fatalf("daemon exit after injected crash: %v (want exit 137)", err)
			}

			d2, cli2 := startDaemon(t, bin, data)
			defer func() {
				d2.Process.Signal(syscall.SIGTERM)
				d2.Wait()
			}()
			id := info.ID
			if id == "" {
				jobs, err := cli2.Jobs(ctx)
				if err != nil || len(jobs) != 1 {
					t.Fatalf("recovering job list: %v (%d jobs)", err, len(jobs))
				}
				id = jobs[0].ID
			}
			done := pollJob(t, cli2, id, "done", func(i JobInfo) bool {
				return i.State == core.JobDone
			})
			if done.Verdict == nil {
				t.Fatal("no verdict after crash recovery")
			}
			if got := canonBytes(t, done.Verdict); !bytes.Equal(got, want) {
				t.Errorf("verdict after crash at run.ckpt.tmp+%d differs from uninterrupted run:\n--- recovered ---\n%s\n--- clean ---\n%s",
					skip, got, want)
			}
		})
	}
}
