package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler exposes the engine as the gcmcd HTTP/JSON API:
//
//	POST   /v1/jobs               submit a job (SubmitRequest -> JobInfo)
//	GET    /v1/jobs               list jobs (newest first)
//	GET    /v1/jobs/{id}          job snapshot
//	GET    /v1/jobs/{id}/stream   NDJSON progress stream (one JobInfo per line,
//	                              last line is the terminal snapshot)
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/verdicts?fingerprint=<hex>   cached verdict lookup
//	GET    /v1/corpus             corpus matrix with per-cell status
//	POST   /v1/corpus             enqueue the corpus as background jobs
//	GET    /healthz               liveness + build identity
//	GET    /metrics               service counters (JSON)
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", e.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", e.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", e.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", e.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", e.handleCancel)
	mux.HandleFunc("GET /v1/verdicts", e.handleVerdicts)
	mux.HandleFunc("GET /v1/corpus", e.handleCorpus)
	mux.HandleFunc("POST /v1/corpus", e.handleEnqueueCorpus)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	return mux
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	info, err := e.Submit(req.Spec, req.Priority, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (e *Engine) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.List())
}

func (e *Engine) handleGet(w http.ResponseWriter, r *http.Request) {
	info, ok := e.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (e *Engine) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := e.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleStream writes NDJSON: the current snapshot, progress snapshots
// as they arrive, and finally the terminal snapshot. Consumers take
// the last line as the result.
func (e *Engine) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := e.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	emit := func(v JobInfo) {
		enc.Encode(v)
		if canFlush {
			flusher.Flush()
		}
	}
	emit(info)
	if info.State.Terminal() {
		return
	}
	ch, cancel, ok := e.Subscribe(id)
	if !ok {
		return
	}
	defer cancel()
	for {
		select {
		case snap, open := <-ch:
			if !open {
				// Terminal: emit the settled record as the last line.
				if final, ok := e.Get(id); ok {
					emit(final)
				}
				return
			}
			emit(snap)
			if snap.State.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (e *Engine) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	fp := r.URL.Query().Get("fingerprint")
	if fp == "" {
		writeError(w, http.StatusBadRequest, "missing fingerprint parameter")
		return
	}
	rec, ok := e.CachedVerdict(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached verdict for fingerprint %q", fp)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (e *Engine) handleCorpus(w http.ResponseWriter, r *http.Request) {
	cells, err := e.Corpus()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cells)
}

func (e *Engine) handleEnqueueCorpus(w http.ResponseWriter, r *http.Request) {
	n, err := e.EnqueueCorpus()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"enqueued": n})
}

func (e *Engine) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.Healthz())
}

func (e *Engine) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.Metrics())
}
