// Package server turns the model checker into a long-running
// verification service: an HTTP/JSON daemon (cmd/gcmcd) that accepts
// verification jobs (core.JobSpec: preset + ablations + options), runs
// them on a bounded worker pool with per-job memory budgets, streams
// progress as NDJSON, and persists every job under a managed data
// directory.
//
// # Durability
//
// Every job checkpoints at the checker's layer barriers (internal/
// checkpoint) into its own job directory, and every state transition is
// persisted atomically, so a daemon that crashes — or is SIGKILLed —
// mid-job resumes in-flight work on restart: jobs found non-terminal
// are re-enqueued, resuming from their latest checkpoint when one
// exists, and the resumed run's verdict is byte-identical (in canonical
// form, see verdict.Record.Canonical) to an uninterrupted run's.
//
// Completed verdicts are cached in a CRC-checked on-disk index keyed by
// the options fingerprint (core.Fingerprint — the same fingerprint the
// checkpoint layer validates on resume), so resubmitting an identical
// configuration returns the cached verdict instantly, with zero new
// states explored.
//
// # Layout
//
//	<data>/jobs/<id>/job.json     job record (spec, state, times)
//	<data>/jobs/<id>/run.ckpt     layer-barrier checkpoint (GCMCCKP1)
//	<data>/jobs/<id>/verdict.json final verdict.Record
//	<data>/cache/<fp>.json        CRC-checked cached verdict
//
// # Corpus mode
//
// EnqueueCorpus enumerates the full preset x ablation x {TSO,SC}
// matrix as low-priority background jobs, so the whole catalogue stays
// continuously verified while interactive submissions jump the queue.
package server

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"log"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/storage"
	"repro/internal/verdict"
)

// Options configures an Engine.
type Options struct {
	// DataDir is the managed data directory (created if missing).
	DataDir string
	// Workers is the number of concurrent verification jobs (default 1;
	// each job additionally runs its own checker goroutines per
	// core.JobOptions.Workers).
	Workers int
	// CheckpointEvery is the default snapshot cadence in BFS layers for
	// jobs that do not set one (default 4 — tighter than the CLI's 16,
	// because a service's whole point is cheap recovery).
	CheckpointEvery int
	// MemBudgetMiB is the default per-job soft heap budget for jobs
	// that do not set one (0 = none).
	MemBudgetMiB int
	// CorpusMaxStates caps each corpus cell's exploration (default
	// 50000) so the background matrix stays tractable.
	CorpusMaxStates int
	// CorpusPresets restricts the corpus matrix to these presets
	// (nil = every shipped preset).
	CorpusPresets []string
	// FS routes every byte of the engine's disk I/O — job records,
	// checkpoints, verdicts, the cache — through a pluggable filesystem;
	// nil means the real one. Fault injection (storage.FaultFS) plugs in
	// here.
	FS storage.FS
	// Retry governs transient-storage-failure re-enqueues (zero value =
	// 3 attempts, 250ms base, 10s cap).
	Retry RetryPolicy
	// Log receives service events (nil = discard).
	Log *log.Logger
}

// Engine is the verification service: a job queue, a worker pool, the
// on-disk job store and the verdict cache. It is safe for concurrent
// use; Handler exposes it over HTTP.
type Engine struct {
	opt   Options     // gcrt:guard immutable
	log   *log.Logger // gcrt:guard immutable
	cache *cache      // gcrt:guard immutable
	start time.Time   // gcrt:guard immutable
	fs    storage.FS  // gcrt:guard immutable
	retry RetryPolicy // gcrt:guard immutable

	mu     sync.Mutex      // gcrt:guard atomic
	cond   *sync.Cond      // gcrt:guard immutable
	jobs   map[string]*job // gcrt:guard by(mu)
	queue  jobQueue        // gcrt:guard by(mu)
	seq    int             // gcrt:guard by(mu)
	pushes int             // queue-insertion tiebreaker; gcrt:guard by(mu)
	closed bool            // gcrt:guard by(mu)
	wg     sync.WaitGroup  // gcrt:guard atomic

	cacheHits, cacheMisses int64        // gcrt:guard by(mu)
	statesExplored         int64        // gcrt:guard by(mu)
	corpusCells            []CorpusCell // memoized matrix; gcrt:guard by(mu)

	tmpSwept       int64     // staging files quarantined at startup; gcrt:guard by(mu)
	storageErrors  int64     // disk failures observed; gcrt:guard by(mu)
	jobRetries     int64     // transient-failure re-enqueues; gcrt:guard by(mu)
	lastStorageErr time.Time // drives the /healthz degraded window; gcrt:guard by(mu)
	lastStorageMsg string    // gcrt:guard by(mu)
}

// job is the engine-internal job state; all fields are guarded by
// Engine.mu.
type job struct {
	id        string                    // gcrt:guard immutable
	spec      core.JobSpec              // gcrt:guard immutable
	fp        uint64                    // gcrt:guard immutable
	summary   string                    // gcrt:guard immutable
	state     core.JobState             // gcrt:guard by(Engine.mu)
	priority  int                       // gcrt:guard immutable
	corpus    bool                      // gcrt:guard immutable
	cached    bool                      // gcrt:guard by(Engine.mu)
	resumed   bool                      // gcrt:guard by(Engine.mu)
	cancelReq bool                      // gcrt:guard by(Engine.mu)
	pushSeq   int                       // gcrt:guard by(Engine.mu)
	submitted time.Time                 // gcrt:guard immutable
	started   time.Time                 // gcrt:guard by(Engine.mu)
	finished  time.Time                 // gcrt:guard by(Engine.mu)
	progress  *ProgressInfo             // gcrt:guard by(Engine.mu)
	lastState int                       // gcrt:guard by(Engine.mu)
	errMsg    string                    // gcrt:guard by(Engine.mu)
	verdict   *verdict.Record           // gcrt:guard by(Engine.mu)
	cancel    context.CancelFunc        // gcrt:guard by(Engine.mu)
	attempts  int                       // transient-failure retries so far; gcrt:guard by(Engine.mu)
	subs      map[chan JobInfo]struct{} // gcrt:guard by(Engine.mu)
}

// New opens (or creates) the data directory, loads the verdict cache,
// recovers persisted jobs — re-enqueueing any that were queued, running
// or interrupted when the previous process died — and starts the worker
// pool.
func New(opt Options) (*Engine, error) {
	if opt.DataDir == "" {
		return nil, fmt.Errorf("server: DataDir is required")
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 4
	}
	if opt.CorpusMaxStates <= 0 {
		opt.CorpusMaxStates = 50000
	}
	lg := opt.Log
	if lg == nil {
		lg = log.New(io.Discard, "", 0)
	}
	fsys := storage.OrOS(opt.FS)
	for _, d := range []string{opt.DataDir, filepath.Join(opt.DataDir, "jobs")} {
		if err := fsys.MkdirAll(d); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	c, swept, err := openCache(fsys, filepath.Join(opt.DataDir, "cache"), lg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opt:      opt,
		log:      lg,
		cache:    c,
		start:    time.Now(),
		fs:       fsys,
		retry:    opt.Retry.withDefaults(3, 250*time.Millisecond, 10*time.Second),
		jobs:     make(map[string]*job),
		tmpSwept: int64(swept),
	}
	e.cond = sync.NewCond(&e.mu)
	if err := e.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < opt.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// Build reports the engine's build identity (also in /healthz).
func (e *Engine) Build() string { return buildinfo.String() }

// jobDir and jobFile name the on-disk layout.
func (e *Engine) jobDir(id string) string { return filepath.Join(e.opt.DataDir, "jobs", id) }
func (e *Engine) jobFile(id, name string) string {
	return filepath.Join(e.jobDir(id), name)
}

// normalize applies the engine defaults a spec did not set. Neither
// field enters the options fingerprint, so defaults never change which
// cached verdict a spec matches.
func (e *Engine) normalize(spec core.JobSpec) core.JobSpec {
	if spec.Options.CheckpointEvery <= 0 {
		spec.Options.CheckpointEvery = e.opt.CheckpointEvery
	}
	if spec.Options.MemBudgetMiB <= 0 {
		spec.Options.MemBudgetMiB = e.opt.MemBudgetMiB
	}
	return spec
}

// Submit validates the spec, consults the verdict cache, and either
// returns a completed cache-hit job immediately or enqueues a new run.
// An already-queued or running job with the same fingerprint is
// coalesced (its record is returned instead of a duplicate being
// enqueued).
func (e *Engine) Submit(spec core.JobSpec, priority int, corpus bool) (JobInfo, error) {
	spec = e.normalize(spec)
	fp, summary, err := spec.Fingerprint()
	if err != nil {
		return JobInfo{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return JobInfo{}, fmt.Errorf("server: shutting down")
	}
	// Coalesce with an identical in-flight job.
	for _, j := range e.jobs {
		if j.fp == fp && !j.state.Terminal() {
			return e.infoLocked(j), nil
		}
	}
	j := &job{
		spec:      spec,
		fp:        fp,
		summary:   summary,
		priority:  priority,
		corpus:    corpus,
		submitted: time.Now(),
		subs:      make(map[chan JobInfo]struct{}),
	}
	e.seq++
	j.id = fmt.Sprintf("j%06d", e.seq)
	if rec, ok := e.cache.get(fp); ok {
		e.cacheHits++
		hit := *rec
		hit.Cached = true
		j.state = core.JobDone
		j.cached = true
		j.verdict = &hit
		j.finished = j.submitted
		e.jobs[j.id] = j
		if err := e.persistLocked(j); err != nil {
			return JobInfo{}, err
		}
		if err := writeJSONAtomic(e.fs, e.jobFile(j.id, "verdict.json"), &hit); err != nil {
			e.noteStorageErrorLocked(err)
			return JobInfo{}, err
		}
		e.log.Printf("job %s: cache hit (fp %016x, %s)", j.id, fp, spec.Preset)
		return e.infoLocked(j), nil
	}
	e.cacheMisses++
	j.state = core.JobQueued
	e.jobs[j.id] = j
	if err := e.persistLocked(j); err != nil {
		delete(e.jobs, j.id)
		return JobInfo{}, err
	}
	e.pushLocked(j)
	e.log.Printf("job %s: queued (fp %016x, %s prio %d)", j.id, fp, spec.Preset, priority)
	return e.infoLocked(j), nil
}

// pushLocked enqueues j and wakes a worker.
func (e *Engine) pushLocked(j *job) {
	e.pushes++
	j.pushSeq = e.pushes
	heap.Push(&e.queue, j)
	e.cond.Signal()
}

// Get returns a job snapshot.
func (e *Engine) Get(id string) (JobInfo, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return e.infoLocked(j), true
}

// List returns snapshots of every job, newest first.
func (e *Engine) List() []JobInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]JobInfo, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, e.infoLocked(j))
	}
	sortJobs(out)
	return out
}

// Cancel stops a job: a queued job is cancelled in place, a running one
// has its context cancelled (the checker finishes its current layer,
// writes a final checkpoint, and the job lands in the cancelled state).
// Cancelling a terminal job is a no-op.
func (e *Engine) Cancel(id string) (JobInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("server: no job %q", id)
	}
	if j.state.Terminal() {
		return e.infoLocked(j), nil
	}
	j.cancelReq = true
	switch j.state {
	case core.JobQueued, core.JobResuming, core.JobInterrupted:
		j.state = core.JobCancelled
		j.finished = time.Now()
		if err := e.persistLocked(j); err != nil {
			return JobInfo{}, err
		}
		e.notifyLocked(j)
	case core.JobRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return e.infoLocked(j), nil
}

// Subscribe returns a channel of progress snapshots for the job; the
// channel closes when the job reaches a terminal state (or the
// subscription is cancelled). ok is false for unknown jobs.
func (e *Engine) Subscribe(id string) (<-chan JobInfo, func(), bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, nil, false
	}
	ch := make(chan JobInfo, 16)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, true
	}
	j.subs[ch] = struct{}{}
	cancel := func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, live := j.subs[ch]; live {
			delete(j.subs, ch)
			close(ch)
		}
	}
	return ch, cancel, true
}

// CachedVerdict looks a fingerprint (hex) up in the verdict cache.
func (e *Engine) CachedVerdict(fpHex string) (*verdict.Record, bool) {
	var fp uint64
	if _, err := fmt.Sscanf(fpHex, "%x", &fp); err != nil {
		return nil, false
	}
	rec, ok := e.cache.get(fp)
	if !ok {
		return nil, false
	}
	hit := *rec
	hit.Cached = true
	return &hit, true
}

// Shutdown stops the engine gracefully: intake closes, every running
// job's context is cancelled (the checker finishes its current layer
// and writes a final checkpoint), and the workers drain. Interrupted
// jobs persist in the interrupted state and resume on the next start.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	e.closed = true
	for _, j := range e.jobs {
		if j.state == core.JobRunning && j.cancel != nil {
			j.cancel()
		}
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.log.Printf("shutdown: waiter panic: %v", r)
			}
		}()
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}

// recover loads persisted jobs from the data directory and re-enqueues
// every non-terminal one — the crash-recovery path. A job with a
// checkpoint resumes from it (state "resuming"); one killed before its
// first snapshot restarts from scratch (state "queued").
func (e *Engine) recover() error {
	dirs, err := e.fs.ReadDir(filepath.Join(e.opt.DataDir, "jobs"))
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		id := d.Name()
		if n, err := sweepTmp(e.fs, e.jobDir(id)); err != nil {
			e.log.Printf("recover: sweep %s: %v", id, err)
		} else if n > 0 {
			e.tmpSwept += int64(n)
			e.log.Printf("recover: %s: quarantined %d stale staging file(s)", id, n)
		}
		var pj persistedJob
		if err := readJSON(e.fs, e.jobFile(id, "job.json"), &pj); err != nil {
			e.log.Printf("recover: skipping %s: %v", id, err)
			continue
		}
		spec := e.normalize(pj.Spec)
		fp, summary, err := spec.Fingerprint()
		if err != nil {
			e.log.Printf("recover: skipping %s: %v", id, err)
			continue
		}
		j := &job{
			id:        id,
			spec:      spec,
			fp:        fp,
			summary:   summary,
			state:     pj.State,
			priority:  pj.Priority,
			corpus:    pj.Corpus,
			cached:    pj.Cached,
			resumed:   pj.Resumed,
			submitted: pj.Submitted,
			started:   pj.Started,
			finished:  pj.Finished,
			errMsg:    pj.Error,
			subs:      make(map[chan JobInfo]struct{}),
		}
		if n := numericSuffix(id); n > e.seq {
			e.seq = n
		}
		if j.state.Terminal() {
			if j.state == core.JobDone {
				var rec verdict.Record
				if err := readJSON(e.fs, e.jobFile(id, "verdict.json"), &rec); err == nil {
					j.verdict = &rec
				} else if cached, ok := e.cache.get(fp); ok {
					j.verdict = cached
				} else {
					e.log.Printf("recover: %s done but verdict unreadable: %v", id, err)
				}
			}
			e.jobs[id] = j
			continue
		}
		// Non-terminal: the previous process died (or was killed) with
		// this job in flight. Re-enqueue it, resuming from the latest
		// checkpoint when one survived.
		if _, err := e.fs.Stat(e.jobFile(id, "run.ckpt")); err == nil {
			j.state = core.JobResuming
			j.resumed = true
		} else {
			j.state = core.JobQueued
		}
		e.jobs[id] = j
		if err := e.persistLocked(j); err != nil {
			return err
		}
		e.pushLocked(j)
		e.log.Printf("recover: %s re-enqueued as %s (fp %016x)", id, j.state, fp)
	}
	return nil
}

// numericSuffix parses the numeric part of a jNNNNNN id (0 otherwise).
func numericSuffix(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}

// worker runs jobs until the engine closes.
func (e *Engine) worker() {
	defer e.wg.Done()
	// A panic on the job path must not shrink the worker pool for the
	// daemon's remaining lifetime: log it and spawn a replacement
	// (runJob settles the job record itself; this guard is the backstop
	// for panics outside it). The wg.Add happens before this goroutine's
	// deferred Done, so Shutdown's Wait cannot release early.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e.log.Printf("worker: recovered panic: %v", r)
		e.mu.Lock()
		respawn := !e.closed
		if respawn {
			e.wg.Add(1)
		}
		e.mu.Unlock()
		if respawn {
			go e.worker()
		}
	}()
	for {
		e.mu.Lock()
		for !e.closed && e.queue.Len() == 0 {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		j := heap.Pop(&e.queue).(*job)
		if j.state != core.JobQueued && j.state != core.JobResuming {
			// Cancelled while queued; nothing to run.
			e.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		j.state = core.JobRunning
		j.started = time.Now()
		perr := e.persistLocked(j)
		e.notifyLocked(j)
		e.mu.Unlock()
		if perr != nil {
			e.log.Printf("job %s: persist: %v", j.id, perr)
		}
		e.runJob(ctx, j)
		cancel()
	}
}

// runJob executes one job and settles its terminal (or interrupted)
// state.
func (e *Engine) runJob(ctx context.Context, j *job) {
	// Settle the job even if a panic escapes the checker's own
	// containment (explore.StopPanic): a job left in the running state
	// would hold its subscribers open forever and never persist.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		j.state = core.JobFailed
		j.errMsg = fmt.Sprintf("panic: %v", r)
		j.finished = time.Now()
		if err := e.persistLocked(j); err != nil {
			e.log.Printf("job %s: persist: %v", j.id, err)
		}
		e.notifyLocked(j)
		e.log.Printf("job %s: failed on recovered panic: %v", j.id, r)
	}()
	e.log.Printf("job %s: running (%s %s)", j.id, j.spec.Preset, j.spec.Ablations)
	res, resumed, err := core.RunJob(j.spec, core.JobRun{
		CheckpointPath: e.jobFile(j.id, "run.ckpt"),
		Resume:         true,
		Context:        ctx,
		Progress:       func(p core.Progress) { e.onProgress(j, p) },
		// Stream subscribers want reports well before the checker's
		// 8192-state default on small jobs.
		ProgressEvery: 500,
		SpillDir:      e.jobFile(j.id, "spill"),
		FS:            e.fs,
	})

	e.mu.Lock()
	defer e.mu.Unlock()
	j.resumed = j.resumed || resumed
	if n := res.States - j.lastState; n > 0 {
		e.statesExplored += int64(n)
		j.lastState = res.States
	}
	switch {
	case err != nil:
		if storage.IsTransient(err) {
			e.noteStorageErrorLocked(err)
			if e.requeueLocked(j, err) {
				return
			}
		}
		j.state = core.JobFailed
		j.errMsg = err.Error()
	case res.Stopped == explore.StopInterrupted:
		if j.cancelReq {
			j.state = core.JobCancelled
		} else {
			// Engine shutdown: the final checkpoint is on disk and the
			// job resumes on the next start.
			j.state = core.JobInterrupted
		}
	case res.Stopped == explore.StopPanic:
		j.state = core.JobFailed
		j.errMsg = res.Err.Error()
	case res.Stopped == explore.StopSpill:
		// The disk-spill rung failed mid-run: the exploration is
		// incomplete and cannot settle a verdict. A transient disk
		// re-enqueues; a permanent one fails loudly.
		e.noteStorageErrorLocked(res.Err)
		if storage.IsTransient(res.Err) && e.requeueLocked(j, res.Err) {
			return
		}
		j.state = core.JobFailed
		j.errMsg = res.Err.Error()
	default:
		rec := verdict.New(j.spec.Preset, j.spec.Ablations, j.fp, res)
		rec.Build = buildinfo.String()
		if err := writeJSONAtomic(e.fs, e.jobFile(j.id, "verdict.json"), &rec); err != nil {
			// A verdict that cannot be persisted is not settled: the
			// whole point of the service is durable verdicts. Transient
			// failures re-enqueue (the run resumes from its final
			// checkpoint, or replays — either way the verdict is
			// recomputed identically); a permanent one fails the job.
			e.noteStorageErrorLocked(err)
			e.log.Printf("job %s: verdict persist: %v", j.id, err)
			if storage.IsTransient(err) && e.requeueLocked(j, err) {
				return
			}
			j.state = core.JobFailed
			j.errMsg = err.Error()
			break
		}
		j.state = core.JobDone
		j.verdict = &rec
		if err := e.cache.put(j.fp, j.summary, rec); err != nil {
			// The per-job verdict survived; a cache-write failure only
			// costs a future cache hit.
			e.noteStorageErrorLocked(err)
			e.log.Printf("job %s: cache: %v", j.id, err)
		}
	}
	j.finished = time.Now()
	if err := e.persistLocked(j); err != nil {
		e.log.Printf("job %s: persist: %v", j.id, err)
	}
	e.notifyLocked(j)
	e.log.Printf("job %s: %s (%d states, resumed=%v, attempts=%d)", j.id, j.state, res.States, j.resumed, j.attempts)
}

// requeueLocked re-enqueues a job after a transient storage failure:
// attempts increments, the job goes back to queued, and a backoff timer
// pushes it onto the heap when the delay elapses. Returns false when
// the retry budget is spent, the engine is closing, or the job was
// cancelled — the caller then settles the job as failed.
func (e *Engine) requeueLocked(j *job, cause error) bool {
	if e.closed || j.cancelReq {
		return false
	}
	if j.attempts+1 >= e.retry.MaxAttempts {
		e.log.Printf("job %s: retry budget spent (%d attempts): %v", j.id, j.attempts+1, cause)
		return false
	}
	j.attempts++
	j.state = core.JobQueued
	e.jobRetries++
	delay := e.retry.Backoff(j.attempts)
	if err := e.persistLocked(j); err != nil {
		e.log.Printf("job %s: persist: %v", j.id, err)
	}
	e.notifyLocked(j)
	e.log.Printf("job %s: transient storage failure (attempt %d/%d, retrying in %s): %v",
		j.id, j.attempts, e.retry.MaxAttempts, delay.Round(time.Millisecond), cause)
	time.AfterFunc(delay, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		// The job may have been cancelled (or the engine shut down)
		// while the timer ran; a queued-state check keeps the push
		// honest — and a shutdown leaves the persisted queued record
		// for the next start's recovery.
		if e.closed || j.state != core.JobQueued {
			return
		}
		e.pushLocked(j)
	})
	return true
}

// onProgress publishes a checker progress report to the job record,
// the engine counters, and every stream subscriber.
func (e *Engine) onProgress(j *job, p core.Progress) {
	e.mu.Lock()
	j.progress = &ProgressInfo{
		States:      p.States,
		Transitions: p.Transitions,
		Depth:       p.Depth,
		Frontier:    p.Frontier,
		ElapsedSec:  p.Elapsed.Seconds(),
	}
	if n := p.States - j.lastState; n > 0 {
		e.statesExplored += int64(n)
		j.lastState = p.States
	}
	info := e.infoLocked(j)
	subs := make([]chan JobInfo, 0, len(j.subs))
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	e.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- info:
		default: // slow subscriber: drop the intermediate report
		}
	}
}

// notifyLocked publishes a state transition; terminal transitions close
// every subscription (subscribers then fetch the final record).
func (e *Engine) notifyLocked(j *job) {
	info := e.infoLocked(j)
	for ch := range j.subs {
		select {
		case ch <- info:
		default:
		}
		if j.state.Terminal() {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// persistLocked writes the job record atomically.
func (e *Engine) persistLocked(j *job) error {
	if err := e.fs.MkdirAll(e.jobDir(j.id)); err != nil {
		e.noteStorageErrorLocked(err)
		return fmt.Errorf("server: %w", err)
	}
	err := writeJSONAtomic(e.fs, e.jobFile(j.id, "job.json"), persistedJob{
		ID:        j.id,
		Spec:      j.spec,
		State:     j.state,
		Priority:  j.priority,
		Corpus:    j.corpus,
		Cached:    j.cached,
		Resumed:   j.resumed,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Error:     j.errMsg,
	})
	if err != nil {
		e.noteStorageErrorLocked(err)
	}
	return err
}

// noteStorageErrorLocked records a disk failure for the metrics
// counters and the /healthz degraded window.
func (e *Engine) noteStorageErrorLocked(err error) {
	e.storageErrors++
	e.lastStorageErr = time.Now()
	e.lastStorageMsg = err.Error()
}

// storageDegradedWindow is how long after the last observed disk
// failure /healthz keeps reporting storage "degraded".
const storageDegradedWindow = time.Minute

// Healthz reports liveness plus storage health: a disk failure inside
// the window marks storage degraded (the process itself stays "ok" —
// it is alive and answering).
func (e *Engine) Healthz() Health {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := Health{Status: "ok", Build: buildinfo.String(), Storage: "ok"}
	if !e.lastStorageErr.IsZero() && time.Since(e.lastStorageErr) < storageDegradedWindow {
		h.Storage = "degraded"
		h.StorageError = e.lastStorageMsg
	}
	return h
}

// infoLocked snapshots a job for the API.
func (e *Engine) infoLocked(j *job) JobInfo {
	info := JobInfo{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		Fingerprint: fmt.Sprintf("%016x", j.fp),
		Priority:    j.priority,
		Corpus:      j.corpus,
		Cached:      j.cached,
		Resumed:     j.resumed,
		Submitted:   j.submitted,
		Attempts:    j.attempts,
		Progress:    j.progress,
		Error:       j.errMsg,
		Verdict:     j.verdict,
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
	}
	if _, err := e.fs.Stat(e.jobFile(j.id, "run.ckpt")); err == nil {
		info.HasCheckpoint = true
	}
	return info
}

// Metrics reports the service counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := Metrics{
		Build:          buildinfo.String(),
		UptimeSec:      time.Since(e.start).Seconds(),
		Workers:        e.opt.Workers,
		QueueDepth:     e.queue.Len(),
		JobsByState:    map[string]int{},
		CacheHits:      e.cacheHits,
		CacheMisses:    e.cacheMisses,
		CacheEntries:   e.cache.len(),
		StatesExplored: e.statesExplored,
		TmpSwept:       e.tmpSwept,
		StorageErrors:  e.storageErrors,
		JobRetries:     e.jobRetries,
	}
	if m.UptimeSec > 0 {
		m.StatesPerSec = float64(e.statesExplored) / m.UptimeSec
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapAllocBytes = ms.HeapAlloc
	for _, j := range e.jobs {
		m.JobsByState[string(j.state)]++
		jm := JobMetric{ID: j.id, State: j.state, MemBudgetMiB: j.spec.Options.MemBudgetMiB}
		if j.progress != nil {
			jm.States = j.progress.States
		} else if j.verdict != nil {
			jm.States = j.verdict.States
		}
		m.Jobs = append(m.Jobs, jm)
	}
	sortJobMetrics(m.Jobs)
	return m
}
