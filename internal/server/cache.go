package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/storage"
	"repro/internal/verdict"
)

// cacheSchema tags on-disk cache entries.
const cacheSchema = "gcmc.cache/v1"

// cacheEntry is one file under <data>/cache/: a verdict record wrapped
// with its fingerprint, the human-readable options summary it matched,
// and a CRC-32 over the record bytes. The checksum is what lets a
// restarted daemon trust a cache it did not write this run: a torn or
// bit-rotted entry fails the check and is skipped, never served.
type cacheEntry struct {
	Schema      string          `json:"schema"`
	Fingerprint string          `json:"fingerprint"`
	Summary     string          `json:"summary,omitempty"`
	CRC32       uint32          `json:"crc32"`
	Record      json.RawMessage `json:"record"`
}

// cache is the CRC-checked on-disk verdict index, keyed by the options
// fingerprint, with an in-memory mirror for lookups.
type cache struct {
	fs  storage.FS  // gcrt:guard immutable
	dir string      // gcrt:guard immutable
	log *log.Logger // gcrt:guard immutable

	mu   sync.Mutex                 // gcrt:guard atomic
	recs map[uint64]*verdict.Record // gcrt:guard by(mu)
}

// openCache creates the cache directory if needed, quarantines stale
// atomic-write staging files, and loads every valid entry; corrupt
// files are logged and skipped. The second return is the number of
// staging files swept.
func openCache(fsys storage.FS, dir string, lg *log.Logger) (*cache, int, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, 0, fmt.Errorf("server: %w", err)
	}
	swept, err := sweepTmp(fsys, dir)
	if err != nil {
		return nil, swept, err
	}
	if swept > 0 {
		lg.Printf("cache: quarantined %d stale staging file(s)", swept)
	}
	c := &cache{fs: fsys, dir: dir, log: lg, recs: make(map[uint64]*verdict.Record)}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, swept, fmt.Errorf("server: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		fp, rec, err := loadEntry(fsys, path)
		if err != nil {
			lg.Printf("cache: skipping %s: %v", ent.Name(), err)
			continue
		}
		c.recs[fp] = rec
	}
	return c, swept, nil
}

// loadEntry parses and checksums one cache file.
func loadEntry(fsys storage.FS, path string) (uint64, *verdict.Record, error) {
	b, err := storage.ReadFile(fsys, path)
	if err != nil {
		return 0, nil, err
	}
	var ent cacheEntry
	if err := json.Unmarshal(b, &ent); err != nil {
		return 0, nil, fmt.Errorf("parse: %w", err)
	}
	if ent.Schema != cacheSchema {
		return 0, nil, fmt.Errorf("schema %q (want %q)", ent.Schema, cacheSchema)
	}
	// The CRC covers the compact form: the enclosing file is written
	// indented (which reformats the embedded raw record), so the
	// checksum must be whitespace-insensitive to survive a round trip
	// while still catching any content change.
	var compact bytes.Buffer
	if err := json.Compact(&compact, ent.Record); err != nil {
		return 0, nil, fmt.Errorf("record: %w", err)
	}
	if got := crc32.ChecksumIEEE(compact.Bytes()); got != ent.CRC32 {
		return 0, nil, fmt.Errorf("crc mismatch: file says %08x, record hashes to %08x", ent.CRC32, got)
	}
	var fp uint64
	if _, err := fmt.Sscanf(ent.Fingerprint, "%x", &fp); err != nil {
		return 0, nil, fmt.Errorf("fingerprint %q: %w", ent.Fingerprint, err)
	}
	var rec verdict.Record
	if err := json.Unmarshal(ent.Record, &rec); err != nil {
		return 0, nil, fmt.Errorf("record: %w", err)
	}
	return fp, &rec, nil
}

// get returns the cached verdict for a fingerprint.
func (c *cache) get(fp uint64) (*verdict.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[fp]
	return rec, ok
}

// put stores a verdict, atomically writing the checksummed entry file.
func (c *cache) put(fp uint64, summary string, rec verdict.Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: cache marshal: %w", err)
	}
	ent := cacheEntry{
		Schema:      cacheSchema,
		Fingerprint: fmt.Sprintf("%016x", fp),
		Summary:     summary,
		CRC32:       crc32.ChecksumIEEE(raw),
		Record:      raw,
	}
	path := filepath.Join(c.dir, ent.Fingerprint+".json")
	if err := writeJSONAtomic(c.fs, path, &ent); err != nil {
		return err
	}
	c.mu.Lock()
	c.recs[fp] = &rec
	c.mu.Unlock()
	return nil
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}
