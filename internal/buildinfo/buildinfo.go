// Package buildinfo renders the build's identity — module version plus
// VCS revision — from the information the Go toolchain embeds in every
// binary. Each CLI exposes it behind -version, the daemon reports it in
// /healthz, and verdict records carry it so a cached verdict names the
// build that produced it.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// String returns a one-line build identity, e.g.
//
//	repro devel vcs=2f5105e8 built=2026-08-07T10:11:12Z (modified)
//
// Fields the toolchain did not embed (a non-VCS build, a test binary)
// are omitted; the result is never empty.
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := bi.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	out := fmt.Sprintf("%s %s", bi.Main.Path, ver)
	var rev, at string
	modified := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " vcs=" + rev
	}
	if at != "" {
		out += " built=" + at
	}
	if modified {
		out += " (modified)"
	}
	return out
}
