//go:build !race

package analysis_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
