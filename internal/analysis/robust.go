package analysis

import (
	"fmt"

	"repro/internal/tso"
)

// This file implements TSO-robustness analysis for litmus thread
// programs in the style of Shasha and Snir's critical cycles, as
// specialized to TSO (Bouajjani, Meyer et al.): the only relaxation TSO
// permits over SC is reordering a store past a later load of a
// *different* address with no intervening fence or locked instruction
// (store buffering + store forwarding). A program is TSO-robust — every
// TSO-reachable outcome is SC-reachable — iff no such relaxable
// store→load program-order pair lies on a cycle of program order and
// conflict edges. Fencing exactly the critical pairs restores SC.

// TSOPair is a program-order store→load pair of one thread that TSO can
// execute out of order (different addresses, no fence or locked
// instruction between them). Store and Load are instruction indices.
type TSOPair struct {
	Thread      int
	Store, Load int
}

func (p TSOPair) String() string {
	return fmt.Sprintf("thread %d: St@%d → Ld@%d", p.Thread, p.Store, p.Load)
}

// TSOReport is the robustness verdict for a litmus program.
type TSOReport struct {
	// Robust: no relaxed pair lies on a critical cycle, so the program's
	// TSO behaviors coincide with SC.
	Robust bool
	// Critical lists the relaxed pairs on critical cycles — placing an
	// MFence inside each pair restores SC.
	Critical []TSOPair
	// Relaxed lists every relaxable store→load pair, critical or not.
	Relaxed []TSOPair
}

// access is one memory access instruction viewed as a graph node.
type access struct {
	thread, idx int
	reads       bool
	writes      bool
	addr        tso.Addr
	// locked instructions and fences break relaxation windows.
	fence bool
}

// AnalyzeTSOProgram computes the TSO-robustness report of a litmus
// program without exploring it.
func AnalyzeTSOProgram(p tso.Program) TSOReport {
	// Gather per-thread access lists. MFence contributes no node, only a
	// window break; CAS/XchgAdd are read-write accesses that also fence.
	var nodes []access
	byThread := make([][]int, len(p.Threads))
	fenceAt := make([][]bool, len(p.Threads)) // per instruction index: breaks windows
	for t, instrs := range p.Threads {
		fenceAt[t] = make([]bool, len(instrs))
		for i, in := range instrs {
			switch in := in.(type) {
			case tso.Ld:
				byThread[t] = append(byThread[t], len(nodes))
				nodes = append(nodes, access{thread: t, idx: i, reads: true, addr: in.Addr})
			case tso.St:
				byThread[t] = append(byThread[t], len(nodes))
				nodes = append(nodes, access{thread: t, idx: i, writes: true, addr: in.Addr})
			case tso.MFence:
				fenceAt[t][i] = true
			case tso.CAS:
				fenceAt[t][i] = true
				byThread[t] = append(byThread[t], len(nodes))
				nodes = append(nodes, access{thread: t, idx: i, reads: true, writes: true, addr: in.Addr, fence: true})
			case tso.XchgAdd:
				fenceAt[t][i] = true
				byThread[t] = append(byThread[t], len(nodes))
				nodes = append(nodes, access{thread: t, idx: i, reads: true, writes: true, addr: in.Addr, fence: true})
			}
		}
	}

	// relaxedPair: node u (a plain store) directly precedes node v (a
	// plain load of a different address) in program order with no fence
	// or locked instruction strictly between them.
	relaxedPair := func(u, v access) bool {
		if u.thread != v.thread || u.idx >= v.idx {
			return false
		}
		if !u.writes || u.fence || !v.reads || v.writes {
			return false
		}
		if u.addr == v.addr {
			return false // store forwarding: same-address pairs stay ordered
		}
		for i := u.idx + 1; i < v.idx; i++ {
			if fenceAt[u.thread][i] {
				return false
			}
		}
		return true
	}

	// Build the happens-before skeleton: program-order edges between
	// consecutive-in-po accesses of each thread (transitively closed by
	// reachability below) and conflict edges in both directions between
	// accesses of different threads to the same address where at least
	// one writes.
	succ := make([][]int, len(nodes))
	addEdge := func(u, v int) { succ[u] = append(succ[u], v) }
	for _, order := range byThread {
		for i := 0; i+1 < len(order); i++ {
			addEdge(order[i], order[i+1])
		}
	}
	for u := range nodes {
		for v := range nodes {
			if nodes[u].thread == nodes[v].thread || nodes[u].addr != nodes[v].addr {
				continue
			}
			if nodes[u].writes || nodes[v].writes {
				addEdge(u, v)
			}
		}
	}

	reach := func(from, to int) bool {
		if from == to {
			return true
		}
		visited := make([]bool, len(nodes))
		stack := []int{from}
		visited[from] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range succ[n] {
				if v == to {
					return true
				}
				if !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		return false
	}

	rep := TSOReport{Robust: true}
	for ui, u := range nodes {
		for vi, v := range nodes {
			if !relaxedPair(u, v) {
				continue
			}
			pair := TSOPair{Thread: u.thread, Store: u.idx, Load: v.idx}
			rep.Relaxed = append(rep.Relaxed, pair)
			// The pair is critical iff the load can happen-before the
			// store through the rest of the graph: then delaying the
			// store's commit past the load is observable.
			if reach(vi, ui) {
				rep.Robust = false
				rep.Critical = append(rep.Critical, pair)
			}
		}
	}
	return rep
}
