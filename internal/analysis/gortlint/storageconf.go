package gortlint

// This file declares the discipline tables for the hostile-disk layer:
// the fault-injecting filesystem (internal/storage) and the checker's
// disk-spill state (internal/explore). Both are crossed by concurrent
// writers — FaultFS by every goroutine doing I/O through it, the spill
// state by the checker's worker pool — so their shared fields carry
// the same table-plus-annotation discipline as the runtime and the
// service engine.

// StorageDirs lists the load roots for the storage-layer passes.
func StorageDirs() []string {
	return []string{"internal/storage", "internal/explore"}
}

// StorageDiscipline returns the field-access discipline for the
// fault-injecting filesystem: one FaultFS lock over the op counter,
// trace, schedules and crash latch; per-file wrappers frozen at
// construction.
func StorageDiscipline() DisciplineConfig {
	return DisciplineConfig{
		Package: "repro/internal/storage",
		Table: Table{
			Structs: map[string]map[string]FieldRule{
				"FaultFS": {
					"inner":   {Class: Immutable},
					"mu":      {Class: Atomic},
					"crashFn": {Class: Guarded, Guard: "mu"},
					"n":       {Class: Guarded, Guard: "mu"},
					"trace":   {Class: Guarded, Guard: "mu"},
					"byIndex": {Class: Guarded, Guard: "mu"},
					"byPath":  {Class: Guarded, Guard: "mu"},
					"rng":     {Class: Guarded, Guard: "mu"},
					"rate":    {Class: Guarded, Guard: "mu"},
					"kinds":   {Class: Guarded, Guard: "mu"},
					"crashed": {Class: Guarded, Guard: "mu"},
				},
				"pathFault": {
					// Schedule entries live inside FaultFS.byPath and are
					// only walked (and spent) under the FaultFS lock.
					"substr": {Class: Guarded, Guard: "FaultFS.mu"},
					"kind":   {Class: Guarded, Guard: "FaultFS.mu"},
					"skip":   {Class: Guarded, Guard: "FaultFS.mu"},
					"spent":  {Class: Guarded, Guard: "FaultFS.mu"},
				},
				"faultFile": {
					"fs":   {Class: Immutable},
					"f":    {Class: Immutable},
					"path": {Class: Immutable},
				},
			},
			Init: []string{"NewFaultFS", "FaultFS.Open", "FaultFS.Create"},
		},
	}
}

// ExploreSpillDiscipline returns the field-access discipline for the
// checker's disk-spill state: spill activation, the hot-record file
// and the parked frontier layer mutate under one spillState lock
// (workers fetch parked states read-only through the immutable
// parkedLayer handle the boundary published).
func ExploreSpillDiscipline() DisciplineConfig {
	return DisciplineConfig{
		Package: "repro/internal/explore",
		Table: Table{
			Structs: map[string]map[string]FieldRule{
				"spillState": {
					"fs":      {Class: Immutable},
					"dir":     {Class: Immutable},
					"keep":    {Class: Immutable},
					"mu":      {Class: Atomic},
					"active":  {Class: Guarded, Guard: "mu"},
					"err":     {Class: Guarded, Guard: "mu"},
					"vf":      {Class: Guarded, Guard: "mu"},
					"vfPath":  {Class: Guarded, Guard: "mu"},
					"parked":  {Class: Guarded, Guard: "mu"},
					"seq":     {Class: Guarded, Guard: "mu"},
					"layers":  {Class: Guarded, Guard: "mu"},
					"flushes": {Class: Guarded, Guard: "mu"},
					"states":  {Class: Guarded, Guard: "mu"},
					"bytes":   {Class: Guarded, Guard: "mu"},
				},
				"parkedLayer": {
					// Frozen when parkLayerLocked publishes the layer at a
					// barrier; workers then read it concurrently.
					"f":    {Class: Immutable},
					"path": {Class: Immutable},
					"offs": {Class: Immutable},
					"lens": {Class: Immutable},
				},
			},
			Init: []string{"newSpillState"},
			Holds: map[string][]string{
				// The *Locked suffix is the caller-holds convention:
				// boundary (and activate) take the lock, then delegate.
				"spillState.flushHotLocked":    {"spillState.mu"},
				"spillState.parkLayerLocked":   {"spillState.mu"},
				"spillState.closeParkedLocked": {"spillState.mu"},
			},
		},
	}
}
