package gortlint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/golint"
)

// HooksConfig restricts benchmark-only hooks to benchmark code. The
// arena exports raw mark-flag mutators (SetFlagForBenchmark,
// WhitenForBenchmark) so microbenchmarks can re-measure the marking CAS;
// calling either from a production path silently corrupts the tri-color
// invariant the verified protocol maintains. Test files are never loaded
// by the analyzer (parseDir skips _test.go), so the only legitimate
// non-test callers are the packages listed here.
type HooksConfig struct {
	// Package declares the restricted functions (import path or suffix).
	Package string
	// RestrictedFns are the benchmark-only funcKeys.
	RestrictedFns []string
	// AllowedPkgSuffixes are import-path suffixes of packages permitted
	// to reference the hooks (e.g. "cmd/gcrt-bench").
	AllowedPkgSuffixes []string
}

// CheckHooks flags every reference to a restricted hook from a package
// not on the allow list.
func CheckHooks(mod *golint.Module, cfg HooksConfig) ([]golint.Diagnostic, error) {
	pkg := mod.Package(cfg.Package)
	if pkg == nil {
		return nil, fmt.Errorf("gortlint: package %s not loaded", cfg.Package)
	}
	// Resolve the restricted keys to function objects, failing loudly on
	// drift (a renamed hook must not silently uncheck).
	restricted := make(map[*types.Func]string, len(cfg.RestrictedFns))
	want := toSet(cfg.RestrictedFns)
	for _, f := range mod.Functions() {
		if f.Pkg != pkg {
			continue
		}
		if key := f.Key(); want[key] {
			restricted[f.Fn] = key
			delete(want, key)
		}
	}
	for key := range want {
		return nil, fmt.Errorf("gortlint: restricted hook %s not found in %s (renamed?)", key, pkg.Path)
	}

	allowed := func(path string) bool {
		for _, suf := range cfg.AllowedPkgSuffixes {
			if path == suf || strings.HasSuffix(path, "/"+suf) {
				return true
			}
		}
		return false
	}

	var diags []golint.Diagnostic
	for _, p := range mod.Packages() {
		if allowed(p.Path) {
			continue
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if key, isRestricted := restricted[fn]; isRestricted {
					diags = append(diags, golint.Diagnostic{
						Pos:  mod.Fset().Position(id.Pos()),
						Func: p.Path,
						Message: fmt.Sprintf(
							"benchmark-only hook %s referenced outside benchmark code: it writes the raw mark flag and breaks the tri-color invariant on production paths", key),
					})
				}
				return true
			})
		}
	}
	golint.SortDiagnostics(diags)
	return diags, nil
}
