// Package gortlint is the concurrency-discipline analyzer for the
// concrete runtime (internal/gcrt) and the verification service
// (internal/server): the Go-source mirror of the model-level placement
// rules in internal/analysis.
//
// The model checker proves the protocol over the abstract machine;
// -race soaks and the online oracle check the runtime dynamically — but
// a dynamic check misses a discipline violation whenever the scheduler
// happens not to interleave it. Following the pointer-race-freedom line
// of work (Haziza et al.; Meyer–Wolff), the runtime's shared state
// becomes statically checkable once every shared location carries an
// explicit access discipline. This package declares that discipline as
// a table (the way effects.go declares KindEffects), requires each
// field's declaration to carry a matching `// gcrt:guard` annotation,
// and then checks every reachable access against its class:
//
//   - atomic: the field is a sync/atomic mirror (or a mutex); it may
//     only be touched as a method receiver (.Load/.Store/.Add/.Lock...).
//     A plain read or write of such a field bypasses the memory-order
//     contract the kernel's TSO argument depends on.
//   - by(mu): the field is guarded by a mutex; every access must be
//     dominated by mu.Lock() on the path (a may-held lockset dataflow,
//     so a conditionally taken lock counts — only definitely-unlocked
//     accesses are flagged).
//   - owner(domain): the field is confined to one goroutine's role
//     (mutator or collector); it may only be touched by methods of the
//     declaring struct, by explicitly exempted functions (the parked-
//     mutator protocol), and never from code reachable from the target
//     package's own `go` statements or lexically inside a spawned
//     function literal.
//   - immutable: the field is written only during construction (the
//     package's Init functions, or a per-field Init override) and is
//     read-only afterwards. Element writes through a slice field are
//     allowed — immutability here is of the reference, matching how the
//     arena's atomic element slices work.
//
// The passes are built on the golint loader/call-graph framework
// (stdlib go/parser + go/types only, no x/tools) and validated the
// established way: testdata fixture packages with seeded defects and
// `// want` comments that must be flagged exactly, plus zero-findings
// gates over the real trees wired into `gclint -gosrc` and CI.
//
// Soundness caveats (vs -race): the lockset conflates lock instances
// (sh1.mu counts for sh2.free — field identity, not object identity),
// loops are walked once, Init functions are trusted wholesale, and
// composite literals are construction, not mutation. The discipline is
// a lint: it over-approximates held locks and trusts the table, so a
// clean report is a conformance argument, not a proof. What it does
// catch — and -race structurally cannot — is a discipline break on a
// path the scheduler never happened to interleave.
package gortlint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/golint"
)

// Class is a field's access-discipline class.
type Class int

const (
	// Atomic fields may only be accessed as method receivers.
	Atomic Class = iota
	// Guarded fields require their mutex in the may-held lockset.
	Guarded
	// Owner fields are confined to the declaring struct's goroutine role.
	Owner
	// Immutable fields are written only during construction.
	Immutable
)

func (c Class) String() string {
	switch c {
	case Atomic:
		return "atomic"
	case Guarded:
		return "by(mu)"
	case Owner:
		return "owner"
	case Immutable:
		return "immutable"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// FieldRule classifies one struct field.
type FieldRule struct {
	Class Class
	// Guard names the protecting mutex for Guarded fields: "mu" for a
	// mutex field of the same struct, or "Struct.mu" qualified.
	Guard string
	// Domain names the owning role for Owner fields ("mutator",
	// "collector").
	Domain string
	// Init optionally overrides the table-level Init list for this field
	// only: functions allowed to write an Immutable field. Used for
	// fields immutable after a specific publication point (e.g. job
	// identity fields written in Engine.Submit).
	Init []string
}

// annotation renders the `gcrt:guard` spec this rule requires.
func (r FieldRule) annotation() string {
	switch r.Class {
	case Atomic:
		return "atomic"
	case Guarded:
		return "by(" + r.Guard + ")"
	case Owner:
		return "owner(" + r.Domain + ")"
	case Immutable:
		return "immutable"
	}
	return "?"
}

// Table is the access-discipline declaration for one package's shared
// structs.
type Table struct {
	// Structs maps struct name -> field name -> rule. Every non-blank
	// field of a listed struct must be classified (exhaustiveness is
	// checked), and every classified field's declaration must carry a
	// matching `// gcrt:guard` annotation.
	Structs map[string]map[string]FieldRule
	// Init lists constructor functions (by funcKey, "Recv.Name" or
	// "Name") exempt from every access check: they build the object
	// before it is shared.
	Init []string
	// Exempt grants a function access to specific owner-confined fields
	// it does not own: the parked-mutator protocol, where the collector
	// operates on a mutator's private state under parkMu.
	Exempt map[string][]string // funcKey -> ["Struct.field", ...]
	// Holds declares locks held on entry by caller-holds convention
	// (the *Locked suffix functions, heap.Interface methods invoked
	// under the container lock).
	Holds map[string][]string // funcKey -> ["Struct.mu", ...]
}

// DisciplineConfig targets one package's table.
type DisciplineConfig struct {
	// Package is the import path (or unique suffix) of the package
	// declaring the structs. Init/Exempt/Holds entries resolve against
	// functions declared in this package.
	Package string
	Table   Table
}

// fieldRef identifies one classified field.
type fieldRef struct {
	structName string
	fieldName  string
	rule       FieldRule
}

func (fr fieldRef) String() string { return fr.structName + "." + fr.fieldName }

// resolved is the type-checked view of a table against a loaded package.
type resolved struct {
	pkg *golint.Package
	// fields maps the type-checker's field objects to their rules.
	fields map[*types.Var]fieldRef
	// mutexes maps "Struct.field" guard keys to field objects, so the
	// lockset can be keyed on object identity.
	mutexes map[string]*types.Var
	// guardVar resolves a rule's Guard spec for a field of structName.
	// init/exempt/holds keep funcKey semantics from the table.
	table Table
}

// guardKey qualifies a Guard spec against its declaring struct.
func guardKey(structName, guard string) string {
	if strings.Contains(guard, ".") {
		return guard
	}
	return structName + "." + guard
}

// resolveTable type-checks the table against the declaring package:
// every listed struct and field must exist, and — exhaustiveness — every
// non-blank field of a listed struct must be classified. Structural
// drift (a renamed field, a new unclassified field) fails loudly instead
// of silently unchecking.
func resolveTable(mod *golint.Module, pkg *golint.Package, table Table) (*resolved, []golint.Diagnostic, error) {
	r := &resolved{
		pkg:     pkg,
		fields:  make(map[*types.Var]fieldRef),
		mutexes: make(map[string]*types.Var),
		table:   table,
	}
	var diags []golint.Diagnostic
	scope := pkg.Types.Scope()
	for structName, rules := range table.Structs {
		obj := scope.Lookup(structName)
		if obj == nil {
			return nil, nil, fmt.Errorf("gortlint: table struct %s not found in %s", structName, pkg.Path)
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return nil, nil, fmt.Errorf("gortlint: %s.%s is not a struct", pkg.Path, structName)
		}
		seen := make(map[string]bool, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" {
				continue // padding
			}
			seen[f.Name()] = true
			rule, ok := rules[f.Name()]
			if !ok {
				diags = append(diags, golint.Diagnostic{
					Pos:  mod.Fset().Position(f.Pos()),
					Func: structName,
					Message: fmt.Sprintf(
						"field %s.%s has no access-discipline classification: add it to the table and annotate it",
						structName, f.Name()),
				})
				continue
			}
			r.fields[f] = fieldRef{structName: structName, fieldName: f.Name(), rule: rule}
			if isMutexType(f.Type()) {
				r.mutexes[structName+"."+f.Name()] = f
			}
		}
		for name := range rules {
			if !seen[name] {
				return nil, nil, fmt.Errorf("gortlint: table field %s.%s does not exist (struct drifted?)", structName, name)
			}
		}
	}
	return r, diags, nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkAnnotations cross-checks the table against the `// gcrt:guard`
// annotations on the struct declarations: every classified field must
// carry an annotation, and the annotation must spell the table's rule.
// The table is the machine-checked source of truth; the annotation is
// the human-readable mirror at the declaration site, and this check is
// what keeps the two from drifting.
func checkAnnotations(mod *golint.Module, r *resolved) []golint.Diagnostic {
	var diags []golint.Diagnostic
	pkg := r.pkg
	// Index struct fields by ast.Field so multi-name fields share one
	// annotation.
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if _, listed := r.table.Structs[ts.Name.Name]; !listed {
				return true
			}
			for _, fld := range st.Fields.List {
				spec := annotationOf(fld)
				for _, name := range fld.Names {
					if name.Name == "_" {
						continue
					}
					fv, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					fr, classified := r.fields[fv]
					if !classified {
						continue // exhaustiveness already reported it
					}
					want := fr.rule.annotation()
					switch {
					case spec == "":
						diags = append(diags, golint.Diagnostic{
							Pos:  mod.Fset().Position(name.Pos()),
							Func: fr.structName,
							Message: fmt.Sprintf(
								"field %s lacks its `gcrt:guard %s` annotation (table classifies it %s)",
								fr, want, want),
						})
					case spec != want:
						diags = append(diags, golint.Diagnostic{
							Pos:  mod.Fset().Position(name.Pos()),
							Func: fr.structName,
							Message: fmt.Sprintf(
								"field %s is annotated `gcrt:guard %s` but the table says `%s`: fix whichever is wrong",
								fr, spec, want),
						})
					}
				}
			}
			return true
		})
	}
	return diags
}

// annotationOf extracts the `gcrt:guard <spec>` annotation from a field's
// doc or trailing comment.
func annotationOf(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			idx := strings.Index(text, "gcrt:guard ")
			if idx < 0 {
				continue
			}
			return strings.TrimSpace(text[idx+len("gcrt:guard "):])
		}
	}
	return ""
}
