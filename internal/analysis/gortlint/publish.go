package gortlint

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis/golint"
)

// PublishConfig declares the publication rule for one package: a slot
// popped from a private reservation (a TLAB, an allocation pool, a free
// shard) is DEAD — header clear, fields stale — until an install
// function writes its live header. The paper's §4 no-fence argument is
// exactly that the initializing stores drain before any later store
// publishes the reference; at source level the corresponding discipline
// is that a reserved slot must flow through install before it can reach
// a publication point (a raw field store, the collector transfer, a
// return to the caller).
type PublishConfig struct {
	// Package is the import path (or unique suffix) of the target.
	Package string
	// ReservationFields are "Struct.field" keys of private reservation
	// slices; popping an element (index or range) yields an uninstalled
	// slot.
	ReservationFields []string
	// InstallFns are funcKeys whose call makes its slot argument live.
	InstallFns []string
	// PublishFns are funcKeys whose arguments escape into the shared
	// heap; an uninstalled slot must never reach one.
	PublishFns []string
	// Exempt lists funcKeys skipped entirely: the reservation machinery
	// itself, which legitimately shuttles uninstalled slots between
	// free lists and reservations.
	Exempt []string
}

// CheckPublish runs the publication-discipline pass over the target
// package.
func CheckPublish(mod *golint.Module, cfg PublishConfig) ([]golint.Diagnostic, error) {
	pkg := mod.Package(cfg.Package)
	if pkg == nil {
		return nil, fmt.Errorf("gortlint: package %s not loaded", cfg.Package)
	}
	resVars, err := resolveFieldKeys(pkg, cfg.ReservationFields)
	if err != nil {
		return nil, err
	}
	pw := &pubWalker{
		mod:     mod,
		resVars: resVars,
		install: toSet(cfg.InstallFns),
		publish: toSet(cfg.PublishFns),
	}
	exempt := toSet(cfg.Exempt)
	for _, f := range mod.Functions() {
		if f.Pkg != pkg || exempt[f.Key()] {
			continue
		}
		pw.f = f
		pw.walkStmts(f.Decl.Body.List, make(taint))
	}
	golint.SortDiagnostics(pw.diags)
	return pw.diags, nil
}

// taint is the set of local variables currently holding an uninstalled
// reserved slot.
type taint map[*types.Var]bool

func (t taint) clone() taint {
	out := make(taint, len(t))
	for v := range t {
		out[v] = true
	}
	return out
}

func (t taint) union(o taint) {
	for v := range o {
		t[v] = true
	}
}

type pubWalker struct {
	mod     *golint.Module
	f       *golint.Function
	resVars map[*types.Var]string
	install map[string]bool
	publish map[string]bool
	diags   []golint.Diagnostic
}

func (w *pubWalker) report(pos ast.Node, format string, args ...any) {
	w.diags = append(w.diags, golint.Diagnostic{
		Pos:     w.mod.Fset().Position(pos.Pos()),
		Func:    w.f.Fn.FullName(),
		Message: fmt.Sprintf(format, args...),
	})
}

func (w *pubWalker) walkStmts(stmts []ast.Stmt, t taint) {
	for _, s := range stmts {
		w.walkStmt(s, t)
	}
}

func (w *pubWalker) walkStmt(s ast.Stmt, t taint) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rh := range s.Rhs {
			w.checkExpr(rh, t)
		}
		// 1:1 assignments track taint per position; multi-value RHS
		// (function calls) never produce raw slots, so all LHS clear.
		for i, lh := range s.Lhs {
			raw := false
			if len(s.Rhs) == len(s.Lhs) {
				raw = w.exprRaw(s.Rhs[i], t)
			}
			switch lh := lh.(type) {
			case *ast.Ident:
				if v := w.localVar(lh); v != nil {
					if raw {
						t[v] = true
					} else {
						delete(t, v)
					}
				}
			case *ast.SelectorExpr:
				fv, _ := w.f.Pkg.Info.Uses[lh.Sel].(*types.Var)
				if fv == nil {
					break
				}
				if _, isRes := w.resVars[fv]; isRes {
					break // refilling a reservation is the point
				}
				if raw {
					w.report(s, "uninstalled reserved slot flows into shared field %s before install: readers would see a dead header and stale fields", lh.Sel.Name)
				}
			case *ast.IndexExpr:
				if raw {
					w.report(s, "uninstalled reserved slot stored into an element before install")
				}
			}
		}
	case *ast.ExprStmt:
		w.checkExpr(s.X, t)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, t)
			if w.exprRaw(r, t) {
				w.report(r, "uninstalled reserved slot returned to the caller before install")
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, t)
		}
		w.checkExpr(s.Cond, t)
		tb := t.clone()
		w.walkStmts(s.Body.List, tb)
		if s.Else != nil {
			te := t.clone()
			w.walkStmt(s.Else, te)
			t.union(te)
		}
		t.union(tb)
	case *ast.BlockStmt:
		w.walkStmts(s.List, t)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, t)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, t)
		}
		tb := t.clone()
		w.walkStmts(s.Body.List, tb)
		if s.Post != nil {
			w.walkStmt(s.Post, tb)
		}
		t.union(tb)
	case *ast.RangeStmt:
		w.checkExpr(s.X, t)
		tb := t.clone()
		// Ranging over a reservation field yields uninstalled slots in
		// the value variable.
		if sel, ok := ast.Unparen(s.X).(*ast.SelectorExpr); ok {
			if fv, ok := w.f.Pkg.Info.Uses[sel.Sel].(*types.Var); ok {
				if _, isRes := w.resVars[fv]; isRes && s.Value != nil {
					if id, ok := s.Value.(*ast.Ident); ok {
						if v := w.localVar(id); v != nil {
							tb[v] = true
						}
					}
				}
			}
		}
		w.walkStmts(s.Body.List, tb)
		t.union(tb)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, t)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, t)
		}
		for _, c := range s.Body.List {
			tc := t.clone()
			w.walkStmts(c.(*ast.CaseClause).Body, tc)
			t.union(tc)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			tc := t.clone()
			w.walkStmts(c.(*ast.CaseClause).Body, tc)
			t.union(tc)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			tc := t.clone()
			w.walkStmts(c.(*ast.CommClause).Body, tc)
			t.union(tc)
		}
	case *ast.GoStmt:
		w.checkExpr(s.Call, t)
	case *ast.DeferStmt:
		w.checkExpr(s.Call, t)
	case *ast.SendStmt:
		w.checkExpr(s.Value, t)
		if w.exprRaw(s.Value, t) {
			w.report(s, "uninstalled reserved slot sent on a channel before install")
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, t)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, t)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.checkExpr(val, t)
					}
				}
			}
		}
	}
}

// checkExpr scans an expression for publish/install calls: a publish
// call with a raw argument is a finding; an install call clears its
// identifier arguments.
func (w *pubWalker) checkExpr(e ast.Expr, t taint) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(w.f, call)
		if fn == nil {
			return true
		}
		key := funcKeyOf(fn)
		switch {
		case w.publish[key]:
			for _, arg := range call.Args {
				if w.exprRaw(arg, t) {
					w.report(arg, "uninstalled reserved slot reaches publication point %s before install: the header store must come first (§4 no-fence argument)", key)
				}
			}
		case w.install[key]:
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if v := w.localVar(id); v != nil {
						delete(t, v)
					}
				}
			}
		}
		return true
	})
}

// exprRaw reports whether the expression may hold an uninstalled slot: a
// tainted local, or a direct element read of a reservation field.
func (w *pubWalker) exprRaw(e ast.Expr, t taint) bool {
	raw := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v := w.localVar(n); v != nil && t[v] {
				raw = true
			}
		case *ast.IndexExpr:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				if fv, ok := w.f.Pkg.Info.Uses[sel.Sel].(*types.Var); ok {
					if _, isRes := w.resVars[fv]; isRes {
						raw = true
					}
				}
			}
		}
		return true
	})
	return raw
}

// localVar resolves an identifier to its *types.Var (use or def).
func (w *pubWalker) localVar(id *ast.Ident) *types.Var {
	if v, ok := w.f.Pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := w.f.Pkg.Info.Uses[id].(*types.Var)
	return v
}

// resolveFieldKeys resolves "Struct.field" keys against a package's
// scope into field objects, so accesses match on identity.
func resolveFieldKeys(pkg *golint.Package, keys []string) (map[*types.Var]string, error) {
	out := make(map[*types.Var]string, len(keys))
	scope := pkg.Types.Scope()
	for _, key := range keys {
		structName, fieldName, ok := splitKey(key)
		if !ok {
			return nil, fmt.Errorf("gortlint: field key %q is not Struct.field", key)
		}
		obj := scope.Lookup(structName)
		if obj == nil {
			return nil, fmt.Errorf("gortlint: struct %s not found in %s", structName, pkg.Path)
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("gortlint: %s is not a struct", structName)
		}
		found := false
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == fieldName {
				out[st.Field(i)] = key
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("gortlint: field %s not found (struct drifted?)", key)
		}
	}
	return out, nil
}
