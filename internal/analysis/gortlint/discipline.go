package gortlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/golint"
)

// CheckDiscipline runs the field-access discipline pass: it resolves
// cfg.Table against the declaring package, cross-checks the
// `gcrt:guard` annotations, and then walks every function body in the
// loaded module checking each access to a classified field against its
// class. See the package comment for the class semantics and the
// soundness caveats.
func CheckDiscipline(mod *golint.Module, cfg DisciplineConfig) ([]golint.Diagnostic, error) {
	pkg := mod.Package(cfg.Package)
	if pkg == nil {
		return nil, fmt.Errorf("gortlint: package %s not loaded", cfg.Package)
	}
	r, diags, err := resolveTable(mod, pkg, cfg.Table)
	if err != nil {
		return nil, err
	}
	diags = append(diags, checkAnnotations(mod, r)...)

	// Spawn-reachability: functions reachable from the target package's
	// own `go` statements run off the spawning goroutine — an owner-
	// confined access there is cross-thread by construction.
	spawnReach := mod.Reachable(mod.SpawnRoots(pkg))

	init := make(map[string]bool, len(cfg.Table.Init))
	for _, k := range cfg.Table.Init {
		init[k] = true
	}

	for _, f := range mod.Functions() {
		key := f.Key()
		samePkg := f.Pkg == pkg
		if samePkg && init[key] {
			continue // trusted constructor
		}
		w := &walker{
			mod:     mod,
			r:       r,
			fn:      f,
			fnKey:   key,
			spawned: spawnReach[f.Fn],
			exempt:  make(map[string]bool),
		}
		if samePkg {
			for _, fieldKey := range cfg.Table.Exempt[key] {
				w.exempt[fieldKey] = true
			}
		}
		ls := newLockset()
		if samePkg {
			for _, guard := range cfg.Table.Holds[key] {
				if mv := r.mutexes[guard]; mv != nil {
					ls.add(mv)
				}
			}
		}
		w.walkStmts(f.Decl.Body.List, ls)
		diags = append(diags, w.diags...)
	}
	golint.SortDiagnostics(diags)
	return diags, nil
}

// accessMode classifies how an expression touches a field.
type accessMode int

const (
	modeRead accessMode = iota
	modeWrite
	modeRecv // receiver of a method call
	modeAddr // operand of unary &
)

func (m accessMode) String() string {
	switch m {
	case modeRead:
		return "plain read"
	case modeWrite:
		return "write"
	case modeRecv:
		return "method call"
	case modeAddr:
		return "address-of"
	}
	return "access"
}

// lockset is the may-held set of mutex field objects.
type lockset map[*types.Var]bool

func newLockset() lockset { return make(lockset) }

func (ls lockset) add(v *types.Var)    { ls[v] = true }
func (ls lockset) remove(v *types.Var) { delete(ls, v) }
func (ls lockset) clone() lockset {
	out := make(lockset, len(ls))
	for k := range ls {
		out[k] = true
	}
	return out
}

// union merges another lockset in place (may-held: held on any path
// counts).
func (ls lockset) union(other lockset) {
	for k := range other {
		ls[k] = true
	}
}

// walker checks one function body.
type walker struct {
	mod   *golint.Module
	r     *resolved
	fn    *golint.Function
	fnKey string
	// spawned: this function is reachable from the target package's own
	// go statements.
	spawned bool
	// inSpawn: the walk is lexically inside a `go func(){...}` literal.
	inSpawn bool
	// exempt: "Struct.field" keys this function may access despite owner
	// confinement.
	exempt map[string]bool

	diags []golint.Diagnostic
}

func (w *walker) report(pos token.Pos, format string, args ...any) {
	w.diags = append(w.diags, golint.Diagnostic{
		Pos:     w.mod.Fset().Position(pos),
		Func:    w.fn.Fn.FullName(),
		Message: fmt.Sprintf(format, args...),
	})
}

// fieldVarOf resolves a selector to a classified field object, or nil.
func (w *walker) fieldVarOf(sel *ast.SelectorExpr) *types.Var {
	if v, ok := w.fn.Pkg.Info.Uses[sel.Sel].(*types.Var); ok {
		if _, classified := w.r.fields[v]; classified {
			return v
		}
	}
	// Embedded/qualified selections resolve through Selections.
	if s, ok := w.fn.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			if _, classified := w.r.fields[v]; classified {
				return v
			}
		}
	}
	return nil
}

// isMethodOf reports whether the walked function is a method on the
// given struct (pointer receivers included).
func (w *walker) isMethodOf(structName string) bool {
	sig, ok := w.fn.Fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == structName
}

// checkAccess applies the field's class rule to one access.
func (w *walker) checkAccess(fv *types.Var, sel *ast.SelectorExpr, mode accessMode, ls lockset) {
	fr := w.r.fields[fv]
	switch fr.rule.Class {
	case Atomic:
		if mode != modeRecv {
			w.report(sel.Sel.Pos(),
				"%s of atomic field %s bypasses the memory-order contract: use its methods",
				mode, fr)
		}
	case Guarded:
		guard := guardKey(fr.structName, fr.rule.Guard)
		mv := w.r.mutexes[guard]
		if mv == nil {
			w.report(sel.Sel.Pos(), "field %s names guard %s which is not a classified mutex field", fr, guard)
			return
		}
		if !ls[mv] {
			w.report(sel.Sel.Pos(),
				"%s of lock-guarded field %s outside its critical section: %s.Lock() is not held on this path",
				mode, fr, guard)
		}
	case Owner:
		fieldKey := fr.String()
		switch {
		case w.inSpawn:
			w.report(sel.Sel.Pos(),
				"owner-confined field %s (%s) accessed inside a spawned goroutine literal",
				fr, fr.rule.Domain)
		case w.spawned:
			w.report(sel.Sel.Pos(),
				"owner-confined field %s (%s) accessed in a function reachable from a `go` statement: it runs off the owner's thread",
				fr, fr.rule.Domain)
		case !w.isMethodOf(fr.structName) && !w.exempt[fieldKey]:
			w.report(sel.Sel.Pos(),
				"owner-confined field %s (%s) accessed outside %s's methods without an exemption",
				fr, fr.rule.Domain, fr.structName)
		}
	case Immutable:
		if mode != modeWrite {
			return
		}
		// A write is legal only in this field's Init functions.
		if len(fr.rule.Init) > 0 {
			for _, k := range fr.rule.Init {
				if k == w.fnKey && w.fn.Pkg == w.r.pkg {
					return
				}
			}
		}
		w.report(sel.Sel.Pos(),
			"write to immutable-after-init field %s outside its construction functions", fr)
	}
}

// mutexOpOf recognizes x.mu.Lock()/Unlock()/RLock()/RUnlock() where
// x.mu resolves to a classified mutex field; returns the field object
// and whether the op acquires.
func (w *walker) mutexOpOf(call *ast.CallExpr) (*types.Var, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil, false, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	v, ok := w.fn.Pkg.Info.Uses[inner.Sel].(*types.Var)
	if !ok || !isMutexType(v.Type()) {
		return nil, false, false
	}
	for _, mv := range w.r.mutexes {
		if mv == v {
			return v, acquire, true
		}
	}
	return nil, false, false
}

// walkStmts walks a statement list in order, threading the may-held
// lockset through it, and returns the lockset at the end.
func (w *walker) walkStmts(list []ast.Stmt, ls lockset) lockset {
	for _, s := range list {
		ls = w.walkStmt(s, ls)
	}
	return ls
}

func (w *walker) walkStmt(s ast.Stmt, ls lockset) lockset {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if mv, acquire, ok := w.mutexOpOf(call); ok {
				// The receiver chain is still an access (method-recv on
				// the mutex field itself).
				w.walkExpr(call.Fun.(*ast.SelectorExpr).X, modeRecv, ls)
				if acquire {
					ls.add(mv)
				} else {
					ls.remove(mv)
				}
				return ls
			}
		}
		w.walkExpr(s.X, modeRead, ls)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.walkExpr(rhs, modeRead, ls)
		}
		for _, lhs := range s.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if fv := w.fieldVarOf(sel); fv != nil {
					w.checkAccess(fv, sel, modeWrite, ls)
					w.walkExpr(sel.X, modeRead, ls)
					continue
				}
			}
			w.walkExpr(lhs, modeRead, ls)
		}
	case *ast.IncDecStmt:
		if sel, ok := s.X.(*ast.SelectorExpr); ok {
			if fv := w.fieldVarOf(sel); fv != nil {
				w.checkAccess(fv, sel, modeWrite, ls)
				w.walkExpr(sel.X, modeRead, ls)
				return ls
			}
		}
		w.walkExpr(s.X, modeRead, ls)
	case *ast.IfStmt:
		if s.Init != nil {
			ls = w.walkStmt(s.Init, ls)
		}
		w.walkExpr(s.Cond, modeRead, ls)
		thenLS := w.walkStmts(s.Body.List, ls.clone())
		elseLS := ls.clone()
		if s.Else != nil {
			elseLS = w.walkStmt(s.Else, elseLS)
		}
		// May-held merge: union of the branch exits.
		thenLS.union(elseLS)
		return thenLS
	case *ast.BlockStmt:
		return w.walkStmts(s.List, ls)
	case *ast.ForStmt:
		if s.Init != nil {
			ls = w.walkStmt(s.Init, ls)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, modeRead, ls)
		}
		bodyLS := w.walkStmts(s.Body.List, ls.clone())
		if s.Post != nil {
			bodyLS = w.walkStmt(s.Post, bodyLS)
		}
		// Single-pass loop walk: the body may not execute, so merge.
		ls.union(bodyLS)
		return ls
	case *ast.RangeStmt:
		w.walkExpr(s.X, modeRead, ls)
		if s.Key != nil {
			w.walkExpr(s.Key, modeRead, ls)
		}
		if s.Value != nil {
			w.walkExpr(s.Value, modeRead, ls)
		}
		bodyLS := w.walkStmts(s.Body.List, ls.clone())
		ls.union(bodyLS)
		return ls
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls = w.walkStmt(s.Init, ls)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, modeRead, ls)
		}
		merged := ls.clone()
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.walkExpr(e, modeRead, ls)
			}
			merged.union(w.walkStmts(cc.Body, ls.clone()))
		}
		return merged
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls = w.walkStmt(s.Init, ls)
		}
		w.walkStmt(s.Assign, ls)
		merged := ls.clone()
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			merged.union(w.walkStmts(cc.Body, ls.clone()))
		}
		return merged
	case *ast.SelectStmt:
		merged := ls.clone()
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := ls.clone()
			if cc.Comm != nil {
				branch = w.walkStmt(cc.Comm, branch)
			}
			merged.union(w.walkStmts(cc.Body, branch))
		}
		return merged
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the lock is held to the end
		// of the function, so it does NOT leave the lockset here.
		if _, acquire, ok := w.mutexOpOf(s.Call); ok && !acquire {
			w.walkExpr(s.Call.Fun.(*ast.SelectorExpr).X, modeRecv, ls)
			return ls
		}
		w.walkExpr(s.Call, modeRead, ls)
	case *ast.GoStmt:
		// The spawned literal runs on another goroutine: fresh lockset,
		// owner accesses inside it are cross-thread.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			saved := w.inSpawn
			w.inSpawn = true
			w.walkStmts(lit.Body.List, newLockset())
			w.inSpawn = saved
			for _, a := range s.Call.Args {
				w.walkExpr(a, modeRead, ls)
			}
		} else {
			w.walkExpr(s.Call, modeRead, ls)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, modeRead, ls)
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan, modeRead, ls)
		w.walkExpr(s.Value, modeRead, ls)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, ls)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, modeRead, ls)
					}
				}
			}
		}
	}
	return ls
}

// walkExpr checks field accesses inside an expression. mode applies to
// the outermost selector; everything beneath is a read.
func (w *walker) walkExpr(e ast.Expr, mode accessMode, ls lockset) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if fv := w.fieldVarOf(e); fv != nil {
			w.checkAccess(fv, e, mode, ls)
		}
		w.walkExpr(e.X, modeRead, ls)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if _, isFunc := w.fn.Pkg.Info.Uses[sel.Sel].(*types.Func); isFunc {
				// Method call: the receiver chain's innermost field
				// selector is a method-receiver access.
				w.walkExpr(sel.X, modeRecv, ls)
			} else {
				w.walkExpr(e.Fun, modeRead, ls)
			}
		} else {
			w.walkExpr(e.Fun, modeRead, ls)
		}
		for _, a := range e.Args {
			w.walkExpr(a, modeRead, ls)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if sel, ok := e.X.(*ast.SelectorExpr); ok {
				if fv := w.fieldVarOf(sel); fv != nil {
					w.checkAccess(fv, sel, modeAddr, ls)
					w.walkExpr(sel.X, modeRead, ls)
					return
				}
			}
		}
		w.walkExpr(e.X, modeRead, ls)
	case *ast.IndexExpr:
		w.walkExpr(e.X, mode, ls)
		w.walkExpr(e.Index, modeRead, ls)
	case *ast.SliceExpr:
		w.walkExpr(e.X, modeRead, ls)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				w.walkExpr(idx, modeRead, ls)
			}
		}
	case *ast.BinaryExpr:
		w.walkExpr(e.X, modeRead, ls)
		w.walkExpr(e.Y, modeRead, ls)
	case *ast.ParenExpr:
		w.walkExpr(e.X, mode, ls)
	case *ast.StarExpr:
		w.walkExpr(e.X, mode, ls)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, modeRead, ls)
	case *ast.CompositeLit:
		// Composite literals are construction, not mutation of shared
		// state; their element expressions are still reads.
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.walkExpr(kv.Value, modeRead, ls)
				continue
			}
			w.walkExpr(el, modeRead, ls)
		}
	case *ast.FuncLit:
		// A non-spawned literal may run later on the same goroutine (or
		// escape); walked with an empty lockset — it must take its own
		// locks.
		w.walkStmts(e.Body.List, newLockset())
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value, modeRead, ls)
	}
}
