package gortlint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/golint"
)

// checkWants compares diagnostics against the `// want "frag"` comments
// in a fixture directory: every want must be matched by a diagnostic on
// its line, and every diagnostic must be wanted.
func checkWants(t *testing.T, dir string, diags []golint.Diagnostic) {
	t.Helper()
	type want struct {
		line int
		frag string
	}
	var wants []want
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, `// want "`)
				if !ok {
					continue
				}
				wants = append(wants, want{
					line: fset.Position(c.Pos()).Line,
					frag: strings.TrimSuffix(rest, `"`),
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixture has no want comments")
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if !matched[i] && d.Pos.Line == w.line && strings.Contains(d.Message, w.frag) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic at fixture line %d matching %q; got %v", w.line, w.frag, diags)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// loadFixture loads a spec's fixture dirs (module-root-relative).
func loadFixture(t *testing.T, spec FixtureSpec) *golint.Module {
	t.Helper()
	root, err := golint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, len(spec.Dirs))
	for i, d := range spec.Dirs {
		dirs[i] = filepath.Join(root, d)
	}
	mod, err := golint.LoadPackages(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// wantDirFor maps a fixture spec to the directory holding its want
// comments (for hooks, only prod carries wants).
func wantDirFor(t *testing.T, spec FixtureSpec) string {
	t.Helper()
	root, err := golint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range spec.Dirs {
		if spec.Name != "bench-hooks" || strings.HasSuffix(d, "/prod") {
			return filepath.Join(root, d)
		}
	}
	t.Fatalf("no want dir for %s", spec.Name)
	return ""
}

// TestFixtures runs every seeded-defect fixture and checks the findings
// exactly against the want comments.
func TestFixtures(t *testing.T) {
	for _, spec := range Fixtures() {
		t.Run(spec.Name, func(t *testing.T) {
			mod := loadFixture(t, spec)
			diags, err := spec.Run(mod)
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) < spec.Min {
				t.Errorf("expected at least %d findings, got %d: %v", spec.Min, len(diags), diags)
			}
			checkWants(t, wantDirFor(t, spec), diags)
		})
	}
}

// loadGCRT loads the real runtime module once for the zero-findings
// gates.
var gcrtMod *golint.Module

func loadGCRT(t *testing.T) *golint.Module {
	t.Helper()
	if gcrtMod != nil {
		return gcrtMod
	}
	root, err := golint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 0, len(GCRTDirs()))
	for _, d := range GCRTDirs() {
		dirs = append(dirs, filepath.Join(root, d))
	}
	mod, err := golint.LoadPackages(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	gcrtMod = mod
	return mod
}

// TestGCRTDiscipline is the zero-findings gate over the real runtime:
// every shared field classified, annotated, and accessed per its class.
func TestGCRTDiscipline(t *testing.T) {
	diags, err := CheckDiscipline(loadGCRT(t), GCRTDiscipline())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("discipline: %s", d)
	}
}

// TestGCRTBarriers gates the barrier placement on the real runtime.
func TestGCRTBarriers(t *testing.T) {
	diags, err := CheckBarriers(loadGCRT(t), GCRTBarriers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("barriers: %s", d)
	}
}

// TestGCRTPublish gates the publication discipline on the real runtime.
func TestGCRTPublish(t *testing.T) {
	diags, err := CheckPublish(loadGCRT(t), GCRTPublish())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("publication: %s", d)
	}
}

// TestGCRTHooks gates the benchmark-hook restriction on the real tree.
func TestGCRTHooks(t *testing.T) {
	diags, err := CheckHooks(loadGCRT(t), GCRTHooks())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("hooks: %s", d)
	}
}

// TestServerDiscipline gates the verification service's engine: the
// same analyzer, a different table — the discipline framework is
// generic over the declaration.
func TestServerDiscipline(t *testing.T) {
	root, err := golint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 0, len(ServerDirs()))
	for _, d := range ServerDirs() {
		dirs = append(dirs, filepath.Join(root, d))
	}
	mod, err := golint.LoadPackages(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckDiscipline(mod, ServerDiscipline())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("server discipline: %s", d)
	}
}

// TestStorageDiscipline gates the hostile-disk layer: the fault-
// injecting filesystem and the checker's spill state conform to their
// declared access disciplines with zero findings.
func TestStorageDiscipline(t *testing.T) {
	root, err := golint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 0, len(StorageDirs()))
	for _, d := range StorageDirs() {
		dirs = append(dirs, filepath.Join(root, d))
	}
	mod, err := golint.LoadPackages(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		cfg  DisciplineConfig
	}{
		{"storage", StorageDiscipline()},
		{"explore-spill", ExploreSpillDiscipline()},
	} {
		diags, err := CheckDiscipline(mod, cfg.cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s discipline: %s", cfg.name, d)
		}
	}
}
