// Package barrier is the barrier-coverage fixture: a miniature mutator
// store with seeded missing-barrier defects.
package barrier

import "sync/atomic"

type options struct {
	NoDel bool
	NoIns bool
}

type heap struct {
	fields []atomic.Int32
	opt    options
}

// StoreField is the raw store primitive (allowed to write elements).
func (h *heap) StoreField(i int, v int32) {
	h.fields[i].Store(v)
}

// barrierHit is the write barrier.
func (h *heap) barrierHit(v int32) { _ = v }

// Store is the audited mutator store: deletion barrier, insertion
// barrier (each droppable only by its ablation flag), then the raw
// write. Clean.
func (h *heap) Store(i int, v int32) {
	if !h.opt.NoDel {
		h.barrierHit(0)
	}
	if !h.opt.NoIns {
		h.barrierHit(v)
	}
	h.StoreField(i, v)
}

// StoreMissingInsertion forgot the insertion barrier.
func (h *heap) StoreMissingInsertion(i int, v int32) {
	if !h.opt.NoDel {
		h.barrierHit(0)
	}
	h.StoreField(i, v) // want "preceded by 1 of 2 required write-barrier calls"
}

// StoreGuardedWrong runs the second barrier under a guard that is not
// an ablation-flag negation, so it may be skipped on the storing path.
func (h *heap) StoreGuardedWrong(i int, v int32, ok bool) {
	h.barrierHit(0)
	if ok {
		h.barrierHit(v)
	}
	h.StoreField(i, v) // want "preceded by 1 of 2 required write-barrier calls"
}

// sneakyStore calls the raw primitive from a non-audited path.
func sneakyStore(h *heap) {
	h.StoreField(0, 1) // want "neither barrier-audited nor an allowed"
}

// rawPoke writes a field element directly, bypassing even the raw
// store primitive.
func rawPoke(h *heap) {
	h.fields[0].Store(9) // want "raw element write"
}
