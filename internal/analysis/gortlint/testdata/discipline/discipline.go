// Package discipline is the field-access discipline fixture: a
// miniature of the runtime's shared structs with seeded defects. Every
// `// want "fragment"` comment must be matched by a diagnostic on its
// line, and no other diagnostics may appear.
package discipline

import (
	"sync"
	"sync/atomic"
)

// register is the fixture's shared struct. The test's table classifies
// every field except stray, and label's annotation contradicts the
// table on purpose.
type register struct {
	ticks atomic.Int64 // gcrt:guard atomic
	mu    sync.Mutex   // gcrt:guard atomic
	count int          // gcrt:guard by(mu)
	wl    []int        // gcrt:guard owner(mutator)
	limit int          // want "lacks its"
	// gcrt:guard atomic
	label string // want "but the table says"
	stray int    // want "has no access-discipline classification"
}

// newRegister is the fixture's trusted constructor.
func newRegister() *register {
	r := &register{}
	r.limit = 8
	r.label = "r0"
	r.stray = 1
	return r
}

// Tick is clean: the atomic field is touched as a method receiver.
func (r *register) Tick() { r.ticks.Add(1) }

// BadRead copies the atomic field with a plain read.
func (r *register) BadRead() int64 {
	v := r.ticks // want "bypasses the memory-order contract"
	return v.Load()
}

// BadAddr leaks the atomic field's address.
func BadAddr(r *register) *atomic.Int64 {
	return &r.ticks // want "bypasses the memory-order contract"
}

// BadUnlocked writes the guarded counter without the lock.
func (r *register) BadUnlocked() {
	r.count++ // want "outside its critical section"
}

// GoodLocked holds the lock across the write.
func (r *register) GoodLocked() {
	r.mu.Lock()
	r.count++
	r.mu.Unlock()
}

// GoodConditional takes the lock on one branch only; the may-held
// lockset keeps this quiet (the runtime's returnBatch pattern).
func (r *register) GoodConditional(b bool) {
	if b {
		r.mu.Lock()
	}
	r.count++
	if b {
		r.mu.Unlock()
	}
}

// GoodDeferred holds the lock to the end of the function.
func (r *register) GoodDeferred() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
}

// BadSpawn reads the owner-confined work-list inside a goroutine.
func (r *register) BadSpawn() {
	go func() {
		_ = len(r.wl) // want "inside a spawned goroutine literal"
	}()
}

// leak is reachable from spawnLeak's go statement: its owner access
// runs off the owning thread even though it is lexically ordinary.
func leak(r *register) {
	r.wl = nil // want "reachable from a"
}

func spawnLeak(r *register) {
	go leak(r)
}

// poke touches the owner field outside the struct's methods with no
// exemption.
func poke(r *register) {
	r.wl = nil // want "outside register's methods"
}

// audit is exempted for wl by the test's table (the parked-mutator
// protocol in miniature).
func audit(r *register) int { return len(r.wl) }

// bumpLocked is a caller-holds function per the test's Holds entry.
func bumpLocked(r *register) {
	r.count += 2
}

// BadReinit writes the immutable capacity after construction.
func (r *register) BadReinit() {
	r.limit = 16 // want "outside its construction functions"
}
