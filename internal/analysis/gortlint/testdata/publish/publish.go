// Package publish is the publication-discipline fixture: slots popped
// from a private reservation must flow through install before reaching
// a publication point.
package publish

type obj = int32

type pool struct {
	free []obj
}

type heap struct {
	root obj
}

// install publishes a slot's header (the fixture's Arena.install).
func (h *heap) install(o obj) { _ = o }

// storeField publishes a reference into the shared heap.
func (h *heap) storeField(i int, v obj) { _, _ = i, v }

// allocGood pops, installs, then publishes. Clean.
func allocGood(h *heap, p *pool) obj {
	o := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	h.install(o)
	h.root = o
	return o
}

// allocLeakField publishes into a shared field before install.
func allocLeakField(h *heap, p *pool) {
	o := p.free[0]
	h.root = o // want "flows into shared field root before install"
}

// allocLeakCall passes the raw slot to a publication function.
func allocLeakCall(h *heap, p *pool) {
	o := p.free[0]
	h.storeField(0, o) // want "reaches publication point heap.storeField"
}

// allocLeakReturn hands the raw slot to the caller.
func allocLeakReturn(p *pool) obj {
	return p.free[0] // want "returned to the caller before install"
}

// drainLeak ranges the reservation and publishes each raw slot.
func drainLeak(h *heap, p *pool) {
	for _, o := range p.free {
		h.storeField(0, o) // want "reaches publication point heap.storeField"
	}
}
