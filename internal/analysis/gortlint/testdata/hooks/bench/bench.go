// Package bench is on the allow list; its hook use is legitimate.
package bench

import "repro/internal/analysis/gortlint/testdata/hooks/arena"

// Warm pins flags before a measurement run.
func Warm(a *arena.A) {
	a.SetFlagForBenchmark(0, true)
}
