// Package prod is a production path that must not touch the hook.
package prod

import "repro/internal/analysis/gortlint/testdata/hooks/arena"

// Reset abuses the benchmark hook on a production path.
func Reset(a *arena.A) {
	a.Mark(0)
	a.SetFlagForBenchmark(0, false) // want "benchmark-only hook"
}
