// Package arena declares the fixture's benchmark-only hook.
package arena

// A is the fixture arena.
type A struct {
	flags []bool
}

// SetFlagForBenchmark forces a raw flag; benchmarks only.
func (a *A) SetFlagForBenchmark(i int, v bool) {
	a.flags[i] = v
}

// Mark is a production-legal operation.
func (a *A) Mark(i int) { a.flags[i] = true }
