package gortlint

// This file declares the discipline table for the verification service
// (internal/server): one big Engine lock, caller-holds conventions for
// the *Locked helpers and the heap.Interface methods, and job identity
// fields that freeze at submission. The discipline framework is the
// same one the runtime uses — the point of reusing it here is that the
// analyzer is generic over the table, not special-cased to gcrt.

// ServerDirs lists the load roots for the server passes.
func ServerDirs() []string {
	return []string{"internal/server"}
}

// serverPkg is the import path of the service package.
const serverPkg = "repro/internal/server"

// ServerDiscipline returns the field-access discipline config for the
// verification-service engine.
func ServerDiscipline() DisciplineConfig {
	return DisciplineConfig{
		Package: serverPkg,
		Table: Table{
			Structs: map[string]map[string]FieldRule{
				"Engine": {
					"opt":            {Class: Immutable},
					"log":            {Class: Immutable},
					"cache":          {Class: Immutable},
					"start":          {Class: Immutable},
					"fs":             {Class: Immutable},
					"retry":          {Class: Immutable},
					"mu":             {Class: Atomic},
					"cond":           {Class: Immutable},
					"jobs":           {Class: Guarded, Guard: "mu"},
					"queue":          {Class: Guarded, Guard: "mu"},
					"seq":            {Class: Guarded, Guard: "mu"},
					"pushes":         {Class: Guarded, Guard: "mu"},
					"closed":         {Class: Guarded, Guard: "mu"},
					"wg":             {Class: Atomic}, // WaitGroup has its own sync
					"cacheHits":      {Class: Guarded, Guard: "mu"},
					"cacheMisses":    {Class: Guarded, Guard: "mu"},
					"statesExplored": {Class: Guarded, Guard: "mu"},
					"corpusCells":    {Class: Guarded, Guard: "mu"},
					"tmpSwept":       {Class: Guarded, Guard: "mu"},
					"storageErrors":  {Class: Guarded, Guard: "mu"},
					"jobRetries":     {Class: Guarded, Guard: "mu"},
					"lastStorageErr": {Class: Guarded, Guard: "mu"},
					"lastStorageMsg": {Class: Guarded, Guard: "mu"},
				},
				"job": {
					// Identity fields freeze when Submit (or crash recovery)
					// publishes the job; workers read them unlocked.
					"id":        {Class: Immutable, Init: []string{"Engine.Submit", "Engine.recover"}},
					"spec":      {Class: Immutable, Init: []string{"Engine.Submit", "Engine.recover"}},
					"fp":        {Class: Immutable, Init: []string{"Engine.Submit", "Engine.recover"}},
					"summary":   {Class: Immutable, Init: []string{"Engine.Submit", "Engine.recover"}},
					"priority":  {Class: Immutable, Init: []string{"Engine.Submit", "Engine.recover"}},
					"corpus":    {Class: Immutable, Init: []string{"Engine.Submit", "Engine.recover"}},
					"submitted": {Class: Immutable, Init: []string{"Engine.Submit", "Engine.recover"}},
					// Mutable run state, all under the engine lock.
					"state":     {Class: Guarded, Guard: "Engine.mu"},
					"cached":    {Class: Guarded, Guard: "Engine.mu"},
					"resumed":   {Class: Guarded, Guard: "Engine.mu"},
					"cancelReq": {Class: Guarded, Guard: "Engine.mu"},
					"pushSeq":   {Class: Guarded, Guard: "Engine.mu"},
					"started":   {Class: Guarded, Guard: "Engine.mu"},
					"finished":  {Class: Guarded, Guard: "Engine.mu"},
					"progress":  {Class: Guarded, Guard: "Engine.mu"},
					"lastState": {Class: Guarded, Guard: "Engine.mu"},
					"errMsg":    {Class: Guarded, Guard: "Engine.mu"},
					"verdict":   {Class: Guarded, Guard: "Engine.mu"},
					"cancel":    {Class: Guarded, Guard: "Engine.mu"},
					"attempts":  {Class: Guarded, Guard: "Engine.mu"},
					"subs":      {Class: Guarded, Guard: "Engine.mu"},
				},
				"cache": {
					"fs":   {Class: Immutable},
					"dir":  {Class: Immutable},
					"log":  {Class: Immutable},
					"mu":   {Class: Atomic},
					"recs": {Class: Guarded, Guard: "mu"},
				},
			},
			Init: []string{"New", "Engine.recover", "openCache"},
			Holds: map[string][]string{
				// The *Locked suffix is the caller-holds convention.
				"Engine.persistLocked":          {"Engine.mu"},
				"Engine.infoLocked":             {"Engine.mu"},
				"Engine.pushLocked":             {"Engine.mu"},
				"Engine.notifyLocked":           {"Engine.mu"},
				"Engine.corpusCellsLocked":      {"Engine.mu"},
				"Engine.requeueLocked":          {"Engine.mu"},
				"Engine.noteStorageErrorLocked": {"Engine.mu"},
				// container/heap invokes the jobQueue methods only from
				// heap.Push/Pop/Fix calls made under the engine lock.
				"jobQueue.Len":  {"Engine.mu"},
				"jobQueue.Less": {"Engine.mu"},
				"jobQueue.Swap": {"Engine.mu"},
				"jobQueue.Push": {"Engine.mu"},
				"jobQueue.Pop":  {"Engine.mu"},
			},
		},
	}
}
