package gortlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/golint"
)

// BarrierConfig declares the barrier-coverage rule for one package: the
// Go-source mirror of the model analyzer's deletion/insertion-barrier
// placement rules (internal/analysis/rules.go).
//
// The verified Store (paper Figure 6) runs the deletion barrier on the
// overwritten value and the insertion barrier on the stored value
// BEFORE the raw field write commits. At source level that means:
// every call to a raw store function must either live in an audited
// mutator entry point — where the required number of barrier calls must
// lexically precede it, each unconditional or guarded only by the
// negation of a declared ablation flag — or be explicitly allowed
// (collector/allocator internals that run when no mutator can observe
// the slot).
type BarrierConfig struct {
	// Package is the import path (or unique suffix) of the target.
	Package string
	// StoreFns are the raw reference-field store functions (funcKeys).
	StoreFns []string
	// BarrierFn is the write-barrier method name key (e.g.
	// "Mutator.barrierHit").
	BarrierFn string
	// Audited maps funcKeys to the number of barrier calls that must
	// precede each raw store in them (2 = deletion + insertion).
	Audited map[string]int
	// AblationFlags are option field names whose negation may guard a
	// counted barrier call (`if !opt.NoDeletionBarrier { barrierHit }`).
	AblationFlags []string
	// Allowed lists funcKeys that may call StoreFns without barriers
	// (publication-safe allocator/collector internals).
	Allowed []string
	// RawFields are "Struct.field" keys of raw reference-element slices;
	// a mutating element method (.Store/.CompareAndSwap/.Add/.Swap) on
	// them is a raw write, allowed only in AllowedRaw.
	RawFields []string
	// AllowedRaw lists funcKeys that may write RawFields elements.
	AllowedRaw []string
}

// CheckBarriers runs the barrier-coverage pass over the target package.
func CheckBarriers(mod *golint.Module, cfg BarrierConfig) ([]golint.Diagnostic, error) {
	pkg := mod.Package(cfg.Package)
	if pkg == nil {
		return nil, fmt.Errorf("gortlint: package %s not loaded", cfg.Package)
	}
	storeFns := toSet(cfg.StoreFns)
	audited := cfg.Audited
	allowed := toSet(cfg.Allowed)
	allowedRaw := toSet(cfg.AllowedRaw)
	ablation := toSet(cfg.AblationFlags)

	// Resolve raw field objects so element writes match on identity.
	rawVars, err := resolveFieldKeys(pkg, cfg.RawFields)
	if err != nil {
		return nil, err
	}

	var diags []golint.Diagnostic
	for _, f := range mod.Functions() {
		if f.Pkg != pkg {
			continue
		}
		key := f.Key()

		// Raw element writes: x.fields[i].Store(...) and friends.
		if !allowedRaw[key] {
			ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !isElementWriteName(sel.Sel.Name) {
					return true
				}
				idx, ok := sel.X.(*ast.IndexExpr)
				if !ok {
					return true
				}
				base, ok := idx.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, ok := f.Pkg.Info.Uses[base.Sel].(*types.Var)
				if _, isRaw := rawVars[v]; ok && isRaw {
					diags = append(diags, golint.Diagnostic{
						Pos:  mod.Fset().Position(call.Pos()),
						Func: f.Fn.FullName(),
						Message: fmt.Sprintf(
							"raw element write to %s outside the store/install functions bypasses the barrier discipline",
							base.Sel.Name),
					})
				}
				return true
			})
		}

		// Calls to the raw store functions.
		var storePos []token.Pos
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeOf(f, call); fn != nil && storeFns[funcKeyOf(fn)] {
				storePos = append(storePos, call.Pos())
			}
			return true
		})
		if len(storePos) == 0 {
			continue
		}
		if allowed[key] {
			continue
		}
		need, isAudited := audited[key]
		if !isAudited {
			for _, pos := range storePos {
				diags = append(diags, golint.Diagnostic{
					Pos:  mod.Fset().Position(pos),
					Func: f.Fn.FullName(),
					Message: fmt.Sprintf(
						"raw store call in %s, which is neither barrier-audited nor an allowed collector path", key),
				})
			}
			continue
		}
		// Audited: count qualifying barrier calls lexically before each
		// raw store. A call qualifies when every enclosing conditional is
		// the negation of a declared ablation flag — any other guard
		// means the barrier might not run on the path that stores.
		hits := barrierHits(f, cfg.BarrierFn, ablation)
		for _, pos := range storePos {
			n := 0
			for _, h := range hits {
				if h < pos {
					n++
				}
			}
			if n < need {
				diags = append(diags, golint.Diagnostic{
					Pos:  mod.Fset().Position(pos),
					Func: f.Fn.FullName(),
					Message: fmt.Sprintf(
						"raw store is preceded by %d of %d required write-barrier calls: a missing barrier loses objects under concurrent marking",
						n, need),
				})
			}
		}
	}
	golint.SortDiagnostics(diags)
	return diags, nil
}

// barrierHits collects the positions of qualifying barrier calls in f:
// reachable unconditionally or under ablation-negation guards only.
func barrierHits(f *golint.Function, barrierFn string, ablation map[string]bool) []token.Pos {
	var hits []token.Pos
	var walk func(stmts []ast.Stmt, countable bool)
	collect := func(s ast.Stmt, countable bool) {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if fn := calleeOf(f, call); fn != nil && funcKeyOf(fn) == barrierFn && countable {
			hits = append(hits, call.Pos())
		}
	}
	walk = func(stmts []ast.Stmt, countable bool) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.ExprStmt:
				collect(s, countable)
			case *ast.IfStmt:
				walk(s.Body.List, countable && isAblationNot(f, s.Cond, ablation))
				if s.Else != nil {
					if blk, ok := s.Else.(*ast.BlockStmt); ok {
						walk(blk.List, false)
					} else {
						walk([]ast.Stmt{s.Else}, false)
					}
				}
			case *ast.BlockStmt:
				walk(s.List, countable)
			case *ast.ForStmt:
				walk(s.Body.List, false)
			case *ast.RangeStmt:
				walk(s.Body.List, false)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					walk(c.(*ast.CaseClause).Body, false)
				}
			}
		}
	}
	walk(f.Decl.Body.List, true)
	return hits
}

// isAblationNot matches `!x.Flag` where Flag is a declared ablation
// flag name.
func isAblationNot(f *golint.Function, cond ast.Expr, ablation map[string]bool) bool {
	un, ok := ast.Unparen(cond).(*ast.UnaryExpr)
	if !ok || un.Op != token.NOT {
		return false
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	return ok && ablation[sel.Sel.Name]
}

// isElementWriteName matches the sync/atomic mutating method names.
func isElementWriteName(name string) bool {
	switch name {
	case "Store", "CompareAndSwap", "Add", "Swap", "Or", "And":
		return true
	}
	return false
}

// calleeOf resolves a call's target *types.Func, or nil.
func calleeOf(f *golint.Function, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := f.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := f.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcKeyOf formats a *types.Func as "Recv.Name" or "Name" (the table
// key convention shared with golint.Function.Key).
func funcKeyOf(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// toSet builds a membership set.
func toSet(list []string) map[string]bool {
	out := make(map[string]bool, len(list))
	for _, s := range list {
		out[s] = true
	}
	return out
}

// splitKey splits "Struct.field".
func splitKey(key string) (string, string, bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			return key[:i], key[i+1:], i > 0 && i < len(key)-1
		}
	}
	return "", "", false
}
