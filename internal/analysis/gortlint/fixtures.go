package gortlint

import (
	"repro/internal/analysis/golint"
)

// FixtureSpec pairs an analyzer pass with a seeded-defect fixture it
// must flag. The CLI's -gosrc-fixtures mode runs every spec and treats
// a fixture that produces NO findings as a regression: the gate that
// keeps the real trees honest only means something while the passes
// demonstrably still catch the defects they were built for.
type FixtureSpec struct {
	// Name identifies the spec in CLI and test output.
	Name string
	// Dirs are the fixture load roots, relative to the module root.
	Dirs []string
	// Min is the number of findings the seeded defects guarantee.
	Min int
	// Run executes the pass against the loaded fixture module.
	Run func(mod *golint.Module) ([]golint.Diagnostic, error)
}

// fixtureBase is the fixture root, relative to the module root.
const fixtureBase = "internal/analysis/gortlint/testdata"

// Fixtures returns every seeded-defect fixture spec. The package tests
// additionally check the findings line-by-line against the fixtures'
// `// want` comments; the CLI smoke only requires Min findings.
func Fixtures() []FixtureSpec {
	return []FixtureSpec{
		{
			Name: "discipline",
			Dirs: []string{fixtureBase + "/discipline"},
			Min:  9,
			Run: func(mod *golint.Module) ([]golint.Diagnostic, error) {
				return CheckDiscipline(mod, fixtureDiscipline())
			},
		},
		{
			Name: "barriers",
			Dirs: []string{fixtureBase + "/barrier"},
			Min:  4,
			Run: func(mod *golint.Module) ([]golint.Diagnostic, error) {
				return CheckBarriers(mod, fixtureBarriers())
			},
		},
		{
			Name: "publication",
			Dirs: []string{fixtureBase + "/publish"},
			Min:  4,
			Run: func(mod *golint.Module) ([]golint.Diagnostic, error) {
				return CheckPublish(mod, fixturePublish())
			},
		},
		{
			Name: "bench-hooks",
			Dirs: []string{
				fixtureBase + "/hooks/arena",
				fixtureBase + "/hooks/prod",
				fixtureBase + "/hooks/bench",
			},
			Min: 1,
			Run: func(mod *golint.Module) ([]golint.Diagnostic, error) {
				return CheckHooks(mod, fixtureHooks())
			},
		},
	}
}

// fixtureDiscipline classifies the discipline fixture's register struct,
// deliberately omitting stray (exhaustiveness defect) and contradicting
// label's annotation (drift defect).
func fixtureDiscipline() DisciplineConfig {
	return DisciplineConfig{
		Package: "testdata/discipline",
		Table: Table{
			Structs: map[string]map[string]FieldRule{
				"register": {
					"ticks": {Class: Atomic},
					"mu":    {Class: Atomic},
					"count": {Class: Guarded, Guard: "mu"},
					"wl":    {Class: Owner, Domain: "mutator"},
					"limit": {Class: Immutable},
					"label": {Class: Immutable},
				},
			},
			Init: []string{"newRegister"},
			Exempt: map[string][]string{
				"audit": {"register.wl"},
			},
			Holds: map[string][]string{
				"bumpLocked": {"register.mu"},
			},
		},
	}
}

func fixtureBarriers() BarrierConfig {
	return BarrierConfig{
		Package:   "testdata/barrier",
		StoreFns:  []string{"heap.StoreField"},
		BarrierFn: "heap.barrierHit",
		Audited: map[string]int{
			"heap.Store":                 2,
			"heap.StoreMissingInsertion": 2,
			"heap.StoreGuardedWrong":     2,
		},
		AblationFlags: []string{"NoDel", "NoIns"},
		RawFields:     []string{"heap.fields"},
		AllowedRaw:    []string{"heap.StoreField"},
	}
}

func fixturePublish() PublishConfig {
	return PublishConfig{
		Package:           "testdata/publish",
		ReservationFields: []string{"pool.free"},
		InstallFns:        []string{"heap.install"},
		PublishFns:        []string{"heap.storeField"},
	}
}

func fixtureHooks() HooksConfig {
	return HooksConfig{
		Package:            "testdata/hooks/arena",
		RestrictedFns:      []string{"A.SetFlagForBenchmark"},
		AllowedPkgSuffixes: []string{"testdata/hooks/bench"},
	}
}
