package gortlint

// This file declares the access-discipline tables and pass configs for
// the concrete runtime (internal/gcrt) — the machine-checked companion
// of the concurrency comments in that package. The tables mirror the
// ownership story the kernel's documentation tells: control variables
// and mark headers are atomic (the TSO argument lives in their method
// calls), free lists hang off per-shard locks, mutator-private state
// (roots, work-lists, reservations) is owner-confined with the
// parked-mutator protocol as the sole exemption, and everything set up
// before sharing is immutable-after-init.
//
// Changing a gcrt struct means updating the matching table entry AND
// the `gcrt:guard` annotation on the field — the analyzer fails loudly
// on drift in either direction, which is the point.

// GCRTDirs lists the load roots for the gcrt passes, relative to the
// module root: the runtime, its adversarial workload driver, and the
// non-test binaries that exercise it.
func GCRTDirs() []string {
	return []string{
		"internal/gcrt",
		"internal/gcrt/workload",
		"cmd/gcrt-demo",
		"cmd/gcrt-bench",
	}
}

// gcrtPkg is the import path of the runtime package.
const gcrtPkg = "repro/internal/gcrt"

// GCRTDiscipline returns the field-access discipline config for the
// runtime.
func GCRTDiscipline() DisciplineConfig {
	return DisciplineConfig{
		Package: gcrtPkg,
		Table: Table{
			Structs: map[string]map[string]FieldRule{
				"Arena": {
					"nslots":  {Class: Immutable},
					"nfields": {Class: Immutable},
					"headers": {Class: Immutable}, // elements are atomics
					"fields":  {Class: Immutable}, // elements are atomics
					"shards":  {Class: Immutable}, // shards lock themselves
					"smask":   {Class: Immutable},
					"Faults":  {Class: Atomic},
				},
				"freeShard": {
					"mu":   {Class: Atomic},
					"free": {Class: Guarded, Guard: "mu"},
				},
				"Runtime": {
					"opt":          {Class: Immutable},
					"arena":        {Class: Immutable},
					"fM":           {Class: Atomic},
					"fA":           {Class: Atomic},
					"phase":        {Class: Atomic},
					"hsType":       {Class: Atomic},
					"hsRound":      {Class: Owner, Domain: "collector"},
					"muts":         {Class: Immutable},
					"stw":          {Class: Atomic},
					"wqMu":         {Class: Atomic},
					"wq":           {Class: Guarded, Guard: "wqMu"},
					"oracle":       {Class: Immutable, Init: []string{"New", "Runtime.EnableOracle"}},
					"sweepScratch": {Class: Owner, Domain: "collector"},
					"stats":        {Class: Immutable}, // counters are atomics
				},
				"Mutator": {
					"rt":         {Class: Immutable},
					"id":         {Class: Immutable},
					"roots":      {Class: Owner, Domain: "mutator"},
					"wl":         {Class: Owner, Domain: "mutator"},
					"pool":       {Class: Owner, Domain: "mutator"},
					"tlab":       {Class: Owner, Domain: "mutator"},
					"bbuf":       {Class: Owner, Domain: "mutator"},
					"bcap":       {Class: Immutable},
					"hsWanted":   {Class: Atomic},
					"hsAcked":    {Class: Atomic},
					"lastAck":    {Class: Owner, Domain: "mutator"},
					"parked":     {Class: Atomic},
					"parkMu":     {Class: Atomic},
					"served":     {Class: Atomic},
					"stwAcked":   {Class: Atomic},
					"pauseMax":   {Class: Atomic},
					"pauseTotal": {Class: Atomic},
					"pauseCount": {Class: Atomic},
					"ops":        {Class: Owner, Domain: "mutator"},
					"oracleTick": {Class: Owner, Domain: "mutator"},
				},
				"wsDeque": {
					"top":    {Class: Atomic},
					"bottom": {Class: Atomic},
					"buf":    {Class: Immutable}, // elements are atomics
					"mask":   {Class: Immutable},
				},
				"traceState": {
					"deques":    {Class: Immutable},
					"ovMu":      {Class: Atomic},
					"overflow":  {Class: Guarded, Guard: "ovMu"},
					"pending":   {Class: Atomic},
					"processed": {Class: Atomic},
					"failed":    {Class: Atomic},
					"panicVal":  {Class: Guarded, Guard: "ovMu"},
				},
				"Oracle": {
					"rt":       {Class: Immutable},
					"opt":      {Class: Immutable},
					"total":    {Class: Atomic},
					"checks":   {Class: Atomic},
					"mu":       {Class: Atomic},
					"findings": {Class: Guarded, Guard: "mu"},
					"byCheck":  {Class: Guarded, Guard: "mu"},
				},
				"Stats": {
					"cycles":          {Class: Atomic},
					"freed":           {Class: Atomic},
					"marked":          {Class: Atomic},
					"scanned":         {Class: Atomic},
					"markFast":        {Class: Atomic},
					"markCAS":         {Class: Atomic},
					"handshakes":      {Class: Atomic},
					"handshakeNanos":  {Class: Atomic},
					"cycleNanos":      {Class: Atomic},
					"rootsRounds":     {Class: Atomic},
					"tlabRefills":     {Class: Atomic},
					"steals":          {Class: Atomic},
					"barrierBuffered": {Class: Atomic},
					"barrierFlushes":  {Class: Atomic},
					"hsHist":          {Class: Immutable}, // buckets are atomics
				},
				"latHist": {
					"buckets": {Class: Immutable}, // elements are atomics
				},
			},
			Init: []string{"New", "NewArenaSharded", "newWSDeque"},
			Exempt: map[string][]string{
				// The parked-mutator protocol: the collector services a
				// parked mutator's handshake under parkMu, operating on its
				// private roots and work-list on its behalf (§2.2).
				"Runtime.collectorSideHandshake": {"Mutator.roots", "Mutator.wl"},
				// The STW baseline scans roots with the world stopped.
				"Runtime.CollectSTW": {"Mutator.roots"},
				// The oracle samples a mutator's roots at its own safe point
				// (on the mutator's goroutine) and ticks its sampling
				// counter inside Store.
				"Oracle.validateMutator": {"Mutator.roots"},
				"Oracle.checkStore":      {"Mutator.oracleTick"},
			},
		},
	}
}

// GCRTBarriers returns the barrier-coverage config: Mutator.Store is
// the audited mutator store (deletion + insertion barrier before the
// raw write, Figure 6); the allocator/collector paths that write fields
// raw do so on unpublished or unreachable slots.
func GCRTBarriers() BarrierConfig {
	return BarrierConfig{
		Package:   gcrtPkg,
		StoreFns:  []string{"Arena.StoreField"},
		BarrierFn: "Mutator.barrierHit",
		Audited: map[string]int{
			"Mutator.Store": 2, // deletion barrier + insertion barrier
		},
		AblationFlags: []string{"NoDeletionBarrier", "NoInsertionBarrier"},
		RawFields:     []string{"Arena.fields"},
		AllowedRaw: []string{
			"Arena.StoreField", // the raw store primitive itself
			"Arena.install",    // initializes an unpublished slot
		},
	}
}

// GCRTPublish returns the publication-discipline config: slots popped
// from a reservation are dead until Arena.install writes their header.
func GCRTPublish() PublishConfig {
	return PublishConfig{
		Package: gcrtPkg,
		ReservationFields: []string{
			"Mutator.tlab",
			"Mutator.pool",
			"freeShard.free",
		},
		InstallFns: []string{"Arena.install"},
		PublishFns: []string{"Arena.StoreField", "Runtime.transfer"},
		Exempt: []string{
			// The reservation machinery itself shuttles uninstalled slots
			// between free lists and reservations by design.
			"Arena.reserveBatch",
			"Arena.returnBatch",
		},
	}
}

// GCRTHooks returns the benchmark-hook restriction: the raw mark-flag
// mutators may only be referenced from benchmark binaries (and test
// files, which the loader never parses).
func GCRTHooks() HooksConfig {
	return HooksConfig{
		Package: gcrtPkg,
		RestrictedFns: []string{
			"Arena.SetFlagForBenchmark",
			"Arena.WhitenForBenchmark",
		},
		AllowedPkgSuffixes: []string{"cmd/gcrt-bench"},
	}
}
