package analysis

import (
	"repro/internal/gcmodel"
)

// This file re-derives the partial-order-reduction safe classification
// from the declared effect table, independently of the handwritten
// gcmodel.Model.SafeRequest. The derivation argues from three sources:
//
//   - the KindEffect table: which guards a kind has and where its
//     effects land (own buffer, shared memory, mailboxes, heap domain);
//   - the extracted writers-per-class sets: which processes have a
//     declared write site for each location class;
//   - the configuration: SCMemory and MaxBuf.
//
// A request is derived safe when the effect table shows it is enabled,
// cannot be disabled by other processes, and commutes with every
// enabled transition of every other process:
//
//   - Buffered stores commute (only the requester and the system's
//     oldest-entry dequeue touch the buffer, at opposite ends) unless
//     the class is ObservedBuffered — the verification itself reads
//     buffered control writes — or the bounded buffer is full (then the
//     request is disabled, and other processes can re-enable it).
//   - Loads commute when the value they return is invariant under
//     every other process's transitions: either the requester holds the
//     TSO lock (all other memory traffic is disabled), or the class is
//     a single-address class whose only declared writer is the
//     requester. The sole-writer argument is per-address; for the
//     multi-address classes (mark flags, fields) the class-granular
//     effect table cannot identify the address, much less its
//     allocation status, so the derivation conservatively declines.
//   - A fence with an empty buffer is a pure control advance.
//   - An unlock by the owner with an empty buffer only ever enables
//     others' transitions.
//   - Everything touching the handshake mailboxes or the heap domain
//     is a protocol interaction with other processes: never safe.
//
// The Validator diffs this derivation against the handwritten
// classification at every reachable state of a validated run; see
// Validator.CheckPOR.

// DeriveSafe classifies request r in system state s, mirroring the
// signature of gcmodel.Model.SafeRequest.
func (fp *Footprint) DeriveSafe(s *gcmodel.SysLocal, r gcmodel.Req) bool {
	if int(r.Kind) < 0 || int(r.Kind) >= gcmodel.NumReqKinds {
		return false
	}
	e := fp.Kinds[r.Kind]
	p := r.P
	if e.HSRead || e.HSWrite || e.HeapDomRead || e.HeapDomWrite || e.AcquiresLock {
		return false
	}
	if e.FlushGuard && len(s.Bufs[p]) != 0 {
		return false // disabled until the system drains the buffer
	}
	if e.ReleasesLock {
		return s.Lock == p
	}
	if e.Writes != 0 {
		if !e.Buffered || fp.Cfg.SCMemory {
			return false // direct memory effect: visible
		}
		if ClassOf(r.Loc.Kind)&ObservedBuffered != 0 {
			return false // buffered write the verification observes
		}
		return fp.Cfg.MaxBuf == 0 || len(s.Bufs[p]) < fp.Cfg.MaxBuf
	}
	if e.Reads != 0 {
		if e.LockGuard && !(s.Lock == -1 || s.Lock == p) {
			return false // disabled while another process holds the lock
		}
		if s.Lock == p {
			return true // lock-shielded: memory is frozen for others
		}
		cls := ClassOf(r.Loc.Kind)
		return cls.SingleAddress() && fp.WritersOf(cls) == pidBit(p)
	}
	return e.FlushGuard // a pure fence (empty buffer established above)
}
