package analysis

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
)

// Validator replays the static declarations against a running
// exploration. Its two hooks are wired into the checker (package
// explore via package core) when effect validation is enabled:
//
//   - CheckEvent fires on every transition the search takes and fails
//     if the observed kind, location class, responder label, τ label,
//     or lock/buffer effect falls outside the declared footprint
//     ("declared-effects").
//   - CheckPOR fires on every newly visited state and fails if the
//     derived POR safe classification (por.go) disagrees with the
//     handwritten gcmodel classification on any pending singleton
//     request ("por-safe-class").
//
// The maps are built once and only read afterwards; the counters are
// atomic. A single Validator is safe for concurrent use by all checker
// workers.
type Validator struct {
	fp     *Footprint
	m      *gcmodel.Model
	events atomic.Int64
	states atomic.Int64
}

// NewValidator extracts the footprint of m's configuration and returns
// a validator for its exploration.
func NewValidator(m *gcmodel.Model) (*Validator, error) {
	fp, err := NewFootprint(m.Cfg)
	if err != nil {
		return nil, err
	}
	return &Validator{fp: fp, m: m}, nil
}

// Footprint returns the extracted footprint backing the validator.
func (v *Validator) Footprint() *Footprint { return v.fp }

// Stats returns the number of transitions and states validated.
func (v *Validator) Stats() (events, states int64) {
	return v.events.Load(), v.states.Load()
}

func sysOf(st cimp.System[*gcmodel.Local]) *gcmodel.SysLocal {
	return st.Procs[len(st.Procs)-1].Data.Sys
}

// CheckEvent validates one taken transition against the declarations.
func (v *Validator) CheckEvent(parent, next cimp.System[*gcmodel.Local], ev cimp.Event) error {
	v.events.Add(1)
	if ev.Tau() {
		pid, ok := v.fp.Locals[ev.Label]
		if !ok {
			return fmt.Errorf("undeclared internal step %q by p%d", ev.Label, ev.Proc)
		}
		if pid != ev.Proc {
			return fmt.Errorf("internal step %q declared for p%d, observed at p%d", ev.Label, pid, ev.Proc)
		}
		return nil
	}

	req, ok := ev.Alpha.(gcmodel.Req)
	if !ok {
		return fmt.Errorf("rendezvous at %q carries %T, not a gcmodel request", ev.Label, ev.Alpha)
	}
	site, ok := v.fp.Sites[ev.Label]
	if !ok {
		return fmt.Errorf("undeclared request site %q (kind %v)", ev.Label, req.Kind)
	}
	if site.PID != ev.Proc || req.P != ev.Proc {
		return fmt.Errorf("site %q declared for p%d, fired by p%d (request names p%d)",
			ev.Label, site.PID, ev.Proc, req.P)
	}
	if site.Kind != req.Kind {
		return fmt.Errorf("site %q declared kind %v, observed %v", ev.Label, site.Kind, req.Kind)
	}
	if want := v.fp.Resp[req.Kind]; ev.PeerLabel != want {
		return fmt.Errorf("kind %v answered by %q, declared responder is %q", req.Kind, ev.PeerLabel, want)
	}
	if kindHasLoc(req.Kind) {
		if cls := ClassOf(req.Loc.Kind); cls&site.Loc == 0 {
			return fmt.Errorf("site %q declared location class %v, observed %v (loc %v)",
				ev.Label, site.Loc, cls, req.Loc)
		}
	}

	// Kind-level semantic facts, checked against the surrounding states.
	ps, ns := sysOf(parent), sysOf(next)
	e := v.fp.Kinds[req.Kind]
	if e.LockGuard && !(ps.Lock == -1 || ps.Lock == req.P) {
		return fmt.Errorf("%v at %q answered while p%d held the lock", req.Kind, ev.Label, ps.Lock)
	}
	if e.FlushGuard && len(ps.Bufs[req.P]) != 0 {
		return fmt.Errorf("%v at %q answered with %d buffered stores", req.Kind, ev.Label, len(ps.Bufs[req.P]))
	}
	if e.AcquiresLock && !(ps.Lock == -1 && ns.Lock == req.P) {
		return fmt.Errorf("%v at %q: lock %d→%d, declared -1→%d", req.Kind, ev.Label, ps.Lock, ns.Lock, req.P)
	}
	if e.ReleasesLock && !(ps.Lock == req.P && ns.Lock == -1) {
		return fmt.Errorf("%v at %q: lock %d→%d, declared %d→-1", req.Kind, ev.Label, ps.Lock, ns.Lock, req.P)
	}
	if req.Kind == gcmodel.RWrite && !v.fp.Cfg.SCMemory {
		pb, nb := ps.Bufs[req.P], ns.Bufs[req.P]
		want := gcmodel.WAct{Loc: req.Loc, Val: req.Val}
		if len(nb) != len(pb)+1 || nb[len(nb)-1] != want {
			return fmt.Errorf("write at %q did not append %v to p%d's buffer (%d→%d entries)",
				ev.Label, want, req.P, len(pb), len(nb))
		}
	}
	return nil
}

// CheckPOR diffs the derived POR safe classification against the
// handwritten one at st. It inspects the same pending requests the
// reduction oracle inspects: each non-system process with a unique
// enabled Request head.
func (v *Validator) CheckPOR(st cimp.System[*gcmodel.Local]) error {
	v.states.Add(1)
	sys := sysOf(st)
	for p := 0; p < len(st.Procs)-1; p++ {
		cfg := st.Procs[p]
		heads := cimp.Heads(cfg.Stack, cfg.Data)
		if len(heads) != 1 {
			continue
		}
		r, ok := heads[0].Act.(*cimp.Request[*gcmodel.Local])
		if !ok {
			continue
		}
		req, ok := r.Act(cfg.Data).(gcmodel.Req)
		if !ok {
			continue
		}
		hand := v.m.SafeRequest(sys, req)
		derived := v.fp.DeriveSafe(sys, req)
		if hand != derived {
			return fmt.Errorf("POR safe-class disagreement at %q (%v): handwritten=%v derived=%v",
				r.Label(), req, hand, derived)
		}
	}
	return nil
}
