package analysis

import (
	"strings"

	"repro/internal/gcmodel"
)

// LocClass is a bitmask of shared-memory location classes, the
// granularity at which the static analyses reason about addresses. The
// three control words are singleton classes (one address each); LMark
// and LField cover one address per object/field, so a class match there
// does not imply an address match.
type LocClass uint8

const (
	ClassFA LocClass = 1 << iota
	ClassFM
	ClassPhase
	ClassMark
	ClassField

	numClasses = 5
)

// ClassControl is the GC control words fA, fM and phase.
const ClassControl = ClassFA | ClassFM | ClassPhase

// ClassAny is every location class.
const ClassAny = ClassControl | ClassMark | ClassField

// ObservedBuffered is the set of classes whose *buffered* writes are
// observable by the verification itself: the tso_control invariant and
// the GC-view color abstraction read control writes out of the writer's
// buffer, so enqueue order against other processes' steps is visible.
// The POR derivation (por.go) must therefore refuse to treat buffered
// stores to these classes as invisible.
const ObservedBuffered = ClassControl

// ClassOf maps a location kind to its class bit.
func ClassOf(k gcmodel.LocKind) LocClass {
	switch k {
	case gcmodel.LFA:
		return ClassFA
	case gcmodel.LFM:
		return ClassFM
	case gcmodel.LPhase:
		return ClassPhase
	case gcmodel.LMark:
		return ClassMark
	case gcmodel.LField:
		return ClassField
	}
	return 0
}

// SingleAddress reports whether the class set denotes exactly one
// memory address (a single control word), so that a write and a read
// within the set are guaranteed same-address accesses.
func (c LocClass) SingleAddress() bool {
	return c == ClassFA || c == ClassFM || c == ClassPhase
}

func (c LocClass) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	for _, e := range [...]struct {
		bit  LocClass
		name string
	}{
		{ClassFA, "fA"}, {ClassFM, "fM"}, {ClassPhase, "phase"},
		{ClassMark, "mark"}, {ClassField, "field"},
	} {
		if c&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "|")
}

// KindEffect is the declared memory-system footprint of one request
// kind: which shared state the system may read or write to answer it,
// and which enabledness guards and lock effects it has. The table below
// restates the semantics of gcmodel/sys.go declaratively; the Validator
// checks the restatement against every transition the checker takes.
type KindEffect struct {
	// Reads and Writes are the shared TSO location classes the answer
	// may read or modify. Buffered distinguishes stores that go to the
	// requester's own store buffer from direct memory effects.
	Reads, Writes LocClass
	Buffered      bool

	// FlushGuard: answered only when the requester's buffer is empty.
	// LockGuard: answered only when no other process holds the TSO lock.
	FlushGuard bool
	LockGuard  bool

	// Lock effects (the locked-instruction prefix).
	AcquiresLock bool
	ReleasesLock bool

	// Handshake-mailbox effects (not subject to TSO, paper §3.1).
	HSRead, HSWrite bool

	// Heap-domain effects: allocation, free, and domain snapshots.
	HeapDomRead, HeapDomWrite bool
}

// KindEffects returns the declared per-kind effect table, indexed by
// ReqKind. The exhaustiveness test checks that every kind has a
// non-zero entry here and a String case, so a kind added to gcmodel
// without a declaration fails fast.
func KindEffects() [gcmodel.NumReqKinds]KindEffect {
	var t [gcmodel.NumReqKinds]KindEffect
	t[gcmodel.RRead] = KindEffect{Reads: ClassAny, LockGuard: true}
	t[gcmodel.RWrite] = KindEffect{Writes: ClassAny, Buffered: true}
	t[gcmodel.RMFence] = KindEffect{FlushGuard: true}
	t[gcmodel.RLock] = KindEffect{AcquiresLock: true}
	t[gcmodel.RUnlock] = KindEffect{ReleasesLock: true, FlushGuard: true}
	// Alloc reads f_A (or f_M under AllocWhite) to pick the new flag and
	// creates the object: a direct (unbuffered) mark+fields write plus a
	// heap-domain extension.
	t[gcmodel.RAlloc] = KindEffect{
		Reads: ClassFA | ClassFM, Writes: ClassMark | ClassField,
		LockGuard: true, HeapDomWrite: true,
	}
	t[gcmodel.RFree] = KindEffect{
		Writes: ClassMark | ClassField, LockGuard: true, HeapDomWrite: true,
	}
	t[gcmodel.RRefsSnapshot] = KindEffect{LockGuard: true, HeapDomRead: true}
	t[gcmodel.RHsStart] = KindEffect{HSWrite: true}
	t[gcmodel.RHsSignal] = KindEffect{HSWrite: true}
	t[gcmodel.RHsPoll] = KindEffect{HSRead: true}
	t[gcmodel.RHsDone] = KindEffect{HSRead: true, HSWrite: true}
	t[gcmodel.RHsWaitAll] = KindEffect{HSRead: true, HSWrite: true}
	return t
}

// RespLabels returns the declared system response label for each
// request kind. Extraction checks that exactly these labels appear as
// Response commands in the built system program, and the Validator
// checks every rendezvous pairs a request kind with its declared
// responder label.
func RespLabels() [gcmodel.NumReqKinds]string {
	var t [gcmodel.NumReqKinds]string
	t[gcmodel.RRead] = "sys-read"
	t[gcmodel.RWrite] = "sys-write"
	t[gcmodel.RMFence] = "sys-mfence"
	t[gcmodel.RLock] = "sys-lock"
	t[gcmodel.RUnlock] = "sys-unlock"
	t[gcmodel.RAlloc] = "sys-alloc"
	t[gcmodel.RFree] = "sys-free"
	t[gcmodel.RRefsSnapshot] = "sys-refs"
	t[gcmodel.RHsStart] = "sys-hs-start"
	t[gcmodel.RHsSignal] = "sys-hs-signal"
	t[gcmodel.RHsPoll] = "sys-hs-poll"
	t[gcmodel.RHsDone] = "sys-hs-done"
	t[gcmodel.RHsWaitAll] = "sys-hs-wait-all"
	return t
}

// kindHasLoc reports whether Req.Loc is meaningful for the kind (and
// so whether a Site carries a location class to validate).
func kindHasLoc(k gcmodel.ReqKind) bool {
	return k == gcmodel.RRead || k == gcmodel.RWrite || k == gcmodel.RFree
}
