package analysis

import (
	"fmt"
	"sort"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
)

// CFG is the control-flow graph of one process's program. Nodes are the
// action commands (LocalOps and Requests; control constructs fold away,
// exactly as the atomic-action semantics folds them into transitions).
// An edge u→v means v can be the next action after u on some control
// path; conditions are treated as non-deterministic, so the CFG
// over-approximates the set of executions — path-universal rules
// ("every path passes a barrier") are therefore sound to check on it.
type CFG struct {
	PID   cimp.PID
	Nodes []Node
	// Succ is the adjacency list; Entry are the nodes the program can
	// start at.
	Succ  [][]int
	Entry []int

	preds [][]int
	cfg   *gcmodel.Config
	kinds [gcmodel.NumReqKinds]KindEffect
	probe *gcmodel.Local
}

// Node is one CFG node.
type Node struct {
	Com   cimp.Com[*gcmodel.Local]
	Label string
	// Req is the probed request for Request nodes, nil for LocalOps.
	Req *gcmodel.Req
}

type flow struct {
	firsts   []int
	exits    []int
	nullable bool
}

type cfgBuilder struct {
	g   *CFG
	ids map[cimp.Com[*gcmodel.Local]]int
	adj []map[int]bool
	err error
}

// buildCFG constructs the CFG of one process. probe is the synthetic
// local state used to extract each Request node's declared request.
func buildCFG(pid cimp.PID, root cimp.Com[*gcmodel.Local], mcfg *gcmodel.Config, probe *gcmodel.Local) (*CFG, error) {
	g := &CFG{PID: pid, cfg: mcfg, kinds: KindEffects(), probe: probe}
	b := &cfgBuilder{g: g, ids: make(map[cimp.Com[*gcmodel.Local]]int)}
	f := b.build(root)
	if b.err != nil {
		return nil, b.err
	}
	g.Entry = f.firsts
	// A Loop never exits; a terminating program's exits simply have no
	// successors. Flatten the adjacency sets deterministically.
	g.Succ = make([][]int, len(g.Nodes))
	g.preds = make([][]int, len(g.Nodes))
	for u, set := range b.adj {
		for v := range set {
			g.Succ[u] = append(g.Succ[u], v)
			g.preds[v] = append(g.preds[v], u)
		}
	}
	for u := range g.Succ {
		sort.Ints(g.Succ[u])
		sort.Ints(g.preds[u])
	}
	return g, nil
}

func (b *cfgBuilder) node(c cimp.Com[*gcmodel.Local]) int {
	if id, ok := b.ids[c]; ok {
		return id
	}
	id := len(b.g.Nodes)
	n := Node{Com: c, Label: c.Label()}
	if r, ok := c.(*cimp.Request[*gcmodel.Local]); ok {
		req, err := probeAct(r, b.g.probe)
		if err != nil && b.err == nil {
			b.err = err
		}
		n.Req = &req
	}
	b.ids[c] = id
	b.g.Nodes = append(b.g.Nodes, n)
	b.adj = append(b.adj, make(map[int]bool))
	return id
}

func (b *cfgBuilder) edge(us, vs []int) {
	for _, u := range us {
		for _, v := range vs {
			b.adj[u][v] = true
		}
	}
}

func (b *cfgBuilder) build(c cimp.Com[*gcmodel.Local]) flow {
	switch n := c.(type) {
	case nil, *cimp.Skip[*gcmodel.Local]:
		return flow{nullable: true}
	case *cimp.LocalOp[*gcmodel.Local], *cimp.Request[*gcmodel.Local], *cimp.Response[*gcmodel.Local]:
		id := b.node(c)
		return flow{firsts: []int{id}, exits: []int{id}}
	case *cimp.Seq[*gcmodel.Local]:
		fa, fb := b.build(n.A), b.build(n.B)
		b.edge(fa.exits, fb.firsts)
		f := flow{firsts: fa.firsts, exits: fb.exits, nullable: fa.nullable && fb.nullable}
		if fa.nullable {
			f.firsts = union(f.firsts, fb.firsts)
		}
		if fb.nullable {
			f.exits = union(f.exits, fa.exits)
		}
		return f
	case *cimp.Cond[*gcmodel.Local]:
		ft, fe := b.build(n.Then), b.build(n.Else)
		return flow{
			firsts:   union(ft.firsts, fe.firsts),
			exits:    union(ft.exits, fe.exits),
			nullable: ft.nullable || fe.nullable,
		}
	case *cimp.While[*gcmodel.Local]:
		fb := b.build(n.Body)
		b.edge(fb.exits, fb.firsts)
		return flow{firsts: fb.firsts, exits: fb.exits, nullable: true}
	case *cimp.Loop[*gcmodel.Local]:
		fb := b.build(n.Body)
		b.edge(fb.exits, fb.firsts)
		if fb.nullable && b.err == nil {
			b.err = fmt.Errorf("analysis: loop body with an action-free path")
		}
		return flow{firsts: fb.firsts}
	case *cimp.Choose[*gcmodel.Local]:
		var f flow
		for _, alt := range n.Alts {
			fa := b.build(alt)
			f.firsts = union(f.firsts, fa.firsts)
			f.exits = union(f.exits, fa.exits)
			f.nullable = f.nullable || fa.nullable
		}
		return f
	default:
		if b.err == nil {
			b.err = fmt.Errorf("analysis: unknown command type %T", c)
		}
		return flow{}
	}
}

func union(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// ByLabel returns the node with the given label, or -1.
func (g *CFG) ByLabel(label string) int {
	for i, n := range g.Nodes {
		if n.Label == label {
			return i
		}
	}
	return -1
}

// bufferedWrite reports whether node n enqueues a TSO store.
func (g *CFG) bufferedWrite(n int) bool {
	r := g.Nodes[n].Req
	return r != nil && g.kinds[r.Kind].Buffered && !g.cfg.SCMemory
}

// flushes reports whether node n drains the requester's buffer (its
// kind completes only with an empty buffer).
func (g *CFG) flushes(n int) bool {
	r := g.Nodes[n].Req
	return r != nil && g.kinds[r.Kind].FlushGuard
}

// LockState is the lock-held lattice: bottom (unreached), definitely
// free, definitely held, or maybe (both reachable).
type LockState uint8

const (
	LockBottom LockState = iota
	LockFree
	LockHeld
	LockMaybe
)

func (a LockState) join(b LockState) LockState {
	switch {
	case a == LockBottom:
		return b
	case b == LockBottom || a == b:
		return a
	default:
		return LockMaybe
	}
}

func (a LockState) String() string {
	switch a {
	case LockFree:
		return "free"
	case LockHeld:
		return "held"
	case LockMaybe:
		return "maybe"
	}
	return "bottom"
}

// LockHeldAt computes, for every node, whether this process holds the
// TSO lock when the node executes (at node entry). Forward dataflow:
// an RLock node exits held, an RUnlock node exits free, everything
// else is transparent; the program starts free.
func (g *CFG) LockHeldAt() []LockState {
	in := make([]LockState, len(g.Nodes))
	out := make([]LockState, len(g.Nodes))
	transfer := func(n int, s LockState) LockState {
		if r := g.Nodes[n].Req; r != nil {
			if g.kinds[r.Kind].AcquiresLock {
				return LockHeld
			}
			if g.kinds[r.Kind].ReleasesLock {
				return LockFree
			}
		}
		return s
	}
	work := append([]int(nil), g.Entry...)
	isEntry := make([]bool, len(g.Nodes))
	for _, e := range g.Entry {
		isEntry[e] = true
	}
	inWork := make([]bool, len(g.Nodes))
	for _, n := range work {
		inWork[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n] = false
		s := LockBottom
		if isEntry[n] {
			s = LockFree
		}
		for _, p := range g.preds[n] {
			s = s.join(out[p])
		}
		in[n] = s
		ns := transfer(n, s)
		if ns != out[n] {
			out[n] = ns
			for _, v := range g.Succ[n] {
				if !inWork[v] {
					inWork[v] = true
					work = append(work, v)
				}
			}
		}
	}
	return in
}

// BitSet is a fixed-capacity bitset over CFG node IDs.
type BitSet []uint64

func newBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

func (s BitSet) set(i int)      { s[i/64] |= 1 << uint(i%64) }
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }
func (s BitSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s BitSet) or(o BitSet) {
	for i, w := range o {
		s[i] |= w
	}
}

func (s BitSet) equal(o BitSet) bool {
	for i, w := range o {
		if s[i] != w {
			return false
		}
	}
	return true
}

func (s BitSet) clone() BitSet { return append(BitSet(nil), s...) }

// Members lists the set bits in order.
func (s BitSet) Members() []int {
	var out []int
	for i := 0; i < len(s)*64; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// PendingAt computes the may-pending buffered-store analysis: for
// every node, the set of buffered-write nodes some execution can have
// enqueued, without an intervening flush, when the node executes (at
// node entry). disabled marks flush nodes to be treated as
// non-flushing, for fence-coverage queries; pass nil for the real
// program.
func (g *CFG) PendingAt(disabled map[int]bool) []BitSet {
	in := make([]BitSet, len(g.Nodes))
	out := make([]BitSet, len(g.Nodes))
	for i := range g.Nodes {
		in[i] = newBitSet(len(g.Nodes))
		out[i] = newBitSet(len(g.Nodes))
	}
	// Seed with every node: the bottom element (empty set) is also a
	// common fixpoint value, so entry-only seeding would stall before
	// reaching the first store.
	work := make([]int, len(g.Nodes))
	inWork := make([]bool, len(g.Nodes))
	for n := range work {
		work[n] = n
		inWork[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n] = false
		s := newBitSet(len(g.Nodes))
		for _, p := range g.preds[n] {
			s.or(out[p])
		}
		in[n] = s
		// The transfer is monotone in the in-state (a flush node's out
		// does not depend on it at all), so compare-and-assign reaches
		// the fixpoint.
		ns := s.clone()
		if g.flushes(n) && !disabled[n] {
			ns = newBitSet(len(g.Nodes))
		}
		if g.bufferedWrite(n) {
			ns.set(n)
		}
		if !ns.equal(out[n]) {
			out[n] = ns
			for _, v := range g.Succ[n] {
				if !inWork[v] {
					inWork[v] = true
					work = append(work, v)
				}
			}
		}
	}
	return in
}

// reachAvoiding reports whether some path of length ≥ 1 from node
// `from` reaches node `to` without passing through an intermediate
// node satisfying avoid. (`to` itself is not tested against avoid.)
func (g *CFG) reachAvoiding(from, to int, avoid func(int) bool) bool {
	visited := make([]bool, len(g.Nodes))
	stack := append([]int(nil), g.Succ[from]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if visited[n] || avoid(n) {
			continue
		}
		visited[n] = true
		stack = append(stack, g.Succ[n]...)
	}
	return false
}

// EveryPathPasses reports whether every control path from node `from`
// to node `to` passes through an intermediate node satisfying via.
func (g *CFG) EveryPathPasses(from, to int, via func(int) bool) bool {
	return !g.reachAvoiding(from, to, via)
}
