package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/gcmodel"
	"repro/internal/litmus"
	"repro/internal/tso"
)

// TestReqKindExhaustive checks that every request kind has a String
// case, a declared effect, and a declared responder label — so a kind
// added to gcmodel without updating the declarations fails here.
func TestReqKindExhaustive(t *testing.T) {
	effects := analysis.KindEffects()
	resp := analysis.RespLabels()
	for k := 0; k < gcmodel.NumReqKinds; k++ {
		kind := gcmodel.ReqKind(k)
		if strings.HasPrefix(kind.String(), "ReqKind(") {
			t.Errorf("kind %d has no String case", k)
		}
		if effects[k] == (analysis.KindEffect{}) {
			t.Errorf("kind %v has no declared effect", kind)
		}
		if resp[k] == "" {
			t.Errorf("kind %v has no declared responder label", kind)
		}
	}
	if s := gcmodel.ReqKind(gcmodel.NumReqKinds).String(); !strings.HasPrefix(s, "ReqKind(") {
		t.Errorf("NumReqKinds is not past the last kind: ReqKind(NumReqKinds) = %q", s)
	}
}

// TestLitmusRobustness checks the static Shasha–Snir verdict for every
// litmus program in the catalogue against (a) the recorded expected
// verdict and (b) the dynamic ground truth: a program is robust iff its
// TSO and SC terminal outcome sets coincide. Soundness means every
// dynamically non-robust program must be flagged; this catalogue also
// has no false positives.
func TestLitmusRobustness(t *testing.T) {
	staticNonRobust := map[string]bool{
		"SB":                 true,
		"R":                  true,
		"n6":                 true,
		"SB+mfence-one-side": true,
	}
	for _, tc := range litmus.All() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			rep := analysis.AnalyzeTSOProgram(tc.Prog)
			wantNonRobust := staticNonRobust[tc.Name]
			if rep.Robust == wantNonRobust {
				t.Errorf("static robust=%v, want %v (critical: %v)",
					rep.Robust, !wantNonRobust, rep.Critical)
			}
			if !rep.Robust && len(rep.Critical) == 0 {
				t.Error("non-robust verdict with no critical pair")
			}

			tsoOut := tso.Explore(tc.Prog, tso.TSO)
			scOut := tso.Explore(tc.Prog, tso.SC)
			dynRobust := outcomesEqual(tsoOut, scOut)
			if !dynRobust && rep.Robust {
				t.Errorf("UNSOUND: TSO/SC outcome sets differ but static analysis says robust")
			}
			if dynRobust != rep.Robust {
				t.Logf("conservative: static non-robust, outcome sets equal")
			}
			if dynRobust == wantNonRobust {
				t.Errorf("recorded expectation stale: dynamic robust=%v", dynRobust)
			}
		})
	}
}

func outcomesEqual(a, b map[string]tso.Outcome) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// TestLintCleanPresets checks that no shipped (un-ablated) preset
// triggers any placement rule.
func TestLintCleanPresets(t *testing.T) {
	presets := map[string]gcmodel.Config{
		"tiny":              core.TinyConfig(),
		"alloc":             core.AllocConfig(),
		"two-mutator":       core.TwoMutatorConfig(),
		"two-sym":           core.SymmetricConfig(),
		"two-mutator-loads": core.TwoMutatorLoadsConfig(),
		"chain":             core.ChainConfig(),
	}
	// Variants that are deliberately clean statically: round 4 elision
	// is verified safe dynamically (E12) and the ladder rule exempts
	// it; SCMemory strengthens the model.
	hs4 := core.TinyConfig()
	hs4.ElideHS4 = true
	presets["tiny+elide-hs4"] = hs4
	sc := core.TinyConfig()
	sc.SCMemory = true
	presets["tiny+sc"] = sc

	for name, cfg := range presets {
		rep, err := analysis.LintModel(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Clean() {
			t.Errorf("%s: unexpected findings: %v", name, rep.Findings)
		}
		if name == "tiny" {
			if len(rep.Relaxed) == 0 {
				t.Error("tiny: expected informational relaxed store→load pairs")
			}
			if len(rep.FenceCoverage) == 0 {
				t.Error("tiny: expected at least one fence with positive coverage")
			}
		}
	}
}

// TestLintAblations checks that every barrier/lock/fence/round ablation
// is flagged by exactly the rule that exists to catch it.
func TestLintAblations(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*gcmodel.Config)
		rules []string // expected distinct rules, in any order
	}{
		{"no-deletion-barrier", func(c *gcmodel.Config) { c.NoDeletionBarrier = true },
			[]string{"deletion-barrier"}},
		{"no-insertion-barrier", func(c *gcmodel.Config) { c.NoInsertionBarrier = true },
			[]string{"insertion-barrier"}},
		{"insertion-gate", func(c *gcmodel.Config) { c.InsertionBarrierOnlyBeforeRootsDone = true },
			[]string{"insertion-barrier"}},
		{"unlocked-mark", func(c *gcmodel.Config) { c.UnlockedMark = true },
			[]string{"mark-cas"}},
		{"no-hs-fence", func(c *gcmodel.Config) { c.NoHSFence = true },
			[]string{"handshake-fence"}},
		{"elide-hs1", func(c *gcmodel.Config) { c.ElideHS1 = true },
			[]string{"phase-ladder"}},
		{"elide-hs2", func(c *gcmodel.Config) { c.ElideHS2 = true },
			[]string{"phase-ladder"}},
		{"elide-hs3", func(c *gcmodel.Config) { c.ElideHS3 = true },
			[]string{"phase-ladder"}},
		{"no-barriers-at-all", func(c *gcmodel.Config) {
			c.NoDeletionBarrier = true
			c.NoInsertionBarrier = true
		}, []string{"deletion-barrier", "insertion-barrier"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.TinyConfig()
			tc.mut(&cfg)
			rep, err := analysis.LintModel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]bool)
			for _, f := range rep.Findings {
				got[f.Rule] = true
			}
			want := make(map[string]bool)
			for _, r := range tc.rules {
				want[r] = true
			}
			for r := range want {
				if !got[r] {
					t.Errorf("rule %s did not fire; findings: %v", r, rep.Findings)
				}
			}
			for r := range got {
				if !want[r] {
					t.Errorf("unexpected rule %s fired; findings: %v", r, rep.Findings)
				}
			}
		})
	}
}

// TestFootprintExtraction spot-checks the extracted site table against
// the label conventions the analyses anchor on.
func TestFootprintExtraction(t *testing.T) {
	cfg := core.TinyConfig()
	fp, err := analysis.NewFootprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		label string
		kind  gcmodel.ReqKind
		cls   analysis.LocClass
	}{
		{"mut0_store_write", gcmodel.RWrite, analysis.ClassField},
		{"mut0_store_load_old", gcmodel.RRead, analysis.ClassField},
		{"mut0_delbar_cas_store", gcmodel.RWrite, analysis.ClassMark},
		{"mut0_delbar_lock", gcmodel.RLock, 0},
		{"mut0_hs_done", gcmodel.RHsDone, 0},
		{"gc_write_fM", gcmodel.RWrite, analysis.ClassFM},
		{"gc_write_fA", gcmodel.RWrite, analysis.ClassFA},
		{"gc_write_phase_mark", gcmodel.RWrite, analysis.ClassPhase},
		{"gc_load_fld", gcmodel.RRead, analysis.ClassField},
		{"gc_free", gcmodel.RFree, analysis.ClassMark},
		{"gc_hs_roots_wait_all", gcmodel.RHsWaitAll, 0},
	}
	for _, c := range checks {
		s, ok := fp.Sites[c.label]
		if !ok {
			t.Errorf("site %q not extracted", c.label)
			continue
		}
		if s.Kind != c.kind || s.Loc != c.cls {
			t.Errorf("site %q = kind %v class %v, want %v/%v", c.label, s.Kind, s.Loc, c.kind, c.cls)
		}
	}
	if pid, ok := fp.Locals["sys-dequeue-write-buffer"]; !ok || pid != 2 {
		t.Errorf("dequeue τ label: pid=%d ok=%v, want system PID 2", pid, ok)
	}
	// Writers: the collector is the sole writer of every control word;
	// heap classes are multi-writer (mutator stores/CAS plus the
	// collector's CAS and free).
	gcBit := uint64(1) << uint(gcmodel.GCPID)
	for _, cls := range []analysis.LocClass{analysis.ClassFA, analysis.ClassFM, analysis.ClassPhase} {
		if w := fp.WritersOf(cls); w != gcBit {
			t.Errorf("writers(%v) = %b, want collector only", cls, w)
		}
	}
	for _, cls := range []analysis.LocClass{analysis.ClassMark, analysis.ClassField} {
		if w := fp.WritersOf(cls); w == gcBit || w == 0 {
			t.Errorf("writers(%v) = %b, want multiple writers", cls, w)
		}
	}
}

// TestDeriveSafeInitial diffs the derived POR classification against
// the handwritten one on the initial state of every preset (the full
// reachable-state diff runs during validated exploration; see
// validate_test.go).
func TestDeriveSafeInitial(t *testing.T) {
	for name, cfg := range map[string]gcmodel.Config{
		"tiny":        core.TinyConfig(),
		"two-mutator": core.TwoMutatorConfig(),
		"chain":       core.ChainConfig(),
	} {
		m, err := gcmodel.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, err := analysis.NewValidator(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.CheckPOR(m.Initial()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
