package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/heap"
)

// This file implements the model-level lint rules. A naive whole-program
// robustness check is useless for the GC model: the collector is
// deliberately non-robust (tolerating relaxed behavior is the paper's
// point), so every configuration has critical cycles. Pass/fail instead
// comes from named placement rules that encode the paper's protocol
// obligations — each one flags exactly the ablation that removes it:
//
//	deletion-barrier   every store path marks the overwritten reference
//	                   (flags NoDeletionBarrier)
//	insertion-barrier  every store path marks the stored reference
//	                   (flags NoInsertionBarrier and the §4 gated variant)
//	mark-cas           mark-flag stores happen under the TSO lock
//	                   (flags UnlockedMark)
//	handshake-fence    buffers are empty at handshake signal/completion
//	                   (flags NoHSFence)
//	phase-ladder       a full handshake round separates consecutive
//	                   phase-protocol writes (flags ElideHS1–3; ElideHS4
//	                   is exempt by design, matching experiment E12)
//
// Whole-program relaxed store→load pairs and per-fence coverage are
// reported informationally (ModelReport.Relaxed / FenceCoverage).
//
// Out of scope statically: AllocWhite (a value-level ablation — the
// allocation color is data, not placement), SCMemory (strengthens the
// model), and the liveness ablations MuteHandshake/NoDequeue (package
// liveness finds those dynamically).

// Finding is one rule violation.
type Finding struct {
	Rule   string
	PID    cimp.PID
	Label  string // anchoring site label
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: p%d at %q: %s", f.Rule, f.PID, f.Label, f.Detail)
}

// ModelPair is an informational relaxed store→load site pair: the store
// can still be buffered when the load executes, and the two may target
// different addresses.
type ModelPair struct {
	PID         cimp.PID
	Store, Load string
}

// FenceCover reports how many relaxed pairs a fence site suppresses:
// the number of additional pairs that appear if it stops flushing.
type FenceCover struct {
	PID    cimp.PID
	Label  string
	Covers int
}

// ModelReport is the static lint result for one model configuration.
type ModelReport struct {
	Cfg      gcmodel.Config
	Findings []Finding
	// Relaxed and FenceCoverage are informational (see file comment).
	Relaxed       []ModelPair
	FenceCoverage []FenceCover
}

// Clean reports whether no rule fired.
func (r *ModelReport) Clean() bool { return len(r.Findings) == 0 }

// markBegin describes a probed mark-operation entry node: whether the
// mark is a deletion barrier and which register it marks.
type markBegin struct {
	node      int
	del       bool
	targetOld bool // marks the overwritten value (TmpRef)
	targetNew bool // marks the stored value (SDst)
}

// Sentinel references planted in the probe state so the probed mark
// entry reveals which register its target closure reads. Distinct and
// within the reference universe bound; never dereferenced.
const (
	sentOld heap.Ref = 62 // TmpRef: the overwritten value
	sentNew heap.Ref = 61 // SDst: the stored value
)

// probeMarkBegins runs every LocalOp node of g against a sentinel-laden
// probe state and collects the mark-operation entry nodes (the ghost
// InMark bit identifies them; cf. mark.go's _begin steps).
func probeMarkBegins(g *CFG, nmut int) []markBegin {
	var out []markBegin
	for id, n := range g.Nodes {
		op, ok := n.Com.(*cimp.LocalOp[*gcmodel.Local])
		if !ok {
			continue
		}
		probe := probeLocal(g.PID, nmut)
		if probe.Mut != nil {
			probe.Mut.TmpRef, probe.Mut.SDst = sentOld, sentNew
		} else if probe.GC != nil {
			probe.GC.TmpRef = sentOld
		}
		res := runOpSafely(op, probe)
		if len(res) != 1 {
			continue
		}
		r := res[0]
		var in, del bool
		var target heap.Ref
		switch {
		case r.Mut != nil:
			in, del, target = r.Mut.InMark, r.Mut.InMarkDel, r.Mut.MRef
		case r.GC != nil:
			in, del, target = r.GC.InMark, false, r.GC.MRef
		}
		if !in {
			continue
		}
		out = append(out, markBegin{
			node:      id,
			del:       del,
			targetOld: target == sentOld,
			targetNew: target == sentNew,
		})
	}
	return out
}

func runOpSafely(op *cimp.LocalOp[*gcmodel.Local], probe *gcmodel.Local) (res []*gcmodel.Local) {
	defer func() {
		if recover() != nil {
			res = nil
		}
	}()
	return op.F(probe)
}

// LintModel statically lints a model configuration: it extracts the
// footprint, builds the collector and mutator CFGs, and evaluates the
// placement rules. It never builds or explores the model.
func LintModel(cfg gcmodel.Config) (*ModelReport, error) {
	fp, err := NewFootprint(cfg)
	if err != nil {
		return nil, err
	}
	return LintFootprint(fp)
}

// LintFootprint is LintModel over an already-extracted footprint.
func LintFootprint(fp *Footprint) (*ModelReport, error) {
	rep := &ModelReport{Cfg: fp.Cfg}
	nmut := fp.Cfg.NMutators

	gcCFG, err := buildCFG(gcmodel.GCPID, fp.gcRoot, &fp.Cfg, probeLocal(gcmodel.GCPID, nmut))
	if err != nil {
		return nil, err
	}
	var mutCFGs []*CFG
	for i, root := range fp.mutRoots {
		pid := gcmodel.MutPID(i)
		g, err := buildCFG(pid, root, &fp.Cfg, probeLocal(pid, nmut))
		if err != nil {
			return nil, err
		}
		mutCFGs = append(mutCFGs, g)
	}

	for _, g := range mutCFGs {
		rep.lintBarriers(g, nmut)
	}
	for _, g := range append([]*CFG{gcCFG}, mutCFGs...) {
		rep.lintMarkCas(g)
		rep.lintHandshakeFences(g)
		rep.collectRelaxed(g)
	}
	if err := rep.lintPhaseLadder(gcCFG); err != nil {
		return nil, err
	}
	return rep, nil
}

// lintBarriers checks the deletion- and insertion-barrier placement on
// one mutator: every control path from the store's old-value load to a
// heap field write must pass a deletion-mark entry targeting the
// overwritten value, and an (unconditional) insertion-mark entry
// targeting the stored value.
func (rep *ModelReport) lintBarriers(g *CFG, nmut int) {
	loadOld := -1
	for id, n := range g.Nodes {
		if strings.HasSuffix(n.Label, "_store_load_old") {
			loadOld = id
			break
		}
	}
	if loadOld < 0 {
		return // store operation disabled: nothing to place barriers on
	}
	begins := probeMarkBegins(g, nmut)
	inSet := func(pred func(markBegin) bool) func(int) bool {
		set := make(map[int]bool)
		for _, b := range begins {
			if pred(b) {
				set[b.node] = true
			}
		}
		return func(n int) bool { return set[n] }
	}
	isDel := inSet(func(b markBegin) bool { return b.del && b.targetOld })
	isIns := inSet(func(b markBegin) bool { return !b.del && b.targetNew })

	for id, n := range g.Nodes {
		if n.Req == nil || n.Req.Kind != gcmodel.RWrite || ClassOf(n.Req.Loc.Kind) != ClassField {
			continue
		}
		if !g.EveryPathPasses(loadOld, id, isDel) {
			rep.add(Finding{Rule: "deletion-barrier", PID: g.PID, Label: n.Label,
				Detail: "a store path reaches the heap write without a deletion mark of the overwritten reference"})
		}
		if !g.EveryPathPasses(loadOld, id, isIns) {
			rep.add(Finding{Rule: "insertion-barrier", PID: g.PID, Label: n.Label,
				Detail: "a store path reaches the heap write without an insertion mark of the stored reference"})
		}
	}
}

// lintMarkCas checks that every mark-flag store executes with the TSO
// lock definitely held (the CAS of Figure 5).
func (rep *ModelReport) lintMarkCas(g *CFG) {
	lock := g.LockHeldAt()
	for id, n := range g.Nodes {
		if n.Req == nil || n.Req.Kind != gcmodel.RWrite || ClassOf(n.Req.Loc.Kind) != ClassMark {
			continue
		}
		if lock[id] != LockHeld {
			rep.add(Finding{Rule: "mark-cas", PID: g.PID, Label: n.Label,
				Detail: fmt.Sprintf("mark-flag store with lock state %v: the CAS is not atomic", lock[id])})
		}
	}
}

// lintHandshakeFences checks that the requester's store buffer is
// provably empty at every handshake signal (collector) and handshake
// completion (mutator): otherwise a handshake can complete while
// control or barrier stores are still in flight.
func (rep *ModelReport) lintHandshakeFences(g *CFG) {
	pend := g.PendingAt(nil)
	for id, n := range g.Nodes {
		if n.Req == nil {
			continue
		}
		if n.Req.Kind != gcmodel.RHsSignal && n.Req.Kind != gcmodel.RHsDone {
			continue
		}
		if pend[id].Empty() {
			continue
		}
		var labels []string
		for _, w := range pend[id].Members() {
			labels = append(labels, g.Nodes[w].Label)
		}
		rep.add(Finding{Rule: "handshake-fence", PID: g.PID, Label: n.Label,
			Detail: fmt.Sprintf("stores may still be buffered: %s", strings.Join(labels, ", "))})
	}
}

// lintPhaseLadder checks the collector's phase protocol: each
// consecutive pair of control writes in the ladder
//
//	phase←Idle  →  f_M flip  →  phase←Init  →  phase←Mark
//
// must be separated by a completed handshake round (an RHsWaitAll) on
// every control path. The Mark→Sweep and Sweep→Idle steps need no
// round (the paper's protocol has none there; elision of round 4 is
// verified safe dynamically, experiment E12).
func (rep *ModelReport) lintPhaseLadder(g *CFG) error {
	phaseWrite := func(ph gcmodel.Phase) int {
		for id, n := range g.Nodes {
			if n.Req != nil && n.Req.Kind == gcmodel.RWrite &&
				ClassOf(n.Req.Loc.Kind) == ClassPhase && n.Req.Val == gcmodel.PhaseVal(ph) {
				return id
			}
		}
		return -1
	}
	classWrite := func(cls LocClass) int {
		for id, n := range g.Nodes {
			if n.Req != nil && n.Req.Kind == gcmodel.RWrite && ClassOf(n.Req.Loc.Kind) == cls {
				return id
			}
		}
		return -1
	}
	isWaitAll := func(n int) bool {
		r := g.Nodes[n].Req
		return r != nil && r.Kind == gcmodel.RHsWaitAll
	}

	idleW, fmW, initW, markW := phaseWrite(gcmodel.PhIdle), classWrite(ClassFM),
		phaseWrite(gcmodel.PhInit), phaseWrite(gcmodel.PhMark)
	for name, id := range map[string]int{
		"phase←Idle": idleW, "f_M": fmW, "phase←Init": initW, "phase←Mark": markW,
	} {
		if id < 0 {
			return fmt.Errorf("analysis: collector has no %s write", name)
		}
	}
	for _, step := range []struct {
		from, to int
		desc     string
	}{
		{idleW, fmW, "phase←Idle and the f_M flip (round 1)"},
		{fmW, initW, "the f_M flip and phase←Init (round 2)"},
		{initW, markW, "phase←Init and phase←Mark (round 3)"},
	} {
		if !g.EveryPathPasses(step.from, step.to, isWaitAll) {
			rep.add(Finding{Rule: "phase-ladder", PID: g.PID, Label: g.Nodes[step.to].Label,
				Detail: fmt.Sprintf("no completed handshake round separates %s", step.desc)})
		}
	}
	return nil
}

// collectRelaxed records the informational relaxed store→load pairs of
// one process and the per-fence coverage counts.
func (rep *ModelReport) collectRelaxed(g *CFG) {
	pairs := func(pend []BitSet) []ModelPair {
		var out []ModelPair
		for id, n := range g.Nodes {
			if n.Req == nil || n.Req.Kind != gcmodel.RRead {
				continue
			}
			rc := ClassOf(n.Req.Loc.Kind)
			for _, w := range pend[id].Members() {
				wc := ClassOf(g.Nodes[w].Req.Loc.Kind)
				if wc == rc && wc.SingleAddress() {
					continue // same single address: forwarded, ordered
				}
				out = append(out, ModelPair{PID: g.PID, Store: g.Nodes[w].Label, Load: n.Label})
			}
		}
		return out
	}
	base := pairs(g.PendingAt(nil))
	rep.Relaxed = append(rep.Relaxed, base...)

	for id, n := range g.Nodes {
		if n.Req == nil || n.Req.Kind != gcmodel.RMFence {
			continue
		}
		without := pairs(g.PendingAt(map[int]bool{id: true}))
		if d := len(without) - len(base); d > 0 {
			rep.FenceCoverage = append(rep.FenceCoverage, FenceCover{PID: g.PID, Label: n.Label, Covers: d})
		}
	}
	sort.Slice(rep.FenceCoverage, func(i, j int) bool {
		a, b := rep.FenceCoverage[i], rep.FenceCoverage[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.Label < b.Label
	})
}

func (rep *ModelReport) add(f Finding) { rep.Findings = append(rep.Findings, f) }
