package analysis_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gcmodel"
)

// TestValidatedExploreCapped runs bounded validated explorations over
// several presets: every taken transition is checked against the
// declared effect footprint and the derived POR classification is
// diffed against the handwritten one at every visited state.
func TestValidatedExploreCapped(t *testing.T) {
	for name, cfg := range map[string]gcmodel.Config{
		"tiny":              core.TinyConfig(),
		"alloc":             core.AllocConfig(),
		"two-mutator":       core.TwoMutatorConfig(),
		"two-mutator-loads": core.TwoMutatorLoadsConfig(),
		"chain":             core.ChainConfig(),
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			res, err := core.Verify(cfg, core.VerifyOptions{
				MaxStates:       20_000,
				ValidateEffects: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Capped runs: NoViolation, not Holds — these explorations
			// are deliberately bounded.
			if !res.NoViolation() {
				t.Fatalf("violation:\n%s", res.RenderViolation())
			}
			ev, st := res.Effects.Stats()
			if ev == 0 || st == 0 {
				t.Fatalf("validator ran on %d events, %d states", ev, st)
			}
			t.Logf("validated %d events, %d states", ev, st)
		})
	}
}

// TestValidatedExploreReduced exercises the validator together with the
// partial-order reduction and symmetry: the POR diff must hold on the
// reduced visited set too.
func TestValidatedExploreReduced(t *testing.T) {
	res, err := core.Verify(core.SymmetricConfig(), core.VerifyOptions{
		MaxStates:       20_000,
		Reduce:          true,
		Symmetry:        true,
		ValidateEffects: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoViolation() {
		t.Fatalf("violation:\n%s", res.RenderViolation())
	}
}

// TestValidatedExploreFullTiny exhausts the default tiny configuration
// with effect validation on and checks the verdict and state counts are
// identical to the unvalidated baseline: the validator observed every
// transition and every state of the canonical run without disturbing
// it.
func TestValidatedExploreFullTiny(t *testing.T) {
	if raceEnabled {
		t.Skip("full exploration skipped under -race")
	}
	if testing.Short() {
		t.Skip("model checking is slow")
	}
	base, err := core.Verify(core.TinyConfig(), core.VerifyOptions{MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	val, err := core.Verify(core.TinyConfig(), core.VerifyOptions{
		MaxStates:       3_000_000,
		ValidateEffects: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !val.Holds() {
		t.Fatalf("violation:\n%s", val.RenderViolation())
	}
	if !base.Complete || !val.Complete {
		t.Fatal("state space not exhausted within cap")
	}
	if base.States != val.States || base.Transitions != val.Transitions ||
		base.Depth != val.Depth || base.Deadlocks != val.Deadlocks {
		t.Fatalf("validated run diverged: states %d/%d transitions %d/%d depth %d/%d deadlocks %d/%d",
			base.States, val.States, base.Transitions, val.Transitions,
			base.Depth, val.Depth, base.Deadlocks, val.Deadlocks)
	}
	ev, st := val.Effects.Stats()
	if int(ev) != val.Transitions {
		t.Errorf("validator saw %d events, run took %d transitions", ev, val.Transitions)
	}
	if int(st) != val.States {
		t.Errorf("validator saw %d states, run visited %d", st, val.States)
	}
	t.Logf("states=%d transitions=%d depth=%d — all transitions and states validated",
		val.States, val.Transitions, val.Depth)
}
