package analysis

import (
	"fmt"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/heap"
)

// Site is the declared footprint of one labeled Request site: which
// process issues it, which kind it is, and which location class its
// request targets (0 for kinds without a location). The class is
// extracted by probing the site's Act closure once against a synthetic
// local state; the label conventions of gcmodel fix each site's kind
// and class statically, and the Validator enforces at every taken
// transition that runtime behavior stays inside the extraction.
type Site struct {
	Label string
	PID   cimp.PID
	Kind  gcmodel.ReqKind
	Loc   LocClass
}

// Footprint is the whole-model effect declaration: the per-site table,
// the internal (τ) step labels, the per-kind effect and response-label
// tables, and the derived writers-per-class sets. It is a pure function
// of the Config — building it does not build or explore the model.
type Footprint struct {
	Cfg gcmodel.Config
	// Sites maps every Request label of the collector and the mutators
	// to its declared footprint.
	Sites map[string]Site
	// Locals maps every LocalOp label (of any process, including the
	// system's dequeue) to the PID it belongs to. Fuse-marked register
	// steps are included although they never appear as events.
	Locals map[string]cimp.PID
	// Kinds and Resp are the declared per-kind tables (effects.go).
	Kinds [gcmodel.NumReqKinds]KindEffect
	Resp  [gcmodel.NumReqKinds]string

	// writers[i] is the PID bitmask of processes with a declared write
	// to class bit 1<<i, derived from the extracted sites.
	writers [numClasses]uint64

	// Program roots, kept for CFG construction (rules.go).
	gcRoot   cimp.Com[*gcmodel.Local]
	mutRoots []cimp.Com[*gcmodel.Local]
	sysRoot  cimp.Com[*gcmodel.Local]
}

// probeLocal builds a synthetic local state for PID p suitable for
// evaluating Act closures and register-only LocalOps: all reference
// registers NilRef, all sets empty. Closures read registers to compute
// locations and values; none of them dereference the (absent) heap.
func probeLocal(p cimp.PID, nmut int) *gcmodel.Local {
	switch {
	case p == gcmodel.GCPID:
		return &gcmodel.Local{Self: p, GC: &gcmodel.GCLocal{
			MRef: heap.NilRef, Src: heap.NilRef, TmpRef: heap.NilRef,
			SwRef: heap.NilRef, GHG: heap.NilRef,
		}}
	case int(p) <= nmut:
		return &gcmodel.Local{Self: p, Mut: &gcmodel.MutLocal{
			MRef: heap.NilRef, SSrc: heap.NilRef, SDst: heap.NilRef,
			TmpRef: heap.NilRef, GHG: heap.NilRef,
		}}
	default:
		return &gcmodel.Local{Self: p, Sys: &gcmodel.SysLocal{}}
	}
}

// probeAct evaluates a Request site's Act closure against a synthetic
// local state, recovering the request kind and location the site is
// declared to issue.
func probeAct(r *cimp.Request[*gcmodel.Local], probe *gcmodel.Local) (req gcmodel.Req, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("analysis: probing %q panicked: %v", r.L, p)
		}
	}()
	msg := r.Act(probe)
	req, ok := msg.(gcmodel.Req)
	if !ok {
		return req, fmt.Errorf("analysis: request %q sends %T, not gcmodel.Req", r.L, msg)
	}
	return req, nil
}

// NewFootprint extracts the declared effects of a model configuration.
func NewFootprint(cfg gcmodel.Config) (*Footprint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fp := &Footprint{
		Cfg:    cfg,
		Sites:  make(map[string]Site),
		Locals: make(map[string]cimp.PID),
		Kinds:  KindEffects(),
		Resp:   RespLabels(),
	}

	fp.gcRoot = cfg.GCProgram()
	for i := 0; i < cfg.NMutators; i++ {
		fp.mutRoots = append(fp.mutRoots, cfg.MutProgram(i))
	}
	fp.sysRoot = cfg.SysProgram()

	var err error
	scan := func(pid cimp.PID, root cimp.Com[*gcmodel.Local]) {
		probe := probeLocal(pid, cfg.NMutators)
		cimp.Walk(root, func(c cimp.Com[*gcmodel.Local]) {
			if err != nil {
				return
			}
			switch n := c.(type) {
			case *cimp.LocalOp[*gcmodel.Local]:
				if _, dup := fp.Locals[n.L]; dup {
					err = fmt.Errorf("analysis: duplicate internal label %q", n.L)
					return
				}
				fp.Locals[n.L] = pid
			case *cimp.Request[*gcmodel.Local]:
				if _, dup := fp.Sites[n.L]; dup {
					err = fmt.Errorf("analysis: duplicate request label %q", n.L)
					return
				}
				req, perr := probeAct(n, probe)
				if perr != nil {
					err = perr
					return
				}
				if int(req.Kind) < 0 || int(req.Kind) >= gcmodel.NumReqKinds {
					err = fmt.Errorf("analysis: request %q has unknown kind %d", n.L, int(req.Kind))
					return
				}
				s := Site{Label: n.L, PID: pid, Kind: req.Kind}
				if kindHasLoc(req.Kind) {
					s.Loc = ClassOf(req.Loc.Kind)
					if s.Loc == 0 {
						err = fmt.Errorf("analysis: request %q targets unknown location kind %d",
							n.L, int(req.Loc.Kind))
						return
					}
				}
				fp.Sites[n.L] = s
			}
		})
	}
	scan(gcmodel.GCPID, fp.gcRoot)
	for i, root := range fp.mutRoots {
		scan(gcmodel.MutPID(i), root)
	}
	if err != nil {
		return nil, err
	}

	// The system program: its LocalOps (the dequeue) join the τ table,
	// and its Response labels must be exactly the declared ones.
	sysPID := cimp.PID(cfg.NMutators + 1)
	responses := make(map[string]bool)
	cimp.Walk(fp.sysRoot, func(c cimp.Com[*gcmodel.Local]) {
		switch n := c.(type) {
		case *cimp.LocalOp[*gcmodel.Local]:
			fp.Locals[n.L] = sysPID
		case *cimp.Response[*gcmodel.Local]:
			responses[n.L] = true
		}
	})
	for k := 0; k < gcmodel.NumReqKinds; k++ {
		if !responses[fp.Resp[k]] {
			return nil, fmt.Errorf("analysis: system program has no response %q for kind %v",
				fp.Resp[k], gcmodel.ReqKind(k))
		}
		delete(responses, fp.Resp[k])
	}
	if len(responses) != 0 {
		for l := range responses {
			return nil, fmt.Errorf("analysis: undeclared system response %q", l)
		}
	}

	// Derive writers-per-class from the extracted sites: a site writes
	// its declared request class (RWrite) or its kind's declared direct
	// write classes (RAlloc, RFree).
	for _, s := range fp.Sites {
		var cls LocClass
		if s.Kind == gcmodel.RWrite {
			cls = s.Loc
		} else {
			cls = fp.Kinds[s.Kind].Writes
		}
		for i := 0; i < numClasses; i++ {
			if cls&(1<<i) != 0 {
				fp.writers[i] |= pidBit(s.PID)
			}
		}
	}
	return fp, nil
}

// WritersOf returns the PID bitmask of processes with a declared write
// to the (single-bit) class.
func (fp *Footprint) WritersOf(c LocClass) uint64 {
	for i := 0; i < numClasses; i++ {
		if c == 1<<i {
			return fp.writers[i]
		}
	}
	return 0
}

func pidBit(p cimp.PID) uint64 { return 1 << uint(p) }
