// Package golint is a small, dependency-free static pass over the
// repository's own Go source: it flags iteration over Go maps in any
// function reachable from the state fingerprinting entry points.
//
// The model checker's verdict determinism rests on fingerprints being
// byte-identical for equal states; Go map iteration order is
// deliberately randomized, so a `for range m` over a map anywhere in
// the fingerprint call graph is a determinism bug even when every run
// happens to produce the same verdict. The dynamic tests cannot catch
// it reliably (the order can coincide), which is exactly the case for a
// static check.
//
// The pass is a deliberately minimal go/analysis-style framework built
// on the standard library only (go/parser + go/types; no x/tools): it
// loads a package and its in-module dependencies from source, builds a
// conservative static call graph from the requested root functions
// (direct calls, method calls, and interface calls widened to every
// same-name concrete method in the loaded packages), and reports every
// range statement over a map-typed operand in the reachable set.
package golint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Func    string // the containing function, types.Func notation
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Func, d.Message)
}

// pkg is one loaded source package: syntax, types, and type info.
type pkg struct {
	files []*ast.File
	info  *types.Info
	tpkg  *types.Package
}

// loader parses and type-checks in-module packages from source,
// delegating everything else (the standard library) to the compiler's
// source importer. Loaded packages keep their syntax and type info so
// the call graph can span the whole module.
type loader struct {
	fset    *token.FileSet
	modRoot string // module directory
	modPath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*pkg // by import path
	loading map[string]bool
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*pkg),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over the module + stdlib split.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.tpkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one in-module package by import path.
func (l *loader) load(path string) (*pkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("golint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	if path == l.modPath {
		dir = l.modRoot
	}
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("golint: type-checking %s: %w", path, err)
	}
	p := &pkg{files: files, info: info, tpkg: tpkg}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of dir in sorted order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("golint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleOf walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func moduleOf(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("golint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("golint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module directory, so callers can address packages by repo-relative
// path regardless of their own working directory.
func ModuleRoot(dir string) (string, error) {
	root, _, err := moduleOf(dir)
	return root, err
}

// CheckDir loads the package in dir (resolving in-module imports from
// source) and reports every range-over-map in a function reachable from
// the functions or methods named in roots. A fixture directory outside
// any module is rejected only if it imports non-stdlib packages.
//
// Reachability runs over the exported Module call graph (module.go),
// which includes edges for every function reference — direct calls,
// method values, function values, go/defer targets — not just direct
// call expressions.
func CheckDir(dir string, roots []string) ([]Diagnostic, error) {
	mod, err := LoadPackages(dir)
	if err != nil {
		return nil, err
	}
	rootSet := make(map[string]bool, len(roots))
	for _, r := range roots {
		rootSet[r] = true
	}
	var work []*types.Func
	found := make(map[string]bool, len(roots))
	for _, f := range mod.Functions() {
		if rootSet[f.Fn.Name()] {
			work = append(work, f.Fn)
			found[f.Fn.Name()] = true
		}
	}
	// It is an error for a root to match no declared function: a renamed
	// entry point must fail the lint, not trivially pass it.
	for _, r := range roots {
		if !found[r] {
			return nil, fmt.Errorf("golint: root %q matches no function declaration", r)
		}
	}

	reached := mod.Reachable(work)

	// Report map ranges in reached bodies. Nested function literals
	// belong to the enclosing declaration: they run, at the latest, when
	// the enclosing function's value escapes.
	var out []Diagnostic
	for fn := range reached {
		f := mod.FunctionFor(fn)
		if f == nil {
			continue
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := f.Pkg.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				out = append(out, Diagnostic{
					Pos:     mod.Fset().Position(rs.Pos()),
					Func:    fn.FullName(),
					Message: fmt.Sprintf("iteration over map %s in fingerprint call graph: order is randomized", tv.Type),
				})
			}
			return true
		})
	}
	sortDiagnostics(out)
	return out, nil
}
