// Package golint is a small, dependency-free static pass over the
// repository's own Go source: it flags iteration over Go maps in any
// function reachable from the state fingerprinting entry points.
//
// The model checker's verdict determinism rests on fingerprints being
// byte-identical for equal states; Go map iteration order is
// deliberately randomized, so a `for range m` over a map anywhere in
// the fingerprint call graph is a determinism bug even when every run
// happens to produce the same verdict. The dynamic tests cannot catch
// it reliably (the order can coincide), which is exactly the case for a
// static check.
//
// The pass is a deliberately minimal go/analysis-style framework built
// on the standard library only (go/parser + go/types; no x/tools): it
// loads a package and its in-module dependencies from source, builds a
// conservative static call graph from the requested root functions
// (direct calls, method calls, and interface calls widened to every
// same-name concrete method in the loaded packages), and reports every
// range statement over a map-typed operand in the reachable set.
package golint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Func    string // the containing function, types.Func notation
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Func, d.Message)
}

// pkg is one loaded source package: syntax, types, and type info.
type pkg struct {
	files []*ast.File
	info  *types.Info
	tpkg  *types.Package
}

// loader parses and type-checks in-module packages from source,
// delegating everything else (the standard library) to the compiler's
// source importer. Loaded packages keep their syntax and type info so
// the call graph can span the whole module.
type loader struct {
	fset    *token.FileSet
	modRoot string // module directory
	modPath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*pkg // by import path
	loading map[string]bool
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*pkg),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over the module + stdlib split.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.tpkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one in-module package by import path.
func (l *loader) load(path string) (*pkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("golint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	if path == l.modPath {
		dir = l.modRoot
	}
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("golint: type-checking %s: %w", path, err)
	}
	p := &pkg{files: files, info: info, tpkg: tpkg}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of dir in sorted order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("golint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleOf walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func moduleOf(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("golint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("golint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module directory, so callers can address packages by repo-relative
// path regardless of their own working directory.
func ModuleRoot(dir string) (string, error) {
	root, _, err := moduleOf(dir)
	return root, err
}

// CheckDir loads the package in dir (resolving in-module imports from
// source) and reports every range-over-map in a function reachable from
// the functions or methods named in roots. A fixture directory outside
// any module is rejected only if it imports non-stdlib packages.
func CheckDir(dir string, roots []string) ([]Diagnostic, error) {
	modRoot, modPath, err := moduleOf(dir)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	l := newLoader(modRoot, modPath)
	if _, err := l.load(path); err != nil {
		return nil, err
	}
	return l.analyze(roots)
}

// funcBody pairs a function object with its syntax (which may contain
// nested function literals — those run, at the latest, when the
// enclosing function's value escapes, so their calls and ranges are
// attributed to the enclosing declaration).
type funcBody struct {
	fn   *types.Func
	decl *ast.FuncDecl
	p    *pkg
}

// analyze builds the call graph over every loaded package and reports
// reachable map ranges. It is an error for a root to match no declared
// function: a renamed entry point must fail the lint, not trivially
// pass it.
func (l *loader) analyze(roots []string) ([]Diagnostic, error) {
	rootSet := make(map[string]bool, len(roots))
	for _, r := range roots {
		rootSet[r] = true
	}

	// Collect every function declaration with a body, keyed by object.
	bodies := make(map[*types.Func]funcBody)
	// Concrete methods by name, for interface-call widening.
	byName := make(map[string][]*types.Func)
	var work []*types.Func
	for _, p := range l.pkgs {
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				bodies[obj] = funcBody{fn: obj, decl: fd, p: p}
				if fd.Recv != nil {
					byName[obj.Name()] = append(byName[obj.Name()], obj)
				}
				if rootSet[obj.Name()] {
					work = append(work, obj)
				}
			}
		}
	}

	found := make(map[string]bool, len(work))
	for _, fn := range work {
		found[fn.Name()] = true
	}
	for _, r := range roots {
		if !found[r] {
			return nil, fmt.Errorf("golint: root %q matches no function declaration", r)
		}
	}

	// Reachability over static calls.
	reached := make(map[*types.Func]bool)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if reached[fn] {
			continue
		}
		reached[fn] = true
		fb, ok := bodies[fn]
		if !ok {
			continue // declared in a package we did not load (stdlib)
		}
		for _, callee := range l.callees(fb, byName) {
			if !reached[callee] {
				work = append(work, callee)
			}
		}
	}

	// Report map ranges in reached bodies.
	var out []Diagnostic
	for fn := range reached {
		fb, ok := bodies[fn]
		if !ok {
			continue
		}
		ast.Inspect(fb.decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := fb.p.info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				out = append(out, Diagnostic{
					Pos:     l.fset.Position(rs.Pos()),
					Func:    fn.FullName(),
					Message: fmt.Sprintf("iteration over map %s in fingerprint call graph: order is randomized", tv.Type),
				})
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out, nil
}

// callees lists the static callees of one function body: direct calls,
// method calls, and interface calls widened to every same-name concrete
// method among the loaded packages.
func (l *loader) callees(fb funcBody, byName map[string][]*types.Func) []*types.Func {
	var out []*types.Func
	ast.Inspect(fb.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := fb.p.info.Uses[fun].(*types.Func); ok {
				out = append(out, fn)
			}
		case *ast.SelectorExpr:
			sel, ok := fb.p.info.Selections[fun]
			if !ok {
				// Package-qualified call: pkg.F.
				if fn, ok := fb.p.info.Uses[fun.Sel].(*types.Func); ok {
					out = append(out, fn)
				}
				return true
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return true
			}
			if types.IsInterface(sel.Recv()) {
				// Interface dispatch: widen to every concrete method with
				// this name. Over-approximates, which is the sound
				// direction for a reachability lint.
				out = append(out, byName[fn.Name()]...)
			} else {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}
