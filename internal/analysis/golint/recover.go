package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// CheckGoRecover reports every `go` statement in the package at dir
// whose spawned function is not guarded by a deferred recover.
//
// A panic in a goroutine that nobody recovers crashes the whole
// process: in this repository that means a multi-hour verification run
// dies with nothing written, which is exactly what the panic-containment
// layer in package explore exists to prevent. This pass keeps the
// property from regressing: every worker spawn must install its guard.
//
// The pass is parse-only (no type checking), so its resolution is
// name-based and deliberately conservative:
//
//   - `go func() {...}()`: the literal's body must defer a recover
//     guard.
//   - `go f(...)` / `go r.m(...)`: some same-package function or method
//     declaration with that name must defer a recover guard in its
//     body; if no declaration is found at all (e.g. the callee lives in
//     another package), the spawn is flagged as unresolvable.
//
// A "recover guard" is a DeferStmt in the spawned function's own body
// (not inside a nested function literal — a nested defer guards the
// wrong frame) whose deferred function calls recover() directly:
// either `defer func() { ... recover() ... }()` or `defer g(...)` where
// g's declaration calls recover() directly. Go only honours recover
// when the deferred function itself calls it, so transitive calls do
// not count.
func CheckGoRecover(dir string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}

	// Function and method declarations by bare name. Name collisions
	// (methods on different receivers) are merged: if ANY declaration
	// with the name recovers, the guard counts — the sound direction for
	// a lint is over-approximating guards only when the alternative is
	// resolving types, and under-approximating them everywhere else.
	decls := make(map[string][]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = append(decls[fd.Name.Name], fd)
			}
		}
	}

	recovers := func(name string) bool {
		for _, fd := range decls[name] {
			if callsRecoverDirectly(fd.Body) {
				return true
			}
		}
		return false
	}

	// guarded reports whether body defers a recover guard at its own
	// frame level.
	guarded := func(body *ast.BlockStmt) bool {
		found := false
		inspectOwnFrame(body, func(n ast.Node) {
			ds, ok := n.(*ast.DeferStmt)
			if !ok || found {
				return
			}
			switch fun := ast.Unparen(ds.Call.Fun).(type) {
			case *ast.FuncLit:
				if callsRecoverDirectly(fun.Body) {
					found = true
				}
			case *ast.Ident:
				if fun.Name == "recover" || recovers(fun.Name) {
					found = true
				}
			case *ast.SelectorExpr:
				if recovers(fun.Sel.Name) {
					found = true
				}
			}
		})
		return found
	}

	var out []Diagnostic
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var msg string
				switch fun := ast.Unparen(gs.Call.Fun).(type) {
				case *ast.FuncLit:
					if !guarded(fun.Body) {
						msg = "goroutine has no deferred recover guard: a worker panic kills the whole run"
					}
				case *ast.Ident:
					msg = checkNamedSpawn(fun.Name, decls, guarded)
				case *ast.SelectorExpr:
					msg = checkNamedSpawn(fun.Sel.Name, decls, guarded)
				default:
					msg = "goroutine spawns an unresolvable function: cannot verify its recover guard"
				}
				if msg != "" {
					out = append(out, Diagnostic{
						Pos:     fset.Position(gs.Pos()),
						Func:    fd.Name.Name,
						Message: msg,
					})
				}
				return true
			})
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// checkNamedSpawn validates `go name(...)`: every same-package
// declaration of name must carry its own guard (any unguarded candidate
// may be the one that runs).
func checkNamedSpawn(name string, decls map[string][]*ast.FuncDecl, guarded func(*ast.BlockStmt) bool) string {
	fds := decls[name]
	if len(fds) == 0 {
		return fmt.Sprintf("goroutine spawns %s, which has no declaration in this package: cannot verify its recover guard", name)
	}
	for _, fd := range fds {
		if !guarded(fd.Body) {
			return fmt.Sprintf("goroutine function %s has no deferred recover guard: a worker panic kills the whole run", name)
		}
	}
	return ""
}

// callsRecoverDirectly reports whether body calls recover() in its own
// frame (not inside a nested function literal): only such calls stop a
// panic per the language spec.
func callsRecoverDirectly(body *ast.BlockStmt) bool {
	found := false
	inspectOwnFrame(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
			found = true
		}
	})
	return found
}

// inspectOwnFrame walks body without descending into nested function
// literals: defers and recovers inside those belong to a different
// frame.
func inspectOwnFrame(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// sortDiagnostics orders findings by position for stable output.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
}
