package golint

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// checkWants compares diagnostics against the `// want "frag"` comments
// in the fixture directory: every want must match a diagnostic on its
// line, and every diagnostic must be wanted.
func checkWants(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	type want struct {
		line int
		frag string
	}
	var wants []want
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, `// want "`)
				if !ok {
					continue
				}
				wants = append(wants, want{
					line: fset.Position(c.Pos()).Line,
					frag: strings.TrimSuffix(rest, `"`),
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixture has no want comments")
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if !matched[i] && d.Pos.Line == w.line && strings.Contains(d.Message, w.frag) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic at fixture line %d matching %q; got %v", w.line, w.frag, diags)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestFixture runs the pass over the testdata package and compares the
// diagnostics against the `// want` comments in the fixture source.
func TestFixture(t *testing.T) {
	dir := filepath.Join("testdata", "fingerprint")
	diags, err := CheckDir(dir, []string{"AppendFingerprint"})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, dir, diags)
}

// TestIndirectFixture is the call-graph regression fixture: map ranges
// in functions reachable only through method values, function values,
// and goroutine closures must all be flagged.
func TestIndirectFixture(t *testing.T) {
	dir := filepath.Join("testdata", "indirect")
	diags, err := CheckDir(dir, []string{"AppendFingerprint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) < 4 {
		t.Errorf("expected at least 4 findings (method value, function value, closure, spawned helper), got %d: %v", len(diags), diags)
	}
	checkWants(t, dir, diags)
}

// TestFixtureParses guards the fixture itself: want comments must sit on
// range statements, or the line assertions above test nothing.
func TestFixtureParses(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "fingerprint", "fingerprint.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name.Name != "fingerprint" {
		t.Fatalf("fixture package %q", f.Name.Name)
	}
}

// TestRealFingerprintGraph runs the pass over the real gcmodel package:
// the fingerprint call graph must contain no map iteration, for both
// the plain and the symmetry-canonical entry points.
func TestRealFingerprintGraph(t *testing.T) {
	dir := filepath.Join("..", "..", "gcmodel")
	diags, err := CheckDir(dir, []string{"AppendFingerprint", "AppendCanonicalFingerprint"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("nondeterministic fingerprint: %s", d)
	}
}
