package golint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// wantsIn collects the `// want "..."` comments of a fixture directory.
func wantsIn(t *testing.T, dir string) []struct {
	line int
	frag string
} {
	t.Helper()
	type want = struct {
		line int
		frag string
	}
	var wants []want
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, `// want "`)
				if !ok {
					continue
				}
				wants = append(wants, want{
					line: fset.Position(c.Pos()).Line,
					frag: strings.TrimSuffix(rest, `"`),
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixture has no want comments")
	}
	return wants
}

// TestRecoverFixture runs the recover-guard pass over the spawn fixture
// and compares the diagnostics against its `// want` comments.
func TestRecoverFixture(t *testing.T) {
	dir := filepath.Join("testdata", "spawn")
	diags, err := CheckGoRecover(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := wantsIn(t, dir)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if d.Pos.Line == w.line && strings.Contains(d.Message, w.frag) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic at fixture line %d matching %q; got %v", w.line, w.frag, diags)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestRealSpawnsGuarded runs the pass over the packages that actually
// spawn verification workers: every goroutine there must install its
// panic-containment guard, or a worker panic takes down the run the
// durability layer exists to save.
func TestRealSpawnsGuarded(t *testing.T) {
	for _, dir := range []string{
		filepath.Join("..", "..", "explore"),
		filepath.Join("..", "..", "liveness"),
	} {
		diags, err := CheckGoRecover(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: unguarded goroutine: %s", dir, d)
		}
	}
}
