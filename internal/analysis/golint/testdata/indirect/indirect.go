// Package indirect is the regression fixture for the call-graph fix:
// functions reachable only through a method value, a function value
// passed to an invoker, or a goroutine closure must be in the reachable
// set, so their map ranges are flagged. The original callee collector
// looked only at direct call expressions and missed every one of these.
package indirect

type table struct {
	m map[string]int
}

// AppendFingerprint is the fixture's fingerprint entry point. None of
// the defective functions below are named in a direct call expression.
func AppendFingerprint(t *table, buf []byte) []byte {
	f := t.dumpValues // method value: the only reference to dumpValues
	buf = f(buf)
	buf = invoke(viaValue, buf) // function value handed to an invoker
	spawn(t)
	return buf
}

// dumpValues is reachable only through the method value above.
func (t *table) dumpValues(buf []byte) []byte {
	for k := range t.m { // want "iteration over map"
		buf = append(buf, k...)
	}
	return buf
}

// invoke calls whatever function value it is handed.
func invoke(f func([]byte) []byte, buf []byte) []byte { return f(buf) }

// viaValue is reachable only as an argument to invoke.
func viaValue(buf []byte) []byte {
	sizes := map[int]bool{1: true}
	for s := range sizes { // want "iteration over map"
		_ = s
		buf = append(buf, 0)
	}
	return buf
}

// spawn runs a goroutine whose closure ranges over a map: the range
// belongs to spawn's own body (function literals are attributed to the
// enclosing declaration), and the spawned helper is reachable only
// through the go statement.
func spawn(t *table) {
	go func() {
		for range t.m { // want "iteration over map"
		}
		background(t)
	}()
}

// background is reachable only from inside the goroutine closure.
func background(t *table) {
	for k, v := range t.m { // want "iteration over map"
		_, _ = k, v
	}
}
