// Package spawn is the recover-guard fixture: a miniature of the
// goroutine shapes the pass must classify. Lines that must be flagged
// carry a `// want` comment with a fragment of the expected message.
package spawn

import "sync"

type pool struct {
	wg sync.WaitGroup
}

// contain is a proper guard: it calls recover directly.
func (p *pool) contain() {
	if r := recover(); r != nil {
		_ = r
	}
}

// leakyContain looks like a guard but calls recover only through a
// helper, which the language ignores: deferring it does not guard.
func (p *pool) leakyContain() {
	helperRecover()
}

func helperRecover() {
	_ = recover()
}

// guardedLit defers a recovering literal: clean.
func (p *pool) guardedLit() {
	go func() {
		defer func() {
			if recover() != nil {
				return
			}
		}()
		work()
	}()
}

// guardedMethod defers the named guard method: clean.
func (p *pool) guardedMethod() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.contain()
		work()
	}()
}

// bareSpawn has no defer at all: flagged.
func (p *pool) bareSpawn() {
	go func() { // want "no deferred recover guard"
		work()
	}()
}

// wrongFrame defers the guard inside a nested literal, which guards the
// nested frame, not the goroutine: flagged.
func (p *pool) wrongFrame() {
	go func() { // want "no deferred recover guard"
		f := func() {
			defer p.contain()
			work()
		}
		f()
	}()
}

// indirectRecover defers a function whose recover is transitive: the
// runtime will not honour it, so this spawn is flagged.
func (p *pool) indirectRecover() {
	go func() { // want "no deferred recover guard"
		defer p.leakyContain()
		work()
	}()
}

// namedGuarded spawns a declared function that guards itself: clean.
func namedGuarded() {
	go worker()
}

func worker() {
	defer func() { _ = recover() }()
	work()
}

// namedBare spawns a declared function with no guard: flagged.
func namedBare() {
	go work() // want "no deferred recover guard"
}

// externalSpawn spawns a function this package cannot see: flagged as
// unresolvable.
func externalSpawn(f *sync.Once) {
	go f.Do(work) // want "cannot verify"
}

func work() {}
