// Package fingerprint is the golint test fixture: a miniature of the
// shapes the map-iteration pass must handle. Lines that must be flagged
// carry a `// want` comment with a fragment of the expected message.
package fingerprint

// Model mirrors the real gcmodel.Model shape: a map-typed config field
// that must never be iterated while fingerprinting.
type Model struct {
	init  map[int][]int
	order []int
}

// AppendFingerprint is the root of the checked call graph.
func (m *Model) AppendFingerprint(b []byte) []byte {
	b = m.header(b)
	var h hasher = m
	return h.hash(b)
}

// header iterates the map directly: flagged.
func (m *Model) header(b []byte) []byte {
	for k := range m.init { // want "iteration over map"
		b = append(b, byte(k))
	}
	return b
}

// hasher exercises interface-call widening: AppendFingerprint only ever
// calls hash through this interface.
type hasher interface {
	hash(b []byte) []byte
}

// hash reaches a map range through a helper function and a closure:
// both flagged.
func (m *Model) hash(b []byte) []byte {
	b = tail(b, m.init)
	f := func() {
		for k, vs := range m.init { // want "iteration over map"
			_ = k
			b = append(b, byte(len(vs)))
		}
	}
	f()
	return b
}

// tail is a plain function callee.
func tail(b []byte, init map[int][]int) []byte {
	for k := range init { // want "iteration over map"
		b = append(b, byte(k))
	}
	return b
}

// Rebuild is NOT reachable from AppendFingerprint: its map iteration is
// legitimate (order-insensitive) and must not be flagged.
func (m *Model) Rebuild() {
	m.order = m.order[:0]
	for k := range m.init {
		m.order = append(m.order, k)
	}
}

// ordered iteration over a slice: never flagged even when reachable.
func (m *Model) Ordered(b []byte) []byte {
	for _, k := range m.order {
		b = append(b, byte(k))
	}
	return b
}
