package golint

// This file exports the loader and call-graph machinery so sibling
// analyzers (package gortlint) can build passes on the same foundation:
// load in-module packages from source, enumerate function declarations
// with their syntax and type info, and compute conservative reachability.
//
// The call graph here fixes a soundness hole the original map-range pass
// shipped with: callees used to be collected only from call expressions
// with a direct identifier or selector callee, so a function referenced
// as a VALUE — a method value assigned to a variable, a function passed
// to an invoker, the target of a `go`/`defer` through a variable — never
// produced an edge, and anything reachable only through such a reference
// was invisible to every downstream check. Callees now include every
// *types.Func the body references in any position: strictly more edges,
// which is the sound direction for a reachability lint (the cost is
// over-approximation: a referenced-but-never-called function counts as
// reachable).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Package is the exported view of one loaded source package.
type Package struct {
	// Path is the import path.
	Path string
	// Files is the package syntax in sorted file order (tests excluded).
	Files []*ast.File
	// Info holds the type-checker's Uses/Defs/Selections/Types maps.
	Info *types.Info
	// Types is the type-checked package.
	Types *types.Package
}

// Function pairs a declared function or method with its syntax and the
// package it lives in. Nested function literals belong to the enclosing
// declaration's body.
type Function struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Key returns the function's table key: "Recv.Name" for methods (with
// any pointer receiver stripped), "Name" for plain functions.
func (f *Function) Key() string {
	return funcKey(f.Fn)
}

// funcKey formats a *types.Func as "Recv.Name" or "Name".
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// Module is a loaded set of in-module packages plus everything they
// transitively import from the module, with the function index and the
// conservative call graph over the whole set.
type Module struct {
	fset   *token.FileSet
	root   string // module directory
	pkgs   map[string]*Package
	funcs  map[*types.Func]*Function
	byName map[string][]*types.Func // concrete methods, for interface widening
}

// LoadPackages loads the packages at the given directories (resolving
// each against the enclosing module, like CheckDir) and every in-module
// package they import. All directories must belong to the same module.
func LoadPackages(dirs ...string) (*Module, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("golint: LoadPackages needs at least one directory")
	}
	modRoot, modPath, err := moduleOf(dirs[0])
	if err != nil {
		return nil, err
	}
	l := newLoader(modRoot, modPath)
	for _, dir := range dirs {
		path, err := importPathFor(modRoot, modPath, dir)
		if err != nil {
			return nil, err
		}
		if _, err := l.load(path); err != nil {
			return nil, err
		}
	}
	return newModule(l), nil
}

// importPathFor maps a directory to its import path within the module.
func importPathFor(modRoot, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("golint: %s is outside module %s", dir, modRoot)
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

// newModule indexes a loader's packages into the exported shape.
func newModule(l *loader) *Module {
	m := &Module{
		fset:   l.fset,
		root:   l.modRoot,
		pkgs:   make(map[string]*Package, len(l.pkgs)),
		funcs:  make(map[*types.Func]*Function),
		byName: make(map[string][]*types.Func),
	}
	for path, p := range l.pkgs {
		ep := &Package{Path: path, Files: p.files, Info: p.info, Types: p.tpkg}
		m.pkgs[path] = ep
		for _, f := range p.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m.funcs[obj] = &Function{Fn: obj, Decl: fd, Pkg: ep}
				if fd.Recv != nil {
					m.byName[obj.Name()] = append(m.byName[obj.Name()], obj)
				}
			}
		}
	}
	return m
}

// SortDiagnostics orders diagnostics by file position, for stable
// output across passes (sibling analyzers use it too).
func SortDiagnostics(out []Diagnostic) { sortDiagnostics(out) }

// Fset returns the module's file set (for positions).
func (m *Module) Fset() *token.FileSet { return m.fset }

// Root returns the module directory.
func (m *Module) Root() string { return m.root }

// Package returns the loaded package with the given import path, or the
// one whose path ends with the given suffix when no exact match exists.
func (m *Module) Package(path string) *Package {
	if p, ok := m.pkgs[path]; ok {
		return p
	}
	for key, p := range m.pkgs {
		if strings.HasSuffix(key, "/"+path) {
			return p
		}
	}
	return nil
}

// Packages returns every loaded package, sorted by import path.
func (m *Module) Packages() []*Package {
	out := make([]*Package, 0, len(m.pkgs))
	for _, p := range m.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Functions returns every declared function with a body across the
// loaded packages, in file-position order.
func (m *Module) Functions() []*Function {
	out := make([]*Function, 0, len(m.funcs))
	for _, f := range m.funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := m.fset.Position(out[i].Decl.Pos()), m.fset.Position(out[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out
}

// FunctionFor returns the declaration for a function object, or nil when
// the object was not declared in a loaded package (stdlib).
func (m *Module) FunctionFor(fn *types.Func) *Function { return m.funcs[fn] }

// Callees returns the static callees of one function: every *types.Func
// the body references — direct calls, method calls, method values,
// function values, go/defer targets — with interface methods widened to
// every same-name concrete method among the loaded packages.
func (m *Module) Callees(f *Function) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	add := func(fn *types.Func) {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			// Interface dispatch or method value: widen to every concrete
			// method with this name. Over-approximates, which is the sound
			// direction for a reachability lint.
			for _, c := range m.byName[fn.Name()] {
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
			return
		}
		if !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := f.Pkg.Info.Uses[id].(*types.Func); ok {
			add(fn)
		}
		return true
	})
	return out
}

// Reachable computes the functions reachable from the given roots over
// the static call graph.
func (m *Module) Reachable(roots []*types.Func) map[*types.Func]bool {
	reached := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if reached[fn] {
			continue
		}
		reached[fn] = true
		f, ok := m.funcs[fn]
		if !ok {
			continue // declared outside the loaded packages (stdlib)
		}
		for _, callee := range m.Callees(f) {
			if !reached[callee] {
				work = append(work, callee)
			}
		}
	}
	return reached
}

// SpawnRoots collects the functions referenced inside `go` statements of
// the given package: for `go f(...)` that is f; for `go func(){...}(...)`
// it is every function the literal (or its arguments) references. These
// are the entry points of spawned goroutines — reachability from them is
// what runs off the spawning goroutine's thread of control.
func (m *Module) SpawnRoots(p *Package) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			ast.Inspect(gs.Call, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if fn, ok := p.Info.Uses[id].(*types.Func); ok && !seen[fn] {
					seen[fn] = true
					out = append(out, fn)
				}
				return true
			})
			return true
		})
	}
	return out
}
