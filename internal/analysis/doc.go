// Package analysis is a static effect and robustness analyzer for the
// CIMP programs of this repository (gclint). It complements the dynamic
// model checker (package explore) with analyses that need no state-space
// exploration, and it is cross-checked against the checker so the static
// layer cannot silently drift from the executable semantics:
//
//   - Declared effects (effects.go, extract.go): every request kind
//     carries a declared memory-system footprint (KindEffect), and every
//     labeled Request site in a built model carries a declared location
//     class (Site), extracted by probing the site's Act closure once.
//     The Validator (validate.go) replays these declarations against
//     every transition the checker takes: an observed kind, location
//     class, response label, or lock/buffer effect outside the declared
//     footprint is a hard verification failure ("declared-effects"), so
//     the static tables are exactly as trustworthy as the checker run
//     that validated them.
//
//   - Control-flow graphs and dataflow (cfg.go): per-process CFGs over
//     the command trees with reaching-unfenced-store and lock-held
//     analyses, the substrate for the robustness rules.
//
//   - TSO robustness (robust.go): a Shasha–Snir critical-cycle analysis
//     for litmus programs (package tso) — a program is TSO-robust iff no
//     program-order store→load relaxation lies on a cycle of program
//     order and conflict edges. For the GC model itself, whole-program
//     robustness is reported informationally (the collector is
//     deliberately non-robust — relaxed behavior it tolerates is the
//     paper's point) and pass/fail comes from the named placement rules
//     in rules.go: deletion/insertion barrier on every store path, CAS
//     under the TSO lock, empty buffers at handshake signals, and a
//     full handshake round between phase-protocol writes. These flag
//     exactly the barrier/lock ablations (Config.NoDeletionBarrier,
//     NoInsertionBarrier, InsertionBarrierOnlyBeforeRootsDone,
//     UnlockedMark, NoHSFence, ElideHS1–3) without running the checker.
//
//   - POR safe-class derivation (por.go): the handwritten partial-order
//     reduction classification (gcmodel.Model.SafeRequest) is re-derived
//     from the declared effect table plus a writers-per-class analysis
//     of the extracted sites, and the two classifications are diffed at
//     every reachable state during validated exploration
//     ("por-safe-class"). A disagreement means either the handwritten
//     commutation argument or the effect table is wrong.
//
// cmd/gclint is the command-line front end; cmd/gcmc -lint runs the
// static preflight and enables the dynamic validation hooks.
package analysis
