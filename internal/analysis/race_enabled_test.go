//go:build race

package analysis_test

// raceEnabled reports whether the race detector is compiled in. The
// full validated exploration multiplies its wall-clock by the
// detector's slowdown without exercising concurrency the capped run
// doesn't already cover, so it skips itself under -race.
const raceEnabled = true
