package liveness

import "testing"

// Synthetic-graph tests for the weak-fairness filter: hand-built CSR
// graphs exercise exactly the scheduler-artifact loops the detector
// must exclude, independent of the GC model. All use a 1-mutator
// entity layout: bit 0 = proc(gc), bit 1 = proc(m0), bit 2 = drain(gc),
// bit 3 = drain(m0), bit 4 = hs(m0).
func ents1() entities { return entities{nmut: 1} }

// loop1 builds a single-node graph with one self-loop of the given
// taken mask, the node's enabled mask en, and the node Bad for
// property 0.
func loop1(en, taken uint64) *graph {
	return &graph{
		ents:   ents1(),
		hash:   []uint64{1},
		bad:    []uint32{1},
		en:     []uint64{en},
		parent: []int32{-1},
		peidx:  []int32{-1},
		depth:  []int32{0},
		estart: []int32{0, 1},
		eto:    []int32{0},
		etaken: []uint64{taken},
		eeidx:  []int32{0},
	}
}

func TestStutterStarvationLoopNotReported(t *testing.T) {
	e := ents1()
	// The pure-stutter scheduler loop: the mutator spins while the
	// collector has an enabled step at every state of the cycle but is
	// never scheduled. Weak fairness must exclude it.
	g := loop1(e.proc(0)|e.proc(1), e.proc(1))
	if walk := g.fairCycle(0); walk != nil {
		t.Fatalf("starvation loop reported as fair: %v", walk)
	}
}

func TestDisabledProcessLoopIsFair(t *testing.T) {
	e := ents1()
	// Same loop, but the collector is disabled (blocked) at the state:
	// starving it is no excuse, the cycle is genuinely fair.
	g := loop1(e.proc(1), e.proc(1))
	walk := g.fairCycle(0)
	if walk == nil {
		t.Fatal("fair self-loop with the collector disabled was not reported")
	}
	if len(walk) != 1 || walk[0].from != 0 || g.eto[walk[0].j] != 0 {
		t.Fatalf("expected the self-loop as witness, got %v", walk)
	}
}

func TestBufferProcrastinationLoopNotReported(t *testing.T) {
	e := ents1()
	// The "buffer never drains" loop: the dequeue of the collector's
	// buffer is enabled at the state (drain(gc) ∈ en) but the loop never
	// takes it. Hardware would drain the buffer, so this schedule is
	// unfair and must be excluded.
	g := loop1(e.proc(1)|e.drain(0), e.proc(1))
	if walk := g.fairCycle(0); walk != nil {
		t.Fatalf("buffer-procrastination loop reported as fair: %v", walk)
	}
}

func TestUnpolledHandshakeLoopNotReported(t *testing.T) {
	e := ents1()
	// The mutator loops on some non-handshake step while a poll that
	// would advance the pending handshake is enabled (hs(m0) ∈ en):
	// the §3.1 regular-polling assumption makes this unfair.
	g := loop1(e.proc(1)|e.hs(0), e.proc(1))
	if walk := g.fairCycle(0); walk != nil {
		t.Fatalf("unpolled-handshake loop reported as fair: %v", walk)
	}
}

func TestBadRestrictionSplitsCycle(t *testing.T) {
	e := ents1()
	// Two-node cycle 0 → 1 → 0 where only node 0 is Bad: the property
	// recovers at node 1, so no all-Bad cycle exists and nothing may be
	// reported even though the graph cycle is fair.
	g := &graph{
		ents:   ents1(),
		hash:   []uint64{1, 2},
		bad:    []uint32{1, 0},
		en:     []uint64{e.proc(1), e.proc(1)},
		parent: []int32{-1, 0},
		peidx:  []int32{-1, 0},
		depth:  []int32{0, 1},
		estart: []int32{0, 1, 2},
		eto:    []int32{1, 0},
		etaken: []uint64{e.proc(1), e.proc(1)},
		eeidx:  []int32{0, 0},
	}
	if walk := g.fairCycle(0); walk != nil {
		t.Fatalf("cycle through a non-Bad state reported: %v", walk)
	}
}

func TestFairnessNeedsOnlyOneExcusePerEntity(t *testing.T) {
	e := ents1()
	// Two-node all-Bad cycle: the collector is enabled at node 0 but
	// disabled at node 1. Weak fairness only requires the entity to be
	// disabled somewhere on the cycle, so this is a real violation.
	g := &graph{
		ents:   ents1(),
		hash:   []uint64{1, 2},
		bad:    []uint32{1, 1},
		en:     []uint64{e.proc(0) | e.proc(1), e.proc(1)},
		parent: []int32{-1, 0},
		peidx:  []int32{-1, 0},
		depth:  []int32{0, 1},
		estart: []int32{0, 1, 2},
		eto:    []int32{1, 0},
		etaken: []uint64{e.proc(1), e.proc(1)},
		eeidx:  []int32{0, 0},
	}
	walk := g.fairCycle(0)
	if walk == nil {
		t.Fatal("fair two-node cycle (collector disabled at one state) not reported")
	}
	// The witness must be closed and must visit node 1 (the collector's
	// disabling state).
	cur := walk[0].from
	visits1 := false
	for _, w := range walk {
		if w.from != cur {
			t.Fatalf("walk not contiguous at %v", w)
		}
		cur = g.eto[w.j]
		if cur == 1 {
			visits1 = true
		}
	}
	if cur != walk[0].from {
		t.Fatalf("walk not closed: ends at %d, started at %d", cur, walk[0].from)
	}
	if !visits1 {
		t.Fatal("witness walk skips the state where the starved process is disabled")
	}
}

func TestTakenEntityOnCycleIsFair(t *testing.T) {
	e := ents1()
	// Both processes enabled throughout and both take steps on the
	// cycle: nobody is starved, the violation is real.
	both := e.proc(0) | e.proc(1)
	g := &graph{
		ents:   ents1(),
		hash:   []uint64{1, 2},
		bad:    []uint32{1, 1},
		en:     []uint64{both, both},
		parent: []int32{-1, 0},
		peidx:  []int32{-1, 0},
		depth:  []int32{0, 1},
		estart: []int32{0, 1, 2},
		eto:    []int32{1, 0},
		etaken: []uint64{e.proc(0), e.proc(1)},
		eeidx:  []int32{0, 0},
	}
	if walk := g.fairCycle(0); walk == nil {
		t.Fatal("cycle on which every enabled entity steps was not reported")
	}
}
