package liveness_test

import (
	"strings"
	"testing"

	"repro/internal/gcmodel"
	"repro/internal/heap"
	"repro/internal/liveness"
)

// smallConfig is a handshake-centric configuration small enough for the
// full liveness check to run in milliseconds: one mutator, stores only,
// tight budget and buffer bound.
func smallConfig() gcmodel.Config {
	return gcmodel.Config{
		NMutators: 1,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:      []heap.RefSet{heap.SetOf(0)},
		AllowNilStore:  true,
		DisableAlloc:   true,
		DisableLoad:    true,
		DisableDiscard: true,
	}
}

func build(t *testing.T, cfg gcmodel.Config) *gcmodel.Model {
	t.Helper()
	m, err := gcmodel.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCleanModelSatisfiesAllProperties(t *testing.T) {
	m := build(t, smallConfig())
	res, err := liveness.Check(m, liveness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("uncapped run not complete")
	}
	if !res.Holds() {
		for _, p := range res.Violations() {
			t.Errorf("property %s violated on the clean model:\n%s",
				p.Name, p.Counterexample.Render(m))
		}
	}
	if len(res.Properties) != 4 { // hs-ack-m0, gc-sweep, buf-drain-gc, buf-drain-m0
		t.Fatalf("expected 4 properties, got %d", len(res.Properties))
	}
}

func TestMuteHandshakeViolatesAcknowledgement(t *testing.T) {
	cfg := smallConfig()
	cfg.MuteHandshake = true
	m := build(t, cfg)
	res, err := liveness.Check(m, liveness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]liveness.PropertyResult)
	for _, p := range res.Properties {
		byName[p.Name] = p
	}
	if byName["hs-ack-m0"].Holds {
		t.Error("hs-ack-m0 should be violated when mutators never poll")
	}
	if byName["gc-sweep"].Holds {
		t.Error("gc-sweep should be violated when the collector can never finish a handshake")
	}
	for _, p := range res.Violations() {
		if p.Counterexample == nil {
			t.Fatalf("%s: violated without a counterexample", p.Name)
		}
		if err := liveness.VerifyLasso(m, p.Counterexample); err != nil {
			t.Errorf("%s: lasso does not replay: %v", p.Name, err)
		}
	}
}

func TestNoDequeueViolatesBufferDrain(t *testing.T) {
	cfg := smallConfig()
	cfg.NoDequeue = true
	m := build(t, cfg)
	res, err := liveness.Check(m, liveness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	violated := make(map[string]bool)
	for _, p := range res.Violations() {
		violated[p.Name] = true
		if err := liveness.VerifyLasso(m, p.Counterexample); err != nil {
			t.Errorf("%s: lasso does not replay: %v", p.Name, err)
		}
	}
	if !violated["buf-drain-gc"] {
		t.Error("buf-drain-gc should be violated when the system never dequeues")
	}
	if violated["hs-ack-m0"] {
		t.Error("hs-ack-m0 should still hold: handshake state is not subject to TSO")
	}
}

// TestLassoReplaysThroughUnreducedRelation is the liveness analogue of
// diffcheck's replay validation: the recorded stem must be a genuine
// run of the unreduced transition relation, the cycle must return
// exactly to the cycle head, and tampering with either must be caught.
func TestLassoReplaysThroughUnreducedRelation(t *testing.T) {
	cfg := smallConfig()
	cfg.MuteHandshake = true
	m := build(t, cfg)
	res, err := liveness.Check(m, liveness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vs := res.Violations()
	if len(vs) == 0 {
		t.Fatal("expected a violation to replay")
	}
	l := vs[0].Counterexample

	// The lasso replays through the model's own transition relation
	// (states carry per-Build command identity, so replay uses the same
	// model instance — as diffcheck.VerifyReplay does for safety).
	if err := liveness.VerifyLasso(m, l); err != nil {
		t.Fatalf("lasso does not replay: %v", err)
	}

	// The head state is the stem's last state and the cycle's last
	// state — the defining lasso shape.
	head := l.Head(m)
	last := l.Cycle[len(l.Cycle)-1].State
	if m.Fingerprint(head) != m.Fingerprint(last) {
		t.Error("cycle does not end at the lasso head")
	}

	// Tampering with the cycle must be detected.
	if len(l.Cycle) > 0 {
		broken := &liveness.Lasso{Stem: l.Stem, Cycle: l.Cycle[:len(l.Cycle)-1]}
		if err := liveness.VerifyLasso(m, broken); err == nil {
			t.Error("truncated cycle still verifies")
		}
	}
	if len(l.Stem) > 1 {
		broken := &liveness.Lasso{Stem: l.Stem[1:], Cycle: l.Cycle}
		if err := liveness.VerifyLasso(m, broken); err == nil {
			t.Error("truncated stem still verifies")
		}
	}
	empty := &liveness.Lasso{Stem: l.Stem}
	if err := liveness.VerifyLasso(m, empty); err == nil {
		t.Error("empty cycle still verifies")
	}

	// Rendering mentions the lasso shape.
	out := l.Render(m)
	if !strings.Contains(out, "cycle") || !strings.Contains(out, "repeat") {
		t.Errorf("render lacks cycle marker:\n%s", out)
	}
}

func TestByNameSelectsSubset(t *testing.T) {
	m := build(t, smallConfig())
	props, err := liveness.ByName(m, []string{"gc-sweep", "hs-ack-m0"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := liveness.Check(m, liveness.Options{Properties: props})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Properties) != 2 {
		t.Fatalf("expected 2 verdicts, got %d", len(res.Properties))
	}
	if res.Properties[0].Name != "gc-sweep" || res.Properties[1].Name != "hs-ack-m0" {
		t.Fatalf("verdicts out of order: %v", res.Properties)
	}
	if _, err := liveness.ByName(m, []string{"no-such-property"}); err == nil {
		t.Fatal("unknown property name accepted")
	}
}

func TestCappedRunIsInconclusiveButSound(t *testing.T) {
	cfg := smallConfig()
	cfg.MuteHandshake = true
	m := build(t, cfg)
	res, err := liveness.Check(m, liveness.Options{MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("capped run reported complete")
	}
	if res.States > 50 {
		t.Fatalf("cap not respected: %d states", res.States)
	}
	// Any violation a capped run does report must still replay: capped
	// graphs under-approximate, they never fabricate.
	for _, p := range res.Violations() {
		if err := liveness.VerifyLasso(m, p.Counterexample); err != nil {
			t.Errorf("%s: capped-run lasso does not replay: %v", p.Name, err)
		}
	}
}

// TestCappedCleanRunFabricatesNothing is the regression test for a
// capped-run soundness bug: edges dropped at the MaxStates boundary
// must not subtract from the enabled mask, or weak fairness would
// excuse genuinely enabled entities and report "fair" cycles on a
// model that has none.
func TestCappedCleanRunFabricatesNothing(t *testing.T) {
	m := build(t, smallConfig())
	for _, cap := range []int{50, 500, 5000} {
		res, err := liveness.Check(m, liveness.Options{MaxStates: cap})
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete {
			t.Fatalf("cap %d should truncate the graph", cap)
		}
		for _, p := range res.Violations() {
			t.Errorf("cap %d: fabricated violation of %s:\n%s",
				cap, p.Name, p.Counterexample.Render(m))
		}
	}
}

func TestGraphMatchesSafetyExploration(t *testing.T) {
	// The liveness pass materializes the same unreduced relation the
	// safety checker explores; states, transitions, and depth must agree
	// exactly (this is also the EXPERIMENTS.md liveness-vs-safety
	// comparison in miniature).
	m := build(t, smallConfig())
	res, err := liveness.Check(m, liveness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.States == 0 || res.Transitions < res.States-1 {
		t.Fatalf("implausible graph: %d states, %d transitions", res.States, res.Transitions)
	}
	if res.GraphBytes == 0 {
		t.Fatal("graph bytes not accounted")
	}
	// The exact cross-check against explore.Run lives in the core
	// package tests to avoid an import cycle here.
}
