package liveness

import (
	"time"

	"repro/internal/cimp"
	"repro/internal/explore"
	"repro/internal/gcmodel"
)

// graph is the materialized reachable state graph of one bounded model
// instance. The safety checker never stores edges — it only needs the
// BFS frontier — but cycle detection needs the whole graph at once, so
// the builder keeps a compressed-sparse-row edge list alongside the
// per-node metadata the fairness check and lasso reconstruction need.
// States themselves are discarded after expansion; a node is its 64-bit
// fingerprint hash plus its (parent, event-index) recipe, exactly the
// representation the safety checker replays traces from.
type graph struct {
	m    *gcmodel.Model
	ents entities

	// Per-node arrays, indexed by node id. Ids are assigned in BFS
	// discovery order, which is also expansion order.
	hash   []uint64 // fingerprint hash
	bad    []uint32 // property bitmask: bit i ⇔ props[i].Bad holds here
	en     []uint64 // fairness entities enabled here (∪ of taken masks over the FULL enumeration, including cap-dropped edges)
	parent []int32  // BFS parent id (-1 at the root)
	peidx  []int32  // event index that produced this node from parent
	depth  []int32

	// CSR out-edges: node u's edges occupy indices estart[u] ..
	// estart[u+1]-1. A MaxStates cap drops edges whose target is over
	// the cap but keeps their bits in en, so dropped edges only remove
	// cycles and taken-coverage — they can never excuse an entity.
	// MaxDepth-cut nodes stay unexpanded with no out-edges, so no cycle
	// passes through them. Either way capped runs under-approximate:
	// they never fabricate violations.
	estart []int32
	eto    []int32  // target node id
	etaken []uint64 // fairness entities this edge serves
	eeidx  []int32  // event index in the source's successor enumeration

	transitions int
	maxDepth    int
	complete    bool
	stopped     explore.StopReason
}

// bytes is the payload memory retained by the graph arrays.
func (g *graph) bytes() int64 {
	nodes := int64(len(g.hash)) * (8 + 4 + 8 + 4 + 4 + 4)
	edges := int64(len(g.eto))*(4+8+4) + int64(len(g.estart))*4
	return nodes + edges
}

// outEdges returns the CSR index range of node u's out-edges.
func (g *graph) outEdges(u int32) (int32, int32) {
	return g.estart[u], g.estart[u+1]
}

// buildGraph explores m breadth-first over the full, unreduced
// transition relation and returns the materialized graph. Node ids and
// edge order are deterministic: BFS discovery order over the
// deterministic successor enumeration.
func buildGraph(m *gcmodel.Model, props []Property, ents entities, opt Options, start time.Time) *graph {
	g := &graph{m: m, ents: ents}
	every := opt.ProgressEvery
	if every <= 0 {
		every = 8192
	}

	badMask := func(st gcmodel.SysState) uint32 {
		gl := gcmodel.Global{Model: m, State: st}
		var mask uint32
		for i := range props {
			if props[i].Bad(gl) {
				mask |= 1 << uint(i)
			}
		}
		return mask
	}

	ids := make(map[uint64]int32, 1<<16)
	// states[u] holds node u's concrete state until u is expanded, at
	// which point it is released; BFS order makes this a sliding window
	// in principle, but a single slice indexed by id keeps the code
	// simple and costs only the (small) struct headers.
	var states []gcmodel.SysState

	add := func(st gcmodel.SysState, h uint64, parent, eidx, d int32) int32 {
		id := int32(len(g.hash))
		ids[h] = id
		g.hash = append(g.hash, h)
		g.bad = append(g.bad, badMask(st))
		g.parent = append(g.parent, parent)
		g.peidx = append(g.peidx, eidx)
		g.depth = append(g.depth, d)
		states = append(states, st)
		if int(d) > g.maxDepth {
			g.maxDepth = int(d)
		}
		if opt.Progress != nil && id%int32(every) == 0 {
			opt.Progress(explore.Progress{
				States:      int(id) + 1,
				Transitions: g.transitions,
				Depth:       int(d),
				Elapsed:     time.Since(start),
			})
		}
		return id
	}

	init := m.Initial()
	var fpbuf []byte
	fpbuf = m.AppendFingerprint(fpbuf, init)
	add(init, gcmodel.Hash64(fpbuf), -1, -1, 0)

	capped := false
	depthCut := false
	interrupted := false
	for u := int32(0); int(u) < len(g.hash); u++ {
		g.estart = append(g.estart, int32(len(g.eto)))
		su := states[u]
		states[u] = gcmodel.SysState{}
		// Cancellation is observed every 1024 expansions; once seen, the
		// remaining discovered nodes are closed out unexpanded (like
		// depth-cut nodes: no out-edges, so no cycle passes through
		// them), keeping the CSR arrays consistent for a partial check.
		if opt.Context != nil && u%1024 == 0 && !interrupted {
			select {
			case <-opt.Context.Done():
				interrupted = true
			default:
			}
		}
		if interrupted || (opt.MaxDepth > 0 && int(g.depth[u]) >= opt.MaxDepth) {
			g.en = append(g.en, 0)
			depthCut = depthCut || !interrupted
			continue
		}
		var en uint64
		eidx := int32(-1)
		m.Successors(su, func(ns gcmodel.SysState, ev cimp.Event) {
			eidx++
			g.transitions++
			// Enabledness must be computed from the FULL successor
			// enumeration, before any cap drops the edge: weak fairness
			// excuses entities that are disabled somewhere on a cycle, so
			// an under-computed en mask would excuse genuinely enabled
			// entities and fabricate fair cycles on capped runs.
			tk := g.takenMask(su, ev, ns)
			en |= tk
			fpbuf = m.AppendFingerprint(fpbuf[:0], ns)
			h := gcmodel.Hash64(fpbuf)
			vid, ok := ids[h]
			if !ok {
				if opt.MaxStates > 0 && len(g.hash) >= opt.MaxStates {
					// Target state over the cap: drop the edge (the edge
					// list only ever references real nodes), keep its
					// taken bits in en.
					capped = true
					return
				}
				vid = add(ns, h, u, eidx, g.depth[u]+1)
			}
			g.eto = append(g.eto, vid)
			g.etaken = append(g.etaken, tk)
			g.eeidx = append(g.eeidx, eidx)
		})
		g.en = append(g.en, en)
	}
	g.estart = append(g.estart, int32(len(g.eto))) // sentinel
	g.complete = !capped && !depthCut && !interrupted
	switch {
	case interrupted:
		g.stopped = explore.StopInterrupted
	case capped:
		g.stopped = explore.StopMaxStates
	case depthCut:
		g.stopped = explore.StopMaxDepth
	}
	if opt.Progress != nil {
		opt.Progress(explore.Progress{
			States:      len(g.hash),
			Transitions: g.transitions,
			Depth:       g.maxDepth,
			Elapsed:     time.Since(start),
		})
	}
	return g
}

// takenMask computes the fairness entities served by the transition
// su —ev→ ns:
//
//   - a collector or mutator step serves that process's entity (system
//     responder halves are attributed to the requester: the system is
//     always willing, so fairness obligations belong to the requesting
//     process);
//   - a mutator step that starts from or lands in a state where the
//     mutator holds a polled pending bit (HSP) additionally serves the
//     mutator's handshake-response entity — it advances the handshake
//     protocol (poll, handshake work, done);
//   - the system's internal dequeue step serves the drain entity of
//     the buffer it pops.
func (g *graph) takenMask(su gcmodel.SysState, ev cimp.Event, ns gcmodel.SysState) uint64 {
	sysPID := g.m.SysPID()
	if ev.Proc == sysPID {
		if !ev.Tau() {
			// The system never initiates rendezvous; defensive only.
			return 0
		}
		sb := gcmodel.Global{Model: g.m, State: su}.Sys().Bufs
		nb := gcmodel.Global{Model: g.m, State: ns}.Sys().Bufs
		for p := range sb {
			if len(nb[p]) < len(sb[p]) {
				return g.ents.drain(cimp.PID(p))
			}
		}
		return 0
	}
	mask := g.ents.proc(ev.Proc)
	if ev.Proc != gcmodel.GCPID {
		mi := int(ev.Proc) - 1
		srcHSP := (gcmodel.Global{Model: g.m, State: su}).Mut(mi).HSP
		dstHSP := (gcmodel.Global{Model: g.m, State: ns}).Mut(mi).HSP
		if srcHSP || dstHSP {
			mask |= g.ents.hs(mi)
		}
	}
	return mask
}
