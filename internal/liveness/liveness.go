// Package liveness is the progress half of the checker: a fair-cycle
// detector over the reachable state graph of the GC model. Where
// package explore re-establishes the paper's safety theorem
// (□(reachable r → valid_ref r)) by visiting every state, this package
// checks the progress obligations the paper states informally but
// leaves unproven (§6): every initiated handshake is eventually
// acknowledged by all mutators, the collector infinitely often reaches
// the sweep phase, and every buffered TSO store is eventually flushed
// to memory.
//
// # Properties as acceptance conditions
//
// Each Property carries a predicate Bad over global states meaning "the
// progress obligation is outstanding here": a handshake-pending bit is
// set, a store buffer is non-empty, the collector is not at sweep. A
// property is violated exactly when the model has an infinite fair
// execution on which Bad holds forever — in a finite graph, a reachable
// cycle every state of which satisfies Bad. Both shapes of the paper's
// obligations compile to this persistence form: a response property
// □(pending → ◇acked) fails on a cycle that stays pending, and a
// recurrence property □◇sweep fails on a cycle that avoids sweep.
//
// # Weak fairness
//
// Not every cycle is a real counterexample: the interleaving semantics
// contains scheduler-starvation loops (a mutator polling an empty
// mailbox forever while the runnable collector never gets a turn) and
// buffer-procrastination loops (a non-empty store buffer whose commit
// transition is enabled at every state but never scheduled). These are
// artifacts of the demonic scheduler, not bugs in the collector, so the
// detector only reports cycles that are weakly fair with respect to a
// set of fairness entities:
//
//   - one entity per process (collector and each mutator): a process
//     with an enabled transition at every state of the cycle must take
//     a step somewhere on the cycle;
//   - one entity per store buffer: if the buffer's oldest write is
//     committable (buffer non-empty, TSO lock not held by another
//     process) at every state of the cycle, a commit of that buffer
//     must occur on the cycle — hardware drains store buffers
//     spontaneously;
//   - one entity per mutator for handshake response: if mutator m has a
//     pending handshake and an enabled handshake-advancing step at
//     every state of the cycle, it must advance the handshake on the
//     cycle. This encodes the paper's §3.1 assumption that mutators
//     poll regularly; without it, a mutator spinning on MFENCE forever
//     would be a (weakly fair per process) way to starve every
//     handshake, drowning real violations in scheduler noise.
//
// A cycle is reported only if, for every entity, the entity either
// takes a step on the cycle or is disabled at some state of the cycle.
//
// # Algorithm
//
// Check materializes the reachable graph once (nodes are 64-bit
// fingerprint hashes; edges carry the event index into the unreduced
// successor enumeration plus a bitmask of the fairness entities they
// serve), then runs, per property, Tarjan's SCC algorithm on the
// subgraph induced by the Bad states. A strongly connected component
// admits a weakly fair cycle iff every entity enabled at all of its
// states is taken on some internal edge; from the first such component
// a concrete lasso (stem + cycle) is stitched together from shortest
// paths and replayed through the transition relation, so a liveness
// counterexample is a step-by-step run exactly like a safety one.
//
// The detector always runs on the full, unreduced transition relation:
// the partial-order reduction of package explore preserves reachability
// verdicts but not cycles or enabledness (see DESIGN.md "Liveness
// architecture").
package liveness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cimp"
	"repro/internal/explore"
	"repro/internal/gcmodel"
)

// Property is one progress obligation, expressed as a persistence
// acceptance condition: the property is violated iff some weakly fair
// cycle satisfies Bad at every state.
type Property struct {
	// Name identifies the property in verdicts and on the gcmc command
	// line (e.g. "hs-ack-m0").
	Name string
	// Desc is the one-line human reading of the obligation.
	Desc string
	// Bad reports whether the obligation is outstanding at this state.
	Bad func(g gcmodel.Global) bool
}

// All returns the progress properties of a model instance, derived from
// the paper's informal liveness claims:
//
//   - hs-ack-m<i>: every handshake signaled to mutator i is eventually
//     acknowledged (the pending bit eventually clears);
//   - gc-sweep: the collector infinitely often reaches the sweep phase,
//     so garbage is reclaimed infinitely often;
//   - buf-drain-gc, buf-drain-m<i>: every write buffered by the process
//     is eventually committed to shared memory.
func All(m *gcmodel.Model) []Property {
	n := m.Cfg.NMutators
	props := make([]Property, 0, 2*n+2)
	for i := 0; i < n; i++ {
		i := i
		props = append(props, Property{
			Name: fmt.Sprintf("hs-ack-m%d", i),
			Desc: fmt.Sprintf("every handshake signaled to mutator %d is eventually acknowledged", i),
			Bad:  func(g gcmodel.Global) bool { return g.Sys().Pending[i] },
		})
	}
	props = append(props, Property{
		Name: "gc-sweep",
		Desc: "the collector infinitely often completes a mark phase and reaches sweep",
		Bad:  func(g gcmodel.Global) bool { return g.GC().Phase != gcmodel.PhSweep },
	})
	props = append(props, Property{
		Name: "buf-drain-gc",
		Desc: "every store buffered by the collector is eventually flushed",
		Bad:  func(g gcmodel.Global) bool { return len(g.Buf(gcmodel.GCPID)) > 0 },
	})
	for i := 0; i < n; i++ {
		i := i
		props = append(props, Property{
			Name: fmt.Sprintf("buf-drain-m%d", i),
			Desc: fmt.Sprintf("every store buffered by mutator %d is eventually flushed", i),
			Bad:  func(g gcmodel.Global) bool { return len(g.Buf(gcmodel.MutPID(i))) > 0 },
		})
	}
	return props
}

// ByName resolves a subset of All(m) by property name.
func ByName(m *gcmodel.Model, names []string) ([]Property, error) {
	all := All(m)
	byName := make(map[string]Property, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	var props []Property
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("liveness: unknown property %q (have %v)", n, propertyNames(all))
		}
		props = append(props, p)
	}
	return props, nil
}

func propertyNames(props []Property) []string {
	ns := make([]string, len(props))
	for i, p := range props {
		ns[i] = p.Name
	}
	return ns
}

// Options bounds and instruments a liveness check.
type Options struct {
	// MaxStates caps the number of distinct states in the graph (0 = no
	// cap). A capped graph under-approximates the cycle structure:
	// violations found are real, but a clean verdict is only conclusive
	// when Result.Complete.
	MaxStates int
	// MaxDepth caps the BFS depth (0 = no cap); states at MaxDepth are
	// kept as nodes but not expanded.
	MaxDepth int
	// Progress, if non-nil, receives a report roughly every
	// ProgressEvery newly discovered states.
	Progress func(explore.Progress)
	// ProgressEvery is the number of new states between Progress calls
	// (0 = 8192).
	ProgressEvery int
	// Properties selects the progress properties to check (nil =
	// All(m)).
	Properties []Property
	// Context, if non-nil, requests graceful interruption of the graph
	// materialization: on cancellation the builder stops expanding,
	// closes the graph consistently (unexpanded nodes keep no out-edges,
	// so no cycle is fabricated), and the check runs on the partial
	// graph. Violations found are real; clean verdicts on an interrupted
	// run are inconclusive (Result.Complete false, Result.Stopped
	// "interrupted").
	Context context.Context
}

// PropertyResult is the verdict for one property.
type PropertyResult struct {
	// Name and Desc identify the property.
	Name string
	Desc string
	// Holds reports that no weakly fair violating cycle exists in the
	// explored graph (conclusive only when Result.Complete).
	Holds bool
	// Counterexample is the violating lasso, nil when Holds.
	Counterexample *Lasso
}

// Result summarizes a liveness check.
type Result struct {
	// States, Transitions and Depth describe the materialized graph;
	// on a complete run they match the safety checker's exploration of
	// the same configuration exactly (same relation, same counting).
	States      int
	Transitions int
	Depth       int
	// Complete reports that the full reachable graph was materialized
	// within the caps, making clean verdicts conclusive.
	Complete bool
	// Stopped says why materialization ended early (explore.StopNone
	// for a complete graph): max-states, max-depth, or interrupted.
	Stopped explore.StopReason
	// GraphBytes is the payload memory retained by the state graph
	// (node and edge arrays; Go map overhead excluded).
	GraphBytes int64
	// Properties holds one verdict per checked property, in the order
	// they were given.
	Properties []PropertyResult
	// Elapsed is the wall-clock duration of the whole check.
	Elapsed time.Duration
}

// Holds reports whether every checked property held.
func (r Result) Holds() bool {
	for _, p := range r.Properties {
		if !p.Holds {
			return false
		}
	}
	return true
}

// Violations returns the properties that failed.
func (r Result) Violations() []PropertyResult {
	var vs []PropertyResult
	for _, p := range r.Properties {
		if !p.Holds {
			vs = append(vs, p)
		}
	}
	return vs
}

// Check materializes the reachable state graph of m (always over the
// full, unreduced relation) and searches it, per property, for a weakly
// fair cycle on which the property's obligation is outstanding at every
// state. Counterexamples are returned as replayable lassos.
func Check(m *gcmodel.Model, opt Options) (Result, error) {
	start := time.Now()
	props := opt.Properties
	if props == nil {
		props = All(m)
	}
	if len(props) > maxProperties {
		return Result{}, fmt.Errorf("liveness: %d properties exceed the %d-property limit", len(props), maxProperties)
	}
	ents := entities{nmut: m.Cfg.NMutators}
	if ents.count() > 64 {
		return Result{}, fmt.Errorf("liveness: %d mutators exceed the fairness-entity limit", m.Cfg.NMutators)
	}

	g := buildGraph(m, props, ents, opt, start)
	res := Result{
		States:      len(g.hash),
		Transitions: g.transitions,
		Depth:       g.maxDepth,
		Complete:    g.complete,
		Stopped:     g.stopped,
		GraphBytes:  g.bytes(),
	}
	for i, p := range props {
		pr := PropertyResult{Name: p.Name, Desc: p.Desc, Holds: true}
		if walk := g.fairCycle(i); walk != nil {
			lasso, err := g.lasso(walk)
			if err != nil {
				return res, fmt.Errorf("liveness: %s: %w", p.Name, err)
			}
			pr.Holds = false
			pr.Counterexample = lasso
		}
		res.Properties = append(res.Properties, pr)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// maxProperties bounds the per-node property bitmask.
const maxProperties = 32

// entities lays out the weak-fairness entities of one model instance in
// a 64-bit mask: process entities for the collector and each mutator
// (bit = PID), one buffer-drain entity per buffered process, and one
// handshake-response entity per mutator. The system process needs no
// entity of its own — it moves only as the responder of a rendezvous
// (attributed to the requester) or through the dequeue transition
// (attributed to the drained buffer's entity).
type entities struct {
	nmut int
}

// count is the number of entities: (1+nmut) processes, (1+nmut)
// buffers, nmut handshake responders.
func (e entities) count() int { return 3*e.nmut + 2 }

// proc is the process entity of the collector (PID 0) or a mutator.
func (e entities) proc(p cimp.PID) uint64 { return 1 << uint(p) }

// drain is the buffer-drain entity of PID p's store buffer.
func (e entities) drain(p cimp.PID) uint64 { return 1 << uint(e.nmut+1+int(p)) }

// hs is the handshake-response entity of mutator ordinal m.
func (e entities) hs(m int) uint64 { return 1 << uint(2*(e.nmut+1)+m) }

// name renders entity bit index b for diagnostics.
func (e entities) name(b int) string {
	switch {
	case b == 0:
		return "proc(gc)"
	case b <= e.nmut:
		return fmt.Sprintf("proc(m%d)", b-1)
	case b == e.nmut+1:
		return "drain(gc)"
	case b <= 2*e.nmut+1:
		return fmt.Sprintf("drain(m%d)", b-e.nmut-2)
	default:
		return fmt.Sprintf("hs(m%d)", b-2*e.nmut-2)
	}
}
