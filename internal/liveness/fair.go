package liveness

// Fair-cycle detection. For property i, a counterexample is a reachable
// cycle whose every state satisfies Bad_i and which is weakly fair:
// each fairness entity is either taken by some edge of the cycle or
// disabled at some state of the cycle. The search runs Tarjan's SCC
// algorithm on the subgraph induced by the Bad_i states and applies a
// component-level criterion:
//
//	fair(C) ⇔ C has an internal edge ∧
//	          (∧_{u∈C} en[u]) &^ (∨_{e internal to C} taken[e]) == 0
//
// Soundness: any weakly fair Bad-cycle lies inside one SCC C of the Bad
// subgraph; every entity enabled at all states of the cycle is in
// particular enabled at... — more carefully, the two directions are:
//
//   - If C satisfies the criterion, a fair cycle exists: walk C visiting,
//     for each entity in ∧en, one edge that takes it (such an edge
//     exists since the entity is not in ∧en &^ ∨taken), and for each
//     remaining entity nothing special — the closed walk stays inside C
//     (strong connectivity), so every entity is either taken on the walk
//     or, if not in ∧en, disabled at some state of C which the walk can
//     also visit. buildWalk constructs exactly this witness.
//   - Conversely, if some weakly fair Bad-cycle exists, its states form
//     a strongly connected subset of the Bad subgraph, hence lie in one
//     SCC C. Every entity either is taken on the cycle (an internal edge
//     of C, so it is in ∨taken) or is disabled at some cycle state u
//     (so en[u] misses it and it is not in ∧en). Thus C — possibly a
//     larger SCC containing the cycle — satisfies the criterion, because
//     enlarging C only shrinks ∧en and grows ∨taken.
//
// Trivial SCCs (single node, no self-loop) have no internal edge and
// are never fair.

// walkEdge is one edge of a witness walk: the global CSR edge index j
// leaving node from (its target is eto[j]).
type walkEdge struct {
	from int32
	j    int32
}

// fairCycle searches for a weakly fair cycle on which property pi's Bad
// predicate holds throughout, returning a closed witness walk starting
// and ending at its first node, or nil if every reachable Bad-SCC is
// unfair. The result is deterministic: Tarjan visits nodes in id order.
func (g *graph) fairCycle(pi int) []walkEdge {
	pbit := uint32(1) << uint(pi)
	n := int32(len(g.hash))

	const none = int32(-1)
	index := make([]int32, n) // Tarjan discovery index, or none
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = none
	}
	var next int32
	var stack []int32        // Tarjan's component stack
	inSCC := make([]bool, n) // membership scratch, reused per SCC

	// Iterative DFS: one frame per open node, ei is the cursor into its
	// CSR edge range.
	type frame struct {
		v  int32
		ei int32
	}
	var dfs []frame

	for root := int32(0); root < n; root++ {
		if index[root] != none || g.bad[root]&pbit == 0 {
			continue
		}
		dfs = append(dfs[:0], frame{v: root, ei: g.estart[root]})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.ei < g.estart[v+1] {
				w := g.eto[f.ei]
				f.ei++
				if g.bad[w]&pbit == 0 {
					continue
				}
				if index[w] == none {
					dfs = append(dfs, frame{v: w, ei: g.estart[w]})
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished: pop its SCC if it is a root.
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 && low[v] < low[dfs[len(dfs)-1].v] {
				low[dfs[len(dfs)-1].v] = low[v]
			}
			if low[v] != index[v] {
				continue
			}
			// Pop the component off the stack.
			i := len(stack)
			for i > 0 && index[stack[i-1]] >= index[v] {
				i--
			}
			scc := stack[i:]
			stack = stack[:i]
			for _, u := range scc {
				onStack[u] = false
				inSCC[u] = true
			}
			walk := g.checkSCC(scc, inSCC)
			for _, u := range scc {
				inSCC[u] = false
			}
			if walk != nil {
				return walk
			}
		}
	}
	return nil
}

// checkSCC applies the weak-fairness criterion to one SCC of the Bad
// subgraph (inSCC is the membership array, set for exactly the SCC's
// nodes) and builds the witness walk if it passes.
func (g *graph) checkSCC(scc []int32, inSCC []bool) []walkEdge {
	var internal []walkEdge
	andEn := ^uint64(0)
	orTaken := uint64(0)
	for _, u := range scc {
		andEn &= g.en[u]
		lo, hi := g.outEdges(u)
		for j := lo; j < hi; j++ {
			if inSCC[g.eto[j]] {
				internal = append(internal, walkEdge{from: u, j: j})
				orTaken |= g.etaken[j]
			}
		}
	}
	if len(internal) == 0 || andEn&^orTaken != 0 {
		return nil
	}
	return g.buildWalk(scc, inSCC, andEn, internal)
}

// buildWalk stitches a concrete closed walk witnessing the fairness of
// an SCC: starting from the component's entry node (smallest id, hence
// shortest stem), it visits one taking edge for each entity enabled
// throughout the component and one disabling node for each entity that
// is not, then returns to the start. Segments are shortest paths inside
// the component, so the walk is compact though not minimal.
func (g *graph) buildWalk(scc []int32, inSCC []bool, andEn uint64, internal []walkEdge) []walkEdge {
	head := scc[0]
	for _, u := range scc {
		if u < head {
			head = u
		}
	}

	// Targets: for each entity, an edge to traverse (taken somewhere in
	// the SCC) or a node to visit (disabled somewhere in the SCC).
	// Entities outside both categories are disabled at every node, so
	// any walk satisfies them. At least one edge target is always
	// present so the walk is a genuine cycle even when no entity
	// constrains it.
	var edgeTargets []walkEdge
	var nodeTargets []int32
	covered := uint64(0)
	for b := 0; b < g.ents.count(); b++ {
		bit := uint64(1) << uint(b)
		if andEn&bit != 0 {
			if covered&bit != 0 {
				continue
			}
			for _, e := range internal {
				if g.etaken[e.j]&bit != 0 {
					edgeTargets = append(edgeTargets, e)
					covered |= g.etaken[e.j]
					break
				}
			}
		} else if g.en[head]&bit != 0 {
			// Enabled at the head but not throughout: route the walk
			// through a node where it is disabled.
			for _, u := range scc {
				if g.en[u]&bit == 0 {
					nodeTargets = append(nodeTargets, u)
					break
				}
			}
		}
	}
	if len(edgeTargets) == 0 {
		edgeTargets = append(edgeTargets, internal[0])
	}

	var walk []walkEdge
	cur := head
	for _, e := range edgeTargets {
		walk = append(walk, g.pathInSCC(cur, e.from, inSCC)...)
		walk = append(walk, e)
		cur = g.eto[e.j]
	}
	for _, u := range nodeTargets {
		walk = append(walk, g.pathInSCC(cur, u, inSCC)...)
		cur = u
	}
	walk = append(walk, g.pathInSCC(cur, head, inSCC)...)
	return walk
}

// pathInSCC returns a shortest edge path from u to v using only nodes
// of the component (empty if u == v). Strong connectivity guarantees
// one exists.
func (g *graph) pathInSCC(u, v int32, inSCC []bool) []walkEdge {
	if u == v {
		return nil
	}
	prev := make(map[int32]walkEdge)
	queue := []int32{u}
	seen := map[int32]bool{u: true}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		lo, hi := g.outEdges(x)
		for j := lo; j < hi; j++ {
			y := g.eto[j]
			if !inSCC[y] || seen[y] {
				continue
			}
			prev[y] = walkEdge{from: x, j: j}
			if y == v {
				var rev []walkEdge
				for at := v; at != u; at = prev[at].from {
					rev = append(rev, prev[at])
				}
				for i, k := 0, len(rev)-1; i < k; i, k = i+1, k-1 {
					rev[i], rev[k] = rev[k], rev[i]
				}
				return rev
			}
			seen[y] = true
			queue = append(queue, y)
		}
	}
	panic("liveness: SCC not strongly connected")
}
