package liveness

import (
	"fmt"
	"strings"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/trace"
)

// Step is one transition of a lasso counterexample: the event taken and
// the state reached.
type Step struct {
	Ev    cimp.Event
	State gcmodel.SysState
}

// Lasso is a lasso-shaped liveness counterexample: a finite stem from
// the initial state to the cycle head, then a cycle that returns to the
// head. The run Stem · Cycle^ω is an infinite execution of the model on
// which the violated property's obligation is outstanding at every
// cycle state, and the cycle is weakly fair — no starved process, no
// procrastinated buffer, no unpolled handshake excuses it.
type Lasso struct {
	Stem  []Step
	Cycle []Step
}

// Head returns the cycle head state (the state the stem ends in, which
// the cycle returns to).
func (l *Lasso) Head(m *gcmodel.Model) gcmodel.SysState {
	if len(l.Stem) > 0 {
		return l.Stem[len(l.Stem)-1].State
	}
	return m.Initial()
}

// lasso materializes a witness walk into concrete states by replaying
// event indices through the transition relation: the stem is the BFS
// parent chain of the walk's first node, the cycle is the walk itself.
// Every replayed state is cross-checked against the hash recorded at
// graph-construction time, so a 64-bit fingerprint collision surfaces
// as an error here rather than as a nonsense trace.
func (g *graph) lasso(walk []walkEdge) (*Lasso, error) {
	head := walk[0].from

	// Stem: event indices root → head along BFS parents.
	var rev []int32 // node ids, head first, excluding the root
	for v := head; g.parent[v] >= 0; v = g.parent[v] {
		rev = append(rev, v)
	}
	cur := g.m.Initial()
	l := &Lasso{}
	for i := len(rev) - 1; i >= 0; i-- {
		v := rev[i]
		st, err := g.step(cur, g.peidx[v], g.hash[v])
		if err != nil {
			return nil, fmt.Errorf("stem: %w", err)
		}
		l.Stem = append(l.Stem, st)
		cur = st.State
	}

	for _, e := range walk {
		v := g.eto[e.j]
		st, err := g.step(cur, g.eeidx[e.j], g.hash[v])
		if err != nil {
			return nil, fmt.Errorf("cycle: %w", err)
		}
		l.Cycle = append(l.Cycle, st)
		cur = st.State
	}
	return l, nil
}

// step replays one recorded transition: it enumerates the successors of
// cur and selects the one at event index eidx, cross-checking its
// fingerprint hash.
func (g *graph) step(cur gcmodel.SysState, eidx int32, wantHash uint64) (Step, error) {
	var out Step
	found := false
	i := int32(-1)
	g.m.Successors(cur, func(ns gcmodel.SysState, ev cimp.Event) {
		i++
		if i == eidx {
			out = Step{Ev: ev, State: ns}
			found = true
		}
	})
	if !found {
		return Step{}, fmt.Errorf("replay: event index %d out of range (%d successors)", eidx, i+1)
	}
	if h := g.m.FingerprintHash(out.State); h != wantHash {
		return Step{}, fmt.Errorf("replay: fingerprint hash mismatch at event index %d (64-bit collision?)", eidx)
	}
	return out, nil
}

// Render formats the lasso for human consumption: the numbered stem,
// then the cycle marked as repeating forever.
func (l *Lasso) Render(m *gcmodel.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lasso: %d-step stem, %d-step cycle\n", len(l.Stem), len(l.Cycle))
	fmt.Fprintf(&b, "  init: %s\n", trace.State(m, m.Initial()))
	for i, st := range l.Stem {
		fmt.Fprintf(&b, "  %4d. %s\n        %s\n", i+1, trace.Event(m, st.Ev), trace.State(m, st.State))
	}
	fmt.Fprintf(&b, "  ---- cycle: the following %d steps repeat forever ----\n", len(l.Cycle))
	for i, st := range l.Cycle {
		fmt.Fprintf(&b, "  %4d. %s\n        %s\n", len(l.Stem)+i+1, trace.Event(m, st.Ev), trace.State(m, st.State))
	}
	return b.String()
}

// VerifyLasso independently replays a lasso through the full, unreduced
// transition relation (the liveness analogue of diffcheck.VerifyReplay):
// each step must match an enumerated successor by process, label and
// fingerprint, and the cycle must return exactly to the cycle head. It
// deliberately shares no state with the detector — only the model's
// Successors — so it re-derives every state from the initial one.
func VerifyLasso(m *gcmodel.Model, l *Lasso) error {
	if l == nil {
		return fmt.Errorf("liveness: nil lasso")
	}
	if len(l.Cycle) == 0 {
		return fmt.Errorf("liveness: lasso has an empty cycle")
	}
	cur := m.Initial()
	replay := func(part string, steps []Step) error {
		for i, want := range steps {
			wantFP := m.Fingerprint(want.State)
			var next gcmodel.SysState
			found := false
			m.Successors(cur, func(ns gcmodel.SysState, ev cimp.Event) {
				if found || ev.Proc != want.Ev.Proc || ev.Label != want.Ev.Label {
					return
				}
				if m.Fingerprint(ns) == wantFP {
					next = ns
					found = true
				}
			})
			if !found {
				return fmt.Errorf("liveness: %s step %d (%v by pid %d) does not match any successor",
					part, i+1, want.Ev.Label, want.Ev.Proc)
			}
			cur = next
		}
		return nil
	}
	if err := replay("stem", l.Stem); err != nil {
		return err
	}
	headFP := m.Fingerprint(cur)
	if err := replay("cycle", l.Cycle); err != nil {
		return err
	}
	if m.Fingerprint(cur) != headFP {
		return fmt.Errorf("liveness: cycle does not return to its head state")
	}
	return nil
}
