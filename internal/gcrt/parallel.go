package gcrt

import (
	"sync"
)

// This file implements the multi-threaded-collector extension the paper
// sketches (§1): "The collector we model runs concurrently with mutator
// threads, but is not in itself parallel. Our model (and implementation)
// could, with some effort, be extended to a multi-threaded collector."
//
// With Options.MarkWorkers > 1, the mark loop's tracing is performed by
// a pool of workers sharing a queue. The design leans on exactly the
// properties the verification establishes for the single-threaded
// collector: marking is a CAS race with one winner (Figure 5), so two
// workers tracing the same object cannot double-add it to a work-list,
// and work-list entries are exclusively owned, so queue items are
// processed exactly once. The handshake structure is untouched — the
// collector control thread still runs the Figure 2 cycle.

// traceAll drains the work queue, tracing children, until no work
// remains; with workers > 1 the tracing is parallel. It returns the
// number of objects scanned.
func (rt *Runtime) traceAll(workers int) int {
	if workers <= 1 {
		return rt.traceSerial()
	}
	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		queue  = rt.drainQueue()
		active = 0
		done   = false
		count  = 0
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []Obj
			for {
				mu.Lock()
				for len(queue) == 0 && !done {
					if active == 0 {
						// No one is working and no work remains: over.
						done = true
						cond.Broadcast()
						break
					}
					cond.Wait()
				}
				if done && len(queue) == 0 {
					mu.Unlock()
					return
				}
				src := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				active++
				mu.Unlock()

				scratch = scratch[:0]
				for f := 0; f < rt.arena.NumFields(); f++ {
					child := rt.arena.LoadField(src, f)
					if child != NilObj {
						rt.mark(child, &scratch)
					}
				}
				rt.stats.scanned.Add(1)

				mu.Lock()
				count++
				queue = append(queue, scratch...)
				active--
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return count
}

// traceSerial is the single-threaded tracing the paper verifies.
func (rt *Runtime) traceSerial() int {
	count := 0
	work := rt.drainQueue()
	var scratch []Obj
	for len(work) > 0 {
		src := work[len(work)-1]
		work = work[:len(work)-1]
		for f := 0; f < rt.arena.NumFields(); f++ {
			child := rt.arena.LoadField(src, f)
			if child == NilObj {
				continue
			}
			scratch = scratch[:0]
			rt.mark(child, &scratch)
			work = append(work, scratch...)
		}
		rt.stats.scanned.Add(1)
		count++
	}
	return count
}
