package gcrt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the multi-threaded-collector extension the paper
// sketches (§1): "The collector we model runs concurrently with mutator
// threads, but is not in itself parallel. Our model (and implementation)
// could, with some effort, be extended to a multi-threaded collector."
//
// With Options.MarkWorkers > 1, the mark loop's tracing is performed by
// a pool of workers, each owning a Chase–Lev work-stealing deque
// (deque.go): a worker scans objects popped from its own deque, pushes
// the greys it discovers locally, and steals from its siblings when it
// runs dry. A shared mutex-protected overflow list absorbs pushes that
// overflow a fixed-capacity deque; workers fall back to it after a
// failed round of steals.
//
// The design leans on exactly the properties the verification
// establishes for the single-threaded collector: marking is a CAS race
// with one winner (Figure 5), so two workers tracing the same object
// cannot double-add it to a work-list, and work-list entries are
// exclusively owned, so deque items are processed exactly once. The
// handshake structure is untouched — the collector control thread still
// runs the Figure 2 cycle.
//
// Termination uses an item-conservation counter: `pending` counts
// objects that have been enqueued (anywhere) but not yet fully scanned.
// A worker increments it before publishing a child and decrements it
// only after the scan of an object completes, so pending can reach zero
// only when every deque and the overflow list are empty and no scan is
// in flight.

// traceDequeCap bounds each worker's deque; overflow spills to a shared
// list. 8192 entries = 32 KiB per worker.
const traceDequeCap = 1 << 13

// traceState is the shared state of one parallel trace.
type traceState struct {
	deques []*wsDeque // gcrt:guard immutable

	ovMu     sync.Mutex // gcrt:guard atomic
	overflow []Obj      // gcrt:guard by(ovMu)

	pending   atomic.Int64 // gcrt:guard atomic
	processed atomic.Int64 // gcrt:guard atomic

	// failed flips when a worker panics, so the siblings stop instead
	// of spinning on a conservation counter that will never drain; the
	// first panic value is kept for traceAll to re-raise.
	failed   atomic.Bool // gcrt:guard atomic
	panicVal any         // gcrt:guard by(ovMu)
}

// noteFailure records a worker panic: first value wins, and the failed
// flag releases the idle loops.
func (st *traceState) noteFailure(r any) {
	st.ovMu.Lock()
	if st.panicVal == nil {
		st.panicVal = r
	}
	st.ovMu.Unlock()
	st.failed.Store(true)
}

// spill pushes v to the shared overflow list.
func (st *traceState) spill(v Obj) {
	st.ovMu.Lock()
	st.overflow = append(st.overflow, v)
	st.ovMu.Unlock()
}

// fromOverflow pops one object from the shared overflow list.
func (st *traceState) fromOverflow() (Obj, bool) {
	st.ovMu.Lock()
	n := len(st.overflow)
	if n == 0 {
		st.ovMu.Unlock()
		return NilObj, false
	}
	v := st.overflow[n-1]
	st.overflow = st.overflow[:n-1]
	st.ovMu.Unlock()
	return v, true
}

// traceAll drains the work queue, tracing children, until no work
// remains; with workers > 1 the tracing is parallel over work-stealing
// deques. It returns the number of objects scanned.
func (rt *Runtime) traceAll(workers int) int {
	if workers <= 1 {
		return rt.traceSerial()
	}
	work := rt.drainQueue()
	if len(work) == 0 {
		return 0
	}
	st := &traceState{deques: make([]*wsDeque, workers)}
	for w := range st.deques {
		st.deques[w] = newWSDeque(traceDequeCap)
	}
	// Seed the deques round-robin before any worker starts; conservation
	// counter first so no worker can observe pending==0 spuriously.
	st.pending.Add(int64(len(work)))
	for i, o := range work {
		if !st.deques[i%workers].push(o) {
			st.spill(o)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// Contain worker panics: without this, one worker dying
			// leaves pending above zero and the siblings spin forever.
			// The panic is re-raised on the collector thread below.
			defer func() {
				if r := recover(); r != nil {
					st.noteFailure(r)
				}
			}()
			rt.traceWorker(st, self)
		}(w)
	}
	wg.Wait()
	if st.failed.Load() {
		st.ovMu.Lock()
		r := st.panicVal
		st.ovMu.Unlock()
		panic(r)
	}
	return int(st.processed.Load())
}

// traceWorker runs one tracer: pop locally, steal on empty, fall back
// to the overflow list, and exit when the conservation counter says the
// whole trace is drained.
func (rt *Runtime) traceWorker(st *traceState, self int) {
	own := st.deques[self]
	nw := len(st.deques)
	var scratch []Obj
	for {
		v, ok := own.pop()
		if !ok {
			// Steal round: start from a neighbor to avoid convoys.
			for i := 1; i < nw && !ok; i++ {
				v, ok = st.deques[(self+i)%nw].steal()
				if ok {
					rt.stats.steals.Add(1)
				}
			}
		}
		if !ok {
			v, ok = st.fromOverflow()
		}
		if !ok {
			if st.pending.Load() == 0 || st.failed.Load() {
				return
			}
			runtime.Gosched()
			continue
		}

		scratch = scratch[:0]
		for f := 0; f < rt.arena.NumFields(); f++ {
			child := rt.arena.LoadField(v, f)
			if child != NilObj {
				rt.mark(child, &scratch)
			}
		}
		if len(scratch) > 0 {
			st.pending.Add(int64(len(scratch)))
			for _, c := range scratch {
				if !own.push(c) {
					st.spill(c)
				}
			}
		}
		rt.stats.scanned.Add(1)
		st.processed.Add(1)
		st.pending.Add(-1)
	}
}

// traceSerial is the single-threaded tracing the paper verifies.
func (rt *Runtime) traceSerial() int {
	count := 0
	work := rt.drainQueue()
	var scratch []Obj
	for len(work) > 0 {
		src := work[len(work)-1]
		work = work[:len(work)-1]
		for f := 0; f < rt.arena.NumFields(); f++ {
			child := rt.arena.LoadField(src, f)
			if child == NilObj {
				continue
			}
			scratch = scratch[:0]
			rt.mark(child, &scratch)
			work = append(work, scratch...)
		}
		rt.stats.scanned.Add(1)
		count++
	}
	return count
}
