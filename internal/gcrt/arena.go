// Package gcrt is an executable implementation of the verified collector
// kernel: an on-the-fly, concurrent mark-sweep garbage collector in the
// style of Schism's core (paper §2), running real mutator goroutines
// against a simulated heap arena.
//
// The arena substitutes for the raw memory Schism manages: Go's own
// garbage collector owns the host process, so this collector manages
// object slots inside a pre-allocated arena instead — the two collectors
// cannot interfere, while every algorithmically relevant memory access
// (mark flags, control variables, reference fields) goes through
// sync/atomic operations, which on x86 compile to exactly the plain
// MOV / locked CMPXCHG discipline the paper models: plain stores are
// TSO-buffered, the marking CAS is a locked instruction, and the
// handshake fences are sequentially consistent.
//
// The kernel reproduces, at runtime scale, the structures verified in
// the model (package gcmodel): the mark-sense flip (f_M), allocation
// color (f_A), the four-round initialization handshake sequence, ragged
// root-marking and mark-loop-termination handshakes, the Figure 5 mark
// with its CAS-only-on-race fast path, and the Figure 6 mutator
// operations with deletion and insertion barriers.
//
// On top of the verified protocol, the allocator and tracer are built
// for scale: the free list is sharded (per-shard locks), mutators
// allocate from private TLAB-style reservations (tlab.go), barrier
// targets batch in per-mutator buffers drained at handshakes
// (barrier.go), and parallel tracing runs over per-worker work-stealing
// deques (deque.go, parallel.go). None of these change the protocol:
// the phase ladder, the handshake discipline and the marking CAS are
// exactly the verified ones.
package gcrt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Obj is an object identifier: a slot index in the arena, or NilObj.
type Obj int32

// NilObj is the NULL reference.
const NilObj Obj = -1

// Header bits.
const (
	hdrFlag  uint32 = 1 << 0 // the mark flag; "marked" iff equal to f_M
	hdrAlloc uint32 = 1 << 1 // the slot holds a live object
)

// freeShard is one shard of the free list. Padding keeps two shards'
// locks off the same cache line under contention.
type freeShard struct {
	mu   sync.Mutex // gcrt:guard atomic
	free []Obj      // gcrt:guard by(mu)
	_    [32]byte
}

// Arena is the simulated heap: a fixed pool of object slots, each with a
// header word (mark flag + allocated bit) and a fixed number of
// reference fields. Free slots live on sharded free lists: slot i
// belongs to shard i mod nshards, so concurrent allocators and the
// sweep contend on different locks.
type Arena struct {
	nslots  int             // gcrt:guard immutable
	nfields int             // gcrt:guard immutable
	headers []atomic.Uint32 // gcrt:guard immutable
	// fields holds slot i's references at [i*nfields, (i+1)*nfields).
	// gcrt:guard immutable
	fields []atomic.Int32

	shards []freeShard // gcrt:guard immutable
	// smask is len(shards)-1; len is a power of two.
	// gcrt:guard immutable
	smask uint32

	// Faults counts accesses to unallocated slots — the observable
	// consequence of a lost object. Zero in the verified configuration;
	// non-zero under ablation.
	// gcrt:guard atomic
	Faults atomic.Int64
}

// NewArena creates an arena of nslots objects with nfields reference
// fields each, with the free list sharded by GOMAXPROCS.
func NewArena(nslots, nfields int) *Arena {
	return NewArenaSharded(nslots, nfields, 0)
}

// NewArenaSharded creates an arena with an explicit free-list shard
// count (rounded up to a power of two; 0 picks a default from
// GOMAXPROCS, 1 reproduces the seed's single global free list).
func NewArenaSharded(nslots, nfields, nshards int) *Arena {
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
		if nshards > 64 {
			nshards = 64
		}
	}
	pow := 1
	for pow < nshards {
		pow <<= 1
	}
	nshards = pow
	a := &Arena{
		nslots:  nslots,
		nfields: nfields,
		headers: make([]atomic.Uint32, nslots),
		fields:  make([]atomic.Int32, nslots*nfields),
		shards:  make([]freeShard, nshards),
		smask:   uint32(nshards - 1),
	}
	for s := range a.shards {
		a.shards[s].free = make([]Obj, 0, nslots/nshards+1)
	}
	// High slots first within each shard, matching the seed's LIFO order.
	for i := nslots - 1; i >= 0; i-- {
		s := uint32(i) & a.smask
		a.shards[s].free = append(a.shards[s].free, Obj(i))
	}
	return a
}

// NumSlots reports the arena capacity.
func (a *Arena) NumSlots() int { return a.nslots }

// NumFields reports the per-object field count.
func (a *Arena) NumFields() int { return a.nfields }

// NumShards reports the free-list shard count.
func (a *Arena) NumShards() int { return len(a.shards) }

// Allocated reports whether the slot holds a live object.
func (a *Arena) Allocated(o Obj) bool {
	return o != NilObj && a.headers[o].Load()&hdrAlloc != 0
}

// fault records a touch of a dead slot (a lost-object symptom) and
// returns NilObj for the caller to propagate.
func (a *Arena) fault() Obj {
	a.Faults.Add(1)
	return NilObj
}

// LoadField reads field f of object o (a plain x86 load).
func (a *Arena) LoadField(o Obj, f int) Obj {
	if !a.Allocated(o) {
		return a.fault()
	}
	return Obj(a.fields[int(o)*a.nfields+f].Load())
}

// peekField reads field f of object o without the allocated check and
// without recording a fault. The invariant oracle uses it to inspect
// edges of objects it has already validated.
func (a *Arena) peekField(o Obj, f int) Obj {
	return Obj(a.fields[int(o)*a.nfields+f].Load())
}

// StoreField writes field f of object o (a plain x86 store). Callers
// must apply the write barriers first; use Mutator.Store.
func (a *Arena) StoreField(o Obj, f int, v Obj) {
	if !a.Allocated(o) {
		a.fault()
		return
	}
	a.fields[int(o)*a.nfields+f].Store(int32(v))
}

// flag reads the raw mark flag of o.
func (a *Arena) flag(o Obj) bool {
	return a.headers[o].Load()&hdrFlag != 0
}

// casFlag attempts to set the mark flag of o from old to new, preserving
// the allocated bit: the single locked CMPXCHG of Figure 5. It fails only
// if another thread changed the header first.
func (a *Arena) casFlag(o Obj, old, new bool) bool {
	for {
		h := a.headers[o].Load()
		if h&hdrAlloc == 0 {
			a.fault()
			return false
		}
		cur := h&hdrFlag != 0
		if cur != old {
			return false // some other thread won the race
		}
		nh := h &^ hdrFlag
		if new {
			nh |= hdrFlag
		}
		if a.headers[o].CompareAndSwap(h, nh) {
			return true
		}
	}
}

// install writes a live header with NULL fields onto a reserved slot.
// The header store publishes the object; on x86-TSO the initializing
// field stores drain before any later store that could publish the
// reference, which is why no fence is needed — the paper's §4 argument.
func (a *Arena) install(o Obj, flag bool) {
	base := int(o) * a.nfields
	for i := 0; i < a.nfields; i++ {
		a.fields[base+i].Store(int32(NilObj))
	}
	h := hdrAlloc
	if flag {
		h |= hdrFlag
	}
	a.headers[o].Store(h)
}

// alloc pops a free slot from some shard, installs a live object with
// the given flag and NULL fields, and returns it; NilObj when every
// shard is exhausted. This is the seed's global-allocation path; the
// TLAB path (tlab.go) batches the shard traffic instead.
func (a *Arena) alloc(flag bool) Obj {
	for s := range a.shards {
		sh := &a.shards[s]
		sh.mu.Lock()
		if n := len(sh.free); n > 0 {
			o := sh.free[n-1]
			sh.free = sh.free[:n-1]
			sh.mu.Unlock()
			a.install(o, flag)
			return o
		}
		sh.mu.Unlock()
	}
	return NilObj
}

// reserveBatch moves up to n free slots into dst, preferring the given
// shard and spilling to the others only when it runs dry. One lock
// acquisition per visited shard; reserved slots keep a clear header, so
// they are invisible to the sweep and to LiveCount.
func (a *Arena) reserveBatch(dst []Obj, prefer, n int) []Obj {
	ns := len(a.shards)
	for i := 0; i < ns && len(dst) < n; i++ {
		sh := &a.shards[(prefer+i)%ns]
		sh.mu.Lock()
		for len(dst) < n && len(sh.free) > 0 {
			o := sh.free[len(sh.free)-1]
			sh.free = sh.free[:len(sh.free)-1]
			dst = append(dst, o)
		}
		sh.mu.Unlock()
	}
	return dst
}

// returnBatch gives reserved slots back to their home shards.
func (a *Arena) returnBatch(objs []Obj) {
	if len(objs) == 0 {
		return
	}
	// Group by shard to take each lock once.
	for s := range a.shards {
		sh := &a.shards[s]
		first := true
		for _, o := range objs {
			if uint32(o)&a.smask != uint32(s) {
				continue
			}
			if first {
				sh.mu.Lock()
				first = false
			}
			sh.free = append(sh.free, o)
		}
		if !first {
			sh.mu.Unlock()
		}
	}
}

// release returns a single slot to its shard's free list (sweep only).
func (a *Arena) release(o Obj) {
	a.headers[o].Store(0)
	sh := &a.shards[uint32(o)&a.smask]
	sh.mu.Lock()
	sh.free = append(sh.free, o)
	sh.mu.Unlock()
}

// releaseBatch clears the headers of the given slots and returns them to
// their shards, taking each shard lock at most once. The sweep uses it
// so reclamation costs one lock per shard, not one per object.
func (a *Arena) releaseBatch(objs []Obj) {
	for _, o := range objs {
		a.headers[o].Store(0)
	}
	a.returnBatch(objs)
}

// SetFlagForBenchmark forces o's raw mark flag; benchmarks only.
func (a *Arena) SetFlagForBenchmark(o Obj, flag bool) {
	h := a.headers[o].Load() &^ hdrFlag
	if flag {
		h |= hdrFlag
	}
	a.headers[o].Store(h)
}

// WhitenForBenchmark resets o's mark flag to the unmarked sense (the
// opposite of fM). It exists solely so benchmarks can re-measure the
// marking CAS on the same object; it has no legitimate collector use.
func (a *Arena) WhitenForBenchmark(o Obj, fM bool) {
	h := a.headers[o].Load() &^ hdrFlag
	if !fM {
		h |= hdrFlag
	}
	a.headers[o].Store(h)
}

// LiveCount counts allocated slots (O(n); diagnostics and tests).
func (a *Arena) LiveCount() int {
	n := 0
	for i := range a.headers {
		if a.headers[i].Load()&hdrAlloc != 0 {
			n++
		}
	}
	return n
}

// FreeCount reports the total free-list length across shards.
func (a *Arena) FreeCount() int {
	n := 0
	for s := range a.shards {
		sh := &a.shards[s]
		sh.mu.Lock()
		n += len(sh.free)
		sh.mu.Unlock()
	}
	return n
}

func (a *Arena) String() string {
	return fmt.Sprintf("arena{slots=%d fields=%d shards=%d live=%d}",
		a.nslots, a.nfields, len(a.shards), a.LiveCount())
}
