// Package gcrt is an executable implementation of the verified collector
// kernel: an on-the-fly, concurrent mark-sweep garbage collector in the
// style of Schism's core (paper §2), running real mutator goroutines
// against a simulated heap arena.
//
// The arena substitutes for the raw memory Schism manages: Go's own
// garbage collector owns the host process, so this collector manages
// object slots inside a pre-allocated arena instead — the two collectors
// cannot interfere, while every algorithmically relevant memory access
// (mark flags, control variables, reference fields) goes through
// sync/atomic operations, which on x86 compile to exactly the plain
// MOV / locked CMPXCHG discipline the paper models: plain stores are
// TSO-buffered, the marking CAS is a locked instruction, and the
// handshake fences are sequentially consistent.
//
// The kernel reproduces, at runtime scale, the structures verified in
// the model (package gcmodel): the mark-sense flip (f_M), allocation
// color (f_A), the four-round initialization handshake sequence, ragged
// root-marking and mark-loop-termination handshakes, the Figure 5 mark
// with its CAS-only-on-race fast path, and the Figure 6 mutator
// operations with deletion and insertion barriers.
package gcrt

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Obj is an object identifier: a slot index in the arena, or NilObj.
type Obj int32

// NilObj is the NULL reference.
const NilObj Obj = -1

// Header bits.
const (
	hdrFlag  uint32 = 1 << 0 // the mark flag; "marked" iff equal to f_M
	hdrAlloc uint32 = 1 << 1 // the slot holds a live object
)

// Arena is the simulated heap: a fixed pool of object slots, each with a
// header word (mark flag + allocated bit) and a fixed number of
// reference fields.
type Arena struct {
	nslots  int
	nfields int
	headers []atomic.Uint32
	fields  []atomic.Int32 // slot i's fields at [i*nfields, (i+1)*nfields)

	freeMu sync.Mutex
	free   []Obj

	// Faults counts accesses to unallocated slots — the observable
	// consequence of a lost object. Zero in the verified configuration;
	// non-zero under ablation.
	Faults atomic.Int64
}

// NewArena creates an arena of nslots objects with nfields reference
// fields each.
func NewArena(nslots, nfields int) *Arena {
	a := &Arena{
		nslots:  nslots,
		nfields: nfields,
		headers: make([]atomic.Uint32, nslots),
		fields:  make([]atomic.Int32, nslots*nfields),
		free:    make([]Obj, 0, nslots),
	}
	for i := nslots - 1; i >= 0; i-- {
		a.free = append(a.free, Obj(i))
	}
	return a
}

// NumSlots reports the arena capacity.
func (a *Arena) NumSlots() int { return a.nslots }

// NumFields reports the per-object field count.
func (a *Arena) NumFields() int { return a.nfields }

// Allocated reports whether the slot holds a live object.
func (a *Arena) Allocated(o Obj) bool {
	return o != NilObj && a.headers[o].Load()&hdrAlloc != 0
}

// fault records a touch of a dead slot (a lost-object symptom) and
// returns NilObj for the caller to propagate.
func (a *Arena) fault() Obj {
	a.Faults.Add(1)
	return NilObj
}

// LoadField reads field f of object o (a plain x86 load).
func (a *Arena) LoadField(o Obj, f int) Obj {
	if !a.Allocated(o) {
		return a.fault()
	}
	return Obj(a.fields[int(o)*a.nfields+f].Load())
}

// StoreField writes field f of object o (a plain x86 store). Callers
// must apply the write barriers first; use Mutator.Store.
func (a *Arena) StoreField(o Obj, f int, v Obj) {
	if !a.Allocated(o) {
		a.fault()
		return
	}
	a.fields[int(o)*a.nfields+f].Store(int32(v))
}

// flag reads the raw mark flag of o.
func (a *Arena) flag(o Obj) bool {
	return a.headers[o].Load()&hdrFlag != 0
}

// casFlag attempts to set the mark flag of o from old to new, preserving
// the allocated bit: the single locked CMPXCHG of Figure 5. It fails only
// if another thread changed the header first.
func (a *Arena) casFlag(o Obj, old, new bool) bool {
	for {
		h := a.headers[o].Load()
		if h&hdrAlloc == 0 {
			a.fault()
			return false
		}
		cur := h&hdrFlag != 0
		if cur != old {
			return false // some other thread won the race
		}
		nh := h &^ hdrFlag
		if new {
			nh |= hdrFlag
		}
		if a.headers[o].CompareAndSwap(h, nh) {
			return true
		}
	}
}

// alloc pops a free slot, installs a live object with the given flag and
// NULL fields, and returns it; NilObj when the arena is exhausted.
func (a *Arena) alloc(flag bool) Obj {
	a.freeMu.Lock()
	if len(a.free) == 0 {
		a.freeMu.Unlock()
		return NilObj
	}
	o := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.freeMu.Unlock()

	base := int(o) * a.nfields
	for i := 0; i < a.nfields; i++ {
		a.fields[base+i].Store(int32(NilObj))
	}
	h := hdrAlloc
	if flag {
		h |= hdrFlag
	}
	a.headers[o].Store(h)
	return o
}

// release returns a slot to the free list (sweep only).
func (a *Arena) release(o Obj) {
	a.headers[o].Store(0)
	a.freeMu.Lock()
	a.free = append(a.free, o)
	a.freeMu.Unlock()
}

// SetFlagForBenchmark forces o's raw mark flag; benchmarks only.
func (a *Arena) SetFlagForBenchmark(o Obj, flag bool) {
	h := a.headers[o].Load() &^ hdrFlag
	if flag {
		h |= hdrFlag
	}
	a.headers[o].Store(h)
}

// WhitenForBenchmark resets o's mark flag to the unmarked sense (the
// opposite of fM). It exists solely so benchmarks can re-measure the
// marking CAS on the same object; it has no legitimate collector use.
func (a *Arena) WhitenForBenchmark(o Obj, fM bool) {
	h := a.headers[o].Load() &^ hdrFlag
	if !fM {
		h |= hdrFlag
	}
	a.headers[o].Store(h)
}

// LiveCount counts allocated slots (O(n); diagnostics and tests).
func (a *Arena) LiveCount() int {
	n := 0
	for i := range a.headers {
		if a.headers[i].Load()&hdrAlloc != 0 {
			n++
		}
	}
	return n
}

// FreeCount reports the free-list length.
func (a *Arena) FreeCount() int {
	a.freeMu.Lock()
	defer a.freeMu.Unlock()
	return len(a.free)
}

func (a *Arena) String() string {
	return fmt.Sprintf("arena{slots=%d fields=%d live=%d}", a.nslots, a.nfields, a.LiveCount())
}
