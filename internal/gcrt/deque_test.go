package gcrt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The deque tests exercise the Chase–Lev invariant directly: every
// pushed element is taken exactly once, by the owner's pop or by
// exactly one successful steal, under concurrent thieves and across
// GOMAXPROCS settings. Run with -race.

func TestDequeOwnerLIFO(t *testing.T) {
	d := newWSDeque(8)
	for i := 1; i <= 5; i++ {
		if !d.push(Obj(i)) {
			t.Fatalf("push %d rejected on non-full deque", i)
		}
	}
	for want := 5; want >= 1; want-- {
		v, ok := d.pop()
		if !ok || v != Obj(want) {
			t.Fatalf("pop = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if v, ok := d.pop(); ok {
		t.Fatalf("pop on empty deque returned %d", v)
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newWSDeque(8)
	for i := 1; i <= 5; i++ {
		d.push(Obj(i))
	}
	for want := 1; want <= 5; want++ {
		v, ok := d.steal()
		if !ok || v != Obj(want) {
			t.Fatalf("steal = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if v, ok := d.steal(); ok {
		t.Fatalf("steal on empty deque returned %d", v)
	}
}

func TestDequeFullRejectsPush(t *testing.T) {
	d := newWSDeque(4)
	for i := 0; i < 4; i++ {
		if !d.push(Obj(i + 1)) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if d.push(Obj(99)) {
		t.Fatal("push accepted on a full deque")
	}
	// Freeing one slot (from the top, as a thief would) re-enables push.
	if _, ok := d.steal(); !ok {
		t.Fatal("steal failed on full deque")
	}
	if !d.push(Obj(99)) {
		t.Fatal("push rejected after a steal freed a slot")
	}
}

// TestDequeConservation: one owner interleaves pushes and pops while
// several thieves steal; every element must be consumed exactly once.
func TestDequeConservation(t *testing.T) {
	for _, procs := range []int{2, 4, 8} {
		procs := procs
		t.Run(formatProcs(procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

			const total = 20000
			const thieves = 3
			d := newWSDeque(256)
			var taken [total + 1]atomic.Int32
			var consumed atomic.Int64
			var done atomic.Bool

			take := func(v Obj) {
				if taken[v].Add(1) != 1 {
					t.Errorf("element %d taken twice", v)
				}
				consumed.Add(1)
			}

			var wg sync.WaitGroup
			for i := 0; i < thieves; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !done.Load() || d.size() > 0 {
						if v, ok := d.steal(); ok {
							take(v)
						} else {
							runtime.Gosched()
						}
					}
				}()
			}

			// Owner: push everything, popping whenever the deque fills,
			// and drain the remainder at the end.
			next := Obj(1)
			for next <= total {
				if d.push(next) {
					next++
					continue
				}
				if v, ok := d.pop(); ok {
					take(v)
				}
			}
			for {
				v, ok := d.pop()
				if !ok {
					if d.size() == 0 {
						break
					}
					continue // lost the last-element race to a thief
				}
				take(v)
			}
			done.Store(true)
			wg.Wait()

			if got := consumed.Load(); got != total {
				t.Fatalf("consumed %d of %d elements", got, total)
			}
			for v := 1; v <= total; v++ {
				if taken[v].Load() != 1 {
					t.Fatalf("element %d taken %d times", v, taken[v].Load())
				}
			}
		})
	}
}

// TestDequeEmptinessLinearizes: when pop reports empty, a steal that
// began afterwards must not produce an element the owner also got —
// i.e. the single remaining element goes to exactly one side.
func TestDequeLastElementRace(t *testing.T) {
	const rounds = 5000
	d := newWSDeque(4)
	for r := 0; r < rounds; r++ {
		d.push(Obj(r + 1))
		var ownerGot, thiefGot atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, ok := d.pop(); ok {
				ownerGot.Store(true)
			}
		}()
		go func() {
			defer wg.Done()
			if _, ok := d.steal(); ok {
				thiefGot.Store(true)
			}
		}()
		wg.Wait()
		if ownerGot.Load() == thiefGot.Load() {
			t.Fatalf("round %d: element taken by both or neither (owner=%v thief=%v)",
				r, ownerGot.Load(), thiefGot.Load())
		}
		if d.size() != 0 {
			t.Fatalf("round %d: deque not empty after the race", r)
		}
	}
}

func formatProcs(p int) string {
	return "procs=" + itoa(p)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
