package gcrt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is the collector's control state (paper Figure 2).
type Phase int32

const (
	PhIdle Phase = iota
	PhInit
	PhMark
	PhSweep
)

func (p Phase) String() string {
	switch p {
	case PhIdle:
		return "Idle"
	case PhInit:
		return "Init"
	case PhMark:
		return "Mark"
	case PhSweep:
		return "Sweep"
	}
	return fmt.Sprintf("Phase(%d)", int32(p))
}

// HSType is the handshake type (§2.2). HSValidate is not part of the
// paper's protocol: it is the online invariant oracle's audit round
// (oracle.go), a no-op for the collector state machine.
type HSType int32

const (
	HSNoop HSType = iota
	HSGetRoots
	HSGetWork
	HSValidate
)

// Options configures the runtime kernel, including the ablation switches
// used by the necessity experiments — never disable barriers in real use.
type Options struct {
	// Slots and Fields size the arena.
	Slots, Fields int
	// Mutators is the number of registered mutator threads.
	Mutators int

	// NoDeletionBarrier and NoInsertionBarrier reproduce the E11
	// ablations at runtime scale: expect lost objects (arena faults).
	NoDeletionBarrier  bool
	NoInsertionBarrier bool
	// AllocWhite allocates with the unmarked sense in every phase (E11).
	AllocWhite bool

	// AllocPoolSize sets the per-mutator allocation pool size used by
	// AllocPooled (0 picks a default of 16). See pool.go.
	AllocPoolSize int
	// MarkWorkers sets the number of tracing workers in the mark loop
	// (0 or 1 = single-threaded, the configuration the paper verifies;
	// >1 exercises the multi-threaded-collector extension sketched in
	// §1 over work-stealing deques). Marking is CAS-idempotent, so
	// workers race safely.
	MarkWorkers int

	// ArenaShards sets the free-list shard count (rounded up to a power
	// of two; 0 derives it from GOMAXPROCS, 1 reproduces the seed's
	// single global free list).
	ArenaShards int
	// TLABSize sets the per-mutator allocation-cache batch reserved per
	// refill (0 picks a default of 64). See tlab.go.
	TLABSize int
	// LegacyAlloc disables the TLAB path: Alloc takes a shared free-list
	// lock per allocation, the seed's behavior. Baseline benchmarks
	// only.
	LegacyAlloc bool
	// BarrierBuffer sets the batched write-barrier buffer capacity
	// (0 picks a default of 64; negative disables buffering so barrier
	// targets are marked immediately, the paper figures' literal
	// instruction order). See barrier.go.
	BarrierBuffer int
}

// Runtime is the collector kernel: shared control state, the arena, the
// handshake mailboxes, and the collector's work queue.
type Runtime struct {
	opt   Options // gcrt:guard immutable
	arena *Arena  // gcrt:guard immutable

	// Control variables; shared with mutators and read racily by design
	// (§2.4): the write barriers tolerate stale values.
	fM    atomic.Bool  // gcrt:guard atomic
	fA    atomic.Bool  // gcrt:guard atomic
	phase atomic.Int32 // gcrt:guard atomic

	// Handshake state. hsRound is touched only by the collector
	// goroutine; mutators see rounds through their own mailboxes.
	hsType  atomic.Int32 // gcrt:guard atomic
	hsRound int64        // gcrt:guard owner(collector)
	muts    []*Mutator   // gcrt:guard immutable

	// stw is the world-stop protocol state used by the stop-the-world
	// baseline (stw.go).
	stw atomic.Int32 // gcrt:guard atomic

	// The collector's work queue; mutators transfer their private
	// work-lists here when completing get-roots/get-work handshakes.
	// Schism transfers work-lists with wait-free list splicing; a mutex
	// is contention-equivalent at handshake granularity and keeps the
	// kernel readable. (Tracing itself runs over work-stealing deques,
	// parallel.go; this queue only changes hands at handshakes.)
	wqMu sync.Mutex // gcrt:guard atomic
	wq   []Obj      // gcrt:guard by(wqMu)

	// oracle, when non-nil, runs sampled online invariant checks
	// against the live arena (oracle.go).
	// gcrt:guard immutable
	oracle *Oracle

	// sweepScratch carries freed slots between sweep and batched
	// release; collector goroutine only.
	// gcrt:guard owner(collector)
	sweepScratch []Obj

	stats Stats // gcrt:guard immutable
}

// New creates a runtime and its mutator handles.
func New(opt Options) *Runtime {
	if opt.Slots <= 0 || opt.Fields <= 0 || opt.Mutators <= 0 {
		panic("gcrt: Slots, Fields and Mutators must be positive")
	}
	rt := &Runtime{
		opt:   opt,
		arena: NewArenaSharded(opt.Slots, opt.Fields, opt.ArenaShards),
	}
	for i := 0; i < opt.Mutators; i++ {
		m := &Mutator{rt: rt, id: i}
		m.bcap = rt.barrierCap()
		rt.muts = append(rt.muts, m)
	}
	return rt
}

// Arena exposes the heap arena (diagnostics and tests).
func (rt *Runtime) Arena() *Arena { return rt.arena }

// Mutator returns the i-th mutator handle. Each handle must be used from
// a single goroutine.
func (rt *Runtime) Mutator(i int) *Mutator { return rt.muts[i] }

// NumMutators reports the number of registered mutators.
func (rt *Runtime) NumMutators() int { return len(rt.muts) }

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() StatsSnapshot { return rt.stats.snapshot() }

// Phase reads the collector phase (racy, as mutators do).
func (rt *Runtime) Phase() Phase { return Phase(rt.phase.Load()) }

// FM reads the current mark sense.
func (rt *Runtime) FM() bool { return rt.fM.Load() }

// transfer splices a private work-list into the collector's queue.
func (rt *Runtime) transfer(wl []Obj) {
	if len(wl) == 0 {
		return
	}
	rt.wqMu.Lock()
	rt.wq = append(rt.wq, wl...)
	rt.wqMu.Unlock()
}

// drainQueue removes and returns the whole work queue.
func (rt *Runtime) drainQueue() []Obj {
	rt.wqMu.Lock()
	wq := rt.wq
	rt.wq = nil
	rt.wqMu.Unlock()
	return wq
}

// handshake performs one ragged round of soft handshakes (Figure 4): set
// the type, publish a new round number to every mutator, and wait until
// all have acknowledged at a GC-safe point. The atomic stores/loads
// provide the paper's fence discipline (store fence at initiation, load
// fence at collection).
//
// The wait spins on each mutator's acknowledgement counter — a read of
// a line the mutator writes once per round — and takes the park lock
// only when the mutator actually looks parked, so running mutators are
// never serialized against the collector's polling (the seed re-locked
// parkMu on every spin iteration, measurable contention at high mutator
// counts).
func (rt *Runtime) handshake(t HSType) {
	start := time.Now()
	rt.hsRound++
	round := rt.hsRound
	rt.hsType.Store(int32(t))
	for _, m := range rt.muts {
		m.hsWanted.Store(round)
	}
	for _, m := range rt.muts {
		spin := 0
		for m.hsAcked.Load() < round {
			if m.parked.Load() {
				// A parked mutator sits at a permanent safe point; the
				// collector performs its handshake work on its behalf
				// (Schism treats blocked threads the same way). The
				// park lock excludes Unpark while the collector
				// touches the mutator's roots, buffer and work-list.
				m.parkMu.Lock()
				if m.parked.Load() && m.hsAcked.Load() < round {
					rt.collectorSideHandshake(m, t)
					m.hsAcked.Store(round)
					m.served.Add(1)
				}
				m.parkMu.Unlock()
			}
			spin++
			if spin%64 == 0 {
				time.Sleep(10 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
	}
	rt.stats.handshakes.Add(1)
	rt.stats.recordHandshake(time.Since(start))
	if t == HSGetRoots {
		rt.stats.rootsRounds.Add(1)
	}
}

// collectorSideHandshake performs m's handshake work while m is parked.
// The caller holds m.parkMu, so Unpark (and hence any mutator activity)
// is excluded until the work completes. Like the mutator-side service,
// it starts by draining the barrier buffer.
func (rt *Runtime) collectorSideHandshake(m *Mutator, t HSType) {
	m.flushBarriers()
	switch t {
	case HSGetRoots:
		for _, r := range m.roots {
			rt.mark(r, &m.wl)
		}
		rt.transfer(m.wl)
		m.wl = m.wl[:0]
	case HSGetWork:
		rt.transfer(m.wl)
		m.wl = m.wl[:0]
	case HSValidate:
		if rt.oracle != nil {
			rt.oracle.validateMutator(m)
		}
	}
}

// mark is Figure 5: test the flag against the expected (unmarked) sense,
// and only then attempt the CAS; the winner takes the object grey by
// appending it to the work-list wl.
func (rt *Runtime) mark(ref Obj, wl *[]Obj) {
	if ref == NilObj {
		return
	}
	fM := rt.fM.Load()
	expected := !fM
	if rt.arena.Allocated(ref) && rt.arena.flag(ref) == expected {
		if Phase(rt.phase.Load()) != PhIdle {
			rt.stats.markCAS.Add(1)
			if rt.arena.casFlag(ref, expected, fM) {
				*wl = append(*wl, ref) // we win: ref is grey
				rt.stats.marked.Add(1)
			}
		}
	} else {
		rt.stats.markFast.Add(1)
	}
}

// sweep releases every object still at the unmarked sense, batching the
// free-list traffic per shard, and returns the number freed.
func (rt *Runtime) sweep() int {
	fM := rt.fM.Load()
	freed := rt.sweepScratch[:0]
	for i := 0; i < rt.arena.NumSlots(); i++ {
		o := Obj(i)
		h := rt.arena.headers[o].Load()
		if h&hdrAlloc != 0 && (h&hdrFlag != 0) != fM {
			freed = append(freed, o)
		}
	}
	rt.arena.releaseBatch(freed)
	rt.sweepScratch = freed[:0]
	return len(freed)
}

// Collect runs one full collection cycle (Figure 2) and returns the
// number of objects freed. It must be called from a single collector
// goroutine.
func (rt *Runtime) Collect() int {
	cycleStart := time.Now()

	// Lines 3–4: everyone knows the collector is idle; heap is black.
	rt.handshake(HSNoop)
	// Line 5: flip the sense of the marks; heap becomes white.
	rt.fM.Store(!rt.fM.Load())
	rt.handshake(HSNoop)
	// Line 8: enable write barriers.
	rt.phase.Store(int32(PhInit))
	rt.handshake(HSNoop)
	// Lines 11–12: marking begins; allocate black.
	rt.phase.Store(int32(PhMark))
	if !rt.opt.AllocWhite {
		rt.fA.Store(rt.fM.Load())
	}
	rt.handshake(HSNoop)

	// Lines 15–20: snapshot the mutator roots.
	rt.handshake(HSGetRoots)

	// Lines 24–34: trace until no grey references remain anywhere; the
	// tracing itself runs on Options.MarkWorkers workers (parallel.go).
	for {
		if rt.traceAll(rt.opt.MarkWorkers) == 0 {
			break
		}
		// Lines 31–34: poll the mutators for barrier-shaded greys.
		rt.handshake(HSGetWork)
	}

	// Lines 35–45: sweep all unmarked objects.
	rt.phase.Store(int32(PhSweep))
	freed := rt.sweep()
	// Line 46.
	rt.phase.Store(int32(PhIdle))

	rt.stats.cycles.Add(1)
	rt.stats.freed.Add(int64(freed))
	rt.stats.cycleNanos.Add(time.Since(cycleStart).Nanoseconds())
	return freed
}
