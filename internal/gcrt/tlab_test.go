package gcrt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TLAB tests: batch reservation, exhaustion across competing caches,
// release-on-park, and the invariant that reserved-but-unallocated
// slots stay invisible to LiveCount and the sweep. Run with -race.

func TestTLABRefillBatches(t *testing.T) {
	rt := New(Options{Slots: 256, Fields: 1, Mutators: 1, TLABSize: 16})
	m := rt.Mutator(0)

	if m.TLABSize() != 0 {
		t.Fatalf("fresh mutator holds %d reserved slots", m.TLABSize())
	}
	m.Alloc()
	if got := m.TLABSize(); got != 15 {
		t.Fatalf("after first alloc TLAB holds %d slots, want 15", got)
	}
	s := rt.Stats()
	if s.TLABRefills != 1 {
		t.Fatalf("refills = %d, want 1", s.TLABRefills)
	}
	// The next 15 allocations are lock-free from the cache: no refill.
	for i := 0; i < 15; i++ {
		m.Alloc()
	}
	if got := rt.Stats().TLABRefills; got != 1 {
		t.Fatalf("refills after draining cache = %d, want 1", got)
	}
	m.Alloc() // 17th allocation triggers the second batch
	if got := rt.Stats().TLABRefills; got != 2 {
		t.Fatalf("refills = %d, want 2", got)
	}
}

func TestTLABReservedSlotsInvisibleToSweep(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 1, TLABSize: 32})
	m := rt.Mutator(0)
	m.Alloc() // reserves 32, allocates 1

	if got := rt.Arena().LiveCount(); got != 1 {
		t.Fatalf("LiveCount = %d, want 1 (reserved slots must not count)", got)
	}
	// A collection must not free (or corrupt) the 31 reserved slots:
	// they have clear headers, so the sweep skips them, and afterwards
	// they are still allocatable.
	collectWithMutators(rt, m)
	for i := 0; i < 31; i++ {
		if m.Alloc() < 0 {
			t.Fatalf("reserved slot %d lost after collection", i)
		}
	}
}

func TestTLABExhaustionAndRecovery(t *testing.T) {
	// Two mutators, arena smaller than two full TLABs: reservation must
	// spill across shards and exhaust cleanly, and ReturnTLAB must make
	// the hoarded slots allocatable by the other mutator.
	rt := New(Options{Slots: 48, Fields: 1, Mutators: 2, TLABSize: 32})
	m0, m1 := rt.Mutator(0), rt.Mutator(1)

	m0.Alloc() // m0 reserves 32
	m1.Alloc() // m1 reserves the remaining 16

	// Drain everything: 48 slots total, 2 already allocated.
	allocated := 2
	for m0.Alloc() >= 0 {
		allocated++
	}
	for m1.Alloc() >= 0 {
		allocated++
	}
	if allocated != 48 {
		t.Fatalf("allocated %d slots from a 48-slot arena", allocated)
	}
	if m0.Alloc() >= 0 || m1.Alloc() >= 0 {
		t.Fatal("allocation succeeded on an exhausted arena")
	}

	// Free everything through a collection, then let m0 hoard a fresh
	// TLAB and verify m1 can still allocate after m0 parks (Park returns
	// the TLAB).
	m0.DiscardAll()
	m1.DiscardAll()
	collectWithMutators(rt, m0, m1)
	collectWithMutators(rt, m0, m1) // floating garbage dies in cycle 2
	if got := rt.Arena().LiveCount(); got != 0 {
		t.Fatalf("LiveCount after full drop = %d, want 0", got)
	}

	m0.Alloc()
	if m0.TLABSize() == 0 {
		t.Fatal("m0 holds no reservation after alloc")
	}
	m0.Park()
	if m0.TLABSize() != 0 {
		t.Fatalf("Park left %d reserved slots in the TLAB", m0.TLABSize())
	}
	got := 0
	for m1.Alloc() >= 0 {
		got++
	}
	if got < 40 { // 48 - m0's one live object - m1's prior small remainder
		t.Fatalf("m1 allocated only %d slots after m0 parked", got)
	}
	m0.Unpark()
}

func TestTLABConcurrentAllocationDisjoint(t *testing.T) {
	for _, procs := range []int{2, 8} {
		procs := procs
		t.Run(formatProcs(procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

			const nmut = 8
			const perMut = 100
			rt := New(Options{Slots: nmut * perMut * 2, Fields: 1, Mutators: nmut, TLABSize: 16})

			var mu sync.Mutex
			seen := make(map[Obj]int)
			var wg sync.WaitGroup
			for i := 0; i < nmut; i++ {
				m := rt.Mutator(i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					local := make([]Obj, 0, perMut)
					for j := 0; j < perMut; j++ {
						ri := m.Alloc()
						if ri < 0 {
							t.Error("allocation failed with free space available")
							return
						}
						local = append(local, m.Root(ri))
					}
					mu.Lock()
					for _, o := range local {
						seen[o]++
					}
					mu.Unlock()
				}()
			}
			wg.Wait()
			if len(seen) != nmut*perMut {
				t.Fatalf("%d distinct objects for %d allocations", len(seen), nmut*perMut)
			}
			for o, n := range seen {
				if n != 1 {
					t.Fatalf("slot %d handed out %d times", o, n)
				}
			}
		})
	}
}

// collectWithMutators runs one collection while each given mutator spins
// at safe points from its own goroutine, so handshakes complete.
func collectWithMutators(rt *Runtime, muts ...*Mutator) {
	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, m := range muts {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				m.SafePoint()
				runtime.Gosched()
			}
		}()
	}
	rt.Collect()
	stop.Store(true)
	wg.Wait()
}

func TestLegacyAllocStillWorks(t *testing.T) {
	rt := New(Options{Slots: 32, Fields: 1, Mutators: 1, LegacyAlloc: true})
	m := rt.Mutator(0)
	for i := 0; i < 32; i++ {
		if m.Alloc() < 0 {
			t.Fatalf("legacy alloc %d failed", i)
		}
	}
	if m.Alloc() >= 0 {
		t.Fatal("legacy alloc succeeded on a full arena")
	}
	if m.TLABSize() != 0 {
		t.Fatal("legacy path populated a TLAB")
	}
	if rt.Stats().TLABRefills != 0 {
		t.Fatal("legacy path counted TLAB refills")
	}
}
