package gcrt

import (
	"math/rand"
	"sync"
	"testing"
)

// --- Allocation pools (§4 extension) ------------------------------------

func TestAllocPooledBasics(t *testing.T) {
	rt := New(Options{Slots: 32, Fields: 1, Mutators: 1, AllocPoolSize: 4})
	m := rt.Mutator(0)
	a := m.AllocPooled()
	if a == -1 {
		t.Fatal("pooled alloc failed")
	}
	if !rt.Arena().Allocated(m.Root(a)) {
		t.Fatal("pooled object not allocated")
	}
	// The refill reserved PoolSize-1 more slots.
	if got := m.PoolSize(); got != 3 {
		t.Fatalf("pool size = %d, want 3", got)
	}
	// Reserved slots are invisible to LiveCount and to the sweep.
	if live := rt.Arena().LiveCount(); live != 1 {
		t.Fatalf("live = %d, want 1", live)
	}
	m.Park()
	rt.Collect()
	m.Unpark()
	if got := m.PoolSize(); got != 3 {
		t.Fatalf("sweep disturbed the pool: size = %d", got)
	}
	if !rt.Arena().Allocated(m.Root(a)) {
		t.Fatal("pooled object swept while rooted")
	}
}

func TestAllocPooledExhaustionAndReturn(t *testing.T) {
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 2, AllocPoolSize: 8})
	m0, m1 := rt.Mutator(0), rt.Mutator(1)
	// m0 reserves the whole arena into its pool.
	if m0.AllocPooled() == -1 {
		t.Fatal("first pooled alloc failed")
	}
	// m1 finds nothing.
	if m1.AllocPooled() != -1 {
		t.Fatal("m1 allocated from an exhausted free list")
	}
	// m0 returns its reserves; m1 can allocate again.
	m0.ReturnPool()
	if m0.PoolSize() != 0 {
		t.Fatal("pool not drained by ReturnPool")
	}
	if m1.AllocPooled() == -1 {
		t.Fatal("m1 still starved after ReturnPool")
	}
}

func TestAllocPooledSurvivesCycles(t *testing.T) {
	rt := New(Options{Slots: 128, Fields: 1, Mutators: 1, AllocPoolSize: 8})
	m := rt.Mutator(0)
	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(5)
	mid := m.AllocPooled() // allocated black during marking, from the pool
	midObj := m.Root(mid)
	m.Park()
	<-done
	m.Unpark()
	if !rt.Arena().Allocated(midObj) {
		t.Fatal("pool-allocated object lost during marking")
	}
}

func TestAllocPooledConcurrentStress(t *testing.T) {
	const nMut = 4
	rt := New(Options{Slots: 512, Fields: 1, Mutators: nMut, AllocPoolSize: 8})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nMut; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.Mutator(id)
			rng := rand.New(rand.NewSource(int64(id) * 31))
			for {
				select {
				case <-stop:
					m.ReturnPool()
					m.Park()
					return
				default:
				}
				n := m.NumRoots()
				switch {
				case n < 4:
					m.AllocPooled()
				case n > 16:
					m.Discard(rng.Intn(n))
				default:
					switch rng.Intn(3) {
					case 0:
						m.AllocPooled()
					case 1:
						m.Store(rng.Intn(n), 0, rng.Intn(n))
					case 2:
						m.Discard(rng.Intn(n))
					}
				}
				m.SafePoint()
			}
		}(i)
	}
	for c := 0; c < 15; c++ {
		rt.Collect()
	}
	close(stop)
	wg.Wait()
	if f := rt.Arena().Faults.Load(); f != 0 {
		t.Fatalf("%d faults with pooled allocation", f)
	}
	for i := 0; i < nMut; i++ {
		for _, r := range rt.Mutator(i).Roots() {
			if !rt.Arena().Allocated(r) {
				t.Fatalf("dangling root %d", r)
			}
		}
	}
	// After return+quiesced cycles, every slot is accounted for: free or
	// reachable.
	rt.Collect()
	rt.Collect()
	var roots []Obj
	for i := 0; i < nMut; i++ {
		roots = append(roots, rt.Mutator(i).Roots()...)
	}
	if live, reach := rt.Arena().LiveCount(), len(reachable(rt.Arena(), roots)); live != reach {
		t.Fatalf("live=%d reachable=%d", live, reach)
	}
}

// --- Parallel marking (§1 extension) ------------------------------------

func TestParallelMarkMatchesSerial(t *testing.T) {
	build := func(workers int) (int, int) {
		rt := New(Options{Slots: 512, Fields: 2, Mutators: 1, MarkWorkers: workers})
		m := rt.Mutator(0)
		// A binary tree of depth 7 plus garbage.
		rng := rand.New(rand.NewSource(42))
		root := m.Alloc()
		nodes := []int{root}
		for len(nodes) < 200 {
			parent := nodes[rng.Intn(len(nodes))]
			child := m.Alloc()
			m.Store(parent, rng.Intn(2), child)
			nodes = append(nodes, child)
		}
		for i := m.NumRoots() - 1; i > root; i-- {
			m.Discard(i)
		}
		for k := 0; k < 50; k++ {
			g := m.Alloc()
			m.Discard(g)
		}
		m.Park()
		freed := rt.Collect()
		return freed, rt.Arena().LiveCount()
	}
	fs, ls := build(1)
	for _, w := range []int{2, 4} {
		fp, lp := build(w)
		if fp != fs || lp != ls {
			t.Fatalf("workers=%d: freed=%d live=%d, serial freed=%d live=%d", w, fp, lp, fs, ls)
		}
	}
}

func TestParallelMarkEmptyQueue(t *testing.T) {
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 1, MarkWorkers: 4})
	rt.Mutator(0).Park()
	rt.Collect() // no roots: workers must terminate, not hang
	if rt.Stats().Cycles != 1 {
		t.Fatal("cycle did not complete")
	}
}

func TestParallelMarkConcurrentWithMutators(t *testing.T) {
	const nMut = 2
	rt := New(Options{Slots: 256, Fields: 2, Mutators: nMut, MarkWorkers: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nMut; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.Mutator(id)
			rng := rand.New(rand.NewSource(int64(id) + 5))
			m.Alloc()
			for {
				select {
				case <-stop:
					m.Park()
					return
				default:
				}
				n := m.NumRoots()
				switch {
				case n < 4:
					m.Alloc()
				case n > 12:
					m.Discard(rng.Intn(n))
				default:
					m.Store(rng.Intn(n), rng.Intn(2), rng.Intn(n))
				}
				m.SafePoint()
			}
		}(i)
	}
	for c := 0; c < 10; c++ {
		rt.Collect()
	}
	close(stop)
	wg.Wait()
	if f := rt.Arena().Faults.Load(); f != 0 {
		t.Fatalf("%d faults with parallel marking", f)
	}
}
