package workload

import (
	"reflect"
	"testing"

	"repro/internal/gcrt"
)

// TestOpsDeterministic: op generation is a pure function of
// (seed, shape, mutator id) — the property that makes a failing
// workload replayable, mirroring diffcheck.RandProgram.
func TestOpsDeterministic(t *testing.T) {
	for _, shape := range Shapes {
		cfg := Config{Shape: shape, Seed: 42, Fields: 4}
		a := Ops(cfg, 1, 500)
		b := Ops(cfg, 1, 500)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: identical (seed,id) produced different streams", shape)
		}
		c := Ops(Config{Shape: shape, Seed: 43, Fields: 4}, 1, 500)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%v: different seeds produced identical streams", shape)
		}
		d := Ops(cfg, 2, 500)
		if reflect.DeepEqual(a, d) {
			t.Fatalf("%v: different mutators produced identical streams", shape)
		}
	}
}

// TestProgramsExecutable: every generated program runs to completion
// (registers line up, no panics) for every shape.
func TestProgramsExecutable(t *testing.T) {
	for _, shape := range Shapes {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			res := Run(Config{
				Shape: shape, Mutators: 2, Seed: 7,
				Cycles: 3, OpsPerMutator: 512,
				Oracle: gcrt.OracleOptions{SampleEvery: 1},
			})
			if res.Ops == 0 {
				t.Fatal("workload executed zero operations")
			}
			if !res.Clean() {
				t.Fatalf("clean config produced findings: %v (faults=%d)",
					res.Details, res.Faults)
			}
		})
	}
}

// TestShrinkMinimizes: the greedy shrinker (mirroring diffcheck.Shrink)
// reduces a failing program to the smallest one preserving the
// predicate — here, "contains an OpUnlink" shrinks to exactly one op.
func TestShrinkMinimizes(t *testing.T) {
	cfg := Config{Shape: Churn, Mutators: 3, Seed: 11, Fields: 2, OpsPerMutator: 200}
	prog := NewProgram(cfg)

	hasUnlink := func(p [][]Op) bool {
		for _, stream := range p {
			for _, op := range stream {
				if op.Kind == OpUnlink {
					return true
				}
			}
		}
		return false
	}
	if !hasUnlink(prog) {
		t.Fatal("generated churn program has no unlinks")
	}

	small := Shrink(prog, hasUnlink)
	total := 0
	for _, stream := range small {
		total += len(stream)
	}
	if len(small) != 1 || total != 1 {
		t.Fatalf("shrink left %d mutators / %d ops, want 1/1", len(small), total)
	}
	if small[0][0].Kind != OpUnlink {
		t.Fatalf("shrink kept %v, want OpUnlink", small[0][0].Kind)
	}

	// Determinism: shrinking the same program with the same predicate
	// lands on the same minimum.
	again := Shrink(NewProgram(cfg), hasUnlink)
	if !reflect.DeepEqual(small, again) {
		t.Fatal("shrink is not deterministic")
	}

	// A shrunk (even empty-stream) program must still be runnable.
	res := RunProgram(Config{Shape: Churn, Cycles: 2, Oracle: gcrt.OracleOptions{SampleEvery: 1}}, small)
	if !res.Clean() {
		t.Fatalf("shrunk clean program produced findings: %v", res.Details)
	}
}

// TestCleanSoakZeroFindings is the honesty baseline: the un-ablated
// runtime survives a randomized multi-shape soak of >= 10 full
// collect+audit cycles with every store checked and zero findings.
// (CI runs this under -race; see the gcrt-stress job.)
func TestCleanSoakZeroFindings(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, shape := range Shapes {
		for _, seed := range seeds {
			shape, seed := shape, seed
			t.Run(shape.String()+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res := Run(Config{
					Shape:    shape,
					Mutators: 4,
					Seed:     seed,
					Cycles:   10,
					Oracle:   gcrt.OracleOptions{SampleEvery: 1},
				})
				if !res.Clean() {
					t.Fatalf("findings=%d faults=%d byCheck=%v details=%v",
						res.Findings, res.Faults, res.ByCheck, res.Details)
				}
				if res.Checks == 0 {
					t.Fatal("oracle ran zero checks — vacuous pass")
				}
				if res.Stats.Cycles < 10 {
					t.Fatalf("only %d collection cycles ran", res.Stats.Cycles)
				}
			})
		}
	}
}

// TestAblationsDetected is the E11 table at runtime scale: each
// protocol ablation must be flagged by the oracle within a bounded
// number of cycles, under at least two workload shapes.
func TestAblationsDetected(t *testing.T) {
	ablations := []struct {
		name   string
		opt    gcrt.Options
		checks []string // at least one of these must fire
	}{
		{
			name: "NoDeletionBarrier",
			opt:  gcrt.Options{NoDeletionBarrier: true},
			checks: []string{
				gcrt.CheckMarkedDeletions,
				gcrt.CheckDanglingRoot, gcrt.CheckDanglingEdge,
			},
		},
		{
			name: "NoInsertionBarrier",
			opt:  gcrt.Options{NoInsertionBarrier: true},
			checks: []string{
				gcrt.CheckMarkedInsertions,
				gcrt.CheckDanglingRoot, gcrt.CheckDanglingEdge,
			},
		},
		{
			name: "AllocWhite",
			opt:  gcrt.Options{AllocWhite: true},
			checks: []string{
				gcrt.CheckMarkSense,
				gcrt.CheckDanglingRoot, gcrt.CheckDanglingEdge,
			},
		},
	}
	shapes := []Shape{DeepList, Churn}

	for _, ab := range ablations {
		for _, shape := range shapes {
			ab, shape := ab, shape
			t.Run(ab.name+"/"+shape.String(), func(t *testing.T) {
				res := Run(Config{
					Shape:    shape,
					Mutators: 4,
					Seed:     99,
					Cycles:   10,
					Runtime:  ab.opt,
					Oracle:   gcrt.OracleOptions{SampleEvery: 1},
				})
				if res.Findings == 0 {
					t.Fatalf("oracle missed the %s ablation (checks=%d faults=%d)",
						ab.name, res.Checks, res.Faults)
				}
				for _, c := range ab.checks {
					if res.ByCheck[c] > 0 {
						return // expected signature found
					}
				}
				t.Fatalf("findings %v lack the %s signature (want one of %v)",
					res.ByCheck, ab.name, ab.checks)
			})
		}
	}
}
