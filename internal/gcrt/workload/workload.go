package workload

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gcrt"
)

// Config describes one workload run. The zero value of the sizing
// fields picks defaults; Runtime carries the gcrt tuning and ablation
// switches (its Slots/Fields/Mutators are overridden by this struct's).
type Config struct {
	Shape    Shape
	Mutators int // default 4
	Slots    int // default Mutators*2048
	Fields   int // default 2 (Pipeline: at least 4 hub lanes help)
	Seed     int64

	// Cycles is the number of collect+audit rounds the driver runs
	// (default 10). OpsPerMutator is the generated stream length; the
	// interpreter repeats the stream until the driver stops (default
	// 4096).
	Cycles        int
	OpsPerMutator int

	// SafePointEvery is the number of ops between GC-safe points
	// (default 4). Real compilers emit safe points at loop back-edges
	// and call returns, not at every instruction; a period > 1 is what
	// opens the protocol windows an adversarial workload needs — with a
	// safe point after every op, a mutator acknowledges each handshake
	// round immediately and its stores never land between the
	// enable-barriers round and its own root scan.
	SafePointEvery int

	Runtime gcrt.Options
	Oracle  gcrt.OracleOptions
}

func (cfg Config) mutators() int {
	if cfg.Mutators <= 0 {
		return 4
	}
	return cfg.Mutators
}

func (cfg Config) slots() int {
	if cfg.Slots <= 0 {
		return cfg.mutators() * 2048
	}
	return cfg.Slots
}

func (cfg Config) fields() int {
	if cfg.Fields <= 0 {
		return 2
	}
	return cfg.Fields
}

func (cfg Config) cycles() int {
	if cfg.Cycles <= 0 {
		return 10
	}
	return cfg.Cycles
}

func (cfg Config) opsPerMutator() int {
	if cfg.OpsPerMutator <= 0 {
		return 4096
	}
	return cfg.OpsPerMutator
}

func (cfg Config) safePointEvery() int {
	if cfg.SafePointEvery <= 0 {
		return 4
	}
	return cfg.SafePointEvery
}

// Result is the outcome of a workload run.
type Result struct {
	// Findings is the oracle's total violation count; ByCheck breaks it
	// down and Details holds the retained finding records.
	Findings int64
	ByCheck  map[string]int64
	Details  []gcrt.Finding
	// Checks is the number of invariant evaluations that ran — the
	// denominator that makes Findings == 0 meaningful.
	Checks int64
	// Faults counts arena accesses to freed slots (use-after-free
	// observed by the heap itself, the hard loss signal).
	Faults int64
	// Ops is the total number of mutator heap operations executed.
	Ops int64
	// Stats is the runtime counter snapshot at the end of the run.
	Stats gcrt.StatsSnapshot
}

// Clean reports whether the run produced no violations of any kind.
func (r Result) Clean() bool { return r.Findings == 0 && r.Faults == 0 }

// Run executes cfg: it builds the runtime with the oracle attached,
// drives every mutator through its generated op stream (repeating the
// stream until the driver stops), and runs cfg.Cycles() collect+audit
// rounds against them. RunProgram allows a pre-shrunk program.
func Run(cfg Config) Result {
	return RunProgram(cfg, NewProgram(cfg))
}

// RunProgram executes an explicit program (one op stream per mutator,
// normally from NewProgram or Shrink) under cfg's runtime settings.
func RunProgram(cfg Config, prog [][]Op) Result {
	opt := cfg.Runtime
	opt.Slots = cfg.Slots
	if opt.Slots <= 0 {
		opt.Slots = len(prog) * 2048
	}
	opt.Fields = cfg.fields()
	opt.Mutators = len(prog)
	rt := gcrt.New(opt)
	o := rt.EnableOracle(cfg.Oracle)

	// Pipeline: mutator 0 allocates the shared hub and every mutator
	// adopts it into register 0 before concurrency starts.
	hubRoots := make([]int, len(prog))
	for i := range hubRoots {
		hubRoots[i] = -1
	}
	if cfg.Shape == Pipeline {
		m0 := rt.Mutator(0)
		hubRoots[0] = m0.Alloc()
		if hubRoots[0] >= 0 {
			hub := m0.Root(hubRoots[0])
			for i := 1; i < len(prog); i++ {
				hubRoots[i] = rt.Mutator(i).AdoptRoot(hub)
			}
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := range prog {
		i := i
		m := rt.Mutator(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			it := newInterp(m, cfg.safePointEvery())
			if hubRoots[i] >= 0 {
				it.set(0, hubRoots[i])
			}
			for !stop.Load() {
				if len(prog[i]) == 0 {
					// A fully shrunk stream still has to service
					// handshakes or the driver's collections deadlock.
					m.SafePoint()
					runtime.Gosched()
					continue
				}
				for _, op := range prog[i] {
					it.step(op)
					if stop.Load() {
						break
					}
				}
			}
			// Exit parked: the driver's final audit (and any still-running
			// handshake) completes collector-side.
			m.Park()
		}()
	}

	for c := 0; c < cfg.cycles(); c++ {
		rt.Collect()
		rt.Audit()
	}
	stop.Store(true)
	wg.Wait()
	rt.Audit() // final audit over the parked world

	var ops int64
	for i := 0; i < rt.NumMutators(); i++ {
		ops += rt.Mutator(i).Ops()
	}
	return Result{
		Findings: o.FindingCount(),
		ByCheck:  o.CountByCheck(),
		Details:  o.Findings(),
		Checks:   o.Checks(),
		Faults:   rt.Arena().Faults.Load(),
		Ops:      ops,
		Stats:    rt.Stats(),
	}
}
