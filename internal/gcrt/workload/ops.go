// Package workload generates adversarial heap workloads for the gcrt
// runtime and drives them with the online invariant oracle attached.
//
// The package is the runtime-scale analogue of the model checker's
// random program generator (internal/diffcheck): op streams are a pure
// function of (seed, shape, mutator id), so a failing configuration
// replays exactly, and Shrink minimizes a failing program the same way
// diffcheck.Shrink minimizes a failing litmus test — drop a whole
// mutator, then single ops, keeping any removal that preserves the
// failure.
//
// The shapes are chosen to stress the protocol windows the paper's
// proof obligations guard: DeepList grows long unlink-able chains
// (deletion-barrier load), WideTree fans out from a hub (insertion
// pressure), Cycles builds unreachable cycles (trace termination),
// Churn does load-then-unlink on a cache (the E11 lost-object pattern:
// a reference loaded into an unscanned root just before its only heap
// edge is severed), and Pipeline publishes objects between mutators
// through a shared hub (cross-thread reachability hand-off).
package workload

import (
	"math/rand"
	"runtime"

	"repro/internal/gcrt"
)

// Shape selects the heap-graph pattern a mutator builds.
type Shape int

const (
	DeepList Shape = iota
	WideTree
	Cycles
	Churn
	Pipeline
)

func (s Shape) String() string {
	switch s {
	case DeepList:
		return "deeplist"
	case WideTree:
		return "widetree"
	case Cycles:
		return "cycles"
	case Churn:
		return "churn"
	case Pipeline:
		return "pipeline"
	}
	return "unknown"
}

// Shapes lists every generator, for table-driven tests.
var Shapes = []Shape{DeepList, WideTree, Cycles, Churn, Pipeline}

// OpKind is the interpreted mutator instruction set. Every op works on
// a small register file of root handles; ops whose registers are empty
// are skipped, which keeps any subsequence of a program executable —
// the property Shrink relies on.
type OpKind int

const (
	OpAlloc  OpKind = iota // R = new object (old R dropped)
	OpCopy                 // B = A
	OpLink                 // A.F = B
	OpUnlink               // A.F = null
	OpLoad                 // B = A.F (skipped when A.F is null)
	OpDrop                 // drop R's root
)

// Op is one interpreted instruction. A and B are register numbers
// (0..nregs-1), F a field number.
type Op struct {
	Kind OpKind
	A, B int
	F    int
}

// nregs is the per-mutator register-file size. Register 0 is reserved
// for the shared hub in the Pipeline shape; generators for that shape
// never overwrite it.
const nregs = 8

// Ops generates mutator id's deterministic op stream of length n for
// the given config. It is a pure function of (cfg.Seed, cfg.Shape, id):
// the same arguments always produce the same stream.
func Ops(cfg Config, id, n int) []Op {
	rnd := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(id)))
	fields := cfg.fields()
	ops := make([]Op, 0, n)
	emit := func(o Op) { ops = append(ops, o) }
	if cfg.Shape == WideTree {
		emit(Op{Kind: OpAlloc, A: 1}) // the long-lived hub
	}
	for len(ops) < n {
		switch cfg.Shape {
		case DeepList:
			// Prepend a node: new.next = head; head = new. Occasionally
			// walk into the list and sever behind the walker — the
			// deletion-barrier load: the walker's root is unscanned if
			// taken mid-cycle, and the unlink is its only heap edge.
			emit(Op{Kind: OpAlloc, A: 2})
			emit(Op{Kind: OpLink, A: 2, F: 0, B: 1})
			emit(Op{Kind: OpCopy, A: 2, B: 1})
			if rnd.Intn(4) == 0 {
				// Walk a few links in and sever a *deep* edge: interior
				// next-pointers were written when their node was prepended,
				// so a cut at depth k severs an edge ~3k ops old — old
				// enough to predate a mark-sense flip, which is what makes
				// the victim white when the deletion barrier is ablated.
				// The hidden pointer (register 4) is loaded before the cut,
				// exactly the E11 lost-object interleaving.
				emit(Op{Kind: OpLoad, A: 1, F: 0, B: 3})
				for k := rnd.Intn(3); k > 0; k-- {
					emit(Op{Kind: OpLoad, A: 3, F: 0, B: 3})
				}
				emit(Op{Kind: OpLoad, A: 3, F: 0, B: 4})
				emit(Op{Kind: OpUnlink, A: 3, F: 0})
				emit(Op{Kind: OpLoad, A: 4, F: 0, B: 4})
				emit(Op{Kind: OpDrop, A: 3})
				emit(Op{Kind: OpDrop, A: 4})
			}
			if rnd.Intn(32) == 0 {
				emit(Op{Kind: OpDrop, A: 1}) // drop the whole chain
			}
		case WideTree:
			// Fan children out of the long-lived hub in register 1.
			if rnd.Intn(64) == 0 {
				emit(Op{Kind: OpAlloc, A: 1}) // drop the whole tree, fresh hub
			}
			for i := 0; i < 3; i++ {
				emit(Op{Kind: OpAlloc, A: 2})
				emit(Op{Kind: OpLink, A: 1, F: rnd.Intn(fields), B: 2})
				emit(Op{Kind: OpDrop, A: 2})
			}
			emit(Op{Kind: OpLoad, A: 1, F: rnd.Intn(fields), B: 3})
			emit(Op{Kind: OpDrop, A: 3})
		case Cycles:
			// Build a 2- or 3-cycle, then drop every root into it.
			emit(Op{Kind: OpAlloc, A: 1})
			emit(Op{Kind: OpAlloc, A: 2})
			emit(Op{Kind: OpLink, A: 1, F: 0, B: 2})
			if rnd.Intn(2) == 0 {
				emit(Op{Kind: OpLink, A: 2, F: 0, B: 1})
			} else {
				emit(Op{Kind: OpAlloc, A: 3})
				emit(Op{Kind: OpLink, A: 2, F: 0, B: 3})
				emit(Op{Kind: OpLink, A: 3, F: 0, B: 1})
				emit(Op{Kind: OpDrop, A: 3})
			}
			emit(Op{Kind: OpDrop, A: 2})
			if rnd.Intn(2) == 0 {
				emit(Op{Kind: OpDrop, A: 1})
			}
		case Churn:
			// High-churn cache over registers 1..6: overwrite entries,
			// and do the load-then-unlink pattern through a field.
			slot := 1 + rnd.Intn(6)
			switch rnd.Intn(4) {
			case 0, 1:
				emit(Op{Kind: OpAlloc, A: slot})
				other := 1 + rnd.Intn(6)
				emit(Op{Kind: OpLink, A: slot, F: rnd.Intn(fields), B: other})
			case 2:
				f := rnd.Intn(fields)
				emit(Op{Kind: OpLoad, A: slot, F: f, B: 7})
				emit(Op{Kind: OpUnlink, A: slot, F: f})
				emit(Op{Kind: OpLoad, A: 7, F: 0, B: 7})
				emit(Op{Kind: OpDrop, A: 7})
			default:
				emit(Op{Kind: OpDrop, A: slot})
			}
		case Pipeline:
			// Produce into the shared hub (register 0, set up by Run),
			// consume what some other mutator published. Producers and
			// consumers overlap on hub fields, so references cross
			// mutators mid-cycle.
			prod := id % fields
			cons := (id + 1) % fields
			emit(Op{Kind: OpAlloc, A: 1})
			emit(Op{Kind: OpAlloc, A: 2})
			emit(Op{Kind: OpLink, A: 1, F: 0, B: 2})
			emit(Op{Kind: OpDrop, A: 2})
			emit(Op{Kind: OpLink, A: 0, F: prod, B: 1})
			emit(Op{Kind: OpDrop, A: 1})
			emit(Op{Kind: OpLoad, A: 0, F: cons, B: 3})
			if rnd.Intn(2) == 0 {
				emit(Op{Kind: OpUnlink, A: 0, F: cons})
			}
			emit(Op{Kind: OpLoad, A: 3, F: 0, B: 4})
			emit(Op{Kind: OpDrop, A: 3})
			emit(Op{Kind: OpDrop, A: 4})
		}
	}
	return ops[:n]
}

// NewProgram generates the full per-mutator program for a config.
func NewProgram(cfg Config) [][]Op {
	prog := make([][]Op, cfg.mutators())
	for id := range prog {
		prog[id] = Ops(cfg, id, cfg.opsPerMutator())
	}
	return prog
}

// Shrink greedily minimizes a failing program, mirroring
// diffcheck.Shrink: repeatedly try dropping a whole mutator's stream,
// then a single op, keeping any removal after which fails still reports
// true, until no removal preserves the failure. Deterministic given a
// deterministic predicate.
func Shrink(prog [][]Op, fails func([][]Op) bool) [][]Op {
	for changed := true; changed; {
		changed = false
		for m := 0; m < len(prog) && !changed; m++ {
			q := cloneProgram(prog)
			q = append(q[:m], q[m+1:]...)
			if len(q) > 0 && fails(q) {
				prog, changed = q, true
			}
		}
		for m := 0; m < len(prog) && !changed; m++ {
			for i := 0; i < len(prog[m]) && !changed; i++ {
				q := cloneProgram(prog)
				q[m] = append(q[m][:i:i], q[m][i+1:]...)
				if fails(q) {
					prog, changed = q, true
				}
			}
		}
	}
	return prog
}

func cloneProgram(prog [][]Op) [][]Op {
	q := make([][]Op, len(prog))
	for i, ops := range prog {
		q[i] = append([]Op(nil), ops...)
	}
	return q
}

// interp executes ops against a mutator, maintaining the register-file
// → root-index mapping (Discard moves the last root into the vacated
// slot, so the mapping must be patched on every drop).
type interp struct {
	m      *Mutator
	reg    [nregs]int // root index per register, -1 = empty
	period int        // ops between safe points
	count  int
}

// Mutator aliases gcrt.Mutator so the interpreter reads naturally.
type Mutator = gcrt.Mutator

func newInterp(m *Mutator, period int) *interp {
	it := &interp{m: m, period: period}
	for i := range it.reg {
		it.reg[i] = -1
	}
	return it
}

// drop discards the root held by register r, patching whichever
// register pointed at the moved last root.
func (it *interp) drop(r int) {
	ri := it.reg[r]
	if ri < 0 {
		return
	}
	last := it.m.NumRoots() - 1
	it.m.Discard(ri)
	it.reg[r] = -1
	if ri != last {
		for j := range it.reg {
			if it.reg[j] == last {
				it.reg[j] = ri
			}
		}
	}
}

// adopt binds register r to root index ri (dropping r's old root
// first happens in the callers that need it).
func (it *interp) set(r, ri int) { it.reg[r] = ri }

// step executes one op and services a safe point every `period` ops;
// ops over empty registers are skipped (but the safe-point cadence
// continues, so any subsequence of a program keeps handshakes live).
func (it *interp) step(op Op) {
	it.exec(op)
	it.count++
	if it.count%it.period == 0 {
		it.m.SafePoint()
		// Yield at every safe point so the collector goroutine advances
		// between handshake rounds even on GOMAXPROCS=1. Without this a
		// spinning mutator holds the only P for a full preemption quantum
		// (~10ms, hundreds of thousands of ops): churn-style workloads
		// then exhaust the arena and re-link every edge long before the
		// root scan, so no pre-flip (white) edge ever survives into the
		// marking window and the protocol races the workload exists to
		// exercise can never be observed.
		runtime.Gosched()
	}
}

func (it *interp) exec(op Op) {
	m := it.m
	switch op.Kind {
	case OpAlloc:
		ri := m.Alloc()
		if ri < 0 {
			// Allocation stall: keep the old root (dropping it anyway would
			// bleed every register to empty whenever the arena is
			// exhausted), service a safe point and yield so an in-flight
			// collection can reach its sweep — the runtime-scale analogue
			// of a mutator blocking on the allocator.
			m.SafePoint()
			runtime.Gosched()
			return
		}
		// The fresh root is the new last; discarding A's old root moves it
		// into the vacated slot.
		if old := it.reg[op.A]; old >= 0 {
			it.reg[op.A] = -1
			m.Discard(old)
			it.set(op.A, old)
		} else {
			it.set(op.A, ri)
		}
	case OpCopy:
		if it.reg[op.A] < 0 || op.A == op.B {
			return
		}
		it.drop(op.B)
		it.set(op.B, m.AdoptRoot(m.Root(it.reg[op.A])))
	case OpLink:
		if it.reg[op.A] < 0 || it.reg[op.B] < 0 {
			return
		}
		m.Store(it.reg[op.A], op.F, it.reg[op.B])
	case OpUnlink:
		if it.reg[op.A] < 0 {
			return
		}
		m.Store(it.reg[op.A], op.F, -1)
	case OpLoad:
		if it.reg[op.A] < 0 {
			return
		}
		ri := m.Load(it.reg[op.A], op.F)
		if ri < 0 {
			return
		}
		// The loaded root is the new last; discarding B's old root moves
		// it into the vacated slot (supports A == B for list walks).
		if old := it.reg[op.B]; old >= 0 {
			it.reg[op.B] = -1
			m.Discard(old)
			it.set(op.B, old)
		} else {
			it.set(op.B, ri)
		}
	case OpDrop:
		it.drop(op.A)
	}
}
