package gcrt

// This file implements TLAB-style allocation caches: each mutator
// reserves a batch of free slots from its home shard in one lock
// acquisition and then allocates from the batch with no shared-state
// interaction at all. It is the production-scale generalization of the
// allocation-pool extension the paper devised but did not verify (§4,
// "Representations"):
//
//	"we have devised but not yet verified an extension to the model that
//	would allow mutators to gather pools of unallocated references from
//	which to perform fine-grained allocation without synchronizing. For
//	TSO, we can also perform the marking and initialization of the fields
//	at each allocation without the need for an MFENCE, because publishing
//	the new reference to other mutators can occur only after the prior
//	initializing stores have been flushed."
//
// Reserved slots are invisible to the sweep (their headers stay clear),
// so a TLAB is simply a slice of the free list owned by one thread —
// the same thread-locality argument the paper makes for the work-lists.
// The allocation COLOR is still read per-allocation from f_A, so the
// verified allocation-color discipline (allocate black during marking)
// is untouched; only the free-slot reservation is batched.

// defaultTLABSize is the per-refill reservation when Options.TLABSize
// is zero.
const defaultTLABSize = 64

// tlabRefill reserves a fresh batch from the arena, preferring the
// mutator's home shard. Returns false when every shard is exhausted.
func (m *Mutator) tlabRefill() bool {
	n := m.rt.opt.TLABSize
	if n <= 0 {
		n = defaultTLABSize
	}
	m.tlab = m.rt.arena.reserveBatch(m.tlab, m.id, n)
	if len(m.tlab) == 0 {
		return false
	}
	m.rt.stats.tlabRefills.Add(1)
	return true
}

// allocSlot produces a reserved free slot: from the TLAB when the TLAB
// path is enabled, else straight from the shared free list (the seed's
// LegacyAlloc path, kept for baseline benchmarks). Returns NilObj when
// the arena is exhausted (other mutators' reservations may hold slots).
func (m *Mutator) allocSlot() Obj {
	if m.rt.opt.LegacyAlloc {
		// Seed behavior: one shared-lock acquisition per allocation, no
		// local cache. install() runs inside alloc.
		return m.rt.arena.alloc(m.rt.fA.Load())
	}
	if len(m.tlab) == 0 && !m.tlabRefill() {
		return NilObj
	}
	o := m.tlab[len(m.tlab)-1]
	m.tlab = m.tlab[:len(m.tlab)-1]
	m.rt.arena.install(o, m.rt.fA.Load())
	return o
}

// ReturnTLAB releases the mutator's reserved slots back to the shared
// free lists so other mutators can allocate them; Park does this
// automatically.
func (m *Mutator) ReturnTLAB() {
	m.rt.arena.returnBatch(m.tlab)
	m.tlab = m.tlab[:0]
}

// TLABSize reports the number of reserved slots currently held in the
// mutator's allocation cache.
func (m *Mutator) TLABSize() int { return len(m.tlab) }
