package gcrt

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the online invariant oracle: a sampled,
// stop-the-world-free evaluation of the model's safety invariants
// (package invariant, §3.2 of the paper) against the live arena. It
// closes the model↔runtime gap: the model checker proves the predicates
// over every state of the abstract machine; the oracle asserts their
// runtime images on the concrete heap while adversarial workloads run.
//
// Checks and their model counterparts:
//
//   - valid_refs / reachable-after-sweep: every object reachable from a
//     mutator's roots is allocated. Evaluated by a bounded walk at an
//     HSValidate handshake — a safe point, so the walking mutator's own
//     roots are stable, and the collector is idle, so no sweep can free
//     an object mid-walk (no false positives from legitimate frees).
//
//   - marked_insertions / marked_deletions: at a Store during marking,
//     the inserted (resp. overwritten) reference must be marked on the
//     heap or pending in the mutator's barrier buffer — the buffer is
//     the runtime image of the model's TSO store buffer, and the
//     disjunction is exactly the paper's obligation over committed
//     memory plus buffered ghost state. With the corresponding barrier
//     ablated, white targets slip through and the check fires.
//
//   - mark_sense: between cycles every allocated object carries the
//     current mark sense f_M (the heap is black at idle; sys_phase_inv's
//     hp_Idle clause). AllocWhite violates it within one cycle.
//
//   - free_list: free slots have clear headers — the sweep never
//     returns a live object to a free list.
//
// The oracle never blocks mutators beyond the handshake service they
// already perform, and all bookkeeping is per-mutator or under a small
// findings lock, so it is safe (and -race-clean) under full
// concurrency.

// Check names reported in findings.
const (
	CheckDanglingRoot     = "valid_refs:dangling_root"
	CheckDanglingEdge     = "valid_refs:dangling_edge"
	CheckMarkedInsertions = "marked_insertions"
	CheckMarkedDeletions  = "marked_deletions"
	CheckMarkSense        = "mark_sense"
	CheckFreeList         = "free_list"
)

// maxRecordedFindings bounds the retained finding details; the per-check
// counters keep counting past it.
const maxRecordedFindings = 128

// OracleOptions configures the online invariant oracle.
type OracleOptions struct {
	// MaxWalk bounds the number of objects visited per mutator per
	// validation walk (0 picks 512).
	MaxWalk int
	// SampleEvery checks every n-th Store for the marked_insertions /
	// marked_deletions obligations (0 picks 4; 1 checks every store).
	SampleEvery int
}

// Finding is one observed invariant violation.
type Finding struct {
	Check   string // one of the Check* names
	Mutator int    // mutator involved, -1 for collector-side scans
	Cycle   int64  // completed collection cycles at detection time
	Detail  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s (mutator %d, cycle %d): %s", f.Check, f.Mutator, f.Cycle, f.Detail)
}

// Oracle accumulates online invariant findings.
type Oracle struct {
	rt  *Runtime      // gcrt:guard immutable
	opt OracleOptions // gcrt:guard immutable

	total  atomic.Int64 // gcrt:guard atomic
	checks atomic.Int64 // gcrt:guard atomic

	mu       sync.Mutex       // gcrt:guard atomic
	findings []Finding        // gcrt:guard by(mu)
	byCheck  map[string]int64 // gcrt:guard by(mu)
}

// EnableOracle attaches an online invariant oracle to the runtime.
// Call before any mutator or collector activity.
func (rt *Runtime) EnableOracle(opt OracleOptions) *Oracle {
	if opt.MaxWalk <= 0 {
		opt.MaxWalk = 512
	}
	if opt.SampleEvery <= 0 {
		opt.SampleEvery = 4
	}
	o := &Oracle{rt: rt, opt: opt, byCheck: make(map[string]int64)}
	rt.oracle = o
	return o
}

// Oracle returns the attached oracle, or nil.
func (rt *Runtime) Oracle() *Oracle { return rt.oracle }

// report records one finding.
func (o *Oracle) report(check string, mutator int, detail string) {
	o.total.Add(1)
	o.mu.Lock()
	o.byCheck[check]++
	if len(o.findings) < maxRecordedFindings {
		o.findings = append(o.findings, Finding{
			Check:   check,
			Mutator: mutator,
			Cycle:   o.rt.stats.cycles.Load(),
			Detail:  detail,
		})
	}
	o.mu.Unlock()
}

// FindingCount reports the total number of violations observed.
func (o *Oracle) FindingCount() int64 { return o.total.Load() }

// Checks reports how many individual invariant evaluations ran — the
// denominator that makes a zero finding count meaningful.
func (o *Oracle) Checks() int64 { return o.checks.Load() }

// Findings returns the retained finding details (capped; see
// FindingCount for the true total).
func (o *Oracle) Findings() []Finding {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Finding(nil), o.findings...)
}

// CountByCheck returns per-check violation totals.
func (o *Oracle) CountByCheck() map[string]int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int64, len(o.byCheck))
	for k, v := range o.byCheck {
		out[k] = v
	}
	return out
}

// checkStore evaluates the marked_insertions / marked_deletions
// obligations for one Store. phBefore is the phase observed before the
// barriers ran; re-reading the phase afterwards and requiring both
// observations to be PhMark rules out phase-transition races (the
// collector cannot complete a phase transition — which takes a
// handshake this mutator must serve — between two reads inside one
// Store).
func (o *Oracle) checkStore(m *Mutator, victim, inserted Obj, phBefore Phase) {
	if phBefore != PhMark {
		return
	}
	m.oracleTick++
	if o.opt.SampleEvery > 1 && m.oracleTick%int64(o.opt.SampleEvery) != 0 {
		return
	}
	rt := o.rt
	fM := rt.fM.Load()
	white := func(x Obj) bool {
		return x != NilObj && rt.arena.Allocated(x) && rt.arena.flag(x) != fM
	}
	badIns := white(inserted) && !m.inBarrierBuf(inserted)
	badDel := white(victim) && !m.inBarrierBuf(victim)
	o.checks.Add(2)
	if !badIns && !badDel {
		return
	}
	if Phase(rt.phase.Load()) != PhMark {
		return // phase moved under us; not a valid observation
	}
	if badIns {
		o.report(CheckMarkedInsertions, m.id,
			fmt.Sprintf("stored unmarked %d during marking with no barrier record", inserted))
	}
	if badDel {
		o.report(CheckMarkedDeletions, m.id,
			fmt.Sprintf("overwrote unmarked %d during marking with no barrier record", victim))
	}
}

// validateMutator runs the valid_refs walk for one mutator at an
// HSValidate safe point: every root must be allocated, and every edge
// reachable from the roots (bounded by MaxWalk) must point at an
// allocated object. The collector is idle during the audit round, so no
// sweep runs concurrently and a dangling reference is a genuine loss.
func (o *Oracle) validateMutator(m *Mutator) {
	a := o.rt.arena
	visited := make(map[Obj]bool, o.opt.MaxWalk)
	var stack []Obj
	for i, r := range m.roots {
		o.checks.Add(1)
		if r == NilObj {
			continue
		}
		if !a.Allocated(r) {
			o.report(CheckDanglingRoot, m.id,
				fmt.Sprintf("root slot %d holds freed object %d", i, r))
			continue
		}
		if !visited[r] {
			visited[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 && len(visited) < o.opt.MaxWalk {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for f := 0; f < a.NumFields(); f++ {
			c := a.peekField(x, f)
			if c == NilObj || visited[c] {
				continue
			}
			o.checks.Add(1)
			if !a.Allocated(c) {
				o.report(CheckDanglingEdge, m.id,
					fmt.Sprintf("reachable edge %d.%d points at freed object %d", x, f, c))
				continue
			}
			visited[c] = true
			stack = append(stack, c)
		}
	}
}

// Audit runs one oracle round. Call it from the collector goroutine
// between cycles (the collector must be idle): it performs an
// HSValidate handshake so every mutator (or the collector on behalf of
// parked ones) walks its roots, then scans the arena for mark-sense and
// free-list consistency. Returns the number of findings accumulated so
// far.
func (rt *Runtime) Audit() int64 {
	o := rt.oracle
	if o == nil {
		return 0
	}
	if Phase(rt.phase.Load()) != PhIdle {
		panic("gcrt: Audit must run between collection cycles")
	}
	rt.handshake(HSValidate)

	// mark_sense: at idle the heap is black — every allocated object
	// carries f_M. Mutators may allocate concurrently, but idle
	// allocations install f_A, and f_A == f_M at idle in every
	// non-ablated configuration.
	fM := rt.fM.Load()
	a := rt.arena
	for i := 0; i < a.NumSlots(); i++ {
		h := a.headers[i].Load()
		o.checks.Add(1)
		if h&hdrAlloc != 0 && (h&hdrFlag != 0) != fM {
			o.report(CheckMarkSense, -1,
				fmt.Sprintf("allocated object %d has stale mark sense at idle (f_M=%v)", i, fM))
		}
	}

	// free_list: free slots must be dead.
	for s := range a.shards {
		sh := &a.shards[s]
		sh.mu.Lock()
		for _, f := range sh.free {
			o.checks.Add(1)
			if a.headers[f].Load()&hdrAlloc != 0 {
				o.report(CheckFreeList, -1,
					fmt.Sprintf("free-list slot %d has a live header", f))
			}
		}
		sh.mu.Unlock()
	}
	return o.total.Load()
}
