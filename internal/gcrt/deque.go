package gcrt

import "sync/atomic"

// wsDeque is a fixed-capacity Chase–Lev work-stealing deque of object
// references. The owning worker pushes and pops at the bottom with no
// synchronization beyond the atomics themselves; thieves steal from the
// top with a CAS. Go's sync/atomic operations are sequentially
// consistent, which subsumes the fences the weak-memory formulation of
// the algorithm needs, so the classic correctness argument applies
// directly: every pushed element is taken exactly once, either by the
// owner's pop or by exactly one successful steal.
//
// The buffer is fixed-size: a full deque rejects the push and the
// caller spills to the tracer's shared overflow list (parallel.go).
// Fixed capacity is what makes the wraparound re-use of a slot safe
// without epochs: a slot can only be rewritten after top has advanced
// past it, and a thief whose top observation went stale loses its CAS.
type wsDeque struct {
	// top is the next index to steal (monotonic).
	// gcrt:guard atomic
	top atomic.Int64
	_   [56]byte // keep top and bottom on separate cache lines
	// bottom is the next index to push (owner-written).
	// gcrt:guard atomic
	bottom atomic.Int64
	_      [56]byte
	buf    []atomic.Int32 // gcrt:guard immutable
	mask   int64          // gcrt:guard immutable
}

// newWSDeque creates a deque with capacity rounded up to a power of two.
func newWSDeque(capacity int) *wsDeque {
	pow := 1
	for pow < capacity {
		pow <<= 1
	}
	return &wsDeque{buf: make([]atomic.Int32, pow), mask: int64(pow - 1)}
}

// push appends v at the bottom (owner only). Returns false when the
// deque is full; the caller must spill v elsewhere.
func (d *wsDeque) push(v Obj) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= int64(len(d.buf)) {
		return false
	}
	d.buf[b&d.mask].Store(int32(v))
	d.bottom.Store(b + 1)
	return true
}

// pop removes the most recently pushed element (owner only). The only
// synchronization it needs is the CAS against a concurrent thief when
// exactly one element remains.
func (d *wsDeque) pop() (Obj, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bottom.Store(t)
		return NilObj, false
	}
	v := Obj(d.buf[b&d.mask].Load())
	if b > t {
		return v, true
	}
	// Last element: race the thieves for it.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return NilObj, false
	}
	return v, true
}

// steal removes the oldest element (any thread). Returns false when the
// deque looks empty or the thief lost a race; callers treat both as
// "try elsewhere".
func (d *wsDeque) steal() (Obj, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return NilObj, false
	}
	v := Obj(d.buf[t&d.mask].Load())
	if !d.top.CompareAndSwap(t, t+1) {
		return NilObj, false
	}
	return v, true
}

// size reports a racy estimate of the number of queued elements.
func (d *wsDeque) size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
