package gcrt

import (
	"testing"
)

// Microbenchmarks with direct access to the kernel internals, isolating
// the §2.3 cost structure of the mark operation: the flag-test fast path
// that skips the CAS entirely, the CAS path a race winner pays, and the
// surrounding operations. The root-level bench_test.go measures the same
// effects through the public API.

func BenchmarkMarkFastPathAlreadyMarked(b *testing.B) {
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	x := m.Root(m.Alloc())
	rt.phase.Store(int32(PhMark))
	rt.fM.Store(true)
	rt.arena.SetFlagForBenchmark(x, true) // already marked
	var wl []Obj
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.mark(x, &wl)
	}
	if len(wl) != 0 {
		b.Fatal("fast path won a mark")
	}
}

func BenchmarkMarkFastPathIdlePhase(b *testing.B) {
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	x := m.Root(m.Alloc())
	rt.fM.Store(true) // x unmarked, but phase stays Idle: no CAS
	var wl []Obj
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.mark(x, &wl)
	}
	if len(wl) != 0 {
		b.Fatal("idle-phase mark won")
	}
}

func BenchmarkMarkCASWin(b *testing.B) {
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	x := m.Root(m.Alloc())
	rt.phase.Store(int32(PhMark))
	rt.fM.Store(true)
	var wl []Obj
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.arena.SetFlagForBenchmark(x, false) // whiten again
		rt.mark(x, &wl)
	}
	if int64(len(wl)) != int64(b.N) {
		b.Fatalf("wins = %d, want %d", len(wl), b.N)
	}
}

func BenchmarkMarkNil(b *testing.B) {
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 1})
	var wl []Obj
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.mark(NilObj, &wl)
	}
}

func BenchmarkAllocRelease(b *testing.B) {
	a := NewArena(64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := a.alloc(false)
		a.release(o)
	}
}

func BenchmarkSweepEmptyHeap(b *testing.B) {
	rt := New(Options{Slots: 4096, Fields: 1, Mutators: 1})
	rt.Mutator(0).Park()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Collect()
	}
}

func BenchmarkFieldLoadStore(b *testing.B) {
	a := NewArena(8, 2)
	o := a.alloc(false)
	p := a.alloc(false)
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a.LoadField(o, 0)
		}
	})
	b.Run("store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.StoreField(o, 0, p)
		}
	})
}
