package gcrt

import (
	"runtime"
	"time"
)

// This file implements the stop-the-world baseline the paper's design
// argues against (§2, "On-the-Fly"): "The most straightforward way to
// achieve this is to stop all mutator threads before sampling their
// roots, and afterwards restarting the mutators ... But this imposes
// relatively long and unpredictable pauses on mutators."
//
// CollectSTW stops every mutator at a safe point (or treats parked
// mutators as stopped), then marks and sweeps with exclusive access — no
// write barriers, no handshake raggedness, no floating garbage — and
// finally releases the world. The mutator-observed pause is the whole
// collection, Θ(live heap), where the on-the-fly collector's pauses are
// the handshake services, Θ(roots) at worst.
//
// The baseline shares the arena, the mutator API and the statistics
// machinery, so the two designs are directly comparable (experiment E2b).

// stwState is the world-stop protocol state.
const (
	stwIdle int32 = iota
	stwRequested
	stwActive
)

// CollectSTW runs one stop-the-world mark-sweep cycle and returns the
// number of objects freed.
func (rt *Runtime) CollectSTW() int {
	cycleStart := time.Now()

	// Stop the world: every mutator must acknowledge at a safe point and
	// then block until released.
	rt.stw.Store(stwRequested)
	for _, m := range rt.muts {
		m.stwAcked.Store(false)
	}
	for _, m := range rt.muts {
		for !m.stwAcked.Load() {
			m.parkMu.Lock()
			if m.parked.Load() {
				m.stwAcked.Store(true) // parked: permanently at a safe point
			}
			m.parkMu.Unlock()
			runtime.Gosched()
		}
	}
	rt.stw.Store(stwActive)

	// Exclusive marking: flip the sense, mark all roots, trace. No
	// barriers are needed; the mutators cannot move.
	rt.fM.Store(!rt.fM.Load())
	fM := rt.fM.Load()
	rt.fA.Store(fM)
	var work []Obj
	for _, m := range rt.muts {
		for _, r := range m.roots {
			if r != NilObj && rt.arena.Allocated(r) && rt.arena.flag(r) != fM {
				if rt.arena.casFlag(r, !fM, fM) {
					work = append(work, r)
					rt.stats.marked.Add(1)
				}
			}
		}
	}
	for len(work) > 0 {
		src := work[len(work)-1]
		work = work[:len(work)-1]
		for f := 0; f < rt.arena.NumFields(); f++ {
			c := rt.arena.LoadField(src, f)
			if c != NilObj && rt.arena.Allocated(c) && rt.arena.flag(c) != fM {
				if rt.arena.casFlag(c, !fM, fM) {
					work = append(work, c)
					rt.stats.marked.Add(1)
				}
			}
		}
		rt.stats.scanned.Add(1)
	}

	// Sweep (batched free-list release, one lock per shard).
	freed := rt.sweep()

	// Restart the world.
	rt.stw.Store(stwIdle)

	rt.stats.cycles.Add(1)
	rt.stats.freed.Add(int64(freed))
	rt.stats.cycleNanos.Add(time.Since(cycleStart).Nanoseconds())
	return freed
}

// stwCheck is called from SafePoint: acknowledge a pending world-stop and
// block until the collector releases the world, recording the observed
// pause.
func (m *Mutator) stwCheck() {
	rt := m.rt
	if rt.stw.Load() == stwIdle {
		return
	}
	start := time.Now()
	m.stwAcked.Store(true)
	for rt.stw.Load() != stwIdle {
		runtime.Gosched()
	}
	m.recordPause(time.Since(start))
}

// recordPause tracks the maximum and total pause this mutator observed.
func (m *Mutator) recordPause(d time.Duration) {
	n := d.Nanoseconds()
	m.pauseTotal.Add(n)
	m.pauseCount.Add(1)
	for {
		cur := m.pauseMax.Load()
		if n <= cur || m.pauseMax.CompareAndSwap(cur, n) {
			break
		}
	}
}

// MaxPause reports the largest single pause this mutator has observed at
// a safe point (handshake service or world stop).
func (m *Mutator) MaxPause() time.Duration { return time.Duration(m.pauseMax.Load()) }

// TotalPause reports the cumulative pause time and the number of pauses.
func (m *Mutator) TotalPause() (time.Duration, int64) {
	return time.Duration(m.pauseTotal.Load()), m.pauseCount.Load()
}
