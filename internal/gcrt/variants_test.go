package gcrt

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// --- Stop-the-world baseline (E2b) -------------------------------------

func TestSTWBasicCollection(t *testing.T) {
	rt := New(Options{Slots: 32, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	keep := m.Alloc()
	g := m.Alloc()
	m.Discard(g)

	done := make(chan struct{})
	go func() { rt.CollectSTW(); close(done) }()
	// The mutator must acknowledge the stop before collection proceeds.
	for {
		select {
		case <-done:
			if !rt.Arena().Allocated(m.Root(keep)) {
				t.Fatal("rooted object collected by STW")
			}
			if rt.Arena().LiveCount() != 1 {
				t.Fatalf("live = %d, want 1 (STW has no floating garbage)", rt.Arena().LiveCount())
			}
			return
		default:
			m.SafePoint()
		}
	}
}

func TestSTWNoFloatingGarbage(t *testing.T) {
	// Unlike the snapshot collector, STW reclaims everything unreachable
	// at the stop — in one cycle.
	rt := New(Options{Slots: 32, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	for i := 0; i < 10; i++ {
		r := m.Alloc()
		m.Discard(r)
	}
	m.Park()
	rt.CollectSTW()
	m.Unpark()
	if got := rt.Arena().LiveCount(); got != 0 {
		t.Fatalf("live = %d after one STW cycle", got)
	}
}

func TestSTWWorksWithParkedMutators(t *testing.T) {
	rt := New(Options{Slots: 16, Fields: 1, Mutators: 2})
	a := rt.Mutator(0).Alloc()
	rt.Mutator(0).Park()
	rt.Mutator(1).Park()
	rt.CollectSTW() // must not deadlock
	if !rt.Arena().Allocated(rt.Mutator(0).Root(a)) {
		t.Fatal("parked mutator's root collected")
	}
}

func TestSTWPausesScaleWithHeap(t *testing.T) {
	// The mutator-observed STW pause covers the whole collection and
	// grows with live-heap size; the on-the-fly handshake pause does not
	// cover the trace. Compare max pauses over identical heaps.
	pause := func(collect func(*Runtime) int) time.Duration {
		rt := New(Options{Slots: 8192, Fields: 1, Mutators: 1})
		m := rt.Mutator(0)
		// A long live chain: tracing it takes real work.
		head := m.Alloc()
		prev := head
		for i := 1; i < 6000; i++ {
			n := m.Alloc()
			m.Store(prev, 0, n)
			prev = n
		}
		for i := m.NumRoots() - 1; i > head; i-- {
			m.Discard(i)
		}
		done := make(chan struct{})
		go func() { collect(rt); close(done) }()
		for {
			select {
			case <-done:
				return m.MaxPause()
			default:
				m.SafePoint()
			}
		}
	}
	stw := pause(func(rt *Runtime) int { return rt.CollectSTW() })
	otf := pause(func(rt *Runtime) int { return rt.Collect() })
	t.Logf("max pause: stop-the-world=%v on-the-fly=%v", stw, otf)
	if stw <= otf {
		t.Skipf("scheduling noise: stw=%v otf=%v (expected stw >> otf)", stw, otf)
	}
}

// --- Incremental-update rescanning variant (E2c) ------------------------

func TestRescanBasicCollection(t *testing.T) {
	rt := New(Options{Slots: 32, Fields: 1, Mutators: 1, NoDeletionBarrier: true})
	m := rt.Mutator(0)
	keep := m.Alloc()
	g := m.Alloc()
	m.Discard(g)
	m.Park()
	freed := rt.CollectRescan()
	m.Unpark()
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
	if !rt.Arena().Allocated(m.Root(keep)) {
		t.Fatal("rooted object collected")
	}
	if rt.RescanRounds() < 2 {
		t.Fatalf("rescan rounds = %d, want ≥ 2 (work round + empty round)", rt.RescanRounds())
	}
}

// TestRescanSurvivesDeletionRace: the scenario that kills the snapshot
// collector without its deletion barrier (TestLostObjectWithoutDeletionBarrier)
// is harmless for the rescanning variant: the re-scan finds the loaded
// root.
func TestRescanSurvivesDeletionRace(t *testing.T) {
	rt := New(Options{Slots: 16, Fields: 1, Mutators: 2, NoDeletionBarrier: true})
	m1, m2 := rt.Mutator(0), rt.Mutator(1)

	h := m1.Alloc()
	x := m1.Alloc()
	m1.Store(h, 0, x)
	m1.Discard(x)

	done := make(chan struct{})
	go func() { rt.CollectRescan(); close(done) }()

	for m1.Served() < 4 || m2.Served() < 4 {
		m1.SafePoint()
		m2.SafePoint()
	}
	m1.AwaitHandshakes(5) // m1's first root scan: h marked

	// The mischief: load x, erase the heap edge. No deletion barrier
	// fires — but the next rescan round will see x in m1's roots.
	xr := m1.Load(h, 0)
	xObj := m1.Root(xr)
	m1.Store(h, 0, -1)

	m2.AwaitHandshakes(5)
	m1.Park()
	m2.Park()
	<-done
	m1.Unpark()
	m2.Unpark()

	if !rt.Arena().Allocated(xObj) {
		t.Fatal("rescanning variant lost a rooted object")
	}
	if f := rt.Arena().Faults.Load(); f != 0 {
		t.Fatalf("faults = %d", f)
	}
}

// TestRescanUnboundedRounds: an adversarial mutator that keeps loading
// white references prolongs marking — each new white root forces another
// rescan round. The snapshot collector's round structure is fixed by
// design; this is the paper's timeliness argument (§2, "Timeliness").
//
// Determinism: the adversary performs its mischief after its own root
// scan but before the lagging mutator completes the round, so the
// collector cannot have started tracing yet. Each round therefore
// discovers exactly one new chain node: round k marks x_k, then the
// adversary loads x_{k+1} from x_k.f, severs the edge (no deletion
// barrier) and drops x_k — leaving x_{k+1} white and rooted.
func TestRescanUnboundedRounds(t *testing.T) {
	const chain = 12
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 2, NoDeletionBarrier: true})
	adv := rt.Mutator(0)
	lag := rt.Mutator(1)

	head := adv.Alloc()
	prev := head
	for i := 1; i < chain; i++ {
		n := adv.Alloc()
		adv.Store(prev, 0, n)
		prev = n
	}
	for i := adv.NumRoots() - 1; i > head; i-- {
		adv.Discard(i)
	}
	// Root slot 0 now holds the current chain node.

	done := make(chan struct{})
	go func() { rt.CollectRescan(); close(done) }()

	for {
		select {
		case <-done:
			rounds := rt.RescanRounds()
			t.Logf("rescan rounds = %d (chain length %d)", rounds, chain)
			// One round per chain node plus the final empty round; allow
			// slack for the initialization rounds' interleaving.
			if rounds < chain {
				t.Fatalf("rounds = %d, want ≥ %d: adversary failed to prolong marking", rounds, chain)
			}
			if f := rt.Arena().Faults.Load(); f != 0 {
				t.Fatalf("faults = %d (rescanning variant lost an object)", f)
			}
			if !rt.Arena().Allocated(adv.Root(0)) {
				t.Fatal("adversary's final root freed")
			}
			return
		default:
		}
		prevServed := adv.Served()
		adv.SafePoint()
		if adv.Served() > prevServed {
			// Mischief window: our scan is done, the round is still open
			// (lag has not served), tracing has not started. Only rescan
			// (get-roots) rounds matter; the initialization noops are
			// left alone.
			if HSType(rt.hsType.Load()) == HSGetRoots {
				if next := adv.Load(0, 0); next != -1 {
					adv.Store(0, 0, -1) // sever x_k.f (no deletion barrier)
					adv.Discard(0)      // drop x_k; x_{k+1} slides into slot 0
				}
			}
			for lag.Served() < adv.Served() {
				lag.SafePoint()
			}
		}
	}
}

// TestRescanConcurrentStress: the rescanning variant under the same
// random concurrent workload as the snapshot collector, with the
// deletion barrier off — no lost objects.
func TestRescanConcurrentStress(t *testing.T) {
	const nMut = 3
	rt := New(Options{Slots: 256, Fields: 2, Mutators: nMut, NoDeletionBarrier: true})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nMut; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.Mutator(id)
			rng := rand.New(rand.NewSource(int64(id) + 99))
			m.Alloc()
			for {
				select {
				case <-stop:
					m.Park()
					return
				default:
				}
				n := m.NumRoots()
				switch {
				case n == 0:
					m.Alloc()
				case n > 16:
					m.Discard(rng.Intn(n))
				default:
					switch rng.Intn(4) {
					case 0:
						m.Alloc()
					case 1:
						m.Load(rng.Intn(n), rng.Intn(2))
					case 2:
						dst := rng.Intn(n)
						if rng.Intn(3) == 0 {
							dst = -1
						}
						m.Store(rng.Intn(n), rng.Intn(2), dst)
					case 3:
						m.Discard(rng.Intn(n))
					}
				}
				m.SafePoint()
			}
		}(i)
	}
	for c := 0; c < 12; c++ {
		rt.CollectRescan()
	}
	close(stop)
	wg.Wait()
	if f := rt.Arena().Faults.Load(); f != 0 {
		t.Fatalf("%d faults under the rescanning variant", f)
	}
	var roots []Obj
	for i := 0; i < nMut; i++ {
		roots = append(roots, rt.Mutator(i).Roots()...)
	}
	for _, r := range roots {
		if !rt.Arena().Allocated(r) {
			t.Fatalf("dangling root %d", r)
		}
	}
}

// TestSnapshotBoundsRoundsUnderAdversary: the same chain-walking
// adversary cannot prolong the snapshot collector's marking phase: the
// deletion barrier greys each severed node, so the trace completes
// within the fixed round structure (roots round + a handful of get-work
// rounds), independent of the chain length.
func TestSnapshotBoundsRoundsUnderAdversary(t *testing.T) {
	const chain = 12
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 2})
	adv := rt.Mutator(0)
	lag := rt.Mutator(1)

	head := adv.Alloc()
	prev := head
	for i := 1; i < chain; i++ {
		n := adv.Alloc()
		adv.Store(prev, 0, n)
		prev = n
	}
	for i := adv.NumRoots() - 1; i > head; i-- {
		adv.Discard(i)
	}

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()

	for {
		select {
		case <-done:
			s := rt.Stats()
			t.Logf("roots rounds = %d, total rounds = %d (chain length %d)", s.RootsRounds, s.Handshakes, chain)
			// The structural claim of §2: the snapshot collector samples
			// the mutator roots exactly once per cycle, no matter what
			// the adversary does; the rescanning variant re-samples once
			// per round (TestRescanUnboundedRounds observes ≥ chain).
			if s.RootsRounds != 1 {
				t.Fatalf("snapshot collector sampled roots %d times", s.RootsRounds)
			}
			if f := rt.Arena().Faults.Load(); f != 0 {
				t.Fatalf("faults = %d", f)
			}
			return
		default:
		}
		prevServed := adv.Served()
		adv.SafePoint()
		if adv.Served() > prevServed {
			ht := HSType(rt.hsType.Load())
			if ht == HSGetRoots || ht == HSGetWork {
				if next := adv.Load(0, 0); next != -1 {
					adv.Store(0, 0, -1) // deletion barrier greys the severed target
					adv.Discard(0)
				}
			}
			for lag.Served() < adv.Served() {
				lag.SafePoint()
			}
		}
	}
}
