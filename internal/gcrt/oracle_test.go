package gcrt

import "testing"

// Deterministic micro-scenarios for the online invariant oracle: each
// ablated barrier direction is caught at the exact protocol point the
// paper's obligations guard, with no workload randomness involved.

// Deletion direction: sever an object's only heap edge during marking
// with the deletion barrier ablated. The victim is white (the cycle
// flipped the sense) and no barrier record exists, so the oracle must
// report marked_deletions on the spot — and the sweep then genuinely
// loses the object, which is what makes the finding meaningful.
func TestOracleCatchesAblatedDeletion(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 1, NoDeletionBarrier: true})
	o := rt.EnableOracle(OracleOptions{SampleEvery: 1})
	m := rt.Mutator(0)
	a := m.Alloc()
	b := m.Alloc()
	m.Store(a, 0, b)
	bObj := m.Root(b)
	m.Discard(b) // b reachable only through a.0

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(4) // PhMark: barriers armed, roots not yet scanned

	m.Store(a, 0, -1) // sever the only edge, no deletion barrier
	if got := o.CountByCheck()[CheckMarkedDeletions]; got != 1 {
		t.Fatalf("marked_deletions = %d after unprotected sever, want 1", got)
	}

	driveUntil(m, done)
	if rt.arena.Allocated(bObj) {
		t.Fatal("object survived; the ablation scenario no longer exercises a real loss")
	}
}

// Insertion direction: store a white object into a black object's field
// during marking with the insertion barrier ablated; the oracle must
// report marked_insertions.
func TestOracleCatchesAblatedInsertion(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 1, NoInsertionBarrier: true})
	o := rt.EnableOracle(OracleOptions{SampleEvery: 1})
	m := rt.Mutator(0)
	a := m.Alloc()
	b := m.Alloc()

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(4)

	m.Store(a, 0, b) // white target, no insertion barrier record
	if got := o.CountByCheck()[CheckMarkedInsertions]; got != 1 {
		t.Fatalf("marked_insertions = %d after unprotected insert, want 1", got)
	}
	driveUntil(m, done)
}

// The clean configuration must pass the same scenarios silently: the
// barrier buffers the victim, so the store-time obligation holds.
func TestOracleSilentOnCleanBarriers(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 1})
	o := rt.EnableOracle(OracleOptions{SampleEvery: 1})
	m := rt.Mutator(0)
	a := m.Alloc()
	b := m.Alloc()
	m.Store(a, 0, b)
	m.Discard(b)

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(4)

	m.Store(a, 0, -1)
	c := m.Alloc()
	if c >= 0 {
		m.Store(a, 0, c)
	}
	driveUntil(m, done)
	m.Park() // the audit handshake completes collector-side
	rt.Audit()
	if n := o.FindingCount(); n != 0 {
		t.Fatalf("clean barriers produced %d findings: %v", n, o.Findings())
	}
	if o.Checks() == 0 {
		t.Fatal("oracle ran zero checks — vacuous pass")
	}
}
