package gcrt

import (
	"math/rand"
	"sync"
	"testing"
)

// reachable walks the arena from the given roots and returns the set of
// reachable objects. Callers must quiesce the mutators first.
func reachable(a *Arena, roots []Obj) map[Obj]bool {
	seen := make(map[Obj]bool)
	var stack []Obj
	for _, r := range roots {
		if r != NilObj && a.Allocated(r) && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for f := 0; f < a.NumFields(); f++ {
			c := a.LoadField(o, f)
			if c != NilObj && a.Allocated(c) && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

func TestSingleMutatorBasicCycle(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 2, Mutators: 1})
	m := rt.Mutator(0)

	// Build a 3-node list: a → b → c.
	a := m.Alloc()
	b := m.Alloc()
	c := m.Alloc()
	m.Store(a, 0, b)
	m.Store(b, 0, c)
	// Garbage: an unreachable pair.
	g1 := m.Alloc()
	g2 := m.Alloc()
	m.Store(g1, 0, g2)
	m.Discard(g2)
	m.Discard(g1)

	if live := rt.Arena().LiveCount(); live != 5 {
		t.Fatalf("live = %d, want 5", live)
	}

	m.Park() // the collector handles handshakes for a parked mutator
	rt.Collect()
	rt.Collect() // snapshot floating garbage dies by the second cycle
	m.Unpark()

	if got := rt.Arena().LiveCount(); got != 3 {
		t.Fatalf("after collection live = %d, want 3 (a,b,c)", got)
	}
	for _, r := range m.Roots() {
		if !rt.Arena().Allocated(r) {
			t.Fatalf("root %d freed", r)
		}
	}
	if m.Load(a, 0) == -1 || rt.Arena().LoadField(m.Root(b), 0) != m.Root(c) {
		t.Fatal("list structure damaged by collection")
	}
	if f := rt.Arena().Faults.Load(); f != 0 {
		t.Fatalf("faults = %d", f)
	}
}

func TestAllocationFailsWhenExhaustedAndRecoversAfterGC(t *testing.T) {
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	for i := 0; i < 8; i++ {
		if m.Alloc() == -1 {
			t.Fatalf("alloc %d failed with free slots", i)
		}
	}
	if m.Alloc() != -1 {
		t.Fatal("alloc succeeded on full arena")
	}
	m.DiscardAll()
	m.Park()
	rt.Collect()
	rt.Collect()
	m.Unpark()
	if m.Alloc() == -1 {
		t.Fatal("alloc failed after everything was reclaimed")
	}
}

func TestFloatingGarbageReclaimedWithinTwoCycles(t *testing.T) {
	// E15: an object made unreachable right after the snapshot survives
	// the current cycle (floating garbage) but not the next.
	rt := New(Options{Slots: 32, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	keep := m.Alloc()
	float := m.Alloc()
	obj := m.Root(float)

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()

	// Pass the root-marking handshake (round 5) with float still rooted.
	m.AwaitHandshakes(5)
	// Now drop it: it was in the snapshot, so this cycle must retain it.
	m.Discard(float)
	m.Park()
	<-done

	if !rt.Arena().Allocated(obj) {
		t.Fatal("snapshot-reachable object freed in the same cycle")
	}
	// The next cycle reclaims it.
	rt.Collect()
	m.Unpark()
	if rt.Arena().Allocated(obj) {
		t.Fatal("floating garbage survived a second cycle")
	}
	if !rt.Arena().Allocated(m.Root(keep)) {
		t.Fatal("live object freed")
	}
	if f := rt.Arena().Faults.Load(); f != 0 {
		t.Fatalf("faults = %d", f)
	}
}

func TestAllocatedDuringMarkSurvives(t *testing.T) {
	// Objects allocated after the roots snapshot are allocated black
	// (f_A = f_M) and must survive the cycle even if never traced.
	rt := New(Options{Slots: 32, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	pre := m.Alloc()

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(5) // snapshot taken
	mid := m.Alloc()     // allocated black during marking
	midObj := m.Root(mid)
	m.Park()
	<-done

	if !rt.Arena().Allocated(midObj) {
		t.Fatal("object allocated during marking was swept")
	}
	if !rt.Arena().Allocated(m.Root(pre)) {
		t.Fatal("pre-cycle root was swept")
	}
	m.Unpark()
}

// TestLostObjectWithoutDeletionBarrier reproduces, deterministically, the
// classic snapshot failure (E11): with the deletion barrier ablated, a
// reference loaded from the heap after the mutator's root scan becomes
// the sole witness to an object once the heap edge is overwritten; the
// collector never learns of it and frees a reachable object.
//
// Determinism comes from a second, lagging mutator: the collector cannot
// begin tracing until every mutator has completed the root-marking
// round, so the first mutator's post-scan mischief happens strictly
// before any tracing.
func TestLostObjectWithoutDeletionBarrier(t *testing.T) {
	rt := New(Options{Slots: 16, Fields: 1, Mutators: 2, NoDeletionBarrier: true})
	m1, m2 := rt.Mutator(0), rt.Mutator(1)

	h := m1.Alloc()
	x := m1.Alloc()
	m1.Store(h, 0, x) // h.f = x
	m1.Discard(x)     // x reachable only via h

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()

	// Drive both mutators through the four initialization rounds.
	for m1.Served() < 4 || m2.Served() < 4 {
		m1.SafePoint()
		m2.SafePoint()
	}
	// m1 completes root marking (roots = {h}; h marked, x not);
	// m2 lags, so the collector is still blocked in the round.
	m1.AwaitHandshakes(5)

	// Behind the wavefront: load x into the roots (no read barrier) and
	// erase the heap edge. With the deletion barrier the overwrite would
	// have shaded x; ablated, x stays white while rooted by m1.
	xr := m1.Load(h, 0)
	if xr == -1 {
		t.Fatal("setup: h.f empty")
	}
	xObj := m1.Root(xr)
	m1.Store(h, 0, -1)

	// Only now does m2 let the round complete; tracing starts with no
	// path to x anywhere in the heap.
	m2.AwaitHandshakes(5)
	m1.Park()
	m2.Park()
	<-done
	m1.Unpark()
	m2.Unpark()

	if rt.Arena().Allocated(xObj) {
		t.Fatal("ablation did not bite: x survived")
	}
	// Touching the lost object faults: the observable crash.
	if m1.Load(xr, 0) != -1 {
		t.Fatal("load from freed object returned a value")
	}
	if f := rt.Arena().Faults.Load(); f == 0 {
		t.Fatal("no fault recorded for lost object")
	}
}

// TestLostObjectWithAllocWhite reproduces the allocation-color ablation
// (E11): objects allocated white after the snapshot are never marked and
// are swept while still rooted.
func TestLostObjectWithAllocWhite(t *testing.T) {
	rt := New(Options{Slots: 16, Fields: 1, Mutators: 1, AllocWhite: true})
	m := rt.Mutator(0)
	pre := m.Alloc() // ensures the mark loop runs a get-work round

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(5) // snapshot done; the collector now blocks on
	// the mark-termination handshake until we park, so the sweep cannot
	// start before the allocation below.
	fresh := m.Alloc() // allocated white under the ablation
	freshObj := m.Root(fresh)
	m.Park()
	<-done
	m.Unpark()

	if rt.Arena().Allocated(freshObj) {
		t.Fatal("ablation did not bite: white-allocated object survived")
	}
	if !rt.Arena().Allocated(m.Root(pre)) {
		t.Fatal("rooted pre-cycle object swept")
	}
}

// TestConcurrentStress runs real mutator goroutines against a cycling
// collector and checks that no reachable object is ever lost. Run with
// -race to exercise the Go-level memory discipline too.
func TestConcurrentStress(t *testing.T) {
	const (
		nMut   = 4
		slots  = 512
		fields = 2
		cycles = 25
	)
	rt := New(Options{Slots: slots, Fields: fields, Mutators: nMut})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nMut; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.Mutator(id)
			rng := rand.New(rand.NewSource(int64(id)*7919 + 17))
			m.Alloc()
			for {
				select {
				case <-stop:
					m.Park()
					return
				default:
				}
				switch n := m.NumRoots(); {
				case n == 0:
					m.Alloc()
				case n > 24:
					m.Discard(rng.Intn(n))
				default:
					switch rng.Intn(5) {
					case 0:
						m.Alloc()
					case 1:
						m.Load(rng.Intn(n), rng.Intn(fields))
					case 2:
						dst := rng.Intn(n)
						if rng.Intn(4) == 0 {
							dst = -1
						}
						m.Store(rng.Intn(n), rng.Intn(fields), dst)
					case 3:
						m.Discard(rng.Intn(n))
					case 4:
						m.SafePoint()
					}
				}
				m.SafePoint()
			}
		}(i)
	}

	for c := 0; c < cycles; c++ {
		rt.Collect()
	}
	close(stop)
	wg.Wait()

	if f := rt.Arena().Faults.Load(); f != 0 {
		t.Fatalf("%d faults (lost objects) under the verified configuration", f)
	}

	// Quiesced check: everything reachable from the roots is allocated.
	var roots []Obj
	for i := 0; i < nMut; i++ {
		roots = append(roots, rt.Mutator(i).Roots()...)
	}
	for _, r := range roots {
		if !rt.Arena().Allocated(r) {
			t.Fatalf("dangling root %d after stress", r)
		}
	}
	reach := reachable(rt.Arena(), roots)
	for o := range reach {
		if !rt.Arena().Allocated(o) {
			t.Fatalf("reachable object %d not allocated", o)
		}
	}

	// Two quiesced cycles reclaim all garbage: live count == reachable.
	rt.Collect()
	rt.Collect()
	var roots2 []Obj
	for i := 0; i < nMut; i++ {
		roots2 = append(roots2, rt.Mutator(i).Roots()...)
	}
	reach2 := reachable(rt.Arena(), roots2)
	if got := rt.Arena().LiveCount(); got != len(reach2) {
		t.Fatalf("after quiesced cycles: live=%d reachable=%d (garbage retained)", got, len(reach2))
	}
	t.Logf("stats: %v", rt.Stats())
}

func TestMarkFastPathSkipsCAS(t *testing.T) {
	// BarrierBuffer < 0 disables barrier buffering so barrier hits mark
	// eagerly; this test counts the resulting CAS traffic directly.
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 1, BarrierBuffer: -1})
	m := rt.Mutator(0)
	a := m.Alloc()
	b := m.Alloc()

	// Collector idle: stores run the barriers, but phase=Idle means no
	// CAS is ever attempted (Figure 5 line 4).
	m.Store(a, 0, b)
	s := rt.Stats()
	if s.MarkCAS != 0 {
		t.Fatalf("CAS attempted while idle: %d", s.MarkCAS)
	}

	// During marking, the first mark of an unmarked object CASes; a
	// second mark of the same object takes the fast path (§2.3).
	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(4) // barriers enabled, marking imminent
	before := rt.Stats()
	m.Store(a, 0, b) // insertion barrier marks b (CAS), deletion barrier marks b (fast or CAS)
	m.Store(a, 0, b) // both barriers now fast-path on marked b
	after := rt.Stats()
	if after.MarkCAS == before.MarkCAS {
		t.Fatal("no CAS during marking phase")
	}
	if after.MarkFast == before.MarkFast {
		t.Fatal("no fast-path marks on already-marked object")
	}
	m.Park()
	<-done
	m.Unpark()
}

func TestParkAllowsCollectionWithoutSafePoints(t *testing.T) {
	rt := New(Options{Slots: 16, Fields: 1, Mutators: 2})
	m0, m1 := rt.Mutator(0), rt.Mutator(1)
	a := m0.Alloc()
	m1.Alloc()
	m0.Park()
	m1.Park()
	rt.Collect() // must not deadlock with both mutators parked
	m0.Unpark()
	m1.Unpark()
	if !rt.Arena().Allocated(m0.Root(a)) {
		t.Fatal("parked mutator's root swept")
	}
	if rt.Stats().Cycles != 1 {
		t.Fatal("cycle did not complete")
	}
}

func TestDiscardKeepsIndexSemantics(t *testing.T) {
	rt := New(Options{Slots: 8, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	a := m.Alloc()
	b := m.Alloc()
	c := m.Alloc()
	objB, objC := m.Root(b), m.Root(c)
	m.Discard(a) // c moves into slot a
	if m.NumRoots() != 2 {
		t.Fatalf("roots = %d", m.NumRoots())
	}
	if m.Root(0) != objC || m.Root(1) != objB {
		t.Fatal("swap-remove semantics violated")
	}
}
