package gcrt

// This file implements the allocation-pool extension the paper devised
// but did not verify (§4, "Representations"):
//
//	"we have devised but not yet verified an extension to the model that
//	would allow mutators to gather pools of unallocated references from
//	which to perform fine-grained allocation without synchronizing. For
//	TSO, we can also perform the marking and initialization of the fields
//	at each allocation without the need for an MFENCE, because publishing
//	the new reference to other mutators can occur only after the prior
//	initializing stores have been flushed."
//
// With Options.AllocPoolSize > 0, each mutator refills a private pool of
// reserved free slots in one synchronized grab and then allocates from it
// with no shared-state interaction at all. Reserved slots are invisible
// to the sweep (their headers stay clear), so a pool is simply a slice of
// the free list owned by one thread — the same thread-locality argument
// the paper makes for the work-lists.

// refillPool moves up to n free slots from the arena's free list into
// the pool (one lock acquisition).
func (a *Arena) refillPool(pool []Obj, n int) []Obj {
	a.freeMu.Lock()
	for len(pool) < n && len(a.free) > 0 {
		o := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		pool = append(pool, o)
	}
	a.freeMu.Unlock()
	return pool
}

// returnPool gives reserved slots back to the free list.
func (a *Arena) returnPool(pool []Obj) {
	if len(pool) == 0 {
		return
	}
	a.freeMu.Lock()
	a.free = append(a.free, pool...)
	a.freeMu.Unlock()
}

// allocFromPool installs an object on a reserved slot without touching
// any shared allocator state. The header store publishes the object;
// on x86-TSO the initializing field stores drain before any later store
// that could publish the reference, which is why no fence is needed —
// the paper's §4 argument.
func (a *Arena) allocFromPool(o Obj, flag bool) {
	base := int(o) * a.nfields
	for i := 0; i < a.nfields; i++ {
		a.fields[base+i].Store(int32(NilObj))
	}
	h := hdrAlloc
	if flag {
		h |= hdrFlag
	}
	a.headers[o].Store(h)
}

// AllocPooled allocates from the mutator's private pool, refilling it
// from the shared free list when empty. Semantically identical to Alloc;
// the difference is synchronization frequency: one lock acquisition per
// PoolSize allocations instead of one per allocation.
func (m *Mutator) AllocPooled() int {
	m.ops++
	if len(m.pool) == 0 {
		n := m.rt.opt.AllocPoolSize
		if n <= 0 {
			n = 16
		}
		m.pool = m.rt.arena.refillPool(m.pool, n)
		if len(m.pool) == 0 {
			return -1 // arena exhausted (other pools may hold reserves)
		}
	}
	o := m.pool[len(m.pool)-1]
	m.pool = m.pool[:len(m.pool)-1]
	m.rt.arena.allocFromPool(o, m.rt.fA.Load())
	m.roots = append(m.roots, o)
	return len(m.roots) - 1
}

// ReturnPool releases the mutator's reserved slots back to the shared
// free list, e.g. before parking for a long time so other mutators can
// allocate them.
func (m *Mutator) ReturnPool() {
	m.rt.arena.returnPool(m.pool)
	m.pool = m.pool[:0]
}

// PoolSize reports the number of reserved slots currently held.
func (m *Mutator) PoolSize() int { return len(m.pool) }
