package gcrt

// This file keeps the explicit allocation-pool API from the paper's §4
// extension (see tlab.go for the quoted passage and the design
// argument). AllocPooled predates the TLAB path and remains as a
// separately sized, caller-managed reservation: tests and experiments
// use it to pin down reservation behavior precisely, while Alloc's
// implicit TLAB is the production path. Both draw from the same sharded
// free lists.

// refillPool moves up to n free slots from the sharded free lists into
// the pool, preferring the given home shard.
func (a *Arena) refillPool(pool []Obj, home, n int) []Obj {
	return a.reserveBatch(pool, home, n)
}

// returnPool gives reserved slots back to their shards' free lists.
func (a *Arena) returnPool(pool []Obj) {
	a.returnBatch(pool)
}

// AllocPooled allocates from the mutator's private pool, refilling it
// from the shared free lists when empty. Semantically identical to
// Alloc; the difference is synchronization frequency: one lock
// acquisition per PoolSize allocations instead of one per allocation.
func (m *Mutator) AllocPooled() int {
	m.ops++
	if len(m.pool) == 0 {
		n := m.rt.opt.AllocPoolSize
		if n <= 0 {
			n = 16
		}
		m.pool = m.rt.arena.refillPool(m.pool, m.id, n)
		if len(m.pool) == 0 {
			return -1 // arena exhausted (other pools may hold reserves)
		}
	}
	o := m.pool[len(m.pool)-1]
	m.pool = m.pool[:len(m.pool)-1]
	m.rt.arena.install(o, m.rt.fA.Load())
	m.roots = append(m.roots, o)
	return len(m.roots) - 1
}

// ReturnPool releases the mutator's reserved slots back to the shared
// free lists, e.g. before parking for a long time so other mutators can
// allocate them.
func (m *Mutator) ReturnPool() {
	m.rt.arena.returnPool(m.pool)
	m.pool = m.pool[:0]
}

// PoolSize reports the number of reserved slots currently held.
func (m *Mutator) PoolSize() int { return len(m.pool) }
