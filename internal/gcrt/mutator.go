package gcrt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Mutator is a mutator thread's handle: its roots, its private grey
// work-list, its barrier buffer and allocation caches, and its handshake
// mailbox. Each Mutator must be driven by a single goroutine; the
// collector touches it only while it is parked.
//
// The operations mirror paper Figure 6: Load, Store (with deletion and
// insertion barriers), Alloc, and Discard — plus SafePoint, the GC-safe
// point a real compiler would emit at backward branches and call returns,
// and Park/Unpark for blocking externally.
type Mutator struct {
	rt *Runtime // gcrt:guard immutable
	id int      // gcrt:guard immutable

	// roots is the mutator's root set (stack slots and registers),
	// addressed by the caller as dense indexes.
	// gcrt:guard owner(mutator)
	roots []Obj
	// wl is the private grey work-list W_m.
	// gcrt:guard owner(mutator)
	wl []Obj
	// pool holds reserved free slots for the explicit AllocPooled API
	// (pool.go, the paper's §4 extension).
	// gcrt:guard owner(mutator)
	pool []Obj
	// tlab holds the implicit per-mutator allocation cache behind Alloc
	// (tlab.go).
	// gcrt:guard owner(mutator)
	tlab []Obj
	// bbuf and bcap are the batched write-barrier buffer (barrier.go).
	bbuf []Obj // gcrt:guard owner(mutator)
	bcap int   // gcrt:guard immutable

	// Handshake mailbox: the collector bumps hsWanted to the new round
	// number; the mutator (or the collector, while the mutator is
	// parked) acknowledges by storing the round into hsAcked. lastAck
	// is the mutator goroutine's private copy of hsAcked, so the
	// SafePoint fast path is a single atomic load and a compare.
	hsWanted atomic.Int64 // gcrt:guard atomic
	hsAcked  atomic.Int64 // gcrt:guard atomic
	lastAck  int64        // gcrt:guard owner(mutator)

	parked atomic.Bool  // gcrt:guard atomic
	parkMu sync.Mutex   // gcrt:guard atomic
	served atomic.Int64 // gcrt:guard atomic

	// Acknowledgement flag for the stop-the-world baseline.
	stwAcked atomic.Bool // gcrt:guard atomic
	// Pause accounting: the longest and cumulative time this mutator has
	// been held at a safe point.
	pauseMax   atomic.Int64 // gcrt:guard atomic
	pauseTotal atomic.Int64 // gcrt:guard atomic
	pauseCount atomic.Int64 // gcrt:guard atomic

	// ops counts operations performed (stats).
	// gcrt:guard owner(mutator)
	ops int64
	// oracleTick is the sampling counter for online invariant checks.
	// gcrt:guard owner(mutator)
	oracleTick int64
}

// ID returns the mutator's ordinal.
func (m *Mutator) ID() int { return m.id }

// NumRoots reports the size of the root set.
func (m *Mutator) NumRoots() int { return len(m.roots) }

// Root returns the object held in root slot i.
func (m *Mutator) Root(i int) Obj { return m.roots[i] }

// Roots returns a copy of the root set.
func (m *Mutator) Roots() []Obj { return append([]Obj(nil), m.roots...) }

// Alloc allocates a new object with the current allocation color f_A,
// pushes it as a new root, and returns its root index; -1 when the arena
// is exhausted. (Figure 6 Alloc.) Slots come from the mutator's TLAB
// (tlab.go) unless Options.LegacyAlloc selects the seed's shared
// free-list path.
func (m *Mutator) Alloc() int {
	m.ops++
	o := m.allocSlot()
	if o == NilObj {
		return -1
	}
	m.roots = append(m.roots, o)
	return len(m.roots) - 1
}

// AdoptRoot pushes an externally supplied object reference as a new
// root and returns its index. The caller must guarantee o stays
// reachable (rooted elsewhere or the world quiesced) until the adoption
// returns; workload setup uses it to hand a shared hub object to every
// mutator before concurrency starts.
func (m *Mutator) AdoptRoot(o Obj) int {
	m.ops++
	m.roots = append(m.roots, o)
	return len(m.roots) - 1
}

// Load reads field f of the object in root slot src and pushes the
// result as a new root, returning its index; -1 if the field was NULL.
// Heap reads carry no barrier (§2.1: a read barrier would be too
// expensive; the snapshot argument covers loaded references instead).
func (m *Mutator) Load(src, f int) int {
	m.ops++
	v := m.rt.arena.LoadField(m.roots[src], f)
	if v == NilObj {
		return -1
	}
	m.roots = append(m.roots, v)
	return len(m.roots) - 1
}

// Store writes the object in root slot dst into field f of the object in
// root slot src, running the deletion barrier on the overwritten value
// and the insertion barrier on the stored value first (Figure 6 Store).
// Pass dst = -1 to store NULL (pure deletion). Barrier targets go
// through the batched barrier buffer (barrier.go) unless buffering is
// disabled.
func (m *Mutator) Store(src, f, dst int) {
	m.ops++
	srcObj := m.roots[src]
	dstObj := NilObj
	if dst >= 0 {
		dstObj = m.roots[dst]
	}
	ph := Phase(m.rt.phase.Load())
	old := m.rt.arena.LoadField(srcObj, f)
	if !m.rt.opt.NoDeletionBarrier {
		m.barrierHit(old) // deletion (snapshot) barrier
	}
	if !m.rt.opt.NoInsertionBarrier {
		m.barrierHit(dstObj) // insertion (incremental-update) barrier
	}
	if o := m.rt.oracle; o != nil {
		o.checkStore(m, old, dstObj, ph)
	}
	m.rt.arena.StoreField(srcObj, f, dstObj)
}

// Discard drops root slot i (Figure 6 Discard). The last root moves into
// the vacated slot, so indexes other than i and the last are stable.
func (m *Mutator) Discard(i int) {
	m.ops++
	last := len(m.roots) - 1
	m.roots[i] = m.roots[last]
	m.roots = m.roots[:last]
}

// DiscardAll empties the root set.
func (m *Mutator) DiscardAll() {
	m.ops++
	m.roots = m.roots[:0]
}

// SafePoint polls for a pending soft handshake and, if one is pending,
// performs the requested work and acknowledges (Figure 4, mutator side).
// Call it as often as a compiler would emit GC-safe points; elemental
// operations (Load/Store/Alloc and SafePoint itself) are free of safe
// points and cannot be interrupted by the collector.
//
// The fast path is one atomic load: the collector publishes a round
// number, and the mutator compares it against its private copy of the
// last round it acknowledged.
func (m *Mutator) SafePoint() {
	m.stwCheck() // stop-the-world baseline rendezvous (no-op otherwise)
	want := m.hsWanted.Load()
	if want == m.lastAck {
		return
	}
	start := time.Now()
	m.serviceHandshake(HSType(m.rt.hsType.Load()))
	m.lastAck = want
	m.hsAcked.Store(want)
	m.served.Add(1)
	m.recordPause(time.Since(start))
}

// serviceHandshake performs the mutator-side work of the current round.
// Every round starts by draining the barrier buffer — the handshake is
// the runtime's MFENCE point (barrier.go).
func (m *Mutator) serviceHandshake(t HSType) {
	m.flushBarriers()
	switch t {
	case HSGetRoots:
		for _, r := range m.roots {
			m.rt.mark(r, &m.wl)
		}
		m.rt.transfer(m.wl)
		m.wl = m.wl[:0]
	case HSGetWork:
		m.rt.transfer(m.wl)
		m.wl = m.wl[:0]
	case HSValidate:
		if o := m.rt.oracle; o != nil {
			o.validateMutator(m)
		}
	}
}

// Served reports how many handshakes this mutator has completed
// (including ones the collector performed on its behalf while parked).
// Test harnesses use it to step mutators to precise protocol points.
func (m *Mutator) Served() int64 { return m.served.Load() }

// AwaitHandshakes calls SafePoint until the mutator has completed n
// handshakes in total, yielding between polls.
func (m *Mutator) AwaitHandshakes(n int64) {
	for m.served.Load() < n {
		m.SafePoint()
		runtime.Gosched()
	}
}

// Park declares the mutator blocked (e.g. waiting on I/O): it sits at a
// permanent safe point and the collector performs handshake work on its
// behalf. The TLAB reservation is returned to the shared free lists so
// other mutators can allocate from it while this one is blocked.
func (m *Mutator) Park() {
	m.ReturnTLAB()
	m.parkMu.Lock()
	m.parked.Store(true)
	m.parkMu.Unlock()
}

// Unpark resumes the mutator. It synchronizes with any in-flight
// collector-side handshake work before returning, and refreshes the
// mutator's private view of the rounds the collector completed on its
// behalf.
func (m *Mutator) Unpark() {
	m.parkMu.Lock()
	m.parked.Store(false)
	m.lastAck = m.hsAcked.Load()
	m.parkMu.Unlock()
}

// Ops reports the number of heap operations performed.
func (m *Mutator) Ops() int64 { return m.ops }
