package gcrt

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// latBuckets is the number of log2-spaced latency histogram buckets;
// bucket i counts durations in [2^(i-1), 2^i) nanoseconds, which covers
// everything up to ~2 minutes.
const latBuckets = 40

// latHist is a lock-free log2 latency histogram.
type latHist struct {
	buckets [latBuckets]atomic.Int64 // gcrt:guard immutable
}

func (h *latHist) record(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	i := bits.Len64(uint64(n))
	if i >= latBuckets {
		i = latBuckets - 1
	}
	h.buckets[i].Add(1)
}

// percentile returns an upper bound for the p-th percentile (p in
// [0,1]): the top of the histogram bucket the p-th sample falls in.
func (h *latHist) percentile(p float64) time.Duration {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > rank {
			return time.Duration(int64(1) << uint(i))
		}
	}
	return time.Duration(int64(1) << (latBuckets - 1))
}

// Stats holds the runtime's internal counters.
type Stats struct {
	cycles         atomic.Int64 // gcrt:guard atomic
	freed          atomic.Int64 // gcrt:guard atomic
	marked         atomic.Int64 // gcrt:guard atomic
	scanned        atomic.Int64 // gcrt:guard atomic
	markFast       atomic.Int64 // mark() took the no-CAS fast path; gcrt:guard atomic
	markCAS        atomic.Int64 // mark() attempted the CAS; gcrt:guard atomic
	handshakes     atomic.Int64 // gcrt:guard atomic
	handshakeNanos atomic.Int64 // gcrt:guard atomic
	cycleNanos     atomic.Int64 // gcrt:guard atomic
	rootsRounds    atomic.Int64 // gcrt:guard atomic

	tlabRefills     atomic.Int64 // TLAB batch reservations (tlab.go); gcrt:guard atomic
	steals          atomic.Int64 // successful deque steals (parallel.go); gcrt:guard atomic
	barrierBuffered atomic.Int64 // barrier targets that entered a buffer; gcrt:guard atomic
	barrierFlushes  atomic.Int64 // barrier-buffer drains (barrier.go); gcrt:guard atomic

	// hsHist is the per-round handshake latency histogram.
	// gcrt:guard immutable
	hsHist latHist
}

func (s *Stats) recordHandshake(d time.Duration) {
	s.handshakeNanos.Add(d.Nanoseconds())
	s.hsHist.record(d)
}

// StatsSnapshot is an immutable copy of the counters.
type StatsSnapshot struct {
	// Cycles is the number of completed collection cycles.
	Cycles int64
	// Freed is the total number of objects reclaimed by sweeps.
	Freed int64
	// Marked counts successful (winning) marks.
	Marked int64
	// Scanned counts objects traced (blackened) by the collector.
	Scanned int64
	// MarkFast counts mark() invocations that skipped the CAS because
	// the flag already had the expected value — the §2.3 fast path.
	MarkFast int64
	// MarkCAS counts mark() invocations that attempted the CAS.
	MarkCAS int64
	// Handshakes is the number of handshake rounds completed.
	Handshakes int64
	// HandshakeTime is the cumulative collector-side handshake latency.
	HandshakeTime time.Duration
	// HandshakeP50 and HandshakeP99 are upper bounds on the median and
	// 99th-percentile per-round handshake latency (log2-bucketed).
	HandshakeP50 time.Duration
	HandshakeP99 time.Duration
	// CycleTime is the cumulative collection-cycle duration.
	CycleTime time.Duration
	// RootsRounds counts root-marking handshake rounds: exactly one per
	// cycle for the snapshot collector, one per rescan round for the
	// incremental-update rescanning variant.
	RootsRounds int64

	// TLABRefills counts per-mutator allocation-cache batch
	// reservations from the sharded free lists.
	TLABRefills int64
	// Steals counts successful work-stealing deque steals during
	// parallel tracing.
	Steals int64
	// BarrierBuffered counts write-barrier targets that entered a
	// per-mutator barrier buffer; BarrierFlushes counts buffer drains.
	BarrierBuffered int64
	BarrierFlushes  int64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Cycles:          s.cycles.Load(),
		Freed:           s.freed.Load(),
		Marked:          s.marked.Load(),
		Scanned:         s.scanned.Load(),
		MarkFast:        s.markFast.Load(),
		MarkCAS:         s.markCAS.Load(),
		Handshakes:      s.handshakes.Load(),
		HandshakeTime:   time.Duration(s.handshakeNanos.Load()),
		HandshakeP50:    s.hsHist.percentile(0.50),
		HandshakeP99:    s.hsHist.percentile(0.99),
		CycleTime:       time.Duration(s.cycleNanos.Load()),
		RootsRounds:     s.rootsRounds.Load(),
		TLABRefills:     s.tlabRefills.Load(),
		Steals:          s.steals.Load(),
		BarrierBuffered: s.barrierBuffered.Load(),
		BarrierFlushes:  s.barrierFlushes.Load(),
	}
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"cycles=%d freed=%d marked=%d scanned=%d fastpath=%d cas=%d handshakes=%d hsTime=%v hsP50=%v hsP99=%v cycleTime=%v tlabRefills=%d steals=%d barrierBuffered=%d",
		s.Cycles, s.Freed, s.Marked, s.Scanned, s.MarkFast, s.MarkCAS,
		s.Handshakes, s.HandshakeTime, s.HandshakeP50, s.HandshakeP99,
		s.CycleTime, s.TLABRefills, s.Steals, s.BarrierBuffered)
}
