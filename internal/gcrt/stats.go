package gcrt

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats holds the runtime's internal counters.
type Stats struct {
	cycles         atomic.Int64
	freed          atomic.Int64
	marked         atomic.Int64
	scanned        atomic.Int64
	markFast       atomic.Int64 // mark() took the no-CAS fast path
	markCAS        atomic.Int64 // mark() attempted the CAS
	handshakes     atomic.Int64
	handshakeNanos atomic.Int64
	cycleNanos     atomic.Int64
	rootsRounds    atomic.Int64
}

// StatsSnapshot is an immutable copy of the counters.
type StatsSnapshot struct {
	// Cycles is the number of completed collection cycles.
	Cycles int64
	// Freed is the total number of objects reclaimed by sweeps.
	Freed int64
	// Marked counts successful (winning) marks.
	Marked int64
	// Scanned counts objects traced (blackened) by the collector.
	Scanned int64
	// MarkFast counts mark() invocations that skipped the CAS because
	// the flag already had the expected value — the §2.3 fast path.
	MarkFast int64
	// MarkCAS counts mark() invocations that attempted the CAS.
	MarkCAS int64
	// Handshakes is the number of handshake rounds completed.
	Handshakes int64
	// HandshakeTime is the cumulative collector-side handshake latency.
	HandshakeTime time.Duration
	// CycleTime is the cumulative collection-cycle duration.
	CycleTime time.Duration
	// RootsRounds counts root-marking handshake rounds: exactly one per
	// cycle for the snapshot collector, one per rescan round for the
	// incremental-update rescanning variant.
	RootsRounds int64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Cycles:        s.cycles.Load(),
		Freed:         s.freed.Load(),
		Marked:        s.marked.Load(),
		Scanned:       s.scanned.Load(),
		MarkFast:      s.markFast.Load(),
		MarkCAS:       s.markCAS.Load(),
		Handshakes:    s.handshakes.Load(),
		HandshakeTime: time.Duration(s.handshakeNanos.Load()),
		CycleTime:     time.Duration(s.cycleNanos.Load()),
		RootsRounds:   s.rootsRounds.Load(),
	}
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"cycles=%d freed=%d marked=%d scanned=%d fastpath=%d cas=%d handshakes=%d hsTime=%v cycleTime=%v",
		s.Cycles, s.Freed, s.Marked, s.Scanned, s.MarkFast, s.MarkCAS,
		s.Handshakes, s.HandshakeTime, s.CycleTime)
}
