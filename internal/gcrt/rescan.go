package gcrt

import "time"

// This file implements the design alternative the paper's §2
// ("Timeliness") rejects: a pure incremental-update collector that keeps
// only the insertion barrier and, instead of snapshotting, **rescans the
// mutators' roots** until a rescan discovers nothing new:
//
//	"One solution to this is for the collector to rescan the mutators'
//	roots before marking terminates. However, such references might hide
//	long chains of unmarked objects, potentially prolonging the marking
//	phase ... our collector ensures the timely completion of the
//	collection cycle by employing a snapshot (or deletion) barrier."
//
// CollectRescan is safe without the deletion barrier (the insertion
// barrier maintains the strong tricolor invariant on the heap, and roots
// are re-greyed every round), but the number of rounds is driven by the
// mutators: a mutator that keeps loading white references keeps the
// marking phase alive. The snapshot collector's round count is bounded by
// design. Experiment E2c quantifies the difference.

// CollectRescan runs one incremental-update collection cycle with root
// rescanning and returns the number of objects freed. Use it with
// Options.NoDeletionBarrier set; the deletion barrier is harmless but
// redundant here.
func (rt *Runtime) CollectRescan() int {
	cycleStart := time.Now()

	rt.handshake(HSNoop)
	rt.fM.Store(!rt.fM.Load())
	rt.handshake(HSNoop)
	rt.phase.Store(int32(PhInit))
	rt.handshake(HSNoop)
	rt.phase.Store(int32(PhMark))
	if !rt.opt.AllocWhite {
		rt.fA.Store(rt.fM.Load())
	}
	rt.handshake(HSNoop)

	// Rescan until a root-marking round yields no new grey objects and
	// the trace is complete. Unlike Collect, the roots handshake repeats.
	for {
		rt.handshake(HSGetRoots)
		work := rt.drainQueue()
		if len(work) == 0 {
			break
		}
		var scratch []Obj
		for len(work) > 0 {
			src := work[len(work)-1]
			work = work[:len(work)-1]
			for f := 0; f < rt.arena.NumFields(); f++ {
				child := rt.arena.LoadField(src, f)
				if child == NilObj {
					continue
				}
				scratch = scratch[:0]
				rt.mark(child, &scratch)
				work = append(work, scratch...)
			}
			rt.stats.scanned.Add(1)
		}
	}

	rt.phase.Store(int32(PhSweep))
	freed := rt.sweep()
	rt.phase.Store(int32(PhIdle))

	rt.stats.cycles.Add(1)
	rt.stats.freed.Add(int64(freed))
	rt.stats.cycleNanos.Add(time.Since(cycleStart).Nanoseconds())
	return freed
}

// RescanRounds reports the cumulative number of root-marking rounds.
func (rt *Runtime) RescanRounds() int64 { return rt.stats.rootsRounds.Load() }
