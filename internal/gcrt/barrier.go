package gcrt

// This file implements batched write-barrier buffers. The paper models
// mutators over x86-TSO: a mutator's stores sit in a private store
// buffer until a fence drains them, and the proof's per-mutator ghost
// state (ghost_honorary_grey, the marked_insertions / marked_deletions
// obligations of §3.2) exists precisely to account for barrier targets
// that are known to the mutator but not yet visible to the collector.
//
// The runtime mirrors that structure: instead of marking a barrier
// target immediately (a CAS-prone shared-memory operation on the Store
// hot path), the mutator appends it to a private buffer. The buffer
// drains — every target is put through the verified Figure 5 mark —
// at each handshake, exactly where the paper's mutators execute their
// MFENCE, making the handshake the real synchronization point it is in
// the model. A full buffer drains early into the mutator's private
// work-list, which is itself only published at handshakes.
//
// Soundness is the model's own argument: a buffered target is the
// runtime image of ghost_honorary_grey, and the mark-loop termination
// handshake (HSGetWork) cannot complete for a mutator without draining
// its buffer, so the collector can never observe "no grey anywhere"
// while a white reference hides in a buffer (gc_W_empty_mut_inv).
// Buffers never cross a cycle boundary with live content: every phase
// transition is a handshake, and entries drained while the collector is
// idle are discarded by mark()'s phase check, exactly as the model's
// barrier marks are no-ops outside a cycle.

// defaultBarrierBuffer is the buffer capacity when Options.BarrierBuffer
// is zero. Negative values disable buffering: barrier targets are
// marked immediately, the seed's (and the paper figures') literal
// instruction order.
const defaultBarrierBuffer = 64

// barrierCap resolves the configured buffer capacity; 0 when buffering
// is disabled.
func (rt *Runtime) barrierCap() int {
	switch {
	case rt.opt.BarrierBuffer < 0:
		return 0
	case rt.opt.BarrierBuffer == 0:
		return defaultBarrierBuffer
	default:
		return rt.opt.BarrierBuffer
	}
}

// barrierHit runs one write barrier on ref: either an immediate Figure 5
// mark (unbuffered mode) or an append to the mutator's barrier buffer.
// The already-marked fast path is taken inline in both modes, so the
// buffer only ever holds plausible CAS candidates.
func (m *Mutator) barrierHit(ref Obj) {
	if ref == NilObj {
		return
	}
	rt := m.rt
	if Phase(rt.phase.Load()) == PhIdle {
		// No cycle in flight: the barrier is a no-op (Figure 5 line 4).
		rt.stats.markFast.Add(1)
		return
	}
	if m.bcap == 0 {
		rt.mark(ref, &m.wl)
		return
	}
	// Inline fast path: skip targets that are already at the mark sense.
	// Racy like mark()'s own test; the flush re-checks under the CAS.
	if !rt.arena.Allocated(ref) || rt.arena.flag(ref) == rt.fM.Load() {
		rt.stats.markFast.Add(1)
		return
	}
	m.bbuf = append(m.bbuf, ref)
	rt.stats.barrierBuffered.Add(1)
	if len(m.bbuf) >= m.bcap {
		m.flushBarriers()
	}
}

// flushBarriers drains the barrier buffer through the verified mark into
// the mutator's private work-list. Called at every handshake (the
// model's MFENCE point) and on buffer overflow. The caller must be the
// mutator's goroutine, or the collector while the mutator is parked.
func (m *Mutator) flushBarriers() {
	if len(m.bbuf) == 0 {
		return
	}
	for _, ref := range m.bbuf {
		m.rt.mark(ref, &m.wl)
	}
	m.bbuf = m.bbuf[:0]
	m.rt.stats.barrierFlushes.Add(1)
}

// inBarrierBuf reports whether ref is pending in the barrier buffer.
// Oracle use only (O(len) scan).
func (m *Mutator) inBarrierBuf(ref Obj) bool {
	for _, b := range m.bbuf {
		if b == ref {
			return true
		}
	}
	return false
}

// BarrierBuffered reports the number of barrier targets currently
// pending in the mutator's buffer (diagnostics and tests).
func (m *Mutator) BarrierBuffered() int { return len(m.bbuf) }
