package gcrt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Barrier-buffer tests: targets accumulate privately during marking,
// drain exactly at handshakes (the model's MFENCE point) or on
// overflow, and the deferred marking never loses a snapshot-reachable
// object. Run with -race.

// driveUntil services safe points on m's goroutine until done closes.
func driveUntil(m *Mutator, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
			m.SafePoint()
			runtime.Gosched()
		}
	}
}

func TestBarrierBufferFlushesAtHandshake(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 1, BarrierBuffer: 8})
	m := rt.Mutator(0)
	a := m.Alloc()
	b := m.Alloc()

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(4) // PhMark: barriers armed, roots not yet taken

	// b was allocated before the cycle, so it is white now. The
	// insertion barrier must buffer it — not mark it.
	m.Store(a, 0, b)
	if got := m.BarrierBuffered(); got != 1 {
		t.Fatalf("buffered = %d after one barrier hit, want 1", got)
	}
	if rt.arena.flag(m.Root(b)) == rt.fM.Load() {
		t.Fatal("buffered target was marked before the handshake")
	}
	if rt.Stats().BarrierBuffered != 1 {
		t.Fatalf("stats.BarrierBuffered = %d, want 1", rt.Stats().BarrierBuffered)
	}

	// The next handshake (HSGetRoots, round 5) drains the buffer before
	// doing anything else.
	m.AwaitHandshakes(5)
	if got := m.BarrierBuffered(); got != 0 {
		t.Fatalf("buffered = %d after handshake, want 0", got)
	}
	if rt.arena.flag(m.Root(b)) != rt.fM.Load() {
		t.Fatal("handshake flush did not mark the buffered target")
	}
	if rt.Stats().BarrierFlushes == 0 {
		t.Fatal("no flush recorded")
	}

	driveUntil(m, done)
}

func TestBarrierBufferOverflowFlushesEarly(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 2, Mutators: 1, BarrierBuffer: 2})
	m := rt.Mutator(0)
	a := m.Alloc()
	c1 := m.Alloc()
	c2 := m.Alloc()

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(4)

	m.Store(a, 0, c1) // buffer: [c1]
	if got := m.BarrierBuffered(); got != 1 {
		t.Fatalf("buffered = %d, want 1", got)
	}
	m.Store(a, 1, c2) // buffer: [c1 c2] -> capacity reached -> flush
	if got := m.BarrierBuffered(); got != 0 {
		t.Fatalf("buffered = %d after overflow, want 0 (flushed)", got)
	}
	fM := rt.fM.Load()
	if rt.arena.flag(m.Root(c1)) != fM || rt.arena.flag(m.Root(c2)) != fM {
		t.Fatal("overflow flush did not mark the buffered targets")
	}
	if rt.Stats().BarrierFlushes != 1 {
		t.Fatalf("flushes = %d, want 1", rt.Stats().BarrierFlushes)
	}

	driveUntil(m, done)
}

func TestBarrierUnbufferedMarksImmediately(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 1, BarrierBuffer: -1})
	m := rt.Mutator(0)
	a := m.Alloc()
	b := m.Alloc()

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(4)

	m.Store(a, 0, b)
	if got := m.BarrierBuffered(); got != 0 {
		t.Fatalf("unbuffered mode buffered %d targets", got)
	}
	if rt.arena.flag(m.Root(b)) != rt.fM.Load() {
		t.Fatal("unbuffered barrier did not mark immediately")
	}
	if rt.Stats().BarrierBuffered != 0 {
		t.Fatal("unbuffered mode counted buffered targets")
	}

	driveUntil(m, done)
}

// TestBarrierBufferSnapshotSurvival: an object whose only heap edge is
// severed during marking sits solely in the deletion-barrier buffer
// until the next handshake. It must survive this cycle's sweep
// (snapshot semantics) and die in the next (floating garbage bound).
func TestBarrierBufferSnapshotSurvival(t *testing.T) {
	rt := New(Options{Slots: 64, Fields: 1, Mutators: 1, BarrierBuffer: 8})
	m := rt.Mutator(0)
	a := m.Alloc()
	b := m.Alloc()
	m.Store(a, 0, b)
	bObj := m.Root(b)
	m.Discard(b) // b reachable only through a.0

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(4)

	// Sever the only edge: the deletion barrier buffers bObj; the heap
	// now has no path to it.
	m.Store(a, 0, -1)
	if !m.inBarrierBuf(bObj) {
		t.Fatal("severed target not in the barrier buffer")
	}

	driveUntil(m, done)
	if !rt.arena.Allocated(bObj) {
		t.Fatal("snapshot-reachable object swept despite buffered barrier record")
	}

	// Next cycle: nothing references bObj anywhere, so it is collected.
	done2 := make(chan struct{})
	go func() { rt.Collect(); close(done2) }()
	driveUntil(m, done2)
	if rt.arena.Allocated(bObj) {
		t.Fatal("floating garbage survived a second cycle")
	}
}

// TestBarrierBufferConcurrentChurn: mutators churn edges through small
// barrier buffers while full collections and oracle audits run; the
// oracle must find nothing, across GOMAXPROCS settings.
func TestBarrierBufferConcurrentChurn(t *testing.T) {
	for _, procs := range []int{2, 8} {
		procs := procs
		t.Run(formatProcs(procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

			const nmut = 4
			rt := New(Options{Slots: 4096, Fields: 2, Mutators: nmut, BarrierBuffer: 4})
			o := rt.EnableOracle(OracleOptions{SampleEvery: 1})

			var stop atomic.Bool
			var wg sync.WaitGroup
			for i := 0; i < nmut; i++ {
				m := rt.Mutator(i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					a := m.Alloc()
					for a < 0 && !stop.Load() {
						// Siblings may have churned the arena to exhaustion
						// before this goroutine got its first slot; service
						// handshakes so a collection can free garbage.
						m.SafePoint()
						runtime.Gosched()
						a = m.Alloc()
					}
					for !stop.Load() {
						if b := m.Alloc(); b >= 0 {
							m.Store(a, 0, b)
							m.Discard(b)
						}
						m.SafePoint()
					}
				}()
			}

			for c := 0; c < 4; c++ {
				rt.Collect()
				rt.Audit()
			}
			stop.Store(true)
			wg.Wait()

			if n := o.FindingCount(); n != 0 {
				t.Fatalf("oracle found %d violations in a clean run: %v", n, o.Findings())
			}
			if o.Checks() == 0 {
				t.Fatal("oracle ran zero checks — vacuous pass")
			}
		})
	}
}
