//go:build race

package explore

// raceEnabled reports whether the race detector is compiled in. The
// deep state-space hunts multiply their wall-clock by the detector's
// ~10-20x slowdown without exercising any concurrency the smaller
// parallel tests don't already cover, so they skip themselves under
// -race (see skipDeepHuntUnderRace).
const raceEnabled = true
