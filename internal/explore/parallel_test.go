package explore

import (
	"testing"

	"repro/internal/gcmodel"
	"repro/internal/invariant"
)

// safeCfg is a small safe configuration whose reachable state space
// (~15k states) is exhausted in well under a second: the
// TestSafeModelShortExhaust workload (stores only, budget 1).
func safeCfg() gcmodel.Config {
	cfg := baseCfg()
	cfg.OpBudget = 1
	cfg.DisableLoad = true
	cfg.DisableDiscard = true
	cfg.MaxBuf = 1
	return cfg
}

// TestDeterministicAcrossWorkers: the layer-synchronous search makes
// every component of the verdict — state count, transitions, depth,
// deadlocks, completeness — independent of the worker count and of the
// shard geometry.
func TestDeterministicAcrossWorkers(t *testing.T) {
	m := mustBuild(t, safeCfg())
	var base Result
	for i, opt := range []Options{
		{Workers: 1, HashOnly: true},
		{Workers: 2, Shards: 4, HashOnly: true},
		{Workers: 8, Shards: 256, HashOnly: true},
		{Workers: 2, HashOnly: false}, // audit mode must agree exactly
	} {
		res := Run(m, invariant.Safety(), opt)
		if res.Violation != nil {
			t.Fatalf("opt %+v: unexpected violation: %v", opt, res.Violation)
		}
		if !res.Complete {
			t.Fatalf("opt %+v: not exhausted", opt)
		}
		if res.HashCollisions != 0 {
			t.Fatalf("opt %+v: %d hash collisions", opt, res.HashCollisions)
		}
		if i == 0 {
			base = res
			t.Logf("baseline: states=%d transitions=%d depth=%d deadlocks=%d",
				res.States, res.Transitions, res.Depth, res.Deadlocks)
			continue
		}
		if res.States != base.States || res.Transitions != base.Transitions ||
			res.Depth != base.Depth || res.Deadlocks != base.Deadlocks {
			t.Fatalf("opt %+v: results diverge: got (s=%d t=%d d=%d dl=%d), want (s=%d t=%d d=%d dl=%d)",
				opt, res.States, res.Transitions, res.Depth, res.Deadlocks,
				base.States, base.Transitions, base.Depth, base.Deadlocks)
		}
	}
}

// TestShortestCounterexampleAcrossWorkers: a seeded invariant violation
// (deletion barrier removed) yields the shortest counterexample trace,
// the trace replays to the same violating fingerprint, and both the
// violation depth and the chosen violating state are identical under 1
// and N workers.
func TestShortestCounterexampleAcrossWorkers(t *testing.T) {
	cfg := baseCfg()
	cfg.NoDeletionBarrier = true
	m := mustBuild(t, cfg)

	var depth int
	var violFP string
	for i, workers := range []int{1, 8} {
		res := Run(m, invariant.All(), Options{Trace: true, Workers: workers, HashOnly: true})
		v := res.Violation
		if v == nil {
			t.Fatalf("workers=%d: no violation found", workers)
		}
		if len(v.Trace) != v.Depth {
			t.Fatalf("workers=%d: trace length %d != depth %d", workers, len(v.Trace), v.Depth)
		}
		// The trace must replay to exactly the violating state.
		last := v.Trace[len(v.Trace)-1].State
		if got, want := m.Fingerprint(last), m.Fingerprint(v.State); got != want {
			t.Fatalf("workers=%d: trace replays to a different state than the violation", workers)
		}
		if i == 0 {
			depth, violFP = v.Depth, m.Fingerprint(v.State)
			t.Logf("violation at depth %d after %d states", v.Depth, res.States)
			continue
		}
		if v.Depth != depth {
			t.Fatalf("workers=%d: violation depth %d, want %d", workers, v.Depth, depth)
		}
		if m.Fingerprint(v.State) != violFP {
			t.Fatalf("workers=%d: different violating state chosen", workers)
		}
	}

	// Minimality: no violation is reachable strictly above the reported
	// depth — the layer barrier guarantees the counterexample is shortest.
	res := Run(m, invariant.All(), Options{MaxDepth: depth - 1, Workers: 4, HashOnly: true})
	if res.Violation != nil {
		t.Fatalf("violation at depth %d contradicts minimal depth %d",
			res.Violation.Depth, depth)
	}
}

// TestCollisionAudit explores a mid-size configuration with the full
// fingerprints retained (HashOnly off) and asserts that the 64-bit
// hashes of all distinct canonical fingerprints are themselves distinct.
//
// This documents the compaction's soundness argument: the checker's
// verdict is exact if and only if no two distinct reachable
// fingerprints collide in 64 bits. For n uniformly hashed states the
// collision probability is ≈ n²/2⁶⁵ (birthday bound) — about 10⁻⁹ at
// n = 10⁶ — and the audit mode turns that probabilistic argument into a
// checked fact for any configuration small enough to afford the
// strings. Compact mode is validated here, and can be re-validated for
// any new configuration via `gcmc -audit`.
func TestCollisionAudit(t *testing.T) {
	// The full tiny workload (loads, stores, discards, budget 2),
	// capped: ~200k distinct states through the hash audit.
	capStates, minStates := 200_000, 100_000
	if raceEnabled {
		// A smaller sample keeps the detector's slowdown in check while
		// still exercising the concurrent audit path.
		capStates, minStates = 50_000, 25_000
	}
	m := mustBuild(t, baseCfg())
	res := Run(m, nil, Options{MaxStates: capStates, Workers: 2, HashOnly: false})
	if res.States < minStates {
		t.Fatalf("audit explored only %d states — not a meaningful sample", res.States)
	}
	if res.HashCollisions != 0 {
		t.Fatalf("%d hash collisions among %d states", res.HashCollisions, res.States)
	}
	if res.VisitedBytes <= int64(res.States)*recBytes {
		t.Fatalf("audit mode should retain fingerprint strings: %d bytes for %d states",
			res.VisitedBytes, res.States)
	}
	t.Logf("0 collisions among %d states (%.1f audit bytes/state)",
		res.States, float64(res.VisitedBytes)/float64(res.States))
}

// TestVisitedSetCompaction: hashed fingerprints must cut the visited-set
// payload by at least 4× relative to retained string fingerprints, with
// an identical verdict.
func TestVisitedSetCompaction(t *testing.T) {
	m := mustBuild(t, safeCfg())
	compact := Run(m, nil, Options{Workers: 1, HashOnly: true})
	audit := Run(m, nil, Options{Workers: 1, HashOnly: false})
	if compact.States != audit.States || compact.Complete != audit.Complete {
		t.Fatalf("modes disagree: %d vs %d states", compact.States, audit.States)
	}
	cb := float64(compact.VisitedBytes) / float64(compact.States)
	ab := float64(audit.VisitedBytes) / float64(audit.States)
	t.Logf("bytes/state: hashed=%.1f strings=%.1f (%.1fx)", cb, ab, ab/cb)
	if ab < 4*cb {
		t.Fatalf("compaction below 4x: hashed %.1f B/state vs strings %.1f B/state", cb, ab)
	}
}

// TestProgressMonotonic: the progress callback fires on a monotonic
// "every N states since the last report" counter — strictly increasing
// state counts, intervals of at least N, no duplicate reports.
func TestProgressMonotonic(t *testing.T) {
	m := mustBuild(t, safeCfg())
	const every = 500
	var reports []int
	res := Run(m, nil, Options{
		Workers:       1,
		HashOnly:      true,
		ProgressEvery: every,
		Progress:      func(p Progress) { reports = append(reports, p.States) },
	})
	if len(reports) < res.States/every-1 {
		t.Fatalf("only %d reports for %d states at interval %d", len(reports), res.States, every)
	}
	prev := 0
	for _, s := range reports {
		if s-prev < every {
			t.Fatalf("report at %d states only %d after previous %d (interval %d)",
				s, s-prev, prev, every)
		}
		prev = s
	}
	if prev > res.States {
		t.Fatalf("reported %d states, final count %d", prev, res.States)
	}
}
