package explore

import (
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/storage"
)

// spillOpt returns options that force the spill rung to fire at the very
// first layer boundary: a 1-byte budget with a heap probe pinned far
// above it. With SpillDir set, a run that would otherwise die at the
// 100% rung instead parks its frontiers and visited records on disk and
// keeps going.
func spillOpt(t *testing.T, trace bool) Options {
	t.Helper()
	return Options{
		Workers:   2,
		Trace:     trace,
		HashOnly:  true,
		MemBudget: 1,
		MemSample: func() uint64 { return 1 << 40 },
		SpillDir:  t.TempDir(),
	}
}

// TestSpillCompletesUnderBudget is the degradation-rung acceptance test:
// a run whose budget is exhausted at every layer boundary — which
// without a spill directory stops at the 100% rung — completes
// exhaustively through the spill path, with a verdict identical to the
// unconstrained run's.
func TestSpillCompletesUnderBudget(t *testing.T) {
	m := mustBuild(t, safeCfg())
	for _, trace := range []bool{false, true} {
		name := "hash-only"
		if trace {
			name = "trace"
		}
		t.Run(name, func(t *testing.T) {
			want := Run(m, invariant.Safety(), Options{Workers: 2, Trace: trace, HashOnly: true})
			if !want.Complete {
				t.Fatalf("baseline incomplete: %+v", want)
			}

			// First confirm the budget is lethal without a spill dir.
			noSpill := spillOpt(t, trace)
			noSpill.SpillDir = ""
			dead := Run(m, invariant.Safety(), noSpill)
			if dead.Stopped != StopMemBudget {
				t.Fatalf("budget without spill dir stopped %q, want mem-budget", dead.Stopped)
			}

			res := Run(m, invariant.Safety(), spillOpt(t, trace))
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if !res.Complete || res.Stopped != StopNone {
				t.Fatalf("spilled run incomplete: stopped=%q", res.Stopped)
			}
			if res.States != want.States || res.Transitions != want.Transitions ||
				res.Depth != want.Depth || res.Deadlocks != want.Deadlocks {
				t.Fatalf("spilled verdict diverged: got s=%d t=%d d=%d dl=%d, want s=%d t=%d d=%d dl=%d",
					res.States, res.Transitions, res.Depth, res.Deadlocks,
					want.States, want.Transitions, want.Depth, want.Deadlocks)
			}
			if !res.Spilled.Active || res.Spilled.Layers == 0 || res.Spilled.Bytes == 0 {
				t.Fatalf("spill rung did not do disk work: %+v", res.Spilled)
			}
			if trace && res.Spilled.States == 0 {
				t.Fatalf("trace mode flushed no visited records: %+v", res.Spilled)
			}
		})
	}
}

// TestSpillViolationTrace: a counterexample found while the visited set
// lives on disk still materializes a full replayed trace — the parent
// chain is reconstructed from the flushed spill records, and replay
// itself cross-checks every hash along the path.
func TestSpillViolationTrace(t *testing.T) {
	cfg := baseCfg()
	cfg.NoDeletionBarrier = true
	m := mustBuild(t, cfg)
	opt := spillOpt(t, true)
	opt.MaxStates = 2_000_000
	res := Run(m, invariant.Safety(), opt)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Violation == nil {
		t.Fatalf("ablated model found no violation (stopped=%q, %d states)", res.Stopped, res.States)
	}
	if !res.Spilled.Active {
		t.Fatal("run never spilled — the test exercised nothing")
	}
	if len(res.Violation.Trace) == 0 {
		t.Fatal("spilled violation has no replayed counterexample")
	}
	if res.Violation.Invariant != "valid_refs_inv" {
		t.Fatalf("violated %s, want valid_refs_inv", res.Violation.Invariant)
	}
}

// TestSpillENOSPC: a disk that fills up mid-spill stops the run loudly
// with StopSpill and a named error — never a silent partial verdict.
func TestSpillENOSPC(t *testing.T) {
	m := mustBuild(t, safeCfg())
	ffs := storage.NewFaultFS(nil)
	ffs.FailPath("frontier-", storage.ENOSPC, 0)
	opt := spillOpt(t, false)
	opt.FS = ffs
	res := Run(m, invariant.Safety(), opt)
	if res.Stopped != StopSpill {
		t.Fatalf("stopped=%q, want spill-failed", res.Stopped)
	}
	if res.Complete {
		t.Fatal("failed spill claimed a complete exploration")
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "spill") {
		t.Fatalf("spill failure not named: %v", res.Err)
	}
}

// TestSpillFingerprintNeutral: SpillDir and FS change only the
// representation of the search, never the verdict, so they must not
// perturb the options fingerprint that keys checkpoints and the verdict
// cache.
func TestSpillFingerprintNeutral(t *testing.T) {
	m := mustBuild(t, safeCfg())
	base := Options{Workers: 2, Trace: true, HashOnly: true}
	fpA, _ := OptionsFingerprint(m, invariant.Safety(), base)
	spilled := base
	spilled.SpillDir = t.TempDir()
	spilled.FS = storage.NewFaultFS(nil)
	fpB, _ := OptionsFingerprint(m, invariant.Safety(), spilled)
	if fpA != fpB {
		t.Fatalf("spill options perturbed the fingerprint: %016x vs %016x", fpA, fpB)
	}
}
