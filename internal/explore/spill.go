package explore

// The disk-spill degradation rung: when the memory watchdog reaches
// its 85% rung and Options.SpillDir is set, the explorer moves its
// bulk state to disk instead of (eventually) stopping at the 100%
// rung. Two things spill, both as CRC-framed sections reusing the
// checkpoint file encoding:
//
//   - Visited-set records: each shard's (hash → parent,eidx) map is
//     flushed to visited.spill and replaced by a membership-only key
//     set (8 bytes/state instead of 24) plus a small "hot" buffer of
//     records inserted since the last flush. Records are only kept at
//     all when Options.Trace needs them for counterexample replay.
//   - Frontier layers: at each layer boundary the freshly built next
//     layer's states are encoded into frontier-NNNNNN.spill with a
//     per-entry offset table, and the decoded states are dropped from
//     memory. Workers re-read and decode their claimed chunk ranges
//     with one ReadAt per chunk, so at most one layer's decoded states
//     (the one being built) are resident instead of two.
//
// Spilling is verdict-neutral — it changes the representation of the
// search state, never which states are visited or checked — so
// SpillDir and FS are deliberately excluded from OptionsFingerprint.
// Periodic checkpointing is suspended while spilled (the record maps
// a snapshot needs are on disk); an interrupted spilled run restarts
// from its last pre-spill checkpoint or from scratch.
//
// Any spill I/O failure is loud: the run stops at the next boundary
// with Result.Stopped == StopSpill and a named error in Result.Err.
// Completing on a disk that lies is not an option.

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/storage"
)

// SpillStats counts the disk-spill rung's work; zero unless the rung
// fired (Active).
type SpillStats struct {
	// Active reports that the spill rung activated.
	Active bool
	// Layers is the number of frontier layers parked to disk.
	Layers int
	// Flushes is the number of visited-record flushes to visited.spill.
	Flushes int
	// States is the number of visited-set records resident on disk.
	States int64
	// Bytes is the total bytes written to spill files.
	Bytes int64
}

// spillRecBytes is the on-disk encoding of one visited record:
// hash(8) + parent(8) + eidx(4).
const spillRecBytes = 8 + 8 + 4

// spillKeyBytes is the in-memory payload per visited state once its
// record has spilled: just the 8-byte membership key.
const spillKeyBytes = 8

// parkedLayer is one frontier layer parked on disk: an open section
// file plus the per-entry frame offsets. All fields are set at
// construction; workers fetch ranges concurrently through ReadAt.
type parkedLayer struct {
	f    storage.File // gcrt:guard immutable
	path string       // gcrt:guard immutable
	offs []int64      // gcrt:guard immutable
	lens []int32      // gcrt:guard immutable
}

// fetchRange reads and decodes entries [lo,hi) of the parked layer
// with a single contiguous ReadAt, verifying each frame's checksum.
func (pl *parkedLayer) fetchRange(m *gcmodel.Model, lo, hi int) ([]cimp.System[*gcmodel.Local], error) {
	start := pl.offs[lo]
	end := pl.offs[hi-1] + int64(pl.lens[hi-1])
	buf := make([]byte, end-start)
	if _, err := pl.f.ReadAt(buf, start); err != nil {
		return nil, fmt.Errorf("explore: spill read %s [%d:%d): %w", pl.path, start, end, err)
	}
	out := make([]cimp.System[*gcmodel.Local], 0, hi-lo)
	off := 0
	for i := lo; i < hi; i++ {
		name, payload, next, err := checkpoint.ReadSection(buf, off)
		if err != nil {
			return nil, fmt.Errorf("explore: spill frame %d in %s: %w", i, pl.path, err)
		}
		if name != "s" {
			return nil, fmt.Errorf("explore: spill frame %d in %s: unexpected section %q", i, pl.path, name)
		}
		st, rest, err := m.DecodeState(payload)
		if err != nil {
			return nil, fmt.Errorf("explore: spill frame %d in %s: %w", i, pl.path, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("explore: spill frame %d in %s: %d trailing bytes", i, pl.path, len(rest))
		}
		out = append(out, st)
		off = next
	}
	return out, nil
}

// spillState owns the spill directory and files. Its methods lock mu
// internally; the hot paths workers touch (parkedLayer reads) go
// through immutable fields only.
type spillState struct {
	fs   storage.FS // gcrt:guard immutable
	dir  string     // gcrt:guard immutable
	keep bool       // gcrt:guard immutable

	mu      sync.Mutex   // gcrt:guard atomic
	active  bool         // gcrt:guard by(mu)
	err     error        // gcrt:guard by(mu)
	vf      storage.File // gcrt:guard by(mu)
	vfPath  string       // gcrt:guard by(mu)
	parked  *parkedLayer // gcrt:guard by(mu)
	seq     int          // gcrt:guard by(mu)
	layers  int          // gcrt:guard by(mu)
	flushes int          // gcrt:guard by(mu)
	states  int64        // gcrt:guard by(mu)
	bytes   int64        // gcrt:guard by(mu)
}

// newSpillState wires the rung without activating it; keep says
// whether visited records must be retained for trace replay.
func newSpillState(fsys storage.FS, dir string, keep bool) *spillState {
	return &spillState{fs: storage.OrOS(fsys), dir: dir, keep: keep}
}

func (sp *spillState) isActive() bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.active
}

// firstErr returns the latched spill failure, if any.
func (sp *spillState) firstErr() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.err
}

// fail latches the first spill failure (workers race to report).
func (sp *spillState) fail(err error) {
	sp.mu.Lock()
	if sp.err == nil {
		sp.err = err
	}
	sp.mu.Unlock()
}

func (sp *spillState) stats() SpillStats {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return SpillStats{Active: sp.active, Layers: sp.layers, Flushes: sp.flushes, States: sp.states, Bytes: sp.bytes}
}

// takeParked returns the parked file for the layer about to be
// expanded (nil when the frontier is in memory).
func (sp *spillState) takeParked() *parkedLayer {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.parked
}

// activate opens the spill directory and converts the visited set to
// spilled (membership + hot buffer) representation. Idempotent; runs
// only at a layer boundary.
func (sp *spillState) activate(v *visited) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.err != nil {
		return sp.err
	}
	if sp.active {
		return nil
	}
	if err := sp.fs.MkdirAll(sp.dir); err != nil {
		sp.err = fmt.Errorf("explore: spill dir %s: %w", sp.dir, err)
		return sp.err
	}
	path := filepath.Join(sp.dir, "visited.spill")
	f, err := sp.fs.Create(path)
	if err != nil {
		sp.err = fmt.Errorf("explore: spill file %s: %w", path, err)
		return sp.err
	}
	sp.vf, sp.vfPath = f, path
	v.spillConvert(sp.keep)
	sp.active = true
	return nil
}

// boundary runs the per-layer spill work at a consistent cut: flush
// the hot visited records, then park the freshly built next layer.
// Returns (and latches) the first failure.
func (sp *spillState) boundary(m *gcmodel.Model, v *visited, layer []qent) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.err != nil {
		return sp.err
	}
	if !sp.active {
		return nil
	}
	if err := sp.flushHotLocked(v); err != nil {
		sp.err = err
		return err
	}
	if err := sp.parkLayerLocked(m, layer); err != nil {
		sp.err = err
		return err
	}
	runtime.GC() // the layer's decoded states and flushed records just became garbage
	return nil
}

// flushHotLocked appends every shard's hot records to visited.spill as
// one CRC-framed "recs" section, then clears the hot buffers.
func (sp *spillState) flushHotLocked(v *visited) error {
	if !sp.keep {
		return nil
	}
	var payload []byte
	n := 0
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.Lock()
		for h, r := range s.hot {
			payload = appendU64(payload, h)
			payload = appendU64(payload, r.parent)
			payload = appendU32(payload, uint32(r.eidx))
			n++
		}
		clear(s.hot)
		s.mu.Unlock()
	}
	if n == 0 {
		return nil
	}
	frame := checkpoint.AppendSection(nil, "recs", payload)
	if _, err := sp.vf.Write(frame); err != nil {
		return fmt.Errorf("explore: spill write %s: %w", sp.vfPath, err)
	}
	if err := sp.vf.Sync(); err != nil {
		return fmt.Errorf("explore: spill sync %s: %w", sp.vfPath, err)
	}
	sp.flushes++
	sp.states += int64(n)
	sp.bytes += int64(len(frame))
	return nil
}

// parkLayerLocked writes the next layer's encoded states to a fresh
// frontier file and drops the decoded states from memory. The
// previous layer's parked file has been fully consumed and is
// removed.
func (sp *spillState) parkLayerLocked(m *gcmodel.Model, layer []qent) error {
	sp.closeParkedLocked()
	if len(layer) == 0 {
		return nil
	}
	path := filepath.Join(sp.dir, fmt.Sprintf("frontier-%06d.spill", sp.seq))
	sp.seq++
	f, err := sp.fs.Create(path)
	if err != nil {
		return fmt.Errorf("explore: spill file %s: %w", path, err)
	}
	offs := make([]int64, len(layer))
	lens := make([]int32, len(layer))
	var off int64
	var buf, scratch []byte
	for i := range layer {
		scratch = m.EncodeState(scratch[:0], layer[i].state)
		pre := len(buf)
		buf = checkpoint.AppendSection(buf, "s", scratch)
		offs[i] = off
		lens[i] = int32(len(buf) - pre)
		off += int64(len(buf) - pre)
		if len(buf) >= 1<<20 {
			if _, err := f.Write(buf); err != nil {
				f.Close()
				return fmt.Errorf("explore: spill write %s: %w", path, err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return fmt.Errorf("explore: spill write %s: %w", path, err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("explore: spill sync %s: %w", path, err)
	}
	sp.parked = &parkedLayer{f: f, path: path, offs: offs, lens: lens}
	sp.layers++
	sp.bytes += off
	var zero cimp.System[*gcmodel.Local]
	for i := range layer {
		layer[i].state = zero
	}
	return nil
}

func (sp *spillState) closeParkedLocked() {
	if sp.parked == nil {
		return
	}
	sp.parked.f.Close()
	sp.fs.Remove(sp.parked.path)
	sp.parked = nil
}

// loadRecs reads every spilled visited record back into one map — the
// counterexample-trace path needs parent links that have gone to disk.
// Only called after the search has stopped.
func (sp *spillState) loadRecs() (map[uint64]rec, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.vf == nil {
		return nil, nil
	}
	data, err := storage.ReadFile(sp.fs, sp.vfPath)
	if err != nil {
		return nil, fmt.Errorf("explore: spill trace records unreadable: %w", err)
	}
	recs := make(map[uint64]rec, sp.states)
	for off := 0; off < len(data); {
		name, payload, next, err := checkpoint.ReadSection(data, off)
		if err != nil {
			return nil, fmt.Errorf("explore: spill trace records damaged: %w", err)
		}
		if name != "recs" || len(payload)%spillRecBytes != 0 {
			return nil, fmt.Errorf("explore: spill trace records damaged: section %q, %d payload bytes", name, len(payload))
		}
		for p := 0; p+spillRecBytes <= len(payload); p += spillRecBytes {
			h := readU64(payload[p:])
			recs[h] = rec{parent: readU64(payload[p+8:]), eidx: int32(readU32(payload[p+16:]))}
		}
		off = next
	}
	return recs, nil
}

// cleanup best-effort removes the spill working files; they are a
// representation of a finished (or failed) search, not a durability
// artifact.
func (sp *spillState) cleanup() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.closeParkedLocked()
	if sp.vf != nil {
		sp.vf.Close()
		sp.fs.Remove(sp.vfPath)
		sp.vf = nil
	}
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
