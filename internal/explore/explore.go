// Package explore is an explicit-state model checker for the GC model: a
// parallel breadth-first search over the CIMP system semantics with
// compact hashed state fingerprints, invariant checking at every
// reachable state, and counterexample trace reconstruction. It plays the
// role of the paper's Isabelle/HOL induction over the reachable states
// of the _⇒_ relation, restricted to bounded configurations.
//
// # Architecture
//
// The search is layer-synchronous: all states at BFS depth d are
// expanded by Options.Workers goroutines before any state at depth d+1
// is expanded. The layer barrier preserves the sequential checker's
// shortest-counterexample guarantee and its MaxDepth accounting, and
// makes the verdict — state count, transition count, depth, deadlocks,
// violation or not — identical for every worker count. Workers claim
// chunks of the current layer from a shared cursor, so load balance is
// dynamic within a layer.
//
// The visited set is sharded into Options.Shards lock-striped shards
// keyed by the top bits of the state's 64-bit FNV-1a fingerprint hash.
// By default only the hash is retained (Options.HashOnly), at ~24
// payload bytes per state regardless of configuration size; the full
// canonical fingerprint encoding is kept only in the opt-in audit mode,
// which counts hash collisions (Result.HashCollisions) to back the
// compaction's soundness argument — see DESIGN.md.
//
// Memory: full states live only on the two live BFS layers (current and
// next); visited states are retained as hashes plus, when Options.Trace
// is set, a compact (parent hash, event index) pair per state.
// Counterexample traces are materialized afterwards by replaying the
// recorded event indices from the initial state.
//
// # State-space reduction
//
// Options.Reduce enables a TSO-aware partial-order reduction (the ample
// sets are chosen by gcmodel.AmpleChoice; see gcmodel/reduce.go for the
// commutation argument) and Options.Symmetry keys the visited set by
// mutator-symmetry-canonical fingerprints (gcmodel/symmetry.go). Both
// preserve deterministic verdicts and concrete counterexample replay;
// both are validated against full exploration by the differential
// harness in internal/diffcheck. See DESIGN.md.
package explore

import (
	"bytes"
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/invariant"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Options bounds and instruments a run.
type Options struct {
	// MaxStates caps the number of distinct states visited (0 = no cap).
	// The cap is checked concurrently by all workers, so a capped run
	// may overshoot by a few states and its exact count can vary across
	// worker counts; uncapped runs are exactly deterministic.
	MaxStates int
	// MaxDepth caps the BFS depth (0 = no cap): states at MaxDepth are
	// still visited and checked, but not expanded.
	MaxDepth int
	// Trace records a compact (parent hash, event index) pair per state
	// so a counterexample path can be reconstructed by replay.
	Trace bool
	// Progress, if non-nil, receives a Progress report roughly every
	// ProgressEvery newly visited states. Reports are driven by a
	// monotonic global state counter, so they can neither skip nor
	// double-report an interval regardless of worker count. The
	// transition count in a report is a mid-layer read of the workers'
	// running totals and may trail the state count slightly.
	Progress func(Progress)
	// ProgressEvery is the number of newly visited states between
	// Progress calls (0 = 8192).
	ProgressEvery int
	// Workers is the number of goroutines expanding each BFS layer
	// (0 = GOMAXPROCS). Verdicts do not depend on the worker count.
	Workers int
	// Shards is the number of lock-striped visited-set shards, rounded
	// up to a power of two (0 = 64).
	Shards int
	// HashOnly stores only the 64-bit fingerprint hash per visited state
	// (compact mode — the production default, wired by package core and
	// cmd/gcmc). When false, the checker additionally retains every
	// state's full canonical fingerprint and counts hash collisions in
	// Result.HashCollisions; this audit mode costs string-fingerprint
	// memory and exists to validate the compaction (the verdict itself
	// is computed from hashes in both modes, so the two modes agree
	// exactly whenever HashCollisions is 0).
	HashOnly bool
	// Reduce enables the TSO-aware partial-order reduction: at states
	// where gcmodel.AmpleChoice nominates a safe buffer-local step
	// (store-buffer enqueues, lock-shielded or single-writer reads,
	// no-op fences, lock releases), only that single transition is
	// pursued and the commuting interleavings against it are skipped.
	// Reduced exploration visits a subset of the full state space and,
	// by the ample-set argument in gcmodel/reduce.go, preserves the
	// verdict; recorded event indices still number the *unreduced*
	// successor enumeration, so counterexamples replay through the
	// unreduced relation. Reduction is validated continuously against
	// full exploration by the differential harness in
	// internal/diffcheck. A reduced run loses the BFS
	// shortest-counterexample guarantee: safe steps are taken eagerly,
	// so a violation may be reported at a greater depth than the
	// minimal one (never a different verdict).
	Reduce bool
	// Symmetry keys the visited set by mutator-symmetry-canonical
	// fingerprints (gcmodel.AppendCanonicalFingerprint): states that
	// differ only by a standing-class-preserving permutation of the
	// mutators collapse into one visited entry. The frontier still
	// carries concrete states, so traces remain concrete runs. No-op
	// for single-mutator models.
	Symmetry bool
	// EventCheck, if non-nil, is invoked for every transition the search
	// takes (including transitions into already-visited states) with the
	// source state, the successor, and the event. A non-nil error is
	// reported as an "event-check" violation at the successor, with the
	// usual minimal-depth/minimal-hash tie-breaking. Package core wires
	// analysis.Validator.CheckEvent here to validate the declared effect
	// footprint against the run.
	EventCheck func(parent, next cimp.System[*gcmodel.Local], ev cimp.Event) error
	// StateCheck, if non-nil, is invoked once per newly visited state
	// after the invariant battery. A non-nil error is reported as a
	// "state-check" violation. Package core wires
	// analysis.Validator.CheckPOR here to diff the derived POR safe
	// classification against the handwritten one on every reachable
	// state.
	StateCheck func(st cimp.System[*gcmodel.Local]) error
	// Context, if non-nil, requests graceful interruption: cancellation
	// is observed at layer boundaries only ("finish the current layer"),
	// so an interrupted run stops at a consistent cut, writes a final
	// checkpoint when one is configured, and reports
	// Result.Stopped == StopInterrupted. Mid-layer work is never torn.
	Context context.Context
	// Checkpoint configures periodic snapshots of the search at layer
	// boundaries; see CheckpointOptions.
	Checkpoint CheckpointOptions
	// Resume, if non-nil, restores the search from a snapshot instead of
	// the initial state. The snapshot's options fingerprint must match
	// this run's (model configuration and every verdict-relevant option;
	// the worker count is deliberately excluded, so a run may be resumed
	// with a different parallelism). A mismatch or a corrupt snapshot
	// refuses the run with Result.Stopped == StopResume. A resumed run
	// reaches the same final state/transition/depth counts and verdict
	// as the uninterrupted run.
	Resume *checkpoint.Snapshot
	// MemBudget, if positive, is a soft heap budget in bytes enforced by
	// a watchdog at layer boundaries. As the live heap approaches the
	// budget the run degrades in steps rather than dying to the OOM
	// killer: at 70% it writes a one-time emergency checkpoint (when a
	// checkpoint path is configured); at 85% it drops audit-mode
	// fingerprint retention and continues hash-only (Result.Degraded);
	// at 100% it writes a final checkpoint and stops cleanly with
	// Result.Stopped == StopMemBudget.
	MemBudget int64
	// MemSample overrides the watchdog's heap probe (a test hook; nil
	// means runtime.ReadMemStats HeapAlloc).
	MemSample func() uint64
	// SpillDir, if set, arms the disk-spill degradation rung: at the
	// watchdog's 85% rung the explorer spills visited-set records and
	// frontier layers to CRC-framed section files under this directory
	// and keeps going, so a run that would stop at the 100% rung
	// completes degraded-but-exhaustive (see Result.Spilled). Spilling
	// changes only the representation of the search state, never the
	// verdict, so it is excluded from OptionsFingerprint. A spill I/O
	// failure stops the run loudly with StopSpill. See spill.go.
	SpillDir string
	// FS routes the run's durable writes (checkpoints and spill files)
	// through a storage.FS; nil means the real filesystem. Process-
	// local and verdict-neutral: excluded from OptionsFingerprint.
	FS storage.FS
}

// CheckpointOptions configures run snapshots.
type CheckpointOptions struct {
	// Path is the checkpoint file; empty disables checkpointing. Writes
	// are atomic (temp file + rename), so the file always holds the
	// latest complete snapshot.
	Path string
	// EveryLayers is the number of BFS layers between periodic
	// snapshots (0 = 16 when Path is set). Interruption and the memory
	// watchdog write additional snapshots regardless of cadence.
	EveryLayers int
}

// Progress is one progress report.
type Progress struct {
	// States is the number of distinct states visited so far.
	States int
	// Transitions is the number of transitions taken so far (a mid-layer
	// approximation: workers publish their totals at chunk boundaries).
	Transitions int
	// Depth is the BFS depth currently being expanded into.
	Depth int
	// Frontier is the size of the layer currently being expanded.
	Frontier int
	// Elapsed is the wall-clock time since the run (not the original,
	// pre-resume run) started.
	Elapsed time.Duration
}

// StopReason says why a run ended before exhausting the state space.
type StopReason string

const (
	// StopNone: the reachable state space was exhausted — the verdict is
	// over the complete bounded model.
	StopNone StopReason = ""
	// StopViolation: an invariant failed; the search stopped at the end
	// of the violating layer.
	StopViolation StopReason = "violation"
	// StopMaxStates: the MaxStates cap fired.
	StopMaxStates StopReason = "max-states"
	// StopMaxDepth: the MaxDepth cap fired.
	StopMaxDepth StopReason = "max-depth"
	// StopInterrupted: Options.Context was cancelled; the run finished
	// its layer and stopped at a consistent cut.
	StopInterrupted StopReason = "interrupted"
	// StopMemBudget: the memory watchdog exhausted its degradation
	// ladder and stopped the run.
	StopMemBudget StopReason = "mem-budget"
	// StopPanic: a worker panicked; the run was poisoned and terminated
	// within the layer. Result.Err holds the *PanicError.
	StopPanic StopReason = "panic"
	// StopResume: Options.Resume was refused (options mismatch or a
	// damaged snapshot). Nothing was explored; Result.Err says why.
	StopResume StopReason = "resume-refused"
	// StopSpill: the disk-spill rung was armed but its I/O failed; the
	// run stopped at a boundary rather than complete on a disk that
	// lies. Result.Err names the failed operation.
	StopSpill StopReason = "spill-failed"
)

// PanicError is the structured report of a contained worker panic.
type PanicError struct {
	// Depth is the layer being expanded when the panic fired.
	Depth int
	// StateHash is the fingerprint hash of the state the panicking
	// worker was expanding.
	StateHash uint64
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery
	// (deferred functions run before the stack unwinds, so the panic
	// origin frames are included).
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("worker panic at depth %d (state %016x): %v", p.Depth, p.StateHash, p.Value)
}

// Step is one transition of a counterexample trace.
type Step struct {
	Ev    cimp.Event
	State cimp.System[*gcmodel.Local]
}

// Violation reports an invariant failure at a reachable state.
type Violation struct {
	Invariant string
	Err       error
	Depth     int
	State     cimp.System[*gcmodel.Local]
	// Trace is the path from the initial state (inclusive of the failing
	// state, exclusive of the initial state); empty unless Options.Trace.
	Trace []Step
}

func (v *Violation) Error() string {
	return fmt.Sprintf("%s violated at depth %d: %v", v.Invariant, v.Depth, v.Err)
}

// Render formats the violation with its counterexample trace (if
// recorded) for human consumption.
func (v *Violation) Render(m *gcmodel.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s violated at depth %d: %v\n", v.Invariant, v.Depth, v.Err)
	if len(v.Trace) > 0 {
		fmt.Fprintf(&b, "counterexample (%d steps):\n", len(v.Trace))
		fmt.Fprintf(&b, "  init: %s\n", trace.State(m, m.Initial()))
		for i, s := range v.Trace {
			fmt.Fprintf(&b, "  %3d. %-60s %s\n", i+1, trace.Event(m, s.Ev), trace.State(m, s.State))
		}
	} else {
		fmt.Fprintf(&b, "state: %s\n", trace.State(m, v.State))
	}
	return b.String()
}

// Result summarizes an exploration.
type Result struct {
	// States is the number of distinct reachable states visited.
	States int
	// Transitions is the number of transitions taken.
	Transitions int
	// Depth is the deepest BFS layer reached.
	Depth int
	// Complete reports whether the full reachable state space was
	// exhausted: it is exactly Stopped == StopNone. Any stop — a cap, an
	// interruption, the memory watchdog, a violation, a panic — leaves
	// the run incomplete, and no caller may treat an incomplete run's
	// absence of violations as "the property holds".
	Complete bool
	// Stopped says why the run ended early (StopNone for a complete
	// run).
	Stopped StopReason
	// Err carries the structured error for StopPanic (a *PanicError) and
	// StopResume, or a checkpoint-write failure that did not stop the
	// run. Nil otherwise.
	Err error
	// Checkpoints is the cumulative number of snapshots written,
	// carried across resumes.
	Checkpoints int
	// Degraded reports that the memory watchdog dropped audit-mode
	// fingerprint retention mid-run (or that the run resumed from a
	// degraded snapshot): HashCollisions then undercounts.
	Degraded bool
	// Deadlocks counts states with no outgoing transition.
	Deadlocks int
	// Violation is the minimal-depth invariant failure found, or nil.
	Violation *Violation
	// HashCollisions counts pairs of distinct canonical fingerprints
	// observed to share a 64-bit hash. Only audit mode (HashOnly off)
	// can detect collisions; the count is always 0 in compact mode.
	HashCollisions int
	// AmpleStates counts the expanded states at which the partial-order
	// reduction restricted the successor set to a single safe
	// transition. Always 0 unless Options.Reduce.
	AmpleStates int
	// VisitedBytes is the payload memory retained by the visited set
	// (keys, records, and audit-mode fingerprint strings; Go map bucket
	// overhead excluded).
	VisitedBytes int64
	// Spilled reports the disk-spill rung's counters; zero unless
	// Options.SpillDir was set and the rung fired.
	Spilled SpillStats
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// rec is the per-visited-state bookkeeping: the fingerprint hash of the
// parent state and the index of the producing event in the parent's
// (deterministic) successor enumeration. Both are meaningful only when
// Options.Trace is set; eidx is -1 for the initial state.
type rec struct {
	parent uint64
	eidx   int32
}

// recBytes is the visited-set payload per state in compact mode: the
// 8-byte map key plus the 16-byte rec value (Go map bucket overhead not
// counted).
const recBytes = 8 + 16

// shard is one lock stripe of the visited set.
type shard struct {
	mu   sync.Mutex
	recs map[uint64]rec
	// fps retains the canonical fingerprint per hash in audit mode.
	fps        map[uint64]string
	collisions int64
	bytes      int64
	// Spilled representation (see spill.go): keys is the membership-
	// only set, hot buffers the records inserted since the last flush
	// to disk (retained only when traces are needed).
	keys map[uint64]struct{}
	hot  map[uint64]rec
}

// visited is the sharded visited set, keyed by fingerprint hash; the
// shard index is the hash's top bits, so any hash prefix ordering is
// spread evenly across stripes.
type visited struct {
	shards []shard
	shift  uint
	audit  bool
	// spilled switches the shards to membership+hot representation;
	// spillTrace says the hot buffers are live (Options.Trace). Both
	// flip only at a layer boundary.
	spilled    bool
	spillTrace bool
}

func newVisited(n int, audit bool) *visited {
	if n <= 0 {
		n = 64
	}
	n = 1 << bits.Len(uint(n-1)) // round up to a power of two
	v := &visited{
		shards: make([]shard, n),
		shift:  uint(64 - bits.Len(uint(n-1))),
		audit:  audit,
	}
	for i := range v.shards {
		v.shards[i].recs = make(map[uint64]rec)
		if audit {
			v.shards[i].fps = make(map[uint64]string)
		}
	}
	return v
}

func (v *visited) shard(h uint64) *shard { return &v.shards[h>>v.shift] }

// insert records hash h with bookkeeping r and reports whether the state
// was new. In audit mode fp must be the canonical encoding; a known hash
// carried by a different encoding increments the collision counter (the
// state is still treated as visited, keeping audit-mode verdicts
// identical to compact mode).
func (v *visited) insert(h uint64, r rec, fp []byte) bool {
	s := v.shard(h)
	s.mu.Lock()
	if v.spilled {
		if _, ok := s.keys[h]; ok {
			s.mu.Unlock()
			return false
		}
		s.keys[h] = struct{}{}
		s.bytes += spillKeyBytes
		if v.spillTrace {
			s.hot[h] = r
		}
		s.mu.Unlock()
		return true
	}
	if _, ok := s.recs[h]; ok {
		if v.audit && s.fps[h] != string(fp) {
			s.collisions++
		}
		s.mu.Unlock()
		return false
	}
	s.recs[h] = r
	s.bytes += recBytes
	if v.audit {
		s.fps[h] = string(fp)
		s.bytes += int64(16 + len(fp))
	}
	s.mu.Unlock()
	return true
}

func (v *visited) lookup(h uint64) (rec, bool) {
	s := v.shard(h)
	s.mu.Lock()
	if v.spilled {
		if r, ok := s.hot[h]; ok {
			s.mu.Unlock()
			return r, true
		}
		// Membership-only: the record, if retained at all, is on disk
		// (spillState.loadRecs serves the trace path).
		_, ok := s.keys[h]
		s.mu.Unlock()
		return rec{}, ok
	}
	r, ok := s.recs[h]
	s.mu.Unlock()
	return r, ok
}

// spillConvert switches every shard to the spilled representation:
// membership keys plus (when keep) the existing records as the first
// hot buffer, to be flushed to disk at the next boundary. Runs only at
// a layer boundary (no workers), like dropAudit.
func (v *visited) spillConvert(keep bool) {
	for i := range v.shards {
		s := &v.shards[i]
		s.keys = make(map[uint64]struct{}, len(s.recs))
		for h := range s.recs {
			s.keys[h] = struct{}{}
		}
		if keep {
			s.hot = s.recs
		} else {
			s.hot = nil
		}
		s.recs = nil
		s.bytes = int64(len(s.keys)) * spillKeyBytes
	}
	v.spilled = true
	v.spillTrace = keep
}

// dropAudit releases the audit-mode fingerprint strings and switches the
// set to hash-only operation. Callers invoke it only at a layer boundary
// (no workers running), so flipping v.audit is race-free.
func (v *visited) dropAudit() {
	for i := range v.shards {
		s := &v.shards[i]
		for _, fp := range s.fps {
			s.bytes -= int64(16 + len(fp))
		}
		s.fps = nil
	}
	v.audit = false
}

// fpPool recycles the per-worker fingerprint scratch buffers.
var fpPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// qent is one frontier entry: a full state plus its fingerprint hash.
type qent struct {
	state cimp.System[*gcmodel.Local]
	hash  uint64
}

// explorer is the shared run state of one exploration.
type explorer struct {
	m       *gcmodel.Model
	checks  []invariant.Check
	opt     Options
	workers int
	every   int

	init     cimp.System[*gcmodel.Local]
	initHash uint64
	seen     *visited
	// fp is the visited-set fingerprint encoder: the model's plain
	// encoding, or the mutator-symmetry-canonical one under
	// Options.Symmetry.
	fp func([]byte, cimp.System[*gcmodel.Local]) []byte

	states      atomic.Int64
	transitions atomic.Int64
	ample       atomic.Int64
	deadlocks   atomic.Int64
	capped      atomic.Bool
	violated    atomic.Bool
	lastReport  atomic.Int64

	violMu   sync.Mutex
	viol     *Violation
	violHash uint64

	progressMu  sync.Mutex
	start       time.Time
	frontierLen atomic.Int64

	// Panic containment: a worker panic poisons the run (checked in the
	// chunk-claim loop so every worker bails within its current chunk),
	// and the first panic's structured report wins. curHash[w] tracks the
	// state worker w is expanding, so the report can name it.
	poisoned atomic.Bool
	panicMu  sync.Mutex
	panicErr *PanicError
	curHash  []atomic.Uint64

	// Durability bookkeeping, touched only at layer boundaries.
	optFP       uint64
	optSummary  string
	checkpoints int
	ckptErr     error
	degraded    bool
	emergency   bool
	memSample   func() uint64

	// Disk-spill rung (spill.go). spill is nil unless SpillDir is set;
	// parked points at the on-disk file backing the layer currently
	// being expanded (set at the boundary, before workers start);
	// spillBad poisons the claim loops when a worker's spill read
	// fails, mirroring capped/poisoned.
	spill    *spillState
	parked   *parkedLayer
	spillBad atomic.Bool
}

// Run explores the model's reachable states, checking every invariant at
// every state, and stops at the first (minimal-depth) violation or when
// the space (or a cap) is exhausted.
func Run(m *gcmodel.Model, checks []invariant.Check, opt Options) Result {
	return RunFrom(m, m.Initial(), checks, opt)
}

// RunFrom is Run starting at an explicit initial state, e.g. one with
// fusion disabled for a validation pass.
func RunFrom(m *gcmodel.Model, init cimp.System[*gcmodel.Local], checks []invariant.Check, opt Options) Result {
	start := time.Now()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	every := opt.ProgressEvery
	if every <= 0 {
		every = 8192
	}
	e := &explorer{
		m:         m,
		checks:    checks,
		opt:       opt,
		workers:   workers,
		every:     every,
		init:      init,
		seen:      newVisited(opt.Shards, !opt.HashOnly),
		start:     start,
		curHash:   make([]atomic.Uint64, workers),
		memSample: opt.MemSample,
	}
	if opt.Symmetry {
		e.fp = m.AppendCanonicalFingerprint
	} else {
		e.fp = m.AppendFingerprint
	}
	e.optFP, e.optSummary = OptionsFingerprint(m, checks, opt)
	if e.memSample == nil {
		e.memSample = func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		}
	}
	if opt.SpillDir != "" {
		e.spill = newSpillState(opt.FS, opt.SpillDir, opt.Trace)
	}
	res := e.run()
	res.Elapsed = time.Since(start)
	return res
}

// OptionsFingerprint hashes everything the verdict depends on: the model
// configuration and every exploration option that changes which states
// are visited, what is checked, or how the visited set is keyed and laid
// out. The worker count is deliberately excluded (the layer barrier
// makes verdicts worker-count independent), so a checkpoint may be
// resumed with different parallelism. The summary string is embedded in
// checkpoints so a refused resume can say what differed. It is exported
// so the job layer (package core) and the verdict cache (package server)
// can key cached verdicts by the exact fingerprint the checkpoint layer
// validates on resume.
func OptionsFingerprint(m *gcmodel.Model, checks []invariant.Check, opt Options) (uint64, string) {
	shards := opt.Shards
	if shards <= 0 {
		shards = 64
	}
	shards = 1 << bits.Len(uint(shards-1))
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name
	}
	summary := fmt.Sprintf(
		"cfg=%+v checks=%v maxStates=%d maxDepth=%d trace=%v hashOnly=%v reduce=%v symmetry=%v shards=%d eventCheck=%v stateCheck=%v",
		m.Cfg, names, opt.MaxStates, opt.MaxDepth, opt.Trace, opt.HashOnly,
		opt.Reduce, opt.Symmetry, shards,
		opt.EventCheck != nil, opt.StateCheck != nil,
	)
	return gcmodel.Hash64([]byte(summary)), summary
}

func (e *explorer) run() Result {
	var res Result

	bp := fpPool.Get().(*[]byte)
	buf := e.fp((*bp)[:0], e.init)
	e.initHash = gcmodel.Hash64(buf)

	var layer []qent
	startDepth := 0
	if e.opt.Resume != nil {
		var err error
		layer, startDepth, err = e.restore(e.opt.Resume)
		if err != nil {
			*bp = buf
			fpPool.Put(bp)
			res.Stopped = StopResume
			res.Err = err
			return res
		}
	} else {
		e.seen.insert(e.initHash, rec{eidx: -1}, buf)
		e.states.Store(1)
		if v := e.check(e.init, 0); v != nil {
			*bp = buf
			fpPool.Put(bp)
			res.Violation = v
			res.Stopped = StopViolation
			e.collect(&res)
			return res
		}
		layer = []qent{{state: e.init, hash: e.initHash}}
	}
	*bp = buf
	fpPool.Put(bp)

	every := e.opt.Checkpoint.EveryLayers
	if every <= 0 {
		every = 16
	}
	layersDone := 0
	for depth := startDepth; len(layer) > 0; depth++ {
		res.Depth = depth
		if e.opt.MaxDepth > 0 && depth >= e.opt.MaxDepth {
			res.Stopped = StopMaxDepth
			break
		}
		if e.spill != nil {
			e.parked = e.spill.takeParked()
		}
		layer = e.expandLayer(layer, depth)
		e.parked = nil
		layersDone++
		if e.panicErr != nil {
			// The visited set and counters may be mid-update for this
			// layer: no checkpoint is written from a poisoned run.
			res.Stopped = StopPanic
			res.Err = e.panicErr
			break
		}
		if e.violated.Load() {
			res.Stopped = StopViolation
			break
		}
		if e.spill != nil {
			if err := e.spill.firstErr(); err != nil {
				// A worker's spill read failed mid-layer: the layer is
				// torn, so nothing below may treat it as a cut.
				res.Stopped = StopSpill
				res.Err = err
				break
			}
		}
		if e.capped.Load() {
			// Workers bail mid-layer on the cap, so the frontier is not
			// a consistent cut: no checkpoint either.
			res.Stopped = StopMaxStates
			break
		}
		// The layer barrier has been crossed: the frontier at depth+1 is
		// complete and every counter is settled — the only consistent
		// cut. Checkpoints, the memory watchdog, the spill rung, and
		// cancellation all act here.
		if stop := e.watchdog(depth+1, layer, &res); stop {
			if err := e.spillErr(); err != nil {
				res.Stopped = StopSpill
				res.Err = err
			} else {
				res.Stopped = StopMemBudget
			}
			break
		}
		if e.spill != nil && e.spill.isActive() {
			if err := e.spill.boundary(e.m, e.seen, layer); err != nil {
				res.Stopped = StopSpill
				res.Err = err
				break
			}
		}
		if interrupted(e.opt.Context) {
			e.writeCheckpoint(depth+1, layer)
			res.Stopped = StopInterrupted
			break
		}
		if e.opt.Checkpoint.Path != "" && layersDone%every == 0 && len(layer) > 0 {
			e.writeCheckpoint(depth+1, layer)
		}
	}

	if e.viol != nil {
		res.Violation = e.viol
		if e.opt.Trace {
			if path, err := e.tracePath(e.violHash); err != nil {
				// The verdict (a violation) stands; only its replayed
				// counterexample was lost to the failed spill read.
				if res.Err == nil {
					res.Err = err
				}
			} else {
				res.Violation.Trace = e.replay(path)
			}
		}
	}
	res.Complete = res.Stopped == StopNone
	if res.Err == nil {
		res.Err = e.ckptErr
	}
	if e.spill != nil {
		e.spill.cleanup()
	}
	e.collect(&res)
	return res
}

// spillErr returns the latched spill failure (nil without a spill).
func (e *explorer) spillErr() error {
	if e.spill == nil {
		return nil
	}
	return e.spill.firstErr()
}

// interrupted reports whether ctx (possibly nil) has been cancelled.
func interrupted(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// watchdog is the layer-boundary memory ladder; see Options.MemBudget.
// It reports true when the run must stop.
func (e *explorer) watchdog(depth int, layer []qent, res *Result) bool {
	if e.opt.MemBudget <= 0 {
		return false
	}
	used := int64(e.memSample())
	switch {
	case used >= e.opt.MemBudget:
		if e.spill != nil {
			// The spill rung replaces the stop: activate (idempotent)
			// and keep exploring from disk. If the spill is broken the
			// run stops anyway — run() turns the latched error into
			// StopSpill rather than StopMemBudget.
			if err := e.activateSpill(); err == nil {
				return false
			}
			return true
		}
		e.writeCheckpoint(depth, layer)
		return true
	case used >= e.opt.MemBudget*85/100:
		if e.seen.audit {
			e.seen.dropAudit()
			e.degraded = true
			runtime.GC()
		}
		if e.spill != nil {
			if err := e.activateSpill(); err != nil {
				return true // latched; run() reports StopSpill
			}
		}
	case used >= e.opt.MemBudget*70/100:
		if !e.emergency {
			e.emergency = true
			e.writeCheckpoint(depth, layer)
		}
	}
	return false
}

// collect folds the atomic and per-shard counters into the result.
func (e *explorer) collect(res *Result) {
	res.States = int(e.states.Load())
	res.Transitions = int(e.transitions.Load())
	res.AmpleStates = int(e.ample.Load())
	res.Deadlocks = int(e.deadlocks.Load())
	res.Checkpoints = e.checkpoints
	res.Degraded = e.degraded
	for i := range e.seen.shards {
		res.HashCollisions += int(e.seen.shards[i].collisions)
		res.VisitedBytes += e.seen.shards[i].bytes
	}
	if e.spill != nil {
		res.Spilled = e.spill.stats()
	}
}

// activateSpill drops audit retention (spilled shards are hash-only by
// construction) and switches the visited set to its on-disk
// representation. Idempotent; boundary-only.
func (e *explorer) activateSpill() error {
	if e.seen.audit {
		e.seen.dropAudit()
		e.degraded = true
	}
	return e.spill.activate(e.seen)
}

// snapshot captures the search at a layer boundary: the frontier at
// depth, the full visited set, and the settled counters. Frontier states
// and shard entries are sorted by fingerprint hash so the snapshot bytes
// are canonical for the cut.
func (e *explorer) snapshot(depth int, layer []qent) *checkpoint.Snapshot {
	s := &checkpoint.Snapshot{
		OptionsFP:   e.optFP,
		Options:     e.optSummary,
		Depth:       depth,
		States:      e.states.Load(),
		Transitions: e.transitions.Load(),
		Ample:       e.ample.Load(),
		Deadlocks:   e.deadlocks.Load(),
		Audit:       e.seen.audit,
		Degraded:    e.degraded,
		Checkpoints: e.checkpoints,
	}
	ord := make([]int, len(layer))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return layer[ord[a]].hash < layer[ord[b]].hash })
	s.Frontier = make([][]byte, len(layer))
	for i, j := range ord {
		s.Frontier[i] = e.m.EncodeState(nil, layer[j].state)
	}
	s.Shards = make([]checkpoint.Shard, len(e.seen.shards))
	for i := range e.seen.shards {
		sh := &e.seen.shards[i]
		hs := make([]uint64, 0, len(sh.recs))
		for h := range sh.recs {
			hs = append(hs, h)
		}
		sort.Slice(hs, func(a, b int) bool { return hs[a] < hs[b] })
		out := checkpoint.Shard{
			Hashes:  hs,
			Parents: make([]uint64, len(hs)),
			EIdxs:   make([]int32, len(hs)),
		}
		if e.seen.audit {
			out.FPs = make([][]byte, len(hs))
		}
		for j, h := range hs {
			r := sh.recs[h]
			out.Parents[j] = r.parent
			out.EIdxs[j] = r.eidx
			if e.seen.audit {
				out.FPs[j] = []byte(sh.fps[h])
			}
		}
		s.Shards[i] = out
	}
	return s
}

// writeCheckpoint snapshots the cut and saves it atomically. A write
// failure does not stop the search; the first failure is surfaced in
// Result.Err.
func (e *explorer) writeCheckpoint(depth int, layer []qent) {
	if e.opt.Checkpoint.Path == "" {
		return
	}
	if e.spill != nil && e.spill.isActive() {
		// A spilled run's records and frontier live on disk already and
		// the in-memory layer holds hashes only: there is nothing a
		// snapshot could capture. Checkpointing is suspended; resuming a
		// spilled run means its last pre-spill checkpoint.
		return
	}
	e.checkpoints++
	snap := e.snapshot(depth, layer)
	if _, err := checkpoint.SaveFS(storage.OrOS(e.opt.FS), e.opt.Checkpoint.Path, snap); err != nil {
		e.checkpoints--
		if e.ckptErr == nil {
			e.ckptErr = err
		}
	}
}

// restore rebuilds the search from a snapshot: validates the options
// fingerprint, repopulates the visited shards (verifying every entry
// lands in the shard its hash selects), and decodes the frontier,
// re-encoding each state to prove the codec round-trips it and checking
// it against the visited set. It returns the frontier and its depth.
func (e *explorer) restore(snap *checkpoint.Snapshot) ([]qent, int, error) {
	if snap.OptionsFP != e.optFP {
		return nil, 0, fmt.Errorf(
			"explore: checkpoint was taken under different options\n  checkpoint: %s\n  this run:   %s",
			snap.Options, e.optSummary)
	}
	if len(snap.Shards) != len(e.seen.shards) {
		return nil, 0, fmt.Errorf("explore: checkpoint has %d shards, this run %d", len(snap.Shards), len(e.seen.shards))
	}
	switch {
	case snap.Audit && !e.seen.audit:
		return nil, 0, fmt.Errorf("explore: audit-mode checkpoint resumed into a hash-only run")
	case !snap.Audit && e.seen.audit:
		if !snap.Degraded {
			return nil, 0, fmt.Errorf("explore: hash-only checkpoint resumed into an audit-mode run")
		}
		// The original audit run was degraded to hash-only by the memory
		// watchdog; the resumed run continues hash-only.
		e.seen.dropAudit()
	}
	e.degraded = snap.Degraded
	for i := range snap.Shards {
		sh := &snap.Shards[i]
		s := &e.seen.shards[i]
		for j, h := range sh.Hashes {
			if int(h>>e.seen.shift) != i {
				return nil, 0, fmt.Errorf("explore: checkpoint shard %d holds hash %016x belonging to shard %d", i, h, h>>e.seen.shift)
			}
			if _, dup := s.recs[h]; dup {
				return nil, 0, fmt.Errorf("explore: checkpoint shard %d holds duplicate hash %016x", i, h)
			}
			s.recs[h] = rec{parent: sh.Parents[j], eidx: sh.EIdxs[j]}
			s.bytes += recBytes
			if e.seen.audit {
				s.fps[h] = string(sh.FPs[j])
				s.bytes += int64(16 + len(sh.FPs[j]))
			}
		}
	}
	if _, ok := e.seen.lookup(e.initHash); !ok {
		return nil, 0, fmt.Errorf("explore: checkpoint visited set does not contain the initial state")
	}
	layer := make([]qent, 0, len(snap.Frontier))
	var scratch []byte
	for i, enc := range snap.Frontier {
		st, rest, err := e.m.DecodeState(enc)
		if err != nil {
			return nil, 0, fmt.Errorf("explore: checkpoint frontier state %d: %w", i, err)
		}
		if len(rest) != 0 {
			return nil, 0, fmt.Errorf("explore: checkpoint frontier state %d: %d trailing bytes", i, len(rest))
		}
		scratch = e.m.EncodeState(scratch[:0], st)
		if !bytes.Equal(scratch, enc) {
			return nil, 0, fmt.Errorf("explore: checkpoint frontier state %d does not round-trip", i)
		}
		scratch = e.fp(scratch[:0], st)
		h := gcmodel.Hash64(scratch)
		if _, ok := e.seen.lookup(h); !ok {
			return nil, 0, fmt.Errorf("explore: checkpoint frontier state %d (%016x) missing from visited set", i, h)
		}
		layer = append(layer, qent{state: st, hash: h})
	}
	e.states.Store(snap.States)
	e.transitions.Store(snap.Transitions)
	e.ample.Store(snap.Ample)
	e.deadlocks.Store(snap.Deadlocks)
	e.lastReport.Store(snap.States)
	e.checkpoints = snap.Checkpoints
	return layer, snap.Depth, nil
}

// expandLayer expands every state of the depth-d layer and returns the
// depth-d+1 layer. When a violation is found the remainder of the layer
// is still expanded and checked, so that the reported violation is the
// deterministic minimum over the whole layer and the state/transition
// counts do not depend on worker scheduling.
func (e *explorer) expandLayer(layer []qent, depth int) []qent {
	e.frontierLen.Store(int64(len(layer)))
	k := e.workers
	if k > len(layer) {
		k = len(layer)
	}
	chunk := len(layer)/(k*8) + 1
	if chunk > 256 {
		chunk = 256
	}
	var cursor atomic.Int64
	if k == 1 {
		// The single-worker path gets the same containment as the
		// goroutine path: a panic poisons the run instead of crashing.
		var next []qent
		func() {
			defer e.contain(0, depth)
			next = e.expandChunks(layer, depth, &cursor, chunk, 0)
		}()
		return next
	}
	nexts := make([][]qent, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			// Deferred LIFO: contain runs before Done, so the poison and
			// the structured report are published before the barrier
			// releases — a panicking worker can never hang the layer.
			defer wg.Done()
			defer e.contain(w, depth)
			nexts[w] = e.expandChunks(layer, depth, &cursor, chunk, w)
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range nexts {
		total += len(n)
	}
	next := make([]qent, 0, total)
	for _, n := range nexts {
		next = append(next, n...)
	}
	return next
}

// contain is deferred around every worker body: it recovers a panic,
// captures the panicking stack (defers run before unwinding, so the
// origin frames are present) and the state being expanded, and poisons
// the run so the other workers drain their claim loops.
func (e *explorer) contain(w, depth int) {
	r := recover()
	if r == nil {
		return
	}
	pe := &PanicError{
		Depth:     depth,
		StateHash: e.curHash[w].Load(),
		Value:     r,
		Stack:     debug.Stack(),
	}
	e.panicMu.Lock()
	if e.panicErr == nil {
		e.panicErr = pe
	}
	e.panicMu.Unlock()
	e.poisoned.Store(true)
}

// expandChunks is the worker body: it claims chunks of the current layer
// from the shared cursor until the layer is drained (or the state cap
// fires, or a sibling worker poisons the run) and returns its share of
// the next layer.
func (e *explorer) expandChunks(layer []qent, depth int, cursor *atomic.Int64, chunk int, w int) []qent {
	bp := fpPool.Get().(*[]byte)
	buf := *bp
	var next []qent
	var transitions, ample, deadlocks int64
	nd := depth + 1
claim:
	for {
		lo := int(cursor.Add(int64(chunk))) - chunk
		if lo >= len(layer) {
			break
		}
		hi := lo + chunk
		if hi > len(layer) {
			hi = len(layer)
		}
		// A parked layer's states live on disk: fetch this chunk's range
		// with one contiguous read. A failed read poisons the spill (the
		// layer can no longer be expanded completely) and drains every
		// worker, mirroring the cap.
		var fetched []cimp.System[*gcmodel.Local]
		if pl := e.parked; pl != nil {
			var err error
			fetched, err = pl.fetchRange(e.m, lo, hi)
			if err != nil {
				e.spill.fail(err)
				e.spillBad.Store(true)
				break claim
			}
		}
		for i := lo; i < hi; i++ {
			if e.capped.Load() || e.poisoned.Load() || e.spillBad.Load() {
				break claim
			}
			cur := layer[i]
			if fetched != nil {
				cur.state = fetched[i-lo]
			}
			e.curHash[w].Store(cur.hash)
			var amp gcmodel.Ample
			if e.opt.Reduce {
				amp = e.m.AmpleChoice(cur.state)
			}
			out, taken := e.expandState(cur, nd, amp, &next, &transitions, &buf)
			if amp.OK {
				if taken > 0 {
					ample++
				} else {
					// The oracle nominated a transition the relation
					// refused (safeRequest should mirror the system
					// guards exactly); expand fully rather than
					// truncate the search. Nothing was inserted by the
					// filtered pass, so re-expansion is clean.
					out, _ = e.expandState(cur, nd, gcmodel.Ample{}, &next, &transitions, &buf)
				}
			}
			if out == 0 {
				deadlocks++
			}
		}
		// Publish the transition total at chunk boundaries so progress
		// reports see a near-current count mid-layer.
		e.transitions.Add(transitions)
		transitions = 0
	}
	e.transitions.Add(transitions)
	e.ample.Add(ample)
	e.deadlocks.Add(deadlocks)
	*bp = buf
	fpPool.Put(bp)
	return next
}

// expandState enumerates cur's successors — restricted to the ample
// transition when amp.OK — inserting new states into the visited set
// and the caller's next layer. It returns the full successor count and
// the number of transitions actually taken. Event indices always
// number the complete, unreduced enumeration (skipped successors still
// advance eidx), so traces recorded under reduction replay through the
// unreduced relation.
func (e *explorer) expandState(cur qent, nd int, amp gcmodel.Ample, next *[]qent, transitions *int64, buf *[]byte) (out, taken int) {
	b := *buf
	e.m.SuccessorsConcurrent(cur.state, func(ns cimp.System[*gcmodel.Local], ev cimp.Event) {
		eidx := out
		out++
		if amp.OK && !amp.Matches(ev) {
			return
		}
		taken++
		*transitions++
		b = e.fp(b[:0], ns)
		h := gcmodel.Hash64(b)
		if e.opt.EventCheck != nil {
			if err := e.opt.EventCheck(cur.state, ns, ev); err != nil {
				e.offerViolation(&Violation{Invariant: "event-check", Err: err, Depth: nd, State: ns}, h)
				return
			}
		}
		var r rec
		if e.opt.Trace {
			r = rec{parent: cur.hash, eidx: int32(eidx)}
		}
		if !e.seen.insert(h, r, b) {
			return
		}
		n := e.states.Add(1)
		e.maybeProgress(n, nd)
		if e.opt.MaxStates > 0 && n >= int64(e.opt.MaxStates) {
			e.capped.Store(true)
		}
		if v := e.check(ns, nd); v != nil {
			e.offerViolation(v, h)
			return
		}
		if !e.violated.Load() {
			*next = append(*next, qent{state: ns, hash: h})
		}
	})
	*buf = b
	return out, taken
}

// check evaluates the invariant battery at st.
func (e *explorer) check(st cimp.System[*gcmodel.Local], depth int) *Violation {
	if len(e.checks) > 0 {
		g := gcmodel.Global{Model: e.m, State: st}
		v := invariant.NewView(g)
		for _, c := range e.checks {
			if err := c.Pred(v); err != nil {
				return &Violation{Invariant: c.Name, Err: err, Depth: depth, State: st}
			}
		}
	}
	if e.opt.StateCheck != nil {
		if err := e.opt.StateCheck(st); err != nil {
			return &Violation{Invariant: "state-check", Err: err, Depth: depth, State: st}
		}
	}
	return nil
}

// offerViolation records a violation candidate. All candidates of a run
// come from the same BFS layer (the barrier stops descent), so they
// share the minimal depth; the fingerprint hash breaks the tie between
// them deterministically, independent of worker scheduling.
func (e *explorer) offerViolation(v *Violation, h uint64) {
	e.violMu.Lock()
	if e.viol == nil || h < e.violHash {
		e.viol, e.violHash = v, h
	}
	e.violMu.Unlock()
	e.violated.Store(true)
}

// maybeProgress reports progress when at least ProgressEvery states have
// been visited since the last report. The CAS on the monotonic counter
// guarantees each interval is reported exactly once, from whichever
// worker crosses it.
func (e *explorer) maybeProgress(n int64, depth int) {
	if e.opt.Progress == nil {
		return
	}
	last := e.lastReport.Load()
	if n-last < int64(e.every) || !e.lastReport.CompareAndSwap(last, n) {
		return
	}
	e.progressMu.Lock()
	e.opt.Progress(Progress{
		States:      int(n),
		Transitions: int(e.transitions.Load()),
		Depth:       depth,
		Frontier:    int(e.frontierLen.Load()),
		Elapsed:     time.Since(e.start),
	})
	e.progressMu.Unlock()
}

// pathStep is one edge of a counterexample path: the fingerprint hash of
// the state it leads to and the event index that produces it from its
// predecessor.
type pathStep struct {
	hash uint64
	eidx int32
}

// tracePath walks parent links from h back to the initial state and
// returns the path in forward order, initial state excluded. Under an
// active spill the flushed records are read back from disk first; an
// unreadable spill file is an error (the violation verdict stands,
// only its replayed counterexample is lost).
func (e *explorer) tracePath(h uint64) ([]pathStep, error) {
	var spilled map[uint64]rec
	if e.spill != nil && e.spill.isActive() {
		m, err := e.spill.loadRecs()
		if err != nil {
			return nil, err
		}
		spilled = m
	}
	var rev []pathStep
	for h != e.initHash {
		r, ok := spilled[h]
		if !ok {
			// Not flushed yet: the hot buffer (or, unspilled, the
			// ordinary record map) has it.
			r, ok = e.seen.lookup(h)
		}
		if !ok {
			panic("explore: visited-set parent chain broken (fingerprint hash collision?)")
		}
		rev = append(rev, pathStep{hash: h, eidx: r.eidx})
		h = r.parent
	}
	path := make([]pathStep, len(rev))
	for i, p := range rev {
		path[len(rev)-1-i] = p
	}
	return path, nil
}

// replay materializes the states along a counterexample path by
// re-running the transition relation from the initial state, selecting
// at each step the recorded event index. Enumeration past the match does
// no work, and one pooled scratch buffer serves every hash
// cross-check along the way.
func (e *explorer) replay(path []pathStep) []Step {
	steps := make([]Step, 0, len(path))
	cur := e.init
	bp := fpPool.Get().(*[]byte)
	buf := *bp
	for _, ps := range path {
		found := false
		idx := int32(0)
		e.m.SuccessorsConcurrent(cur, func(next cimp.System[*gcmodel.Local], ev cimp.Event) {
			if found {
				return
			}
			if idx == ps.eidx {
				buf = e.fp(buf[:0], next)
				if gcmodel.Hash64(buf) != ps.hash {
					panic("explore: counterexample replay diverged (fingerprint hash collision?)")
				}
				steps = append(steps, Step{Ev: ev, State: next})
				cur = next
				found = true
				return
			}
			idx++
		})
		if !found {
			// Should be impossible: the path came from this relation.
			panic("explore: counterexample replay diverged")
		}
	}
	*bp = buf
	fpPool.Put(bp)
	return steps
}
