// Package explore is an explicit-state model checker for the GC model: a
// breadth-first search over the CIMP system semantics with state
// fingerprinting, invariant checking at every reachable state, and
// counterexample trace reconstruction. It plays the role of the paper's
// Isabelle/HOL induction over the reachable states of the _⇒_ relation,
// restricted to bounded configurations.
//
// Memory: visited states are retained only as fingerprints (plus a parent
// fingerprint for trace reconstruction when Options.Trace is set); full
// states live only on the BFS frontier. Counterexample traces are
// materialized afterwards by replaying the fingerprint path from the
// initial state.
package explore

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/invariant"
	"repro/internal/trace"
)

// Options bounds and instruments a run.
type Options struct {
	// MaxStates caps the number of distinct states visited (0 = no cap).
	MaxStates int
	// MaxDepth caps the BFS depth (0 = no cap).
	MaxDepth int
	// Trace records parent fingerprints so a counterexample path can be
	// reconstructed.
	Trace bool
	// Progress, if non-nil, receives (states, depth) periodically.
	Progress func(states, depth int)
}

// Step is one transition of a counterexample trace.
type Step struct {
	Ev    cimp.Event
	State cimp.System[*gcmodel.Local]
}

// Violation reports an invariant failure at a reachable state.
type Violation struct {
	Invariant string
	Err       error
	Depth     int
	State     cimp.System[*gcmodel.Local]
	// Trace is the path from the initial state (inclusive of the failing
	// state, exclusive of the initial state); empty unless Options.Trace.
	Trace []Step
}

func (v *Violation) Error() string {
	return fmt.Sprintf("%s violated at depth %d: %v", v.Invariant, v.Depth, v.Err)
}

// Render formats the violation with its counterexample trace (if
// recorded) for human consumption.
func (v *Violation) Render(m *gcmodel.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s violated at depth %d: %v\n", v.Invariant, v.Depth, v.Err)
	if len(v.Trace) > 0 {
		fmt.Fprintf(&b, "counterexample (%d steps):\n", len(v.Trace))
		fmt.Fprintf(&b, "  init: %s\n", trace.State(m, m.Initial()))
		for i, s := range v.Trace {
			fmt.Fprintf(&b, "  %3d. %-60s %s\n", i+1, trace.Event(m, s.Ev), trace.State(m, s.State))
		}
	} else {
		fmt.Fprintf(&b, "state: %s\n", trace.State(m, v.State))
	}
	return b.String()
}

// Result summarizes an exploration.
type Result struct {
	// States is the number of distinct reachable states visited.
	States int
	// Transitions is the number of transitions taken.
	Transitions int
	// Depth is the deepest BFS layer reached.
	Depth int
	// Complete reports whether the full reachable state space was
	// exhausted within the caps.
	Complete bool
	// Deadlocks counts states with no outgoing transition.
	Deadlocks int
	// Violation is the first invariant failure found, or nil.
	Violation *Violation
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// rec is the per-visited-state bookkeeping: the parent fingerprint (""
// for the initial state or when tracing is off) and the BFS depth.
type rec struct {
	parent string
	depth  int32
}

type qent struct {
	state cimp.System[*gcmodel.Local]
	fp    string
}

// Run explores the model's reachable states, checking every invariant at
// every state, and stops at the first violation or when the space (or a
// cap) is exhausted.
func Run(m *gcmodel.Model, checks []invariant.Check, opt Options) Result {
	return RunFrom(m, m.Initial(), checks, opt)
}

// RunFrom is Run starting at an explicit initial state, e.g. one with
// fusion disabled for a validation pass.
func RunFrom(m *gcmodel.Model, init cimp.System[*gcmodel.Local], checks []invariant.Check, opt Options) Result {
	start := time.Now()
	res := Result{Complete: true}

	initFP := m.Fingerprint(init)
	seen := map[string]rec{initFP: {}}
	queue := []qent{{state: init, fp: initFP}}

	check := func(st cimp.System[*gcmodel.Local], fp string, depth int) *Violation {
		g := gcmodel.Global{Model: m, State: st}
		v := invariant.NewView(g)
		for _, c := range checks {
			if err := c.Pred(v); err != nil {
				viol := &Violation{Invariant: c.Name, Err: err, Depth: depth, State: st}
				if opt.Trace {
					viol.Trace = replay(m, init, fpPath(seen, fp))
				}
				return viol
			}
		}
		return nil
	}

	if v := check(init, initFP, 0); v != nil {
		res.Violation = v
		res.States = 1
		res.Complete = false
		res.Elapsed = time.Since(start)
		return res
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue[0] = qent{}
		queue = queue[1:]
		depth := int(seen[cur.fp].depth)
		if depth > res.Depth {
			res.Depth = depth
		}
		if opt.MaxDepth > 0 && depth >= opt.MaxDepth {
			res.Complete = false
			continue
		}

		out := 0
		stop := false
		m.Successors(cur.state, func(next cimp.System[*gcmodel.Local], ev cimp.Event) {
			if stop {
				return
			}
			out++
			res.Transitions++
			nfp := m.Fingerprint(next)
			if _, ok := seen[nfp]; ok {
				return
			}
			r := rec{depth: int32(depth + 1)}
			if opt.Trace {
				r.parent = cur.fp
			}
			seen[nfp] = r
			if v := check(next, nfp, depth+1); v != nil {
				res.Violation = v
				stop = true
				return
			}
			queue = append(queue, qent{state: next, fp: nfp})
		})
		if stop {
			break
		}
		if out == 0 {
			res.Deadlocks++
		}
		if opt.Progress != nil && len(seen)%4096 < 8 {
			opt.Progress(len(seen), depth)
		}
		if opt.MaxStates > 0 && len(seen) >= opt.MaxStates {
			res.Complete = false
			break
		}
	}

	res.States = len(seen)
	if res.Violation != nil {
		res.Complete = false
	}
	res.Elapsed = time.Since(start)
	return res
}

// fpPath walks parent links from fp back to the initial state and
// returns the fingerprints along the way, initial state excluded, in
// forward order.
func fpPath(seen map[string]rec, fp string) []string {
	var revPath []string
	for fp != "" {
		r, ok := seen[fp]
		if !ok {
			break
		}
		if r.parent == "" && r.depth == 0 {
			break // initial state
		}
		revPath = append(revPath, fp)
		fp = r.parent
	}
	path := make([]string, 0, len(revPath))
	for i := len(revPath) - 1; i >= 0; i-- {
		path = append(path, revPath[i])
	}
	return path
}

// replay materializes the states along a fingerprint path by re-running
// the transition relation from the initial state, selecting at each step
// the successor whose fingerprint matches.
func replay(m *gcmodel.Model, init cimp.System[*gcmodel.Local], path []string) []Step {
	steps := make([]Step, 0, len(path))
	cur := init
	for _, want := range path {
		found := false
		m.Successors(cur, func(next cimp.System[*gcmodel.Local], ev cimp.Event) {
			if found {
				return
			}
			if m.Fingerprint(next) == want {
				steps = append(steps, Step{Ev: ev, State: next})
				cur = next
				found = true
			}
		})
		if !found {
			// Should be impossible: the path came from this relation.
			panic("explore: counterexample replay diverged")
		}
	}
	return steps
}
