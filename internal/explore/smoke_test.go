package explore

import (
	"testing"

	"repro/internal/gcmodel"
	"repro/internal/heap"
	"repro/internal/invariant"
)

// TestSmokeTinyConfig model-checks the smallest interesting configuration
// and requires every invariant to hold on its full reachable state space.
func TestSmokeTinyConfig(t *testing.T) {
	skipDeepHuntUnderRace(t)
	if testing.Short() {
		t.Skip("model checking is slow")
	}
	m, err := gcmodel.Build(gcmodel.Config{
		NMutators: 1,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    2,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0)},
		AllowNilStore: true,
		DisableAlloc:  true, // keep the smoke test small
		OpBudget:      2,    // bounded-context reduction
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(m, invariant.All(), Options{Trace: true, MaxStates: 3_000_000, HashOnly: true})
	t.Logf("states=%d transitions=%d depth=%d complete=%v deadlocks=%d elapsed=%v",
		res.States, res.Transitions, res.Depth, res.Complete, res.Deadlocks, res.Elapsed)
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation.Render(m))
	}
	if !res.Complete {
		t.Fatalf("state space not exhausted within cap")
	}
	if res.Deadlocks > 0 {
		t.Fatalf("%d deadlocked states", res.Deadlocks)
	}
}
