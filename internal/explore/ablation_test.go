package explore

import (
	"strings"
	"testing"

	"repro/internal/gcmodel"
	"repro/internal/heap"
	"repro/internal/invariant"
)

// baseCfg is the small configuration used by the ablation hunts: one
// object h (ref 0) pointing at x (ref 1), with only h rooted.
func baseCfg() gcmodel.Config {
	return gcmodel.Config{
		NMutators: 1,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    2,
		OpBudget:  2,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:     []heap.RefSet{heap.SetOf(0)},
		AllowNilStore: true,
		DisableAlloc:  true,
	}
}

// skipDeepHuntUnderRace skips multi-million-state explorations when the
// race detector is on: they would take tens of minutes at the detector's
// slowdown, and the parallel checker's concurrency is already fully
// exercised under -race by the quicker multi-worker tests
// (TestDeterministicAcrossWorkers, TestShortestCounterexampleAcrossWorkers,
// TestCollisionAudit, TestSafeModelShortExhaust, ...).
func skipDeepHuntUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("deep state-space hunt skipped under -race")
	}
}

func mustBuild(t *testing.T, cfg gcmodel.Config) *gcmodel.Model {
	t.Helper()
	m, err := gcmodel.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// findViolation explores until a violation of the given invariants turns
// up, failing the test if none does within the cap.
func findViolation(t *testing.T, cfg gcmodel.Config, checks []invariant.Check, cap int) *Violation {
	t.Helper()
	m := mustBuild(t, cfg)
	res := Run(m, checks, Options{Trace: true, MaxStates: cap, HashOnly: true, Workers: 2})
	if res.Violation == nil {
		t.Fatalf("no violation found in %d states (complete=%v) — ablation should be unsafe",
			res.States, res.Complete)
	}
	t.Logf("found after %d states at depth %d:\n%s",
		res.States, res.Violation.Depth, res.Violation.Render(m))
	return res.Violation
}

// TestAblationNoDeletionBarrier (E11): removing the deletion barrier
// breaks the headline safety property — the checker produces a concrete
// interleaving in which a reachable object is freed.
func TestAblationNoDeletionBarrier(t *testing.T) {
	skipDeepHuntUnderRace(t)
	cfg := baseCfg()
	cfg.NoDeletionBarrier = true
	v := findViolation(t, cfg, invariant.Safety(), 2_000_000)
	if v.Invariant != "valid_refs_inv" {
		t.Fatalf("violated %s, want valid_refs_inv", v.Invariant)
	}
	if len(v.Trace) == 0 {
		t.Fatal("no counterexample trace recorded")
	}
}

// TestAblationNoDeletionBarrierAuxiliaryFailsFirst: with the full
// invariant battery, the snapshot invariant (or another auxiliary) is
// violated strictly before the headline property — the proof structure
// of the paper made observable.
func TestAblationNoDeletionBarrierAuxiliaryFailsFirst(t *testing.T) {
	cfg := baseCfg()
	cfg.NoDeletionBarrier = true
	v := findViolation(t, cfg, invariant.All(), 2_000_000)
	if v.Invariant == "valid_refs_inv" {
		t.Fatalf("headline property failed before any auxiliary invariant")
	}
}

// TestAblationAllocWhite (E11): allocating with the unmarked sense during
// marking loses freshly allocated objects. The proof's auxiliary
// invariants refute the ablation within a few hundred thousand states;
// the headline consequence (a white-allocated object freed while rooted)
// lies deeper than a BFS of this budget reaches and is demonstrated by
// the random-walk test (sched.TestWalkFindsAblationViolation) and
// deterministically at runtime scale (gcrt.TestLostObjectWithAllocWhite).
func TestAblationAllocWhite(t *testing.T) {
	skipDeepHuntUnderRace(t)
	cfg := baseCfg()
	cfg.AllocWhite = true
	cfg.DisableAlloc = false
	cfg.NRefs = 3
	v := findViolation(t, cfg, invariant.All(), 2_000_000)
	t.Logf("allocate-white refuted by %s", v.Invariant)
}

// TestAblationElideMarkHandshake (E12 counterpart): eliding the round-4
// handshake (after phase ← Mark and f_A ← f_M) lets the collector sample
// roots while a mutator still allocates white or runs without barriers —
// the auxiliary invariants catch the resulting windows.
func TestAblationElideMarkHandshake(t *testing.T) {
	skipDeepHuntUnderRace(t)
	cfg := baseCfg()
	cfg.ElideHS4 = true
	cfg.DisableAlloc = false
	cfg.NRefs = 3
	m := mustBuild(t, cfg)
	res := Run(m, invariant.All(), Options{Trace: true, MaxStates: 2_000_000})
	if res.Violation == nil {
		// Not necessarily unsafe — record the outcome; the headline
		// property may still hold (cf. the paper's §4 observation that
		// some initialization handshakes are removable).
		t.Logf("no violation in %d states (complete=%v): round-4 elision not refuted at this size",
			res.States, res.Complete)
		return
	}
	t.Logf("violation: %s", res.Violation.Error())
}

// TestCounterexampleTraceIsWellFormed: the deletion-barrier
// counterexample's trace must replay from the initial state: each step's
// event names a process, and the final state exhibits the dangling
// reference the violation reports.
func TestCounterexampleTraceIsWellFormed(t *testing.T) {
	skipDeepHuntUnderRace(t)
	cfg := baseCfg()
	cfg.NoDeletionBarrier = true
	m := mustBuild(t, cfg)
	res := Run(m, invariant.Safety(), Options{Trace: true, MaxStates: 2_000_000})
	if res.Violation == nil {
		t.Fatal("expected a violation")
	}
	if got := len(res.Violation.Trace); got != res.Violation.Depth {
		t.Fatalf("trace length %d != violation depth %d", got, res.Violation.Depth)
	}
	rendered := res.Violation.Render(m)
	if !strings.Contains(rendered, "counterexample") {
		t.Fatal("rendered violation lacks the trace")
	}
	// The final state must actually violate valid_refs_inv.
	last := res.Violation.Trace[len(res.Violation.Trace)-1].State
	g := gcmodel.Global{Model: m, State: last}
	if err := invariant.ValidRefs.Pred(invariant.NewView(g)); err == nil {
		t.Fatal("final trace state does not violate valid_refs_inv")
	}
}

// TestSafeModelShortExhaust: the un-ablated model with a minimal workload
// (stores only, budget 1) is exhaustively safe — a fast companion to the
// full smoke test.
func TestSafeModelShortExhaust(t *testing.T) {
	cfg := baseCfg()
	cfg.OpBudget = 1
	cfg.DisableLoad = true
	cfg.DisableDiscard = true
	cfg.MaxBuf = 1
	m := mustBuild(t, cfg)
	res := Run(m, invariant.All(), Options{MaxStates: 1_500_000, HashOnly: true, Workers: 4, Shards: 16})
	if res.Violation != nil {
		t.Fatalf("violation in safe model:\n%s", res.Violation.Render(m))
	}
	if !res.Complete {
		t.Fatalf("not exhausted: %d states", res.States)
	}
	if res.Deadlocks > 0 {
		t.Fatalf("%d deadlocks", res.Deadlocks)
	}
	t.Logf("states=%d depth=%d elapsed=%v", res.States, res.Depth, res.Elapsed)
}

// TestFusionAgreesWithUnfusedOnViolation: the register-step fusion
// reduction must not change verdicts — the unfused semantics finds the
// same deletion-barrier violation.
func TestFusionAgreesWithUnfusedOnViolation(t *testing.T) {
	skipDeepHuntUnderRace(t)
	cfg := baseCfg()
	cfg.NoDeletionBarrier = true
	cfg.DisableMFence = true
	m := mustBuild(t, cfg)

	fused := Run(m, invariant.Safety(), Options{MaxStates: 2_000_000})
	if fused.Violation == nil {
		t.Fatal("fused run found no violation")
	}

	unfusedInit := m.Initial()
	unfusedInit.DisableFusion = true
	res := RunFrom(m, unfusedInit, invariant.Safety(), Options{MaxStates: 4_000_000})
	if res.Violation == nil {
		t.Fatal("unfused run found no violation")
	}
	if res.Violation.Invariant != fused.Violation.Invariant {
		t.Fatalf("verdicts differ: %s vs %s", res.Violation.Invariant, fused.Violation.Invariant)
	}
}

// TestObservationInsertionGate (E12b): the paper's §4 conjecture — the
// insertion barrier can be dropped across the mark loop in exchange for
// a thread-local branch — holds exhaustively on the tiny configuration.
func TestObservationInsertionGate(t *testing.T) {
	skipDeepHuntUnderRace(t)
	if testing.Short() {
		t.Skip("exhaustive run")
	}
	cfg := baseCfg()
	cfg.InsertionBarrierOnlyBeforeRootsDone = true
	m := mustBuild(t, cfg)
	res := Run(m, invariant.Safety(), Options{MaxStates: 6_000_000})
	if res.Violation != nil {
		t.Fatalf("§4 conjecture refuted:\n%s", res.Violation.Render(m))
	}
	if !res.Complete {
		t.Fatalf("not exhausted: %d states", res.States)
	}
	t.Logf("conjecture holds on %d states (depth %d)", res.States, res.Depth)
}

// TestSCOracleShrinksStateSpace (E13, model level): under the SC memory
// oracle the same configuration is safe and has strictly fewer reachable
// states — the store buffers are what the TSO proof pays for.
func TestSCOracleShrinksStateSpace(t *testing.T) {
	skipDeepHuntUnderRace(t)
	if testing.Short() {
		t.Skip("exhaustive run")
	}
	cfg := baseCfg()
	cfg.OpBudget = 1
	cfg.DisableLoad = true
	cfg.DisableDiscard = true
	cfg.MaxBuf = 1

	mTSO := mustBuild(t, cfg)
	resTSO := Run(mTSO, invariant.All(), Options{MaxStates: 3_000_000})
	if resTSO.Violation != nil || !resTSO.Complete {
		t.Fatalf("TSO run: violation=%v complete=%v", resTSO.Violation, resTSO.Complete)
	}

	cfg.SCMemory = true
	mSC := mustBuild(t, cfg)
	resSC := Run(mSC, invariant.All(), Options{MaxStates: 3_000_000})
	if resSC.Violation != nil || !resSC.Complete {
		t.Fatalf("SC run: violation=%v complete=%v", resSC.Violation, resSC.Complete)
	}
	if resSC.States >= resTSO.States {
		t.Fatalf("SC states %d not smaller than TSO states %d", resSC.States, resTSO.States)
	}
	t.Logf("TSO states=%d, SC states=%d (%.1f%%)",
		resTSO.States, resSC.States, 100*float64(resSC.States)/float64(resTSO.States))
}
