//go:build !race

package explore

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
