package explore

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/invariant"
)

// cancelled returns an already-cancelled context: a run given one
// expands exactly one layer ("finish the current layer") and then stops
// at the boundary, writing a final checkpoint — the deterministic
// equivalent of a SIGINT at every layer.
func cancelled() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// verdict is the comparable core of a Result.
type verdict struct {
	states, transitions, depth, deadlocks, ample int
	visitedBytes                                 int64
	complete                                     bool
	stopped                                      StopReason
	violation                                    string
}

func verdictOf(res Result) verdict {
	v := verdict{
		states: res.States, transitions: res.Transitions, depth: res.Depth,
		deadlocks: res.Deadlocks, ample: res.AmpleStates,
		visitedBytes: res.VisitedBytes,
		complete:     res.Complete, stopped: res.Stopped,
	}
	if res.Violation != nil {
		v.violation = res.Violation.Error()
	}
	return v
}

// TestKillResumeDifferential is the resume-determinism acceptance test:
// a run killed at EVERY layer boundary and resumed from the checkpoint
// — rotating the worker count between restarts, with and without the
// partial-order reduction — must reach the identical final state count,
// transition count, depth, deadlock count, and verdict as the
// uninterrupted run.
func TestKillResumeDifferential(t *testing.T) {
	cfg := safeCfg()
	m := mustBuild(t, cfg)
	const maxDepth = 40 // bounds the chain at 40 kill/resume cycles
	for _, reduce := range []bool{false, true} {
		name := "full"
		if reduce {
			name = "reduce"
		}
		t.Run(name, func(t *testing.T) {
			base := Options{
				MaxDepth: maxDepth,
				Trace:    true,
				HashOnly: true,
				Reduce:   reduce,
				Shards:   8,
			}
			clean := base
			clean.Workers = 1
			want := Run(m, invariant.Safety(), clean)
			if want.Stopped != StopMaxDepth {
				t.Fatalf("baseline stopped %q, want max-depth", want.Stopped)
			}

			path := filepath.Join(t.TempDir(), "run.ckpt")
			workerRotation := []int{1, 2, 4}
			var res Result
			rounds := 0
			for {
				opt := base
				opt.Workers = workerRotation[rounds%len(workerRotation)]
				opt.Checkpoint = CheckpointOptions{Path: path, EveryLayers: 1}
				if rounds > 0 {
					snap, err := checkpoint.Load(path)
					if err != nil {
						t.Fatalf("round %d: %v", rounds, err)
					}
					opt.Resume = snap
				}
				opt.Context = cancelled()
				res = Run(m, invariant.Safety(), opt)
				rounds++
				if res.Stopped != StopInterrupted {
					break
				}
				if res.Err != nil {
					t.Fatalf("round %d: %v", rounds, res.Err)
				}
				if rounds > maxDepth+2 {
					t.Fatalf("no termination after %d kill/resume rounds", rounds)
				}
			}
			t.Logf("%d kill/resume rounds", rounds)
			if rounds < 10 {
				t.Fatalf("only %d rounds — the chain did not exercise per-layer resume", rounds)
			}
			got, wantV := verdictOf(res), verdictOf(want)
			// The interrupted chain's Checkpoints counter differs by
			// construction; everything else must be identical.
			if got != wantV {
				t.Fatalf("kill/resume diverged:\n got %+v\nwant %+v", got, wantV)
			}
		})
	}
}

// TestInterruptOnceResumeToCompletion: one mid-run interruption, then an
// uninterrupted resume of the FULL (unbounded) exploration, must exactly
// reproduce the clean run — including Complete=true.
func TestInterruptOnceResumeToCompletion(t *testing.T) {
	m := mustBuild(t, safeCfg())
	base := Options{Trace: true, HashOnly: true, Shards: 8}

	clean := base
	clean.Workers = 2
	want := Run(m, invariant.Safety(), clean)
	if !want.Complete {
		t.Fatal("baseline incomplete")
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	first := base
	first.Workers = 4
	first.Checkpoint = CheckpointOptions{Path: path, EveryLayers: 1}
	first.Context = cancelled()
	r1 := Run(m, invariant.Safety(), first)
	if r1.Stopped != StopInterrupted || r1.Complete {
		t.Fatalf("interrupted run: stopped=%q complete=%v", r1.Stopped, r1.Complete)
	}
	if r1.Checkpoints == 0 {
		t.Fatal("no checkpoint written on interruption")
	}

	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	second := base
	second.Workers = 2
	second.Resume = snap
	res := Run(m, invariant.Safety(), second)
	if !res.Complete {
		t.Fatalf("resumed run incomplete: stopped=%q err=%v", res.Stopped, res.Err)
	}
	if g, w := verdictOf(res), verdictOf(want); g != w {
		t.Fatalf("resumed run diverged:\n got %+v\nwant %+v", g, w)
	}
}

// TestResumeViolationTraceReplays: a violation found after a resume must
// carry a full counterexample trace — the parent chain crosses the
// checkpoint boundary through the restored trace table — identical to
// the clean run's.
func TestResumeViolationTraceReplays(t *testing.T) {
	cfg := baseCfg()
	cfg.NoDeletionBarrier = true
	m := mustBuild(t, cfg)
	base := Options{Trace: true, HashOnly: true}

	clean := base
	clean.Workers = 2
	want := Run(m, invariant.Safety(), clean)
	if want.Violation == nil {
		t.Fatal("ablated model found no violation")
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	var res Result
	for rounds := 0; ; rounds++ {
		opt := base
		opt.Workers = 1 + rounds%3
		opt.Checkpoint = CheckpointOptions{Path: path, EveryLayers: 1}
		if rounds > 0 {
			snap, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			opt.Resume = snap
		}
		opt.Context = cancelled()
		res = Run(m, invariant.Safety(), opt)
		if res.Stopped != StopInterrupted {
			break
		}
		if rounds > 100 {
			t.Fatal("no violation after 100 rounds")
		}
	}
	if res.Stopped != StopViolation || res.Violation == nil {
		t.Fatalf("stopped=%q violation=%v", res.Stopped, res.Violation)
	}
	if res.Violation.Invariant != want.Violation.Invariant ||
		res.Violation.Depth != want.Violation.Depth ||
		len(res.Violation.Trace) != len(want.Violation.Trace) {
		t.Fatalf("violation diverged: got %s@%d trace=%d, want %s@%d trace=%d",
			res.Violation.Invariant, res.Violation.Depth, len(res.Violation.Trace),
			want.Violation.Invariant, want.Violation.Depth, len(want.Violation.Trace))
	}
	if g, w := m.Fingerprint(res.Violation.State), m.Fingerprint(want.Violation.State); g != w {
		t.Fatal("violating state diverged after resume")
	}
}

// TestResumeRefusesOptionMismatch: a checkpoint written under one
// verdict-relevant option set must refuse to resume under another — the
// canonical case being a -reduce checkpoint into an unreduced run.
func TestResumeRefusesOptionMismatch(t *testing.T) {
	m := mustBuild(t, safeCfg())
	path := filepath.Join(t.TempDir(), "run.ckpt")
	mk := Options{
		HashOnly:   true,
		Reduce:     true,
		Checkpoint: CheckpointOptions{Path: path, EveryLayers: 1},
		Context:    cancelled(),
		Workers:    1,
	}
	if res := Run(m, invariant.Safety(), mk); res.Stopped != StopInterrupted {
		t.Fatalf("setup run stopped %q", res.Stopped)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, tweak := range map[string]func(*Options){
		"reduce-off":    func(o *Options) { o.Reduce = false },
		"audit-on":      func(o *Options) { o.HashOnly = false },
		"symmetry-on":   func(o *Options) { o.Symmetry = true },
		"trace-on":      func(o *Options) { o.Trace = true },
		"depth-capped":  func(o *Options) { o.MaxDepth = 5 },
		"states-capped": func(o *Options) { o.MaxStates = 100 },
	} {
		t.Run(name, func(t *testing.T) {
			opt := Options{HashOnly: true, Reduce: true, Workers: 2, Resume: snap}
			tweak(&opt)
			res := Run(m, invariant.Safety(), opt)
			if res.Stopped != StopResume || res.Err == nil {
				t.Fatalf("mismatched resume accepted: stopped=%q err=%v", res.Stopped, res.Err)
			}
			if res.States != 0 {
				t.Fatalf("refused resume explored %d states", res.States)
			}
			if !strings.Contains(res.Err.Error(), "different options") {
				t.Fatalf("unhelpful refusal: %v", res.Err)
			}
		})
	}
	// Worker count is NOT verdict-relevant: resuming with any worker
	// count must be accepted (covered throughout this file); the battery
	// itself changing must refuse.
	t.Run("different-checks", func(t *testing.T) {
		res := Run(m, invariant.All(), Options{HashOnly: true, Reduce: true, Resume: snap})
		if res.Stopped != StopResume {
			t.Fatalf("resume under a different invariant battery accepted: %q", res.Stopped)
		}
	})
}

// TestResumeRefusesTamperedFrontier: corruption that slips past the
// section CRCs cannot happen by accident, but a state decode check must
// still reject a frontier that does not round-trip (defense in depth for
// hand-edited or version-skewed files).
func TestResumeRefusesTamperedFrontier(t *testing.T) {
	m := mustBuild(t, safeCfg())
	path := filepath.Join(t.TempDir(), "run.ckpt")
	mk := Options{
		HashOnly:   true,
		Checkpoint: CheckpointOptions{Path: path, EveryLayers: 1},
		Context:    cancelled(),
		Workers:    1,
	}
	if res := Run(m, invariant.Safety(), mk); res.Stopped != StopInterrupted {
		t.Fatalf("setup run stopped %q", res.Stopped)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	good := append([]byte(nil), snap.Frontier[0]...)
	for name, bad := range map[string][]byte{
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte(nil), good...), 0),
	} {
		t.Run(name, func(t *testing.T) {
			snap.Frontier[0] = bad
			res := Run(m, invariant.Safety(), Options{HashOnly: true, Workers: 1, Resume: snap})
			if res.Stopped != StopResume || res.Err == nil {
				t.Fatalf("tampered frontier accepted: stopped=%q err=%v", res.Stopped, res.Err)
			}
		})
	}
}

// TestWorkerPanicContained is the panic-containment acceptance test: a
// panicking check in a worker must terminate the run within one layer
// with a structured error — never a hang, never a crash, never a
// "holds" verdict.
func TestWorkerPanicContained(t *testing.T) {
	m := mustBuild(t, safeCfg())
	for _, workers := range []int{1, 4} {
		var events atomic.Int64
		opt := Options{
			Workers:  workers,
			HashOnly: true,
			EventCheck: func(parent, next cimp.System[*gcmodel.Local], ev cimp.Event) error {
				if events.Add(1) == 2000 {
					panic("injected fault: event check exploded")
				}
				return nil
			},
		}
		res := Run(m, invariant.Safety(), opt)
		if res.Stopped != StopPanic {
			t.Fatalf("workers=%d: stopped=%q, want panic", workers, res.Stopped)
		}
		if res.Complete {
			t.Fatalf("workers=%d: poisoned run reported complete", workers)
		}
		var pe *PanicError
		if !errors.As(res.Err, &pe) {
			t.Fatalf("workers=%d: Err = %v, want *PanicError", workers, res.Err)
		}
		if pe.Value == nil || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic report incomplete: %+v", workers, pe)
		}
		if !strings.Contains(string(pe.Stack), "TestWorkerPanicContained") {
			t.Fatalf("workers=%d: stack does not reach the panic origin:\n%s", workers, pe.Stack)
		}
		if pe.StateHash == 0 {
			t.Fatalf("workers=%d: offending state not identified", workers)
		}
		if _, ok := res.Err.(*PanicError); !ok {
			t.Fatalf("workers=%d: Err is %T", workers, res.Err)
		}
		if s := pe.Error(); !strings.Contains(s, "injected fault") {
			t.Fatalf("workers=%d: error message lost the panic value: %s", workers, s)
		}
	}
}

// TestMemBudgetLadder drives the watchdog through its whole degradation
// ladder with a scripted heap probe: below 70% nothing happens; at 70%
// exactly one emergency checkpoint; at 85% audit fingerprints are
// dropped (Degraded); at 100% a final checkpoint and a clean
// StopMemBudget. The degraded checkpoint then resumes into an
// audit-configured run, which continues hash-only to the same verdict
// as a clean audit run.
func TestMemBudgetLadder(t *testing.T) {
	m := mustBuild(t, safeCfg())
	const budget = 1 << 30
	samples := []int64{
		budget * 10 / 100,  // layer 1: calm
		budget * 75 / 100,  // layer 2: emergency checkpoint
		budget * 75 / 100,  // layer 3: emergency already taken, no second one
		budget * 90 / 100,  // layer 4: drop audit fingerprints
		budget * 110 / 100, // layer 5: stop
	}
	call := 0
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opt := Options{
		Workers:    2,
		HashOnly:   false, // audit mode, so the 85% rung has something to drop
		MemBudget:  budget,
		Checkpoint: CheckpointOptions{Path: path, EveryLayers: 1000},
		MemSample: func() uint64 {
			s := samples[len(samples)-1]
			if call < len(samples) {
				s = samples[call]
			}
			call++
			return uint64(s)
		},
	}
	res := Run(m, invariant.Safety(), opt)
	if res.Stopped != StopMemBudget {
		t.Fatalf("stopped=%q, want mem-budget", res.Stopped)
	}
	if res.Complete {
		t.Fatal("budget-stopped run reported complete")
	}
	if !res.Degraded {
		t.Fatal("85% rung did not degrade audit mode")
	}
	// Emergency (70%) + final (100%) = exactly two snapshots; the 75%
	// repeat must not write a second emergency one.
	if res.Checkpoints != 2 {
		t.Fatalf("checkpoints=%d, want 2 (emergency + final)", res.Checkpoints)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Audit || !snap.Degraded {
		t.Fatalf("final snapshot audit=%v degraded=%v, want hash-only degraded", snap.Audit, snap.Degraded)
	}

	// Resume the degraded snapshot into the same (audit-configured)
	// options without a budget: it must continue hash-only and land on
	// the clean audit baseline's verdict and counts.
	want := Run(m, invariant.Safety(), Options{Workers: 2, HashOnly: false})
	res2 := Run(m, invariant.Safety(), Options{Workers: 2, HashOnly: false, Resume: snap})
	if !res2.Complete || !res2.Degraded {
		t.Fatalf("degraded resume: complete=%v degraded=%v err=%v", res2.Complete, res2.Degraded, res2.Err)
	}
	if res2.States != want.States || res2.Transitions != want.Transitions ||
		res2.Depth != want.Depth || res2.Deadlocks != want.Deadlocks {
		t.Fatalf("degraded resume diverged: got s=%d t=%d d=%d dl=%d, want s=%d t=%d d=%d dl=%d",
			res2.States, res2.Transitions, res2.Depth, res2.Deadlocks,
			want.States, want.Transitions, want.Depth, want.Deadlocks)
	}
}

// TestCapsReportStopReasons: every bounded stop names itself — the caps
// that predate the durability layer must be as explicit as the new
// degraded paths.
func TestCapsReportStopReasons(t *testing.T) {
	m := mustBuild(t, safeCfg())
	if res := Run(m, nil, Options{Workers: 2, HashOnly: true, MaxStates: 500}); res.Stopped != StopMaxStates || res.Complete {
		t.Fatalf("max-states: stopped=%q complete=%v", res.Stopped, res.Complete)
	}
	if res := Run(m, nil, Options{Workers: 2, HashOnly: true, MaxDepth: 5}); res.Stopped != StopMaxDepth || res.Complete {
		t.Fatalf("max-depth: stopped=%q complete=%v", res.Stopped, res.Complete)
	}
	if res := Run(m, nil, Options{Workers: 2, HashOnly: true}); res.Stopped != StopNone || !res.Complete {
		t.Fatalf("clean: stopped=%q complete=%v", res.Stopped, res.Complete)
	}
}

// TestCheckpointRoundTripThroughExplorer: a checkpoint of a
// symmetry+audit+trace run — the most stateful deterministic
// configuration — must load and resume to the uninterrupted verdict.
// (Multi-mutator symmetry runs have run-to-run count variation from the
// racy choice of raw orbit representative, so the determinism check
// uses the single-mutator config, where the orbit is trivial but the
// canonical-fingerprint snapshot path is still exercised.)
func TestCheckpointRoundTripThroughExplorer(t *testing.T) {
	m := mustBuild(t, safeCfg())
	base := Options{HashOnly: false, Symmetry: true, Trace: true, Workers: 2, Shards: 4}

	want := Run(m, invariant.Safety(), base)
	if !want.Complete {
		t.Fatal("baseline incomplete")
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	first := base
	first.Checkpoint = CheckpointOptions{Path: path, EveryLayers: 1}
	first.Context = cancelled()
	if res := Run(m, invariant.Safety(), first); res.Stopped != StopInterrupted {
		t.Fatalf("setup stopped %q", res.Stopped)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Audit {
		t.Fatal("audit snapshot lost its fingerprints")
	}
	second := base
	second.Resume = snap
	res := Run(m, invariant.Safety(), second)
	if !res.Complete {
		t.Fatalf("resume incomplete: %q %v", res.Stopped, res.Err)
	}
	if res.States != want.States || res.Transitions != want.Transitions ||
		res.Depth != want.Depth || res.HashCollisions != want.HashCollisions {
		t.Fatalf("symmetry+audit resume diverged: got s=%d t=%d d=%d c=%d, want s=%d t=%d d=%d c=%d",
			res.States, res.Transitions, res.Depth, res.HashCollisions,
			want.States, want.Transitions, want.Depth, want.HashCollisions)
	}
}
