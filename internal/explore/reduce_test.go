package explore

import (
	"testing"

	"repro/internal/gcmodel"
	"repro/internal/heap"
	"repro/internal/invariant"
)

// symCfg is a two-mutator configuration with interchangeable mutators
// (identical programs and roots) and only handshakes as heap-free work:
// small enough for uncapped exploration in milliseconds, yet exercising
// both the ample filter and the symmetry canonicalization.
func symCfg() gcmodel.Config {
	return gcmodel.Config{
		NMutators: 2,
		NRefs:     2,
		NFields:   1,
		MaxBuf:    1,
		OpBudget:  1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots:      []heap.RefSet{heap.SetOf(0), heap.SetOf(0)},
		AllowNilStore:  true,
		DisableAlloc:   true,
		DisableLoad:    true,
		DisableStore:   true,
		DisableDiscard: true,
		DisableMFence:  true,
	}
}

// TestReduceVerdictMatchesFull checks the basic soundness contract on a
// small uncapped run: the reduced explorations reach the same verdict
// as the full one while visiting no more states. (Package diffcheck
// validates this across a whole corpus; this keeps a fast witness next
// to the checker itself.)
func TestReduceVerdictMatchesFull(t *testing.T) {
	m := mustBuild(t, symCfg())
	full := Run(m, invariant.All(), Options{Trace: true, HashOnly: true})
	if full.Violation != nil {
		t.Fatalf("base configuration should be safe: %v", full.Violation)
	}
	for _, opt := range []Options{
		{Reduce: true},
		{Symmetry: true},
		{Reduce: true, Symmetry: true},
	} {
		opt.Trace = true
		opt.HashOnly = true
		res := Run(m, invariant.All(), opt)
		if res.Violation != nil {
			t.Errorf("reduce=%v symmetry=%v: spurious violation %v", opt.Reduce, opt.Symmetry, res.Violation)
		}
		if res.States > full.States {
			t.Errorf("reduce=%v symmetry=%v: %d states exceeds full %d", opt.Reduce, opt.Symmetry, res.States, full.States)
		}
	}
}

// TestReduceDeterministicAcrossWorkers: the reductions are functions of
// the state, not the schedule, so every statistic of an uncapped run
// must be identical at any worker count.
func TestReduceDeterministicAcrossWorkers(t *testing.T) {
	m := mustBuild(t, symCfg())
	opt := Options{Trace: true, HashOnly: true, Reduce: true, Symmetry: true}
	opt.Workers = 1
	base := Run(m, invariant.All(), opt)
	for _, w := range []int{2, 4} {
		opt.Workers = w
		res := Run(m, invariant.All(), opt)
		if res.States != base.States || res.Transitions != base.Transitions ||
			res.Depth != base.Depth || res.AmpleStates != base.AmpleStates {
			t.Errorf("workers=%d: (states,transitions,depth,ample)=(%d,%d,%d,%d) differs from workers=1 (%d,%d,%d,%d)",
				w, res.States, res.Transitions, res.Depth, res.AmpleStates,
				base.States, base.Transitions, base.Depth, base.AmpleStates)
		}
		if (res.Violation == nil) != (base.Violation == nil) {
			t.Errorf("workers=%d: verdict differs from workers=1", w)
		}
	}
}

// TestReduceStillFindsAblationViolation: pruning interleavings must not
// hide the deletion-barrier bug.
func TestReduceStillFindsAblationViolation(t *testing.T) {
	cfg := baseCfg()
	cfg.OpBudget = 1
	cfg.MaxBuf = 1
	cfg.NoDeletionBarrier = true
	m := mustBuild(t, cfg)
	res := Run(m, invariant.All(), Options{Trace: true, HashOnly: true, Reduce: true, Symmetry: true})
	if res.Violation == nil {
		t.Fatalf("ablation violation lost under reduction (%d states, complete=%v)", res.States, res.Complete)
	}
	t.Logf("found %s at depth %d in %d states (ample %d)",
		res.Violation.Invariant, res.Violation.Depth, res.States, res.AmpleStates)
}
