package cimp

// PID identifies a process in a flat parallel composition.
type PID int

// Event describes one system transition for trace reporting.
type Event struct {
	// Proc is the process that moved; for a rendezvous it is the requester.
	Proc PID
	// Peer is the responder of a rendezvous, or -1 for a τ step.
	Peer PID
	// Label is the label of the command that fired (the request label for
	// a rendezvous).
	Label string
	// PeerLabel is the responder's label for a rendezvous, else "".
	PeerLabel string
	// Alpha and Beta carry the rendezvous messages, nil for τ steps.
	Alpha, Beta Msg
}

// Tau marks τ-step events.
func (e Event) Tau() bool { return e.Peer < 0 }

// System is the flat parallel composition of CIMP processes sharing local
// state type S (paper Figure 8). Process transitions interleave at the top
// level with no action hiding; rendezvous synchronizes exactly two
// processes.
type System[S any] struct {
	Procs []Config[S]
	// DisableFusion turns off the merging of register-only (Fuse-marked)
	// LocalOps into the preceding transition. Fusion is a sound
	// stutter-reduction — fused steps touch no state observable by other
	// processes — and is on by default; disabling it recovers the fully
	// fine-grained semantics for validation runs.
	DisableFusion bool
}

// CloneShallow copies the process table (the configurations themselves are
// persistent values and are shared).
func (sys System[S]) CloneShallow() System[S] {
	ps := make([]Config[S], len(sys.Procs))
	copy(ps, sys.Procs)
	return System[S]{Procs: ps, DisableFusion: sys.DisableFusion}
}

// fuse repeatedly executes Fuse-marked deterministic LocalOps at the head
// of the configuration, merging them into the transition that produced
// it. Only single-successor applications are merged; a Fuse-marked op
// that blocks or branches is left for the normal step relation.
func fuse[S any](cfg Config[S]) Config[S] {
	for i := 0; i < maxUnfold; i++ {
		stack := Norm(cfg.Stack, cfg.Data)
		cfg.Stack = stack
		if len(stack) == 0 {
			return cfg
		}
		op, ok := stack[0].(*LocalOp[S])
		if !ok || !op.Fuse {
			return cfg
		}
		next := op.F(cfg.Data)
		if len(next) != 1 {
			return cfg
		}
		cfg = Config[S]{Stack: stack[1:], Data: next[0]}
	}
	panic("cimp: fusion diverged")
}

// Successors enumerates every enabled system transition from sys,
// invoking yield with the successor system state and the event that
// produced it. Successor states share all unchanged process
// configurations with sys.
//
// Two rules apply (paper Figure 8):
//
//	τ:          one process takes a local step;
//	rendezvous: a Request of process p synchronizes with a Response of a
//	            distinct process q; both update local state simultaneously.
func (sys System[S]) Successors(yield func(next System[S], ev Event)) {
	post := func(c Config[S]) Config[S] {
		if sys.DisableFusion {
			return c
		}
		return fuse(c)
	}
	for p := range sys.Procs {
		pid := PID(p)
		// τ steps.
		TauSuccessors(sys.Procs[p], func(next Config[S], label string) {
			ns := sys.CloneShallow()
			ns.Procs[p] = post(next)
			yield(ns, Event{Proc: pid, Peer: -1, Label: label})
		})
		// Rendezvous with every other process.
		for _, off := range Offers(sys.Procs[p]) {
			for q := range sys.Procs {
				if q == p {
					continue
				}
				for _, ans := range Answers(sys.Procs[q], off.Alpha) {
					for _, pNext := range off.Accept(ans.Beta) {
						ns := sys.CloneShallow()
						ns.Procs[p] = post(pNext)
						ns.Procs[q] = post(ans.Next)
						yield(ns, Event{
							Proc: pid, Peer: PID(q),
							Label: off.Label, PeerLabel: ans.Label,
							Alpha: off.Alpha, Beta: ans.Beta,
						})
					}
				}
			}
		}
	}
}

// Deadlocked reports whether no transition is enabled and at least one
// process has commands left to run.
func (sys System[S]) Deadlocked() bool {
	any := false
	sys.Successors(func(System[S], Event) { any = true })
	if any {
		return false
	}
	for _, p := range sys.Procs {
		if !Terminated(p) {
			return true
		}
	}
	return false
}
