package cimp

import "fmt"

// Config is a process configuration: a frame stack of commands (element 0
// is the top / next to execute) paired with the process's local data state.
type Config[S any] struct {
	Stack []Com[S]
	Data  S
}

// maxUnfold bounds deterministic control unfolding; exceeding it indicates
// an action-free loop in the program, which is a modeling error.
const maxUnfold = 10_000

// Norm unfolds deterministic control (Seq, Cond, While, Loop, Skip) on top
// of the stack until the head is an action command (LocalOp, Request,
// Response), a Choose, or the stack is empty. Conditions are pure functions
// of the data state, so this unfolding is deterministic and corresponds to
// the paper's derived evaluation-context semantics: control between two
// atomic actions is folded into the preceding transition.
//
// The returned stack is fresh or shares a suffix with the input; the input
// is not modified.
func Norm[S any](stack []Com[S], s S) []Com[S] {
	for i := 0; ; i++ {
		if i > maxUnfold {
			panic("cimp: control unfolding diverged (loop with no action command)")
		}
		if len(stack) == 0 {
			return stack
		}
		switch c := stack[0].(type) {
		case *Skip[S]:
			stack = stack[1:]
		case *Seq[S]:
			ns := make([]Com[S], 0, len(stack)+1)
			ns = append(ns, c.A, c.B)
			ns = append(ns, stack[1:]...)
			stack = ns
		case *Cond[S]:
			branch := c.Else
			if c.C(s) {
				branch = c.Then
			}
			stack = pushed(stack[1:], branch)
		case *While[S]:
			if c.C(s) {
				ns := make([]Com[S], 0, len(stack)+1)
				ns = append(ns, c.Body)
				ns = append(ns, stack...) // While itself stays beneath the body
				stack = ns
			} else {
				stack = stack[1:]
			}
		case *Loop[S]:
			ns := make([]Com[S], 0, len(stack)+1)
			ns = append(ns, c.Body)
			ns = append(ns, stack...) // Loop stays beneath the body
			stack = ns
		default:
			return stack
		}
	}
}

func pushed[S any](stack []Com[S], c Com[S]) []Com[S] {
	ns := make([]Com[S], 0, len(stack)+1)
	ns = append(ns, c)
	ns = append(ns, stack...)
	return ns
}

// Head is one enabled action at the top of a (normalized) configuration:
// the action command itself together with the continuation stack that
// remains after it fires. Choose nodes fan out into several Heads.
type Head[S any] struct {
	Act  Com[S] // *LocalOp, *Request, or *Response
	Cont []Com[S]
}

// Heads enumerates the action commands reachable from the top of the stack
// by resolving Choose alternatives and unfolding deterministic control.
// The configuration's data state is needed to evaluate conditions.
func Heads[S any](stack []Com[S], s S) []Head[S] {
	stack = Norm(stack, s)
	if len(stack) == 0 {
		return nil
	}
	switch c := stack[0].(type) {
	case *Choose[S]:
		var hs []Head[S]
		for _, alt := range c.Alts {
			hs = append(hs, Heads(pushed(stack[1:], alt), s)...)
		}
		return hs
	case *LocalOp[S], *Request[S], *Response[S]:
		return []Head[S]{{Act: stack[0], Cont: stack[1:]}}
	default:
		panic(fmt.Sprintf("cimp: Norm returned unexpected head %T", c))
	}
}

// TauSuccessors yields the successor configurations of all enabled local
// (τ) actions of cfg, i.e. every LocalOp head. Each successor is already
// normalized. The results share structure with cfg; LocalOp step functions
// are responsible for the freshness of successor data states.
func TauSuccessors[S any](cfg Config[S], yield func(next Config[S], label string)) {
	for _, h := range Heads(cfg.Stack, cfg.Data) {
		op, ok := h.Act.(*LocalOp[S])
		if !ok {
			continue
		}
		for _, s2 := range op.F(cfg.Data) {
			yield(Config[S]{Stack: Norm(h.Cont, s2), Data: s2}, op.L)
		}
	}
}

// Offer is a pending request: the α message the process would send, the
// continuation applied once a response β arrives, and the request label.
type Offer[S any] struct {
	Label string
	Alpha Msg
	// Accept computes the successor configurations for a response β;
	// an empty result refuses the response.
	Accept func(beta Msg) []Config[S]
}

// Offers enumerates the Requests enabled at the top of cfg.
func Offers[S any](cfg Config[S]) []Offer[S] {
	var out []Offer[S]
	for _, h := range Heads(cfg.Stack, cfg.Data) {
		req, ok := h.Act.(*Request[S])
		if !ok {
			continue
		}
		cont := h.Cont
		alpha := req.Act(cfg.Data)
		out = append(out, Offer[S]{
			Label: req.L,
			Alpha: alpha,
			Accept: func(beta Msg) []Config[S] {
				var cs []Config[S]
				for _, s2 := range req.Ret(cfg.Data, beta) {
					cs = append(cs, Config[S]{Stack: Norm(cont, s2), Data: s2})
				}
				return cs
			},
		})
	}
	return out
}

// Answer is one way a process can answer a request α: the successor
// configuration, the response β, and the response label.
type Answer[S any] struct {
	Label string
	Beta  Msg
	Next  Config[S]
}

// Answers enumerates the ways cfg can answer the request α via an enabled
// Response head.
func Answers[S any](cfg Config[S], alpha Msg) []Answer[S] {
	var out []Answer[S]
	for _, h := range Heads(cfg.Stack, cfg.Data) {
		resp, ok := h.Act.(*Response[S])
		if !ok {
			continue
		}
		for _, r := range resp.F(cfg.Data, alpha) {
			out = append(out, Answer[S]{
				Label: resp.L,
				Beta:  r.Msg,
				Next:  Config[S]{Stack: Norm(h.Cont, r.S), Data: r.S},
			})
		}
	}
	return out
}

// AtLabels returns the labels of all action commands enabled at the top of
// the configuration. It implements the paper's "at p ℓ" predicate: process
// p is at ℓ iff ℓ ∈ AtLabels of p's configuration.
func AtLabels[S any](cfg Config[S]) []string {
	hs := Heads(cfg.Stack, cfg.Data)
	out := make([]string, 0, len(hs))
	for _, h := range hs {
		out = append(out, h.Act.Label())
	}
	return out
}

// At reports whether the configuration is at a command labeled ℓ.
func At[S any](cfg Config[S], label string) bool {
	for _, l := range AtLabels(cfg) {
		if l == label {
			return true
		}
	}
	return false
}

// Terminated reports whether the process has no commands left to run.
func Terminated[S any](cfg Config[S]) bool {
	return len(Norm(cfg.Stack, cfg.Data)) == 0
}
