package cimp

// Walk visits every command node reachable from root exactly once, in a
// deterministic depth-first order (the same order Index assigns IDs in).
// It is the traversal primitive behind Index and behind the static
// analyses of package analysis, which need to inspect program trees —
// action commands, conditionals, loops — without re-implementing the
// shape of every control construct.
func Walk[S any](root Com[S], visit func(Com[S])) {
	seen := make(map[Com[S]]struct{})
	var rec func(Com[S])
	rec = func(c Com[S]) {
		if c == nil {
			return
		}
		if _, ok := seen[c]; ok {
			return
		}
		seen[c] = struct{}{}
		visit(c)
		switch n := c.(type) {
		case *Seq[S]:
			rec(n.A)
			rec(n.B)
		case *Cond[S]:
			rec(n.Then)
			rec(n.Else)
		case *While[S]:
			rec(n.Body)
		case *Loop[S]:
			rec(n.Body)
		case *Choose[S]:
			for _, a := range n.Alts {
				rec(a)
			}
		}
	}
	rec(root)
}
