package cimp

import (
	"encoding/binary"
	"fmt"
)

// Index assigns a stable small-integer identity to every command node of a
// program, enabling compact encodings of frame stacks for state
// fingerprinting. Programs are static command graphs built once; pointer
// identity of command nodes is therefore stable for the lifetime of a
// model.
type Index[S any] struct {
	ids  map[Com[S]]int
	coms []Com[S]
}

// NewIndex builds an index covering all the given program roots.
func NewIndex[S any](roots ...Com[S]) *Index[S] {
	ix := &Index[S]{ids: make(map[Com[S]]int)}
	for _, r := range roots {
		ix.walk(r)
	}
	return ix
}

func (ix *Index[S]) walk(c Com[S]) {
	if c == nil {
		return
	}
	if _, ok := ix.ids[c]; ok {
		return
	}
	ix.ids[c] = len(ix.coms)
	ix.coms = append(ix.coms, c)
	switch n := c.(type) {
	case *Seq[S]:
		ix.walk(n.A)
		ix.walk(n.B)
	case *Cond[S]:
		ix.walk(n.Then)
		ix.walk(n.Else)
	case *While[S]:
		ix.walk(n.Body)
	case *Loop[S]:
		ix.walk(n.Body)
	case *Choose[S]:
		for _, a := range n.Alts {
			ix.walk(a)
		}
	}
}

// ID returns the identity of a command node; the node must belong to an
// indexed program.
func (ix *Index[S]) ID(c Com[S]) int {
	id, ok := ix.ids[c]
	if !ok {
		panic(fmt.Sprintf("cimp: command %T %q not in index", c, c.Label()))
	}
	return id
}

// Len reports the number of indexed command nodes.
func (ix *Index[S]) Len() int { return len(ix.coms) }

// AppendStack appends a compact encoding of a frame stack to dst.
func (ix *Index[S]) AppendStack(dst []byte, stack []Com[S]) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(stack)))
	for _, c := range stack {
		dst = binary.AppendUvarint(dst, uint64(ix.ID(c)))
	}
	return dst
}
