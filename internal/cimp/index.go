package cimp

import (
	"encoding/binary"
	"fmt"
)

// Index assigns a stable small-integer identity to every command node of a
// program, enabling compact encodings of frame stacks for state
// fingerprinting. Programs are static command graphs built once; pointer
// identity of command nodes is therefore stable for the lifetime of a
// model.
type Index[S any] struct {
	ids  map[Com[S]]int
	coms []Com[S]
}

// NewIndex builds an index covering all the given program roots.
func NewIndex[S any](roots ...Com[S]) *Index[S] {
	ix := &Index[S]{ids: make(map[Com[S]]int)}
	for _, r := range roots {
		ix.walk(r)
	}
	return ix
}

func (ix *Index[S]) walk(c Com[S]) {
	if c == nil {
		return
	}
	if _, ok := ix.ids[c]; ok {
		return
	}
	ix.ids[c] = len(ix.coms)
	ix.coms = append(ix.coms, c)
	switch n := c.(type) {
	case *Seq[S]:
		ix.walk(n.A)
		ix.walk(n.B)
	case *Cond[S]:
		ix.walk(n.Then)
		ix.walk(n.Else)
	case *While[S]:
		ix.walk(n.Body)
	case *Loop[S]:
		ix.walk(n.Body)
	case *Choose[S]:
		for _, a := range n.Alts {
			ix.walk(a)
		}
	}
}

// ID returns the identity of a command node; the node must belong to an
// indexed program.
func (ix *Index[S]) ID(c Com[S]) int {
	id, ok := ix.ids[c]
	if !ok {
		panic(fmt.Sprintf("cimp: command %T %q not in index", c, c.Label()))
	}
	return id
}

// Len reports the number of indexed command nodes.
func (ix *Index[S]) Len() int { return len(ix.coms) }

// Com returns the command node with identity id, or false when id is out
// of range. It is the inverse of ID, used to decode serialized stacks.
func (ix *Index[S]) Com(id int) (Com[S], bool) {
	if id < 0 || id >= len(ix.coms) {
		return nil, false
	}
	return ix.coms[id], true
}

// AppendStack appends a compact encoding of a frame stack to dst.
func (ix *Index[S]) AppendStack(dst []byte, stack []Com[S]) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(stack)))
	for _, c := range stack {
		dst = binary.AppendUvarint(dst, uint64(ix.ID(c)))
	}
	return dst
}

// DecodeStack decodes a frame stack encoded by AppendStack, returning
// the stack and the remaining bytes. Command identities are resolved
// through the index, so the decoded stack aliases the (immutable)
// program graph the index was built over. Malformed input — a truncated
// varint, an out-of-range identity, or an absurd length — is an error,
// never a panic: checkpoint loading must reject corruption gracefully.
func (ix *Index[S]) DecodeStack(data []byte) ([]Com[S], []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, fmt.Errorf("cimp: truncated stack length")
	}
	data = data[k:]
	if n > uint64(len(ix.coms)) {
		// A stack can never hold more frames than there are command
		// nodes: Norm collapses structural wrappers and programs are
		// finite, so any larger count is corruption.
		return nil, nil, fmt.Errorf("cimp: stack length %d exceeds program size %d", n, len(ix.coms))
	}
	stack := make([]Com[S], 0, n)
	for i := uint64(0); i < n; i++ {
		id, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, nil, fmt.Errorf("cimp: truncated stack entry %d", i)
		}
		data = data[k:]
		c, ok := ix.Com(int(id))
		if !ok {
			return nil, nil, fmt.Errorf("cimp: stack entry %d: command id %d not in index (%d commands)", i, id, len(ix.coms))
		}
		stack = append(stack, c)
	}
	return stack, data, nil
}
