package cimp

// This file implements the faithful small-step semantics of paper Figure 7,
// in which sequential composition and control constructs unfold one frame
// per transition. It exists to validate, by testing, that the derived
// atomic-action semantics in step.go reaches exactly the same action-level
// configurations (the paper derives the evaluation-context semantics from
// this one).

// SSKind classifies a small-step transition's communication action γ.
type SSKind int

const (
	// SSTau is a local computation step (γ = τ), including control
	// unfolding steps.
	SSTau SSKind = iota
	// SSSend is the sending half of a rendezvous (γ = »α,β«).
	SSSend
	// SSRecv is the receiving half of a rendezvous (γ = «α,β»).
	SSRecv
)

// SSStep is one small-step transition of a single process.
type SSStep[S any] struct {
	Kind        SSKind
	Alpha, Beta Msg
	Next        Config[S]
}

// SmallSteps enumerates the transitions of a single process configuration
// under the Figure 7 rules. For Request heads, every possible β accepted
// by Ret must be supplied by the environment; answer enumerates candidate
// βs for a given α (in a closed system, these come from the peers'
// Responses). Passing a nil answer enumerates no communication steps.
func SmallSteps[S any](cfg Config[S], answer func(alpha Msg) []Msg) []SSStep[S] {
	if len(cfg.Stack) == 0 {
		return nil
	}
	rest := cfg.Stack[1:]
	var out []SSStep[S]
	switch c := cfg.Stack[0].(type) {
	case *Skip[S]:
		out = append(out, SSStep[S]{Kind: SSTau, Next: Config[S]{Stack: rest, Data: cfg.Data}})
	case *Seq[S]:
		ns := make([]Com[S], 0, len(rest)+2)
		ns = append(ns, c.A, c.B)
		ns = append(ns, rest...)
		out = append(out, SSStep[S]{Kind: SSTau, Next: Config[S]{Stack: ns, Data: cfg.Data}})
	case *Cond[S]:
		branch := c.Else
		if c.C(cfg.Data) {
			branch = c.Then
		}
		out = append(out, SSStep[S]{Kind: SSTau, Next: Config[S]{Stack: pushed(rest, branch), Data: cfg.Data}})
	case *While[S]:
		if c.C(cfg.Data) {
			ns := make([]Com[S], 0, len(cfg.Stack)+1)
			ns = append(ns, c.Body)
			ns = append(ns, cfg.Stack...)
			out = append(out, SSStep[S]{Kind: SSTau, Next: Config[S]{Stack: ns, Data: cfg.Data}})
		} else {
			out = append(out, SSStep[S]{Kind: SSTau, Next: Config[S]{Stack: rest, Data: cfg.Data}})
		}
	case *Loop[S]:
		ns := make([]Com[S], 0, len(cfg.Stack)+1)
		ns = append(ns, c.Body)
		ns = append(ns, cfg.Stack...)
		out = append(out, SSStep[S]{Kind: SSTau, Next: Config[S]{Stack: ns, Data: cfg.Data}})
	case *Choose[S]:
		for _, alt := range c.Alts {
			out = append(out, SSStep[S]{Kind: SSTau, Next: Config[S]{Stack: pushed(rest, alt), Data: cfg.Data}})
		}
	case *LocalOp[S]:
		for _, s2 := range c.F(cfg.Data) {
			out = append(out, SSStep[S]{Kind: SSTau, Next: Config[S]{Stack: rest, Data: s2}})
		}
	case *Request[S]:
		if answer == nil {
			break
		}
		alpha := c.Act(cfg.Data)
		for _, beta := range answer(alpha) {
			for _, s2 := range c.Ret(cfg.Data, beta) {
				out = append(out, SSStep[S]{Kind: SSSend, Alpha: alpha, Beta: beta,
					Next: Config[S]{Stack: rest, Data: s2}})
			}
		}
	case *Response[S]:
		// A Response can answer any α the environment may pose; in a
		// closed system the system semantics pairs it with a concrete
		// Request. SmallSteps exposes it via AnswerSmall below instead.
	}
	return out
}

// AnswerSmall enumerates the receiving-half transitions of a configuration
// whose head is a Response, for a concrete request α.
func AnswerSmall[S any](cfg Config[S], alpha Msg) []SSStep[S] {
	if len(cfg.Stack) == 0 {
		return nil
	}
	resp, ok := cfg.Stack[0].(*Response[S])
	if !ok {
		return nil
	}
	var out []SSStep[S]
	for _, r := range resp.F(cfg.Data, alpha) {
		out = append(out, SSStep[S]{Kind: SSRecv, Alpha: alpha, Beta: r.Msg,
			Next: Config[S]{Stack: cfg.Stack[1:], Data: r.S}})
	}
	return out
}
