// Package cimp implements CIMP, the small imperative language of Gammie,
// Hosking and Engelhardt (PLDI 2015) used to model the on-the-fly garbage
// collector, its mutators, and the x86-TSO memory system.
//
// CIMP extends IMP with process-algebra-style rendezvous (synchronous
// message passing), control and data non-determinism, and flat parallel
// composition of processes. Its operational semantics is given in two
// equivalent forms, both implemented here:
//
//   - a faithful small-step semantics over frame stacks (paper Figure 7),
//     in which sequential composition and control constructs unfold one
//     frame at a time; see smallstep.go.
//   - a derived evaluation-context ("atomic action") semantics, in which
//     deterministic control is folded away so that every transition is a
//     LocalOp, or one half of a Request/Response rendezvous; see step.go.
//     The model checker runs on this semantics.
//
// Each process has a private control state (a frame stack of commands) and
// a private data state of type S. There is no shared global state: all
// sharing is mediated by rendezvous with a distinguished system process
// (see package tso and package gcmodel).
//
// Commands carry string labels, written {ℓ} in the paper, which the
// invariants of package invariant use via the "at p ℓ" predicate.
package cimp

// Msg is a value exchanged at a rendezvous: the request α computed by the
// sender and the response β computed by the receiver. Concrete models
// define their own request/response types.
type Msg any

// Com is a CIMP command over local data states of type S.
//
// Step functions supplied inside commands (LocalOp.F, Request.Act,
// Request.Ret, Response.F, and all boolean conditions) must treat their
// argument as read-only: successor states must be freshly allocated, or
// share only structure that is never subsequently mutated. The step engine
// does not clone on behalf of commands.
type Com[S any] interface {
	// Label returns the command's label, or "" for unlabeled control
	// (Seq, Loop, Choose).
	Label() string
	isCom()
}

// LocalOp is {ℓ} LOCALOP R: a non-deterministic local computation. F maps
// the current local data state to the set of possible successor states.
// An empty result means the operation is not enabled (blocked).
//
// Fuse marks the operation as a register-only step that touches no state
// observable by other processes; the system semantics may merge it into
// the preceding transition of the same process (see System.Successors).
type LocalOp[S any] struct {
	L    string
	F    func(S) []S
	Fuse bool
}

// Request is {ℓ} REQUEST act val: the sending half of a rendezvous.
// Act computes the request α from the local state; after the receiver
// produces a response β, Ret computes the set of possible successor local
// states. An empty Ret result refuses the response (the rendezvous does
// not happen).
type Request[S any] struct {
	L   string
	Act func(S) Msg
	Ret func(S, Msg) []S
}

// Response is {ℓ} RESPONSE act: the receiving half of a rendezvous. Given
// the request α and the local state, F yields the set of possible
// (successor state, response β) pairs. An empty result means this response
// cannot answer α in the current state.
type Response[S any] struct {
	L string
	F func(S, Msg) []Reply[S]
}

// Reply pairs a successor local state with the response message β sent
// back to the requester.
type Reply[S any] struct {
	S   S
	Msg Msg
}

// Seq is c1 ;; c2, sequential composition.
type Seq[S any] struct {
	A, B Com[S]
}

// Cond is {ℓ} IF C THEN Then ELSE Else. The condition is a pure function
// of the local data state and is evaluated as part of control unfolding in
// the atomic-action semantics, or as its own τ step in the small-step
// semantics.
type Cond[S any] struct {
	L          string
	C          func(S) bool
	Then, Else Com[S]
}

// While is {ℓ} WHILE C DO Body.
type While[S any] struct {
	L    string
	C    func(S) bool
	Body Com[S]
}

// Loop is LOOP Body: infinite repetition, used for the collector's
// non-terminating outer loop and the mutators' top-level choice. Body must
// contain at least one action command on every control path, otherwise
// control unfolding would diverge.
type Loop[S any] struct {
	Body Com[S]
}

// Choose is non-deterministic choice between alternatives (the ⊔ operator
// of paper Figure 9). The choice is resolved at step time: any enabled
// action of any alternative may fire.
type Choose[S any] struct {
	Alts []Com[S]
}

// Skip is the empty command; it unfolds to nothing.
type Skip[S any] struct{}

func (c *LocalOp[S]) Label() string  { return c.L }
func (c *Request[S]) Label() string  { return c.L }
func (c *Response[S]) Label() string { return c.L }
func (c *Seq[S]) Label() string      { return "" }
func (c *Cond[S]) Label() string     { return c.L }
func (c *While[S]) Label() string    { return c.L }
func (c *Loop[S]) Label() string     { return "" }
func (c *Choose[S]) Label() string   { return "" }
func (c *Skip[S]) Label() string     { return "" }

func (*LocalOp[S]) isCom()  {}
func (*Request[S]) isCom()  {}
func (*Response[S]) isCom() {}
func (*Seq[S]) isCom()      {}
func (*Cond[S]) isCom()     {}
func (*While[S]) isCom()    {}
func (*Loop[S]) isCom()     {}
func (*Choose[S]) isCom()   {}
func (*Skip[S]) isCom()     {}

// Seqs folds a list of commands into nested Seq nodes. Seqs() is Skip.
func Seqs[S any](cs ...Com[S]) Com[S] {
	switch len(cs) {
	case 0:
		return &Skip[S]{}
	case 1:
		return cs[0]
	default:
		return &Seq[S]{A: cs[0], B: Seqs(cs[1:]...)}
	}
}

// If2 builds a two-armed conditional.
func If2[S any](label string, c func(S) bool, then, els Com[S]) Com[S] {
	return &Cond[S]{L: label, C: c, Then: then, Else: els}
}

// If1 builds a one-armed conditional (else is Skip).
func If1[S any](label string, c func(S) bool, then Com[S]) Com[S] {
	return &Cond[S]{L: label, C: c, Then: then, Else: &Skip[S]{}}
}

// Det builds a deterministic LocalOp from an in-place update of a cloned
// state. clone must deep-copy the mutable parts of S that f touches.
// Det steps are register-only by convention and are created with Fuse
// set; other processes cannot observe them, so the system semantics may
// merge them into the preceding transition.
func Det[S any](label string, clone func(S) S, f func(S) S) *LocalOp[S] {
	return &LocalOp[S]{L: label, Fuse: true, F: func(s S) []S {
		return []S{f(clone(s))}
	}}
}
