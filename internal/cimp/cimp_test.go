package cimp

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// counter is a trivial local state for semantics tests.
type counter struct {
	n int
	m int
}

func (c *counter) clone() *counter { d := *c; return &d }

func incr(label string, by int) *LocalOp[*counter] {
	return &LocalOp[*counter]{L: label, F: func(c *counter) []*counter {
		d := c.clone()
		d.n += by
		return []*counter{d}
	}}
}

func run(t *testing.T, prog Com[*counter], init *counter) *counter {
	t.Helper()
	cfg := Config[*counter]{Stack: Norm([]Com[*counter]{prog}, init), Data: init}
	for i := 0; i < 10_000; i++ {
		if Terminated(cfg) {
			return cfg.Data
		}
		var next *Config[*counter]
		TauSuccessors(cfg, func(n Config[*counter], _ string) {
			if next == nil {
				next = &n
			}
		})
		if next == nil {
			t.Fatalf("stuck at %v", AtLabels(cfg))
		}
		cfg = *next
	}
	t.Fatal("program did not terminate")
	return nil
}

func TestSeqRunsInOrder(t *testing.T) {
	got := run(t, Seqs[*counter](incr("a", 1), incr("b", 10), incr("c", 100)), &counter{})
	if got.n != 111 {
		t.Fatalf("n = %d, want 111", got.n)
	}
}

func TestCondTakesCorrectBranch(t *testing.T) {
	prog := If2("if", func(c *counter) bool { return c.n > 0 },
		incr("t", 100), incr("e", 1000))
	if got := run(t, prog, &counter{n: 1}); got.n != 101 {
		t.Fatalf("then branch: n = %d, want 101", got.n)
	}
	if got := run(t, prog, &counter{n: 0}); got.n != 1000 {
		t.Fatalf("else branch: n = %d, want 1000", got.n)
	}
}

func TestWhileIterates(t *testing.T) {
	prog := &While[*counter]{L: "w",
		C:    func(c *counter) bool { return c.n < 5 },
		Body: incr("i", 1)}
	if got := run(t, prog, &counter{}); got.n != 5 {
		t.Fatalf("n = %d, want 5", got.n)
	}
}

func TestWhileConditionSeesUpdatedState(t *testing.T) {
	// The condition must be re-evaluated against the state produced by
	// the body, not the state at loop entry.
	prog := &While[*counter]{L: "w",
		C: func(c *counter) bool { return c.n != 3 },
		Body: &LocalOp[*counter]{L: "set", F: func(c *counter) []*counter {
			d := c.clone()
			d.n = 3
			return []*counter{d}
		}}}
	if got := run(t, prog, &counter{n: 1}); got.n != 3 {
		t.Fatalf("n = %d, want 3", got.n)
	}
}

func TestSkipAndEmptySeqs(t *testing.T) {
	got := run(t, Seqs[*counter](&Skip[*counter]{}, incr("a", 7), Seqs[*counter]()), &counter{})
	if got.n != 7 {
		t.Fatalf("n = %d, want 7", got.n)
	}
}

func TestLoopKeepsBodyBeneath(t *testing.T) {
	// A Loop never terminates; after k body steps the head must again be
	// the body's action.
	prog := &Loop[*counter]{Body: incr("tick", 1)}
	cfg := Config[*counter]{Stack: Norm([]Com[*counter]{prog}, &counter{}), Data: &counter{}}
	for i := 0; i < 10; i++ {
		if Terminated(cfg) {
			t.Fatal("loop terminated")
		}
		if !At(cfg, "tick") {
			t.Fatalf("iteration %d: at %v, want tick", i, AtLabels(cfg))
		}
		var next Config[*counter]
		TauSuccessors(cfg, func(n Config[*counter], _ string) { next = n })
		cfg = next
	}
	if cfg.Data.n != 10 {
		t.Fatalf("n = %d, want 10", cfg.Data.n)
	}
}

func TestChooseExposesAllAlternatives(t *testing.T) {
	prog := &Choose[*counter]{Alts: []Com[*counter]{
		incr("a", 1), incr("b", 2),
		Seqs[*counter](incr("c", 3), incr("d", 4)),
	}}
	cfg := Config[*counter]{Stack: []Com[*counter]{prog}, Data: &counter{}}
	labels := AtLabels(cfg)
	sort.Strings(labels)
	if !reflect.DeepEqual(labels, []string{"a", "b", "c"}) {
		t.Fatalf("labels = %v", labels)
	}
	var ns []int
	TauSuccessors(cfg, func(n Config[*counter], _ string) { ns = append(ns, n.Data.n) })
	sort.Ints(ns)
	if !reflect.DeepEqual(ns, []int{1, 2, 3}) {
		t.Fatalf("successor values = %v", ns)
	}
}

func TestBlockedLocalOpHasNoSuccessors(t *testing.T) {
	blocked := &LocalOp[*counter]{L: "blocked", F: func(*counter) []*counter { return nil }}
	cfg := Config[*counter]{Stack: []Com[*counter]{blocked}, Data: &counter{}}
	count := 0
	TauSuccessors(cfg, func(Config[*counter], string) { count++ })
	if count != 0 {
		t.Fatalf("blocked op produced %d successors", count)
	}
}

func TestNondeterministicLocalOpBranches(t *testing.T) {
	branch := &LocalOp[*counter]{L: "nd", F: func(c *counter) []*counter {
		a, b := c.clone(), c.clone()
		a.n = 1
		b.n = 2
		return []*counter{a, b}
	}}
	cfg := Config[*counter]{Stack: []Com[*counter]{branch}, Data: &counter{}}
	var ns []int
	TauSuccessors(cfg, func(n Config[*counter], _ string) { ns = append(ns, n.Data.n) })
	sort.Ints(ns)
	if !reflect.DeepEqual(ns, []int{1, 2}) {
		t.Fatalf("successors = %v", ns)
	}
}

func TestRendezvousExchangesMessages(t *testing.T) {
	// Requester sends its counter value; responder doubles it and sends
	// it back; both record the exchange.
	reqP := &Request[*counter]{L: "ask",
		Act: func(c *counter) Msg { return c.n },
		Ret: func(c *counter, beta Msg) []*counter {
			d := c.clone()
			d.m = beta.(int)
			return []*counter{d}
		}}
	respP := &Response[*counter]{L: "answer",
		F: func(c *counter, alpha Msg) []Reply[*counter] {
			d := c.clone()
			d.m = alpha.(int)
			return []Reply[*counter]{{S: d, Msg: alpha.(int) * 2}}
		}}

	sys := System[*counter]{Procs: []Config[*counter]{
		{Stack: []Com[*counter]{reqP}, Data: &counter{n: 21}},
		{Stack: []Com[*counter]{respP}, Data: &counter{}},
	}}
	var got *System[*counter]
	var ev Event
	sys.Successors(func(n System[*counter], e Event) { got, ev = &n, e })
	if got == nil {
		t.Fatal("no rendezvous happened")
	}
	if ev.Tau() || ev.Proc != 0 || ev.Peer != 1 {
		t.Fatalf("event = %+v", ev)
	}
	if got.Procs[0].Data.m != 42 {
		t.Fatalf("requester received %d, want 42", got.Procs[0].Data.m)
	}
	if got.Procs[1].Data.m != 21 {
		t.Fatalf("responder saw α = %d, want 21", got.Procs[1].Data.m)
	}
}

func TestRendezvousRefusedWhenResponseReturnsEmpty(t *testing.T) {
	reqP := &Request[*counter]{L: "ask",
		Act: func(c *counter) Msg { return c.n },
		Ret: func(c *counter, beta Msg) []*counter { return []*counter{c} }}
	respP := &Response[*counter]{L: "never",
		F: func(*counter, Msg) []Reply[*counter] { return nil }}
	sys := System[*counter]{Procs: []Config[*counter]{
		{Stack: []Com[*counter]{reqP}, Data: &counter{}},
		{Stack: []Com[*counter]{respP}, Data: &counter{}},
	}}
	n := 0
	sys.Successors(func(System[*counter], Event) { n++ })
	if n != 0 {
		t.Fatalf("%d transitions from a refused rendezvous", n)
	}
	if !sys.Deadlocked() {
		t.Fatal("system should report deadlock")
	}
}

func TestFusionMergesDetSteps(t *testing.T) {
	cl := func(c *counter) *counter { return c.clone() }
	prog := Seqs[*counter](
		incr("visible", 1),
		Det("f1", cl, func(c *counter) *counter { c.n += 10; return c }),
		Det("f2", cl, func(c *counter) *counter { c.n += 100; return c }),
		incr("visible2", 1000),
	)
	sys := System[*counter]{Procs: []Config[*counter]{
		{Stack: []Com[*counter]{prog}, Data: &counter{}},
	}}
	var next System[*counter]
	count := 0
	sys.Successors(func(n System[*counter], _ Event) { next = n; count++ })
	if count != 1 {
		t.Fatalf("%d successors, want 1", count)
	}
	// One visible step must have carried both fused increments.
	if next.Procs[0].Data.n != 111 {
		t.Fatalf("after first visible step n = %d, want 111", next.Procs[0].Data.n)
	}
	// With fusion disabled the same step leaves n = 1.
	sys.DisableFusion = true
	sys.Successors(func(n System[*counter], _ Event) { next = n })
	if next.Procs[0].Data.n != 1 {
		t.Fatalf("unfused step n = %d, want 1", next.Procs[0].Data.n)
	}
}

func TestNormTerminatesAndIsIdempotent(t *testing.T) {
	prog := Seqs[*counter](
		&Skip[*counter]{},
		If1("c", func(c *counter) bool { return false }, incr("dead", 1)),
		incr("live", 1),
	)
	s := &counter{}
	n1 := Norm([]Com[*counter]{prog}, s)
	n2 := Norm(n1, s)
	if len(n1) == 0 || n1[0].Label() != "live" {
		t.Fatalf("norm head = %v", AtLabels(Config[*counter]{Stack: n1, Data: s}))
	}
	if !reflect.DeepEqual(labelsOf(n1), labelsOf(n2)) {
		t.Fatalf("Norm not idempotent: %v vs %v", labelsOf(n1), labelsOf(n2))
	}
}

func labelsOf[S any](stack []Com[S]) []string {
	var out []string
	for _, c := range stack {
		out = append(out, c.Label())
	}
	return out
}

func TestIndexStableAndComplete(t *testing.T) {
	a := incr("a", 1)
	b := incr("b", 2)
	prog := &Loop[*counter]{Body: &Choose[*counter]{Alts: []Com[*counter]{
		Seqs[*counter](a, b),
		&While[*counter]{L: "w", C: func(*counter) bool { return false }, Body: a},
	}}}
	ix := NewIndex[*counter](prog)
	if ix.Len() < 5 {
		t.Fatalf("index too small: %d", ix.Len())
	}
	if ix.ID(a) == ix.ID(b) {
		t.Fatal("distinct nodes share an ID")
	}
	// Same node reachable twice gets one ID.
	if ix.ID(a) != ix.ID(a) {
		t.Fatal("ID not stable")
	}
	enc1 := ix.AppendStack(nil, []Com[*counter]{a, b})
	enc2 := ix.AppendStack(nil, []Com[*counter]{b, a})
	if string(enc1) == string(enc2) {
		t.Fatal("stack encoding ignores order")
	}
}

// TestSmallStepAgreesWithAtomicSemantics: running a deterministic program
// to completion under the Figure 7 small-step rules reaches the same
// final data state as the derived atomic-action semantics.
func TestSmallStepAgreesWithAtomicSemantics(t *testing.T) {
	mk := func() Com[*counter] {
		return Seqs[*counter](
			incr("a", 1),
			If2("if", func(c *counter) bool { return c.n == 1 }, incr("t", 10), incr("e", 20)),
			&While[*counter]{L: "w", C: func(c *counter) bool { return c.n < 100 }, Body: incr("i", 17)},
		)
	}

	// Atomic-action run.
	atomic := run(t, mk(), &counter{})

	// Small-step run.
	cfg := Config[*counter]{Stack: []Com[*counter]{mk()}, Data: &counter{}}
	for i := 0; ; i++ {
		if i > 100_000 {
			t.Fatal("small-step run diverged")
		}
		steps := SmallSteps(cfg, nil)
		if len(steps) == 0 {
			break
		}
		cfg = steps[0].Next
	}
	if cfg.Data.n != atomic.n {
		t.Fatalf("small-step n = %d, atomic n = %d", cfg.Data.n, atomic.n)
	}
}

// TestSmallStepControlCosts verifies control unfolding consumes exactly
// one transition per construct under the small-step semantics.
func TestSmallStepControlCosts(t *testing.T) {
	prog := &Seq[*counter]{A: incr("a", 1), B: incr("b", 1)}
	cfg := Config[*counter]{Stack: []Com[*counter]{prog}, Data: &counter{}}
	steps := SmallSteps(cfg, nil)
	if len(steps) != 1 || steps[0].Kind != SSTau {
		t.Fatalf("Seq unfold: %d steps", len(steps))
	}
	// After the unfold the head is the first action, data unchanged.
	next := steps[0].Next
	if next.Data.n != 0 || len(next.Stack) != 2 {
		t.Fatalf("after Seq unfold: n=%d stack=%d", next.Data.n, len(next.Stack))
	}
}

// Property: Norm never changes the observable successor set of a
// configuration (quick-checked over random small programs).
func TestNormPreservesSuccessorsQuick(t *testing.T) {
	f := func(seed uint8, start int8) bool {
		prog := genProg(int(seed), 3)
		s := &counter{n: int(start)}
		raw := Config[*counter]{Stack: []Com[*counter]{prog}, Data: s}
		normed := Config[*counter]{Stack: Norm(raw.Stack, s), Data: s}
		return sameSuccessorValues(raw, normed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// genProg deterministically generates a small command tree from a seed.
func genProg(seed, depth int) Com[*counter] {
	if depth == 0 {
		return incr("leaf", seed%7+1)
	}
	switch seed % 5 {
	case 0:
		return Seqs[*counter](genProg(seed/2, depth-1), genProg(seed/3+1, depth-1))
	case 1:
		return If2("c", func(c *counter) bool { return c.n%2 == 0 },
			genProg(seed/2, depth-1), genProg(seed/3+1, depth-1))
	case 2:
		return &Choose[*counter]{Alts: []Com[*counter]{
			genProg(seed/2, depth-1), genProg(seed/3+1, depth-1)}}
	case 3:
		return &Skip[*counter]{}
	default:
		return incr("op", seed%11)
	}
}

func sameSuccessorValues(a, b Config[*counter]) bool {
	collect := func(c Config[*counter]) []int {
		var out []int
		TauSuccessors(c, func(n Config[*counter], _ string) { out = append(out, n.Data.n) })
		sort.Ints(out)
		return out
	}
	return reflect.DeepEqual(collect(a), collect(b))
}

func TestHeadsThroughNestedChoose(t *testing.T) {
	inner := &Choose[*counter]{Alts: []Com[*counter]{incr("x", 1), incr("y", 2)}}
	outer := &Choose[*counter]{Alts: []Com[*counter]{inner, incr("z", 3)}}
	cfg := Config[*counter]{Stack: []Com[*counter]{outer}, Data: &counter{}}
	labels := AtLabels(cfg)
	sort.Strings(labels)
	if !reflect.DeepEqual(labels, []string{"x", "y", "z"}) {
		t.Fatalf("labels through nested choose = %v", labels)
	}
}

func TestChooseGuardedByConditions(t *testing.T) {
	// A Choose alternative behind a false condition contributes the
	// conditional's else-continuation, not nothing.
	alt := If2("g", func(c *counter) bool { return c.n > 0 },
		incr("then", 1), incr("else", 2))
	prog := &Choose[*counter]{Alts: []Com[*counter]{alt, incr("other", 3)}}
	cfg := Config[*counter]{Stack: []Com[*counter]{prog}, Data: &counter{n: 0}}
	labels := AtLabels(cfg)
	sort.Strings(labels)
	if !reflect.DeepEqual(labels, []string{"else", "other"}) {
		t.Fatalf("labels = %v", labels)
	}
}

func TestOffersExposesAlpha(t *testing.T) {
	req := &Request[*counter]{L: "ask",
		Act: func(c *counter) Msg { return c.n * 2 },
		Ret: func(c *counter, beta Msg) []*counter { return []*counter{c} }}
	cfg := Config[*counter]{Stack: []Com[*counter]{req}, Data: &counter{n: 21}}
	offers := Offers(cfg)
	if len(offers) != 1 {
		t.Fatalf("offers = %d", len(offers))
	}
	if offers[0].Alpha.(int) != 42 {
		t.Fatalf("alpha = %v", offers[0].Alpha)
	}
	if offers[0].Label != "ask" {
		t.Fatalf("label = %q", offers[0].Label)
	}
	next := offers[0].Accept(nil)
	if len(next) != 1 || !Terminated(next[0]) {
		t.Fatal("accept continuation wrong")
	}
}

func TestAnswersOnlyFromResponses(t *testing.T) {
	cfg := Config[*counter]{Stack: []Com[*counter]{incr("op", 1)}, Data: &counter{}}
	if got := Answers(cfg, 7); len(got) != 0 {
		t.Fatalf("LocalOp answered a request: %v", got)
	}
	resp := &Response[*counter]{L: "r", F: func(c *counter, alpha Msg) []Reply[*counter] {
		if alpha.(int) != 7 {
			return nil
		}
		return []Reply[*counter]{{S: c, Msg: "ok"}}
	}}
	cfg = Config[*counter]{Stack: []Com[*counter]{resp}, Data: &counter{}}
	if got := Answers(cfg, 7); len(got) != 1 || got[0].Beta.(string) != "ok" {
		t.Fatalf("answers = %v", got)
	}
	if got := Answers(cfg, 8); len(got) != 0 {
		t.Fatal("guard ignored")
	}
}

func TestFusionStopsAtBranchingOp(t *testing.T) {
	// A Fuse-marked op with two successors must not be merged.
	branch := &LocalOp[*counter]{L: "nd", Fuse: true, F: func(c *counter) []*counter {
		a, b := c.clone(), c.clone()
		a.n = 10
		b.n = 20
		return []*counter{a, b}
	}}
	prog := Seqs[*counter](incr("first", 1), branch)
	sys := System[*counter]{Procs: []Config[*counter]{
		{Stack: []Com[*counter]{prog}, Data: &counter{}},
	}}
	var after []int
	sys.Successors(func(n System[*counter], _ Event) {
		after = append(after, n.Procs[0].Data.n)
	})
	// First visible step must NOT have absorbed the branching op.
	if !reflect.DeepEqual(after, []int{1}) {
		t.Fatalf("successors after first step = %v, want [1]", after)
	}
}

func TestFusionStopsAtBlockedOp(t *testing.T) {
	gate := &LocalOp[*counter]{L: "gate", Fuse: true, F: func(c *counter) []*counter {
		if c.n < 10 {
			return nil // blocked
		}
		d := c.clone()
		d.n = 100
		return []*counter{d}
	}}
	prog := Seqs[*counter](incr("first", 1), gate)
	sys := System[*counter]{Procs: []Config[*counter]{
		{Stack: []Com[*counter]{prog}, Data: &counter{}},
	}}
	var states []System[*counter]
	sys.Successors(func(n System[*counter], _ Event) { states = append(states, n) })
	if len(states) != 1 || states[0].Procs[0].Data.n != 1 {
		t.Fatalf("blocked fusible op was merged: %+v", states)
	}
}
