// Package trace renders model states and counterexample traces in a
// compact human-readable form, for the gcmc/gcsim command-line tools and
// for test failure output.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
)

// ProcName renders a PID using the model's layout: gc, mut<i>, or sys.
func ProcName(m *gcmodel.Model, p cimp.PID) string {
	switch {
	case p == gcmodel.GCPID:
		return "gc"
	case p == m.SysPID():
		return "sys"
	default:
		return fmt.Sprintf("mut%d", int(p)-1)
	}
}

// Event renders a transition event.
func Event(m *gcmodel.Model, ev cimp.Event) string {
	if ev.Tau() {
		return fmt.Sprintf("%s: %s", ProcName(m, ev.Proc), ev.Label)
	}
	s := fmt.Sprintf("%s ⇄ %s: %s", ProcName(m, ev.Proc), ProcName(m, ev.Peer), ev.Label)
	if req, ok := ev.Alpha.(gcmodel.Req); ok {
		s += " [" + req.String() + "]"
	}
	return s
}

// State renders the interesting parts of a global state on one line.
func State(m *gcmodel.Model, st cimp.System[*gcmodel.Local]) string {
	g := gcmodel.Global{Model: m, State: st}
	sys := g.Sys()
	var b strings.Builder
	fmt.Fprintf(&b, "phase=%v fM=%v fA=%v heap=%v", sys.Phase, sys.FM, sys.FA, sys.Heap)
	fmt.Fprintf(&b, " gcW=%v sysW=%v tag=%v", g.GC().W, sys.W, sys.Tag)
	for i := 0; i < g.NMut(); i++ {
		mu := g.Mut(i)
		fmt.Fprintf(&b, " m%d{roots=%v WM=%v hp=%v}", i, mu.Roots, mu.WM, mu.HP)
	}
	for p, buf := range sys.Bufs {
		if len(buf) > 0 {
			fmt.Fprintf(&b, " buf[%s]=%v", ProcName(m, cimp.PID(p)), buf)
		}
	}
	if sys.Lock != -1 {
		fmt.Fprintf(&b, " lock=%s", ProcName(m, sys.Lock))
	}
	return b.String()
}
